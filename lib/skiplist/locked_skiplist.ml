(* Lock-based skip list baseline: Pugh's sequential skip list behind a
   global mutex.  This is the "lock-based implementation" yardstick of the
   experimental comparisons the paper cites ([11], [13]). *)

module Make (K : Lf_kernel.Ordered.S) = struct
  module S = Seq_skiplist.Make (K)

  type key = K.t
  type 'a t = { lock : Mutex.t; sl : 'a S.t }

  let name = "locked-skiplist"
  let create () = { lock = Mutex.create (); sl = S.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let find t k = locked t (fun () -> S.find t.sl k)
  let mem t k = locked t (fun () -> S.mem t.sl k)
  let insert t k e = locked t (fun () -> S.insert t.sl k e)
  let delete t k = locked t (fun () -> S.delete t.sl k)
  let to_list t = locked t (fun () -> S.to_list t.sl)
  let length t = locked t (fun () -> S.length t.sl)
  let check_invariants t = locked t (fun () -> S.check_invariants t.sl)

  (* Chaos hook: occupy the global lock while [f] runs (EXP-18's stalled
     lock holder). *)
  let with_lock_held t f = locked t f
end

module Int = Make (Lf_kernel.Ordered.Int)
