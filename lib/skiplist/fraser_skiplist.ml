(* Fraser-style lock-free skip list (Fraser 2003, the paper's citation [2];
   also Herlihy & Shavit's textbook algorithm): one node per key carrying an
   array of marked next-pointers, each level maintained Harris-style.

   The property the paper contrasts with its own design (Section 4): every
   C&S failure - during a snip, an insertion, or an upper-level link - makes
   the operation restart its search from the top of the skip list.  There
   are no backlinks and no flags; deletion marks the victim's levels
   top-down and lets searches snip marked nodes out.  EXP-13 measures the
   restart cost against the Fomitchev-Ruppert skip list's local recovery
   under the tail-interference adversary. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) = struct
  module BK = Lf_kernel.Ordered.Bounded (K)
  module Ev = Lf_kernel.Mem_event

  type key = K.t

  type 'a node = {
    key : K.t Lf_kernel.Ordered.bounded;
    elt : 'a option;
    nexts : 'a succ M.aref array; (* length = tower height *)
  }

  and 'a succ = { right : 'a link; mark : bool }
  and 'a link = Null | Node of 'a node

  type 'a t = { head : 'a node; tail : 'a node; max_level : int }

  let name = "fraser-skiplist"

  let rng = Lf_kernel.Splitmix.domain_local 0xf5a

  let create_with ?(max_level = 24) () =
    let tail =
      {
        key = Pos_inf;
        elt = None;
        nexts =
          Array.init max_level (fun _ -> M.make { right = Null; mark = false });
      }
    in
    let head =
      {
        key = Neg_inf;
        elt = None;
        nexts =
          Array.init max_level (fun _ ->
              M.make { right = Node tail; mark = false });
      }
    in
    { head; tail; max_level }

  let create () = create_with ()

  let as_node = function
    | Node n -> n
    | Null -> invalid_arg "Fraser_skiplist: dereferenced tail successor"

  let same_node l n = match l with Node m -> m == n | Null -> false

  (* The Herlihy-Shavit [find]: locate, at every level, the window
     (pred, succ) with pred.key < k <= succ.key, snipping marked nodes on
     the way.  Any failed snip C&S restarts the whole search from the top -
     this is the behaviour the paper's design removes.  Returns
     (found, preds, succs, pred_records) where pred_records.(l) is the
     physical descriptor read from preds.(l), for subsequent C&S's. *)
  let find_window t k =
    let levels = t.max_level in
    let preds = Array.make levels t.head in
    let succs = Array.make levels t.tail in
    let precs = Array.make levels (M.get t.head.nexts.(0)) in
    let rec retry () =
      let rec down pred l =
        if l < 0 then ()
        else begin
          let rec advance pred =
            let prec_ = M.get pred.nexts.(l) in
            (* A marked record means [pred] itself is deleted: the window
               would be garbage and any C&S expecting this record would
               splice into an unlinked node (in the original bit-packed
               version every C&S implicitly asserts this bit is clear).
               Restart from the top. *)
            if prec_.mark then begin
              M.event Ev.Retry;
              raise Exit
            end;
            let curr = as_node prec_.right in
            (* Snip any marked successors of curr at this level. *)
            let rec snip prec_ curr =
              if curr == t.tail then (prec_, curr)
              else
                let csucc = M.get curr.nexts.(l) in
                if csucc.mark then begin
                  if
                    M.cas pred.nexts.(l) ~kind:Ev.Physical_delete ~expect:prec_
                      { right = csucc.right; mark = false }
                  then begin
                    let prec_' = M.get pred.nexts.(l) in
                    if prec_'.mark then begin
                      M.event Ev.Retry;
                      raise Exit
                    end;
                    snip prec_' (as_node prec_'.right)
                  end
                  else begin
                    M.event Ev.Retry;
                    raise Exit
                  end
                end
                else (prec_, curr)
            in
            let prec_, curr = snip prec_ curr in
            if BK.lt curr.key k then begin
              M.event Ev.Curr_update;
              advance curr
            end
            else (pred, prec_, curr)
          in
          let pred, prec_, curr = advance pred in
          preds.(l) <- pred;
          precs.(l) <- prec_;
          succs.(l) <- curr;
          down pred (l - 1)
        end
      in
      match down t.head (levels - 1) with
      | () ->
          let found =
            succs.(0) != t.tail && BK.equal succs.(0).key k
            && not (M.get succs.(0).nexts.(0)).mark
          in
          (found, preds, succs, precs)
      | exception Exit -> retry ()
    in
    retry ()

  let find t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let found, _, succs, _ = find_window t kb in
    if found then succs.(0).elt else None

  let mem t k = Option.is_some (find t k)

  let flip () = Lf_kernel.Splitmix.bool (rng ())

  let random_height t =
    let rec go h = if h < t.max_level && flip () then go (h + 1) else h in
    go 1

  let insert_with_height t ~height k e =
    let height = max 1 (min height t.max_level) in
    let kb = Lf_kernel.Ordered.Mid k in
    let rec retry () =
      let found, preds, succs, precs = find_window t kb in
      if found then false
      else begin
        let node =
          {
            key = kb;
            elt = Some e;
            nexts =
              Array.init height (fun l ->
                  M.make { right = Node succs.(l); mark = false });
          }
        in
        (* Bottom-level C&S: the linearization point. *)
        if
          not
            (M.cas preds.(0).nexts.(0) ~kind:Ev.Insertion ~expect:precs.(0)
               { right = Node node; mark = false })
        then begin
          M.event Ev.Retry;
          retry ()
        end
        else begin
          (* Link the upper levels; every failure re-searches from the
             top. *)
          let rec link l =
            if l >= height then ()
            else begin
              let ns = M.get node.nexts.(l) in
              if ns.mark then () (* deletion won: abandon the tower *)
              else begin
                let _, preds', succs', precs' = find_window t kb in
                if succs'.(l) == node then link (l + 1)
                else if not (same_node ns.right succs'.(l)) then begin
                  (* Re-point our node at the current successor first. *)
                  if
                    M.cas node.nexts.(l) ~kind:Ev.Other_cas ~expect:ns
                      { right = Node succs'.(l); mark = false }
                  then
                    if
                      M.cas preds'.(l).nexts.(l) ~kind:Ev.Insertion
                        ~expect:precs'.(l)
                        { right = Node node; mark = false }
                    then link (l + 1)
                    else begin
                      M.event Ev.Retry;
                      link l
                    end
                  else link l (* our node changed under us: re-examine *)
                end
                else if
                  M.cas preds'.(l).nexts.(l) ~kind:Ev.Insertion
                    ~expect:precs'.(l)
                    { right = Node node; mark = false }
                then link (l + 1)
                else begin
                  M.event Ev.Retry;
                  link l
                end
              end
            end
          in
          link 1;
          true
        end
      end
    in
    retry ()

  let insert t k e = insert_with_height t ~height:(random_height t) k e

  let delete t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let found, _, succs, _ = find_window t kb in
    if not found then false
    else begin
      let victim = succs.(0) in
      let height = Array.length victim.nexts in
      (* Mark the upper levels top-down. *)
      for l = height - 1 downto 1 do
        let rec mark_level () =
          let s = M.get victim.nexts.(l) in
          if not s.mark then
            if not (M.cas victim.nexts.(l) ~kind:Ev.Marking ~expect:s { s with mark = true })
            then mark_level ()
        in
        mark_level ()
      done;
      (* Bottom-level marking decides the race. *)
      let rec mark0 () =
        let s = M.get victim.nexts.(0) in
        if s.mark then false
        else if
          M.cas victim.nexts.(0) ~kind:Ev.Marking ~expect:s
            { s with mark = true }
        then begin
          (* Snip everywhere via a search. *)
          ignore (find_window t kb);
          true
        end
        else mark0 ()
      in
      mark0 ()
    end

  let fold t f acc =
    let rec go acc = function
      | Null -> acc
      | Node n ->
          if n == t.tail then acc
          else
            let s = M.get n.nexts.(0) in
            let acc =
              match (n.key, n.elt) with
              | Mid k, Some e when not s.mark -> f acc k e
              | _ -> acc
            in
            go acc s.right
    in
    go acc (M.get t.head.nexts.(0)).right

  let to_list t = List.rev (fold t (fun acc k e -> (k, e) :: acc) [])
  let length t = fold t (fun acc _ _ -> acc + 1) 0

  (* Unlike the Fomitchev-Ruppert structures, marked nodes may legitimately
     survive at quiescence here: nothing proactively removes a marked node
     that no later search happens to pass (e.g. a same-key reinsertion that
     landed in front of it).  The quiescent invariant is therefore strict
     sortedness among the *unmarked* nodes of every level, with keys
     non-decreasing overall. *)
  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    for l = 0 to t.max_level - 1 do
      let rec go prev_unmarked = function
        | Null -> fail "fraser-skiplist: level %d ends before tail" l
        | Node n ->
            if n == t.tail then ()
            else begin
              if Array.length n.nexts <= l then
                fail "fraser-skiplist: node too short for level %d" l;
              let s = M.get n.nexts.(l) in
              if s.mark then go prev_unmarked s.right
              else begin
                if not (BK.lt prev_unmarked n.key) then
                  fail "fraser-skiplist: level %d unsorted" l;
                go n.key s.right
              end
            end
      in
      go t.head.key (M.get t.head.nexts.(l)).right
    done
end

module Atomic_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
