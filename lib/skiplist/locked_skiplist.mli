(** Lock-based skip list baseline: Pugh's sequential skip list behind one
    global mutex — the lock-based yardstick of the comparisons in the
    experimental literature the paper cites ([11], [13]). *)

module Make (K : Lf_kernel.Ordered.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t

  val with_lock_held : 'a t -> (unit -> unit) -> unit
  (** Chaos hook: hold the global lock while the callback runs, blocking
      every operation (EXP-18's stalled lock holder). *)
end

module Int : sig
  include Lf_kernel.Dict_intf.S with type key = int

  val with_lock_held : 'a t -> (unit -> unit) -> unit
end
