(* Sundell-Tsigas-style lock-free skip list (SAC 2004, the paper's citation
   [15]): Pugh-architecture nodes (one node per key with an array of marked
   next pointers, like the Fraser baseline) plus a per-node *backlink* set
   when the node is deleted.

   The recovery discipline is the one the paper characterizes in Sections 2
   and 4: "Sundell and Tsigas's design allows processes to overcome the
   interference in some cases by using backlink pointers ... a backlink is
   not guaranteed to be set when it is needed, and their backlink is useful
   on a given level only if the tower it is pointing to is sufficiently
   high."  Concretely, when a traversal at level l discovers that its
   predecessor has been deleted, it follows the predecessor's backlink IF
   the backlink is already set AND the tower it points to reaches level l;
   otherwise it falls back to a Fraser-style restart from the top.  EXP-15
   measures all three recovery classes (always / sometimes / never) under
   the tail-interference adversary. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) = struct
  module BK = Lf_kernel.Ordered.Bounded (K)
  module Ev = Lf_kernel.Mem_event

  type key = K.t

  type 'a node = {
    key : K.t Lf_kernel.Ordered.bounded;
    elt : 'a option;
    nexts : 'a succ M.aref array;
    backlink : 'a link M.aref; (* Null until the node is deleted *)
  }

  and 'a succ = { right : 'a link; mark : bool }
  and 'a link = Null | Node of 'a node

  type 'a t = { head : 'a node; tail : 'a node; max_level : int }

  let name = "st-skiplist"

  let rng = Lf_kernel.Splitmix.domain_local 0x57

  let create_with ?(max_level = 24) () =
    let tail =
      {
        key = Pos_inf;
        elt = None;
        nexts =
          Array.init max_level (fun _ -> M.make { right = Null; mark = false });
        backlink = M.make Null;
      }
    in
    let head =
      {
        key = Neg_inf;
        elt = None;
        nexts =
          Array.init max_level (fun _ ->
              M.make { right = Node tail; mark = false });
        backlink = M.make Null;
      }
    in
    { head; tail; max_level }

  let create () = create_with ()

  let as_node = function
    | Node n -> n
    | Null -> invalid_arg "St_skiplist: dereferenced tail successor"

  let same_node l n = match l with Node m -> m == n | Null -> false
  let height n = Array.length n.nexts

  (* Where the Fraser baseline restarts from the top, try the deleted
     predecessor's backlink first: usable only if set and tall enough for
     this level. *)
  exception Restart

  let recover_pred ~level pred =
    match M.get pred.backlink with
    | Node b when height b > level ->
        M.event Ev.Backlink_step;
        b
    | Node _ | Null -> raise Restart

  let find_window t k =
    let levels = t.max_level in
    let preds = Array.make levels t.head in
    let succs = Array.make levels t.tail in
    let precs = Array.make levels (M.get t.head.nexts.(0)) in
    let rec retry () =
      let rec down pred l =
        if l < 0 then ()
        else begin
          let rec advance pred =
            let prec_ = M.get pred.nexts.(l) in
            if prec_.mark then
              (* Predecessor deleted at this level: the ST recovery. *)
              advance (recover_pred ~level:l pred)
            else begin
              let curr = as_node prec_.right in
              let rec snip prec_ curr =
                if curr == t.tail then (prec_, curr)
                else
                  let csucc = M.get curr.nexts.(l) in
                  if csucc.mark then begin
                    if
                      M.cas pred.nexts.(l) ~kind:Ev.Physical_delete
                        ~expect:prec_
                        { right = csucc.right; mark = false }
                    then begin
                      let prec_' = M.get pred.nexts.(l) in
                      if prec_'.mark then raise Restart;
                      snip prec_' (as_node prec_'.right)
                    end
                    else begin
                      M.event Ev.Retry;
                      raise Restart
                    end
                  end
                  else (prec_, curr)
              in
              let prec_, curr = snip prec_ curr in
              if BK.lt curr.key k then begin
                M.event Ev.Curr_update;
                advance curr
              end
              else (pred, prec_, curr)
            end
          in
          let pred, prec_, curr = advance pred in
          preds.(l) <- pred;
          precs.(l) <- prec_;
          succs.(l) <- curr;
          down pred (l - 1)
        end
      in
      match down t.head (levels - 1) with
      | () ->
          let found =
            succs.(0) != t.tail && BK.equal succs.(0).key k
            && not (M.get succs.(0).nexts.(0)).mark
          in
          (found, preds, succs, precs)
      | exception Restart -> retry ()
    in
    retry ()

  let find t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let found, _, succs, _ = find_window t kb in
    if found then succs.(0).elt else None

  let mem t k = Option.is_some (find t k)

  let flip () = Lf_kernel.Splitmix.bool (rng ())

  let random_height t =
    let rec go h = if h < t.max_level && flip () then go (h + 1) else h in
    go 1

  let insert_with_height t ~height k e =
    let height = max 1 (min height t.max_level) in
    let kb = Lf_kernel.Ordered.Mid k in
    let rec retry () =
      let found, preds, succs, precs = find_window t kb in
      if found then false
      else begin
        let node =
          {
            key = kb;
            elt = Some e;
            nexts =
              Array.init height (fun l ->
                  M.make { right = Node succs.(l); mark = false });
            backlink = M.make Null;
          }
        in
        if
          not
            (M.cas preds.(0).nexts.(0) ~kind:Ev.Insertion ~expect:precs.(0)
               { right = Node node; mark = false })
        then begin
          M.event Ev.Retry;
          retry ()
        end
        else begin
          let rec link l =
            if l >= height then ()
            else begin
              let ns = M.get node.nexts.(l) in
              if ns.mark then ()
              else begin
                let _, preds', succs', precs' = find_window t kb in
                if succs'.(l) == node then link (l + 1)
                else if not (same_node ns.right succs'.(l)) then begin
                  if
                    M.cas node.nexts.(l) ~kind:Ev.Other_cas ~expect:ns
                      { right = Node succs'.(l); mark = false }
                  then
                    if
                      M.cas preds'.(l).nexts.(l) ~kind:Ev.Insertion
                        ~expect:precs'.(l)
                        { right = Node node; mark = false }
                    then link (l + 1)
                    else begin
                      M.event Ev.Retry;
                      link l
                    end
                  else link l
                end
                else if
                  M.cas preds'.(l).nexts.(l) ~kind:Ev.Insertion
                    ~expect:precs'.(l)
                    { right = Node node; mark = false }
                then link (l + 1)
                else begin
                  M.event Ev.Retry;
                  link l
                end
              end
            end
          in
          link 1;
          true
        end
      end
    in
    retry ()

  let insert t k e = insert_with_height t ~height:(random_height t) k e

  let delete t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let found, preds, succs, _ = find_window t kb in
    if not found then false
    else begin
      let victim = succs.(0) in
      (* Best-effort backlink: set from the deleter's window before the
         marking - exactly the "not guaranteed to be set when needed"
         discipline (a concurrent traversal may hit the marks first). *)
      M.set victim.backlink (Node preds.(0));
      let h = height victim in
      for l = h - 1 downto 1 do
        let rec mark_level () =
          let s = M.get victim.nexts.(l) in
          if not s.mark then
            if
              not
                (M.cas victim.nexts.(l) ~kind:Ev.Marking ~expect:s
                   { s with mark = true })
            then mark_level ()
        in
        mark_level ()
      done;
      let rec mark0 () =
        let s = M.get victim.nexts.(0) in
        if s.mark then false
        else if
          M.cas victim.nexts.(0) ~kind:Ev.Marking ~expect:s
            { s with mark = true }
        then begin
          ignore (find_window t kb);
          true
        end
        else mark0 ()
      in
      mark0 ()
    end

  let fold t f acc =
    let rec go acc = function
      | Null -> acc
      | Node n ->
          if n == t.tail then acc
          else
            let s = M.get n.nexts.(0) in
            let acc =
              match (n.key, n.elt) with
              | Mid k, Some e when not s.mark -> f acc k e
              | _ -> acc
            in
            go acc s.right
    in
    go acc (M.get t.head.nexts.(0)).right

  let to_list t = List.rev (fold t (fun acc k e -> (k, e) :: acc) [])
  let length t = fold t (fun acc _ _ -> acc + 1) 0

  (* Same quiescent discipline as the Fraser baseline: marked nodes may
     survive if nothing traverses past them; unmarked nodes are strictly
     sorted per level. *)
  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    for l = 0 to t.max_level - 1 do
      let rec go prev_unmarked = function
        | Null -> fail "st-skiplist: level %d ends before tail" l
        | Node n ->
            if n == t.tail then ()
            else begin
              if Array.length n.nexts <= l then
                fail "st-skiplist: node too short for level %d" l;
              let s = M.get n.nexts.(l) in
              if s.mark then go prev_unmarked s.right
              else begin
                if not (BK.lt prev_unmarked n.key) then
                  fail "st-skiplist: level %d unsorted" l;
                go n.key s.right
              end
            end
      in
      go t.head.key (M.get t.head.nexts.(l)).right
    done
end

module Atomic_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
