(** Lock-free skip list of Fomitchev & Ruppert (PODC 2004, Section 4).

    Each key is a {e tower} of nodes, one per level; every level is a sorted
    singly-linked list maintained with the Section 3 algorithms (mark and
    flag bits, backlinks), so recovery from interference is local at every
    level.  Non-root nodes carry immutable [down] and [tower_root] pointers;
    a tower whose root is marked is {e superfluous}, and searches physically
    delete any superfluous node they encounter (full three-step deletion at
    that level), which is what prevents repeated traversals of dead regions
    (EXP-9 measures the ablation).

    Insertion builds the tower bottom-up and is linearized when the root is
    linked; a deletion arriving mid-build stops the build and removes the
    just-added node.  Deletion deletes the root first (linearization: its
    marking) and leaves the remaining levels to a cleanup search.

    Deviations from the paper (recorded in DESIGN.md): the head tower is
    preallocated up to [max_level] instead of growing through [up]
    pointers, and one tail sentinel is shared by all levels; both are
    unobservable through this interface. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) : sig
  type key = K.t
  type 'a t

  val name : string

  val create : unit -> 'a t
  (** [create_with ~max_level:24 ~help_superfluous:true ()]. *)

  val create_with :
    ?max_level:int ->
    ?help_superfluous:bool ->
    ?use_hints:bool ->
    ?use_backoff:bool ->
    ?reuse_descriptors:bool ->
    unit ->
    'a t
  (** [~help_superfluous:false] is the EXP-9 ablation: searches traverse
      superfluous towers instead of deleting them, and deletions skip the
      upper-level cleanup.  Only safe when keys are never reinserted (a
      stale same-key upper node would block a new tower forever).

      [use_hints] (default [true]) enables per-domain tower-path caching
      (Foresight-style): each search starts from the calling domain's last
      recorded per-level positions, validated per Section 3.2 before use
      (unmarked at that level with key below the target; marked entries
      recover through backlinks, unusable ones fall back to that level's
      head), and an insertion's upper-level searches reuse the tower path
      its own lower levels just recorded.  [~use_hints:false] is the EXP-17
      ablation.

      [use_backoff] (default [false]) inserts bounded exponential backoff
      ([Mem.S.pause]) before re-entering a C&S retry loop after a failed
      C&S — in TRYMARK, TRYFLAGNODE and INSERTNODE.  Helping is never
      delayed.  EXP-18 measures its effect under spurious-C&S-failure
      storms.

      [reuse_descriptors] (default [true]) interns succ descriptors per
      node exactly as in [Lf_list.Fr_list] (see there and DESIGN.md §12):
      retry loops and the per-level three-step protocol reuse
      physically-equal descriptors instead of allocating per C&S attempt.
      [~reuse_descriptors:false] is the EXP-22 allocating ablation. *)

  (** {1 Dictionary operations (SEARCH_SL / INSERT_SL / DELETE_SL)} *)

  val find : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool

  val insert : 'a t -> key -> 'a -> bool
  (** Tower height drawn by fair coin flips (geometric, capped at
      [max_level]); [false] on duplicate. *)

  val insert_with_height : 'a t -> height:int -> key -> 'a -> bool
  (** Deterministic-height insertion for tests and experiments; the height
      is clamped to [\[1, max_level\]]. *)

  val delete : 'a t -> key -> bool

  val delete_min : 'a t -> (key * 'a) option
  (** Claim the leftmost regular root with the three-step deletion
      (Lotan-Shavit style priority-queue removal).  Quiescently consistent:
      a racing smaller insert may be missed; each element is claimed by
      exactly one caller. *)

  (** {1 Batched operations}

      The Träff–Pöter "pragmatic" pattern: the batch is processed in key
      order threading one private tower path, so a batch of b nearby keys
      descends from the top once and then crawls right.  Results are in
      the caller's original order; each element is an independent
      linearizable operation that takes effect inside the batch call. *)

  val insert_batch : 'a t -> (key * 'a) list -> bool list
  val delete_batch : 'a t -> key list -> bool list
  val mem_batch : 'a t -> key list -> bool list

  val hint_stats : 'a t -> Lf_kernel.Hint.stats option
  (** Summed hint-cache counters ([None] when hints are off).  A "hit" is a
      search that adopted at least one cached level entry; "stale" means a
      path existed but no entry survived validation.  Quiescent use only. *)

  (** {1 Order-aware operations} *)

  val find_ge : 'a t -> key -> (key * 'a) option
  (** Successor query in expected O(log n). *)

  val min_binding : 'a t -> (key * 'a) option

  val max_binding : 'a t -> (key * 'a) option
  (** Largest regular binding, by walking right before descending:
      expected O(log n). *)

  val fold_range : 'a t -> lo:key -> hi:key -> ('b -> key -> 'a -> 'b) -> 'b -> 'b
  (** In-order fold over [lo <= key <= hi]; weakly consistent under
      concurrency. *)

  (** {1 Snapshots (exact at quiescence)} *)

  val fold : 'a t -> ('b -> key -> 'a -> 'b) -> 'b -> 'b
  val to_list : 'a t -> (key * 'a) list
  val length : 'a t -> int

  val level_counts : 'a t -> int array
  (** [level_counts t].(l-1) is the number of non-sentinel nodes linked on
      level [l] (marked ones included). *)

  val height_histogram : 'a t -> int array
  (** [height_histogram t].(h) is the number of towers of height [h],
      obtained by differencing {!level_counts} (EXP-7). *)

  val keys_at_level : 'a t -> int -> key list
  (** Keys physically linked on one level, in order, regardless of marks. *)

  val check_invariants : 'a t -> unit
  (** Quiescent validation of every level (sortedness, no marked/flagged
      nodes, down-pointer key consistency, no surviving superfluous nodes
      in helping mode).  Raises [Failure] on violation. *)
end

module Atomic_int : module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)

module Atomic_string :
  module type of Make (Lf_kernel.Ordered.String) (Lf_kernel.Atomic_mem)
