(* Pugh's sequential skip list (CACM 1990): the oracle the concurrent skip
   list is tested against, and the sequential baseline of EXP-6 (expected
   O(log n) search cost).

   Classic array-of-forward-pointers representation.  [steps] counters are
   exposed so EXP-6 can compare search costs against the lock-free version
   without instrumenting through [Mem]. *)

module Make (K : Lf_kernel.Ordered.S) = struct
  type key = K.t

  type 'a node = { nkey : K.t; nelt : 'a; forward : 'a node option array }

  type 'a t = {
    max_level : int;
    mutable level : int; (* highest level currently in use, >= 1 *)
    header : 'a node option array; (* forward pointers of the -inf header *)
    rng : Lf_kernel.Splitmix.t;
    mutable size : int;
    mutable steps : int; (* node visits, for EXP-6 *)
  }

  let name = "pugh-seq-skiplist"

  let create_with ?(max_level = 32) ?(seed = 0x5eed) () =
    {
      max_level;
      level = 1;
      header = Array.make max_level None;
      rng = Lf_kernel.Splitmix.create seed;
      size = 0;
      steps = 0;
    }

  let create () = create_with ()

  let random_level t =
    let rec go l =
      if l < t.max_level && Lf_kernel.Splitmix.bool t.rng then go (l + 1)
      else l
    in
    go 1

  (* Walk down from the top level; [update.(l)] collects the rightmost node
     at level l+1 whose key is < k (or None for the header). *)
  let locate t k update =
    let node_at = function None -> t.header | Some n -> n.forward in
    let rec walk x l =
      if l < 0 then x
      else begin
        let rec right x =
          match (node_at x).(l) with
          | Some n when K.compare n.nkey k < 0 ->
              t.steps <- t.steps + 1;
              right (Some n)
          | _ -> x
        in
        let x = right x in
        (match update with Some u -> u.(l) <- x | None -> ());
        walk x (l - 1)
      end
    in
    let x = walk None (t.level - 1) in
    (node_at x).(0)

  let find t k =
    match locate t k None with
    | Some n when K.compare n.nkey k = 0 -> Some n.nelt
    | _ -> None

  let mem t k = Option.is_some (find t k)

  let insert t k e =
    let update = Array.make t.max_level None in
    match locate t k (Some update) with
    | Some n when K.compare n.nkey k = 0 -> false
    | _ ->
        let lvl = random_level t in
        if lvl > t.level then begin
          (* New top levels descend from the header. *)
          t.level <- lvl
        end;
        let node = { nkey = k; nelt = e; forward = Array.make lvl None } in
        for l = 0 to lvl - 1 do
          let preds = match update.(l) with None -> t.header | Some p -> p.forward in
          node.forward.(l) <- preds.(l);
          preds.(l) <- Some node
        done;
        t.size <- t.size + 1;
        true

  let delete t k =
    let update = Array.make t.max_level None in
    match locate t k (Some update) with
    | Some n when K.compare n.nkey k = 0 ->
        for l = 0 to Array.length n.forward - 1 do
          let preds = match update.(l) with None -> t.header | Some p -> p.forward in
          (match preds.(l) with
          | Some m when m == n -> preds.(l) <- n.forward.(l)
          | _ -> ())
        done;
        while
          t.level > 1 && t.header.(t.level - 1) = None
        do
          t.level <- t.level - 1
        done;
        t.size <- t.size - 1;
        true
    | _ -> false

  let to_list t =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go ((n.nkey, n.nelt) :: acc) n.forward.(0)
    in
    go [] t.header.(0)

  let length t = t.size

  let reset_steps t = t.steps <- 0
  let steps t = t.steps

  (* Histogram of tower heights: histogram.(h) = #nodes of height h. *)
  let height_histogram t =
    let h = Array.make (t.max_level + 1) 0 in
    let rec go = function
      | None -> ()
      | Some n ->
          let lvl = Array.length n.forward in
          h.(lvl) <- h.(lvl) + 1;
          go n.forward.(0)
    in
    go t.header.(0);
    h

  let check_invariants t =
    (* Sorted at every level, and every level-l chain is a subsequence of
       level 0. *)
    for l = 0 to t.level - 1 do
      let rec go prev = function
        | None -> ()
        | Some n ->
            (match prev with
            | Some p when K.compare p.nkey n.nkey >= 0 ->
                failwith "pugh: keys unsorted"
            | _ -> ());
            go (Some n) n.forward.(l)
      in
      go None t.header.(l)
    done;
    let rec count acc = function
      | None -> acc
      | Some n -> count (acc + 1) n.forward.(0)
    in
    if not (Int.equal (count 0 t.header.(0)) t.size) then
      failwith "pugh: size mismatch"
end

module Int = Make (Lf_kernel.Ordered.Int)
