(* Lock-free skip list of Fomitchev & Ruppert (PODC 2004, Section 4).

   Each key is represented by a *tower* of nodes, one node per level; the
   nodes of one level form a singly-linked list maintained with the
   linked-list algorithms of Section 3 (succ descriptors with mark and flag
   bits, backlinks).  Every non-root node carries an immutable [down]
   pointer to the node one level below and a [tower_root] pointer to the
   root (level-1) node of its tower; a tower whose root is marked is
   *superfluous* and searches physically delete any superfluous node they
   encounter (three-step deletion at that level), so that chains of
   backlinks on the lower levels cannot be retraversed indefinitely.

   Insertion builds a tower bottom-up and is linearized when the root is
   inserted; if the root gets marked while upper levels are being built, the
   insertion stops (and removes the node it just added).  Deletion deletes
   the root first (linearization point: the root's marking) and then cleans
   the remaining levels top-down via a search.

   Deviations from the paper, recorded in DESIGN.md:
   - the head tower is preallocated up to [max_level] instead of growing
     through [up] pointers; FINDSTART_SL walks the preallocated array with
     the same stop condition (the level above has no content);
   - a single tail sentinel is shared by all levels (its successor field is
     never modified, so per-level tails are unobservable);
   - [create_with ~help_superfluous:false] is the EXP-9 ablation in which
     searches traverse superfluous towers instead of deleting them.  It is
     only safe when keys are never reinserted (see EXP-9), which is why it
     is not the default. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) = struct
  module BK = Lf_kernel.Ordered.Bounded (K)
  module Ev = Lf_kernel.Mem_event
  module H = Lf_kernel.Hint.Make (M)

  type key = K.t

  type 'a node = {
    key : K.t Lf_kernel.Ordered.bounded;
    elt : 'a option; (* Some only at root nodes of real towers *)
    level : int; (* 1-based; sentinels carry their own level *)
    down : 'a link; (* Null at level 1 *)
    tower_root : 'a link; (* Null for roots and sentinels (self / none) *)
    succ : 'a succ M.aref;
    backlink : 'a link M.aref;
    (* Descriptor-interning caches, exactly as in Fr_list (DESIGN.md §12):
       the last marked / flagged / unlinking descriptor built for this
       node.  Racy plain fields — a stale read fails validation and
       allocates fresh.  Each level runs the Section 3 protocol
       independently, and each node lives at exactly one level, so the
       per-node caches need no level qualification. *)
    mutable mk_cache : 'a succ;
    mutable fl_cache : 'a succ;
    mutable un_cache : 'a succ;
  }

  and 'a succ = { right : 'a link; mark : bool; flag : bool }
  and 'a link = Null | Node of 'a node

  (* A remembered tower path (Foresight-style): [levels.(l-1)] is the last
     node a search ended on at level l ([Null] = nothing remembered), [top]
     the highest level with an entry.  One path per domain lives in the
     hint cache; batches thread a private one.  Every entry is re-validated
     before use, so a path may be arbitrarily stale. *)
  type 'a hint_path = { mutable top : int; levels : 'a link array }

  type 'a t = {
    max_level : int;
    heads : 'a node array; (* heads.(l-1) is the -inf sentinel of level l *)
    tail : 'a node; (* shared +inf sentinel *)
    help_superfluous : bool;
    use_backoff : bool;
    reuse_descriptors : bool; (* [false] = allocating EXP-22 ablation *)
    hints : 'a hint_path H.t option; (* [None] = hints-off ablation *)
  }

  let name = "fr-skiplist"

  (* Declare a node's cells to a checked memory (Lf_check.Check_mem); a
     no-op elsewhere, and guarded by [M.stamp <> 0] so unchecked memories
     do not even pay for rendering the owner key.  Every level runs the
     Section 3 protocol independently, so each node is annotated exactly
     like a list node; the level is folded into the owner name to keep
     reports and per-level chain snapshots readable. *)
  let succ_view_of n (s : _ succ) : Lf_kernel.Protocol.succ_view =
    {
      right_id =
        (match s.right with
        | Null -> Lf_kernel.Protocol.null_id
        | Node r -> M.stamp r.succ);
      right_gt_owner =
        (match s.right with Null -> true | Node r -> BK.lt n.key r.key);
      mark = s.mark;
      flag = s.flag;
    }

  let link_view_of n (l : _ link) : Lf_kernel.Protocol.link_view =
    match l with
    | Null ->
        { target_id = Lf_kernel.Protocol.null_id; left_of_owner = true }
    | Node b -> { target_id = M.stamp b.succ; left_of_owner = BK.lt b.key n.key }

  let annotate_node ?(head = false) ?(sentinel = false) ~level n =
    if M.stamp n.succ <> 0 then begin
      let owner = Format.asprintf "L%d:%a" level BK.pp n.key in
      M.annotate n.succ
        (Lf_kernel.Protocol.Succ
           { owner; head; sentinel; view = succ_view_of n });
      M.annotate n.backlink
        (Lf_kernel.Protocol.Backlink { owner; view = link_view_of n })
    end

  let rng = Lf_kernel.Splitmix.domain_local 0x5ee

  let create_with ?(max_level = 24) ?(help_superfluous = true)
      ?(use_hints = true) ?(use_backoff = false) ?(reuse_descriptors = true)
      () =
    let tail_succ = { right = Null; mark = false; flag = false } in
    let tail =
      {
        key = Pos_inf;
        elt = None;
        level = 0;
        down = Null;
        tower_root = Null;
        succ = M.make tail_succ;
        backlink = M.make Null;
        mk_cache = tail_succ;
        fl_cache = tail_succ;
        un_cache = tail_succ;
      }
    in
    let heads = Array.make max_level tail in
    annotate_node ~sentinel:true ~level:0 tail;
    for l = 1 to max_level do
      let head_succ = { right = Node tail; mark = false; flag = false } in
      heads.(l - 1) <-
        {
          key = Neg_inf;
          elt = None;
          level = l;
          down = (if l = 1 then Null else Node heads.(l - 2));
          tower_root = Null;
          succ = M.make head_succ;
          backlink = M.make Null;
          mk_cache = head_succ;
          fl_cache = head_succ;
          un_cache = head_succ;
        };
      annotate_node ~head:true ~sentinel:true ~level:l heads.(l - 1)
    done;
    let hints = if use_hints then Some (H.create ()) else None in
    { max_level; heads; tail; help_superfluous; use_backoff;
      reuse_descriptors; hints }

  let create () = create_with ()
  let head_at t l = t.heads.(l - 1)

  let as_node = function
    | Node n -> n
    | Null -> invalid_arg "Fr_skiplist: dereferenced tail successor"

  let same_node l n = match l with Node m -> m == n | Null -> false

  let same_link a b =
    match (a, b) with
    | Null, Null -> true
    | Node x, Node y -> x == y
    | _ -> false

  (* A node is superfluous when the root of its tower is marked.  Roots and
     sentinels answer false here: a marked root is handled by the ordinary
     marked-node logic. *)
  let is_superfluous n =
    match n.tower_root with
    | Null -> false
    | Node r -> (M.get r.succ).mark

  (* Descriptor interning, as in Fr_list (see there and DESIGN.md §12 for
     the safety argument): C&S expects always come from [M.get], so reuse
     only changes the physical identity of the new value, and the
     [same_link] keying keeps descriptors for distinct rights distinct. *)

  let marked_desc t del (s : _ succ) =
    if not t.reuse_descriptors then { s with mark = true }
    else
      let c = del.mk_cache in
      if c.mark && (not c.flag) && same_link c.right s.right then c
      else begin
        let d = { right = s.right; mark = true; flag = false } in
        del.mk_cache <- d;
        d
      end

  let flagged_desc t prev (ps : _ succ) =
    if not t.reuse_descriptors then { ps with flag = true }
    else
      let c = prev.fl_cache in
      if c.flag && (not c.mark) && same_link c.right ps.right then c
      else begin
        let d = { right = ps.right; mark = false; flag = true } in
        prev.fl_cache <- d;
        d
      end

  let clean_desc t del next =
    if not t.reuse_descriptors then { right = next; mark = false; flag = false }
    else
      let c = del.un_cache in
      if (not c.mark) && (not c.flag) && same_link c.right next then c
      else begin
        let d = { right = next; mark = false; flag = false } in
        del.un_cache <- d;
        d
      end

  (* --- The per-level linked-list machinery (Section 3 reused). --- *)

  let help_marked t prev del =
    let next = (M.get del.succ).right in
    let expect = M.get prev.succ in
    if same_node expect.right del && (not expect.mark) && expect.flag then
      ignore
        (M.cas prev.succ ~kind:Ev.Physical_delete ~expect
           (clean_desc t del next))

  let rec help_flagged t prev del =
    M.set del.backlink (Node prev);
    if not (M.get del.succ).mark then try_mark t del;
    help_marked t prev del

  and try_mark t del = try_mark_n t del 0

  and try_mark_n t del fails =
    let s = M.get del.succ in
    if s.mark then ()
    else if s.flag then begin
      M.event Ev.Help;
      help_flagged t del (as_node s.right);
      try_mark_n t del fails
    end
    else if
      M.cas del.succ ~kind:Ev.Marking ~expect:s (marked_desc t del s)
    then ()
    else begin
      if t.use_backoff then M.pause fails;
      try_mark_n t del (fails + 1)
    end

  let rec backtrack p =
    if (M.get p.succ).mark then begin
      M.event Ev.Backlink_step;
      backtrack (as_node (M.get p.backlink))
    end
    else p

  (* SEARCHRIGHT: traverse one level starting at [curr] (curr.key <= k or
     curr is a head), helping physical deletions of marked nodes and - in
     the default mode - deleting superfluous towers encountered on the way.
     Returns (n1, n2) with n1.key <= k < n2.key (inclusive) or
     n1.key < k <= n2.key (exclusive), adjacent at some instant. *)
  let rec search_right t ~inclusive k curr0 =
    let goes_past key = if inclusive then BK.le key k else BK.lt key k in
    let rec loop curr next =
      if not (goes_past next.key) then (curr, next)
      else
        let nsucc = M.get next.succ in
        if nsucc.mark then begin
          let cs = M.get curr.succ in
          if (not cs.mark) || not (same_node cs.right next) then begin
            if same_node cs.right next then help_marked t curr next;
            M.event Ev.Next_update;
            loop curr (as_node (M.get curr.succ).right)
          end
          else begin
            (* curr and next both marked and adjacent: step through. *)
            M.event Ev.Curr_update;
            loop next (as_node (M.get next.succ).right)
          end
        end
        else if t.help_superfluous && is_superfluous next then begin
          (* Delete the superfluous node from this level (Section 4:
             searches perform all three deletion steps if necessary). *)
          match try_flag_node t curr next with
          | Some prev, _we_flagged ->
              help_flagged t prev next;
              M.event Ev.Next_update;
              loop prev (as_node (M.get prev.succ).right)
          | None, _ ->
              M.event Ev.Next_update;
              loop curr (as_node (M.get curr.succ).right)
        end
        else begin
          M.event Ev.Curr_update;
          loop next (as_node (M.get next.succ).right)
        end
    in
    loop curr0 (as_node (M.get curr0.succ).right)

  (* TRYFLAGNODE: flag the in-level predecessor of [target], relocating via
     backlinks and a level-local search when interference hits.  Returns
     [Some prev, true] if we placed the flag, [Some prev, false] if a
     concurrent deletion had placed it, [None, false] if [target] left the
     level. *)
  and try_flag_node t prev target =
    let rec loop fails prev =
      let ps = M.get prev.succ in
      if same_node ps.right target && (not ps.mark) && ps.flag then
        (Some prev, false)
      else if
        same_node ps.right target && (not ps.mark) && (not ps.flag)
        && M.cas prev.succ ~kind:Ev.Flagging ~expect:ps
             (flagged_desc t prev ps)
      then (Some prev, true)
      else begin
        let ps' = M.get prev.succ in
        if same_node ps'.right target && (not ps'.mark) && ps'.flag then
          (Some prev, false)
        else begin
          if t.use_backoff then M.pause fails;
          let prev = backtrack prev in
          let prev, del = search_right t ~inclusive:false target.key prev in
          if del != target then (None, false) else loop (fails + 1) prev
        end
      end
    in
    loop 0 prev

  (* DELETENODE: the three-step deletion given a position hint. *)
  let delete_node t prev del =
    match try_flag_node t prev del with
    | Some prev, we_flagged ->
        help_flagged t prev del;
        if we_flagged then `Deleted_by_us else `Deleted_by_other
    | None, _ -> `Gone

  let level_nonempty t l =
    match (M.get (head_at t l).succ).right with
    | Node n -> n != t.tail
    | Null -> false

  (* FINDSTART_SL: the highest level that has content (or [v] if higher). *)
  let find_start t v =
    let rec go l =
      if l < t.max_level && (l < v || level_nonempty t (l + 1)) then go (l + 1)
      else l
    in
    let lvl = go 1 in
    (head_at t lvl, lvl)

  (* --- Hint paths (Section 3.2's guarantee as an optimization). ---

     A level-l search may start at any node that was once linked at level l
     and is currently unmarked there with key <= the target (< for
     exclusive searches): level l runs the Section 3 list protocol, under
     which unmarked nodes are never unlinked.  A marked candidate recovers
     leftward through its level-l backlinks; a candidate that is still
     unusable falls back to that level's head. *)

  let rec unmark_left t ~level n =
    if (M.get n.succ).mark then begin
      M.event Ev.Backlink_step;
      match M.get n.backlink with
      | Null -> head_at t level
      | Node p -> unmark_left t ~level p
    end
    else n

  (* A validated candidate from a path entry, or [None].  Superfluous
     candidates (upper nodes of a tower whose root is marked) are rejected
     even though they are unmarked at their own level: the tower may have
     been logically deleted before this operation began, so adopting one
     could descend into the dead tower and observe its old binding — a
     non-linearizable read — besides starting past a node the search is
     responsible for helping to unlink. *)
  let path_candidate t ~inclusive k ~level link =
    match link with
    | Null -> None
    | Node c ->
        let c = unmark_left t ~level c in
        if
          (not (is_superfluous c))
          && (if inclusive then BK.le c.key k else BK.lt c.key k)
        then Some c
        else None

  let mk_path t = { top = 1; levels = Array.make t.max_level Null }

  (* The calling domain's path, created on first use.  [None] iff hints are
     off. *)
  let op_path t =
    match t.hints with
    | None -> None
    | Some h -> (
        match H.load h with
        | Some p -> Some p
        | None ->
            let p = mk_path t in
            H.store h p;
            Some p)

  (* SEARCHTOLEVEL_SL: descend, searching right at each level, until level
     [v]; returns the (n1, n2) window at level v.

     Without a path (hints off) this descends from FINDSTART_SL's level
     exactly as the paper writes it.  With a path — [?path] threads one
     explicitly (batches, tower building); otherwise the domain's cached
     path is used — the search starts at [max v path.top] (self-correcting
     one level upward per search while taller content exists), at each
     level adopts whichever is further right of the descended node and the
     validated path entry, and re-records the path on the way down.
     [account] classifies the search in the hint-cache statistics; only
     domain-cache-resolved searches account.  [full] forces the descent to
     begin at FINDSTART_SL's level even with a path: the cleanup search
     after a deletion must visit every level the dead tower might occupy,
     which a path that tops out below the tower would skip. *)
  let search_to_level ?path ?(account = false) ?(full = false) t ~inclusive k v
      =
    let v = min v t.max_level in
    let with_path p used =
      let start_level =
        let s = max v (min p.top t.max_level) in
        let s = if full then max s (snd (find_start t v)) else s in
        if s < t.max_level && level_nonempty t (s + 1) then s + 1 else s
      in
      let rec descend curr level =
        let curr =
          match path_candidate t ~inclusive k ~level p.levels.(level - 1) with
          | Some c when BK.le curr.key c.key ->
              if c != curr && c != head_at t level then used := true;
              c
          | _ -> curr
        in
        let curr, next = search_right t ~inclusive k curr in
        p.levels.(level - 1) <- Node curr;
        if level > v then descend (as_node curr.down) (level - 1)
        else (curr, next)
      in
      let r = descend (head_at t start_level) start_level in
      p.top <- start_level;
      r
    in
    match path with
    | Some p -> with_path p (ref false)
    | None -> (
        match t.hints with
        | None ->
            let start, level = find_start t v in
            let rec descend curr level =
              let curr, next = search_right t ~inclusive k curr in
              if level > v then descend (as_node curr.down) (level - 1)
              else (curr, next)
            in
            descend start level
        | Some h ->
            let p, fresh =
              match H.load h with
              | Some p -> (p, false)
              | None ->
                  let p = mk_path t in
                  H.store h p;
                  (p, true)
            in
            let used = ref false in
            let r = with_path p used in
            if account then
              if fresh then H.note_miss h
              else if !used then H.note_hit h
              else H.note_stale h;
            r)

  let hint_stats t = Option.map H.totals t.hints

  (* SEARCH_SL. *)
  let find t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let curr, _ = search_to_level ~account:true t ~inclusive:true kb 1 in
    if BK.equal curr.key kb then curr.elt else None

  let mem t k = Option.is_some (find t k)

  (* INSERTNODE: insert a fresh node with [key] between [prev] and [next] at
     one level, with the linked-list INSERT loop's recovery.  Returns the
     inserted node or [`Duplicate] when a node with the same key is found at
     this level. *)
  let insert_node t ~key ~elt ~down ~tower_root ~level prev next =
    (* Candidate reuse across failed C&S attempts, as in Fr_list: the
       private node survives while the re-searched successor is unchanged;
       retargeting its succ cell would cost an [M.set] step, so a changed
       successor builds afresh (step-neutral reuse). *)
    let candidate = ref None in
    let rec attempt fails prev next =
      let ps = M.get prev.succ in
      if ps.flag then begin
        M.event Ev.Help;
        help_flagged t prev (as_node ps.right);
        relocate fails prev
      end
      else if ps.mark || not (same_node ps.right next) then recover fails prev
      else begin
        let nn, desc =
          match !candidate with
          | Some (nn, inner, desc)
            when t.reuse_descriptors && same_node inner.right next ->
              (nn, desc)
          | _ ->
              let inner = { right = Node next; mark = false; flag = false } in
              let nn =
                {
                  key;
                  elt;
                  level;
                  down;
                  tower_root;
                  succ = M.make inner;
                  backlink = M.make Null;
                  mk_cache = inner;
                  fl_cache = inner;
                  un_cache = inner;
                }
              in
              annotate_node ~level nn;
              let desc = { right = Node nn; mark = false; flag = false } in
              candidate := Some (nn, inner, desc);
              (nn, desc)
        in
        if M.cas prev.succ ~kind:Ev.Insertion ~expect:ps desc then
          (prev, `Inserted nn)
        else begin
          if t.use_backoff then M.pause fails;
          recover (fails + 1) prev
        end
      end
    and recover fails prev =
      let ps = M.get prev.succ in
      if ps.flag then begin
        M.event Ev.Help;
        help_flagged t prev (as_node ps.right)
      end;
      relocate fails (backtrack prev)
    and relocate fails prev =
      let prev, next = search_right t ~inclusive:true key prev in
      if BK.equal prev.key key then (prev, `Duplicate)
      else attempt fails prev next
    in
    attempt 0 prev next

  let flip () = Lf_kernel.Splitmix.bool (rng ())

  let random_height t =
    let rec go h = if h < t.max_level && flip () then go (h + 1) else h in
    go 1

  (* INSERT_SL with an explicit tower height (used by tests and by the
     deterministic experiments; [insert] draws the height by coin flips).
     [?path] threads an explicit tower path (batches); otherwise the
     domain's cached path is used, so the upper-level searches of the
     ascend loop reuse the lower levels' just-recorded positions instead of
     re-descending from the top. *)
  let insert_with_path ?path t ~height k e =
    let height = max 1 (min height t.max_level) in
    let kb = Lf_kernel.Ordered.Mid k in
    let prev, next = search_to_level ?path ~account:true t ~inclusive:true kb 1 in
    if BK.equal prev.key kb then false
    else begin
      match
        insert_node t ~key:kb ~elt:(Some e) ~down:Null ~tower_root:Null
          ~level:1 prev next
      with
      | _, `Duplicate -> false
      | prev, `Inserted root ->
          let path = match path with Some _ as p -> p | None -> op_path t in
          (* Build the tower bottom-up; stop if the root gets marked. *)
          let rec ascend level last prev_hint =
            ignore prev_hint;
            if level > height then true
            else if (M.get root.succ).mark then true
            else begin
              let prev, next = search_to_level ?path t ~inclusive:true kb level in
              if BK.equal prev.key kb then begin
                (* A same-key node from an old superfluous tower blocks this
                   level; the search that found it is also removing it (or
                   our own root got marked) - retry. *)
                M.event Ev.Retry;
                if (M.get root.succ).mark then true
                else ascend level last prev
              end
              else
                match
                  insert_node t ~key:kb ~elt:None ~down:(Node last)
                    ~tower_root:(Node root) ~level prev next
                with
                | _, `Duplicate ->
                    M.event Ev.Retry;
                    if (M.get root.succ).mark then true else ascend level last prev
                | prev', `Inserted nn ->
                    if (M.get root.succ).mark then begin
                      (* The tower became superfluous while we were building
                         it: undo the node we just added. *)
                      ignore (delete_node t prev' nn);
                      true
                    end
                    else ascend (level + 1) nn prev'
            end
          in
          ignore (ascend 2 root prev);
          true
    end

  let insert_with_height t ~height k e = insert_with_path t ~height k e
  let insert t k e = insert_with_path t ~height:(random_height t) k e

  (* DELETE_SL: delete the root (linearization: its marking), then let a
     search clean the upper levels of the now-superfluous tower. *)
  let delete_with ?path t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let prev, del = search_to_level ?path ~account:true t ~inclusive:false kb 1 in
    if not (BK.equal del.key kb) then false
    else begin
      match delete_node t prev del with
      | `Deleted_by_us ->
          if t.help_superfluous && t.max_level >= 2 then begin
            let path = match path with Some _ as p -> p | None -> op_path t in
            ignore (search_to_level ?path ~full:true t ~inclusive:true kb 2)
          end;
          true
      | `Deleted_by_other | `Gone -> false
    end

  let delete t k = delete_with t k

  (* Batched operations (the Traeff-Poeter "pragmatic" pattern): process
     the batch in key order threading one private tower path, so a batch
     of b nearby keys descends from the top once and then crawls right.
     Entries are re-validated before every use, so the batch is safe under
     full concurrency; results are in the caller's original order, and each
     element linearizes independently inside the batch call. *)
  let run_batch t ~key_of ~f elems =
    let arr = Array.of_list elems in
    let n = Array.length arr in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let c = K.compare (key_of arr.(i)) (key_of arr.(j)) in
        if c <> 0 then c else Int.compare i j)
      order;
    let results = Array.make n false in
    let path = mk_path t in
    Array.iter (fun i -> results.(i) <- f ~path arr.(i)) order;
    Array.to_list results

  let insert_batch t kvs =
    run_batch t ~key_of:fst
      ~f:(fun ~path (k, e) ->
        insert_with_path ~path t ~height:(random_height t) k e)
      kvs

  let delete_batch t ks =
    run_batch t ~key_of:Fun.id ~f:(fun ~path k -> delete_with ~path t k) ks

  let mem_batch t ks =
    run_batch t ~key_of:Fun.id
      ~f:(fun ~path k ->
        let kb = Lf_kernel.Ordered.Mid k in
        let curr, _ = search_to_level ~path t ~inclusive:true kb 1 in
        BK.equal curr.key kb && Option.is_some curr.elt)
      ks

  (* Lotan-Shavit style delete-min on the root level: claim the leftmost
     regular root via the three-step deletion.  Quiescently consistent (a
     concurrent smaller insert may be missed), exact at quiescence. *)
  let rec delete_min t =
    let head = head_at t 1 in
    match (M.get head.succ).right with
    | Null -> None
    | Node first ->
        if first == t.tail then None
        else begin
          match delete_node t head first with
          | `Deleted_by_us ->
              if t.help_superfluous && t.max_level >= 2 then
                ignore (search_to_level ~full:true t ~inclusive:true first.key 2);
              (match (first.key, first.elt) with
              | Mid k, Some e -> Some (k, e)
              | _ -> None)
          | `Deleted_by_other | `Gone -> delete_min t
        end

  (* Successor query in O(log n) expected: the smallest regular binding
     with key >= [k]. *)
  let find_ge t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let rec go () =
      let n1, n2 = search_to_level t ~inclusive:false kb 1 in
      if n2 == t.tail then None
      else if (M.get n2.succ).mark then begin
        help_marked t n1 n2;
        go ()
      end
      else
        match (n2.key, n2.elt) with
        | Mid key, Some e -> Some (key, e)
        | _ -> None
    in
    go ()

  let min_binding t =
    let head = head_at t 1 in
    let rec go () =
      match (M.get head.succ).right with
      | Null -> None
      | Node n ->
          if n == t.tail then None
          else if (M.get n.succ).mark then begin
            help_marked t head n;
            go ()
          end
          else (
            match (n.key, n.elt) with
            | Mid k, Some e -> Some (k, e)
            | _ -> None)
    in
    go ()

  (* Largest regular binding, located by walking right at each level before
     descending: O(log n) expected.  If the rightmost bottom node is marked
     its backlink leads to the nearest unmarked predecessor. *)
  let max_binding t =
    let rightmost curr =
      let rec go curr =
        match (M.get curr.succ).right with
        | Node n when n != t.tail -> go n
        | Node _ | Null -> curr
      in
      go curr
    in
    let start, level = find_start t 1 in
    let rec descend curr level =
      let curr = rightmost curr in
      if level > 1 then descend (as_node curr.down) (level - 1) else curr
    in
    let last = backtrack (rightmost (descend start level)) in
    match (last.key, last.elt) with
    | Mid k, Some e -> Some (k, e)
    | _ -> None

  (* Fold over regular bindings with lo <= key <= hi, in key order; weakly
     consistent under concurrency (like any lock-free iterator). *)
  let fold_range t ~lo ~hi f acc =
    if K.compare lo hi > 0 then acc
    else begin
      let hib = Lf_kernel.Ordered.Mid hi in
      let _, start = search_to_level t ~inclusive:false (Mid lo) 1 in
      let rec go acc n =
        if n == t.tail || BK.lt hib n.key then acc
        else
          let s = M.get n.succ in
          let acc =
            match (n.key, n.elt) with
            | Mid k, Some e when not s.mark -> f acc k e
            | _ -> acc
          in
          match s.right with Null -> acc | Node m -> go acc m
      in
      go acc start
    end

  (* --- Quiescent snapshots and validation. --- *)

  let fold t f acc =
    let rec go acc = function
      | Null -> acc
      | Node n -> (
          let s = M.get n.succ in
          match (n.key, n.elt) with
          | Mid k, Some e when not s.mark -> go (f acc k e) s.right
          | _ -> go acc s.right)
    in
    go acc (M.get (head_at t 1).succ).right

  let to_list t = List.rev (fold t (fun acc k e -> (k, e) :: acc) [])
  let length t = fold t (fun acc _ _ -> acc + 1) 0

  (* Number of non-sentinel nodes on each level; level_counts.(l-1) is the
     population of level l.  Tower-height histogram follows by differencing
     (EXP-7). *)
  let level_counts t =
    Array.init t.max_level (fun i ->
        let rec go acc = function
          | Null -> acc
          | Node n ->
              if n == t.tail then acc
              else go (acc + 1) (M.get n.succ).right
        in
        go 0 (M.get (head_at t (i + 1)).succ).right)

  (* Keys of the non-sentinel nodes physically linked on level [l], in
     order, regardless of mark state.  Quiescent/simulator introspection. *)
  let keys_at_level t l =
    let rec go acc = function
      | Null -> List.rev acc
      | Node n ->
          if n == t.tail then List.rev acc
          else
            let acc =
              match n.key with Lf_kernel.Ordered.Mid k -> k :: acc | _ -> acc
            in
            go acc (M.get n.succ).right
    in
    go [] (M.get (head_at t l).succ).right

  let height_histogram t =
    let counts = level_counts t in
    let h = Array.make (t.max_level + 1) 0 in
    for l = 1 to t.max_level do
      let this = counts.(l - 1) in
      let above = if Int.equal l t.max_level then 0 else counts.(l) in
      h.(l) <- this - above
    done;
    h

  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    for l = 1 to t.max_level do
      let rec go prev = function
        | Null -> fail "fr-skiplist: level %d ends before the tail" l
        | Node n ->
            if n == t.tail then ()
            else begin
              if not (BK.lt prev.key n.key) then
                fail "fr-skiplist: level %d keys unsorted" l;
              let s = M.get n.succ in
              if t.help_superfluous && s.mark then
                fail "fr-skiplist: marked node at quiescence (level %d)" l;
              if s.flag then
                fail "fr-skiplist: flagged node at quiescence (level %d)" l;
              if not (Int.equal n.level l) then
                fail "fr-skiplist: node level tag mismatch at level %d" l;
              (match n.down with
              | Node d when l > 1 ->
                  if not (BK.equal d.key n.key) then
                    fail "fr-skiplist: down pointer key mismatch"
              | Null when l = 1 -> ()
              | _ -> fail "fr-skiplist: down pointer shape at level %d" l);
              (if t.help_superfluous then
                 match n.tower_root with
                 | Null -> if l <> 1 then fail "fr-skiplist: upper node w/o root"
                 | Node r ->
                     if (M.get r.succ).mark then
                       fail "fr-skiplist: superfluous node survives quiescence");
              go n s.right
            end
      in
      go (head_at t l) (M.get (head_at t l).succ).right
    done
end

module Atomic_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
module Atomic_string = Make (Lf_kernel.Ordered.String) (Lf_kernel.Atomic_mem)
