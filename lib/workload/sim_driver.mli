(** Workload drivers for structures living in the simulator's memory.

    The structure under test is passed as closures already specialized to a
    [Sim_mem]-instantiated dictionary; each simulated process runs a seeded
    random operation mix bracketed by [Sim.op_begin]/[op_end], the harness
    maintaining the current size so every operation record carries its
    n(S).  Feeds EXP-1 and the randomized correctness tests. *)

type ops = {
  insert : int -> bool;
  delete : int -> bool;
  find : int -> bool;
}

val run_mixed :
  ?policy:Lf_dsim.Sim.policy ->
  ?initial_size:int ->
  ?keygen:(int -> Keygen.t) ->
  procs:int ->
  ops_per_proc:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  ops ->
  Lf_dsim.Sim.result
(** Run [procs] processes, each performing [ops_per_proc] operations.
    [initial_size] is the number of keys already present (from
    {!prefill}).  [keygen] maps a process id to its key generator
    (default: every process draws uniformly from [\[0, key_range)]); pass
    a closure returning one shared [Keygen.ascending ()] for the global
    ascending-key workload. *)

val prefill : key_range:int -> count:int -> seed:int -> ops -> int
(** Insert [count] distinct keys via a single simulated process; returns
    the number inserted (= [count]). *)

val run_recorded :
  ?policy:Lf_dsim.Sim.policy ->
  procs:int ->
  ops_per_proc:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  ops ->
  Lf_lin.History.t
(** As {!run_mixed}, additionally recording every operation with
    scheduler-order invocation/return ticks for the linearizability
    checker. *)
