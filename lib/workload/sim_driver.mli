(** Workload drivers for structures living in the simulator's memory.

    The structure under test is passed as closures already specialized to a
    [Sim_mem]-instantiated dictionary; each simulated process runs a seeded
    random operation mix bracketed by [Sim.op_begin]/[op_end], the harness
    maintaining the current size so every operation record carries its
    n(S).  Feeds EXP-1 and the randomized correctness tests. *)

type ops = {
  insert : int -> bool;
  delete : int -> bool;
  find : int -> bool;
}

val run_mixed :
  ?policy:Lf_dsim.Sim.policy ->
  ?initial_size:int ->
  ?keygen:(int -> Keygen.t) ->
  procs:int ->
  ops_per_proc:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  ops ->
  Lf_dsim.Sim.result
(** Run [procs] processes, each performing [ops_per_proc] operations.
    [initial_size] is the number of keys already present (from
    {!prefill}).  [keygen] maps a process id to its key generator
    (default: every process draws uniformly from [\[0, key_range)]); pass
    a closure returning one shared [Keygen.ascending ()] for the global
    ascending-key workload. *)

val prefill : key_range:int -> count:int -> seed:int -> ops -> int
(** Insert [count] distinct keys via a single simulated process; returns
    the number inserted (= [count]). *)

val run_recorded :
  ?policy:Lf_dsim.Sim.policy ->
  procs:int ->
  ops_per_proc:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  ops ->
  Lf_lin.History.t
(** As {!run_mixed}, additionally recording every operation with
    scheduler-order invocation/return ticks for the linearizability
    checker. *)

(** {1 Chaos in the simulator (EXP-18)}

    Deterministic counterpart of {!Runner.run_chaos}: the caller wraps the
    structure's memory in [Lf_fault.Fault_mem.Make (Sim_mem)] and installs
    a fault plan; faults then hit exact protocol points (e.g. between
    TRYFLAG and TRYMARK) and every run is replayable from the seeds. *)

type sim_chaos_report = {
  sc_procs : int;
  sc_steps : int;
  sc_completed : int array;  (** operations completed per process *)
  sc_crashed : Lf_dsim.Sim.pid list;
      (** processes stopped mid-operation by an injected [Fault.Crashed] *)
  sc_starved : (Lf_dsim.Sim.pid * int) list;
      (** processes parked by the watchdog, with the step count their
          over-budget operation had reached *)
  sc_watchdog_tripped : bool;
  sc_step_budget : int;
  sc_helps : int;  (** helping events summed over all processes *)
  sc_injected : int;  (** injected-fault delta from the caller's sampler *)
}

val pp_sim_chaos_report : Format.formatter -> sim_chaos_report -> unit

val run_chaos_sim :
  ?policy:Lf_dsim.Sim.policy ->
  ?initial_size:int ->
  ?step_budget:int ->
  ?max_steps:int ->
  ?injected:(unit -> int) ->
  procs:int ->
  ops_per_proc:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  ops ->
  sim_chaos_report
(** As {!run_mixed}, under a fault plan and a starvation watchdog: a
    process spending more than [step_budget] (default 5000) shared-memory
    steps inside one operation is parked with {!Lf_dsim.Sim.crash} and
    reported in [sc_starved] — so a non-lock-free structure (the [No_help]
    mutant, say, spinning behind a crashed flag holder) produces a
    diagnosis instead of running the scheduler forever.  A process whose
    body is unwound by [Fault.Crashed] stops without [op_end] — its open
    operation is folded into the records with [completed = false], and its
    flags/marks stay behind for survivors to help.  Invariants are not
    checked here; see [Lf_check.Check_mem.check_crash_residue]. *)
