(* Key generators for workloads: the distributions the experimental papers
   the paper cites sweep over (uniform over a key range, skewed/hotspot, and
   ascending sequences for end-of-list contention). *)

type t =
  | Uniform of int (* range [0, n) *)
  | Hotspot of { range : int; hot : int; hot_pct : int; base : int }
      (* hot_pct% of draws land uniformly in [base, base + hot), rest in
         [0, range).  A nonzero [base] parks the hot window away from the
         front of the key space, so hint-guided searches (EXP-17) cannot
         win just because the hot keys sit next to the head. *)
  | Zipf of { range : int; theta : float }
  | Ascending of int ref (* each draw returns the next integer *)
  | Choice of int array (* uniform over a fixed key set *)
  | Cycle of { keys : int array; next : int ref }
      (* the fixed key set in order, wrapping — an ascending stream
         confined to chosen keys (e.g. one shard's keyspace) *)
  | Mixture of { pct : int; a : t; b : t }
      (* pct% of draws from [a], the rest from [b] — e.g. a shard-targeted
         hot set blended with uniform background traffic (EXP-23) *)

let uniform range = Uniform range
let hotspot ?(base = 0) ~range ~hot ~hot_pct () =
  if base < 0 || base + hot > range then
    invalid_arg "Keygen.hotspot: hot window outside the key range";
  Hotspot { range; hot; hot_pct; base }
let ascending () = Ascending (ref 0)

let of_array keys =
  if Array.length keys = 0 then invalid_arg "Keygen.of_array: empty key set";
  Choice (Array.copy keys)

let cycle keys =
  if Array.length keys = 0 then invalid_arg "Keygen.cycle: empty key set";
  Cycle { keys = Array.copy keys; next = ref 0 }

let mixture ~pct a b =
  if pct < 0 || pct > 100 then invalid_arg "Keygen.mixture: pct outside 0..100";
  Mixture { pct; a; b }

(* Zipf via the standard CDF-inversion approximation (Gray et al.); theta in
   (0, 1), higher = more skewed. *)
type zipf_state = { zetan : float; alpha : float; eta : float; range : int }

let zipf_table : (int * int, zipf_state) Hashtbl.t = Hashtbl.create 8

let zipf_state ~range ~theta =
  let key = (range, int_of_float (theta *. 1000.)) in
  match Hashtbl.find_opt zipf_table key with
  | Some s -> s
  | None ->
      let zetan = ref 0.0 in
      for i = 1 to range do
        zetan := !zetan +. (1.0 /. Float.pow (float_of_int i) theta)
      done;
      let zeta2 = (1.0 /. 1.0) +. (1.0 /. Float.pow 2.0 theta) in
      let alpha = 1.0 /. (1.0 -. theta) in
      let eta =
        (1.0 -. Float.pow (2.0 /. float_of_int range) (1.0 -. theta))
        /. (1.0 -. (zeta2 /. !zetan))
      in
      let s = { zetan = !zetan; alpha; eta; range } in
      Hashtbl.replace zipf_table key s;
      s

let zipf ~range ~theta =
  ignore (zipf_state ~range ~theta);
  Zipf { range; theta }

let rec draw t rng =
  match t with
  | Choice a -> a.(Lf_kernel.Splitmix.int rng (Array.length a))
  | Cycle { keys; next } ->
      let v = keys.(!next mod Array.length keys) in
      incr next;
      v
  | Mixture { pct; a; b } ->
      if Lf_kernel.Splitmix.int rng 100 < pct then draw a rng else draw b rng
  | Uniform n -> Lf_kernel.Splitmix.int rng n
  | Hotspot { range; hot; hot_pct; base } ->
      if Lf_kernel.Splitmix.int rng 100 < hot_pct then
        base + Lf_kernel.Splitmix.int rng hot
      else Lf_kernel.Splitmix.int rng range
  | Zipf { range; theta } ->
      let s = zipf_state ~range ~theta in
      let u = Lf_kernel.Splitmix.float rng in
      let uz = u *. s.zetan in
      if uz < 1.0 then 0
      else if uz < 1.0 +. Float.pow 0.5 theta then 1
      else
        let v =
          float_of_int s.range
          *. Float.pow ((s.eta *. u) -. s.eta +. 1.0) s.alpha
        in
        min (s.range - 1) (int_of_float v)
  | Ascending r ->
      let v = !r in
      incr r;
      v
