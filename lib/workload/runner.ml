(* Multi-domain workload driver over any implementation of the DICT
   signature: throughput runs (EXP-4/EXP-5) and short recorded bursts whose
   histories feed the linearizability checker (EXP-10).

   The machine this repository is developed on has a single core, so
   multi-domain throughput numbers measure synchronization overhead and
   preemption robustness rather than parallel speedup; the scaling-shape
   claims live in the simulator experiments instead (see DESIGN.md). *)

module type INT_DICT = Lf_kernel.Dict_intf.S with type key = int
module type INT_DICT_BATCHED = Lf_kernel.Dict_intf.BATCHED with type key = int

type throughput = {
  impl : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
}

let now () = Unix.gettimeofday ()

(* Spin-barrier so all domains start the measured section together. *)
let barrier n =
  let c = Atomic.make 0 in
  fun () ->
    Atomic.incr c;
    while Atomic.get c < n do
      Domain.cpu_relax ()
    done

(* Insert keys until the structure holds [fill]% of the key range. *)
let prefill ~key_range ~fill ~seed (insert : int -> bool) =
  let rng = Lf_kernel.Splitmix.create seed in
  let target = key_range * fill / 100 in
  let rec go inserted =
    if inserted < target then
      let k = Lf_kernel.Splitmix.int rng key_range in
      go (if insert k then inserted + 1 else inserted)
  in
  go 0

let run_throughput ?keygen (module D : INT_DICT) ~domains ~ops_per_domain
    ~key_range ~(mix : Opgen.mix) ~seed () : throughput =
  let keygen_for =
    match keygen with
    | Some f -> f
    | None -> fun _did -> Keygen.uniform key_range
  in
  let t = D.create () in
  prefill ~key_range ~fill:50 ~seed:((seed * 7) + 1) (fun k -> D.insert t k k);
  let enter = barrier domains in
  let work did =
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    let keygen = keygen_for did in
    enter ();
    for _ = 1 to ops_per_domain do
      match Opgen.draw mix keygen rng with
      | Insert k -> ignore (D.insert t k k)
      | Delete k -> ignore (D.delete t k)
      | Find k -> ignore (D.find t k)
    done
  in
  let t0 = now () in
  let ds = List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  let elapsed = now () -. t0 in
  D.check_invariants t;
  let total = domains * ops_per_domain in
  {
    impl = D.name;
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    ops_per_s = float_of_int total /. elapsed;
  }

(* Batched variant: the operation stream is consumed [batch] ops at a
   time; each chunk is partitioned by kind and issued through the batched
   entry points, which sort by key and carry predecessors element to
   element. *)
let run_throughput_batched ?keygen (module D : INT_DICT_BATCHED) ~domains
    ~ops_per_domain ~batch ~key_range ~(mix : Opgen.mix) ~seed () :
    throughput =
  if batch <= 0 then invalid_arg "run_throughput_batched: batch must be > 0";
  let keygen_for =
    match keygen with
    | Some f -> f
    | None -> fun _did -> Keygen.uniform key_range
  in
  let t = D.create () in
  prefill ~key_range ~fill:50 ~seed:((seed * 7) + 1) (fun k -> D.insert t k k);
  let enter = barrier domains in
  let work did =
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    let keygen = keygen_for did in
    enter ();
    let remaining = ref ops_per_domain in
    while !remaining > 0 do
      let b = min batch !remaining in
      remaining := !remaining - b;
      let ins = ref [] and del = ref [] and fnd = ref [] in
      for _ = 1 to b do
        match Opgen.draw mix keygen rng with
        | Insert k -> ins := (k, k) :: !ins
        | Delete k -> del := k :: !del
        | Find k -> fnd := k :: !fnd
      done;
      (match !ins with [] -> () | l -> ignore (D.insert_batch t l));
      (match !del with [] -> () | l -> ignore (D.delete_batch t l));
      (match !fnd with [] -> () | l -> ignore (D.mem_batch t l))
    done
  in
  let t0 = now () in
  let ds =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1)))
  in
  work 0;
  List.iter Domain.join ds;
  let elapsed = now () -. t0 in
  D.check_invariants t;
  let total = domains * ops_per_domain in
  {
    impl = D.name;
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    ops_per_s = float_of_int total /. elapsed;
  }

(* Short recorded burst: each domain performs [ops_per_domain] operations on
   a small key range while timestamping them; the merged history goes to the
   linearizability checker.  Keep domains * ops_per_domain <= 62. *)
let run_recorded (module D : INT_DICT) ~domains ~ops_per_domain ~key_range
    ~(mix : Opgen.mix) ~seed () : Lf_lin.History.t =
  let t = D.create () in
  let rec_ = Lf_lin.History.Recorder.create () in
  let enter = barrier domains in
  let work did =
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    let keygen = Keygen.uniform key_range in
    let acc = ref [] in
    enter ();
    for _ = 1 to ops_per_domain do
      let op = Opgen.draw mix keygen rng in
      let inv = Lf_lin.History.Recorder.tick rec_ in
      let hop, ok =
        match op with
        | Insert k -> (Lf_lin.History.Insert k, D.insert t k k)
        | Delete k -> (Lf_lin.History.Delete k, D.delete t k)
        | Find k -> (Lf_lin.History.Find k, Option.is_some (D.find t k))
      in
      let ret = Lf_lin.History.Recorder.tick rec_ in
      acc := { Lf_lin.History.pid = did; op = hop; ok; inv; ret } :: !acc
    done;
    Lf_lin.History.Recorder.add rec_ !acc
  in
  let ds = List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  D.check_invariants t;
  Lf_lin.History.Recorder.history rec_
