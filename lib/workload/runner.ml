(* Multi-domain workload driver over any implementation of the DICT
   signature: throughput runs (EXP-4/EXP-5) and short recorded bursts whose
   histories feed the linearizability checker (EXP-10).

   The machine this repository is developed on has a single core, so
   multi-domain throughput numbers measure synchronization overhead and
   preemption robustness rather than parallel speedup; the scaling-shape
   claims live in the simulator experiments instead (see DESIGN.md). *)

module type INT_DICT = Lf_kernel.Dict_intf.S with type key = int
module type INT_DICT_BATCHED = Lf_kernel.Dict_intf.BATCHED with type key = int

type throughput = {
  impl : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
}

let now () = Unix.gettimeofday ()

(* Spin-barrier so all domains start the measured section together. *)
let barrier n =
  let c = Atomic.make 0 in
  fun () ->
    Atomic.incr c;
    while Atomic.get c < n do
      Domain.cpu_relax ()
    done

(* Insert keys until the structure holds [fill]% of the key range. *)
let prefill ~key_range ~fill ~seed (insert : int -> bool) =
  let rng = Lf_kernel.Splitmix.create seed in
  let target = key_range * fill / 100 in
  let rec go inserted =
    if inserted < target then
      let k = Lf_kernel.Splitmix.int rng key_range in
      go (if insert k then inserted + 1 else inserted)
  in
  go 0

let run_throughput ?keygen (module D : INT_DICT) ~domains ~ops_per_domain
    ~key_range ~(mix : Opgen.mix) ~seed () : throughput =
  let keygen_for =
    match keygen with
    | Some f -> f
    | None -> fun _did -> Keygen.uniform key_range
  in
  let t = D.create () in
  prefill ~key_range ~fill:50 ~seed:((seed * 7) + 1) (fun k -> D.insert t k k);
  let enter = barrier domains in
  let work did =
    (* Lane id makes worker threads distinguishable in recorded traces
       (and to fault plans); the span markers cost one word read each
       while the recorder is off. *)
    Lf_kernel.Lane.set did;
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    let keygen = keygen_for did in
    enter ();
    (* Key-then-kind draw: [Opgen.kind] has constant constructors, so the
       per-op bookkeeping here allocates nothing (boxing an [Opgen.op]
       per draw showed up as minor-heap churn in EXP-22's GC attribution). *)
    for _ = 1 to ops_per_domain do
      let k = Keygen.draw keygen rng in
      match Opgen.draw_kind mix rng with
      | Insert_k ->
          Lf_obs.Recorder.span_begin ~op:Lf_obs.Obs_event.Insert ~key:k;
          let ok = D.insert t k k in
          Lf_obs.Recorder.span_end ~op:Lf_obs.Obs_event.Insert ~ok
      | Delete_k ->
          Lf_obs.Recorder.span_begin ~op:Lf_obs.Obs_event.Delete ~key:k;
          let ok = D.delete t k in
          Lf_obs.Recorder.span_end ~op:Lf_obs.Obs_event.Delete ~ok
      | Find_k ->
          Lf_obs.Recorder.span_begin ~op:Lf_obs.Obs_event.Find ~key:k;
          let ok = Option.is_some (D.find t k) in
          Lf_obs.Recorder.span_end ~op:Lf_obs.Obs_event.Find ~ok
    done;
    Lf_kernel.Lane.clear ()
  in
  let t0 = now () in
  let ds = List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  let elapsed = now () -. t0 in
  D.check_invariants t;
  let total = domains * ops_per_domain in
  {
    impl = D.name;
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    ops_per_s = float_of_int total /. elapsed;
  }

(* Batched variant: the operation stream is consumed [batch] ops at a
   time; each chunk is partitioned by kind and issued through the batched
   entry points, which sort by key and carry predecessors element to
   element. *)
let run_throughput_batched ?keygen (module D : INT_DICT_BATCHED) ~domains
    ~ops_per_domain ~batch ~key_range ~(mix : Opgen.mix) ~seed () :
    throughput =
  if batch <= 0 then invalid_arg "run_throughput_batched: batch must be > 0";
  let keygen_for =
    match keygen with
    | Some f -> f
    | None -> fun _did -> Keygen.uniform key_range
  in
  let t = D.create () in
  prefill ~key_range ~fill:50 ~seed:((seed * 7) + 1) (fun k -> D.insert t k k);
  let enter = barrier domains in
  let work did =
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    let keygen = keygen_for did in
    enter ();
    let remaining = ref ops_per_domain in
    while !remaining > 0 do
      let b = min batch !remaining in
      remaining := !remaining - b;
      let ins = ref [] and del = ref [] and fnd = ref [] in
      for _ = 1 to b do
        match Opgen.draw mix keygen rng with
        | Insert k -> ins := (k, k) :: !ins
        | Delete k -> del := k :: !del
        | Find k -> fnd := k :: !fnd
      done;
      (match !ins with [] -> () | l -> ignore (D.insert_batch t l));
      (match !del with [] -> () | l -> ignore (D.delete_batch t l));
      (match !fnd with [] -> () | l -> ignore (D.mem_batch t l))
    done
  in
  let t0 = now () in
  let ds =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1)))
  in
  work 0;
  List.iter Domain.join ds;
  let elapsed = now () -. t0 in
  D.check_invariants t;
  let total = domains * ops_per_domain in
  {
    impl = D.name;
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    ops_per_s = float_of_int total /. elapsed;
  }

(* Short recorded burst: each domain performs [ops_per_domain] operations on
   a small key range while timestamping them; the merged history goes to the
   linearizability checker.  Keep domains * ops_per_domain <= 62. *)
let run_recorded (module D : INT_DICT) ~domains ~ops_per_domain ~key_range
    ~(mix : Opgen.mix) ~seed () : Lf_lin.History.t =
  let t = D.create () in
  let rec_ = Lf_lin.History.Recorder.create () in
  let enter = barrier domains in
  let work did =
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    let keygen = Keygen.uniform key_range in
    let acc = ref [] in
    enter ();
    for _ = 1 to ops_per_domain do
      let op = Opgen.draw mix keygen rng in
      let inv = Lf_lin.History.Recorder.tick rec_ in
      let hop, ok =
        match op with
        | Insert k -> (Lf_lin.History.Insert k, D.insert t k k)
        | Delete k -> (Lf_lin.History.Delete k, D.delete t k)
        | Find k -> (Lf_lin.History.Find k, Option.is_some (D.find t k))
      in
      let ret = Lf_lin.History.Recorder.tick rec_ in
      acc := { Lf_lin.History.pid = did; op = hop; ok; inv; ret } :: !acc
    done;
    Lf_lin.History.Recorder.add rec_ !acc
  in
  let ds = List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  D.check_invariants t;
  Lf_lin.History.Recorder.history rec_

(* ------------------------------------------------------------------ *)
(* Chaos runs: multi-domain stress under an injected-fault plan.       *)
(* ------------------------------------------------------------------ *)

type chaos_report = {
  c_impl : string;
  c_domains : int;
  c_window_s : float;
  c_budget_s : float;
  c_ops : int array;
  c_crashed : int list;
  c_worst_latency_s : float array;
  c_starved : (int * float) list;
  c_watchdog_tripped : bool;
  c_survivors : int;
  c_survivor_ops : int;
  c_survivor_ops_per_s : float;
  c_counters : (string * int) list;
}

let pp_chaos_report ppf r =
  Format.fprintf ppf "@[<v>chaos %s: %d domains, %.3fs window@," r.c_impl
    r.c_domains r.c_window_s;
  Format.fprintf ppf "  ops/lane: %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_int)
    (Array.to_list r.c_ops);
  if r.c_crashed <> [] then
    Format.fprintf ppf "  crashed lanes: %a@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
         Format.pp_print_int)
      r.c_crashed;
  List.iter
    (fun (lane, worst) ->
      Format.fprintf ppf "  STARVED lane %d: worst op latency %.3fs > %.3fs budget@,"
        lane worst r.c_budget_s)
    r.c_starved;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %s: %d@," k v)
    r.c_counters;
  Format.fprintf ppf "  watchdog %s; survivors %d: %d ops (%.0f ops/s)@]"
    (if r.c_watchdog_tripped then "TRIPPED" else "quiet")
    r.c_survivors r.c_survivor_ops r.c_survivor_ops_per_s

(* The monitor (main domain) polls per-lane heartbeats instead of joining
   blindly, so a non-lock-free structure under a stalled lock holder is
   reported as starvation rather than hanging the run.  Victim closures
   must terminate on their own (OCaml domains cannot be killed): a "crash"
   of a lock holder is modeled as a stall much longer than the watchdog
   budget, after which the lock is released and every join completes. *)
let run_chaos ?(victims = []) ?(budget_s = 0.05) ?(window_s = 0.2)
    ?(sample = fun () -> []) ~name ~(insert : int -> bool)
    ~(delete : int -> bool) ~(find : int -> bool) ~domains ~key_range
    ~(mix : Opgen.mix) ~seed () : chaos_report =
  (* The monitor (this domain) also runs the prefill; park it on lane -1 so
     its accesses never match a worker-lane-targeted fault rule (the lane
     fallback is the domain id, which would collide with worker lane 0). *)
  Lf_kernel.Lane.set (-1);
  prefill ~key_range ~fill:50 ~seed:((seed * 7) + 1) insert;
  let base = sample () in
  let stop = Atomic.make false in
  let completed = Array.init domains (fun _ -> Atomic.make 0) in
  (* Per-lane heartbeat: invocation time of the op in flight, in integer
     microseconds since [t_origin]; -1 = no op in flight.  Lane states:
     0 = running, 1 = done, 2 = crashed by an injected fault. *)
  let op_start = Array.init domains (fun _ -> Atomic.make (-1)) in
  let state = Array.init domains (fun _ -> Atomic.make 0) in
  let t_origin = now () in
  let us t = int_of_float ((t -. t_origin) *. 1e6) in
  let enter = barrier (domains + 1) in
  let work did =
    Lf_kernel.Lane.set did;
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    let keygen = Keygen.uniform key_range in
    enter ();
    (match List.assoc_opt did victims with
    | Some victim -> victim ()
    | None -> (
        try
          while not (Atomic.get stop) do
            let op = Opgen.draw mix keygen rng in
            Atomic.set op_start.(did) (us (now ()));
            (match op with
            | Opgen.Insert k -> ignore (insert k)
            | Delete k -> ignore (delete k)
            | Find k -> ignore (find k));
            Atomic.set op_start.(did) (-1);
            Atomic.incr completed.(did)
          done
        with Lf_fault.Fault.Crashed _ ->
          Atomic.set op_start.(did) (-1);
          Atomic.set state.(did) 2));
    if Atomic.get state.(did) = 0 then Atomic.set state.(did) 1;
    Lf_kernel.Lane.clear ()
  in
  let ds = List.init domains (fun i -> Domain.spawn (fun () -> work i)) in
  let worst = Array.make domains 0. in
  let ops_at_close = Array.make domains 0 in
  enter ();
  let t0 = now () in
  let close_t = ref t0 in
  let closed = ref false in
  let all_settled () = Array.for_all (fun s -> Atomic.get s <> 0) state in
  while not (!closed && all_settled ()) do
    let tn = now () in
    if (not !closed) && tn -. t0 >= window_s then begin
      Array.iteri (fun i c -> ops_at_close.(i) <- Atomic.get c) completed;
      close_t := tn;
      closed := true;
      Atomic.set stop true
    end;
    for i = 0 to domains - 1 do
      let s = Atomic.get op_start.(i) in
      if s >= 0 then begin
        let lat = tn -. t_origin -. (float_of_int s /. 1e6) in
        if lat > worst.(i) then worst.(i) <- lat
      end
    done;
    Unix.sleepf 0.0005
  done;
  List.iter Domain.join ds;
  Lf_kernel.Lane.clear ();
  let after = sample () in
  let counters =
    List.map
      (fun (k, v) ->
        match List.assoc_opt k base with
        | Some v0 -> (k, v - v0)
        | None -> (k, v))
      after
  in
  let is_victim i = List.mem_assoc i victims in
  let crashed = ref [] in
  for i = domains - 1 downto 0 do
    if Atomic.get state.(i) = 2 then crashed := i :: !crashed
  done;
  let starved = ref [] in
  for i = domains - 1 downto 0 do
    if (not (is_victim i)) && worst.(i) > budget_s then
      starved := (i, worst.(i)) :: !starved
  done;
  let survivor i = (not (is_victim i)) && Atomic.get state.(i) <> 2 in
  let survivors = ref 0 and survivor_ops = ref 0 in
  for i = 0 to domains - 1 do
    if survivor i then begin
      incr survivors;
      survivor_ops := !survivor_ops + ops_at_close.(i)
    end
  done;
  let elapsed = !close_t -. t0 in
  {
    c_impl = name;
    c_domains = domains;
    c_window_s = elapsed;
    c_budget_s = budget_s;
    c_ops = ops_at_close;
    c_crashed = !crashed;
    c_worst_latency_s = worst;
    c_starved = !starved;
    c_watchdog_tripped = !starved <> [];
    c_survivors = !survivors;
    c_survivor_ops = !survivor_ops;
    c_survivor_ops_per_s =
      (if elapsed > 0. then float_of_int !survivor_ops /. elapsed else 0.);
    c_counters = counters;
  }

(* ------------------------------------------------------------------ *)
(* Open-loop overload runs: arrivals paced by a rate, not by           *)
(* completions.                                                        *)
(* ------------------------------------------------------------------ *)

type verdict = [ `Served of bool | `Rejected | `Failed ]

type class_counts = {
  cc_handled : int;
  cc_served : int;
  cc_served_ok : int;
  cc_rejected : int;
  cc_failed : int;
}

type open_loop_report = {
  o_offered : int;
  o_handled : int;
  o_served : int;
  o_served_ok : int;
  o_rejected : int;
  o_failed : int;
  o_leftover : int;
  o_elapsed_s : float;
  o_goodput : float;
  o_latency : Lf_obs.Hist.t;
  o_by_class : class_counts array;
}

let pp_open_loop_report ppf r =
  Format.fprintf ppf
    "@[<v>open-loop: offered %d in %.3fs, handled %d@,\
    \  served %d (%d ok, %.0f/s goodput), rejected %d, failed %d, leftover %d@,\
    \  latency p50 %.2fms p99 %.2fms max %.2fms@]"
    r.o_offered r.o_elapsed_s r.o_handled r.o_served r.o_served_ok r.o_goodput
    r.o_rejected r.o_failed r.o_leftover
    (if Lf_obs.Hist.count r.o_latency = 0 then 0.
     else Lf_obs.Hist.percentile r.o_latency 0.5 /. 1e6)
    (if Lf_obs.Hist.count r.o_latency = 0 then 0.
     else Lf_obs.Hist.percentile r.o_latency 0.99 /. 1e6)
    (float_of_int (Lf_obs.Hist.max_value r.o_latency) /. 1e6)

let run_open_loop ?(workers = 2) ?keygen ?(classes = 0) ?class_of ~rate
    ~window_s ~key_range ~(mix : Opgen.mix) ~seed ~serve () :
    open_loop_report =
  if rate <= 0 then invalid_arg "run_open_loop: rate must be > 0";
  if workers < 1 then invalid_arg "run_open_loop: workers must be >= 1";
  if classes < 0 then invalid_arg "run_open_loop: classes must be >= 0";
  if classes > 0 && class_of = None then
    invalid_arg "run_open_loop: classes without class_of";
  let q : (int * Opgen.op) Queue.t = Queue.create () in
  let mu = Mutex.create () and cv = Condition.create () in
  let stop = Atomic.make false in
  let handled = Array.make workers 0
  and served = Array.make workers 0
  and served_ok = Array.make workers 0
  and rejected = Array.make workers 0
  and failed = Array.make workers 0 in
  let hists = Array.init workers (fun _ -> Lf_obs.Hist.create ()) in
  (* Per-class (e.g. per-shard) accounting: a [workers x classes] grid
     of plain counters — each worker bumps only its own row, merged
     after the joins, so the accounting stays race-free and the hot
     loop lock-free. *)
  let by_class () =
    Array.init workers (fun _ -> Array.make (max 1 classes) 0)
  in
  let c_handled = by_class ()
  and c_served = by_class ()
  and c_served_ok = by_class ()
  and c_rejected = by_class ()
  and c_failed = by_class () in
  let classify op =
    match class_of with
    | Some f when classes > 0 ->
        let c = f op in
        if c < 0 || c >= classes then
          invalid_arg "run_open_loop: class_of out of range"
        else c
    | _ -> -1
  in
  let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9) in
  let pop () =
    Mutex.lock mu;
    (* Stop takes precedence over draining: at window close the workers
       down tools and whatever is still queued is counted as leftover
       (otherwise an overloaded run would take unboundedly long). *)
    let rec await () =
      if Atomic.get stop then None
      else if not (Queue.is_empty q) then begin
        let item = Queue.pop q in
        Some (item, Queue.length q)
      end
      else begin
        Condition.wait cv mu;
        await ()
      end
    in
    let r = await () in
    Mutex.unlock mu;
    r
  in
  let work did =
    Lf_kernel.Lane.set did;
    let continue = ref true in
    while !continue do
      match pop () with
      | None -> continue := false
      | Some ((arrival_ns, op), depth) -> (
          handled.(did) <- handled.(did) + 1;
          let c = classify op in
          let bump a = if c >= 0 then a.(did).(c) <- a.(did).(c) + 1 in
          bump c_handled;
          match serve ~arrival_ns ~queue_depth:depth op with
          | `Served ok ->
              served.(did) <- served.(did) + 1;
              bump c_served;
              if ok then begin
                served_ok.(did) <- served_ok.(did) + 1;
                bump c_served_ok
              end;
              Lf_obs.Hist.add hists.(did) (now_ns () - arrival_ns)
          | `Rejected ->
              rejected.(did) <- rejected.(did) + 1;
              bump c_rejected
          | `Failed ->
              failed.(did) <- failed.(did) + 1;
              bump c_failed)
    done;
    Lf_kernel.Lane.clear ()
  in
  Lf_kernel.Lane.set (-1);
  let ds = List.init workers (fun i -> Domain.spawn (fun () -> work i)) in
  let rng = Lf_kernel.Splitmix.create seed in
  let keygen =
    match keygen with Some kg -> kg | None -> Keygen.uniform key_range
  in
  let t0 = now () in
  let t_end = t0 +. window_s in
  let interval = 1. /. float_of_int rate in
  let offered = ref 0 in
  (* [next] is the schedule; when the generator wakes up late it enqueues
     the whole backlog at once, so the arrival count depends only on the
     rate — never on how fast completions drain. *)
  let next = ref t0 in
  let tn = ref (now ()) in
  while !tn < t_end do
    if !tn >= !next then begin
      Mutex.lock mu;
      while !next <= !tn && !next < t_end do
        let op = Opgen.draw mix keygen rng in
        Queue.push (now_ns (), op) q;
        incr offered;
        next := !next +. interval
      done;
      Mutex.unlock mu;
      Condition.broadcast cv
    end
    else Unix.sleepf (min (!next -. !tn) 0.001);
    tn := now ()
  done;
  let close_t = now () in
  Atomic.set stop true;
  Mutex.lock mu;
  Condition.broadcast cv;
  Mutex.unlock mu;
  List.iter Domain.join ds;
  Lf_kernel.Lane.clear ();
  let leftover = Queue.length q in
  let latency = Lf_obs.Hist.create () in
  Array.iter (fun h -> Lf_obs.Hist.merge_into ~into:latency h) hists;
  let sum a = Array.fold_left ( + ) 0 a in
  let elapsed = close_t -. t0 in
  {
    o_offered = !offered;
    o_handled = sum handled;
    o_served = sum served;
    o_served_ok = sum served_ok;
    o_rejected = sum rejected;
    o_failed = sum failed;
    o_leftover = leftover;
    o_elapsed_s = elapsed;
    o_goodput =
      (if elapsed > 0. then float_of_int (sum served) /. elapsed else 0.);
    o_latency = latency;
    o_by_class =
      Array.init classes (fun c ->
          let col a =
            Array.fold_left (fun acc row -> acc + row.(c)) 0 a
          in
          {
            cc_handled = col c_handled;
            cc_served = col c_served;
            cc_served_ok = col c_served_ok;
            cc_rejected = col c_rejected;
            cc_failed = col c_failed;
          });
  }

exception Lane_crashed

(* Recorded chaos burst: completed operations go into the history;
   operations cut short by an injected crash come back in a second list
   with [ret = max_int] (still pending — possibly helped to completion by
   survivors, possibly not).  The lane stops at its crash, like a crashed
   process in the paper's model. *)
let run_chaos_recorded ~(insert : int -> bool) ~(delete : int -> bool)
    ~(find : int -> bool) ~domains ~ops_per_domain ~key_range
    ~(mix : Opgen.mix) ~seed () : Lf_lin.History.t * Lf_lin.History.t =
  let rec_ = Lf_lin.History.Recorder.create () in
  let pending = Array.make domains [] in
  let enter = barrier domains in
  let work did =
    Lf_kernel.Lane.set did;
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    let keygen = Keygen.uniform key_range in
    let acc = ref [] in
    enter ();
    (try
       for _ = 1 to ops_per_domain do
         let op = Opgen.draw mix keygen rng in
         let inv = Lf_lin.History.Recorder.tick rec_ in
         let hop =
           match op with
           | Opgen.Insert k -> Lf_lin.History.Insert k
           | Delete k -> Lf_lin.History.Delete k
           | Find k -> Lf_lin.History.Find k
         in
         match
           try
             `Ret
               (match op with
               | Opgen.Insert k -> insert k
               | Delete k -> delete k
               | Find k -> find k)
           with Lf_fault.Fault.Crashed _ -> `Crashed
         with
         | `Ret ok ->
             let ret = Lf_lin.History.Recorder.tick rec_ in
             acc := { Lf_lin.History.pid = did; op = hop; ok; inv; ret } :: !acc
         | `Crashed ->
             (* [ok] is a placeholder; the pending-aware checker tries both
                outcomes (and absence). *)
             pending.(did) <-
               [ { Lf_lin.History.pid = did; op = hop; ok = true; inv; ret = max_int } ];
             raise Lane_crashed
       done
     with Lane_crashed -> ());
    Lf_lin.History.Recorder.add rec_ !acc;
    Lf_kernel.Lane.clear ()
  in
  let ds = List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  ( Lf_lin.History.Recorder.history rec_,
    List.concat (Array.to_list pending) )

(* A history with c crashed (pending) operations linearizes iff SOME
   resolution of the pending ops does: each may have not taken effect at
   all, or taken effect (directly or via a helper) with either outcome.
   3^c combinations; keep c small. *)
let linearizable_with_pending ?init (history : Lf_lin.History.t)
    (pending : Lf_lin.History.t) : bool =
  let ret_max =
    1 + List.fold_left (fun m (e : Lf_lin.History.entry) -> max m e.ret) 0 history
  in
  let ok_verdict h =
    match Lf_lin.Checker.check ?init h with
    | Lf_lin.Checker.Linearizable -> true
    | Not_linearizable -> false
  in
  let rec go chosen = function
    | [] -> ok_verdict (history @ List.rev chosen)
    | (p : Lf_lin.History.entry) :: rest ->
        go chosen rest
        || go ({ p with ok = true; ret = ret_max } :: chosen) rest
        || go ({ p with ok = false; ret = ret_max } :: chosen) rest
  in
  go [] pending
