(* Operation mixes: percentage of inserts and deletes, the rest searches.
   The classic mixes from the lock-free list literature are provided as
   constants. *)

type op = Insert of int | Delete of int | Find of int

(* Payload-free op kind: constant constructors, so drawing one allocates
   nothing — the throughput runners' per-op hot path draws the key
   separately and dispatches on the kind instead of boxing an [op]. *)
type kind = Insert_k | Delete_k | Find_k

type mix = { insert_pct : int; delete_pct : int }

let write_heavy = { insert_pct = 50; delete_pct = 50 }
let mixed = { insert_pct = 20; delete_pct = 20 }
let read_mostly = { insert_pct = 5; delete_pct = 5 }

let pp_mix fmt m =
  Format.fprintf fmt "%di/%dd/%ds" m.insert_pct m.delete_pct
    (100 - m.insert_pct - m.delete_pct)

let draw_kind mix rng =
  let d = Lf_kernel.Splitmix.int rng 100 in
  if d < mix.insert_pct then Insert_k
  else if d < mix.insert_pct + mix.delete_pct then Delete_k
  else Find_k

(* Same RNG stream as the split path: key first, then the kind draw. *)
let draw mix keygen rng =
  let k = Keygen.draw keygen rng in
  match draw_kind mix rng with
  | Insert_k -> Insert k
  | Delete_k -> Delete k
  | Find_k -> Find k
