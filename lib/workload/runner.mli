(** Multi-domain workload driver over any {!Lf_kernel.Dict_intf.S}
    implementation: throughput runs (EXP-4/5/11) and short recorded bursts
    whose histories feed the linearizability checker (EXP-10).

    Single-core caveat: on this development machine domains time-share one
    CPU, so throughput numbers measure synchronization overhead and
    robustness to preemption rather than parallel speedup (DESIGN.md). *)

module type INT_DICT = Lf_kernel.Dict_intf.S with type key = int
module type INT_DICT_BATCHED = Lf_kernel.Dict_intf.BATCHED with type key = int

type throughput = {
  impl : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
}

val prefill : key_range:int -> fill:int -> seed:int -> (int -> bool) -> unit
(** Insert random keys through the supplied closure until the structure
    holds [fill]% of [key_range] distinct keys. *)

val run_throughput :
  ?keygen:(int -> Keygen.t) ->
  (module INT_DICT) ->
  domains:int ->
  ops_per_domain:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  unit ->
  throughput
(** Prefill to 50%, barrier-start [domains] domains, run the mix, join,
    validate invariants, report ops/s.  [keygen] maps a domain index to its
    key generator (default: uniform over [\[0, key_range)]); each domain
    must get its own generator, since generators are not thread-safe. *)

val run_throughput_batched :
  ?keygen:(int -> Keygen.t) ->
  (module INT_DICT_BATCHED) ->
  domains:int ->
  ops_per_domain:int ->
  batch:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  unit ->
  throughput
(** As {!run_throughput}, but the op stream is issued [batch] operations at
    a time through the batched entry points (chunks partitioned by kind).
    @raise Invalid_argument if [batch <= 0]. *)

val run_recorded :
  (module INT_DICT) ->
  domains:int ->
  ops_per_domain:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  unit ->
  Lf_lin.History.t
(** Short recorded burst for the linearizability checker.  Keep
    [domains * ops_per_domain <= 62]. *)
