(** Multi-domain workload driver over any {!Lf_kernel.Dict_intf.S}
    implementation: throughput runs (EXP-4/5/11) and short recorded bursts
    whose histories feed the linearizability checker (EXP-10).

    Single-core caveat: on this development machine domains time-share one
    CPU, so throughput numbers measure synchronization overhead and
    robustness to preemption rather than parallel speedup (DESIGN.md). *)

module type INT_DICT = Lf_kernel.Dict_intf.S with type key = int
module type INT_DICT_BATCHED = Lf_kernel.Dict_intf.BATCHED with type key = int

type throughput = {
  impl : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
}

val prefill : key_range:int -> fill:int -> seed:int -> (int -> bool) -> unit
(** Insert random keys through the supplied closure until the structure
    holds [fill]% of [key_range] distinct keys. *)

val run_throughput :
  ?keygen:(int -> Keygen.t) ->
  (module INT_DICT) ->
  domains:int ->
  ops_per_domain:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  unit ->
  throughput
(** Prefill to 50%, barrier-start [domains] domains, run the mix, join,
    validate invariants, report ops/s.  [keygen] maps a domain index to its
    key generator (default: uniform over [\[0, key_range)]); each domain
    must get its own generator, since generators are not thread-safe. *)

val run_throughput_batched :
  ?keygen:(int -> Keygen.t) ->
  (module INT_DICT_BATCHED) ->
  domains:int ->
  ops_per_domain:int ->
  batch:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  unit ->
  throughput
(** As {!run_throughput}, but the op stream is issued [batch] operations at
    a time through the batched entry points (chunks partitioned by kind).
    @raise Invalid_argument if [batch <= 0]. *)

val run_recorded :
  (module INT_DICT) ->
  domains:int ->
  ops_per_domain:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  unit ->
  Lf_lin.History.t
(** Short recorded burst for the linearizability checker.  Keep
    [domains * ops_per_domain <= 62]. *)

(** {1 Chaos runs (EXP-18)}

    Multi-domain stress under an injected-fault plan (see {!Lf_fault}).
    The structure under test arrives as closures so callers can stack any
    memory — typically [Lf_fault.Fault_mem.Make (Atomic_mem)] with a plan
    installed before the call and uninstalled after the joins. *)

type chaos_report = {
  c_impl : string;
  c_domains : int;
  c_window_s : float;  (** measured length of the throughput window *)
  c_budget_s : float;  (** per-operation latency budget *)
  c_ops : int array;  (** per-lane operations completed within the window *)
  c_crashed : int list;  (** lanes stopped by an injected [Fault.Crashed] *)
  c_worst_latency_s : float array;  (** per-lane worst observed op latency *)
  c_starved : (int * float) list;
      (** non-victim lanes whose worst latency exceeded the budget *)
  c_watchdog_tripped : bool;  (** [c_starved <> []] *)
  c_survivors : int;  (** lanes neither crashed nor victims *)
  c_survivor_ops : int;
  c_survivor_ops_per_s : float;
      (** graceful-degradation metric: throughput of the surviving lanes *)
  c_counters : (string * int) list;
      (** deltas of the caller-supplied [sample] counters over the run *)
}

val pp_chaos_report : Format.formatter -> chaos_report -> unit

val run_chaos :
  ?victims:(int * (unit -> unit)) list ->
  ?budget_s:float ->
  ?window_s:float ->
  ?sample:(unit -> (string * int) list) ->
  name:string ->
  insert:(int -> bool) ->
  delete:(int -> bool) ->
  find:(int -> bool) ->
  domains:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  unit ->
  chaos_report
(** Prefill to 50%, barrier-start [domains] worker lanes plus a monitor,
    run the mix for [window_s] (default 0.2s) and report.  Instead of
    joining blindly, the monitor polls per-lane heartbeats, so a lane
    blocked past [budget_s] (default 0.05s) is {e reported} as starved
    rather than hanging the harness.  A lane that raises
    [Lf_fault.Fault.Crashed] stops and is listed in [c_crashed]; its
    half-done operation stays in the structure for survivors to help.

    [victims] maps a lane index to a closure run {e instead of} the
    workload (e.g. a [with_lock_held] stall); victim lanes are excluded
    from starvation reporting and from survivor throughput.  Victim
    closures must terminate on their own — OCaml domains cannot be killed,
    so model a crashed lock holder as a stall well past the budget.

    [sample] is read before and after the run; deltas are reported in
    [c_counters] (e.g. helping counters from a counting memory, injected
    faults from [Fault_mem.injected]).

    Worker lanes are numbered [0 .. domains-1] (via [Lf_kernel.Lane]); the
    prefill and the monitor run on lane [-1], so lane-targeted fault rules
    never hit them.  Rules with [lane = None] do apply to the prefill —
    avoid untargeted [Crash] rules here.

    The structure's invariants are {e not} checked afterwards: crash
    residue (a flagged predecessor, a marked-but-linked victim) is
    legitimate here — use [Lf_check.Check_mem.check_crash_residue] for
    what a crash may leave behind. *)

(** {1 Open-loop overload runs (EXP-20)}

    Closed-loop drivers (everything above) slow their offered load down
    to whatever the system can absorb, which hides overload behaviour.
    Here arrivals are paced by a fixed rate regardless of completions:
    requests queue, queues grow, and the served fraction plus the
    arrival-to-completion latency tail show how the service copes.

    The system under test arrives as a [serve] closure so this module
    stays agnostic of [lib/svc] (EXP-20 wraps an {!Lf_svc.Svc.t};
    baselines wrap the bare dictionary). *)

type verdict = [ `Served of bool | `Rejected | `Failed ]

(** Per-class verdict counts (see [run_open_loop]'s [class_of]): the
    per-shard partial-failure accounting of EXP-23.  Every handled
    arrival lands in exactly one counter of its class — nothing is
    collapsed across classes and nothing is dropped. *)
type class_counts = {
  cc_handled : int;
  cc_served : int;
  cc_served_ok : int;
  cc_rejected : int;
  cc_failed : int;
}

type open_loop_report = {
  o_offered : int;  (** arrivals generated during the window *)
  o_handled : int;  (** arrivals a worker handed to [serve] *)
  o_served : int;  (** [`Served _] verdicts *)
  o_served_ok : int;  (** of which [`Served true] *)
  o_rejected : int;
  o_failed : int;
  o_leftover : int;
      (** still queued when the window closed — counted, never silent *)
  o_elapsed_s : float;
  o_goodput : float;  (** served per second of window *)
  o_latency : Lf_obs.Hist.t;
      (** arrival-to-completion latency of served requests, ns *)
  o_by_class : class_counts array;
      (** index = class id; [[||]] unless [classes] was given *)
}

val pp_open_loop_report : Format.formatter -> open_loop_report -> unit

val run_open_loop :
  ?workers:int ->
  ?keygen:Keygen.t ->
  ?classes:int ->
  ?class_of:(Opgen.op -> int) ->
  rate:int ->
  window_s:float ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  serve:(arrival_ns:int -> queue_depth:int -> Opgen.op -> verdict) ->
  unit ->
  open_loop_report
(** Offer [rate] operations per second for [window_s] seconds into an
    unbounded queue drained by [workers] (default 2) domains; admission
    control belongs to [serve] (which sees the queue depth it was popped
    ahead of, and the arrival timestamp in [Clock.real] ticks, i.e.
    nanoseconds).  The generator never blocks on completions: when it
    falls behind it enqueues the whole backlog at once, preserving the
    open-loop arrival count.  Workers stop at window close; the
    remaining queue is reported as [o_leftover].  Latency is measured
    from {e arrival}, so queueing delay is included — the open-loop
    convention.  Worker lanes are numbered [0 .. workers-1]; the
    generator runs on lane [-1].

    [keygen] replaces the default uniform generator (the generator is
    single-threaded, so one instance suffices).  [classes]/[class_of]
    turn on per-class accounting: [class_of op] must return a class id
    in [[0, classes)] — EXP-23 classifies by owning shard — and the
    report's [o_by_class] then carries one {!class_counts} per class,
    tallied with plain per-worker counters (race-free, no locks in the
    hot loop). *)

val run_chaos_recorded :
  insert:(int -> bool) ->
  delete:(int -> bool) ->
  find:(int -> bool) ->
  domains:int ->
  ops_per_domain:int ->
  key_range:int ->
  mix:Opgen.mix ->
  seed:int ->
  unit ->
  Lf_lin.History.t * Lf_lin.History.t
(** Recorded burst under a fault plan: [(completed, pending)].  A lane hit
    by an injected crash stops there; its interrupted operation is returned
    in [pending] with [ret = max_int].  Keep the total below the checker's
    62-entry limit. *)

val linearizable_with_pending :
  ?init:Lf_lin.Checker.IntSet.t ->
  Lf_lin.History.t ->
  Lf_lin.History.t ->
  bool
(** [linearizable_with_pending history pending] holds iff some resolution
    of the pending (crashed) operations linearizes: each pending operation
    either never took effect, or took effect — directly or completed by a
    helper — with either outcome.  Tries 3{^c} combinations for [c] pending
    entries; keep [c] tiny. *)
