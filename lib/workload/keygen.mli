(** Key generators: the distributions workload sweeps draw from. *)

type t

val uniform : int -> t
(** Uniform over [\[0, range)]. *)

val hotspot : ?base:int -> range:int -> hot:int -> hot_pct:int -> unit -> t
(** [hot_pct]% of draws land uniformly in [\[base, base + hot)] (default
    [base = 0]), the rest in [\[0, range)].  A nonzero [base] parks the hot
    window away from the front of the key space (EXP-17 uses the middle, so
    hint wins cannot come from the hot keys sitting next to the head).
    @raise Invalid_argument if the hot window exceeds the range. *)

val zipf : range:int -> theta:float -> t
(** Zipf-like skew via the standard CDF-inversion approximation; [theta] in
    (0, 1), higher = more skewed.  The normalization table is precomputed on
    first use per (range, theta). *)

val ascending : unit -> t
(** 0, 1, 2, ... (end-of-list contention workloads). *)

val of_array : int array -> t
(** Uniform over a fixed key set (copied).  EXP-23 precomputes the keys
    one shard owns and aims a hotspot at exactly that shard.
    @raise Invalid_argument if the array is empty. *)

val cycle : int array -> t
(** The fixed key set (copied) in array order, wrapping — an ascending
    stream confined to chosen keys.  EXP-23's hotspot walks fresh keys
    owned by one shard so the victim's keyspace balloons while the
    others' stay put.  @raise Invalid_argument if the array is empty. *)

val mixture : pct:int -> t -> t -> t
(** [mixture ~pct a b]: [pct]% of draws from [a], the rest from [b] —
    e.g. a shard-targeted hot set blended with uniform background
    traffic.  @raise Invalid_argument if [pct] is outside [0..100]. *)

val draw : t -> Lf_kernel.Splitmix.t -> int
