(* Workload driver for structures living in the simulator's memory.

   The structure under test is passed as a record of closures (already
   specialized to a [Sim_mem]-instantiated dictionary); each simulated
   process runs a seeded random mix of operations bracketed by
   [Sim.op_begin]/[op_end], with the harness maintaining the current size so
   every operation record carries its n(S).  Used by EXP-1 (amortized-bound
   validation) and by the randomized correctness tests. *)

type ops = {
  insert : int -> bool;
  delete : int -> bool;
  find : int -> bool;
}

(* Run [procs] processes, each performing [ops_per_proc] operations.
   [initial_size] is the number of keys already in the structure (from a
   prefill), so that n(S) is accounted correctly. *)
let run_mixed ?(policy = Lf_dsim.Sim.Random 1) ?(initial_size = 0) ?keygen
    ~procs ~ops_per_proc ~key_range ~(mix : Opgen.mix) ~seed (ops : ops) :
    Lf_dsim.Sim.result =
  let keygen_for =
    match keygen with
    | Some f -> f
    | None -> fun _pid -> Keygen.uniform key_range
  in
  let size = ref initial_size in
  let body pid =
    let rng = Lf_kernel.Splitmix.create (seed + (7919 * pid)) in
    let keygen = keygen_for pid in
    for _ = 1 to ops_per_proc do
      let op = Opgen.draw mix keygen rng in
      Lf_dsim.Sim.op_begin ~n:!size;
      (match op with
      | Opgen.Insert k -> if ops.insert k then incr size
      | Opgen.Delete k -> if ops.delete k then decr size
      | Opgen.Find k -> ignore (ops.find k));
      Lf_dsim.Sim.op_end ()
    done
  in
  Lf_dsim.Sim.run ~policy (Array.make procs body)

(* Prefill [count] distinct keys drawn from [0, key_range) by a single
   simulated process (round-robin over one process = sequential). *)
let prefill ~key_range ~count ~seed (ops : ops) : int =
  let inserted = ref 0 in
  let body _pid =
    let rng = Lf_kernel.Splitmix.create seed in
    while !inserted < count do
      if ops.insert (Lf_kernel.Splitmix.int rng key_range) then incr inserted
    done
  in
  ignore (Lf_dsim.Sim.run [| body |]);
  !inserted

(* Recorded variant for simulator-schedule linearizability checks: returns
   the history of every operation with invocation/return ticks in scheduler
   order. *)
let run_recorded ?(policy = Lf_dsim.Sim.Random 1) ~procs ~ops_per_proc
    ~key_range ~(mix : Opgen.mix) ~seed (ops : ops) : Lf_lin.History.t =
  let clock = ref 0 in
  let tick () =
    let v = !clock in
    incr clock;
    v
  in
  let entries = ref [] in
  let body pid =
    let rng = Lf_kernel.Splitmix.create (seed + (7919 * pid)) in
    let keygen = Keygen.uniform key_range in
    for _ = 1 to ops_per_proc do
      let op = Opgen.draw mix keygen rng in
      Lf_dsim.Sim.op_begin ~n:0;
      let inv = tick () in
      let hop, ok =
        match op with
        | Opgen.Insert k -> (Lf_lin.History.Insert k, ops.insert k)
        | Opgen.Delete k -> (Lf_lin.History.Delete k, ops.delete k)
        | Opgen.Find k -> (Lf_lin.History.Find k, ops.find k)
      in
      let ret = tick () in
      Lf_dsim.Sim.op_end ();
      entries := { Lf_lin.History.pid; op = hop; ok; inv; ret } :: !entries
    done
  in
  ignore (Lf_dsim.Sim.run ~policy (Array.make procs body));
  List.sort (fun a b -> compare a.Lf_lin.History.inv b.Lf_lin.History.inv) !entries
