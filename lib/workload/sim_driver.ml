(* Workload driver for structures living in the simulator's memory.

   The structure under test is passed as a record of closures (already
   specialized to a [Sim_mem]-instantiated dictionary); each simulated
   process runs a seeded random mix of operations bracketed by
   [Sim.op_begin]/[op_end], with the harness maintaining the current size so
   every operation record carries its n(S).  Used by EXP-1 (amortized-bound
   validation) and by the randomized correctness tests. *)

type ops = {
  insert : int -> bool;
  delete : int -> bool;
  find : int -> bool;
}

(* Run [procs] processes, each performing [ops_per_proc] operations.
   [initial_size] is the number of keys already in the structure (from a
   prefill), so that n(S) is accounted correctly. *)
let run_mixed ?(policy = Lf_dsim.Sim.Random 1) ?(initial_size = 0) ?keygen
    ~procs ~ops_per_proc ~key_range ~(mix : Opgen.mix) ~seed (ops : ops) :
    Lf_dsim.Sim.result =
  let keygen_for =
    match keygen with
    | Some f -> f
    | None -> fun _pid -> Keygen.uniform key_range
  in
  let size = ref initial_size in
  let body pid =
    let rng = Lf_kernel.Splitmix.create (seed + (7919 * pid)) in
    let keygen = keygen_for pid in
    for _ = 1 to ops_per_proc do
      let op = Opgen.draw mix keygen rng in
      Lf_dsim.Sim.op_begin ~n:!size;
      (match op with
      | Opgen.Insert k ->
          Lf_obs.Recorder.span_begin ~op:Lf_obs.Obs_event.Insert ~key:k;
          let ok = ops.insert k in
          if ok then incr size;
          Lf_obs.Recorder.span_end ~op:Lf_obs.Obs_event.Insert ~ok
      | Opgen.Delete k ->
          Lf_obs.Recorder.span_begin ~op:Lf_obs.Obs_event.Delete ~key:k;
          let ok = ops.delete k in
          if ok then decr size;
          Lf_obs.Recorder.span_end ~op:Lf_obs.Obs_event.Delete ~ok
      | Opgen.Find k ->
          Lf_obs.Recorder.span_begin ~op:Lf_obs.Obs_event.Find ~key:k;
          let ok = ops.find k in
          Lf_obs.Recorder.span_end ~op:Lf_obs.Obs_event.Find ~ok);
      Lf_dsim.Sim.op_end ()
    done
  in
  Lf_dsim.Sim.run ~policy (Array.make procs body)

(* Prefill [count] distinct keys drawn from [0, key_range) by a single
   simulated process (round-robin over one process = sequential). *)
let prefill ~key_range ~count ~seed (ops : ops) : int =
  let inserted = ref 0 in
  let body _pid =
    let rng = Lf_kernel.Splitmix.create seed in
    while !inserted < count do
      if ops.insert (Lf_kernel.Splitmix.int rng key_range) then incr inserted
    done
  in
  ignore (Lf_dsim.Sim.run [| body |]);
  !inserted

(* Recorded variant for simulator-schedule linearizability checks: returns
   the history of every operation with invocation/return ticks in scheduler
   order. *)
let run_recorded ?(policy = Lf_dsim.Sim.Random 1) ~procs ~ops_per_proc
    ~key_range ~(mix : Opgen.mix) ~seed (ops : ops) : Lf_lin.History.t =
  let clock = ref 0 in
  let tick () =
    let v = !clock in
    incr clock;
    v
  in
  let entries = ref [] in
  let body pid =
    let rng = Lf_kernel.Splitmix.create (seed + (7919 * pid)) in
    let keygen = Keygen.uniform key_range in
    for _ = 1 to ops_per_proc do
      let op = Opgen.draw mix keygen rng in
      Lf_dsim.Sim.op_begin ~n:0;
      let inv = tick () in
      let hop, ok =
        match op with
        | Opgen.Insert k -> (Lf_lin.History.Insert k, ops.insert k)
        | Opgen.Delete k -> (Lf_lin.History.Delete k, ops.delete k)
        | Opgen.Find k -> (Lf_lin.History.Find k, ops.find k)
      in
      let ret = tick () in
      Lf_dsim.Sim.op_end ();
      entries := { Lf_lin.History.pid; op = hop; ok; inv; ret } :: !entries
    done
  in
  ignore (Lf_dsim.Sim.run ~policy (Array.make procs body));
  List.sort (fun a b -> compare a.Lf_lin.History.inv b.Lf_lin.History.inv) !entries

(* ------------------------------------------------------------------ *)
(* Chaos in the simulator: deterministic fault plans + step-budget     *)
(* starvation watchdog.                                                *)
(* ------------------------------------------------------------------ *)

type sim_chaos_report = {
  sc_procs : int;
  sc_steps : int;
  sc_completed : int array;  (* operations completed per process *)
  sc_crashed : Lf_dsim.Sim.pid list;  (* stopped by injected Fault.Crashed *)
  sc_starved : (Lf_dsim.Sim.pid * int) list;  (* parked by the watchdog *)
  sc_watchdog_tripped : bool;
  sc_step_budget : int;
  sc_helps : int;  (* helping events observed across all processes *)
  sc_injected : int;  (* faults injected, from the caller's sampler *)
}

let pp_sim_chaos_report ppf r =
  Format.fprintf ppf "@[<v>sim-chaos: %d procs, %d steps@," r.sc_procs
    r.sc_steps;
  Format.fprintf ppf "  ops/proc: %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_int)
    (Array.to_list r.sc_completed);
  if r.sc_crashed <> [] then
    Format.fprintf ppf "  crashed pids: %a@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
         Format.pp_print_int)
      r.sc_crashed;
  List.iter
    (fun (pid, steps) ->
      Format.fprintf ppf
        "  STARVED pid %d: %d steps in one operation > %d budget@," pid steps
        r.sc_step_budget)
    r.sc_starved;
  Format.fprintf ppf "  watchdog %s; helps %d; injected faults %d@]"
    (if r.sc_watchdog_tripped then "TRIPPED" else "quiet")
    r.sc_helps r.sc_injected

(* The watchdog counts each process's shared-memory steps within its
   current operation; a process exceeding [step_budget] is parked with
   [Sim.crash] and reported, so a non-lock-free structure (e.g. the
   [No_help] mutant spinning behind a crashed flag holder) terminates with
   a diagnosis instead of spinning the scheduler forever.  An injected
   [Fault.Crashed] unwinds the process body without [op_end]: the process
   takes no further steps and its open operation is folded into the
   result's records with [completed = false] — exactly the paper's crashed
   process, whose flags and marks stay behind for the survivors. *)
let run_chaos_sim ?(policy = Lf_dsim.Sim.Random 1) ?(initial_size = 0)
    ?(step_budget = 5_000) ?max_steps ?(injected = fun () -> 0) ~procs
    ~ops_per_proc ~key_range ~(mix : Opgen.mix) ~seed (ops : ops) :
    sim_chaos_report =
  let size = ref initial_size in
  let crashed_flags = Array.make procs false in
  let in_op_steps = Array.make procs 0 in
  let last_completed = Array.make procs 0 in
  let starved = ref [] in
  let on_step st pid =
    let done_ = Lf_dsim.Sim.ops_completed st pid in
    if done_ <> last_completed.(pid) then begin
      last_completed.(pid) <- done_;
      in_op_steps.(pid) <- 0
    end;
    if Lf_dsim.Sim.in_operation st pid then begin
      in_op_steps.(pid) <- in_op_steps.(pid) + 1;
      if
        in_op_steps.(pid) > step_budget
        && not (Lf_dsim.Sim.is_crashed st pid)
      then begin
        starved := (pid, in_op_steps.(pid)) :: !starved;
        Lf_dsim.Sim.crash st pid
      end
    end
  in
  let body pid =
    let rng = Lf_kernel.Splitmix.create (seed + (7919 * pid)) in
    let keygen = Keygen.uniform key_range in
    try
      for _ = 1 to ops_per_proc do
        let op = Opgen.draw mix keygen rng in
        Lf_dsim.Sim.op_begin ~n:!size;
        (match op with
        | Opgen.Insert k -> if ops.insert k then incr size
        | Opgen.Delete k -> if ops.delete k then decr size
        | Opgen.Find k -> ignore (ops.find k));
        Lf_dsim.Sim.op_end ()
      done
    with Lf_fault.Fault.Crashed _ -> crashed_flags.(pid) <- true
  in
  let injected_before = injected () in
  let result =
    match max_steps with
    | Some m ->
        Lf_dsim.Sim.run ~policy ~max_steps:m ~on_step (Array.make procs body)
    | None -> Lf_dsim.Sim.run ~policy ~on_step (Array.make procs body)
  in
  let completed = Array.make procs 0 in
  List.iter
    (fun (o : Lf_dsim.Sim.op_record) ->
      if o.completed then completed.(o.op_pid) <- completed.(o.op_pid) + 1)
    result.ops;
  let helps =
    Array.fold_left
      (fun acc (c : Lf_kernel.Counters.t) -> acc + c.helps)
      0 result.per_proc
  in
  let crashed = ref [] in
  for pid = procs - 1 downto 0 do
    if crashed_flags.(pid) then crashed := pid :: !crashed
  done;
  {
    sc_procs = procs;
    sc_steps = result.steps;
    sc_completed = completed;
    sc_crashed = !crashed;
    sc_starved = List.rev !starved;
    sc_watchdog_tripped = !starved <> [];
    sc_step_budget = step_budget;
    sc_helps = helps;
    sc_injected = injected () - injected_before;
  }
