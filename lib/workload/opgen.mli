(** Operation mixes: insert / delete percentages, the rest searches. *)

type op = Insert of int | Delete of int | Find of int

type mix = { insert_pct : int; delete_pct : int }

val write_heavy : mix
(** 50% insert / 50% delete. *)

val mixed : mix
(** 20% insert / 20% delete / 60% search. *)

val read_mostly : mix
(** 5% / 5% / 90%. *)

val pp_mix : Format.formatter -> mix -> unit

type kind = Insert_k | Delete_k | Find_k
(** Payload-free op kind (constant constructors — drawing one allocates
    nothing).  Hot loops draw the key themselves and dispatch on the kind;
    drawing the key first and then [draw_kind] consumes the RNG stream
    exactly as {!draw} does. *)

val draw_kind : mix -> Lf_kernel.Splitmix.t -> kind

val draw : mix -> Keygen.t -> Lf_kernel.Splitmix.t -> op
(** [draw mix kg rng] = key from [kg], then the kind — equivalent to the
    split path, boxed into an {!op}. *)
