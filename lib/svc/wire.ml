type command =
  | Op of Svc.req
  | Health
  | Metrics
  | Quit
  | Shutdown

let parse line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let int_arg what s =
    match int_of_string_opt s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "bad %s %S" what s)
  in
  match words with
  | [] -> Error "empty line"
  | verb :: args -> (
      match (String.uppercase_ascii verb, args) with
      | "PUT", [ k; v ] ->
          Result.bind (int_arg "key" k) (fun k ->
              Result.map (fun v -> Op (Svc.Insert (k, v))) (int_arg "value" v))
      | "DEL", [ k ] -> Result.map (fun k -> Op (Svc.Delete k)) (int_arg "key" k)
      | "GET", [ k ] -> Result.map (fun k -> Op (Svc.Find k)) (int_arg "key" k)
      | "HEALTH", [] -> Ok Health
      | "METRICS", [] -> Ok Metrics
      | "QUIT", [] -> Ok Quit
      | "SHUTDOWN", [] -> Ok Shutdown
      | v, _ -> Error (Printf.sprintf "bad command %S" v))

let format_outcome = function
  | Svc.Served b -> Printf.sprintf "OK %b" b
  | Svc.Rejected r -> "REJECTED " ^ Svc.reason_to_string r
  | Svc.Failed m -> "FAILED " ^ String.map (function '\n' -> ' ' | c -> c) m

let format_error msg = "ERR " ^ msg

let health_line (s : Svc.stats) =
  let status =
    match s.breaker with
    | Some "closed" | None -> "ok"
    | Some _ -> "degraded"
  in
  let rejected = List.fold_left (fun a (_, n) -> a + n) 0 s.rejected in
  Printf.sprintf
    "%s mode=%s breaker=%s calls=%d served=%d failed=%d rejected=%d retries=%d"
    status s.mode
    (Option.value s.breaker ~default:"none")
    s.calls s.served s.failed rejected s.retries
