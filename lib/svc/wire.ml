type command =
  | Op of Svc.req
  | Multi of Svc.req list
  | Kill of int
  | Health
  | Metrics
  | Slo
  | Replicas
  | Heal
  | Flightdump
  | Quit
  | Shutdown

let max_batch = 64

let parse line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let int_arg what s =
    match int_of_string_opt s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "bad %s %S" what s)
  in
  (* Batch validation, shared by MGET and MSET: non-empty, bounded, no
     duplicate keys (a duplicate in one batch has no well-defined
     per-key outcome — the scatter-gather reports one outcome per key). *)
  let check_batch n =
    if n = 0 then Error "empty batch"
    else if n > max_batch then
      Error (Printf.sprintf "batch too large (max %d)" max_batch)
    else Ok ()
  in
  let no_dup seen k ok =
    if List.mem k seen then Error (Printf.sprintf "duplicate key %d" k)
    else ok ()
  in
  match words with
  | [] -> Error "empty line"
  | verb :: args -> (
      match (String.uppercase_ascii verb, args) with
      | "PUT", [ k; v ] ->
          Result.bind (int_arg "key" k) (fun k ->
              Result.map (fun v -> Op (Svc.Insert (k, v))) (int_arg "value" v))
      | "DEL", [ k ] -> Result.map (fun k -> Op (Svc.Delete k)) (int_arg "key" k)
      | "GET", [ k ] -> Result.map (fun k -> Op (Svc.Find k)) (int_arg "key" k)
      | "MGET", keys ->
          Result.bind (check_batch (List.length keys)) (fun () ->
              let rec go acc seen = function
                | [] -> Ok (Multi (List.rev acc))
                | s :: rest ->
                    Result.bind (int_arg "key" s) (fun k ->
                        no_dup seen k (fun () ->
                            go (Svc.Find k :: acc) (k :: seen) rest))
              in
              go [] [] keys)
      | "MSET", args ->
          if args = [] then Error "empty batch"
          else if List.length args mod 2 <> 0 then
            Error "MSET wants key value pairs"
          else
            Result.bind (check_batch (List.length args / 2)) (fun () ->
                let rec go acc seen = function
                  | [] -> Ok (Multi (List.rev acc))
                  | k :: v :: rest ->
                      Result.bind (int_arg "key" k) (fun k ->
                          Result.bind (int_arg "value" v) (fun v ->
                              no_dup seen k (fun () ->
                                  go (Svc.Insert (k, v) :: acc) (k :: seen)
                                    rest)))
                  | [ _ ] -> assert false (* length is even *)
                in
                go [] [] args)
      | "KILL", [ s ] -> Result.map (fun s -> Kill s) (int_arg "shard" s)
      | "HEALTH", [] -> Ok Health
      | "METRICS", [] -> Ok Metrics
      | "SLO", [] -> Ok Slo
      | "REPLICAS", [] -> Ok Replicas
      | "HEAL", [] -> Ok Heal
      | "FLIGHTDUMP", [] -> Ok Flightdump
      | "QUIT", [] -> Ok Quit
      | "SHUTDOWN", [] -> Ok Shutdown
      | v, _ -> Error (Printf.sprintf "bad command %S" v))

let format_outcome = function
  | Svc.Served b -> Printf.sprintf "OK %b" b
  | Svc.Served_stale (b, lag) -> Printf.sprintf "STALE %b lag=%d" b lag
  | Svc.Rejected r -> "REJECTED " ^ Svc.reason_to_string r
  | Svc.Failed m -> "FAILED " ^ String.map (function '\n' -> ' ' | c -> c) m

(* One token per key, in request order: the wire answer to a batch can
   never collapse per-key outcomes into one error.  A replica-served
   read is tagged [stale:<t|f>:<lag>], never a bare [t]/[f] — the
   staleness contract survives batching. *)
let outcome_token = function
  | Svc.Served true -> "t"
  | Svc.Served false -> "f"
  | Svc.Served_stale (b, lag) ->
      Printf.sprintf "stale:%c:%d" (if b then 't' else 'f') lag
  | Svc.Rejected r -> Svc.reason_to_string r
  | Svc.Failed _ -> "failed"

let format_multi outcomes =
  Printf.sprintf "MULTI %d %s" (List.length outcomes)
    (String.concat " " (List.map outcome_token outcomes))

let format_error msg = "ERR " ^ msg

let health_line (s : Svc.stats) =
  let status =
    match s.breaker with
    | Some "closed" | None -> "ok"
    | Some _ -> "degraded"
  in
  let rejected = List.fold_left (fun a (_, n) -> a + n) 0 s.rejected in
  Printf.sprintf
    "%s mode=%s breaker=%s calls=%d served=%d failed=%d rejected=%d retries=%d"
    status s.mode
    (Option.value s.breaker ~default:"none")
    s.calls s.served s.failed rejected s.retries
