(** The service layer's clock seam.

    Every policy decision in [lib/svc] — deadline checks, retry-budget
    refills, breaker window rotation and open-timeouts — reads time
    through a {!t} injected at construction, never from the system
    directly.  That is what keeps the policy state machines pure
    functions of (clock reads, RNG draws): under {!sim} the tick is the
    deterministic scheduler step counter, so the same seed replays the
    same admit/reject/retry sequence, and the structures underneath stay
    clean under the [no-timing-in-structures] lint (the clock lives
    {e above} the memory seam; see DESIGN.md §10).

    Ticks are dimensionless non-negative integers; {!ticks_per_ms}
    converts operator-facing millisecond configuration (e.g. [lfdict
    serve --deadline-ms]) into whatever unit the installed clock
    advances in. *)

type t

val now : t -> int
(** Current tick.  Monotone for the clocks below. *)

val ticks_per_ms : t -> int
(** How many ticks one millisecond of configuration is worth. *)

val ms : t -> int -> int
(** [ms c n] is [n] milliseconds in ticks ([n * ticks_per_ms c]). *)

val real : unit -> t
(** Wall clock in nanoseconds ([ticks_per_ms = 1_000_000]). *)

val sim : ?ticks_per_ms:int -> unit -> t
(** [Lf_dsim.Sim.virtual_now]: the innermost running simulation's
    shared-memory step counter — a pure function of the schedule.
    [ticks_per_ms] defaults to 100 steps (only used to scale
    millisecond-denominated configuration; pick what the scenario
    needs). *)

val manual : ?ticks_per_ms:int -> ?start:int -> unit -> t * (int -> unit)
(** A clock the test drives by hand: [(clock, advance)].  [advance d]
    moves it forward by [d >= 0] ticks ([ticks_per_ms] defaults to 1). *)
