(** The [lfdict serve] line protocol, as pure parse/format functions so
    the TCP front in [bin/lfdict.ml] stays a dumb read/write loop and
    the protocol itself is unit-testable without sockets.

    One request per line, ASCII, space-separated:

    {v
    PUT <key> <value>     insert
    DEL <key>             delete
    GET <key>             find
    MGET <k1> .. <kn>     multi-key find (scatter-gather per shard)
    MSET <k1> <v1> ..     multi-key insert, key/value pairs
    KILL <shard>          chaos: make one shard's backend fail (demo)
    HEALTH                one-line liveness/readiness summary
    METRICS               Prometheus-format snapshot, terminated by END
    SLO                   one-line multi-window burn-rate summary
    REPLICAS              one-line replica summary: per-slot host, lag, journal
    HEAL                  one-line self-healing supervisor summary
    FLIGHTDUMP            dump the flight recorder; answers OK <path>
    QUIT                  close this connection
    SHUTDOWN              stop the server
    v}

    Operation responses are one line: [OK true], [OK false],
    [STALE <bool> lag=<ticks>] (read served from a lagged replica — the
    staleness is always explicit, never a silent [OK]),
    [REJECTED <reason>], or [FAILED <message>].  A multi-key command
    answers one line — [MULTI <n> <tok> ... <tok>] with exactly one
    token per key in request order ([t]/[f] for served,
    [stale:<t|f>:<lag>] for replica-served, a reject reason, or
    [failed]); a shard that sheds or trips yields per-key tokens, never
    one collapsed error.  Parse errors get [ERR <message>].

    Batches are validated at parse time: empty batches, batches above
    {!max_batch} keys, duplicate keys, and MSET with an odd argument
    count are all [ERR] — a duplicate key has no well-defined per-key
    outcome. *)

type command =
  | Op of Svc.req
  | Multi of Svc.req list  (** MGET/MSET: scatter-gather, per-key outcomes *)
  | Kill of int  (** chaos verb for the multi-shard demo server *)
  | Health
  | Metrics
  | Slo  (** burn-rate summary ([SLO ...] line, or [ERR] untracked) *)
  | Replicas  (** per-slot replica status ([ERR] without [--replicas]) *)
  | Heal  (** supervisor status ([ERR] without [--self-heal]) *)
  | Flightdump  (** dump the span flight recorder to the dump dir *)
  | Quit
  | Shutdown

val max_batch : int
(** Largest accepted multi-key batch (64). *)

val parse : string -> (command, string) result
(** Case-insensitive on the verb; trailing [\r] (telnet) is ignored. *)

val format_outcome : Svc.outcome -> string

val format_multi : Svc.outcome list -> string
(** [MULTI <n> <tok>...] — one token per outcome, input order. *)

val format_error : string -> string
(** The [ERR ...] line for unparseable input. *)

val health_line : Svc.stats -> string
(** [ok] while the breaker (if any) is closed, [degraded] otherwise,
    followed by [key=value] counters — stable order, one line. *)
