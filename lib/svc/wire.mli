(** The [lfdict serve] line protocol, as pure parse/format functions so
    the TCP front in [bin/lfdict.ml] stays a dumb read/write loop and
    the protocol itself is unit-testable without sockets.

    One request per line, ASCII, space-separated:

    {v
    PUT <key> <value>     insert
    DEL <key>             delete
    GET <key>             find
    HEALTH                one-line liveness/readiness summary
    METRICS               Prometheus-format snapshot, terminated by END
    QUIT                  close this connection
    SHUTDOWN              stop the server
    v}

    Operation responses are one line: [OK true], [OK false],
    [REJECTED <reason>], or [FAILED <message>].  Parse errors get
    [ERR <message>]. *)

type command =
  | Op of Svc.req
  | Health
  | Metrics
  | Quit
  | Shutdown

val parse : string -> (command, string) result
(** Case-insensitive on the verb; trailing [\r] (telnet) is ignored. *)

val format_outcome : Svc.outcome -> string

val format_error : string -> string
(** The [ERR ...] line for unparseable input. *)

val health_line : Svc.stats -> string
(** [ok] while the breaker (if any) is closed, [degraded] otherwise,
    followed by [key=value] counters — stable order, one line. *)
