(** Load shedding: queue-depth- and deadline-aware admission control.

    The cheapest place to handle overload is the front door.  {!admit}
    rejects a request when the queue is already past [max_queue]
    (bounding memory and tail latency), or when the request is
    {e doomed}: its deadline cannot be met even optimistically, judged
    against an EWMA estimate of recent service time scaled by the work
    queued ahead of it.  Executing an already-expired operation is the
    purest waste a service can produce — it burns capacity to compute
    an answer nobody is waiting for — so doomed work is refused while
    refusal is still cheap.

    Pure state machine: {!observe} folds completed-call latencies into
    the estimate, ticks come from the caller's clock. *)

type config = {
  max_queue : int;  (** admit while queue_depth <= this; >= 0 *)
  est_init : int;  (** starting service-time estimate, ticks; > 0 *)
  workers : int;  (** drain parallelism assumed by the doomed test; >= 1 *)
}

val config : ?max_queue:int -> ?est_init:int -> ?workers:int -> unit -> config
(** Defaults: queue cap 128, initial estimate 1000 ticks, 1 worker. *)

type t

val create : config -> t

val estimate : t -> int
(** Current EWMA service-time estimate, ticks. *)

val observe : t -> latency:int -> t
(** Fold one completed call's latency into the estimate (alpha = 1/8). *)

val admit :
  t ->
  now:int ->
  deadline:Deadline.t ->
  queue_depth:int ->
  [ `Admit | `Reject_queue | `Reject_doomed ]
(** [`Reject_queue] when [queue_depth > max_queue]; [`Reject_doomed]
    when the deadline leaves less than
    [estimate * (queue_depth / workers + 1)] ticks.  A request with no
    deadline can only be queue-rejected. *)
