(* The clock seam: policies read ticks through [t], never the system
   clock, so the same code is deterministic under the simulator. *)

type t = { read : unit -> int; tpm : int }

let now c = c.read ()
let ticks_per_ms c = c.tpm
let ms c n = n * c.tpm

let real () =
  { read = (fun () -> int_of_float (Unix.gettimeofday () *. 1e9)); tpm = 1_000_000 }

let sim ?(ticks_per_ms = 100) () =
  { read = Lf_dsim.Sim.virtual_now; tpm = ticks_per_ms }

let manual ?(ticks_per_ms = 1) ?(start = 0) () =
  let t = ref start in
  ( { read = (fun () -> !t); tpm = ticks_per_ms },
    fun d ->
      if d < 0 then invalid_arg "Clock.manual: advance must be >= 0";
      t := !t + d )
