(* The service pipeline.  Policy state machines (Breaker / Shed /
   Retry.Budget) are immutable values; this module holds the current
   states behind one mutex and runs the admission/execution protocol
   around the wrapped dictionary closures.  Executions happen outside
   the mutex — only decisions are serialized. *)

module Span = Lf_obs.Span

type req = Insert of int * int | Delete of int | Find of int

let req_to_string = function
  | Insert (k, _) -> Printf.sprintf "ins %d" k
  | Delete k -> Printf.sprintf "del %d" k
  | Find k -> Printf.sprintf "find %d" k

let is_write = function Insert _ | Delete _ -> true | Find _ -> false

type reject_reason =
  | Expired
  | Queue_full
  | Doomed
  | Breaker_open
  | Write_degraded

let reason_to_string = function
  | Expired -> "expired"
  | Queue_full -> "queue-full"
  | Doomed -> "doomed"
  | Breaker_open -> "breaker-open"
  | Write_degraded -> "write-degraded"

let all_reasons = [ Expired; Queue_full; Doomed; Breaker_open; Write_degraded ]

type outcome =
  | Served of bool
  | Served_stale of bool * int
  | Rejected of reject_reason
  | Failed of string

let outcome_to_string = function
  | Served b -> Printf.sprintf "served %b" b
  | Served_stale (b, lag) -> Printf.sprintf "served-stale %b lag=%d" b lag
  | Rejected r -> "rejected " ^ reason_to_string r
  | Failed m -> "failed " ^ m

type ops = {
  insert : int -> int -> bool;
  delete : int -> bool;
  find : int -> bool;
}

type batched_ops = {
  insert_batch : (int * int) list -> bool list;
  delete_batch : int list -> bool list;
  find_batch : int list -> bool list;
}

type config = {
  clock : Clock.t;
  seed : int;
  deadline : int;
  retry : Retry.policy option;
  budget : Retry.Budget.config;
  breaker : Breaker.config option;
  shed : Shed.config option;
  degrade : Degrade.policy;
  coalesce_min : int;
  retryable : exn -> bool;
  backoff : int -> unit;
  log_decisions : bool;
}

let config ?(seed = 1) ?(deadline = max_int) ?(retry = None)
    ?(budget = Retry.Budget.unlimited) ?(breaker = None) ?(shed = None)
    ?(degrade = Degrade.policy ()) ?(coalesce_min = 8)
    ?(retryable = fun _ -> true) ?(backoff = fun _ -> ())
    ?(log_decisions = false) ~clock () =
  if coalesce_min < 1 then invalid_arg "Svc.config: coalesce_min < 1";
  {
    clock;
    seed;
    deadline;
    retry;
    budget;
    breaker;
    shed;
    degrade;
    coalesce_min;
    retryable;
    backoff;
    log_decisions;
  }

type t = {
  cfg : config;
  primary : ops;
  fallback : ops option;
  batched : batched_ops option;
  mu : Mutex.t;
  rng : Lf_kernel.Splitmix.t;  (* jitter stream; guarded by [mu] *)
  mutable breaker_st : Breaker.t option;
  mutable shed_st : Shed.t option;
  mutable budget_st : Retry.Budget.t;
  mutable inflight : int;
  (* counters (guarded by [mu]) *)
  mutable n_calls : int;
  mutable n_served : int;
  mutable n_served_ok : int;
  mutable n_served_degraded : int;
  mutable n_failed : int;
  mutable n_budget_denied : int;
  mutable n_rejected : int array;  (* indexed like [all_reasons] *)
  mutable transitions : (int * string) list;  (* newest first *)
  mutable log : string list;  (* newest first *)
}

let create ?fallback ?batched cfg primary =
  let now = Clock.now cfg.clock in
  {
    cfg;
    primary;
    fallback;
    batched;
    mu = Mutex.create ();
    rng = Lf_kernel.Splitmix.create cfg.seed;
    breaker_st = Option.map (fun c -> Breaker.create c ~now) cfg.breaker;
    shed_st = Option.map Shed.create cfg.shed;
    budget_st = Retry.Budget.create cfg.budget ~now;
    inflight = 0;
    n_calls = 0;
    n_served = 0;
    n_served_ok = 0;
    n_served_degraded = 0;
    n_failed = 0;
    n_budget_denied = 0;
    n_rejected = Array.make (List.length all_reasons) 0;
    transitions = [];
    log = [];
  }

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let now t = Clock.now t.cfg.clock
let clock t = t.cfg.clock

(* Callers hold [mu]. *)
let log_locked t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.log_decisions then t.log <- s :: t.log)
    fmt

let reason_index r =
  let rec go i = function
    | [] -> assert false
    | x :: rest -> if x = r then i else go (i + 1) rest
  in
  go 0 all_reasons

let breaker_kind t =
  match t.breaker_st with None -> None | Some b -> Some (Breaker.state b)

let mode_locked t =
  match breaker_kind t with
  | None -> Degrade.Normal
  | Some k -> Degrade.mode_for t.cfg.degrade k

let mode t = with_mu t (fun () -> mode_locked t)

let set_breaker_locked t ~now:tick b' =
  let before = breaker_kind t in
  t.breaker_st <- Some b';
  let after = Breaker.state b' in
  if before <> Some after then begin
    let s = Breaker.kind_to_string after in
    t.transitions <- (tick, s) :: t.transitions;
    log_locked t "t=%d breaker %s" tick s
  end

(* Feed a completed execution into breaker and shed (under [mu]). *)
let observe_locked t ~now:tick ~ok ~latency =
  (match t.breaker_st with
  | None -> ()
  | Some b -> set_breaker_locked t ~now:tick (Breaker.observe b ~now:tick ~ok ~latency));
  match t.shed_st with
  | None -> ()
  | Some s -> if ok then t.shed_st <- Some (Shed.observe s ~latency)

(* How an admitted request will execute. *)
type route =
  | Via_primary
  | Via_fallback  (* hints-off instance (No_hints degraded mode) *)
  | Via_degraded_read  (* breaker open, read-only mode: single attempt *)

let default_deadline t =
  if t.cfg.deadline = max_int then Deadline.none
  else Deadline.after t.cfg.clock ~ticks:t.cfg.deadline

(* One zero-width child span per pipeline decision, its verdict carried
   as a typed event (DESIGN.md §14).  Callers guard with [Span.active]
   so the off path constructs no event payload. *)
let decide ctx ~tick name ok ev =
  let s = Span.begin_ ctx ~name ~now:tick in
  Span.event s ~now:tick ev;
  Span.end_ s ~now:tick ~ok

(* The admission pipeline: deadline, shed, breaker + degrade.  Returns
   the execution route or the rejection.  Runs under [mu].  Span
   completion never takes other locks, so tracing under [mu] cannot
   invert a lock order. *)
let admission_locked t ~ctx ~now:tick ~dl ~queue_depth req =
  t.n_calls <- t.n_calls + 1;
  let traced = Span.active ctx in
  if Deadline.expired ~now:tick dl then begin
    if traced then decide ctx ~tick "deadline" false (Span.Deadline_check true);
    `Reject Expired
  end
  else begin
    if traced then decide ctx ~tick "deadline" true (Span.Deadline_check false);
    let depth = match queue_depth with Some q -> q | None -> t.inflight in
    let shed_verdict =
      match t.shed_st with
      | None -> `Admit
      | Some s -> Shed.admit s ~now:tick ~deadline:dl ~queue_depth:depth
    in
    match shed_verdict with
    | `Reject_queue ->
        if traced then
          decide ctx ~tick "shed" false (Span.Shed_verdict "queue-full");
        `Reject Queue_full
    | `Reject_doomed ->
        if traced then
          decide ctx ~tick "shed" false (Span.Shed_verdict "doomed");
        `Reject Doomed
    | `Admit -> (
        if traced && t.shed_st <> None then
          decide ctx ~tick "shed" true (Span.Shed_verdict "admit");
        match t.breaker_st with
        | None -> `Execute Via_primary
        | Some b -> (
            let b', verdict = Breaker.admit b ~now:tick in
            set_breaker_locked t ~now:tick b';
            match verdict with
            | `Admit ->
                if traced then
                  decide ctx ~tick "breaker" true (Span.Breaker_verdict "admit");
                `Execute Via_primary
            | `Probe -> (
                if traced then
                  decide ctx ~tick "breaker" true (Span.Breaker_verdict "probe");
                match mode_locked t with
                | Degrade.No_hints when t.fallback <> None ->
                    if traced then
                      decide ctx ~tick "degrade" true
                        (Span.Degrade_mode "no-hints");
                    `Execute Via_fallback
                | _ -> `Execute Via_primary)
            | `Reject -> (
                if traced then
                  decide ctx ~tick "breaker" false
                    (Span.Breaker_verdict "reject");
                match mode_locked t with
                | Degrade.Read_only when not (is_write req) ->
                    if traced then
                      decide ctx ~tick "degrade" true
                        (Span.Degrade_mode "read-only");
                    `Execute Via_degraded_read
                | Degrade.Read_only ->
                    if traced then
                      decide ctx ~tick "degrade" false
                        (Span.Degrade_mode "read-only");
                    `Reject Write_degraded
                | _ -> `Reject Breaker_open)))
  end

let reject t ~now:tick r req =
  with_mu t (fun () ->
      t.n_rejected.(reason_index r) <- t.n_rejected.(reason_index r) + 1;
      log_locked t "t=%d reject %s %s" tick (reason_to_string r)
        (req_to_string req));
  Rejected r

let ops_for t = function
  | Via_primary | Via_degraded_read -> t.primary
  | Via_fallback -> Option.value t.fallback ~default:t.primary

let exec_once t route req =
  let o = ops_for t route in
  match req with
  | Insert (k, v) -> o.insert k v
  | Delete k -> o.delete k
  | Find k -> o.find k

(* Spend one budget token for a retry; [false] = denied.  Under [mu]. *)
let budget_take_locked t ~now:tick =
  let b, granted = Retry.Budget.take t.budget_st ~now:tick in
  t.budget_st <- b;
  if not granted then t.n_budget_denied <- t.n_budget_denied + 1;
  granted

let served t ~route ~ok ~latency ~tick req =
  with_mu t (fun () ->
      t.n_served <- t.n_served + 1;
      if ok then t.n_served_ok <- t.n_served_ok + 1;
      if route <> Via_primary then
        t.n_served_degraded <- t.n_served_degraded + 1;
      (* [ok] is the dictionary's answer (a find can miss, an insert can
         hit a duplicate) — the execution itself succeeded, which is
         what the breaker and the shed estimator observe. *)
      observe_locked t ~now:tick ~ok:true ~latency;
      log_locked t "t=%d served %s -> %b" tick (req_to_string req) ok);
  Served ok

let failed t ~tick req msg =
  with_mu t (fun () ->
      t.n_failed <- t.n_failed + 1;
      log_locked t "t=%d failed %s: %s" tick (req_to_string req) msg);
  Failed msg

(* Execute one attempt with its span registered as the lane's current
   context, so the recorder's hooks (failed C&S, structure-op spans)
   attribute into it.  The closure only exists on the traced path —
   the off path must not allocate. *)
let run_attempt t aspan route req =
  if Span.active aspan then
    Span.with_current aspan (fun () -> exec_once t route req)
  else exec_once t route req

(* The retry loop.  Each attempt re-checks the deadline first, so an
   admitted operation never starts executing past its deadline (the
   shedding invariant test_svc asserts); each retry must win a token
   from the budget before it may run. *)
let rec attempt_loop t ctx route req ~dl ~attempt =
  let t0 = now t in
  if Deadline.expired ~now:t0 dl then begin
    if Span.active ctx then
      decide ctx ~tick:t0 "deadline" false (Span.Deadline_check true);
    if attempt = 1 then
      (* Never executed: a pure rejection, not a failure. *)
      reject t ~now:t0 Expired req
    else failed t ~tick:t0 req (Printf.sprintf "deadline after %d attempts" (attempt - 1))
  end
  else
    let aspan = Span.begin_ ctx ~name:"attempt" ~now:t0 in
    match run_attempt t aspan route req with
    | ok ->
        let t1 = now t in
        Span.end_ aspan ~now:t1 ~ok:true;
        served t ~route ~ok ~latency:(t1 - t0) ~tick:t1 req
    | exception e ->
        let t1 = now t in
        Span.end_ aspan ~now:t1 ~ok:false;
        with_mu t (fun () -> observe_locked t ~now:t1 ~ok:false ~latency:(t1 - t0));
        let msg = Printexc.to_string e in
        let single_shot = route = Via_degraded_read in
        let policy_allows =
          match t.cfg.retry with
          | None -> false
          | Some p -> attempt < p.max_attempts
        in
        if single_shot || (not (t.cfg.retryable e)) || not policy_allows then
          failed t ~tick:t1 req
            (Printf.sprintf "%s (attempt %d)" msg attempt)
        else if
          (* The budget gate: a retry happens iff a token was taken. *)
          with_mu t (fun () -> budget_take_locked t ~now:t1)
        then begin
          let p = Option.get t.cfg.retry in
          let d = with_mu t (fun () -> Retry.delay p t.rng ~attempt) in
          with_mu t (fun () ->
              log_locked t "t=%d retry %s attempt=%d delay=%d" t1
                (req_to_string req) (attempt + 1) d);
          if Span.active ctx then
            Span.event ctx ~now:t1
              (Span.Retry_wait { attempt = attempt + 1; delay = d });
          let wspan = Span.begin_ ctx ~name:"retry-wait" ~now:t1 in
          t.cfg.backoff d;
          Span.end_ wspan ~now:(now t) ~ok:true;
          attempt_loop t ctx route req ~dl ~attempt:(attempt + 1)
        end
        else begin
          if Span.active ctx then Span.event ctx ~now:t1 Span.Budget_denied;
          failed t ~tick:t1 req
            (Printf.sprintf "%s (retry budget exhausted after attempt %d)" msg
               attempt)
        end

let call t ?(ctx = Span.nil) ?deadline ?queue_depth req =
  let tick = now t in
  let dl = match deadline with Some d -> d | None -> default_deadline t in
  let decision =
    with_mu t (fun () -> admission_locked t ~ctx ~now:tick ~dl ~queue_depth req)
  in
  match decision with
  | `Reject r -> reject t ~now:tick r req
  | `Execute route ->
      with_mu t (fun () ->
          t.inflight <- t.inflight + 1;
          log_locked t "t=%d admit %s%s" tick (req_to_string req)
            (match route with
            | Via_primary -> ""
            | Via_fallback -> " (no-hints)"
            | Via_degraded_read -> " (read-only)"));
      Fun.protect
        ~finally:(fun () -> with_mu t (fun () -> t.inflight <- t.inflight - 1))
        (fun () -> attempt_loop t ctx route req ~dl ~attempt:1)

(* Coalesced path: per-element admission, then one pass through the
   batched entry points (single attempt — a batch is not retried; its
   failures surface per element as [Failed]). *)
let call_many t ?(ctx = Span.nil) ?deadline ?queue_depth reqs =
  let use_batched =
    match t.batched with
    | None -> false
    | Some _ ->
        List.length reqs >= t.cfg.coalesce_min || mode t = Degrade.Coalesce
  in
  if not use_batched then
    List.map (fun r -> call t ~ctx ?deadline ?queue_depth r) reqs
  else begin
    let b = Option.get t.batched in
    let tick = now t in
    let dl = match deadline with Some d -> d | None -> default_deadline t in
    let decisions =
      List.map
        (fun r ->
          let d =
            with_mu t (fun () ->
                admission_locked t ~ctx ~now:tick ~dl ~queue_depth r)
          in
          match d with
          | `Reject reason -> `Rejected (reject t ~now:tick reason r)
          | `Execute route -> `Run (r, route))
        reqs
    in
    (* Partition the admitted requests by kind, keeping input slots. *)
    let ins = ref [] and del = ref [] and fnd = ref [] in
    List.iteri
      (fun i d ->
        match d with
        | `Rejected _ -> ()
        | `Run (Insert (k, v), _) -> ins := (i, (k, v)) :: !ins
        | `Run (Delete k, _) -> del := (i, k) :: !del
        | `Run (Find k, _) -> fnd := (i, k) :: !fnd)
      decisions;
    let results = Array.make (List.length reqs) None in
    let t0 = now t in
    let run_batch part exec =
      let slots = List.rev_map fst part and args = List.rev_map snd part in
      match slots with
      | [] -> ()
      | _ -> (
          match exec args with
          | outs ->
              List.iter2 (fun i ok -> results.(i) <- Some (Ok ok)) slots outs
          | exception e ->
              let msg = Printexc.to_string e in
              List.iter (fun i -> results.(i) <- Some (Error msg)) slots)
    in
    let bspan = Span.begin_ ctx ~name:"batch-exec" ~now:t0 in
    let run () =
      run_batch !ins b.insert_batch;
      run_batch !del b.delete_batch;
      run_batch !fnd b.find_batch
    in
    if Span.active bspan then Span.with_current bspan run else run ();
    let t1 = now t in
    Span.end_ bspan ~now:t1 ~ok:true;
    let admitted = List.length !ins + List.length !del + List.length !fnd in
    let per_op_latency = if admitted = 0 then 0 else (t1 - t0) / admitted in
    List.mapi
      (fun i d ->
        match d with
        | `Rejected o -> o
        | `Run (r, route) -> (
            match results.(i) with
            | Some (Ok ok) ->
                served t ~route ~ok ~latency:per_op_latency ~tick:t1 r
            | Some (Error msg) -> failed t ~tick:t1 r (msg ^ " (batched)")
            | None -> failed t ~tick:t1 r "batch result missing"))
      decisions
  end

type stats = {
  calls : int;
  served : int;
  served_ok : int;
  served_degraded : int;
  failed : int;
  retries : int;
  budget_denied : int;
  rejected : (string * int) list;
  breaker : string option;
  mode : string;
  shed_estimate : int option;
  transitions : (int * string) list;
}

let stats t =
  with_mu t (fun () ->
      {
        calls = t.n_calls;
        served = t.n_served;
        served_ok = t.n_served_ok;
        served_degraded = t.n_served_degraded;
        failed = t.n_failed;
        retries = Retry.Budget.spent t.budget_st;
        budget_denied = t.n_budget_denied;
        rejected =
          List.mapi
            (fun i r -> (reason_to_string r, t.n_rejected.(i)))
            all_reasons;
        breaker =
          Option.map
            (fun b -> Breaker.kind_to_string (Breaker.state b))
            t.breaker_st;
        mode = Degrade.mode_to_string (mode_locked t);
        shed_estimate = Option.map Shed.estimate t.shed_st;
        transitions = List.rev t.transitions;
      })

let decision_log t = with_mu t (fun () -> List.rev t.log)
