(* Absolute-tick deadlines; [max_int] = none. *)

type t = int

let none = max_int

let at d =
  if d < 0 then invalid_arg "Deadline.at: negative tick";
  d

let after c ~ticks =
  if ticks = max_int then none
  else at (Clock.now c + ticks)

let after_ms c ~ms = after c ~ticks:(Clock.ms c ms)

let is_none d = d = max_int
let expired ~now d = d <> max_int && now > d
let remaining ~now d = if d = max_int then max_int else d - now

let tighten a b = min a b

let pp ppf d =
  if d = max_int then Format.pp_print_string ppf "none"
  else Format.fprintf ppf "@%d" d
