(* Retry policy (per-call backoff curve) and retry budget (per-client
   token bucket).  Pure over ticks and RNG draws. *)

type policy = { max_attempts : int; base_delay : int; max_delay : int }

let policy ?(max_attempts = 4) ?(base_delay = 1000) ?max_delay () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts < 1";
  if base_delay < 0 then invalid_arg "Retry.policy: negative base_delay";
  let max_delay =
    match max_delay with
    | Some d -> if d < 0 then invalid_arg "Retry.policy: negative max_delay" else d
    | None -> 100 * base_delay
  in
  { max_attempts; base_delay; max_delay }

(* Full jitter (uniform over the whole capped-exponential envelope):
   failed-together clients draw independent delays, so they do not retry
   together — the convoy breaker.  The shift is clamped so the envelope
   cannot overflow before the cap applies. *)
let delay p rng ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay: attempt < 1";
  if p.base_delay = 0 then 0
  else
    let shift = min (attempt - 1) 30 in
    let cap = min (p.base_delay lsl shift) p.max_delay in
    if cap <= 0 then 0 else Lf_kernel.Splitmix.int rng (cap + 1)

module Budget = struct
  type config = { capacity : int; refill_every : int }

  let config ?(capacity = 64) ?(refill_every = 0) () =
    if capacity < 0 then invalid_arg "Budget.config: negative capacity";
    if refill_every < 0 then invalid_arg "Budget.config: negative refill_every";
    { capacity; refill_every }

  let unlimited = { capacity = max_int; refill_every = 0 }

  type t = {
    cfg : config;
    tokens : int;
    last_refill : int;  (* tick of the most recent credited refill *)
    spent : int;
  }

  let create cfg ~now = { cfg; tokens = cfg.capacity; last_refill = now; spent = 0 }

  (* Credit whole elapsed refill periods; the bucket never exceeds
     capacity and [last_refill] advances only by credited periods, so no
     fractional refill time is lost or double-counted. *)
  let refill b ~now =
    if b.cfg.refill_every = 0 || b.tokens >= b.cfg.capacity then b
    else
      let elapsed = now - b.last_refill in
      if elapsed < b.cfg.refill_every then b
      else
        let earned = elapsed / b.cfg.refill_every in
        {
          b with
          tokens = min b.cfg.capacity (b.tokens + earned);
          last_refill = b.last_refill + (earned * b.cfg.refill_every);
        }

  let tokens b ~now = (refill b ~now).tokens

  let take b ~now =
    let b = refill b ~now in
    if b.tokens > 0 then ({ b with tokens = b.tokens - 1; spent = b.spent + 1 }, true)
    else (b, false)

  let spent b = b.spent
end
