(** The service pipeline: any dictionary (as closures), wrapped behind
    composable robustness policies.

    A {!call} runs the admission pipeline in order — deadline check
    (dead-on-arrival work is refused before it costs anything), load
    shedding ({!Shed}), circuit breaking ({!Breaker}) with explicit
    degraded modes ({!Degrade}) — and then executes the operation under
    a budget-governed retry loop ({!Retry}).  Every refusal is an
    explicit {!outcome}; nothing is silently dropped.

    All policy decisions are pure state machines over the injected
    {!Clock.t} and a SplitMix stream seeded from [config.seed]; the
    pipeline serializes policy transitions under one mutex, so on real
    domains the service is safe to share, and under the simulator
    (where every lane shares a domain and ticks are scheduler steps)
    the whole admit/reject/retry sequence is a pure function of the
    seed — the EXP-20 determinism test replays it. *)

type req = Insert of int * int | Delete of int | Find of int

type reject_reason =
  | Expired  (** dead on arrival (or while queued): never executed *)
  | Queue_full  (** shed: queue depth above the configured cap *)
  | Doomed  (** shed: deadline infeasible against the service-time estimate *)
  | Breaker_open  (** breaker open and no degraded mode applies *)
  | Write_degraded  (** read-only mode: writes refused while degraded *)

val reason_to_string : reject_reason -> string

type outcome =
  | Served of bool  (** executed; the dictionary's own result *)
  | Served_stale of bool * int
      (** served from a lagged replica after the owning shard refused or
          failed the read: [(found, lag_ticks)].  The pipeline itself
          never produces this — only the shard router's replica failover
          does — but it lives in [outcome] so the staleness contract is
          carried, never laundered, all the way to the wire. *)
  | Rejected of reject_reason  (** refused before any execution *)
  | Failed of string
      (** executed and gave up: retries/budget/deadline exhausted — the
          operation may or may not have taken effect (crash semantics,
          like PR 3's pending operations) *)

val outcome_to_string : outcome -> string

type ops = {
  insert : int -> int -> bool;
  delete : int -> bool;
  find : int -> bool;
}

type batched_ops = {
  insert_batch : (int * int) list -> bool list;
  delete_batch : int list -> bool list;
  find_batch : int list -> bool list;
}

type config = {
  clock : Clock.t;
  seed : int;  (** seeds the jitter stream *)
  deadline : int;  (** default per-call deadline, ticks; [max_int] = none *)
  retry : Retry.policy option;  (** [None] = never retry *)
  budget : Retry.Budget.config;
      (** always consulted by the retry loop ([Retry.Budget.unlimited]
          for the ablation), per the [no-unbounded-retry] lint *)
  breaker : Breaker.config option;
  shed : Shed.config option;
  degrade : Degrade.policy;
  coalesce_min : int;
      (** {!call_many} uses the batched path at this length or above *)
  retryable : exn -> bool;
      (** which execution exceptions may retry (injected so [lib/svc]
          never names [Lf_fault]; harnesses pass their classifier) *)
  backoff : int -> unit;
      (** performs the retry delay; default does nothing (the simulator
          must not spin a clock that only advances with scheduled
          steps) — real transports inject a waiter *)
  log_decisions : bool;  (** record the decision log (tests) *)
}

val config :
  ?seed:int ->
  ?deadline:int ->
  ?retry:Retry.policy option ->
  ?budget:Retry.Budget.config ->
  ?breaker:Breaker.config option ->
  ?shed:Shed.config option ->
  ?degrade:Degrade.policy ->
  ?coalesce_min:int ->
  ?retryable:(exn -> bool) ->
  ?backoff:(int -> unit) ->
  ?log_decisions:bool ->
  clock:Clock.t ->
  unit ->
  config
(** Defaults: no default deadline, no retry, unlimited budget, no
    breaker, no shedding, default degrade policy, [coalesce_min = 8],
    everything retryable, no-op backoff, no decision log. *)

type t

val create : ?fallback:ops -> ?batched:batched_ops -> config -> ops -> t
(** [fallback] is the hints-off instance used by {!Degrade.No_hints};
    [batched] enables the {!Degrade.Coalesce} path in {!call_many}. *)

val call :
  t ->
  ?ctx:Lf_obs.Span.ctx ->
  ?deadline:Deadline.t ->
  ?queue_depth:int ->
  req ->
  outcome
(** One request through the pipeline.  [deadline] defaults to
    [config.deadline] from now; [queue_depth] (for the shed stage)
    defaults to the service's in-flight count — transports with a real
    queue pass its length.  [ctx] (default {!Lf_obs.Span.nil}) is the
    request's trace context: when active, the pipeline opens one child
    span per decision (deadline, shed, breaker, degrade), one per
    attempt and retry wait, and registers the executing attempt so the
    recorder attributes failed C&S and structure-op spans into it. *)

val call_many :
  t ->
  ?ctx:Lf_obs.Span.ctx ->
  ?deadline:Deadline.t ->
  ?queue_depth:int ->
  req list ->
  outcome list
(** Admission per element; admitted elements execute through the
    batched entry points when available and the batch is
    [coalesce_min]-long or the degrade mode is {!Degrade.Coalesce}
    (single-attempt, no retries), else one by one via {!call}.
    Results in input order. *)

val clock : t -> Clock.t
(** The pipeline's clock seam (layers above read ticks through it). *)

val mode : t -> Degrade.mode
(** Current degraded mode (from the breaker state; {!Degrade.Normal}
    without a breaker). *)

(** Aggregate counters since {!create}.  [retries = Retry.Budget.spent]:
    tokens spent and retries issued are the same number by
    construction. *)
type stats = {
  calls : int;
  served : int;  (** completed executions, degraded ones included *)
  served_ok : int;  (** of which returned [true] *)
  served_degraded : int;  (** served through a degraded mode *)
  failed : int;
  retries : int;
  budget_denied : int;  (** retries refused by the budget *)
  rejected : (string * int) list;  (** reason -> count, fixed order *)
  breaker : string option;
  mode : string;
  shed_estimate : int option;
  transitions : (int * string) list;
      (** breaker state changes, (tick, new state), oldest first *)
}

val stats : t -> stats

val decision_log : t -> string list
(** Oldest first; empty unless [config.log_decisions].  One line per
    admission verdict, retry, and completion — the determinism test's
    replay witness. *)
