(** Circuit breaker: a closed / open / half-open state machine driven by
    windowed failure and latency statistics.

    While {e closed}, every outcome is recorded into a two-bucket
    rotating window (current + previous, each [window] ticks wide, the
    standard approximation of a sliding window); a call counts as a
    failure if it raised, or if its latency exceeded
    [latency_threshold] — the latter is what lets the breaker see a
    stall-storm (PR 3 fault plans) that slows calls without failing
    them.  When the window holds at least [min_calls] observations and
    the failure share reaches [failure_pct], the breaker {e opens}: calls
    are rejected at the door for [open_for] ticks (the service sheds
    instantly instead of queueing onto a struggling structure).  After
    [open_for], the first admission becomes a {e probe} (half-open);
    [probes] consecutive probe successes close the breaker and reset the
    window, one probe failure re-opens it.

    Latencies are additionally kept in a {!Lf_obs.Hist.t} per window
    bucket, so health endpoints can report windowed quantiles from the
    same observations that drive the trip decision.

    Pure: a {!t} is an immutable value; {!admit} and {!observe} return
    the successor state.  Ticks come from the caller's {!Clock.t}. *)

type config = {
  window : int;  (** width of one stats bucket, ticks; > 0 *)
  min_calls : int;  (** observations required before tripping *)
  failure_pct : int;  (** trip when failures * 100 >= this * calls *)
  latency_threshold : int;
      (** a slower-than-this success still counts failed; [max_int] = off *)
  open_for : int;  (** ticks to reject before probing; > 0 *)
  probes : int;  (** consecutive probe successes needed to close; >= 1 *)
}

val config :
  ?window:int ->
  ?min_calls:int ->
  ?failure_pct:int ->
  ?latency_threshold:int ->
  ?open_for:int ->
  ?probes:int ->
  unit ->
  config
(** Defaults: window 1000, min_calls 10, failure_pct 50, latency
    threshold off, open_for 5000, probes 3.
    @raise Invalid_argument on non-positive [window]/[open_for]/[probes]
    or a [failure_pct] outside [\[0, 100\]]. *)

type kind = Closed | Open | Half_open

type t

val create : config -> now:int -> t
val state : t -> kind
val kind_to_string : kind -> string

val admit : t -> now:int -> t * [ `Admit | `Probe | `Reject ]
(** Closed: [`Admit].  Open: [`Reject] until [open_for] has elapsed,
    then transition to half-open and [`Probe].  Half-open: [`Probe]
    (the caller decides how many probes to have in flight; each
    {!observe} settles one). *)

val observe : t -> now:int -> ok:bool -> latency:int -> t
(** Record a completed call admitted by this breaker. *)

val window_calls : t -> now:int -> int
val window_failures : t -> now:int -> int

val window_latency : t -> now:int -> Lf_obs.Hist.t
(** Merged histogram of the latencies in the live window (a fresh
    histogram; callers may mutate it freely). *)
