(** Deadlines: absolute ticks on a {!Clock.t}, created at admission and
    propagated through the pipeline (and over the wire as an absolute
    budget), so every stage can ask the one question that matters under
    overload — "is this work already doomed?" — without re-deriving
    time arithmetic. *)

type t = private int
(** Absolute expiry tick; {!none} means no deadline. *)

val none : t

val at : int -> t
(** An absolute expiry tick.  @raise Invalid_argument if negative. *)

val after : Clock.t -> ticks:int -> t
(** [after c ~ticks] expires [ticks] from now ([none] if
    [ticks = max_int]). *)

val after_ms : Clock.t -> ms:int -> t

val is_none : t -> bool
val expired : now:int -> t -> bool

val remaining : now:int -> t -> int
(** Ticks left (negative if expired; [max_int] if {!none}). *)

val tighten : t -> t -> t
(** The earlier of the two — deadline propagation never loosens. *)

val pp : Format.formatter -> t -> unit
