(* Deadline- and queue-aware admission control over an EWMA service-time
   estimate. *)

type config = { max_queue : int; est_init : int; workers : int }

let config ?(max_queue = 128) ?(est_init = 1000) ?(workers = 1) () =
  if max_queue < 0 then invalid_arg "Shed.config: negative max_queue";
  if est_init <= 0 then invalid_arg "Shed.config: est_init <= 0";
  if workers < 1 then invalid_arg "Shed.config: workers < 1";
  { max_queue; est_init; workers }

type t = { cfg : config; est : int }

let create cfg = { cfg; est = cfg.est_init }
let estimate t = t.est

(* EWMA with alpha = 1/8, floored at 1 so a burst of sub-tick latencies
   cannot talk the estimate down to "everything is feasible". *)
let observe t ~latency =
  let latency = max 0 latency in
  { t with est = max 1 (((7 * t.est) + latency) / 8) }

let admit t ~now ~deadline ~queue_depth =
  if queue_depth > t.cfg.max_queue then `Reject_queue
  else if Deadline.is_none deadline then `Admit
  else
    let ahead = (queue_depth / t.cfg.workers) + 1 in
    let needed = t.est * ahead in
    if Deadline.remaining ~now deadline < needed then `Reject_doomed else `Admit
