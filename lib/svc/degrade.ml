type mode = Normal | Read_only | No_hints | Coalesce

type policy = { on_open : mode; on_half_open : mode }

let policy ?(on_open = Read_only) ?(on_half_open = No_hints) () =
  { on_open; on_half_open }

let mode_for p = function
  | Breaker.Closed -> Normal
  | Breaker.Open -> p.on_open
  | Breaker.Half_open -> p.on_half_open

let mode_to_string = function
  | Normal -> "normal"
  | Read_only -> "read-only"
  | No_hints -> "no-hints"
  | Coalesce -> "coalesce"

let mode_of_string = function
  | "normal" -> Some Normal
  | "read-only" -> Some Read_only
  | "no-hints" -> Some No_hints
  | "coalesce" -> Some Coalesce
  | _ -> None
