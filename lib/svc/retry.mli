(** Bounded, jittered, budget-governed retries.

    Two separate concerns, deliberately kept apart:

    - a {!policy} says how one call may retry: attempt cap and the
      capped-exponential backoff curve, jittered from an injected
      {!Lf_kernel.Splitmix.t} stream so racing clients spread out
      instead of re-colliding in convoys;

    - a {!Budget.t} says how much retrying a {e client} may do in
      aggregate: a token bucket consulted before every retry, which is
      what prevents the classic metastable failure where an overloaded
      service's failures breed retries that breed more overload
      (EXP-20 part C measures exactly this with budgets off vs on).

    Both are pure state machines over ticks and RNG draws: no clock or
    sleep inside — the caller reads its {!Clock.t} and performs the
    waiting.  The [no-unbounded-retry] lint enforces that every retry
    loop in [lib/svc] consults a budget. *)

type policy = {
  max_attempts : int;  (** total tries including the first; >= 1 *)
  base_delay : int;  (** backoff unit, ticks; >= 0 *)
  max_delay : int;  (** cap on the un-jittered curve, ticks *)
}

val policy : ?max_attempts:int -> ?base_delay:int -> ?max_delay:int -> unit -> policy
(** Defaults: 4 attempts, base 1000 ticks, cap 100x base.
    @raise Invalid_argument on a non-positive attempt cap or negative
    delay. *)

val delay : policy -> Lf_kernel.Splitmix.t -> attempt:int -> int
(** Backoff before retrying after failed attempt number [attempt]
    (1-based): full jitter — uniform in [\[0, cap\]] where
    [cap = min (base_delay * 2^(attempt-1)) max_delay]. *)

(** Per-client retry allowance: a token bucket.  One token = one retry;
    {!take} at every retry decision is what makes "tokens spent =
    retries issued" an invariant the tests can state. *)
module Budget : sig
  type config = {
    capacity : int;  (** bucket size; >= 0 *)
    refill_every : int;
        (** ticks per regained token; [0] = never refill (a hard cap
            for the whole run) *)
  }

  val config : ?capacity:int -> ?refill_every:int -> unit -> config
  (** Defaults: capacity 64, no refill. *)

  val unlimited : config
  (** Effectively boundless ([capacity = max_int]): the "budgets off"
      ablation.  The retry loop still consults it, so the code path —
      and the lint obligation — never changes, only the answer. *)

  type t

  val create : config -> now:int -> t
  val tokens : t -> now:int -> int
  (** Tokens available after refilling up to [now]. *)

  val take : t -> now:int -> t * bool
  (** Spend one token; [false] (state unchanged apart from refill) if
      the bucket is empty. *)

  val spent : t -> int
  (** Total tokens ever taken — equals retries issued under it. *)
end
