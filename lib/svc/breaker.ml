(* Closed / open / half-open circuit breaker over a two-bucket rotating
   stats window.  Immutable values: [admit]/[observe] return successors.
   The latency histograms are Lf_obs.Hist (mutable), so transitions that
   write one work on a copy — purity at the cost of an array copy per
   observation, which is well below the cost of the dictionary call the
   observation describes. *)

type config = {
  window : int;
  min_calls : int;
  failure_pct : int;
  latency_threshold : int;
  open_for : int;
  probes : int;
}

let config ?(window = 1000) ?(min_calls = 10) ?(failure_pct = 50)
    ?(latency_threshold = max_int) ?(open_for = 5000) ?(probes = 3) () =
  if window <= 0 then invalid_arg "Breaker.config: window <= 0";
  if open_for <= 0 then invalid_arg "Breaker.config: open_for <= 0";
  if probes < 1 then invalid_arg "Breaker.config: probes < 1";
  if failure_pct < 0 || failure_pct > 100 then
    invalid_arg "Breaker.config: failure_pct outside [0, 100]";
  { window; min_calls; failure_pct; latency_threshold; open_for; probes }

type kind = Closed | Open | Half_open

let kind_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type bucket = { calls : int; failures : int; lat : Lf_obs.Hist.t }

let empty_bucket () = { calls = 0; failures = 0; lat = Lf_obs.Hist.create () }

type st =
  | S_closed
  | S_open of int  (* reject until this tick *)
  | S_half of int  (* consecutive probe successes so far *)

type t = { cfg : config; st : st; cur : bucket; prev : bucket; start : int }

let create cfg ~now =
  { cfg; st = S_closed; cur = empty_bucket (); prev = empty_bucket (); start = now }

let state t =
  match t.st with S_closed -> Closed | S_open _ -> Open | S_half _ -> Half_open

(* Slide the two-bucket window forward to cover [now]. *)
let rotate t ~now =
  let w = t.cfg.window in
  let elapsed = now - t.start in
  if elapsed < w then t
  else if elapsed < 2 * w then
    { t with prev = t.cur; cur = empty_bucket (); start = t.start + w }
  else
    (* Both buckets have aged out; realign the boundary to the grid. *)
    {
      t with
      prev = empty_bucket ();
      cur = empty_bucket ();
      start = now - (elapsed mod w);
    }

let live_calls t = t.cur.calls + t.prev.calls
let live_failures t = t.cur.failures + t.prev.failures

let window_calls t ~now = live_calls (rotate t ~now)
let window_failures t ~now = live_failures (rotate t ~now)

let window_latency t ~now =
  let t = rotate t ~now in
  let h = Lf_obs.Hist.copy t.prev.lat in
  Lf_obs.Hist.merge_into ~into:h t.cur.lat;
  h

let admit t ~now =
  match t.st with
  | S_closed -> (t, `Admit)
  | S_open until ->
      if now >= until then ({ t with st = S_half 0 }, `Probe) else (t, `Reject)
  | S_half _ -> (t, `Probe)

let trip t ~now = { t with st = S_open (now + t.cfg.open_for) }

let observe t ~now ~ok ~latency =
  let failed = (not ok) || latency > t.cfg.latency_threshold in
  match t.st with
  | S_half n ->
      if failed then trip t ~now
      else if n + 1 >= t.cfg.probes then
        (* Recovered: close with a clean window so stale storm counts
           cannot re-trip the breaker on its first post-recovery call. *)
        {
          t with
          st = S_closed;
          cur = empty_bucket ();
          prev = empty_bucket ();
          start = now;
        }
      else { t with st = S_half (n + 1) }
  | S_open _ ->
      (* A straggler admitted before the trip; it already counted toward
         the window that opened the breaker, so ignore it. *)
      t
  | S_closed ->
      let t = rotate t ~now in
      let lat = Lf_obs.Hist.copy t.cur.lat in
      Lf_obs.Hist.add lat latency;
      let cur =
        {
          calls = t.cur.calls + 1;
          failures = (t.cur.failures + if failed then 1 else 0);
          lat;
        }
      in
      let t = { t with cur } in
      if
        live_calls t >= t.cfg.min_calls
        && live_failures t * 100 >= t.cfg.failure_pct * live_calls t
      then trip t ~now
      else t
