(** Explicit degraded modes, driven by the breaker's state.

    A service that cannot give full answers should say what it {e can}
    do, not fail randomly.  The three degraded behaviours map onto
    capabilities the dictionaries already have:

    - {!Read_only}: writes are rejected (as rejections, never silent
      drops); searches keep being served even while the breaker is
      open — the FR structures' wait-free searches are exactly the
      operation that stays safe under a write-side storm.
    - {!No_hints}: route operations to a fallback instance created with
      the per-domain predecessor caches disabled (the PR 2 ablation),
      for recovery phases where stale hints would keep touching the
      contended region.
    - {!Coalesce}: drain queued work through the PR 2 [BATCHED] entry
      points — key-sorted carry batches amortize the search cost
      precisely when the queue is long.

    The mapping is configuration ({!policy}), the decision function
    ({!mode_for}) is pure, and the mechanics live in {!Svc}. *)

type mode = Normal | Read_only | No_hints | Coalesce

type policy = {
  on_open : mode;  (** mode while the breaker is open *)
  on_half_open : mode;  (** mode while probing *)
}

val policy : ?on_open:mode -> ?on_half_open:mode -> unit -> policy
(** Defaults: [Read_only] while open, [No_hints] while half-open. *)

val mode_for : policy -> Breaker.kind -> mode
(** [Normal] when closed. *)

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
