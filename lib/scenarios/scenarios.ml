(* The paper's adversarial executions and measurement scenarios, packaged
   as a library so that the benchmark harness (bench/exp*.ml) and the
   shape-lock regression tests (test/test_experiments.ml) drive the exact
   same code.

   Everything here runs in the deterministic simulator; see DESIGN.md for
   the construction of each schedule. *)

module Sim = Lf_dsim.Sim
module Ev = Lf_kernel.Mem_event

module FrL = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module HaL = Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module MiL = Lf_baselines.Michael_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module VaL = Lf_baselines.Valois_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module FrS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module FzS = Lf_skiplist.Fraser_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module StS = Lf_skiplist.St_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

(* ------------------------------------------------------------------ *)
(* EXP-1: amortized-bound measurement on the FR list.                  *)

(* Returns (total essential steps, sum of n(S)+c(S), #ops). *)
let exp1_run ~q ~n0 ~seed =
  let t = FrL.create () in
  let ops =
    Lf_workload.Sim_driver.
      {
        insert = (fun k -> FrL.insert t k k);
        delete = (fun k -> FrL.delete t k);
        find = (fun k -> FrL.mem t k);
      }
  in
  let key_range = max 4 (2 * n0) in
  let filled =
    if n0 = 0 then 0
    else Lf_workload.Sim_driver.prefill ~key_range ~count:n0 ~seed:(seed + 1) ops
  in
  let res =
    Lf_workload.Sim_driver.run_mixed ~policy:(Sim.Random seed)
      ~initial_size:filled ~procs:q ~ops_per_proc:60 ~key_range
      ~mix:{ insert_pct = 30; delete_pct = 30 }
      ~seed ops
  in
  (Sim.total_essential res, Sim.bound_sum res, List.length res.ops)

(* ------------------------------------------------------------------ *)
(* EXP-2: the Section 3.1 tail adversary for linked lists.             *)

type list_target = {
  lname : string;
  insert : int -> bool;
  delete : int -> bool;
}

let fr_list_target () =
  let t = FrL.create () in
  {
    lname = "fr-list";
    insert = (fun k -> FrL.insert t k k);
    delete = (fun k -> FrL.delete t k);
  }

let harris_list_target () =
  let t = HaL.create () in
  {
    lname = "harris";
    insert = (fun k -> HaL.insert t k k);
    delete = (fun k -> HaL.delete t k);
  }

let michael_list_target () =
  let t = MiL.create () in
  {
    lname = "michael";
    insert = (fun k -> MiL.insert t k k);
    delete = (fun k -> MiL.delete t k);
  }

(* Shared engine: prefill keys 1..n, park q-1 inserters at their pending
   insertion C&S at the tail, run the deleter for [rounds] deletions of the
   last node, releasing every inserter exactly once per round.  Returns
   (avg essential per op, inserter recovery steps per round per inserter,
   total ops). *)
let tail_adversary ~n ~q ~rounds (mk : unit -> list_target) =
  let tgt = mk () in
  ignore
    (Sim.run
       [|
         (fun _ ->
           for i = 1 to n do
             ignore (tgt.insert i)
           done);
       |]);
  let num_inserters = q - 1 in
  let deleter = q - 1 in
  let inserter_body pid =
    Sim.op_begin ~n;
    ignore (tgt.insert (n + 1 + pid));
    Sim.op_end ()
  in
  let deleter_body _pid =
    for r = 1 to rounds do
      Sim.op_begin ~n:(n - r + 1);
      ignore (tgt.delete (n - r + 1));
      Sim.op_end ()
    done
  in
  let bodies =
    Array.init q (fun pid ->
        if pid = deleter then deleter_body else inserter_body)
  in
  let ins_attempts st i =
    (Sim.counters st i).Lf_kernel.Counters.cas_attempts.(Lf_kernel.Counters
                                                         .kind_index
                                                           Ev.Insertion)
  in
  let policy st =
    let dc = Sim.ops_completed st deleter in
    let rec mid i =
      if i >= num_inserters then None
      else if
        (not (Sim.is_finished st i))
        && Sim.pending_kind st i <> Some (Lf_dsim.Sim_effect.Cas Ev.Insertion)
      then Some i
      else mid (i + 1)
    in
    match mid 0 with
    | Some i -> Some i
    | None -> (
        let rec release i =
          if i >= num_inserters then None
          else if (not (Sim.is_finished st i)) && ins_attempts st i < dc then
            Some i
          else release (i + 1)
        in
        match release 0 with
        | Some i -> Some i
        | None -> if Sim.is_finished st deleter then None else Some deleter)
  in
  let res = Sim.run ~policy:(Sim.Custom policy) ~max_steps:200_000_000 bodies in
  let essential = Sim.total_essential res in
  let total_ops = rounds + num_inserters in
  let inserter_steps =
    let sum = ref 0 in
    for i = 0 to num_inserters - 1 do
      sum := !sum + Lf_kernel.Counters.essential_steps res.per_proc.(i)
    done;
    !sum
  in
  ( float_of_int essential /. float_of_int total_ops,
    float_of_int inserter_steps /. float_of_int (rounds * num_inserters),
    total_ops )

(* ------------------------------------------------------------------ *)
(* EXP-3: the Valois Omega(m) execution.                               *)

type omega_target = {
  oinsert : int -> bool;
  odelete : int -> bool;
  park_kind : Ev.cas_kind;
}

let valois_omega_target () =
  let t = VaL.create () in
  {
    oinsert = (fun k -> VaL.insert t k k);
    odelete = (fun k -> VaL.delete t k);
    park_kind = Ev.Physical_delete;
  }

let fr_omega_target () =
  let t = FrL.create () in
  {
    oinsert = (fun k -> FrL.insert t k k);
    odelete = (fun k -> FrL.delete t k);
    park_kind = Ev.Flagging;
  }

(* Alternating deleters with parked stale cursors plus a producer; returns
   (avg essential steps per delete op, total backlink+aux chain steps). *)
let omega_schedule ~m (mk : unit -> omega_target) =
  let tgt = mk () in
  ignore
    (Sim.run
       [|
         (fun _ ->
           ignore (tgt.oinsert 1);
           ignore (tgt.oinsert 2));
       |]);
  let deleter first_victim _pid =
    let v = ref first_victim in
    while !v <= m do
      Sim.op_begin ~n:3;
      ignore (tgt.odelete !v);
      Sim.op_end ();
      v := !v + 2
    done
  in
  let producer _pid =
    for k = 3 to m + 2 do
      Sim.op_begin ~n:3;
      ignore (tgt.oinsert k);
      Sim.op_end ()
    done
  in
  let bodies = [| deleter 1; deleter 2; producer |] in
  let producer_pid = 2 in
  let policy st =
    let r = Sim.ops_completed st 0 + Sim.ops_completed st 1 + 1 in
    if r > m then None
    else begin
      let d = (r - 1) mod 2 in
      let o = 1 - d in
      if
        Sim.ops_completed st producer_pid < r
        && not (Sim.is_finished st producer_pid)
      then Some producer_pid
      else if
        (not (Sim.is_finished st o))
        && Sim.pending_kind st o <> Some (Lf_dsim.Sim_effect.Cas tgt.park_kind)
      then Some o
      else if not (Sim.is_finished st d) then Some d
      else None
    end
  in
  let res = Sim.run ~policy:(Sim.Custom policy) ~max_steps:400_000_000 bodies in
  let delete_ops =
    List.filter (fun (op : Sim.op_record) -> op.op_pid <> producer_pid) res.ops
  in
  let essential =
    List.fold_left (fun a (op : Sim.op_record) -> a + op.essential) 0 delete_ops
  in
  let chain_steps =
    List.fold_left
      (fun a (op : Sim.op_record) -> a + op.op_backlinks + op.op_aux_steps)
      0 delete_ops
  in
  ( float_of_int essential /. float_of_int (max 1 (List.length delete_ops)),
    chain_steps )

(* ------------------------------------------------------------------ *)
(* EXP-9: superfluous-helping ablation on the FR skip list.            *)

let tower_height = 8

(* Rounds of insert-tall / delete / search past it, single process.
   Returns (avg essential per op, dead nodes still linked at the end).
   Hints off: the repeated search past the dead region is exactly what a
   predecessor cache short-circuits, and this experiment isolates the
   superfluous-helping variable (EXP-17 measures hints). *)
let superfluous_mode ~help_superfluous ~m =
  let t =
    FrS.create_with ~max_level:tower_height ~help_superfluous
      ~use_hints:false ()
  in
  let body _pid =
    for r = 1 to m do
      Sim.op_begin ~n:1;
      ignore (FrS.insert_with_height t ~height:tower_height r r);
      Sim.op_end ();
      Sim.op_begin ~n:1;
      ignore (FrS.delete t r);
      Sim.op_end ();
      Sim.op_begin ~n:1;
      ignore (FrS.mem t (m + 5));
      Sim.op_end ()
    done
  in
  let res = Sim.run ~max_steps:400_000_000 [| body |] in
  let residue =
    Sim.quiet (fun () -> Array.fold_left ( + ) 0 (FrS.level_counts t))
  in
  (float_of_int (Sim.total_essential res) /. float_of_int (3 * m), residue)

(* ------------------------------------------------------------------ *)
(* EXP-13/15: the tail adversary for skip lists.                       *)

type sl_target = {
  insert1 : int -> bool; (* height-1 insert *)
  sdelete : int -> bool;
  prefill : int -> unit;
}

(* Perfect-skip-list height profile: height(i) = trailing zeros of i + 1. *)
let tz_height i =
  let rec go i h = if i land 1 = 1 || i = 0 then h else go (i lsr 1) (h + 1) in
  min 16 (go i 1)

let fr_sl_target () =
  let t = FrS.create_with ~max_level:16 () in
  {
    insert1 = (fun k -> FrS.insert_with_height t ~height:1 k k);
    sdelete = (fun k -> FrS.delete t k);
    prefill = (fun k -> ignore (FrS.insert_with_height t ~height:(tz_height k) k k));
  }

let fraser_sl_target () =
  let t = FzS.create_with ~max_level:16 () in
  {
    insert1 = (fun k -> FzS.insert_with_height t ~height:1 k k);
    sdelete = (fun k -> FzS.delete t k);
    prefill = (fun k -> ignore (FzS.insert_with_height t ~height:(tz_height k) k k));
  }

let st_sl_target () =
  let t = StS.create_with ~max_level:16 () in
  {
    insert1 = (fun k -> StS.insert_with_height t ~height:1 k k);
    sdelete = (fun k -> StS.delete t k);
    prefill = (fun k -> ignore (StS.insert_with_height t ~height:(tz_height k) k k));
  }

(* Same schedule as [tail_adversary], over a skip list; returns the
   inserter recovery steps per round per inserter. *)
let sl_tail_adversary ~n ~q ~rounds (mk : unit -> sl_target) =
  let tgt = mk () in
  ignore
    (Sim.run
       [|
         (fun _ ->
           for i = 1 to n do
             tgt.prefill i
           done);
       |]);
  let num_inserters = q - 1 in
  let deleter = q - 1 in
  let inserter_body pid =
    Sim.op_begin ~n;
    ignore (tgt.insert1 (n + 1 + pid));
    Sim.op_end ()
  in
  let deleter_body _pid =
    for r = 1 to rounds do
      Sim.op_begin ~n:(n - r + 1);
      ignore (tgt.sdelete (n - r + 1));
      Sim.op_end ()
    done
  in
  let bodies =
    Array.init q (fun pid ->
        if pid = deleter then deleter_body else inserter_body)
  in
  let ins_attempts st i =
    (Sim.counters st i).Lf_kernel.Counters.cas_attempts.(Lf_kernel.Counters
                                                         .kind_index
                                                           Ev.Insertion)
  in
  let policy st =
    let dc = Sim.ops_completed st deleter in
    let rec mid i =
      if i >= num_inserters then None
      else if
        (not (Sim.is_finished st i))
        && Sim.pending_kind st i <> Some (Lf_dsim.Sim_effect.Cas Ev.Insertion)
      then Some i
      else mid (i + 1)
    in
    match mid 0 with
    | Some i -> Some i
    | None -> (
        let rec release i =
          if i >= num_inserters then None
          else if (not (Sim.is_finished st i)) && ins_attempts st i < dc then
            Some i
          else release (i + 1)
        in
        match release 0 with
        | Some i -> Some i
        | None -> if Sim.is_finished st deleter then None else Some deleter)
  in
  let res = Sim.run ~policy:(Sim.Custom policy) ~max_steps:200_000_000 bodies in
  let inserter_steps =
    let sum = ref 0 in
    for i = 0 to num_inserters - 1 do
      sum := !sum + Lf_kernel.Counters.essential_steps res.per_proc.(i)
    done;
    !sum
  in
  float_of_int inserter_steps /. float_of_int (rounds * num_inserters)

(* ------------------------------------------------------------------ *)
(* Convenience wrappers used by the shape-lock regression tests.       *)

let exp2_recovery ~n =
  let _, fr, _ = tail_adversary ~n ~q:4 ~rounds:(n / 2) fr_list_target in
  let _, ha, _ = tail_adversary ~n ~q:4 ~rounds:(n / 2) harris_list_target in
  (fr, ha)

let exp3_avg ~m =
  let v, _ = omega_schedule ~m valois_omega_target in
  let f, _ = omega_schedule ~m fr_omega_target in
  (v, f)

let exp9_avg ~m =
  let nh, _ = superfluous_mode ~help_superfluous:false ~m in
  let h, _ = superfluous_mode ~help_superfluous:true ~m in
  (nh, h)

let exp13_recovery ~n =
  let fr = sl_tail_adversary ~n ~q:4 ~rounds:(min (n / 2) 64) fr_sl_target in
  let fz = sl_tail_adversary ~n ~q:4 ~rounds:(min (n / 2) 64) fraser_sl_target in
  (fr, fz)
