(* The self-healing supervisor: a policy state machine in the same
   mould as Svc's breaker and shed — every decision taken under one
   mutex, paced purely by comparing Clock ticks (never by sleeping; the
   no-policy-sleep lint pins this), each transition journaled so a heal
   replays from its journal during a post-mortem.

   Signal -> decision -> actuation, strictly separated:
   - the *signal* is a Health snapshot (breaker state, shed rate) plus
     the serve SLO's fast-burn bit, folded into per-shard sick/ok poll
     counters (hysteresis: one bad poll never triggers a move);
   - the *decision* is [tick]: a pure function of the counters, the
     slot assignment and the clock that emits at most [move_budget]
     evacuation actions per poll, respecting per-shard exponential
     backoff after failed migrations — healing must never become a
     migration storm;
   - the *actuation* is [run_tick], which executes the planned actions
     against the router ([promote] for replicated slots, [rebalance]
     otherwise), reports results back into the backoff bookkeeping, and
     queues begin/end events for the flight recorder. *)

module Clock = Lf_svc.Clock

type via = Copy | Promote

type action = { a_slot : int; a_from : int; a_to : int; a_via : via }

type event =
  | Heal_begun of { e_shard : int; e_slot : int; e_to : int; e_via : via }
  | Heal_ended of {
      e_shard : int;
      e_slot : int;
      e_ok : bool;
      e_moved : int;
    }

type config = {
  clock : Clock.t;
  poll_every : int;  (* ticks between health polls *)
  sick_after : int;  (* consecutive sick polls before evacuating *)
  healthy_after : int;  (* consecutive ok polls before a shard is a target *)
  move_budget : int;  (* max evacuations planned per poll *)
  backoff_base : int;  (* ticks; doubles per consecutive failure *)
  backoff_max : int;
  shed_sick_pct : int;
      (* a poll also counts sick when rejected/calls since the last
         poll exceeds this percentage — a shard can be drowning in
         sheds with its breaker still closed *)
  apply_budget : int;  (* replica journal entries applied per tick *)
  key_range : int;  (* keyspace bound scanned by migrations *)
}

let config ?(poll_every = 1) ?(sick_after = 3) ?(healthy_after = 2)
    ?(move_budget = 1) ?(backoff_base = 4) ?(backoff_max = 64)
    ?(shed_sick_pct = 50) ?(apply_budget = 256) ~clock ~key_range () =
  if poll_every < 1 then invalid_arg "Supervisor.config: poll_every < 1";
  if sick_after < 1 then invalid_arg "Supervisor.config: sick_after < 1";
  if move_budget < 1 then invalid_arg "Supervisor.config: move_budget < 1";
  if key_range < 0 then invalid_arg "Supervisor.config: key_range < 0";
  {
    clock;
    poll_every;
    sick_after;
    healthy_after;
    move_budget;
    backoff_base;
    backoff_max;
    shed_sick_pct;
    apply_budget;
    key_range;
  }

type shard_state = {
  mutable sick_polls : int;  (* consecutive polls observed sick *)
  mutable ok_polls : int;  (* consecutive polls observed ok *)
  mutable fails : int;  (* consecutive failed migrations off this shard *)
  mutable next_try : int;  (* no moves off this shard before this tick *)
  mutable last_calls : int;  (* for the shed-rate delta *)
  mutable last_rejected : int;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  state : shard_state array;
  mutable last_poll : int;  (* tick of the last accepted poll; min_int = never *)
  mutable polls : int;
  mutable begun : int;
  mutable healed : int;
  mutable failed : int;
  mutable moved : int;  (* keys moved by completed heals *)
  mutable journal : string list;  (* newest first, bounded *)
  mutable journal_n : int;
  pending : event Queue.t;
}

let journal_limit = 64

let create cfg ~shards =
  if shards < 1 then invalid_arg "Supervisor.create: shards < 1";
  {
    cfg;
    mu = Mutex.create ();
    state =
      Array.init shards (fun _ ->
          {
            sick_polls = 0;
            ok_polls = 0;
            fails = 0;
            next_try = min_int;
            last_calls = 0;
            last_rejected = 0;
          });
    last_poll = min_int;
    polls = 0;
    begun = 0;
    healed = 0;
    failed = 0;
    moved = 0;
    journal = [];
    journal_n = 0;
    pending = Queue.create ();
  }

(* Journal lines carry the supervisor's own tick so they join against
   the router journal and span dumps during reconstruction. *)
let note_locked t ~now fmt =
  Printf.ksprintf
    (fun line ->
      let line = Printf.sprintf "t=%d %s" now line in
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      t.journal <- line :: take (journal_limit - 1) t.journal;
      t.journal_n <- t.journal_n + 1)
    fmt

let journal t =
  Mutex.lock t.mu;
  let j = List.rev t.journal in
  Mutex.unlock t.mu;
  j

let events t =
  Mutex.lock t.mu;
  let out = List.rev (Queue.fold (fun acc e -> e :: acc) [] t.pending) in
  Queue.clear t.pending;
  Mutex.unlock t.mu;
  out

(* One health poll folded into the per-shard hysteresis counters.
   Sickness is breaker-not-closed OR a shed rate above the configured
   percentage since the last poll. *)
let observe_locked t ~now (health : Health.shard_health list) =
  List.iter
    (fun (h : Health.shard_health) ->
      let s = t.state.(h.h_id) in
      let calls_d = h.h_calls - s.last_calls
      and rej_d = h.h_rejected - s.last_rejected in
      s.last_calls <- h.h_calls;
      s.last_rejected <- h.h_rejected;
      let shedding =
        calls_d > 0 && rej_d * 100 > t.cfg.shed_sick_pct * calls_d
      in
      let sick = (not h.h_ok) || shedding in
      if sick then begin
        s.ok_polls <- 0;
        s.sick_polls <- s.sick_polls + 1;
        if s.sick_polls = t.cfg.sick_after then
          note_locked t ~now "shard %d sick (breaker=%s polls=%d%s)" h.h_id
            h.h_breaker s.sick_polls
            (if shedding then " shedding" else "")
      end
      else begin
        if s.sick_polls >= t.cfg.sick_after then
          note_locked t ~now "shard %d recovered (breaker=%s)" h.h_id
            h.h_breaker;
        s.sick_polls <- 0;
        s.ok_polls <- s.ok_polls + 1
      end)
    health

(* The pure planning step: which slots to move, where, this poll.
   [replica_host slot] names the promotion target when the slot is
   replicated.  [pending_abort] is a migration the router left aborted
   mid-drain — resuming it has absolute priority (its watermark holds
   routing hostage until it finishes), still gated by the source
   shard's backoff. *)
let plan_locked t ~now ~assignment ~replica_host ~pending_abort ~fast_burn =
  let sick_after =
    (* An SLO fast burn halves the hysteresis: the budget is burning
       now, so act on a shorter streak of bad polls. *)
    if fast_burn then max 1 (t.cfg.sick_after / 2) else t.cfg.sick_after
  in
  let n = Array.length t.state in
  let sick i = t.state.(i).sick_polls >= sick_after in
  let eligible i = (not (sick i)) && t.state.(i).ok_polls >= t.cfg.healthy_after in
  let load = Array.make n 0 in
  Array.iter (fun s -> if s >= 0 && s < n then load.(s) <- load.(s) + 1) assignment;
  match pending_abort with
  | Some (slot, from, to_) when now >= t.state.(from).next_try ->
      let via =
        match replica_host slot with
        | Some h when h = to_ -> Promote
        | _ -> Copy
      in
      [ { a_slot = slot; a_from = from; a_to = to_; a_via = via } ]
  | Some _ -> []  (* an aborted migration is backing off: nothing else
                     can start while its record holds the watermark *)
  | None ->
      let actions = ref [] and budget = ref t.cfg.move_budget in
      Array.iteri
        (fun slot owner ->
          if !budget > 0 && sick owner && now >= t.state.(owner).next_try then begin
            let target =
              match replica_host slot with
              | Some h when eligible h -> Some (h, Promote)
              | Some _ | None ->
                  (* least-loaded eligible shard; ties to the lowest id
                     keep the plan deterministic *)
                  let best = ref (-1) in
                  for i = n - 1 downto 0 do
                    if
                      i <> owner && eligible i
                      && (!best < 0 || load.(i) <= load.(!best))
                    then best := i
                  done;
                  if !best < 0 then None else Some (!best, Copy)
            in
            match target with
            | None -> ()
            | Some (to_, via) ->
                decr budget;
                load.(to_) <- load.(to_) + 1;
                load.(owner) <- load.(owner) - 1;
                actions :=
                  { a_slot = slot; a_from = owner; a_to = to_; a_via = via }
                  :: !actions
          end)
        assignment;
      List.rev !actions

let tick t ~now ~health ~assignment ~replica_host ~pending_abort ~fast_burn =
  Mutex.lock t.mu;
  let due = t.last_poll = min_int || now - t.last_poll >= t.cfg.poll_every in
  let actions =
    if not due then []
    else begin
      t.last_poll <- now;
      t.polls <- t.polls + 1;
      observe_locked t ~now health;
      plan_locked t ~now ~assignment ~replica_host ~pending_abort ~fast_burn
    end
  in
  Mutex.unlock t.mu;
  actions

let report t ~now (a : action) ~ok ~moved =
  Mutex.lock t.mu;
  let s = t.state.(a.a_from) in
  if ok then begin
    s.fails <- 0;
    s.next_try <- now;  (* next poll may keep draining this shard *)
    t.healed <- t.healed + 1;
    t.moved <- t.moved + moved;
    note_locked t ~now "heal end slot=%d shard %d -> %d via=%s ok moved=%d"
      a.a_slot a.a_from a.a_to
      (match a.a_via with Copy -> "copy" | Promote -> "promote")
      moved
  end
  else begin
    s.fails <- s.fails + 1;
    let backoff =
      min t.cfg.backoff_max
        (t.cfg.backoff_base * (1 lsl min 16 (s.fails - 1)))
    in
    s.next_try <- now + backoff;
    t.failed <- t.failed + 1;
    note_locked t ~now "heal fail slot=%d shard %d -> %d backoff=%d fails=%d"
      a.a_slot a.a_from a.a_to backoff s.fails
  end;
  Mutex.unlock t.mu

(* Decision -> actuation: execute one planned action against the
   router.  Exceptions from the migration (a copy that kept failing,
   and the router journaled an abort) are converted into a failure
   report — the supervisor backs off and retries; the watermark record
   makes the retry a resume. *)
let execute t router (a : action) =
  let now = Clock.now t.cfg.clock in
  Mutex.lock t.mu;
  t.begun <- t.begun + 1;
  note_locked t ~now "heal begin slot=%d shard %d -> %d via=%s" a.a_slot
    a.a_from a.a_to
    (match a.a_via with Copy -> "copy" | Promote -> "promote");
  Queue.push
    (Heal_begun { e_shard = a.a_from; e_slot = a.a_slot; e_to = a.a_to; e_via = a.a_via })
    t.pending;
  Mutex.unlock t.mu;
  let ok, moved =
    match a.a_via with
    | Promote -> (
        try (true, Router.promote router ~slot:a.a_slot ~key_range:t.cfg.key_range)
        with _ -> (false, 0))
    | Copy -> (
        try
          ( true,
            Router.rebalance router ~slot:a.a_slot ~to_:a.a_to
              ~key_range:t.cfg.key_range )
        with _ -> (false, 0))
  in
  let now = Clock.now t.cfg.clock in
  report t ~now a ~ok ~moved;
  Mutex.lock t.mu;
  Queue.push
    (Heal_ended { e_shard = a.a_from; e_slot = a.a_slot; e_ok = ok; e_moved = moved })
    t.pending;
  Mutex.unlock t.mu;
  ok

let run_tick ?(fast_burn = false) t router =
  let now = Clock.now t.cfg.clock in
  (* The async half of replication rides the supervisor's pace: a
     bounded slice of the journal per tick. *)
  (match Router.replicas router with
  | Some reps -> ignore (Replica.apply ~budget:t.cfg.apply_budget reps)
  | None -> ());
  let health = Health.of_router router in
  let assignment = Hash_ring.assignment (Router.ring router) in
  let replica_host slot =
    match Router.replicas router with
    | None -> None
    | Some reps -> Replica.host reps ~slot
  in
  let pending_abort =
    match Router.migration_status router with
    | Some ms when ms.Router.ms_aborted ->
        Some (ms.Router.ms_slot, ms.Router.ms_from, ms.Router.ms_to)
    | Some _ | None -> None
  in
  let actions =
    tick t ~now ~health ~assignment ~replica_host ~pending_abort ~fast_burn
  in
  List.fold_left
    (fun n a -> if execute t router a then n + 1 else n)
    0 actions

type stats = {
  polls : int;
  heals_begun : int;
  heals_done : int;
  heals_failed : int;
  keys_moved : int;
  sick : int list;  (* shards past the sick threshold right now *)
}

let stats t =
  Mutex.lock t.mu;
  let sick = ref [] in
  Array.iteri
    (fun i s -> if s.sick_polls >= t.cfg.sick_after then sick := i :: !sick)
    t.state;
  let s =
    {
      polls = t.polls;
      heals_begun = t.begun;
      heals_done = t.healed;
      heals_failed = t.failed;
      keys_moved = t.moved;
      sick = List.rev !sick;
    }
  in
  Mutex.unlock t.mu;
  s

let line t =
  let s = stats t in
  Printf.sprintf "HEAL polls=%d begun=%d done=%d failed=%d moved=%d sick=%s"
    s.polls s.heals_begun s.heals_done s.heals_failed s.keys_moved
    (match s.sick with
    | [] -> "-"
    | l -> String.concat "," (List.map string_of_int l))
