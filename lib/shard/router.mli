(** Consistent-hash shard router: N dictionary shards, each behind its
    own [lib/svc] breaker/shed/degrade pipeline, so one hot, stalled or
    faulted shard degrades only its own keyspace.

    - {!call} routes a request by key and runs it through that shard's
      pipeline; everything else is untouched (blast-radius containment,
      EXP-23).
    - Hedged/failover reads: when a {e read} comes back rejected by a
      tripped shard (breaker open, queue full, doomed) or fails in
      execution, the router retries it directly against that shard's
      backend, outside the pipeline.  This is safe precisely because
      the underlying structures' searches are non-blocking and
      side-effect-free — the paper's wait-free search is the failover
      path.  Writes are never hedged.
    - {!call_many} scatter-gathers a multi-key batch across shards and
      returns per-key outcomes in input order — a shard that sheds or
      trips yields per-key rejections, never one collapsed error and
      never a silently dropped key.
    - {!rebalance} migrates one slot's keyspace to another shard under
      load without violating per-key linearizability: a watermark
      splits routing during the handoff, and each key is copied only
      while no operation on that key is in flight (per-key inflight
      accounting under the router mutex).

    The router itself holds no dictionary state: shards arrive as
    backend closures, so any [DICT] over any [Mem.S] works, and
    harnesses can stack fault-injecting memories per shard. *)

module Svc := Lf_svc.Svc

type backend = {
  insert : int -> int -> bool;
  delete : int -> bool;
  find : int -> int option;
  batched : Svc.batched_ops option;
      (** enables the coalesced path in each shard's pipeline *)
}

type t

val create :
  ?hedge_reads:bool ->
  ring:Hash_ring.t ->
  svc_config:(int -> Svc.config) ->
  (int -> backend) ->
  t
(** [create ~ring ~svc_config mk_backend] builds one shard per ring
    slot: shard [i] wraps [mk_backend i] in a pipeline configured by
    [svc_config i].  [hedge_reads] (default [true]) enables the
    failover read path. *)

val attach_replicas : t -> Replica.t -> unit
(** Wire a replica set into the router: successful writes to
    replicated slots are journaled for async apply, and a hedged read
    whose backend is dead (throws, not merely tripped) falls back to
    the slot's replica — always as [Svc.Served_stale (found, lag)],
    never a silent fresh answer.  The staleness contract: replica data
    is explicitly lag-tagged end to end. *)

val replicas : t -> Replica.t option

val ring : t -> Hash_ring.t
val shard_count : t -> int

val clock : t -> Lf_svc.Clock.t
(** Shard 0's pipeline clock — the tick base for spans, journal lines
    and replica lag. *)

val route : t -> int -> int
(** The shard a key's operations go to right now — assignment plus the
    migration watermark while a rebalance is running. *)

val call :
  t ->
  ?ctx:Lf_obs.Span.ctx ->
  ?deadline:Lf_svc.Deadline.t ->
  ?queue_depth:int ->
  Svc.req ->
  Svc.outcome
(** Route by key, run through that shard's pipeline, hedging rejected
    or failed reads when enabled.  [ctx] (default {!Lf_obs.Span.nil})
    is the request's trace context: when active, the router opens one
    fan-out span per shard touched ([shard<i>]) with the pipeline's
    decision spans nested inside, plus a [hedge] span (with its
    outcome event) when the failover path runs. *)

val call_many :
  t ->
  ?ctx:Lf_obs.Span.ctx ->
  ?deadline:Lf_svc.Deadline.t ->
  ?queue_depth:int ->
  Svc.req list ->
  Svc.outcome list
(** Scatter-gather: split by owning shard, run each sub-batch through
    its shard's {!Svc.call_many} (per-element admission, batched
    execution when available), gather per-key outcomes back into input
    order.  The result has exactly one outcome per request. *)

val rebalance : t -> slot:int -> to_:int -> key_range:int -> int
(** [rebalance t ~slot ~to_ ~key_range] hands [slot]'s keyspace to
    shard [to_], migrating every key in [[0, key_range)] that hashes to
    the slot.  Keys are copied one at a time under the router mutex,
    each only once its in-flight count drains, and the watermark routes
    every key to exactly one owner at every instant — operations racing
    the handoff stay linearizable per key.  Copies run on the caller's
    lane through the raw backends (control plane: they bypass the
    pipelines, so a tripped breaker cannot strand keys).  Returns the
    number of keys moved.  When tracing is on, the migration runs under
    its own [rebalance] root span with a [drain] child span (carrying
    the key) for every key that had to wait for in-flight operations.

    A copy that keeps failing (four attempts) {e aborts} the migration:
    the exception propagates, a terminal [abort] line lands in the
    journal (so stuck is distinguishable from done), and the watermark
    record is {e kept} — keys below it already live on [to_] and stay
    routed there.  Calling [rebalance] (or [promote]) again with the
    same [slot] and target resumes the scan from the watermark; a
    different slot or target while the aborted record stands is an
    error.
    @raise Invalid_argument if a migration is already running (and not
    resumable by these arguments), or on out-of-range arguments. *)

val promote : t -> slot:int -> key_range:int -> int
(** [promote t ~slot ~key_range] makes [slot]'s replica authoritative
    on its host shard: drains the replica's apply journal (the
    promotion barrier), then migrates the slot to the host with the
    same watermark/drain machinery as {!rebalance} — except the value
    copied comes from the primary when it still answers (an
    alive-but-sick primary is fresher than any replica) and from the
    replica copy when the primary throws, and the source delete is
    best-effort (a dead primary cannot honour it).  On completion the
    slot's replica is retired.  Returns keys moved.  This is how the
    supervisor evacuates a {e dead} shard, which [rebalance] alone
    cannot (its copy would need the corpse to answer reads).
    @raise Invalid_argument without replicas, if the slot is not
    replicated, or if a non-resumable migration is running. *)

val stats : t -> Svc.stats array
(** Per-shard pipeline stats, index = shard id. *)

val shard_svc : t -> int -> Svc.t

val hedged : t -> int array
(** Per-shard count of reads served (or attempted) via the failover
    path. *)

val hedge_stats : t -> (int * int) array
(** Per-shard [(attempts, wins)] for the failover read path: attempts
    counts every hedge issued, wins those that served the read (the
    backend answered, found or not). *)

val migrated_keys : t -> int
(** Total keys moved by completed rebalances. *)

val rebalances : t -> int

val drained_keys : t -> int
(** Keys whose migration had to wait for in-flight operations to
    drain, across all completed rebalances. *)

val aborts : t -> int
(** Migrations that died mid-drain and journaled an [abort] record. *)

val promotions : t -> int
(** Replica promotions completed. *)

val stale_reads : t -> int
(** Reads served from a replica — every one of them returned as
    [Svc.Served_stale]; this counter equalling the wire's stale-token
    count is the no-silent-staleness oracle. *)

type migration_status = {
  ms_slot : int;
  ms_from : int;
  ms_to : int;
  ms_watermark : int;
  ms_aborted : bool;  (** terminal-abort record awaiting a resume *)
}

val migration_status : t -> migration_status option
(** The in-flight (or aborted-and-resumable) migration, if any — how
    the supervisor distinguishes idle from running from stuck. *)

val slots_of_shard : t -> int array
(** Slots currently assigned per shard (an in-flight migration counts
    for its destination).  A shard at [0] is fully evacuated. *)

val journal : unit -> string list
(** The router's process-wide decision journal (rebalance begin/end
    lines), oldest first, bounded.  Every entry is stamped
    [#<seq> t=<tick>] — a process-wide monotonic sequence number plus
    the router clock's tick — so journal lines join against span dumps.
    Deliberately module-level — see the [no-cross-shard-state] lint
    waiver. *)
