(* Lagged read replicas for designated slots.  One mutex guards every
   replica's journal and counters — the same synchronization shape as
   the router: short critical sections around bookkeeping, never a lock
   held across a store operation... except [apply]/[drain], which copy
   into the replica's own store.  That store is private to this module
   (it is never a shard backend), so holding the mutex across the copy
   serializes appliers without blocking the data plane.

   The staleness contract lives here: a replica read reports how far
   the copy trails the primary as [lag = now - oldest pending entry's
   record tick] (0 when the journal is drained).  Readers must surface
   that lag explicitly — the router turns it into [Served_stale], never
   a bare [Served]. *)

type store = {
  r_insert : int -> int -> bool;
  r_delete : int -> bool;
  r_find : int -> int option;
}

type op = Put of int * int | Del of int

type entry = { e_tick : int; e_op : op }

type slot_rep = {
  sr_slot : int;
  sr_on : int;  (* shard hosting the copy: the promotion target *)
  sr_store : store;
  sr_journal : entry Queue.t;
  mutable sr_recorded : int;
  mutable sr_applied : int;
}

type t = {
  mu : Mutex.t;
  slots : (int, slot_rep) Hashtbl.t;
  mutable reads : int;  (* failover reads answered (all stale-tagged) *)
}

let create () = { mu = Mutex.create (); slots = Hashtbl.create 8; reads = 0 }

let add_slot t ~slot ~on ~store =
  Mutex.lock t.mu;
  if Hashtbl.mem t.slots slot then begin
    Mutex.unlock t.mu;
    invalid_arg "Replica.add_slot: slot already replicated"
  end;
  Hashtbl.replace t.slots slot
    {
      sr_slot = slot;
      sr_on = on;
      sr_store = store;
      sr_journal = Queue.create ();
      sr_recorded = 0;
      sr_applied = 0;
    };
  Mutex.unlock t.mu

let host t ~slot =
  Mutex.lock t.mu;
  let h = Option.map (fun sr -> sr.sr_on) (Hashtbl.find_opt t.slots slot) in
  Mutex.unlock t.mu;
  h

let replicated t ~slot = host t ~slot <> None

let record t ~slot ~now op =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.slots slot with
  | None -> ()
  | Some sr ->
      Queue.push { e_tick = now; e_op = op } sr.sr_journal;
      sr.sr_recorded <- sr.sr_recorded + 1);
  Mutex.unlock t.mu

(* Applying an entry re-runs the write against the copy; both ops are
   idempotent, so a crash between apply and the counter bump costs
   nothing on replay. *)
let apply_entry sr e =
  (match e.e_op with
  | Put (k, v) -> ignore (sr.sr_store.r_insert k v)
  | Del k -> ignore (sr.sr_store.r_delete k));
  sr.sr_applied <- sr.sr_applied + 1

let apply ?(budget = max_int) t =
  Mutex.lock t.mu;
  let applied = ref 0 in
  Hashtbl.iter
    (fun _ sr ->
      while !applied < budget && not (Queue.is_empty sr.sr_journal) do
        apply_entry sr (Queue.pop sr.sr_journal);
        incr applied
      done)
    t.slots;
  Mutex.unlock t.mu;
  !applied

let drain t ~slot =
  Mutex.lock t.mu;
  let applied = ref 0 in
  (match Hashtbl.find_opt t.slots slot with
  | None -> ()
  | Some sr ->
      while not (Queue.is_empty sr.sr_journal) do
        apply_entry sr (Queue.pop sr.sr_journal);
        incr applied
      done);
  Mutex.unlock t.mu;
  !applied

let lag_locked sr ~now =
  match Queue.peek_opt sr.sr_journal with
  | None -> 0
  | Some e -> max 0 (now - e.e_tick)

let read t ~slot ~key ~now =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.slots slot with
  | None ->
      Mutex.unlock t.mu;
      None
  | Some sr ->
      t.reads <- t.reads + 1;
      let lag = lag_locked sr ~now in
      (* The store read runs under the mutex so it cannot race an
         applier past the lag we just computed: the value served is at
         most [lag] ticks behind the primary's journal. *)
      let v = sr.sr_store.r_find key in
      Mutex.unlock t.mu;
      Some (v, lag)

(* A control-plane read of the copy (promotion), not a failover serve:
   it bypasses the read counter and reports no lag. *)
let peek t ~slot ~key =
  Mutex.lock t.mu;
  let v =
    match Hashtbl.find_opt t.slots slot with
    | None -> None
    | Some sr -> sr.sr_store.r_find key
  in
  Mutex.unlock t.mu;
  v

let remove_slot t ~slot =
  Mutex.lock t.mu;
  Hashtbl.remove t.slots slot;
  Mutex.unlock t.mu

type slot_stats = {
  s_slot : int;
  s_on : int;
  s_pending : int;
  s_applied : int;
  s_lag : int;
}

let stats t ~now =
  Mutex.lock t.mu;
  let out =
    Hashtbl.fold
      (fun _ sr acc ->
        {
          s_slot = sr.sr_slot;
          s_on = sr.sr_on;
          s_pending = Queue.length sr.sr_journal;
          s_applied = sr.sr_applied;
          s_lag = lag_locked sr ~now;
        }
        :: acc)
      t.slots []
  in
  Mutex.unlock t.mu;
  List.sort (fun a b -> Int.compare a.s_slot b.s_slot) out

let reads t =
  Mutex.lock t.mu;
  let n = t.reads in
  Mutex.unlock t.mu;
  n
