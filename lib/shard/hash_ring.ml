(* Seeded consistent-hash ring: shards * vnodes points, each point a
   SplitMix hash of (seed, slot, vnode); a key routes to the slot owning
   the first point at or after the key's own hash, wrapping at the top.

   Both hashes come from throwaway SplitMix streams (the repo's one
   source of randomness), salted differently so key positions are not
   correlated with point positions. *)

type t = {
  seed : int;
  slots : int;
  vnodes : int;
  points : int array;  (* ring positions, sorted ascending *)
  owners : int array;  (* owners.(i) = slot owning points.(i) *)
  assignment : int array;  (* slot -> shard *)
}

let point_salt = 0x7ee3a2d1
let key_salt = 0x1c64e6d5

let hash ~salt ~seed v =
  Lf_kernel.Splitmix.bits
    (Lf_kernel.Splitmix.create (salt lxor (seed * 0x01000193) lxor (v * 0x5bd1)))

let create ?(vnodes = 64) ~seed ~shards () =
  if shards < 1 then invalid_arg "Hash_ring.create: shards must be >= 1";
  if vnodes < 1 then invalid_arg "Hash_ring.create: vnodes must be >= 1";
  let n = shards * vnodes in
  let pts =
    Array.init n (fun i ->
        let slot = i / vnodes and v = i mod vnodes in
        (hash ~salt:point_salt ~seed ((slot * 1_000_003) + v), slot))
  in
  Array.sort compare pts;
  {
    seed;
    slots = shards;
    vnodes;
    points = Array.map fst pts;
    owners = Array.map snd pts;
    assignment = Array.init shards (fun i -> i);
  }

let shards t = t.slots
let seed t = t.seed

let slot_of t k =
  let h = hash ~salt:key_salt ~seed:t.seed k in
  let n = Array.length t.points in
  (* First point with position >= h, else wrap to points.(0). *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  t.owners.(if !lo = n then 0 else !lo)

let owner t slot =
  if slot < 0 || slot >= t.slots then invalid_arg "Hash_ring.owner: bad slot";
  t.assignment.(slot)

let shard_of t k = t.assignment.(slot_of t k)
let assignment t = Array.copy t.assignment

let reassign t ~slot ~to_ =
  if slot < 0 || slot >= t.slots then
    invalid_arg "Hash_ring.reassign: bad slot";
  if to_ < 0 || to_ >= t.slots then
    invalid_arg "Hash_ring.reassign: bad shard";
  let assignment = Array.copy t.assignment in
  assignment.(slot) <- to_;
  { t with assignment }
