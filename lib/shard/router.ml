(* The shard router.  Synchronization model: one mutex guards routing
   state (ring, migration watermark, per-key inflight counts) and the
   small counters; dictionary operations themselves run OUTSIDE the
   mutex, through each shard's own Svc pipeline, so the router adds two
   short critical sections per call (route-and-mark, unmark), never a
   lock around the work.

   Per-key linearizability across a handoff hangs on one invariant:
   at every instant each key has exactly one owner (assignment, or the
   watermark split while a migration runs), and a key is only copied
   while (a) the router mutex is held — no operation can acquire an
   owner for it — and (b) its in-flight count is zero — no operation
   that already acquired an owner is still running.  So the copy is
   atomic with respect to that key's operations, and the ownership flip
   happens inside the same critical section that performed the copy. *)

module Svc = Lf_svc.Svc
module Span = Lf_obs.Span

type backend = {
  insert : int -> int -> bool;
  delete : int -> bool;
  find : int -> int option;
  batched : Svc.batched_ops option;
}

type shard = {
  id : int;
  svc : Svc.t;
  backend : backend;
  mutable hedged : int;  (* hedge attempts; guarded by the router mutex *)
  mutable hedge_wins : int;  (* of which served the read; same guard *)
}

type migration = {
  m_slot : int;
  m_from : int;
  m_to : int;
  mutable m_watermark : int;
      (* keys below this (in the slot) already live on [m_to] *)
  mutable m_aborted : bool;
      (* the copy loop died mid-drain: keys below the watermark are on
         [m_to], the rest still on [m_from].  The record stays — the
         watermark keeps routing correct (no key is ever owned by a
         shard that no longer holds it) — until a retry with the same
         slot and target resumes from the watermark. *)
}

(* The router's decision journal: rebalance begin/end lines for
   post-mortems, process-wide by design (one timeline even when a test
   builds several routers).  It carries no routing state — routing is
   a pure function of ring + migration — and is the one deliberate
   exception to the no-cross-shard-state lint (see its waiver). *)
let journal_log : string list ref = ref []

let journal_limit = 64

(* Every entry is stamped [#<seq> t=<tick>]: the sequence number is
   process-wide and monotonic, the tick is the owning router's clock, so
   journal lines join against span dumps during incident
   reconstruction. *)
let journal_seq = ref 0

let note ~now fmt =
  Printf.ksprintf
    (fun line ->
      incr journal_seq;
      let line = Printf.sprintf "#%d t=%d %s" !journal_seq now line in
      let keep = journal_limit - 1 in
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      journal_log := line :: take keep !journal_log)
    fmt

let journal () = List.rev !journal_log

type t = {
  mutable ring : Hash_ring.t;
  shards : shard array;
  names : string array;  (* fan-out span names, precomputed per shard *)
  clock : Lf_svc.Clock.t;  (* shard 0's pipeline clock: span/journal ticks *)
  hedge_reads : bool;
  mu : Mutex.t;
  drained : Condition.t;  (* signalled when a key's inflight count drains *)
  inflight : (int, int) Hashtbl.t;
  mutable migration : migration option;
  mutable migrated : int;
  mutable rebalanced : int;
  mutable drained_keys : int;  (* rebalance keys that had to wait *)
  mutable aborts : int;  (* migrations that died mid-drain *)
  mutable promotions : int;  (* replica promotions completed *)
  mutable replicas : Replica.t option;
  mutable stale_reads : int;  (* reads served from a replica, stale-tagged *)
}

let ops_of_backend (b : backend) : Svc.ops =
  {
    Svc.insert = b.insert;
    delete = b.delete;
    find = (fun k -> b.find k <> None);
  }

let create ?(hedge_reads = true) ~ring ~svc_config mk_backend =
  let shards =
    Array.init (Hash_ring.shards ring) (fun i ->
        let backend = mk_backend i in
        let svc =
          Svc.create ?batched:backend.batched (svc_config i)
            (ops_of_backend backend)
        in
        { id = i; svc; backend; hedged = 0; hedge_wins = 0 })
  in
  {
    ring;
    shards;
    names = Array.init (Array.length shards) (Printf.sprintf "shard%d");
    clock = Svc.clock shards.(0).svc;
    hedge_reads;
    mu = Mutex.create ();
    drained = Condition.create ();
    inflight = Hashtbl.create 64;
    migration = None;
    migrated = 0;
    rebalanced = 0;
    drained_keys = 0;
    aborts = 0;
    promotions = 0;
    replicas = None;
    stale_reads = 0;
  }

let attach_replicas t reps = t.replicas <- Some reps
let replicas t = t.replicas

let ring t = t.ring
let shard_count t = Array.length t.shards
let clock t = t.clock

let owner_locked t k =
  let slot = Hash_ring.slot_of t.ring k in
  match t.migration with
  | Some m when m.m_slot = slot -> if k < m.m_watermark then m.m_to else m.m_from
  | _ -> Hash_ring.owner t.ring slot

let route t k =
  Mutex.lock t.mu;
  let s = owner_locked t k in
  Mutex.unlock t.mu;
  s

(* Acquire an owner for [k] and mark it in flight, atomically w.r.t.
   any migration. *)
let begin_op t k =
  Mutex.lock t.mu;
  let s = owner_locked t k in
  Hashtbl.replace t.inflight k
    (1 + Option.value (Hashtbl.find_opt t.inflight k) ~default:0);
  Mutex.unlock t.mu;
  s

let end_op t k =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.inflight k with
  | Some 1 -> Hashtbl.remove t.inflight k
  | Some n -> Hashtbl.replace t.inflight k (n - 1)
  | None -> ());
  if t.migration <> None then Condition.broadcast t.drained;
  Mutex.unlock t.mu

let key_of = function Svc.Insert (k, _) -> k | Svc.Delete k -> k | Svc.Find k -> k
let is_read = function Svc.Find _ -> true | Svc.Insert _ | Svc.Delete _ -> false

(* Rejections worth failing over: the shard refused service (tripped
   breaker, full queue, infeasible deadline estimate), not the request
   itself.  An [Expired] request is dead wherever it runs. *)
let hedgeable = function
  | Svc.Breaker_open | Svc.Queue_full | Svc.Doomed -> true
  | Svc.Expired | Svc.Write_degraded -> false

(* The router's span tick, read only when a context is live so the
   untraced path never touches the clock. *)
let now_of t ctx = if Span.active ctx then Lf_svc.Clock.now t.clock else 0

(* Failover read straight at the backend, outside the pipeline: safe
   because searches in the underlying structures are non-blocking and
   write nothing a helper could not have written.  When the backend
   itself throws (the shard is dead, not merely tripped) and the key's
   slot is replicated, the read falls back to the lagged copy — always
   as [Served_stale], the staleness contract: a replica answer is never
   laundered into a fresh [Served].  Best effort — with no replica the
   original outcome stands. *)
let hedge t ~ctx sh k original =
  Mutex.lock t.mu;
  sh.hedged <- sh.hedged + 1;
  Mutex.unlock t.mu;
  let hspan = Span.begin_ ctx ~name:"hedge" ~now:(now_of t ctx) in
  let finish outcome ~won what =
    if Span.active hspan then
      Span.event hspan ~now:(now_of t hspan) (Span.Hedge_outcome what);
    Span.end_ hspan ~now:(now_of t hspan) ~ok:won;
    if won then begin
      Mutex.lock t.mu;
      sh.hedge_wins <- sh.hedge_wins + 1;
      Mutex.unlock t.mu
    end;
    outcome
  in
  let replica_fallback () =
    match t.replicas with
    | None -> finish original ~won:false "error"
    | Some reps -> (
        let slot = Hash_ring.slot_of t.ring k in
        match Replica.read reps ~slot ~key:k ~now:(Lf_svc.Clock.now t.clock) with
        | None -> finish original ~won:false "error"
        | Some (v, lag) ->
            Mutex.lock t.mu;
            t.stale_reads <- t.stale_reads + 1;
            Mutex.unlock t.mu;
            finish (Svc.Served_stale (v <> None, lag)) ~won:true "stale")
  in
  match sh.backend.find k with
  | Some _ -> finish (Svc.Served true) ~won:true "served"
  | None -> finish (Svc.Served false) ~won:true "served"
  | exception _ -> replica_fallback ()

let maybe_hedge t ~ctx sh req outcome =
  if not (t.hedge_reads && is_read req) then outcome
  else
    match outcome with
    | Svc.Rejected r when hedgeable r -> hedge t ~ctx sh (key_of req) outcome
    | Svc.Failed _ -> hedge t ~ctx sh (key_of req) outcome
    | o -> o

let outcome_ok = function
  | Svc.Served _ | Svc.Served_stale _ -> true
  | Svc.Rejected _ | Svc.Failed _ -> false

(* Feed the replica journal from successful primary writes.  Only a
   [Served] write is recorded: a rejected or failed write took no
   effect the replica should mirror (crash-semantics writes may have —
   the same uncertainty the primary itself carries). *)
let record_write t req out =
  match t.replicas with
  | None -> ()
  | Some reps -> (
      match (req, out) with
      | Svc.Insert (k, v), Svc.Served _ ->
          Replica.record reps
            ~slot:(Hash_ring.slot_of t.ring k)
            ~now:(Lf_svc.Clock.now t.clock)
            (Replica.Put (k, v))
      | Svc.Delete k, Svc.Served _ ->
          Replica.record reps
            ~slot:(Hash_ring.slot_of t.ring k)
            ~now:(Lf_svc.Clock.now t.clock)
            (Replica.Del k)
      | _ -> ())

let call t ?(ctx = Span.nil) ?deadline ?queue_depth req =
  let k = key_of req in
  let s = begin_op t k in
  Fun.protect ~finally:(fun () -> end_op t k) @@ fun () ->
  let sh = t.shards.(s) in
  (* One fan-out span per shard touched, the shard's pipeline spans
     nested inside it. *)
  let fspan = Span.begin_ ctx ~name:t.names.(s) ~now:(now_of t ctx) in
  let out =
    maybe_hedge t ~ctx:fspan sh req
      (Svc.call sh.svc ~ctx:fspan ?deadline ?queue_depth req)
  in
  record_write t req out;
  Span.end_ fspan ~now:(now_of t fspan) ~ok:(outcome_ok out);
  out

let call_many t ?(ctx = Span.nil) ?deadline ?queue_depth reqs =
  match reqs with
  | [] -> []
  | _ ->
      let reqs = Array.of_list reqs in
      let n = Array.length reqs in
      let owners = Array.map (fun r -> begin_op t (key_of r)) reqs in
      Fun.protect
        ~finally:(fun () -> Array.iter (fun r -> end_op t (key_of r)) reqs)
      @@ fun () ->
      let out = Array.make n (Svc.Rejected Svc.Expired) in
      Array.iteri
        (fun s sh ->
          let idx = ref [] in
          for i = n - 1 downto 0 do
            if owners.(i) = s then idx := i :: !idx
          done;
          match !idx with
          | [] -> ()
          | idx ->
              let sub = List.map (fun i -> reqs.(i)) idx in
              let fspan = Span.begin_ ctx ~name:t.names.(s) ~now:(now_of t ctx) in
              let res = Svc.call_many sh.svc ~ctx:fspan ?deadline ?queue_depth sub in
              List.iter2
                (fun i o ->
                  let o = maybe_hedge t ~ctx:fspan sh reqs.(i) o in
                  record_write t reqs.(i) o;
                  out.(i) <- o)
                idx res;
              Span.end_ fspan ~now:(now_of t fspan) ~ok:true)
        t.shards;
      Array.to_list out

(* The migration engine behind [rebalance] and [promote]: set up (or
   resume) the watermark record, walk the keyspace with a per-key
   inflight drain, move each key via [copy_key] (called with the mutex
   held and the key's inflight count zero; returns whether a key
   moved), flip ownership at the end.  A copy that keeps failing after
   bounded retries *aborts* the migration: a terminal journal line is
   written and the record is kept with [m_aborted] set — the watermark
   keeps routing correct, so no key is ever owned by a shard that no
   longer holds it — and a retry with the same slot and target resumes
   the scan from the watermark (keys below it already moved; the copy
   is idempotent, so re-running the boundary key is a no-op). *)
let migrate t ~label ~slot ~to_ ~key_range ~copy_key =
  let n = Array.length t.shards in
  if slot < 0 || slot >= Hash_ring.shards t.ring then
    invalid_arg (Printf.sprintf "Router.%s: bad slot" label);
  if to_ < 0 || to_ >= n then
    invalid_arg (Printf.sprintf "Router.%s: bad shard" label);
  if key_range < 0 then invalid_arg (Printf.sprintf "Router.%s: bad key_range" label);
  Mutex.lock t.mu;
  let m =
    match t.migration with
    | Some m when m.m_aborted && m.m_slot = slot && m.m_to = to_ ->
        m.m_aborted <- false;
        note ~now:(Lf_svc.Clock.now t.clock)
          "%s slot=%d shard %d -> %d resume watermark=%d" label slot m.m_from
          to_ m.m_watermark;
        Some m
    | Some _ ->
        Mutex.unlock t.mu;
        invalid_arg
          (Printf.sprintf "Router.%s: a migration is already running" label)
    | None ->
        let from = Hash_ring.owner t.ring slot in
        if from = to_ then None
        else begin
          let m =
            {
              m_slot = slot;
              m_from = from;
              m_to = to_;
              m_watermark = min_int;
              m_aborted = false;
            }
          in
          t.migration <- Some m;
          note ~now:(Lf_svc.Clock.now t.clock) "%s slot=%d shard %d -> %d begin"
            label slot from to_;
          Some m
        end
  in
  match m with
  | None ->
      Mutex.unlock t.mu;
      0
  | Some m ->
      let from = m.m_from in
      Mutex.unlock t.mu;
      (* The drain phases of a migration are traced under their own
         root: when a migration stalls a request, the flight recorder
         shows a concurrent rebalance/promote tree with a drain span on
         the same key. *)
      let rctx = Span.root ~name:label ~now:(Lf_svc.Clock.now t.clock) in
      let ok = ref false in
      Fun.protect
        ~finally:(fun () ->
          Span.end_ rctx ~now:(Lf_svc.Clock.now t.clock) ~ok:!ok)
      @@ fun () ->
      let moved = ref 0 in
      for k = max 0 m.m_watermark to key_range - 1 do
        if Hash_ring.slot_of t.ring k = slot then begin
          Mutex.lock t.mu;
          if Hashtbl.mem t.inflight k then begin
            t.drained_keys <- t.drained_keys + 1;
            let dspan =
              Span.begin_ rctx ~name:"drain" ~now:(Lf_svc.Clock.now t.clock)
            in
            if Span.active dspan then
              Span.event dspan
                ~now:(Lf_svc.Clock.now t.clock)
                (Span.Drain_wait k);
            while Hashtbl.mem t.inflight k do
              Condition.wait t.drained t.mu
            done;
            Span.end_ dspan ~now:(Lf_svc.Clock.now t.clock) ~ok:true
          end;
          (* Inflight is zero and the mutex is held: no operation on [k]
             can start or be running, so copy-then-advance is atomic for
             this key.  Bounded retries absorb transient backend faults;
             the copy converges because re-running it is idempotent
             (insert of a present key is a no-op). *)
          let rec copy attempts =
            try if copy_key k then incr moved
            with e ->
              if attempts >= 3 then begin
                m.m_aborted <- true;
                t.aborts <- t.aborts + 1;
                note ~now:(Lf_svc.Clock.now t.clock)
                  "%s slot=%d shard %d -> %d abort moved=%d watermark=%d"
                  label slot from to_ !moved m.m_watermark;
                Condition.broadcast t.drained;
                Mutex.unlock t.mu;
                raise e
              end
              else copy (attempts + 1)
          in
          copy 0;
          m.m_watermark <- k + 1;
          Mutex.unlock t.mu
        end
      done;
      Mutex.lock t.mu;
      t.ring <- Hash_ring.reassign t.ring ~slot ~to_;
      t.migration <- None;
      t.migrated <- t.migrated + !moved;
      t.rebalanced <- t.rebalanced + 1;
      note ~now:(Lf_svc.Clock.now t.clock)
        "%s slot=%d shard %d -> %d end moved=%d" label slot from to_ !moved;
      Condition.broadcast t.drained;
      Mutex.unlock t.mu;
      ok := true;
      !moved

let rebalance t ~slot ~to_ ~key_range =
  let copy_key k =
    (* [from] is fixed for the migration's lifetime; reading the owner
       per key would chase the post-flip assignment. *)
    let src =
      match t.migration with
      | Some m -> t.shards.(m.m_from).backend
      | None -> assert false
    in
    let dst = t.shards.(to_).backend in
    match src.find k with
    | None -> false
    | Some v ->
        ignore (dst.insert k v);
        ignore (src.delete k);
        true
  in
  migrate t ~label:"rebalance" ~slot ~to_ ~key_range ~copy_key

(* Promote a slot's replica: make the copy authoritative on its host
   shard.  Unlike [rebalance], the source of truth is the replica store
   when the primary is dead — the primary is still consulted first,
   per key, because an alive-but-sick primary may hold writes newer
   than the drained journal; only when it throws does the copy answer.
   The source delete is best-effort (a dead primary cannot honour it;
   whatever it still holds is unreachable once ownership flips). *)
let promote t ~slot ~key_range =
  match t.replicas with
  | None -> invalid_arg "Router.promote: no replicas attached"
  | Some reps -> (
      match Replica.host reps ~slot with
      | None -> invalid_arg "Router.promote: slot not replicated"
      | Some to_ ->
          (* Promotion barrier: the copy reflects every recorded write
             before any of it becomes authoritative. *)
          ignore (Replica.drain reps ~slot);
          let copy_key k =
            let src =
              match t.migration with
              | Some m -> t.shards.(m.m_from).backend
              | None -> assert false
            in
            let dst = t.shards.(to_).backend in
            let v =
              match src.find k with
              | v -> v
              | exception _ -> Replica.peek reps ~slot ~key:k
            in
            match v with
            | None -> false
            | Some v ->
                ignore (dst.insert k v);
                (try ignore (src.delete k) with _ -> ());
                true
          in
          let moved = migrate t ~label:"promote" ~slot ~to_ ~key_range ~copy_key in
          Replica.remove_slot reps ~slot;
          Mutex.lock t.mu;
          t.promotions <- t.promotions + 1;
          Mutex.unlock t.mu;
          moved)

let stats t = Array.map (fun sh -> Svc.stats sh.svc) t.shards
let shard_svc t i = t.shards.(i).svc

let hedged t =
  Mutex.lock t.mu;
  let a = Array.map (fun sh -> sh.hedged) t.shards in
  Mutex.unlock t.mu;
  a

let hedge_stats t =
  Mutex.lock t.mu;
  let a = Array.map (fun sh -> (sh.hedged, sh.hedge_wins)) t.shards in
  Mutex.unlock t.mu;
  a

let migrated_keys t = t.migrated
let rebalances t = t.rebalanced

let drained_keys t =
  Mutex.lock t.mu;
  let n = t.drained_keys in
  Mutex.unlock t.mu;
  n

let aborts t =
  Mutex.lock t.mu;
  let n = t.aborts in
  Mutex.unlock t.mu;
  n

let promotions t =
  Mutex.lock t.mu;
  let n = t.promotions in
  Mutex.unlock t.mu;
  n

let stale_reads t =
  Mutex.lock t.mu;
  let n = t.stale_reads in
  Mutex.unlock t.mu;
  n

type migration_status = {
  ms_slot : int;
  ms_from : int;
  ms_to : int;
  ms_watermark : int;
  ms_aborted : bool;
}

let migration_status t =
  Mutex.lock t.mu;
  let s =
    Option.map
      (fun m ->
        {
          ms_slot = m.m_slot;
          ms_from = m.m_from;
          ms_to = m.m_to;
          ms_watermark = m.m_watermark;
          ms_aborted = m.m_aborted;
        })
      t.migration
  in
  Mutex.unlock t.mu;
  s

(* Slot ownership as the supervisor sees it: the assignment, with the
   in-flight migration's destination substituted so a healing move is
   not planned twice. *)
let slots_of_shard t =
  Mutex.lock t.mu;
  let assignment = Hash_ring.assignment t.ring in
  (match t.migration with
  | Some m when not m.m_aborted -> assignment.(m.m_slot) <- m.m_to
  | _ -> ());
  Mutex.unlock t.mu;
  let counts = Array.make (Array.length t.shards) 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) assignment;
  counts
