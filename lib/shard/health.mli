(** Per-shard health accounting: one status per shard derived from its
    pipeline's stats, a one-line rendering for the wire protocol's
    HEALTH verb, and Prometheus metric blocks with a [shard] label. *)

type shard_health = {
  h_id : int;
  h_ok : bool;  (** breaker absent or closed *)
  h_breaker : string;  (** "none" when the shard has no breaker *)
  h_mode : string;
  h_calls : int;
  h_served : int;
  h_failed : int;
  h_rejected : int;
  h_hedged : int;  (** hedge attempts via the failover read path *)
  h_hedge_wins : int;  (** of which the backend served the read *)
}

val of_router : Router.t -> shard_health list
(** One entry per shard, in shard order. *)

val line : Router.t -> string
(** One line: overall status ([ok] iff every shard is ok), shard count,
    keys migrated, then [s<i>=ok(closed)] / [s<i>=degraded(open)] and
    aggregate counters per shard ([hedged=<wins>/<attempts>]) — stable
    order, greppable. *)

val metrics : Router.t -> Lf_obs.Prom.metric list
(** [lf_shard_*] counter/gauge blocks labelled [shard="<i>"]: calls,
    served, failed, rejected (by reason), hedged reads (attempts and
    wins), a degraded 0/1 gauge, and the router's migrated-key,
    rebalance, and drained-key totals.  Renders through
    {!Lf_obs.Prom.render_metrics}; the concatenation with
    {!Lf_obs.Prom.snapshot} passes {!Lf_obs.Prom.validate}. *)

val open_breakers : Router.t -> int list
(** Ids of shards whose breaker is currently not closed, ascending —
    the flight recorder's breaker-open anomaly trigger diffs this
    between polls. *)
