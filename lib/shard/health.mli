(** Per-shard health accounting: one status per shard derived from its
    pipeline's stats, a one-line rendering for the wire protocol's
    HEALTH verb, and Prometheus metric blocks with a [shard] label. *)

type shard_health = {
  h_id : int;
  h_ok : bool;  (** breaker absent or closed *)
  h_breaker : string;  (** "none" when the shard has no breaker *)
  h_mode : string;
  h_slots : int;  (** slots currently assigned; 0 = evacuated *)
  h_calls : int;
  h_served : int;
  h_failed : int;
  h_rejected : int;
  h_hedged : int;  (** hedge attempts via the failover read path *)
  h_hedge_wins : int;  (** of which the backend served the read *)
}

val of_router : Router.t -> shard_health list
(** One entry per shard, in shard order. *)

val line : Router.t -> string
(** One line: overall status, shard count, keys migrated, then
    [s<i>=ok(closed)] / [s<i>=degraded(open)] / [s<i>=evacuated(open)]
    and aggregate counters per shard ([hedged=<wins>/<attempts>]) —
    stable order, greppable.  Overall is [ok] iff every shard that
    still owns slots is ok: a sick shard the supervisor has fully
    evacuated no longer degrades the service. *)

val metrics : Router.t -> Lf_obs.Prom.metric list
(** [lf_shard_*] counter/gauge blocks labelled [shard="<i>"]: calls,
    served, failed, rejected (by reason), hedged reads (attempts and
    wins), a degraded 0/1 gauge, slot assignment, and the router's
    migrated-key, rebalance, drained-key, abort, promotion and
    stale-read totals.  When a replica set is attached, also
    [lf_shard_replica_*] (lag, pending, applied) labelled
    [slot="<s>",on="<shard>"].  Renders through
    {!Lf_obs.Prom.render_metrics}; the concatenation with
    {!Lf_obs.Prom.snapshot} passes {!Lf_obs.Prom.validate}. *)

val open_breakers : Router.t -> int list
(** Ids of shards whose breaker is currently not closed, ascending —
    the flight recorder's breaker-open anomaly trigger diffs this
    between polls. *)

type monitor
(** A cached open-breaker snapshot for the anomaly trigger: the diff
    and the cache live together, so two observers (a KILL handler and
    the per-request check) cannot each fire a bundle for the same
    breaker opening. *)

val monitor : unit -> monitor

val newly_open : monitor -> Router.t -> int list
(** Shards whose breaker is open now but was not in the cached
    snapshot; updates the cache.  Each opening is reported exactly
    once until the breaker closes again. *)

val mark_open : monitor -> int -> unit
(** Pre-mark a shard as known-open without observing it — the KILL
    handler calls this after dumping its own bundle, so the victim's
    inevitable breaker trip is not double-fired as a fresh
    breaker-open anomaly. *)
