(** Seeded consistent-hash ring over a fixed set of shard slots.

    The ring is a pure value: [slot_of] is a function of
    [(key, slots, seed)] only — the router-determinism property the
    tests pin down.  Each slot owns [vnodes] points on the ring, so
    slot keyspaces interleave finely instead of forming [slots]
    contiguous arcs.

    Ownership is indirected through an {e assignment} (slot -> shard):
    routing a key is [assignment.(slot_of key)].  A rebalance handoff
    never rehashes anything — it moves one slot's whole keyspace to
    another shard by {!reassign}, which is what makes the migrated set
    exactly enumerable (the conservation oracle). *)

type t

val create : ?vnodes:int -> seed:int -> shards:int -> unit -> t
(** A ring of [shards] slots, initially with slot [i] assigned to shard
    [i].  [vnodes] (default 64) points per slot.
    @raise Invalid_argument if [shards < 1] or [vnodes < 1]. *)

val shards : t -> int
(** Number of shards ( = number of slots). *)

val seed : t -> int

val slot_of : t -> int -> int
(** The slot owning a key: pure in [(key, shards, seed)], independent
    of the assignment. *)

val shard_of : t -> int -> int
(** [assignment.(slot_of key)] — where the key's operations go. *)

val owner : t -> int -> int
(** Current shard assigned to a slot. *)

val assignment : t -> int array
(** A copy of the slot -> shard assignment. *)

val reassign : t -> slot:int -> to_:int -> t
(** A new ring with one slot handed to another shard; the argument ring
    is unchanged.  @raise Invalid_argument on out-of-range indices. *)
