module Svc = Lf_svc.Svc

type shard_health = {
  h_id : int;
  h_ok : bool;
  h_breaker : string;
  h_mode : string;
  h_calls : int;
  h_served : int;
  h_failed : int;
  h_rejected : int;
  h_hedged : int;
  h_hedge_wins : int;
}

let of_router r =
  let stats = Router.stats r and hedged = Router.hedge_stats r in
  Array.to_list
    (Array.mapi
       (fun i (s : Svc.stats) ->
         let ok = match s.breaker with None | Some "closed" -> true | Some _ -> false in
         {
           h_id = i;
           h_ok = ok;
           h_breaker = Option.value s.breaker ~default:"none";
           h_mode = s.mode;
           h_calls = s.calls;
           h_served = s.served;
           h_failed = s.failed;
           h_rejected = List.fold_left (fun a (_, n) -> a + n) 0 s.rejected;
           h_hedged = fst hedged.(i);
           h_hedge_wins = snd hedged.(i);
         })
       stats)

let line r =
  let hs = of_router r in
  let overall = if List.for_all (fun h -> h.h_ok) hs then "ok" else "degraded" in
  let shard h =
    Printf.sprintf
      "s%d=%s(%s) calls=%d served=%d failed=%d rejected=%d hedged=%d/%d"
      h.h_id
      (if h.h_ok then "ok" else "degraded")
      h.h_breaker h.h_calls h.h_served h.h_failed h.h_rejected h.h_hedge_wins
      h.h_hedged
  in
  Printf.sprintf "%s shards=%d migrated=%d %s" overall (List.length hs)
    (Router.migrated_keys r)
    (String.concat " " (List.map shard hs))

let metrics r =
  let hs = of_router r in
  let label h = [ ("shard", string_of_int h.h_id) ] in
  let per f = List.map (fun h -> (label h, float_of_int (f h))) hs in
  let open Lf_obs.Prom in
  [
    {
      m_name = "lf_shard_calls_total";
      m_help = "Requests routed to each shard's pipeline";
      m_type = "counter";
      m_samples = per (fun h -> h.h_calls);
    };
    {
      m_name = "lf_shard_served_total";
      m_help = "Requests served per shard, degraded modes included";
      m_type = "counter";
      m_samples = per (fun h -> h.h_served);
    };
    {
      m_name = "lf_shard_failed_total";
      m_help = "Requests that executed and gave up, per shard";
      m_type = "counter";
      m_samples = per (fun h -> h.h_failed);
    };
    {
      m_name = "lf_shard_rejected_total";
      m_help = "Requests rejected by each shard's admission pipeline, by reason";
      m_type = "counter";
      m_samples =
        List.concat_map
          (fun (i, (s : Svc.stats)) ->
            List.map
              (fun (reason, n) ->
                ( [ ("shard", string_of_int i); ("reason", reason) ],
                  float_of_int n ))
              s.rejected)
          (List.mapi (fun i s -> (i, s)) (Array.to_list (Router.stats r)));
    };
    {
      m_name = "lf_shard_hedged_reads_total";
      m_help = "Reads failed over directly to the shard backend";
      m_type = "counter";
      m_samples = per (fun h -> h.h_hedged);
    };
    {
      m_name = "lf_shard_hedge_wins_total";
      m_help = "Hedged reads the backend actually served";
      m_type = "counter";
      m_samples = per (fun h -> h.h_hedge_wins);
    };
    {
      m_name = "lf_shard_degraded";
      m_help = "1 while the shard's breaker is not closed";
      m_type = "gauge";
      m_samples = per (fun h -> if h.h_ok then 0 else 1);
    };
    {
      m_name = "lf_shard_migrated_keys_total";
      m_help = "Keys moved by rebalance handoffs";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.migrated_keys r)) ];
    };
    {
      m_name = "lf_shard_rebalances_total";
      m_help = "Completed rebalance handoffs";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.rebalances r)) ];
    };
    {
      m_name = "lf_shard_rebalance_drained_keys_total";
      m_help = "Rebalanced keys that waited for in-flight operations";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.drained_keys r)) ];
    };
  ]

let open_breakers r =
  List.filter_map
    (fun h -> if h.h_ok then None else Some h.h_id)
    (of_router r)
