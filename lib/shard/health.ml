module Svc = Lf_svc.Svc

type shard_health = {
  h_id : int;
  h_ok : bool;
  h_breaker : string;
  h_mode : string;
  h_slots : int;
  h_calls : int;
  h_served : int;
  h_failed : int;
  h_rejected : int;
  h_hedged : int;
  h_hedge_wins : int;
}

let of_router r =
  let stats = Router.stats r
  and hedged = Router.hedge_stats r
  and slots = Router.slots_of_shard r in
  Array.to_list
    (Array.mapi
       (fun i (s : Svc.stats) ->
         let ok = match s.breaker with None | Some "closed" -> true | Some _ -> false in
         {
           h_id = i;
           h_ok = ok;
           h_breaker = Option.value s.breaker ~default:"none";
           h_mode = s.mode;
           h_slots = slots.(i);
           h_calls = s.calls;
           h_served = s.served;
           h_failed = s.failed;
           h_rejected = List.fold_left (fun a (_, n) -> a + n) 0 s.rejected;
           h_hedged = fst hedged.(i);
           h_hedge_wins = snd hedged.(i);
         })
       stats)

(* An evacuated shard (sick, but owning no slots — the supervisor moved
   its keyspace away) no longer degrades the service: overall health is
   about the keyspace that is actually served. *)
let line r =
  let hs = of_router r in
  let counts h = h.h_ok || h.h_slots = 0 in
  let overall = if List.for_all counts hs then "ok" else "degraded" in
  let shard h =
    Printf.sprintf
      "s%d=%s(%s) slots=%d calls=%d served=%d failed=%d rejected=%d hedged=%d/%d"
      h.h_id
      (if h.h_ok then "ok" else if h.h_slots = 0 then "evacuated" else "degraded")
      h.h_breaker h.h_slots h.h_calls h.h_served h.h_failed h.h_rejected
      h.h_hedge_wins h.h_hedged
  in
  Printf.sprintf "%s shards=%d migrated=%d %s" overall (List.length hs)
    (Router.migrated_keys r)
    (String.concat " " (List.map shard hs))

let metrics r =
  let hs = of_router r in
  let label h = [ ("shard", string_of_int h.h_id) ] in
  let per f = List.map (fun h -> (label h, float_of_int (f h))) hs in
  let open Lf_obs.Prom in
  [
    {
      m_name = "lf_shard_calls_total";
      m_help = "Requests routed to each shard's pipeline";
      m_type = "counter";
      m_samples = per (fun h -> h.h_calls);
    };
    {
      m_name = "lf_shard_served_total";
      m_help = "Requests served per shard, degraded modes included";
      m_type = "counter";
      m_samples = per (fun h -> h.h_served);
    };
    {
      m_name = "lf_shard_failed_total";
      m_help = "Requests that executed and gave up, per shard";
      m_type = "counter";
      m_samples = per (fun h -> h.h_failed);
    };
    {
      m_name = "lf_shard_rejected_total";
      m_help = "Requests rejected by each shard's admission pipeline, by reason";
      m_type = "counter";
      m_samples =
        List.concat_map
          (fun (i, (s : Svc.stats)) ->
            List.map
              (fun (reason, n) ->
                ( [ ("shard", string_of_int i); ("reason", reason) ],
                  float_of_int n ))
              s.rejected)
          (List.mapi (fun i s -> (i, s)) (Array.to_list (Router.stats r)));
    };
    {
      m_name = "lf_shard_hedged_reads_total";
      m_help = "Reads failed over directly to the shard backend";
      m_type = "counter";
      m_samples = per (fun h -> h.h_hedged);
    };
    {
      m_name = "lf_shard_hedge_wins_total";
      m_help = "Hedged reads the backend actually served";
      m_type = "counter";
      m_samples = per (fun h -> h.h_hedge_wins);
    };
    {
      m_name = "lf_shard_degraded";
      m_help = "1 while the shard's breaker is not closed";
      m_type = "gauge";
      m_samples = per (fun h -> if h.h_ok then 0 else 1);
    };
    {
      m_name = "lf_shard_migrated_keys_total";
      m_help = "Keys moved by rebalance handoffs";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.migrated_keys r)) ];
    };
    {
      m_name = "lf_shard_rebalances_total";
      m_help = "Completed rebalance handoffs";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.rebalances r)) ];
    };
    {
      m_name = "lf_shard_rebalance_drained_keys_total";
      m_help = "Rebalanced keys that waited for in-flight operations";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.drained_keys r)) ];
    };
    {
      m_name = "lf_shard_slots";
      m_help = "Slots currently assigned to each shard (0 = evacuated)";
      m_type = "gauge";
      m_samples = per (fun h -> h.h_slots);
    };
    {
      m_name = "lf_shard_migration_aborts_total";
      m_help = "Migrations that died mid-drain and journaled an abort";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.aborts r)) ];
    };
    {
      m_name = "lf_shard_promotions_total";
      m_help = "Replica promotions completed";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.promotions r)) ];
    };
    {
      m_name = "lf_shard_stale_reads_total";
      m_help = "Reads served from a replica, every one stale-tagged";
      m_type = "counter";
      m_samples = [ ([], float_of_int (Router.stale_reads r)) ];
    };
  ]
  @
  (* Replica status, one sample per replicated slot: present only when
     a replica set is attached, so the unreplicated server's snapshot
     is byte-stable across this PR. *)
  match Router.replicas r with
  | None -> []
  | Some reps ->
      let now = Lf_svc.Clock.now (Router.clock r) in
      let rs = Replica.stats reps ~now in
      let per f =
        List.map
          (fun (s : Replica.slot_stats) ->
            ( [
                ("slot", string_of_int s.Replica.s_slot);
                ("on", string_of_int s.Replica.s_on);
              ],
              float_of_int (f s) ))
          rs
      in
      let open Lf_obs.Prom in
      [
        {
          m_name = "lf_shard_replica_lag_ticks";
          m_help = "Replica apply lag behind the primary journal";
          m_type = "gauge";
          m_samples = per (fun s -> s.Replica.s_lag);
        };
        {
          m_name = "lf_shard_replica_pending";
          m_help = "Journal entries recorded but not yet applied";
          m_type = "gauge";
          m_samples = per (fun s -> s.Replica.s_pending);
        };
        {
          m_name = "lf_shard_replica_applied_total";
          m_help = "Journal entries applied to replica copies";
          m_type = "counter";
          m_samples = per (fun s -> s.Replica.s_applied);
        };
      ]

let open_breakers r =
  List.filter_map
    (fun h -> if h.h_ok then None else Some h.h_id)
    (of_router r)

(* The anomaly trigger's snapshot cache (the KILL/FLIGHTDUMP
   double-fire fix): [newly_open] diffs against the last snapshot it
   saw, and [mark_open] lets a chaos KILL pre-mark its victim so the
   breaker trip that inevitably follows is attributed to the kill
   bundle already dumped, not fired again as a fresh breaker-open
   anomaly. *)
type monitor = { mutable m_last : int list }

let monitor () = { m_last = [] }

let newly_open mon r =
  let now_open = open_breakers r in
  let fresh = List.filter (fun i -> not (List.mem i mon.m_last)) now_open in
  mon.m_last <- now_open;
  fresh

let mark_open mon s =
  if not (List.mem s mon.m_last) then mon.m_last <- mon.m_last @ [ s ]
