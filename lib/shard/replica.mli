(** Lagged read replicas for designated slots: a secondary shard keeps
    a copy of a slot's keyspace, fed asynchronously from a per-slot
    apply journal, so reads can fail over when the primary is sick —
    with an {e explicit} staleness contract.

    The data flow: every successful write to a replicated slot is
    {!record}ed (a journal entry stamped with the write's tick); an
    applier — the supervisor's tick, or any caller of {!apply} — drains
    entries into the replica's private store; {!read} answers from that
    store together with the copy's current lag (ticks behind the oldest
    unapplied entry, [0] when drained).  Callers must surface the lag:
    the router maps every replica read to [Svc.Served_stale], never a
    bare [Served], even at lag [0] — a failover read is stale by
    contract because the journal is asynchronous.

    Replica stores are private to this module: they are {e not} shard
    backends, so the conservation invariant (each key lives on exactly
    one shard) is untouched until {!Router.promote} copies a replica
    into a real backend and {!remove_slot} retires it.

    Synchronization: one mutex over all journals, counters and store
    applies — the stores are only ever touched under it. *)

type store = {
  r_insert : int -> int -> bool;
  r_delete : int -> bool;
  r_find : int -> int option;
}
(** The replica's private copy, as closures — any [DICT] works. *)

type op = Put of int * int | Del of int

type t

val create : unit -> t

val add_slot : t -> slot:int -> on:int -> store:store -> unit
(** Start replicating [slot] with its copy hosted on shard [on] (the
    promotion target).  @raise Invalid_argument if already replicated. *)

val host : t -> slot:int -> int option
(** The shard hosting [slot]'s copy, if the slot is replicated. *)

val replicated : t -> slot:int -> bool

val record : t -> slot:int -> now:int -> op -> unit
(** Journal a successful primary write (no-op for unreplicated slots).
    [now] stamps the entry; it is what {!read}'s lag counts from. *)

val apply : ?budget:int -> t -> int
(** Drain up to [budget] journal entries (default: all) into the
    replica stores, oldest first per slot.  Returns entries applied.
    This is the async half of the replication: call it from a paced
    tick, never inline with the write. *)

val drain : t -> slot:int -> int
(** Apply everything pending for [slot] — the promotion barrier: after
    [drain] the copy reflects every recorded write.  Returns entries
    applied. *)

val read : t -> slot:int -> key:int -> now:int -> (int option * int) option
(** [read t ~slot ~key ~now] is [None] when [slot] is unreplicated,
    otherwise [Some (value, lag_ticks)] from the copy.  [lag_ticks] is
    [now] minus the oldest pending entry's record tick ([0] when the
    journal is drained) — the bound on how far the answer trails the
    primary. *)

val peek : t -> slot:int -> key:int -> int option
(** Control-plane read of the copy for promotion — does not count as a
    failover read and carries no staleness tag; callers must have
    {!drain}ed first if they need the copy current. *)

val remove_slot : t -> slot:int -> unit
(** Stop replicating [slot] (after promotion made the copy
    authoritative, or to retire a replica). *)

type slot_stats = {
  s_slot : int;
  s_on : int;
  s_pending : int;  (** journal entries not yet applied *)
  s_applied : int;  (** journal entries applied, lifetime *)
  s_lag : int;  (** current lag in ticks, [0] when drained *)
}

val stats : t -> now:int -> slot_stats list
(** Per-slot status, ascending by slot — the REPLICAS wire verb. *)

val reads : t -> int
(** Failover reads answered from replicas (every one stale-tagged). *)
