(** The self-healing supervisor: watches per-shard health signals and
    drives the router's migration machinery to evacuate slots off
    persistently-sick shards — closing the loop that PR 8's mechanism
    (rebalance) and PR 9's signals (health, SLO burn) left open.

    A policy state machine in the [Svc] breaker/shed mould: every
    decision under one mutex, paced purely by Clock-seam tick
    comparison (never a sleep — the [no-policy-sleep] lint rule pins
    this), every transition journaled.

    Safeguards against healing doing harm:
    - {e hysteresis}: a shard must be sick for [sick_after]
      {e consecutive} polls before any move (halved while the SLO
      fast-burn bit is set — the budget is burning, act sooner), and a
      target must have been ok for [healthy_after] consecutive polls;
    - {e move budgets}: at most [move_budget] evacuations are planned
      per poll, so healing never becomes a migration storm;
    - {e exponential backoff}: a failed migration backs the source
      shard off ([backoff_base] doubling to [backoff_max] ticks); the
      router's aborted-migration record is resumed with priority once
      the backoff expires (its watermark holds routing until done).

    Evacuation prefers {!Router.promote} (make the slot's lagged
    replica authoritative on its host shard) when the slot is
    replicated, else {!Router.rebalance} onto the least-loaded healthy
    shard. *)

type via = Copy  (** rebalance: copy keys off the primary *)
        | Promote  (** make the slot's replica authoritative *)

type action = { a_slot : int; a_from : int; a_to : int; a_via : via }

type event =
  | Heal_begun of { e_shard : int; e_slot : int; e_to : int; e_via : via }
  | Heal_ended of {
      e_shard : int;
      e_slot : int;
      e_ok : bool;
      e_moved : int;
    }
      (** Queued by {!execute}/{!run_tick}, drained by {!events} — the
          serve loop turns these into flight-recorder dumps. *)

type config

val config :
  ?poll_every:int ->
  ?sick_after:int ->
  ?healthy_after:int ->
  ?move_budget:int ->
  ?backoff_base:int ->
  ?backoff_max:int ->
  ?shed_sick_pct:int ->
  ?apply_budget:int ->
  clock:Lf_svc.Clock.t ->
  key_range:int ->
  unit ->
  config
(** Defaults: poll every tick, sick after 3 polls, targets healthy
    after 2, one move per poll, backoff 4 doubling to 64 ticks, a poll
    also counts sick above 50% rejected, 256 replica journal entries
    applied per tick.  [key_range] bounds the keyspace scanned by
    migrations (same contract as {!Router.rebalance}).
    @raise Invalid_argument on non-positive pacing parameters. *)

type t

val create : config -> shards:int -> t

val tick :
  t ->
  now:int ->
  health:Health.shard_health list ->
  assignment:int array ->
  replica_host:(int -> int option) ->
  pending_abort:(int * int * int) option ->
  fast_burn:bool ->
  action list
(** The pure decision step: fold one health poll into the hysteresis
    counters and plan this poll's evacuations.  Returns [[]] when the
    poll is not yet due ([poll_every]), when nothing is sick, when
    every sick shard is backing off, or when no eligible target
    exists.  [pending_abort = Some (slot, from, to_)] is the router's
    aborted-migration record; resuming it preempts all other planning.
    Replayable: the decision is a pure function of the inputs and the
    accumulated counter state. *)

val report : t -> now:int -> action -> ok:bool -> moved:int -> unit
(** Feed an execution result back: success re-arms the source shard
    immediately (keep draining it next poll); failure backs it off
    exponentially. *)

val execute : t -> Router.t -> action -> bool
(** Actuate one action ([promote]/[rebalance]), catching migration
    failures into a [report ~ok:false], queueing begin/end events.
    Returns whether the migration completed. *)

val run_tick : ?fast_burn:bool -> t -> Router.t -> int
(** One full supervisor turn: apply a bounded slice of the replica
    journal, poll {!Health.of_router}, {!tick}, {!execute} each planned
    action.  Returns the number of migrations that completed.  Safe to
    call from the serve loop on every request — [poll_every] gates the
    actual work. *)

val events : t -> event list
(** Drain queued heal begin/end events, oldest first. *)

val journal : t -> string list
(** The supervisor's decision journal (sick/recovered transitions, heal
    begin/end/fail lines, each stamped [t=<tick>]), oldest first,
    bounded. *)

type stats = {
  polls : int;
  heals_begun : int;
  heals_done : int;
  heals_failed : int;
  keys_moved : int;
  sick : int list;  (** shards past the sick threshold right now *)
}

val stats : t -> stats

val line : t -> string
(** One greppable line for the HEAL wire verb:
    [HEAL polls=.. begun=.. done=.. failed=.. moved=.. sick=..]. *)
