(* Lock-free priority queue on top of the Fomitchev-Ruppert skip list,
   in the style of Lotan & Shavit [13] and Sundell & Tsigas [14] - the
   application domain that motivated the concurrent skip-list work the paper
   relates to.

   Priorities must be unique (the underlying structure is a dictionary); the
   [Stamped] wrapper below makes any priority unique by pairing it with a
   sequence number, which is how the classic benchmarks use these queues.

   [pop_min] claims the leftmost root with the three-step deletion, so a
   delayed or failed process never blocks others.  Like the Lotan-Shavit
   queue, [pop_min] is quiescently consistent: an insert of a smaller key
   racing with a pop may be missed by that pop. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) = struct
  module SL = Lf_skiplist.Fr_skiplist.Make (K) (M)

  type 'a t = 'a SL.t

  let create ?(max_level = 24) ?(use_hints = true)
      ?(reuse_descriptors = true) () =
    SL.create_with ~max_level ~use_hints ~reuse_descriptors ()

  let push t prio v = SL.insert t prio v
  let pop_min t = SL.delete_min t

  (* Batched push (the skip list's key-ordered carry applies); results in
     input order.  [pop_min_batch] pops up to [n] elements, smallest first;
     each pop claims its element exactly once, as in the unbatched case. *)
  let push_batch t pvs = SL.insert_batch t pvs

  let pop_min_batch t n =
    let rec go acc n =
      if n <= 0 then List.rev acc
      else
        match SL.delete_min t with
        | None -> List.rev acc
        | Some kv -> go (kv :: acc) (n - 1)
    in
    go [] n

  let peek_min t =
    match SL.to_list t with [] -> None | (k, v) :: _ -> Some (k, v)

  let is_empty t = SL.length t = 0
  let length t = SL.length t
end

(* Non-unique priorities: stamp each pushed element with a sequence number.
   Keys become (priority, stamp) ordered lexicographically, so FIFO among
   equal priorities. *)
module Stamped (M : Lf_kernel.Mem.S) = struct
  module PK = struct
    type t = int * int

    let compare (p1, s1) (p2, s2) =
      match Int.compare p1 p2 with 0 -> Int.compare s1 s2 | c -> c

    let pp fmt (p, s) = Format.fprintf fmt "%d#%d" p s
  end

  module Q = Make (PK) (M)

  type 'a t = { q : 'a Q.t; stamp : int Atomic.t }

  let create ?max_level ?use_hints ?reuse_descriptors () =
    { q = Q.create ?max_level ?use_hints ?reuse_descriptors ();
      stamp = Atomic.make 0 }

  let push t prio v =
    let s = Atomic.fetch_and_add t.stamp 1 in
    (* Stamps are unique, so insertion cannot hit a duplicate. *)
    let inserted = Q.push t.q (prio, s) v in
    assert inserted

  let pop_min t =
    match Q.pop_min t.q with
    | None -> None
    | Some ((prio, _), v) -> Some (prio, v)

  let push_batch t pvs =
    let stamped =
      List.map
        (fun (prio, v) -> ((prio, Atomic.fetch_and_add t.stamp 1), v))
        pvs
    in
    List.iter (fun ok -> assert ok) (Q.push_batch t.q stamped)

  let pop_min_batch t n =
    List.map (fun ((prio, _), v) -> (prio, v)) (Q.pop_min_batch t.q n)

  let is_empty t = Q.is_empty t.q
  let length t = Q.length t.q
end

module Atomic_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
module Stamped_atomic = Stamped (Lf_kernel.Atomic_mem)
