(** Lock-free priority queues on top of the Fomitchev-Ruppert skip list, in
    the style of Lotan & Shavit [13] and Sundell & Tsigas [14].

    [pop_min] claims the leftmost root with the three-step deletion, so a
    stalled process never blocks the others.  Like the Lotan-Shavit queue it
    is quiescently consistent: a pop racing with the insert of a smaller key
    may miss it; every element is claimed exactly once; orderings are exact
    at quiescence. *)

(** Unique priorities (the underlying structure is a dictionary). *)
module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) : sig
  type 'a t

  val create :
    ?max_level:int -> ?use_hints:bool -> ?reuse_descriptors:bool -> unit -> 'a t
  (** [use_hints] (default [true]) and [reuse_descriptors] (default [true],
      descriptor interning — the EXP-22 ablation when [false]) are
      forwarded to the underlying skip list (see
      [Fr_skiplist.create_with]). *)

  val push : 'a t -> K.t -> 'a -> bool
  (** [false] if this priority is already queued. *)

  val pop_min : 'a t -> (K.t * 'a) option
  val peek_min : 'a t -> (K.t * 'a) option

  val push_batch : 'a t -> (K.t * 'a) list -> bool list
  (** Batched push via the skip list's key-ordered predecessor carrying;
      results in input order. *)

  val pop_min_batch : 'a t -> int -> (K.t * 'a) list
  (** Pop up to [n] elements, smallest first; each element is claimed by
      exactly one caller, as in the unbatched {!pop_min}. *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
end

(** Arbitrary integer priorities: each pushed element is stamped with a
    sequence number, making keys unique and giving FIFO order among equal
    priorities. *)
module Stamped (M : Lf_kernel.Mem.S) : sig
  type 'a t

  val create :
    ?max_level:int -> ?use_hints:bool -> ?reuse_descriptors:bool -> unit -> 'a t

  val push : 'a t -> int -> 'a -> unit
  val pop_min : 'a t -> (int * 'a) option

  val push_batch : 'a t -> (int * 'a) list -> unit
  (** Stamp then batch-insert; stamps are unique so no push can fail. *)

  val pop_min_batch : 'a t -> int -> (int * 'a) list

  val is_empty : 'a t -> bool
  val length : 'a t -> int
end

module Atomic_int : module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
module Stamped_atomic : module type of Stamped (Lf_kernel.Atomic_mem)
