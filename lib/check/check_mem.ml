(* Protocol sanitizer: a [Mem.S] wrapper that validates every mutation of an
   annotated cell against the succ-field state machine of Fomitchev &
   Ruppert and online versions of the paper's invariants INV 1-5.

   The wrapped algorithms are functors over [Mem.S] with node types private
   to the functor body, so this memory cannot pattern-match a descriptor.
   Instead the algorithm declares each protocol-carrying cell right after
   [make] via [annotate], supplying a decoder from the cell's abstract
   contents to {!Lf_kernel.Protocol.succ_view} / [link_view].  The decoder
   closes over the owning node (so it can compare keys with the functor's
   own order) and names neighbouring cells through [stamp] - a pure field
   read on this memory, so decoding never re-enters the checker.

   What is checked, per successful C&S on a succ cell (writes to succ cells
   and C&S on backlinks are violations outright):

   - INV5 - the installed descriptor never has mark and flag both set;
   - INV2 - a marked descriptor is terminal: no C&S may displace it;
   - INV1 - the installed successor's key exceeds the owner's key;
   - Insertion  (r,0,0) -> (n,0,0): n is a freshly annotated, never-linked
     node whose own succ points at the displaced successor r;
   - Flagging   (r,0,0) -> (r,0,1): same successor; pins r;
   - Marking    (r,0,0) -> (r,1,0): same successor, the marked cell is
     currently pinned by a flagged predecessor (INV3), and r is not itself
     already marked (INV3, second half);
   - Physical_delete (b,0,1) -> (c,0,0): only from a flagged descriptor
     (INV3), b must be marked (INV3), and c must be b's frozen successor;
     unpins b.

   Backlinks accept only [set], the stored target must lie strictly left of
   the owner (INV4) and, once set, the backlink may never be re-pointed at
   a different node (the flag pins the predecessor precisely so that every
   helper writes the same value).

   Concurrency: under the deterministic simulator the processes share one
   domain cooperatively and an [M] access is a scheduling point, so taking
   a lock across it would deadlock the domain - and is unnecessary, because
   the bookkeeping that follows the access performs no effect and therefore
   runs before any other process.  Outside the simulator (real atomics,
   many domains) a global mutex makes access + bookkeeping one atomic unit,
   so transitions are observed in their true order.  [running_pid] tells
   the two situations apart, and doubles as the attribution source. *)

module P = Lf_kernel.Protocol
module Ev = Lf_kernel.Mem_event

module Make (M : Lf_kernel.Mem.S) = struct
  type 'a decoder =
    | Plain
    | Succ_d of ('a -> P.succ_view)
    | Link_d of ('a -> P.link_view)

  type 'a aref = {
    inner : 'a M.aref;
    id : int;
    init : 'a;  (* contents at [make]; decoded when [annotate] arrives *)
    mutable decode : 'a decoder;
  }

  (* Registry entry for an annotated succ cell. *)
  type cell_state = {
    cs_owner : string;
    cs_head : bool;
    cs_sentinel : bool;
    mutable cs_view : P.succ_view option;  (* last installed descriptor *)
    mutable cs_linked : bool;  (* ever referenced by another cell's view *)
    mutable cs_pinned : int;  (* flagged predecessors currently pointing here *)
  }

  type back_state = { bs_owner : string; mutable bs_target : int }

  let cells : (int, cell_state) Hashtbl.t = Hashtbl.create 256
  let links : (int, back_state) Hashtbl.t = Hashtbl.create 256
  let traces : (int, Violation.event Queue.t) Hashtbl.t = Hashtbl.create 16
  let mu = Mutex.create ()
  let id_counter = ref 0

  let with_lock f =
    if Option.is_some (Lf_dsim.Sim.running_pid ()) then f ()
    else begin
      Mutex.lock mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
    end

  let pid_source =
    ref (fun () ->
        match Lf_dsim.Sim.running_pid () with
        | Some p -> p
        | None -> (Domain.self () :> int))

  let set_pid_source f = pid_source := f

  let reset () =
    with_lock (fun () ->
        Hashtbl.reset cells;
        Hashtbl.reset links;
        Hashtbl.reset traces)

  (* ---------------------------------------------------------------- *)
  (* Rendering.                                                        *)

  let owner_of id =
    if id = P.null_id then "<null>"
    else
      match Hashtbl.find_opt cells id with
      | Some c -> c.cs_owner
      | None -> Printf.sprintf "#%d" id

  let render_succ (v : P.succ_view) =
    Printf.sprintf "(right=%s,m=%d,f=%d)" (owner_of v.right_id)
      (Bool.to_int v.mark) (Bool.to_int v.flag)

  let render_chains () =
    let render_from id0 =
      let b = Buffer.create 64 in
      let rec go id seen n =
        if n > 64 then Buffer.add_string b " -> ..."
        else if List.mem id seen then Buffer.add_string b " -> (cycle)"
        else
          match Hashtbl.find_opt cells id with
          | None -> Buffer.add_string b (Printf.sprintf " -> #%d?" id)
          | Some c -> (
              if n > 0 then Buffer.add_string b " -> ";
              Buffer.add_string b c.cs_owner;
              match c.cs_view with
              | None -> Buffer.add_string b "?"
              | Some v ->
                  if v.mark then Buffer.add_string b "!m";
                  if v.flag then Buffer.add_string b "!f";
                  if v.right_id <> P.null_id then
                    go v.right_id (id :: seen) (n + 1))
      in
      go id0 [] 0;
      Buffer.contents b
    in
    Hashtbl.fold
      (fun id c acc -> if c.cs_head then render_from id :: acc else acc)
      cells []
    |> List.sort String.compare

  let snapshot () = with_lock render_chains

  let trace_cap = 32

  let record_event (e : Violation.event) =
    let q =
      match Hashtbl.find_opt traces e.pid with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add traces e.pid q;
          q
    in
    Queue.push e q;
    if Queue.length q > trace_cap then ignore (Queue.pop q)

  let dump_traces () =
    Hashtbl.fold
      (fun pid q acc -> (pid, List.of_seq (Queue.to_seq q)) :: acc)
      traces []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let violation invariant culprit =
    Violation.Protocol_violation
      {
        invariant;
        culprit;
        trace = dump_traces ();
        snapshot = render_chains ();
      }

  (* ---------------------------------------------------------------- *)
  (* The state machine.                                                *)

  exception Fail of string

  let same_view (w : P.succ_view) (e : P.succ_view) =
    w.right_id = e.right_id && Bool.equal w.mark e.mark
    && Bool.equal w.flag e.flag

  (* Validate one *successful* C&S on an annotated succ cell and, when
     legal, apply its effects to the registry.  [e] decodes the displaced
     descriptor, [n] the installed one; physical-equality C&S guarantees
     [e] really was the cell's content.  Returns the violated invariant. *)
  let validate_succ (c : cell_state) ~kind ~(e : P.succ_view)
      ~(n : P.succ_view) =
    let fail inv = raise (Fail inv) in
    try
      (match c.cs_view with
      | Some w when not (same_view w e) ->
          fail "protocol: descriptor changed outside the checker"
      | _ -> ());
      if n.mark && n.flag then fail "INV5: mark and flag set together";
      if e.mark then fail "INV2: marked is terminal";
      (match kind with
      | Ev.Physical_delete -> ()
      | _ ->
          if e.flag then
            fail "protocol: flagged descriptor displaced by a non-unlink C&S");
      if not n.right_gt_owner then
        fail "INV1: successor key not greater than node key";
      (match kind with
      | Ev.Insertion ->
          if n.mark || n.flag then
            fail "protocol: insertion installs a marked or flagged descriptor";
          let nw =
            match Hashtbl.find_opt cells n.right_id with
            | Some nw -> nw
            | None -> fail "protocol: inserted node is not annotated"
          in
          if nw.cs_linked then fail "protocol: inserted node already linked";
          (match nw.cs_view with
          | Some v0 when v0.right_id = e.right_id && (not v0.mark) && not v0.flag
            ->
              ()
          | _ ->
              fail
                "protocol: inserted node does not point at the displaced \
                 successor");
          nw.cs_linked <- true
      | Ev.Flagging ->
          if n.mark || not n.flag then
            fail "protocol: flagging installs the wrong bits";
          if n.right_id <> e.right_id then
            fail "protocol: flagging changed the successor";
          (match Hashtbl.find_opt cells n.right_id with
          | Some t -> t.cs_pinned <- t.cs_pinned + 1
          | None -> ())
      | Ev.Marking ->
          if n.flag || not n.mark then
            fail "protocol: marking installs the wrong bits";
          if n.right_id <> e.right_id then
            fail "protocol: marking changed the successor";
          if c.cs_pinned = 0 then
            fail "INV3: marking without a flagged predecessor";
          (match Hashtbl.find_opt cells n.right_id with
          | Some s -> (
              match s.cs_view with
              | Some sv when sv.mark ->
                  fail
                    "INV3: successor of a newly marked node is already marked"
              | _ -> ())
          | None -> ())
      | Ev.Physical_delete ->
          if not e.flag then
            fail "INV3: physical delete from an unflagged predecessor";
          if n.mark || n.flag then
            fail "protocol: unlink installs a marked or flagged descriptor";
          let b =
            match Hashtbl.find_opt cells e.right_id with
            | Some b -> b
            | None -> fail "protocol: unlinked node is not annotated"
          in
          (match b.cs_view with
          | Some bv when bv.mark ->
              if n.right_id <> bv.right_id then
                fail
                  "protocol: unlink does not splice to the marked node's \
                   successor"
          | _ -> fail "INV3: physical delete of an unmarked node");
          b.cs_pinned <- max 0 (b.cs_pinned - 1)
      | Ev.Other_cas -> fail "protocol: unclassified C&S on a protocol cell");
      c.cs_view <- Some n;
      (if n.right_id <> P.null_id then
         match Hashtbl.find_opt cells n.right_id with
         | Some t -> t.cs_linked <- true
         | None -> ());
      None
    with Fail inv -> Some inv

  (* ---------------------------------------------------------------- *)
  (* Crash residue.

     The online state machine accepts crash-truncated protocols by
     construction: a crashed process simply stops C&S-ing, and every
     prefix of the three-step deletion leaves the registry in a state
     from which any transition the survivors attempt is still validated.
     What a crash changes is the *quiescent* picture - a structure at
     rest may legitimately hold a flagged predecessor and/or a marked,
     still-linked victim (the structures' own [check_invariants] rejects
     exactly that).  [residue] classifies those leftovers by the protocol
     window the victim died in, and [check_crash_residue] verifies the
     leftovers are ones a crash can explain: marks and flags only in the
     shapes some deletion prefix produces.  Call at quiescence (or inside
     [Sim.quiet]) after a chaos or crash-enumeration run. *)

  type residue = {
    r_flagged : (string * string) list;
        (* flagged cell's owner, interrupted window *)
    r_marked : string list; (* owners of marked, still-reachable cells *)
  }

  let fold_reachable f acc =
    (* Walk the registry's current views from the head cells; termination
       on (impossible) cyclic views is by the visited set. *)
    let visited = Hashtbl.create 64 in
    let rec go acc id =
      if Hashtbl.mem visited id then acc
      else begin
        Hashtbl.add visited id ();
        match Hashtbl.find_opt cells id with
        | None -> acc
        | Some c -> (
            let acc = f acc id c in
            match c.cs_view with
            | Some v when v.right_id <> P.null_id -> go acc v.right_id
            | _ -> acc)
      end
    in
    Hashtbl.fold
      (fun id c acc -> if c.cs_head then go acc id else acc)
      cells acc

  let residue () =
    with_lock (fun () ->
        let flagged, marked =
          fold_reachable
            (fun (fs, ms) _id c ->
              match c.cs_view with
              | Some v when v.flag ->
                  let window =
                    match Hashtbl.find_opt cells v.right_id with
                    | Some s when
                        (match s.cs_view with Some sv -> sv.mark | None -> false)
                      ->
                        "trymark->helpmarked"
                    | _ -> "tryflag->trymark"
                  in
                  ((c.cs_owner, window) :: fs, ms)
              | Some v when v.mark -> (fs, c.cs_owner :: ms)
              | _ -> (fs, ms))
            ([], [])
        in
        { r_flagged = List.rev flagged; r_marked = List.rev marked })

  let check_crash_residue () =
    with_lock (fun () ->
        fold_reachable
          (fun acc _id c ->
            match (acc, c.cs_view) with
            | (Error _ as e), _ -> e
            | Ok (), None -> Ok ()
            | Ok (), Some v ->
                if v.mark && v.flag then
                  Error
                    (Printf.sprintf "INV5: %s both marked and flagged"
                       c.cs_owner)
                else if v.mark && c.cs_pinned = 0 then
                  Error
                    (Printf.sprintf
                       "INV3: marked node %s still linked without a flagged \
                        predecessor"
                       c.cs_owner)
                else Ok ())
          (Ok ()))

  (* ---------------------------------------------------------------- *)
  (* Mem.S.                                                            *)

  let make v =
    let id =
      with_lock (fun () ->
          incr id_counter;
          !id_counter)
    in
    { inner = M.make v; id; init = v; decode = Plain }

  let get r = M.get r.inner
  let stamp r = r.id
  let event = M.event
  let pause = M.pause

  let annotate r (a : _ P.annot) =
    with_lock (fun () ->
        match a with
        | P.Succ { owner; head; sentinel; view } ->
            r.decode <- Succ_d view;
            let v0 = view r.init in
            Hashtbl.replace cells r.id
              {
                cs_owner = owner;
                cs_head = head;
                cs_sentinel = sentinel;
                cs_view = Some v0;
                cs_linked = head || sentinel;
                cs_pinned = 0;
              };
            if v0.right_id <> P.null_id then (
              match Hashtbl.find_opt cells v0.right_id with
              | Some c -> c.cs_linked <- true
              | None -> ())
        | P.Backlink { owner; view } ->
            r.decode <- Link_d view;
            let lv = view r.init in
            Hashtbl.replace links r.id
              { bs_owner = owner; bs_target = lv.target_id })

  let cas r ~kind ~expect v' =
    match r.decode with
    | Plain -> M.cas r.inner ~kind ~expect v'
    | Link_d _ ->
        let pid = !pid_source () in
        with_lock (fun () ->
            let ok = M.cas r.inner ~kind ~expect v' in
            let b = Hashtbl.find links r.id in
            let ev =
              {
                Violation.pid;
                cell = r.id;
                owner = b.bs_owner;
                action =
                  Ev.cas_kind_to_string kind ^ (if ok then " ok" else " fail");
                detail = "on a backlink";
              }
            in
            record_event ev;
            raise (violation "protocol: C&S on a backlink" ev))
    | Succ_d dec ->
        let pid = !pid_source () in
        with_lock (fun () ->
            let ok = M.cas r.inner ~kind ~expect v' in
            let c = Hashtbl.find cells r.id in
            let e = dec expect and n = dec v' in
            let ev =
              {
                Violation.pid;
                cell = r.id;
                owner = c.cs_owner;
                action =
                  Ev.cas_kind_to_string kind ^ (if ok then " ok" else " fail");
                detail = render_succ e ^ " -> " ^ render_succ n;
              }
            in
            record_event ev;
            if ok then (
              match validate_succ c ~kind ~e ~n with
              | Some inv -> raise (violation inv ev)
              | None -> ());
            ok)

  let set r v =
    match r.decode with
    | Plain -> M.set r.inner v
    | Succ_d dec ->
        let pid = !pid_source () in
        with_lock (fun () ->
            M.set r.inner v;
            let c = Hashtbl.find cells r.id in
            let n = dec v in
            let ev =
              {
                Violation.pid;
                cell = r.id;
                owner = c.cs_owner;
                action = "set";
                detail = "<- " ^ render_succ n;
              }
            in
            record_event ev;
            c.cs_view <- Some n;
            raise
              (violation "protocol: unconditional store to a succ field" ev))
    | Link_d dec ->
        let pid = !pid_source () in
        with_lock (fun () ->
            M.set r.inner v;
            let b = Hashtbl.find links r.id in
            let lv = dec v in
            let ev =
              {
                Violation.pid;
                cell = r.id;
                owner = b.bs_owner;
                action = "set";
                detail = "backlink <- " ^ owner_of lv.target_id;
              }
            in
            record_event ev;
            if not lv.left_of_owner then
              raise (violation "INV4: backlink points right" ev);
            if b.bs_target <> P.null_id && b.bs_target <> lv.target_id then
              raise (violation "INV4: backlink re-pointed" ev);
            b.bs_target <- lv.target_id)
end
