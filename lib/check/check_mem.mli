(** Protocol sanitizer: wraps any {!Lf_kernel.Mem.S} and validates every
    mutation of an annotated cell against the paper's succ-field state
    machine and online versions of INV 1-5, raising
    {!Violation.Protocol_violation} at the offending access.

    Cells never annotated (via {!Lf_kernel.Mem.S.annotate}) pass through
    unchecked, so algorithms that do not speak the Fomitchev-Ruppert
    protocol (Harris, Valois, the flagless ablation) run unchanged.

    Safe both inside the deterministic simulator (wrap [Lf_dsim.Sim_mem];
    accesses under {!Lf_dsim.Sim.quiet} are treated as observation and
    attributed to the observing domain) and under real parallelism (wrap
    [Atomic_mem]; a global mutex serializes each checked mutation with its
    bookkeeping, which costs throughput but keeps transition order exact -
    the usual sanitizer bargain). *)

module Make (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Mem.S

  val reset : unit -> unit
  (** Forget every annotation, trace and chain.  Call between independent
      structures sharing this instantiation (e.g. consecutive test cases)
      to keep reports and snapshots focused. *)

  val set_pid_source : (unit -> int) -> unit
  (** Override how accesses are attributed to processes.  The default asks
      {!Lf_dsim.Sim.running_pid} and falls back to the domain id. *)

  val snapshot : unit -> string list
  (** Render every annotated chain (one string per head cell) as the
      checker currently understands it. *)

  (** {1 Crash residue}

      The online state machine accepts crash-truncated protocols by
      construction: a crashed process simply stops C&S-ing, and every
      prefix of the three-step deletion leaves a state from which the
      survivors' transitions still validate.  What a crash changes is the
      {e quiescent} picture: a structure at rest may legitimately hold a
      flagged predecessor and/or a marked, still-linked victim (which the
      structures' own [check_invariants] rejects).  Call these at
      quiescence — or inside [Lf_dsim.Sim.quiet] — after a chaos or
      crash-enumeration run. *)

  type residue = {
    r_flagged : (string * string) list;
        (** each flagged cell's owner, with the deletion window the victim
            died in: ["tryflag->trymark"] (successor not yet marked) or
            ["trymark->helpmarked"] (marked, awaiting unlink) *)
    r_marked : string list;
        (** owners of marked cells still reachable from a head *)
  }

  val residue : unit -> residue
  (** Classify the protocol leftovers currently reachable from the head
      cells. *)

  val check_crash_residue : unit -> (unit, string) result
  (** Check the leftovers are ones a crash can explain: no cell both
      marked and flagged (INV 5), and every marked cell still reachable is
      pinned by a flagged predecessor (INV 3) — i.e. the residue is a
      prefix of some deletion, recoverable by any helper. *)
end
