(** Protocol sanitizer: wraps any {!Lf_kernel.Mem.S} and validates every
    mutation of an annotated cell against the paper's succ-field state
    machine and online versions of INV 1-5, raising
    {!Violation.Protocol_violation} at the offending access.

    Cells never annotated (via {!Lf_kernel.Mem.S.annotate}) pass through
    unchecked, so algorithms that do not speak the Fomitchev-Ruppert
    protocol (Harris, Valois, the flagless ablation) run unchanged.

    Safe both inside the deterministic simulator (wrap [Lf_dsim.Sim_mem];
    accesses under {!Lf_dsim.Sim.quiet} are treated as observation and
    attributed to the observing domain) and under real parallelism (wrap
    [Atomic_mem]; a global mutex serializes each checked mutation with its
    bookkeeping, which costs throughput but keeps transition order exact -
    the usual sanitizer bargain). *)

module Make (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Mem.S

  val reset : unit -> unit
  (** Forget every annotation, trace and chain.  Call between independent
      structures sharing this instantiation (e.g. consecutive test cases)
      to keep reports and snapshots focused. *)

  val set_pid_source : (unit -> int) -> unit
  (** Override how accesses are attributed to processes.  The default asks
      {!Lf_dsim.Sim.running_pid} and falls back to the domain id. *)

  val snapshot : unit -> string list
  (** Render every annotated chain (one string per head cell) as the
      checker currently understands it. *)
end
