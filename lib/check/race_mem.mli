(** A {!Lf_kernel.Mem.S} wrapper feeding every shared access to a
    {!Race_detector}.  Wrap the simulator's memory and run a scenario;
    accesses outside any process slice (setup, observation under
    [Sim.quiet]) are excluded. *)

module Make (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Mem.S

  val races : unit -> Race_detector.race list
  val reset : unit -> unit
end
