(* Structured protocol-violation reports raised by {!Check_mem}.

   A report carries enough to debug the failure without re-running: the
   offending access itself, a bounded per-process tail of recent mutations
   on protocol cells, and a rendering of every list chain as the checker
   understood it at the moment of the violation.  The exception is
   registered with [Printexc] so harnesses that only stringify exceptions
   (e.g. [Lf_dsim.Explore] recording a failing schedule) still surface the
   invariant name. *)

type event = {
  pid : int;  (* process / domain the access is attributed to *)
  cell : int;  (* [Mem.S.stamp] of the accessed cell *)
  owner : string;  (* rendered key of the node owning the cell *)
  action : string;  (* e.g. "flag-cas ok", "mark-cas fail", "set" *)
  detail : string;  (* rendered transition, e.g. "(right=7,m=0,f=0) -> ..." *)
}

type t = {
  invariant : string;  (* "INV2: marked is terminal", "INV4: ...", ... *)
  culprit : event;
  trace : (int * event list) list;  (* recent mutations, per pid *)
  snapshot : string list;  (* one rendered chain per annotated head cell *)
}

exception Protocol_violation of t

let pp_event ppf e =
  Format.fprintf ppf "p%d: %s on %s (cell %d) %s" e.pid e.action e.owner
    e.cell e.detail

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>protocol violation - %s@,culprit: %a" t.invariant pp_event
    t.culprit;
  (match t.snapshot with
  | [] -> ()
  | chains ->
      fprintf ppf "@,chains:";
      List.iter (fun c -> fprintf ppf "@,  %s" c) chains);
  (match t.trace with
  | [] -> ()
  | per_pid ->
      fprintf ppf "@,recent events:";
      List.iter
        (fun (pid, evs) ->
          fprintf ppf "@,  p%d:" pid;
          List.iter (fun e -> fprintf ppf "@,    %a" pp_event e) evs)
        per_pid);
  fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let () =
  Printexc.register_printer (function
    | Protocol_violation t -> Some (to_string t)
    | _ -> None)
