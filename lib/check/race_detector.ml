(* FastTrack-style happens-before race detector over the simulator's
   scheduling points.

   The memory model it checks is the one the paper's algorithms assume:
   [get] and C&S are synchronizing accesses - a successful C&S releases the
   writer's knowledge into the cell, and every read (or C&S attempt)
   acquires whatever the cell last released - while [set] is a *plain*
   store with no ordering of its own ([Mem.S.set] exists exactly for
   backlink stores, which the paper argues need none).

   A race is therefore any pair involving a plain store that is not ordered
   by happens-before:
   - plain write, then an unordered read / C&S / plain write, or
   - read / successful C&S, then an unordered plain write.

   Finding such a pair does not condemn the algorithm - backlink stores are
   *designed* to race benignly, every racing writer storing the same value.
   The detector's job is to make the set of such sites exact and auditable:
   the FR list's only racy cells must be backlinks, and any new racy cell a
   refactor introduces shows up immediately. *)

type access = Read | Write | Cas of bool (* success? *)

let access_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Cas true -> "cas-ok"
  | Cas false -> "cas-fail"

type race = {
  cell : int;
  owner : string;
  earlier : int * access; (* pid, kind *)
  later : int * access;
}

let pp_race ppf r =
  let pe, ea = r.earlier and pl, la = r.later in
  Format.fprintf ppf "race on %s (cell %d): p%d %s unordered with p%d %s"
    r.owner r.cell pe (access_to_string ea) pl (access_to_string la)

type cell_info = {
  ci_owner : string;
  ci_sync : Vclock.t; (* L: what the cell's successful C&Ss released *)
  mutable ci_cas : (int * access) option; (* last successful C&S, for reports *)
  mutable ci_write : (int * int) option; (* last plain write: pid, epoch *)
  ci_reads : (int, int) Hashtbl.t; (* pid -> epoch of its last read *)
}

type t = {
  clocks : (int, Vclock.t) Hashtbl.t;
  cinfo : (int, cell_info) Hashtbl.t;
  mutable races : race list;
  seen : (int * access * access, unit) Hashtbl.t; (* dedup per cell + kinds *)
}

let create () =
  {
    clocks = Hashtbl.create 16;
    cinfo = Hashtbl.create 256;
    races = [];
    seen = Hashtbl.create 16;
  }

let clear t =
  Hashtbl.reset t.clocks;
  Hashtbl.reset t.cinfo;
  Hashtbl.reset t.seen;
  t.races <- []

let clock t pid =
  match Hashtbl.find_opt t.clocks pid with
  | Some c -> c
  | None ->
      let c = Vclock.create () in
      (* Start at 1 so a fresh process's epoch is not vacuously ordered
         before everyone else's empty clock. *)
      Vclock.tick c pid;
      Hashtbl.add t.clocks pid c;
      c

let cell t id owner =
  match Hashtbl.find_opt t.cinfo id with
  | Some ci -> ci
  | None ->
      let ci =
        {
          ci_owner = owner;
          ci_sync = Vclock.create ();
          ci_cas = None;
          ci_write = None;
          ci_reads = Hashtbl.create 4;
        }
      in
      Hashtbl.add t.cinfo id ci;
      ci

let report t ~cell:id ~owner ~earlier ~later =
  let _, ea = earlier and _, la = later in
  if not (Hashtbl.mem t.seen (id, ea, la)) then begin
    Hashtbl.add t.seen (id, ea, la) ();
    t.races <- { cell = id; owner; earlier; later } :: t.races
  end

(* Unordered with the cell's last plain write? *)
let check_write_conflict t ci ~id ~pid ~c ~(later : access) =
  match ci.ci_write with
  | Some (q, tm) when q <> pid && not (Vclock.epoch_leq ~pid:q ~time:tm c) ->
      report t ~cell:id ~owner:ci.ci_owner ~earlier:(q, Write)
        ~later:(pid, later)
  | _ -> ()

let read t ~pid ~cell:id ~owner =
  let c = clock t pid in
  let ci = cell t id owner in
  Vclock.join c ci.ci_sync;
  (* acquire *)
  check_write_conflict t ci ~id ~pid ~c ~later:Read;
  Hashtbl.replace ci.ci_reads pid (Vclock.get c pid)

let cas t ~pid ~cell:id ~owner ~ok =
  let c = clock t pid in
  let ci = cell t id owner in
  Vclock.join c ci.ci_sync;
  (* acquire: even a failed C&S observed the value *)
  check_write_conflict t ci ~id ~pid ~c ~later:(Cas ok);
  if ok then begin
    (* release *)
    Vclock.join ci.ci_sync c;
    ci.ci_cas <- Some (pid, Cas true);
    Vclock.tick c pid
  end

let write t ~pid ~cell:id ~owner =
  let c = clock t pid in
  let ci = cell t id owner in
  (* A plain store: no acquire, no release.  It conflicts with anything on
     this cell not ordered before it. *)
  check_write_conflict t ci ~id ~pid ~c ~later:Write;
  Hashtbl.iter
    (fun q tm ->
      if q <> pid && not (Vclock.epoch_leq ~pid:q ~time:tm c) then
        report t ~cell:id ~owner:ci.ci_owner ~earlier:(q, Read)
          ~later:(pid, Write))
    ci.ci_reads;
  (if not (Vclock.leq ci.ci_sync c) then
     let earlier = match ci.ci_cas with Some e -> e | None -> (-1, Cas true) in
     report t ~cell:id ~owner:ci.ci_owner ~earlier ~later:(pid, Write));
  ci.ci_write <- Some (pid, Vclock.get c pid)

let races t = List.rev t.races
