(* Growable dense vector clocks for the happens-before race detector.
   Component [i] is process [i]'s logical time; missing components are 0. *)

type t = { mutable v : int array }

let create () = { v = [||] }

let grow c n =
  if Array.length c.v < n then begin
    let v' = Array.make (max n ((2 * Array.length c.v) + 1)) 0 in
    Array.blit c.v 0 v' 0 (Array.length c.v);
    c.v <- v'
  end

let get c i = if i >= 0 && i < Array.length c.v then c.v.(i) else 0

let set c i x =
  grow c (i + 1);
  c.v.(i) <- x

let tick c i = set c i (get c i + 1)

(* dst := dst join src, componentwise max. *)
let join dst src =
  grow dst (Array.length src.v);
  Array.iteri (fun i x -> if x > dst.v.(i) then dst.v.(i) <- x) src.v

(* Is the event at epoch (pid, time) ordered before everything [c] has
   seen?  The FastTrack epoch comparison: time <= c[pid]. *)
let epoch_leq ~pid ~time c = time <= get c pid

let leq a b =
  let ok = ref true in
  Array.iteri (fun i x -> if x > get b i then ok := false) a.v;
  !ok

let pp ppf c =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_seq c.v)
