(** Growable dense vector clocks (component [i] = process [i]'s time). *)

type t

val create : unit -> t
val get : t -> int -> int
val set : t -> int -> int -> unit
val tick : t -> int -> unit

val join : t -> t -> unit
(** [join dst src] sets [dst] to the componentwise max. *)

val epoch_leq : pid:int -> time:int -> t -> bool
(** FastTrack epoch test: is the event at [(pid, time)] happens-before
    everything clock [c] has seen, i.e. [time <= c.(pid)]? *)

val leq : t -> t -> bool
val pp : Format.formatter -> t -> unit
