(** Structured reports for protocol violations detected by {!Check_mem}. *)

type event = {
  pid : int;  (** process / domain the access is attributed to *)
  cell : int;  (** [Mem.S.stamp] of the accessed cell *)
  owner : string;  (** rendered key of the node owning the cell *)
  action : string;  (** e.g. ["flag-cas ok"], ["mark-cas fail"], ["set"] *)
  detail : string;  (** rendered transition *)
}

type t = {
  invariant : string;
      (** which invariant broke, e.g. ["INV2: marked is terminal"];
          ["protocol: ..."] for shape errors outside the numbered INV 1-5 *)
  culprit : event;
  trace : (int * event list) list;
      (** bounded tail of recent protocol-cell mutations, per pid *)
  snapshot : string list;  (** one rendered chain per annotated head cell *)
}

exception Protocol_violation of t
(** Raised by {!Check_mem} at the offending access.  Registered with
    [Printexc], so [Printexc.to_string] yields the full report. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
