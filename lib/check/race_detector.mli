(** FastTrack-style happens-before race detector.

    Checks the synchronization discipline the paper's algorithms assume:
    [get] acquires, a successful C&S acquires and releases, and [set] is a
    plain store with no ordering.  A race is any pair involving a plain
    store unordered by happens-before.  Races are accumulated (deduplicated
    per cell and access-kind pair), never raised: backlink stores race
    benignly by design, and the point is to keep the set of racy cells
    exact and auditable. *)

type access = Read | Write | Cas of bool  (** [Cas ok] *)

val access_to_string : access -> string

type race = {
  cell : int;
  owner : string;
  earlier : int * access;  (** pid, kind *)
  later : int * access;
}

val pp_race : Format.formatter -> race -> unit

type t

val create : unit -> t
val clear : t -> unit
val read : t -> pid:int -> cell:int -> owner:string -> unit
val cas : t -> pid:int -> cell:int -> owner:string -> ok:bool -> unit
val write : t -> pid:int -> cell:int -> owner:string -> unit

val races : t -> race list
(** In detection order. *)
