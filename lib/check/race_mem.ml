(* A [Mem.S] wrapper feeding every shared access to {!Race_detector}.

   Intended for the deterministic simulator: wrap [Lf_dsim.Sim_mem] and
   run a scenario; accesses made outside a simulated process's slice
   (setup and observation, e.g. under [Lf_dsim.Sim.quiet]) carry no pid
   and are excluded from the happens-before graph.

   Annotations are used only to give cells readable names in race reports
   (and are forwarded to the wrapped memory, where they are no-ops). *)

module P = Lf_kernel.Protocol

module Make (M : Lf_kernel.Mem.S) = struct
  type 'a aref = { inner : 'a M.aref; id : int; mutable owner : string }

  let det = Race_detector.create ()
  let races () = Race_detector.races det
  let reset () = Race_detector.clear det
  let id_counter = ref 0

  let make v =
    incr id_counter;
    let id = !id_counter in
    { inner = M.make v; id; owner = Printf.sprintf "#%d" id }

  let pid () = Lf_dsim.Sim.running_pid ()

  let get r =
    let v = M.get r.inner in
    (match pid () with
    | Some p -> Race_detector.read det ~pid:p ~cell:r.id ~owner:r.owner
    | None -> ());
    v

  let cas r ~kind ~expect v' =
    let ok = M.cas r.inner ~kind ~expect v' in
    (match pid () with
    | Some p -> Race_detector.cas det ~pid:p ~cell:r.id ~owner:r.owner ~ok
    | None -> ());
    ok

  let set r v =
    M.set r.inner v;
    match pid () with
    | Some p -> Race_detector.write det ~pid:p ~cell:r.id ~owner:r.owner
    | None -> ()

  let event = M.event
  let pause = M.pause
  let stamp r = r.id

  let annotate r (a : _ P.annot) =
    (match a with
    | P.Succ { owner; _ } -> r.owner <- owner ^ ".succ"
    | P.Backlink { owner; _ } -> r.owner <- owner ^ ".backlink");
    M.annotate r.inner a
end
