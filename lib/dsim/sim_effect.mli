(** Effects shared between the simulator's memory and its scheduler.

    Every shared-memory access performs {!extension-Step} {e before}
    executing its action: the scheduler captures the continuation there, so
    the set of pending steps describes exactly what each process is about to
    do next - which is what scripted adversaries (e.g. the Section 3.1
    construction) inspect to decide whom to run.  {!extension-Note}s are
    instantaneous annotations (cost-model events, operation boundaries) that
    are not scheduling points.

    A step also carries its {e dependency footprint}: the identity of the
    cell about to be touched and, for stores, the physical identity of the
    value about to be written.  Two steps commute unless they touch the same
    cell and at least one writes; same-value blind stores (the backlink
    pattern) also commute.  The DPOR model checker ([Lf_model]) consumes
    exactly this. *)

type step_kind =
  | Read
  | Write
  | Cas of Lf_kernel.Mem_event.cas_kind
  | Pause

type step = { kind : step_kind; loc : int; value : Obj.t }
(** What a process is about to do: the action, the touched cell ([loc] is
    unique per [Sim_mem] cell; 0 for [Pause]), and for [Write] the stored
    value's physical identity ([Obj.repr ()] when there is nothing to
    store). *)

type note =
  | Ev of Lf_kernel.Mem_event.t
  | Cas_ok of Lf_kernel.Mem_event.cas_kind
  | Cas_fail of Lf_kernel.Mem_event.cas_kind
  | Op_begin of int
      (** harness-supplied n(S): structure size at invocation *)
  | Op_end

type _ Effect.t +=
  | Step : step -> unit Effect.t
  | Note : note -> unit Effect.t

val step_kind_to_string : step_kind -> string
