(* Context-bounded systematic schedule exploration (in the style of CHESS,
   Musuvathi & Qadeer): re-run a small scenario under *every* schedule that
   uses at most [max_preemptions] preemptive context switches, checking an
   oracle after each run.

   The simulator is deterministic and its memory has no hidden state, so a
   schedule is fully described by the sequence of pids chosen at each
   scheduling decision.  Exploration is replay-based depth-first search:
   run a schedule, record at every decision which processes were runnable
   and which was chosen, then branch on alternative choices.  The default
   (zero-preemption) schedule runs each process to completion in pid order;
   switching away from a process that could have continued costs one unit
   of preemption budget, switching away from a finished process is free.

   This gives exhaustive coverage of the small-preemption neighbourhood of
   every interleaving - empirically where almost all concurrency bugs live -
   at a cost of (decisions * procs)^preemptions replays. *)

type outcome = {
  schedules_run : int;
  truncated : bool;
      (* stopped before exhausting: at [max_schedules], or because
         [max_failures] distinct failures were already recorded *)
  failures : (int list * string) list;
      (* forced-choice prefix that reproduces the failure, plus message *)
}

(* One replay.  [forced] pins the first choices; afterwards the default
   rule applies.  Returns the full decision trace
   (runnable set, chosen, previous pid) and the oracle's verdict. *)
let run_one ~max_steps mk (forced : int array) =
  let bodies, check = mk () in
  let trace = ref [] in
  let count = ref 0 in
  let last = ref (-1) in
  let policy st =
    match Sim.runnable st with
    | [] -> None
    | runnable ->
        let idx = !count in
        let chosen =
          if idx < Array.length forced then begin
            let c = forced.(idx) in
            if not (List.mem c runnable) then
              failwith
                "Explore: forced choice not runnable - the scenario is not \
                 deterministic (is it drawing from a global RNG?)";
            c
          end
          else if List.mem !last runnable then !last
          else List.hd runnable
        in
        incr count;
        trace := (runnable, chosen, !last) :: !trace;
        last := chosen;
        Some chosen
  in
  (* A mid-run exception (a checked memory's protocol violation, an
     invariant checker firing inside a process body, the step budget) is a
     verdict about this schedule, not about the exploration: record it as a
     failure so the DFS keeps covering the remaining schedules and reports
     a reproducing prefix. *)
  let verdict =
    match Sim.run ~policy:(Sim.Custom policy) ~max_steps bodies with
    | (_ : Sim.result) -> check ()
    | exception e -> Error (Printexc.to_string e)
  in
  (List.rev !trace, verdict)

let run ?(max_preemptions = 2) ?(max_schedules = 100_000)
    ?(max_steps = 1_000_000) ?(max_failures = 10)
    (mk : unit -> (Sim.pid -> unit) array * (unit -> (unit, string) result)) :
    outcome =
  let schedules = ref 0 in
  let truncated = ref false in
  let failures = ref [] in
  let n_failures = ref 0 in
  (* Distinct forced prefixes can replay to the same full decision trace
     (a failing prefix and its extensions by default choices all reproduce
     one schedule): report each failing schedule once, keyed by the trace
     it replays to. *)
  let seen_failure_traces : (int list, unit) Hashtbl.t = Hashtbl.create 16 in
  let exception Enough_failures in
  let rec dfs forced budget =
    if !schedules >= max_schedules then truncated := true
    else begin
      incr schedules;
      let trace, verdict = run_one ~max_steps mk (Array.of_list forced) in
      let chosen_list = List.map (fun (_, c, _) -> c) trace in
      (match verdict with
      | Ok () -> ()
      | Error msg ->
          if not (Hashtbl.mem seen_failure_traces chosen_list) then begin
            Hashtbl.add seen_failure_traces chosen_list ();
            failures := (forced, msg) :: !failures;
            incr n_failures;
            if !n_failures >= max_failures then begin
              (* Stopping here leaves schedules unexplored - that is a
                 truncation, and the outcome must say so. *)
              truncated := true;
              raise Enough_failures
            end
          end);
      let base = List.length forced in
      List.iteri
        (fun i (runnable, chosen, prev) ->
          if i >= base then
            List.iter
              (fun alt ->
                if alt <> chosen then begin
                  (* Preemptive if we abandon a process that could have
                     continued. *)
                  let cost = if List.mem prev runnable && alt <> prev then 1 else 0 in
                  (* No [!schedules < max_schedules] here: the check at the
                     top of [dfs] both stops the replay and records the
                     truncation — skipping the call would stop silently. *)
                  if cost <= budget then begin
                    let prefix = List.filteri (fun j _ -> j < i) chosen_list in
                    dfs (prefix @ [ alt ]) (budget - cost)
                  end
                end)
              runnable)
        trace
    end
  in
  (try dfs [] max_preemptions with Enough_failures -> ());
  {
    schedules_run = !schedules;
    truncated = !truncated;
    failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Crash-bounded enumeration.

   Same replay-based DFS, but a scheduling decision may also be "crash
   process p here" ([Sim.crash]): p is never scheduled again and whatever
   flags/marks it published stay behind for the survivors to help.  A
   crash consumes one unit of crash budget and no preemption budget (the
   forced switch away from a crashed process is free, like switching away
   from a finished one).  With [max_preemptions = 0], [max_crashes = 1]
   and [crashable = [v]] this enumerates exactly "crash v at every point
   of the default schedule" - the sweep test_crash.ml used to hand-roll
   with a step-counting policy - and the budgets generalize it to crashes
   under preemption and to multiple failures. *)

type choice = Run of Sim.pid | Crash of Sim.pid

let choice_to_string = function
  | Run p -> Printf.sprintf "run %d" p
  | Crash p -> Printf.sprintf "crash %d" p

type crash_outcome = {
  c_schedules_run : int;
  c_truncated : bool;
  c_failures : (choice list * string) list;
}

(* One replay under a forced choice prefix.  Crash choices are applied
   within the same policy invocation (they consume a decision slot but no
   scheduler step); past the prefix the default non-crashing rule applies.
   Returns the decision trace, the pids crashed, and the oracle's verdict
   (the oracle receives the crashed set so it can require survivors to
   have completed and treat the victims' operations as pending). *)
let run_one_crash ~max_steps mk (forced : choice array) =
  let bodies, check = mk () in
  let trace = ref [] in
  let crashed = ref [] in
  let count = ref 0 in
  let last = ref (-1) in
  let policy st =
    let rec decide () =
      match Sim.runnable st with
      | [] -> None
      | runnable ->
          let idx = !count in
          if idx < Array.length forced then begin
            let c = forced.(idx) in
            incr count;
            trace := (runnable, c, !last) :: !trace;
            match c with
            | Run p ->
                if not (List.mem p runnable) then
                  failwith
                    "Explore: forced choice not runnable - the scenario is \
                     not deterministic (is it drawing from a global RNG?)";
                last := p;
                Some p
            | Crash p ->
                if not (List.mem p runnable) then
                  failwith "Explore: forced crash victim not runnable";
                Sim.crash st p;
                crashed := p :: !crashed;
                decide ()
          end
          else begin
            let p =
              if List.mem !last runnable then !last else List.hd runnable
            in
            incr count;
            trace := (runnable, Run p, !last) :: !trace;
            last := p;
            Some p
          end
    in
    decide ()
  in
  let verdict =
    match Sim.run ~policy:(Sim.Custom policy) ~max_steps bodies with
    | (_ : Sim.result) -> check ~crashed:(List.rev !crashed)
    | exception e -> Error (Printexc.to_string e)
  in
  (List.rev !trace, List.rev !crashed, verdict)

let run_crash ?(max_preemptions = 0) ?(max_crashes = 1) ?crashable
    ?(max_schedules = 100_000) ?(max_steps = 1_000_000) ?(max_failures = 10)
    (mk :
      unit ->
      (Sim.pid -> unit) array
      * (crashed:Sim.pid list -> (unit, string) result)) : crash_outcome =
  let may_crash p =
    match crashable with None -> true | Some l -> List.mem p l
  in
  let schedules = ref 0 in
  let truncated = ref false in
  let failures = ref [] in
  let rec dfs forced p_budget c_budget =
    if !schedules >= max_schedules then truncated := true
    else begin
      incr schedules;
      let trace, _, verdict =
        run_one_crash ~max_steps mk (Array.of_list forced)
      in
      (match verdict with
      | Ok () -> ()
      | Error msg ->
          if List.length !failures < max_failures then
            failures := (forced, msg) :: !failures);
      let base = List.length forced in
      let chosen_list = List.map (fun (_, c, _) -> c) trace in
      List.iteri
        (fun i (runnable, chosen, prev) ->
          (* Branches are generated only past the forced prefix, where the
             default rule never crashes: [chosen] is always [Run _] here. *)
          if i >= base then begin
            let prefix () = List.filteri (fun j _ -> j < i) chosen_list in
            List.iter
              (fun alt ->
                (match chosen with
                | Run c when alt <> c ->
                    let cost =
                      if List.mem prev runnable && alt <> prev then 1 else 0
                    in
                    (* As in [run]: the top-of-[dfs] check records the
                       truncation; guarding the call would stop silently. *)
                    if cost <= p_budget then
                      dfs (prefix () @ [ Run alt ]) (p_budget - cost) c_budget
                | Run _ | Crash _ -> ());
                if c_budget > 0 && may_crash alt then
                  dfs (prefix () @ [ Crash alt ]) p_budget (c_budget - 1))
              runnable
          end)
        trace
    end
  in
  dfs [] max_preemptions max_crashes;
  {
    c_schedules_run = !schedules;
    c_truncated = !truncated;
    c_failures = List.rev !failures;
  }
