(* Deterministic scheduler for processes whose shared-memory accesses go
   through {!Sim_mem}.

   A simulation runs an array of process bodies cooperatively: each scheduler
   iteration picks one process and resumes it, which executes exactly one
   pending shared-memory action (read / write / C&S / pause) plus the private
   computation up to its next one.  Policies:
   - [Round_robin] and [Random seed] model fair and arbitrary schedules;
   - [Custom f] hands the choice to an adversary that can inspect the full
     simulator state (what every process is about to do, how many operations
     it has completed, ...) - this is how the executions of Sections 2, 3.1
     and 4 of the paper are constructed.

   The scheduler also keeps the books for the Section 3.4 cost model: per
   process counters, and per *operation* records (essential steps, n(S)
   supplied by the harness at [op_begin], and the point contention c(S)
   observed while the operation ran). *)

module Counters = Lf_kernel.Counters

type pid = int

type op_record = {
  op_pid : pid;
  op_index : int; (* per-process sequence number, from 0 *)
  n_at_start : int;
  mutable c_max : int;
  mutable essential : int;
  mutable op_cas_attempts : int;
  mutable op_backlinks : int;
  mutable op_next_updates : int;
  mutable op_curr_updates : int;
  mutable op_aux_steps : int;
  mutable op_reads : int;
  mutable completed : bool;
}

type proc_status =
  | Not_started of (unit -> unit)
  | Blocked of Sim_effect.step * (unit, unit) Effect.Deep.continuation
  | Running (* transient, while the process executes *)
  | Finished

(* One executed shared-memory action, footprint included: what the DPOR
   model checker's dependency analysis reads after every slice.  [a_cas_ok]
   is the outcome of a C&S step (a failed C&S is read-like: it wrote
   nothing), [None] for non-C&S steps. *)
type access = {
  a_pid : pid;
  a_step : Sim_effect.step;
  a_cas_ok : bool option;
}

type state = {
  procs : proc_status array;
  counters : Counters.t array;
  crashed : bool array;
  mutable current : pid;
  mutable total_steps : int;
  mutable active_ops : int;
  current_op : op_record option array;
  mutable records : op_record list; (* completed + (at the end) unfinished *)
  mutable op_counter : int array;
  mutable last_step : (pid * Sim_effect.step_kind) option;
  mutable last_access : access option;
  mutable cas_result : bool option;
      (* outcome note of the C&S executing in the current slice *)
}

type policy =
  | Round_robin
  | Random of int (* seed *)
  | Custom of (state -> pid option)
      (** Return the pid to run next, or [None] to stop the simulation. *)

type result = {
  steps : int;
  per_proc : Counters.t array;
  ops : op_record list; (* in completion order; unfinished ops appended *)
}

(* ------------------------------------------------------------------ *)
(* Introspection used by tests, benches and custom policies.           *)

let num_procs st = Array.length st.procs
let is_finished st pid = st.procs.(pid) = Finished

(* A crashed process is never scheduled again: its continuation is dropped
   mid-protocol, so whatever flags/marks it published stay in the structure
   for the survivors' helping routines - the paper's failure model.  Any
   operation it had open is folded into the records (completed = false)
   when the run ends.  Policies call this between slices; crashing the pid
   whose slice is executing is not possible (policies only run between
   slices). *)
let crash st pid = st.crashed.(pid) <- true
let is_crashed st pid = st.crashed.(pid)

let pending_kind st pid =
  match st.procs.(pid) with
  | Blocked (s, _) -> Some s.Sim_effect.kind
  | Not_started _ | Running | Finished -> None

let pending_access st pid =
  match st.procs.(pid) with
  | Blocked (s, _) -> Some s
  | Not_started _ | Running | Finished -> None

let ops_completed st pid = st.op_counter.(pid)
let in_operation st pid = Option.is_some st.current_op.(pid)
let active_ops st = st.active_ops
let counters st pid = st.counters.(pid)
let total_steps st = st.total_steps

let last_step st = st.last_step
let last_access st = st.last_access

let runnable st =
  let out = ref [] in
  for pid = num_procs st - 1 downto 0 do
    match st.procs.(pid) with
    | Finished | Running -> ()
    | Not_started _ | Blocked _ ->
        if not st.crashed.(pid) then out := pid :: !out
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Operation boundaries, called from process bodies.                   *)

let op_begin ~n = Effect.perform (Sim_effect.Note (Op_begin n))
let op_end () = Effect.perform (Sim_effect.Note Op_end)

(* The pid whose slice is executing right now, for observers that live
   *inside* the simulated processes (checked memories attributing protocol
   events and races to processes).  [None] outside any slice - in
   particular under [quiet], whose accesses are setup/observation rather
   than part of the concurrent execution. *)
let running : pid option ref = ref None
let running_pid () = !running

(* Virtual clock: the number of shared-memory steps executed so far by the
   innermost running simulation.  A pure function of the schedule, so
   observers (the lf_obs recorder) can timestamp events deterministically -
   identical seeds produce identical timestamps.  Reset at [run] entry;
   restored around nested runs so a run launched from within [quiet]
   observation code does not corrupt the outer clock. *)
let vclock : int ref = ref 0
let virtual_now () = !vclock

(* ------------------------------------------------------------------ *)
(* Accounting.                                                         *)

let record_step st pid (k : Sim_effect.step_kind) =
  let c = st.counters.(pid) in
  (match k with
  | Read -> c.Counters.reads <- c.Counters.reads + 1
  | Write -> c.Counters.writes <- c.Counters.writes + 1
  | Cas kind -> Counters.record_cas_attempt c kind
  | Pause -> ());
  match st.current_op.(pid) with
  | None -> ()
  | Some op -> (
      match k with
      | Cas _ ->
          op.essential <- op.essential + 1;
          op.op_cas_attempts <- op.op_cas_attempts + 1
      | Read -> op.op_reads <- op.op_reads + 1
      | Write | Pause -> ())

let record_note st pid (n : Sim_effect.note) =
  let c = st.counters.(pid) in
  (match n with
  | Ev e -> Counters.record c e
  | Cas_ok kind ->
      st.cas_result <- Some true;
      Counters.record_cas_success c kind
  | Cas_fail _ -> st.cas_result <- Some false
  | Op_begin _ | Op_end -> ());
  match n with
  | Ev e -> (
      match st.current_op.(pid) with
      | None -> ()
      | Some op -> (
          match e with
          | Backlink_step ->
              op.essential <- op.essential + 1;
              op.op_backlinks <- op.op_backlinks + 1
          | Next_update ->
              op.essential <- op.essential + 1;
              op.op_next_updates <- op.op_next_updates + 1
          | Curr_update ->
              op.essential <- op.essential + 1;
              op.op_curr_updates <- op.op_curr_updates + 1
          | Aux_step ->
              op.essential <- op.essential + 1;
              op.op_aux_steps <- op.op_aux_steps + 1
          | Retry | Help | User _ -> ()))
  | Op_begin n_at_start ->
      if in_operation st pid then
        failwith "Sim: nested op_begin without op_end";
      let op =
        {
          op_pid = pid;
          op_index = st.op_counter.(pid);
          n_at_start;
          c_max = 0;
          essential = 0;
          op_cas_attempts = 0;
          op_backlinks = 0;
          op_next_updates = 0;
          op_curr_updates = 0;
          op_aux_steps = 0;
          op_reads = 0;
          completed = false;
        }
      in
      st.current_op.(pid) <- Some op;
      st.active_ops <- st.active_ops + 1;
      (* Point contention just rose: every active operation (including the
         new one) may now observe this many concurrent operations. *)
      Array.iter
        (function
          | Some o -> o.c_max <- max o.c_max st.active_ops
          | None -> ())
        st.current_op
  | Op_end -> (
      match st.current_op.(pid) with
      | None -> failwith "Sim: op_end without op_begin"
      | Some op ->
          op.completed <- true;
          st.op_counter.(pid) <- st.op_counter.(pid) + 1;
          st.current_op.(pid) <- None;
          st.active_ops <- st.active_ops - 1;
          st.records <- op :: st.records)
  | Cas_ok _ | Cas_fail _ -> ()

(* ------------------------------------------------------------------ *)
(* The engine.                                                         *)

let handle st pid (f : unit -> unit) =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> st.procs.(pid) <- Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sim_effect.Step s ->
              Some
                (fun (cont : (a, unit) Effect.Deep.continuation) ->
                  st.procs.(pid) <- Blocked (s, cont))
          | Sim_effect.Note n ->
              Some
                (fun (cont : (a, unit) Effect.Deep.continuation) ->
                  record_note st pid n;
                  Effect.Deep.continue cont ())
          | _ -> None);
    }

exception Step_budget_exhausted of int

(* Run [f] with simulator-memory effects executed silently and immediately:
   no scheduling, no accounting.  This is how observers (invariant checkers
   in [on_step], result validators after [run], setup code that prefers plain
   calls) may touch structures built over [Sim_mem] from outside a simulated
   process. *)
let quiet (f : unit -> 'a) : 'a =
  Effect.Deep.match_with f ()
    {
      retc = (fun x -> x);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sim_effect.Step _ ->
              Some
                (fun (cont : (a, _) Effect.Deep.continuation) ->
                  Effect.Deep.continue cont ())
          | Sim_effect.Note _ ->
              Some
                (fun (cont : (a, _) Effect.Deep.continuation) ->
                  Effect.Deep.continue cont ())
          | _ -> None);
    }

let run ?(policy = Round_robin) ?(max_steps = 50_000_000) ?on_step
    (bodies : (pid -> unit) array) : result =
  let p = Array.length bodies in
  let st =
    {
      procs = Array.mapi (fun pid body -> Not_started (fun () -> body pid)) bodies;
      counters = Array.init p (fun _ -> Counters.create ());
      crashed = Array.make p false;
      current = 0;
      total_steps = 0;
      active_ops = 0;
      current_op = Array.make p None;
      records = [];
      op_counter = Array.make p 0;
      last_step = None;
      last_access = None;
      cas_result = None;
    }
  in
  let rng =
    match policy with Random seed -> Lf_kernel.Splitmix.create seed | _ -> Lf_kernel.Splitmix.create 0
  in
  let choose last =
    match policy with
    | Round_robin ->
        let rec scan i tries =
          if tries > p then None
          else
            let pid = i mod p in
            match st.procs.(pid) with
            | Finished | Running -> scan (i + 1) (tries + 1)
            | Not_started _ | Blocked _ ->
                if st.crashed.(pid) then scan (i + 1) (tries + 1) else Some pid
        in
        scan (last + 1) 0
    | Random _ -> (
        match runnable st with
        | [] -> None
        | rs ->
            let arr = Array.of_list rs in
            Some arr.(Lf_kernel.Splitmix.int rng (Array.length arr)))
    | Custom f -> (
        match runnable st with [] -> None | _ -> f st)
  in
  let rec loop last =
    match choose last with
    | None -> ()
    | Some pid ->
        if st.crashed.(pid) then failwith "Sim: scheduled a crashed process";
        st.current <- pid;
        (match st.procs.(pid) with
        | Not_started body ->
            (* Launching a body runs only private code up to its first
               shared-memory access; it is not itself a step. *)
            st.procs.(pid) <- Running;
            running := Some pid;
            handle st pid body;
            running := None
        | Blocked (s, cont) ->
            st.total_steps <- st.total_steps + 1;
            vclock := st.total_steps;
            if st.total_steps > max_steps then
              raise (Step_budget_exhausted st.total_steps);
            st.procs.(pid) <- Running;
            st.last_step <- Some (pid, s.Sim_effect.kind);
            record_step st pid s.Sim_effect.kind;
            st.cas_result <- None;
            running := Some pid;
            Effect.Deep.continue cont ();
            running := None;
            st.last_access <- Some { a_pid = pid; a_step = s; a_cas_ok = st.cas_result }
        | Running -> failwith "Sim: scheduled a running process"
        | Finished -> failwith "Sim: scheduled a finished process");
        (match on_step with Some f -> f st pid | None -> ());
        loop pid
  in
  let saved_running = !running in
  let saved_vclock = !vclock in
  vclock := 0;
  Fun.protect
    ~finally:(fun () ->
      running := saved_running;
      vclock := saved_vclock)
    (fun () -> loop (p - 1));
  (* Fold still-open operations into the records so that executions the
     adversary cuts short (operations held forever at a pending C&S, as in
     the Section 3.1 construction) are still accounted for. *)
  Array.iter
    (function Some op -> st.records <- op :: st.records | None -> ())
    st.current_op;
  { steps = st.total_steps; per_proc = st.counters; ops = List.rev st.records }

(* Total essential steps across an execution, and the paper's bound
   candidate: sum over operations of (n(S) + c(S)).  EXP-1 checks that the
   ratio of the two stays below a fixed constant. *)
let total_essential (r : result) =
  List.fold_left (fun acc op -> acc + op.essential) 0 r.ops

let bound_sum (r : result) =
  List.fold_left (fun acc op -> acc + op.n_at_start + op.c_max) 0 r.ops
