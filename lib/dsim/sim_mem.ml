(* The simulator's shared memory: an implementation of [Lf_kernel.Mem.S]
   whose every operation is a deterministic scheduling point.

   Cells are plain mutable records - safe because the scheduler interleaves
   processes cooperatively on a single domain; atomicity of each access is
   guaranteed by the fact that a resumed process executes its pending action
   before any other process can run.

   Each cell carries a process-wide unique [id], announced with every
   [Step], so schedulers can see *which* cell a pending access will touch.
   The DPOR model checker's dependency analysis (lib/model) is built on
   exactly this: two pending steps commute unless they name the same id and
   one of them writes. *)

type 'a aref = { mutable v : 'a; id : int }

(* Monotone across the whole process: ids are compared only within one
   simulator run, where allocation order is deterministic. *)
let next_id = ref 0

let make v =
  incr next_id;
  { v; id = !next_id }

let unit_repr = Obj.repr ()

let get r =
  Effect.perform (Sim_effect.Step { kind = Read; loc = r.id; value = unit_repr });
  r.v

let cas r ~kind ~expect v' =
  Effect.perform
    (Sim_effect.Step { kind = Cas kind; loc = r.id; value = Obj.repr v' });
  if r.v == expect then begin
    r.v <- v';
    Effect.perform (Sim_effect.Note (Cas_ok kind));
    true
  end
  else begin
    Effect.perform (Sim_effect.Note (Cas_fail kind));
    false
  end

let set r v =
  Effect.perform
    (Sim_effect.Step { kind = Write; loc = r.id; value = Obj.repr v });
  r.v <- v

let event e = Effect.perform (Sim_effect.Note (Ev e))

let pause _n =
  Effect.perform (Sim_effect.Step { kind = Pause; loc = 0; value = unit_repr })

let stamp _ = 0
let annotate _ (_ : _ Lf_kernel.Protocol.annot) = ()
