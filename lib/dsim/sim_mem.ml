(* The simulator's shared memory: an implementation of [Lf_kernel.Mem.S]
   whose every operation is a deterministic scheduling point.

   Cells are plain mutable records - safe because the scheduler interleaves
   processes cooperatively on a single domain; atomicity of each access is
   guaranteed by the fact that a resumed process executes its pending action
   before any other process can run. *)

type 'a aref = { mutable v : 'a }

let make v = { v }

let get r =
  Effect.perform (Sim_effect.Step Read);
  r.v

let cas r ~kind ~expect v' =
  Effect.perform (Sim_effect.Step (Cas kind));
  if r.v == expect then begin
    r.v <- v';
    Effect.perform (Sim_effect.Note (Cas_ok kind));
    true
  end
  else begin
    Effect.perform (Sim_effect.Note (Cas_fail kind));
    false
  end

let set r v =
  Effect.perform (Sim_effect.Step Write);
  r.v <- v

let event e = Effect.perform (Sim_effect.Note (Ev e))
let pause _n = Effect.perform (Sim_effect.Step Pause)
let stamp _ = 0
let annotate _ (_ : _ Lf_kernel.Protocol.annot) = ()
