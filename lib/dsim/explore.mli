(** Context-bounded systematic schedule exploration (CHESS-style,
    Musuvathi & Qadeer): re-run a small scenario under {e every} schedule
    that uses at most a given number of preemptive context switches,
    checking an oracle after each run.

    The simulator is deterministic, so a schedule is fully described by the
    pids chosen at each scheduling decision; exploration is replay-based
    depth-first search over those choices.  Switching away from a process
    that could have continued costs one unit of preemption budget; switching
    away from a finished process is free.  This covers the small-preemption
    neighbourhood of every interleaving - empirically where almost all
    concurrency bugs live - at a cost of roughly
    [(decisions * procs) ^ preemptions] replays. *)

type outcome = {
  schedules_run : int;
  truncated : bool;
      (** stopped before exhausting the bounded schedule space: at
          [max_schedules], or because [max_failures] distinct failures were
          already recorded *)
  failures : (int list * string) list;
      (** forced-choice prefix reproducing each failure, plus its message.
          One entry per {e distinct} failing schedule: prefixes that replay
          to the same full decision trace are reported once. *)
}

val run_one :
  max_steps:int ->
  (unit -> (Sim.pid -> unit) array * (unit -> (unit, string) result)) ->
  int array ->
  (Sim.pid list * Sim.pid * Sim.pid) list * (unit, string) result
(** One replay of the scenario under a forced choice prefix; returns the
    decision trace [(runnable, chosen, previously running)] and the oracle's
    verdict.  Exposed so failures found by {!run} can be replayed. *)

val run :
  ?max_preemptions:int ->
  ?max_schedules:int ->
  ?max_steps:int ->
  ?max_failures:int ->
  (unit -> (Sim.pid -> unit) array * (unit -> (unit, string) result)) ->
  outcome
(** [run mk] calls [mk ()] once per schedule; it must return fresh process
    bodies over a fresh structure, plus the oracle to evaluate after the
    run (use [Sim.quiet] inside the oracle).  The scenario must be
    deterministic: replay correctness depends on identical prefixes
    producing identical runs, so draw any randomness from a generator
    seeded inside [mk] (not from a global stream such as the skip lists'
    height RNG - use [insert_with_height]).  Defaults: 2 preemptions,
    100_000 schedules, 1_000_000 steps per run, 10 recorded failures. *)

(** {1 Crash-bounded enumeration}

    Same replay-based DFS, but a scheduling decision may also be {e crash
    process p here} ({!Sim.crash}): p is never scheduled again and whatever
    flags/marks it published stay behind for the survivors' helping
    routines.  A crash consumes one unit of crash budget and no preemption
    budget.  With [max_preemptions = 0], [max_crashes = 1] and
    [crashable = [v]], this enumerates exactly "crash v at every point of
    the default schedule"; the budgets generalize to crashes under
    preemption and to multiple failures. *)

type choice = Run of Sim.pid | Crash of Sim.pid

val choice_to_string : choice -> string

type crash_outcome = {
  c_schedules_run : int;
  c_truncated : bool;  (** stopped at [max_schedules] before exhausting *)
  c_failures : (choice list * string) list;
      (** forced-choice prefix reproducing each failure, plus its message *)
}

val run_one_crash :
  max_steps:int ->
  (unit ->
  (Sim.pid -> unit) array * (crashed:Sim.pid list -> (unit, string) result)) ->
  choice array ->
  (Sim.pid list * choice * Sim.pid) list
  * Sim.pid list
  * (unit, string) result
(** One replay under a forced choice prefix (crashes apply only from the
    prefix; the default rule past it never crashes).  Returns the decision
    trace [(runnable, choice, previously running)], the crashed pids in
    crash order, and the oracle's verdict. *)

val run_crash :
  ?max_preemptions:int ->
  ?max_crashes:int ->
  ?crashable:Sim.pid list ->
  ?max_schedules:int ->
  ?max_steps:int ->
  ?max_failures:int ->
  (unit ->
  (Sim.pid -> unit) array * (crashed:Sim.pid list -> (unit, string) result)) ->
  crash_outcome
(** Like {!run}, with crash choices.  The oracle receives the pids crashed
    in this schedule, so it can require the survivors to have completed and
    treat the victims' operations as pending (helped to completion or never
    linearized; see DESIGN.md §8).  [crashable] defaults to every pid.
    Defaults: 0 preemptions, 1 crash, 100_000 schedules, 1_000_000 steps,
    10 recorded failures. *)
