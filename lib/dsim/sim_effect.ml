(* Effects shared between the simulator's memory and its scheduler.

   Every shared-memory access performs [Step] *before* executing its action:
   the scheduler captures the continuation there, so the set of pending
   [Step]s describes exactly what each process is about to do next - which is
   what scripted adversaries (e.g. the Section 3.1 construction) inspect to
   decide whom to run.  [Note]s are instantaneous annotations (cost-model
   events, operation boundaries); the scheduler resumes them immediately, so
   they are not scheduling points.

   A [Step] also carries its *dependency footprint*: the identity of the
   cell about to be touched ([loc], unique per [Sim_mem] cell; 0 for
   [Pause], which touches nothing) and, for stores, the physical identity
   of the value about to be written.  Two steps commute unless they touch
   the same cell and at least one writes; same-value blind stores (the
   backlink pattern, where every racing helper writes the same node) also
   commute.  This is what the DPOR model checker (lib/model) consumes. *)

type step_kind =
  | Read
  | Write
  | Cas of Lf_kernel.Mem_event.cas_kind
  | Pause

(* What a process is about to do: the action, the touched cell, and (for
   [Write]) the stored value's physical identity.  [value] is [Obj.repr ()]
   when there is nothing to store. *)
type step = { kind : step_kind; loc : int; value : Obj.t }

type note =
  | Ev of Lf_kernel.Mem_event.t
  | Cas_ok of Lf_kernel.Mem_event.cas_kind
  | Cas_fail of Lf_kernel.Mem_event.cas_kind
  | Op_begin of int  (* harness-supplied n(S): structure size at invocation *)
  | Op_end

type _ Effect.t +=
  | Step : step -> unit Effect.t
  | Note : note -> unit Effect.t

let step_kind_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Cas k -> Lf_kernel.Mem_event.cas_kind_to_string k
  | Pause -> "pause"
