(** Deterministic scheduler for processes whose shared-memory accesses go
    through {!Sim_mem}.

    A simulation runs an array of process bodies cooperatively: each
    scheduler iteration picks one process and resumes it, which executes
    exactly one pending shared-memory action (read / write / C&S / pause)
    plus the private computation up to its next one.  The run is a pure
    function of the policy (and its seed), which is what makes adversarial
    schedules constructible and every experiment replayable.

    The scheduler also keeps the books for the paper's Section 3.4 cost
    model: per-process {!Lf_kernel.Counters.t}, and per-{e operation} records
    carrying the essential-step count, the harness-supplied n(S), and the
    point contention c(S) observed while the operation ran. *)

type pid = int

(** Everything accounted for one operation (between {!op_begin} and
    {!op_end}). *)
type op_record = {
  op_pid : pid;
  op_index : int;  (** per-process sequence number, from 0 *)
  n_at_start : int;  (** n(S), supplied by the harness at [op_begin] *)
  mutable c_max : int;  (** c(S): max concurrent operations while active *)
  mutable essential : int;
      (** C&S attempts + backlink traversals + next/curr updates *)
  mutable op_cas_attempts : int;
  mutable op_backlinks : int;
  mutable op_next_updates : int;
  mutable op_curr_updates : int;
  mutable op_aux_steps : int;
  mutable op_reads : int;
  mutable completed : bool;
      (** [false] for operations still open when the run ended *)
}

type state
(** Opaque simulator state, inspectable by custom policies. *)

type policy =
  | Round_robin
  | Random of int  (** seeded uniform choice among runnable processes *)
  | Custom of (state -> pid option)
      (** full adversarial control; return [None] to stop the run *)

type result = {
  steps : int;  (** shared-memory actions executed *)
  per_proc : Lf_kernel.Counters.t array;
  ops : op_record list;
      (** completion order; unfinished operations appended at the end *)
}

(** {1 State inspection (for custom policies, tests and benches)} *)

val num_procs : state -> int
val is_finished : state -> pid -> bool

val pending_kind : state -> pid -> Sim_effect.step_kind option
(** What the process will do when next scheduled ([None] if it has not
    started or has finished). *)

val pending_access : state -> pid -> Sim_effect.step option
(** The full pending step, footprint included: which cell the process will
    touch when next scheduled and how.  [None] if the process has not
    started (its first slice runs only private code up to its first
    shared-memory access) or has finished.  This is the per-operation
    dependency information the DPOR model checker ([Lf_model]) schedules
    by. *)

val ops_completed : state -> pid -> int
val in_operation : state -> pid -> bool
val active_ops : state -> int
val counters : state -> pid -> Lf_kernel.Counters.t
val total_steps : state -> int

val runnable : state -> pid list
(** Unfinished, uncrashed processes, in pid order. *)

(** {1 Crashing (the paper's failure model)} *)

val crash : state -> pid -> unit
(** Permanently stop scheduling [pid]: its continuation is dropped
    mid-protocol, so whatever flags/marks it published stay in the
    structure for the survivors' helping routines.  Any operation it had
    open is folded into the result's records with [completed = false].
    Call from a policy or [on_step], between slices. *)

val is_crashed : state -> pid -> bool

val last_step : state -> (pid * Sim_effect.step_kind) option
(** The most recently executed shared-memory action (what an [on_step]
    callback is being notified about); [None] before the first action. *)

(** One executed shared-memory action with its dependency footprint.
    [a_cas_ok] is [Some outcome] for C&S steps - a failed C&S wrote
    nothing, so dependency analyses may treat it as a read - and [None]
    otherwise. *)
type access = {
  a_pid : pid;
  a_step : Sim_effect.step;
  a_cas_ok : bool option;
}

val last_access : state -> access option
(** Like {!last_step}, with the footprint and C&S outcome.  Not updated by
    launch slices (which execute no shared-memory action). *)

(** {1 Operation boundaries (called from process bodies)} *)

val op_begin : n:int -> unit
(** Open an operation; [n] is the structure size n(S) for the cost model. *)

val op_end : unit -> unit

val running_pid : unit -> pid option
(** The pid whose slice is executing right now, for observers living inside
    the simulated processes (checked memories attributing protocol events
    and races).  [None] outside any slice — in particular under {!quiet},
    whose accesses are setup/observation, not part of the execution. *)

val virtual_now : unit -> int
(** Virtual clock of the innermost running simulation: the number of
    shared-memory steps executed so far.  A pure function of the schedule,
    which is what makes simulator traces (the lf_obs recorder's timestamps)
    byte-identical across reruns of the same seed.  Reset to [0] at {!run}
    entry and restored around nested runs; reads [0] outside any run. *)

(** {1 Running} *)

exception Step_budget_exhausted of int

val quiet : (unit -> 'a) -> 'a
(** Run [f] with simulator-memory effects executed silently and immediately:
    no scheduling, no accounting.  This is how observers (invariant checkers
    inside [on_step], validators after {!run}, setup code) may touch
    structures built over {!Sim_mem} from outside a simulated process. *)

val run :
  ?policy:policy ->
  ?max_steps:int ->
  ?on_step:(state -> pid -> unit) ->
  (pid -> unit) array ->
  result
(** Run the processes to completion (or until a [Custom] policy stops, or
    [max_steps] is exceeded).  [on_step] is called after every executed
    shared-memory action - use {!quiet} inside it to inspect structures.
    @raise Step_budget_exhausted when [max_steps] (default 5*10^7) is hit. *)

(** {1 Cost-model aggregates (EXP-1)} *)

val total_essential : result -> int
(** Sum of essential steps over all operations. *)

val bound_sum : result -> int
(** The paper's bound candidate: sum over operations of (n(S) + c(S)). *)
