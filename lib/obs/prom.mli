(** Prometheus text-exposition snapshot of the recorder ([lf_*] counters,
    per-phase C&S failures, latency quantiles, ring occupancy/drops) and
    a character-level grammar validator for the format. *)

val snapshot : unit -> string
(** Render the recorder's current merged state.  Deterministic: fixed
    metric order, constructed label order. *)

type metric = {
  m_name : string;
  m_help : string;
  m_type : string;  (** "counter", "gauge" or "summary" *)
  m_samples : ((string * string) list * float) list;
      (** (labels, value) rows; label values are escaped on render *)
}

val render_metrics : metric list -> string
(** Render extra [# HELP]/[# TYPE] blocks in the same exposition format
    as {!snapshot}, so the concatenation of both passes {!validate}.
    Integral values render without an exponent.  Other layers (e.g. the
    shard router's per-shard counters) describe metrics as data and
    reuse this renderer rather than hand-rolling the format. *)

val validate : string -> (unit, string) result
(** Check exposition-format grammar: every line is blank, a
    [# HELP]/[# TYPE] comment, or [name{labels} value] with a legal
    metric name, well-formed labels, and a float-parseable value. *)
