(** Prometheus text-exposition snapshot of the recorder ([lf_*] counters,
    per-phase C&S failures, latency quantiles, ring occupancy/drops) and
    a character-level grammar validator for the format. *)

val snapshot : unit -> string
(** Render the recorder's current merged state.  Deterministic: fixed
    metric order, constructed label order. *)

val validate : string -> (unit, string) result
(** Check exposition-format grammar: every line is blank, a
    [# HELP]/[# TYPE] comment, or [name{labels} value] with a legal
    metric name, well-formed labels, and a float-parseable value. *)
