(** Vocabulary of the observability layer: the timestamped, lane-attributed
    events the per-domain ring buffers record — C&S attempts with outcomes
    (by Section 3.4 kind), the cost-model annotations structures emit
    through [Mem.S.event], and harness operation-span markers.  Plain reads
    and writes are tallied, not ringed (volume without protocol
    information). *)

type op = Insert | Delete | Find | Other

val op_to_string : op -> string

val op_index : op -> int
(** Dense index in [\[0, op_count)], for per-op histogram arrays. *)

val op_count : int

val ops : op list
(** Every [op], in [op_index] order. *)

type kind =
  | Cas of { cas : Lf_kernel.Mem_event.cas_kind; ok : bool }
  | Note of Lf_kernel.Mem_event.t
  | Span_begin of { op : op; key : int }
  | Span_end of { op : op; ok : bool }

type t = {
  ts : int;  (** clock units: ns on real memory, steps under the simulator *)
  dom : int;  (** recording domain (Chrome-trace pid) *)
  lane : int;  (** lane / simulated process (Chrome-trace tid) *)
  seq : int;  (** per-domain sequence number; breaks timestamp ties *)
  kind : kind;
}

val dummy : t
(** Placeholder for never-written ring slots. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
