(** The observability recorder: module-level state observed through
    {!Trace_mem}, recorded into per-domain structures (the [Counting_mem]
    DLS-plus-registry pattern) so the hot path never synchronizes, and
    merged at quiescence.

    Levels nest — each adds to the previous:
    - [Off]: every entry point returns after one word read; no allocation.
    - [Counters]: C&S and cost-model tallies, finished-operation counts.
      Recorder state is touched once per C&S / event / operation — never
      per read — which is what keeps this level within a few percent of
      off even on pointer-chasing searches (EXP-19 part A).
    - [Histograms]: read/write tallies, operation-span latencies,
      C&S-failure attribution to protocol phase and key.
    - [Tracing]: the timestamped event stream, in bounded per-domain rings
      (oldest overwritten, drops counted).

    Configure ({!set_level}, {!set_clock}, {!set_ring_capacity}) before
    spawning worker domains; collect ({!tallies}, {!latencies}, {!events},
    {!profile_report}) after joining them. *)

type level = Off | Counters | Histograms | Tracing

val set_level : level -> unit
val level : unit -> level
val enabled : unit -> bool
val level_to_string : level -> string
val level_of_string : string -> level option

type clock =
  | Real  (** wall clock, nanoseconds *)
  | Sim_steps  (** {!Lf_dsim.Sim.virtual_now}: deterministic virtual time *)
  | Manual of (unit -> int)

val set_clock : clock -> unit
val now : unit -> int

val set_ring_capacity : int -> unit
(** Capacity of per-domain event rings created afterwards (default 65536);
    {!reset} re-creates existing rings at the current capacity.
    @raise Invalid_argument if not positive. *)

val reset : unit -> unit
(** Clear every registered domain's tallies, histograms, profile, and
    ring.  Call at quiescence between measured runs. *)

(** {1 Hot path} — called by {!Trace_mem} and the harnesses *)

val on_read : unit -> unit
val on_write : unit -> unit
val on_cas : Lf_kernel.Mem_event.cas_kind -> bool -> unit
val on_event : Lf_kernel.Mem_event.t -> unit

val span_begin : op:Obs_event.op -> key:int -> unit
(** Open an operation span for the current lane (overwrites any span the
    lane left open).  No-op below [Histograms]. *)

val span_end : op:Obs_event.op -> ok:bool -> unit
(** Close the current lane's span: counts the operation, records its
    latency into the per-op histogram. *)

(** {1 Collection} — merge the per-domain states; quiescence only *)

val tallies : unit -> Lf_kernel.Counters.t
val ops_counts : unit -> (Obs_event.op * int) list
val latency : Obs_event.op -> Hist.t
val latencies : unit -> (Obs_event.op * Hist.t) list
val profile : unit -> Profile.t
val profile_report : ?top:int -> unit -> Profile.report

val events : unit -> Obs_event.t list
(** Every retained event, merged across domains and sorted by
    [(ts, dom, seq)] — a deterministic total order under the simulator
    clock. *)

val event_count : unit -> int
val dropped : unit -> int
(** Events lost to ring overwrites since the last {!reset}. *)
