(* Multi-window burn rates over a ring of fixed-width tick buckets.
   One mutex guards the ring: observations are once per completed
   request (cold relative to the span path), queries are operator
   reads. *)

type bucket = { mutable b_start : int; mutable b_good : int; mutable b_bad : int }

type t = {
  tgt : float;
  bucket_w : int;
  buckets : bucket array;
  wins : int list;  (* ascending *)
  fast_threshold : float;
  mu : Mutex.t;
}

let create ?(fast_threshold = 10.0) ~target ~bucket ~windows () =
  if target <= 0.0 || target >= 1.0 then
    invalid_arg "Slo.create: target must be in (0, 1)";
  if bucket <= 0 then invalid_arg "Slo.create: bucket must be > 0";
  if windows = [] then invalid_arg "Slo.create: no windows";
  if List.exists (fun w -> w < bucket) windows then
    invalid_arg "Slo.create: window smaller than bucket";
  let wins = List.sort_uniq Int.compare windows in
  let max_w = List.fold_left max 0 wins in
  (* +2: one for the partially-filled current bucket, one for rounding. *)
  let n = (max_w / bucket) + 2 in
  {
    tgt = target;
    bucket_w = bucket;
    buckets = Array.init n (fun _ -> { b_start = min_int; b_good = 0; b_bad = 0 });
    wins;
    fast_threshold;
    mu = Mutex.create ();
  }

let target t = t.tgt
let windows t = t.wins

let bucket_for t ~now =
  let start = now / t.bucket_w * t.bucket_w in
  let b = t.buckets.((now / t.bucket_w) mod Array.length t.buckets) in
  if b.b_start <> start then begin
    b.b_start <- start;
    b.b_good <- 0;
    b.b_bad <- 0
  end;
  b

let observe t ~now ~good =
  Mutex.lock t.mu;
  let b = bucket_for t ~now in
  if good then b.b_good <- b.b_good + 1 else b.b_bad <- b.b_bad + 1;
  Mutex.unlock t.mu

let totals_locked t ~now ~window =
  let lo = now - window in
  Array.fold_left
    (fun (g, b) bk ->
      if bk.b_start > lo - t.bucket_w && bk.b_start <= now then
        (g + bk.b_good, b + bk.b_bad)
      else (g, b))
    (0, 0) t.buckets

let totals t ~now ~window =
  Mutex.lock t.mu;
  let r = totals_locked t ~now ~window in
  Mutex.unlock t.mu;
  r

let burn_of t (good, bad) =
  let total = good + bad in
  if total = 0 then 0.0
  else float_of_int bad /. float_of_int total /. (1.0 -. t.tgt)

let burn_rate t ~now ~window = burn_of t (totals t ~now ~window)

let fast_burn t ~now =
  burn_rate t ~now ~window:(List.hd t.wins) >= t.fast_threshold

let line t ~now =
  Mutex.lock t.mu;
  let per =
    List.map
      (fun w ->
        let (g, b) as gb = totals_locked t ~now ~window:w in
        Printf.sprintf "w%d:burn=%.2f:good=%d:bad=%d" w (burn_of t gb) g b)
      t.wins
  in
  let fast =
    burn_of t (totals_locked t ~now ~window:(List.hd t.wins))
    >= t.fast_threshold
  in
  Mutex.unlock t.mu;
  Printf.sprintf "SLO target=%g fast_burn=%b %s" t.tgt fast
    (String.concat " " per)
