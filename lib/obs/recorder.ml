(* The observability recorder: module-level, like [Check_mem]'s tables and
   [Fault_mem]'s installed plan, so one [Trace_mem.Make (M)] instantiation
   observes every structure stacked on it without threading state through
   the functors.

   Hot-path discipline.  Every recording entry point first reads the level
   word; at [Off] it returns immediately — no domain-local lookup, no
   allocation (the overhead smoke test in test_obs checks this with
   [Gc.minor_words]).  Above [Off], each domain records into its own
   [dstate] obtained via [Domain.DLS] and registered in a lock-free list
   (the [Counting_mem] pattern), so recording never synchronizes with
   other domains.  Collection ([tallies], [latencies], [events], ...)
   merges the registry and is only meaningful at quiescence, after worker
   domains have been joined.

   Levels nest: [Counters] tallies accesses and finished operations;
   [Histograms] additionally times operation spans and attributes failed
   C&S to phase and key; [Tracing] additionally records the event stream
   into per-domain bounded rings (oldest events overwritten, drops
   counted).

   Lanes vs domains: under the deterministic simulator many simulated
   processes share one domain, so the per-domain span state is a small
   table keyed by lane ([Sim.running_pid], falling back to
   [Lf_kernel.Lane] on real domains) — the same identification
   [Fault_mem] uses. *)

module Ev = Lf_kernel.Mem_event
module C = Lf_kernel.Counters

type level = Off | Counters | Histograms | Tracing

let rank = function Off -> 0 | Counters -> 1 | Histograms -> 2 | Tracing -> 3

let level_to_string = function
  | Off -> "off"
  | Counters -> "counters"
  | Histograms -> "histograms"
  | Tracing -> "tracing"

let level_of_string = function
  | "off" -> Some Off
  | "counters" -> Some Counters
  | "histograms" -> Some Histograms
  | "tracing" -> Some Tracing
  | _ -> None

(* The level as an int: the single word the hot path reads first. *)
let lvl = ref 0
let set_level l = lvl := rank l

let level () =
  match !lvl with 0 -> Off | 1 -> Counters | 2 -> Histograms | _ -> Tracing

let enabled () = !lvl > 0

type clock = Real | Sim_steps | Manual of (unit -> int)

let real_now () = int_of_float (Unix.gettimeofday () *. 1e9)
let now_fn = ref real_now

let set_clock = function
  | Real -> now_fn := real_now
  | Sim_steps -> now_fn := Lf_dsim.Sim.virtual_now
  | Manual f -> now_fn := f

let now () = !now_fn ()

let default_ring_capacity = 65536
let ring_capacity = ref default_ring_capacity

let set_ring_capacity n =
  if n <= 0 then invalid_arg "Recorder.set_ring_capacity: capacity must be > 0";
  ring_capacity := n

(* ------------------------------------------------------------------ *)
(* Per-domain state *)

type span = { sp_op : Obs_event.op; sp_key : int; sp_start : int }

type dstate = {
  dom : int;
  tally : C.t;  (* access/cost-model tallies: the existing vocabulary *)
  ops_tally : int array;  (* finished operations, by Obs_event.op_index *)
  hist : Hist.t array;  (* span latencies, by Obs_event.op_index *)
  profile : Profile.t;
  mutable ring : Obs_event.t Ring.t;
  spans : (int, span) Hashtbl.t;  (* lane -> open operation span *)
  mutable seq : int;  (* per-domain event sequence; breaks ts ties *)
}

let registry : dstate list Atomic.t = Atomic.make []

let make_dstate () =
  {
    dom = (Domain.self () :> int);
    tally = C.create ();
    ops_tally = Array.make Obs_event.op_count 0;
    hist = Array.init Obs_event.op_count (fun _ -> Hist.create ());
    profile = Profile.create ();
    ring = Ring.create ~capacity:!ring_capacity Obs_event.dummy;
    spans = Hashtbl.create 8;
    seq = 0;
  }

let register st =
  let rec add () =
    let old = Atomic.get registry in
    if not (Atomic.compare_and_set registry old (st :: old)) then add ()
  in
  add ()

let key =
  Domain.DLS.new_key (fun () ->
      let st = make_dstate () in
      register st;
      st)

let local () = Domain.DLS.get key

let lane () =
  match Lf_dsim.Sim.running_pid () with
  | Some p -> p
  | None -> Lf_kernel.Lane.get ()

let reset () =
  List.iter
    (fun st ->
      C.reset st.tally;
      Array.fill st.ops_tally 0 Obs_event.op_count 0;
      Array.iter Hist.clear st.hist;
      Profile.clear st.profile;
      st.ring <- Ring.create ~capacity:!ring_capacity Obs_event.dummy;
      Hashtbl.reset st.spans;
      st.seq <- 0)
    (Atomic.get registry)

(* ------------------------------------------------------------------ *)
(* Hot path *)

let push st kind =
  let s = st.seq in
  st.seq <- s + 1;
  Ring.push st.ring
    { Obs_event.ts = now (); dom = st.dom; lane = lane (); seq = s; kind }

(* Reads and writes are the one per-access cost that scales with traversal
   length: on a pointer-chasing search they outnumber C&S by orders of
   magnitude, and tallying each one (DLS lookup + store) costs more than
   the traversal step it observes.  So they are tallied only from
   [Histograms] up; the [Counters] level touches recorder state once per
   C&S / cost-model event / finished operation, which is what keeps it
   within a few percent of off (EXP-19 part A).  Exact read counts at
   minimal cost remain [Counting_mem]'s job. *)
let on_read () =
  if !lvl < 2 then ()
  else
    let st = local () in
    st.tally.C.reads <- st.tally.C.reads + 1

let on_write () =
  if !lvl < 2 then ()
  else
    let st = local () in
    st.tally.C.writes <- st.tally.C.writes + 1

let on_cas kind ok =
  (* Request-span attribution rides on the span layer's own level, so a
     serve process tracing requests sees C&S failures inside the owning
     request even with the recorder off.  [Span.note_cas_fail] reads one
     level word and returns when spans are off, keeping this path
     allocation-free at both Offs. *)
  if not ok then Span.note_cas_fail ~now kind;
  if !lvl = 0 then ()
  else begin
    let st = local () in
    C.record_cas_attempt st.tally kind;
    if ok then C.record_cas_success st.tally kind
    else if !lvl >= 2 then begin
      (* Attribute the lost C&S to the operation that suffered it. *)
      let key =
        match Hashtbl.find_opt st.spans (lane ()) with
        | Some sp -> sp.sp_key
        | None -> Profile.no_key
      in
      Profile.record st.profile ~key kind
    end;
    if !lvl >= 3 then push st (Obs_event.Cas { cas = kind; ok })
  end

(* Same per-access-volume reasoning for the cost-model notes: the pointer
   and backlink traversal steps fire once per node visited, so they are
   tallied from [Histograms] up, while the once-per-incident notes
   (retries, helping entries, user marks) are cheap enough for
   [Counters]. *)
let on_event (e : Lf_kernel.Mem_event.t) =
  if !lvl = 0 then ()
  else begin
    let per_step =
      match e with
      | Backlink_step | Next_update | Curr_update | Aux_step -> true
      | Retry | Help | User _ -> false
    in
    if (not per_step) || !lvl >= 2 then begin
      let st = local () in
      C.record st.tally e;
      if !lvl >= 3 then push st (Obs_event.Note e)
    end
  end

let span_begin ~op ~key =
  (* Mirror the operation as a structure-op span inside the owning
     request's tree (no-op unless request tracing is at [Spans] and the
     executing lane registered a context via [Span.with_current]). *)
  Span.op_begin ~name:(Obs_event.op_to_string op) ~key ~now;
  if !lvl < 2 then ()
  else begin
    let st = local () in
    Hashtbl.replace st.spans (lane ())
      { sp_op = op; sp_key = key; sp_start = now () };
    if !lvl >= 3 then push st (Obs_event.Span_begin { op; key })
  end

let span_end ~op ~ok =
  Span.op_end ~ok ~now;
  if !lvl = 0 then ()
  else begin
    let st = local () in
    let i = Obs_event.op_index op in
    st.ops_tally.(i) <- st.ops_tally.(i) + 1;
    if !lvl >= 2 then begin
      let ln = lane () in
      (match Hashtbl.find_opt st.spans ln with
      | Some sp ->
          Hashtbl.remove st.spans ln;
          Hist.add st.hist.(i) (now () - sp.sp_start)
      | None -> ());
      if !lvl >= 3 then push st (Obs_event.Span_end { op; ok })
    end
  end

(* ------------------------------------------------------------------ *)
(* Collection (at quiescence) *)

let states () = Atomic.get registry

let tallies () =
  let total = C.create () in
  List.iter (fun st -> C.add_into ~into:total st.tally) (states ());
  total

let ops_counts () =
  let out = Array.make Obs_event.op_count 0 in
  List.iter
    (fun st ->
      Array.iteri (fun i v -> out.(i) <- out.(i) + v) st.ops_tally)
    (states ());
  List.map (fun op -> (op, out.(Obs_event.op_index op))) Obs_event.ops

let latency op =
  let i = Obs_event.op_index op in
  let h = Hist.create () in
  List.iter (fun st -> Hist.merge_into ~into:h st.hist.(i)) (states ());
  h

let latencies () = List.map (fun op -> (op, latency op)) Obs_event.ops

let profile () =
  let p = Profile.create () in
  List.iter (fun st -> Profile.merge_into ~into:p st.profile) (states ());
  p

let profile_report ?top () = Profile.report ?top (profile ())

let dropped () =
  List.fold_left (fun acc st -> acc + Ring.dropped st.ring) 0 (states ())

let events () =
  let all =
    List.concat_map (fun st -> Ring.to_list st.ring) (states ())
  in
  List.stable_sort
    (fun (a : Obs_event.t) (b : Obs_event.t) ->
      match Int.compare a.ts b.ts with
      | 0 -> (
          match Int.compare a.dom b.dom with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
      | c -> c)
    all

let event_count () =
  List.fold_left (fun acc st -> acc + Ring.length st.ring) 0 (states ())
