(** Log-bucketed (HDR-style) histogram of non-negative integers (latency in
    ns, or simulator steps).  Unit buckets below 2{^sub_bits}, then
    2{^sub_bits} sub-buckets per power-of-two octave: relative quantization
    error is bounded by 6.25% at every magnitude — tightened to 0.78% (128
    sub-buckets per octave) from the ~1 ms octave upward, where GC pauses
    land and extreme-tail quantiles must stay distinguishable.  Recording
    allocates nothing; one histogram per domain-local recorder state,
    merged at collection time. *)

type t

val create : unit -> t
val clear : t -> unit

val add : t -> int -> unit
(** Record one sample (negatives clamp to 0).  O(1), allocation-free. *)

val count : t -> int
val sum : t -> int
val mean : t -> float
val min_value : t -> int
val max_value : t -> int

val merge_into : into:t -> t -> unit
(** Bucket-wise addition: merging per-domain histograms then reading
    percentiles equals recording everything into one histogram. *)

val copy : t -> t

val percentile : t -> float -> float
(** Representative (bucket-midpoint) value at quantile [p] in [\[0, 1\]];
    exact [max] for the tail bucket.
    @raise Invalid_argument on an empty histogram. *)

val iter_buckets : t -> (low:int -> high:int -> count:int -> unit) -> unit
(** Non-empty buckets in increasing order; [high] is exclusive.  (The
    Prometheus exporter's iteration.) *)

val weighted : t -> (float * int) array
(** Non-empty (bucket midpoint, count) pairs — the histogram-friendly
    input of [Lf_kernel.Stats.of_weighted]. *)

val summary : t -> Lf_kernel.Stats.summary

val p9999 : t -> float
(** [percentile t 0.9999]: the extreme-tail quantile EXP-22 tracks.
    @raise Invalid_argument on an empty histogram. *)

val pp : Format.formatter -> t -> unit

(**/**)

val index_of : int -> int
val bucket_low : int -> int
val bucket_high : int -> int
