(* GC attribution: where the tail latency goes.

   EXP-19 showed a p999/p99 cliff of ~170x on the real-memory workload
   runner; the hypothesis (confirmed by EXP-22) is that the spikes are
   minor-collection pauses caused by per-attempt descriptor allocation in
   the C&S retry loops.  This module turns [Gc.quick_stat] — which reads
   mutator-local counters and does not itself trigger a collection — into
   attribution numbers the benches and exporters can emit next to the
   latency histograms: collections and allocated/promoted words per
   measured window, so a latency regression can be blamed on (or cleared
   of) allocation pressure in one read.

   Everything here is process-global: OCaml's GC counters are per-runtime,
   not per-domain, so attribution windows are meaningful for single-domain
   measured sections (how EXP-22 runs) and are upper bounds otherwise. *)

type snap = {
  minor_collections : int;
  major_collections : int;
  minor_words : float;  (** words allocated on the minor heap *)
  promoted_words : float;  (** words that survived into the major heap *)
}

let zero =
  {
    minor_collections = 0;
    major_collections = 0;
    minor_words = 0.;
    promoted_words = 0.;
  }

let totals () =
  let s = Gc.quick_stat () in
  {
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    (* Not [s.minor_words]: on OCaml 5 [quick_stat]'s word counts only
       advance at collection boundaries, quantizing window deltas to whole
       minor heaps (2^18 words) — useless for per-op attribution.
       [Gc.minor_words ()] reads the live allocation pointer. *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
  }

let diff ~(before : snap) (after : snap) =
  {
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
  }

(* Stateful window: deltas since the previous [window] call (process start
   for the first).  One global window is enough for the benches, which
   measure one section at a time. *)
let window_base = ref zero

let window () =
  let now = totals () in
  let d = diff ~before:!window_base now in
  window_base := now;
  d

let reset_window () = window_base := totals ()

let pp ppf s =
  Format.fprintf ppf "minor=%d major=%d minor_words=%.0f promoted=%.0f"
    s.minor_collections s.major_collections s.minor_words s.promoted_words
