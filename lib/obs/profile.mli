(** Contention profiler: attributes C&S failures to protocol phase — the
    paper's TRYFLAG ([flag]) / TRYMARK ([mark]) / HELPMARKED ([unlink]) /
    INSERT ([insert]) steps, straight from the {!Lf_kernel.Mem_event.cas_kind}
    classification — and to the key of the operation span that suffered
    them.  One [t] per domain-local recorder state; merge, then rank. *)

type t

val create : unit -> t
val clear : t -> unit

val no_key : int
(** Sentinel for "no operation span open": counts toward phase totals
    only. *)

val record : t -> key:int -> Lf_kernel.Mem_event.cas_kind -> unit
(** Record one {e failed} C&S.  O(1). *)

val total : t -> int
val merge_into : into:t -> t -> unit

val phase_name : int -> string
val phase_index : Lf_kernel.Mem_event.cas_kind -> int

val by_group : group:(int -> string) -> t -> (string * int) list
(** Keyed C&S failures aggregated by [group key] — e.g. the owning
    shard — most-contended group first, name ties alphabetical.
    Unkeyed failures are excluded (they cannot be attributed). *)

type hot_key = {
  hk_key : int;
  hk_fails : int;
  hk_phase : string;  (** the phase contributing most of this key's failures *)
}

type report = {
  r_total : int;
  r_by_phase : (string * int) list;  (** nonzero, most-contended first *)
  r_hot_keys : hot_key list;  (** most-contended first, truncated to [top] *)
}

val report : ?top:int -> t -> report
(** Ranked contention report; ties rank by key for determinism.  [top]
    (default 10) bounds [r_hot_keys]. *)

val pp_report : Format.formatter -> report -> unit
