(** Request-scoped causal tracing: span trees with explicit context
    propagation.

    A {e span} is a named interval of one request's journey through the
    serve → router → shard pipeline (an admission decision, a retry
    attempt, a hedge, a structure operation), carrying typed events.
    Spans form a tree per request rooted at the span {!root} creates;
    the tree's trace id is the root's span id.  Context is propagated
    {e explicitly}: the serve layer creates a root {!ctx}, threads it
    through [Svc.call ?ctx] / [Router.call ?ctx], and each layer opens
    children with {!begin_} — there is no ambient request context.  The
    one implicit hop is C&S-failure attribution: {!with_current}
    registers the executing attempt for the current lane so the
    recorder's [on_cas] hook can land {!note_cas_fail} events inside the
    owning request span without the structures knowing about requests.

    Levels mirror the recorder's discipline: every entry point reads a
    single level word first, and at [Off] returns a constant — no
    domain-local lookup, no allocation (the no-hot-alloc rule; exp24
    part A prices it).  [Counters] tallies spans and events without
    materializing them; [Spans] builds the trees.  Ticks come from
    whatever clock the caller reads — the [Clock] seam in the service
    layer, the recorder clock for structure ops — so under the
    simulator or a manual clock a run's span dump is byte-identical
    across executions.

    Completed trees feed two consumers: a bounded per-domain flight ring
    ({!trees}, dumped by [Flight] on anomalies) and the tail-based
    exemplar table ({!exemplars}: per latency bucket, the trace id of
    the worst recent request — exported as Prometheus exemplars on
    [lf_latency]). *)

type level = Off | Counters | Spans

val set_level : level -> unit
val level : unit -> level
val level_to_string : level -> string
val level_of_string : string -> level option

val enabled : unit -> bool
(** [level () > Off]. *)

val spans_on : unit -> bool
(** [level () = Spans]: trees are being materialized. *)

(** Typed span events: the pipeline-decision vocabulary. *)
type event =
  | Deadline_check of bool  (** [true] = expired *)
  | Shed_verdict of string
  | Breaker_verdict of string
  | Degrade_mode of string
  | Retry_wait of { attempt : int; delay : int }
  | Budget_denied
  | Hedge_outcome of string
  | Drain_wait of int  (** rebalance waited for this key's inflight ops *)
  | Key of int  (** the key a structure-op span works on *)
  | Cas_fail of Lf_kernel.Mem_event.cas_kind
  | Note of string

val event_strings : event -> string * string
(** [(kind, argument)] rendering used by dumps; stable. *)

type span = private {
  s_trace : int;
  s_id : int;
  s_parent : int;  (** 0 for the root *)
  s_name : string;
  s_begin : int;
  mutable s_end : int;  (** -1 while open *)
  mutable s_ok : bool;
  mutable s_events : (int * event) list;  (** newest first *)
}

type tree

type ctx
(** A handle to an open span (or a no-op sentinel below [Spans]).
    Values are immutable; propagation is by argument passing. *)

val nil : ctx
(** The inert context: every operation on it is a no-op.  [?ctx]
    parameters default to it, which is what keeps the off path
    allocation-free. *)

val active : ctx -> bool
(** [false] only for {!nil}: guard event-payload construction with this
    so the off path allocates nothing. *)

val trace_id : ctx -> int
(** The owning trace id; 0 unless the context carries a materialized
    span. *)

val root : name:string -> now:int -> ctx
(** Open a new trace (one per request).  Returns {!nil} at [Off], a
    tally-only context at [Counters]. *)

val begin_ : ctx -> name:string -> now:int -> ctx
(** Open a child span under [ctx].  On {!nil}, returns {!nil}. *)

val end_ : ctx -> now:int -> ok:bool -> unit
(** Close the span.  Closing a root completes its tree: the tree enters
    the flight ring and its root latency the exemplar table.  Every
    [begin_] must be paired with an [end_] on all exits (the
    [no-orphan-span] lint). *)

val event : ctx -> now:int -> event -> unit

val with_current : ctx -> (unit -> 'a) -> 'a
(** Run [f] with [ctx] registered as the current lane's executing span,
    restoring the previous registration on all exits — the attribution
    seam {!note_cas_fail} and the recorder's op-span hooks use. *)

val note_cas_fail : now:(unit -> int) -> Lf_kernel.Mem_event.cas_kind -> unit
(** Attribute one failed C&S to the current lane's span, if any.  [now]
    is a function so the clock is only read when an event is actually
    recorded. *)

val op_begin : name:string -> key:int -> now:(unit -> int) -> unit
(** Recorder hook: open a structure-operation span under the current
    lane's registered context (no-op without one).  Paired with
    {!op_end}; the pair is what places [Trace_mem]'s per-op view inside
    the owning request span. *)

val op_end : ok:bool -> now:(unit -> int) -> unit

(** {1 Trees (collection at quiescence)} *)

val tree_trace : tree -> int
val tree_root : tree -> span

val tree_spans : tree -> span list
(** Root first, then completed descendants sorted by [(s_begin, s_id)] —
    a deterministic order. *)

val span_events : span -> (int * event) list
(** Oldest first. *)

val span_duration : span -> int

val dominant_phase : tree -> string
(** The span name with the largest summed {e self} time (duration minus
    direct children) over the tree's completed non-root spans; the
    root's name if there are none.  Ties break lexicographically. *)

val well_formed : tree -> (unit, string) result
(** Checks the causal-tree discipline: unique span ids, every non-root
    span's parent present, children open after their parent opens and
    close before it closes, no span from a foreign trace. *)

val trees : unit -> tree list
(** Completed trees retained in the per-domain flight rings, sorted by
    trace id.  Meaningful at quiescence. *)

val find_trace : int -> tree option

type counts = {
  roots : int;
  spans : int;  (** non-root spans opened *)
  events : int;
  completed : int;  (** trees completed *)
  cas_attributed : int;  (** failed C&S landed in request spans *)
}

val counts : unit -> counts

val set_flight_capacity : int -> unit
(** Per-domain completed-tree ring capacity (default 256); applies to
    rings created after the call (and to all after {!reset}).
    @raise Invalid_argument if [<= 0]. *)

val reset : unit -> unit
(** Clear every domain's rings, tallies, registrations and id counters,
    and the exemplar table.  Callers must be quiescent. *)

(** {1 Tail-based exemplars} *)

type exemplar = {
  ex_le : int;  (** inclusive upper latency bound of the bucket *)
  ex_count : int;  (** completed requests that landed in the bucket *)
  ex_trace : int;  (** trace id of the worst recent request in it *)
  ex_latency : int;
  ex_tick : int;  (** completion tick of that request *)
}

val exemplars : unit -> exemplar list
(** Non-empty latency buckets in ascending bound order, each carrying
    the trace id of its worst recent request. *)

val latency_totals : unit -> int * int
(** [(sum, count)] of completed-root latencies — the histogram's
    [_sum] / [_count] pair. *)
