(** Minimal JSON reader used by the exporter checkers and the tests —
    parse what the string-builder writers emit, without a dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_string_opt : t -> string option
val to_num_opt : t -> float option
val to_list_opt : t -> t list option
