(* A minimal JSON reader, enough to validate what the exporters emit.

   The repo's JSON *writers* (bench_json, the Chrome exporter) are string
   builders; the tests and [lfdict trace --check] need the other
   direction — parse what was written and walk it — without adding a
   dependency.  Standard recursive descent over a string; numbers become
   [float]s; [\uXXXX] escapes decode to UTF-8 (surrogate pairs
   combined). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let utf8_add buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else fail "unpaired surrogate"
                end
                else cp
              in
              utf8_add buf cp
          | _ -> fail "bad escape");
          go ())
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let got = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            got := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !got then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_num_opt = function Num f -> Some f | _ -> None
let to_list_opt = function Arr l -> Some l | _ -> None
