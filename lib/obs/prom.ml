(* Prometheus text-exposition snapshot of the recorder, plus a grammar
   validator for it.

   [snapshot ()] renders whatever the recorder currently holds — tallies
   at [Counters] and above, latency quantiles and contention counts at
   [Histograms] and above — as `# HELP` / `# TYPE` blocks and
   `name{labels} value` samples, the format any Prometheus-compatible
   scraper ingests.  Deterministic: metrics in fixed order, label sets
   sorted by construction.

   [validate] is a character-level check of the exposition grammar
   (metric-name charset, label syntax, float-parseable values), used by
   the tests and `lfdict metrics --check` so the exporter cannot drift
   from what a scraper accepts. *)

module C = Lf_kernel.Counters

let escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let header buf name help typ =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)

let sample buf name labels value =
  (match labels with
  | [] -> Buffer.add_string buf name
  | ls ->
      Buffer.add_string buf name;
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label v);
          Buffer.add_char buf '"')
        ls;
      Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let int_sample buf name labels v = sample buf name labels (string_of_int v)

let float_sample buf name labels v =
  sample buf name labels (Printf.sprintf "%.6g" v)

let quantiles = [ 0.5; 0.9; 0.99; 0.999; 0.9999 ]

let snapshot () =
  let buf = Buffer.create 2048 in
  let tally = Recorder.tallies () in
  header buf "lf_reads_total" "Shared-memory reads observed at the Mem.S seam"
    "counter";
  int_sample buf "lf_reads_total" [] tally.C.reads;
  header buf "lf_writes_total" "Shared-memory writes observed at the Mem.S seam"
    "counter";
  int_sample buf "lf_writes_total" [] tally.C.writes;
  header buf "lf_cas_attempts_total" "C&S attempts by protocol phase" "counter";
  List.iter
    (fun k ->
      int_sample buf "lf_cas_attempts_total"
        [ ("phase", Profile.phase_name (Profile.phase_index k)) ]
        tally.C.cas_attempts.(C.kind_index k))
    C.cas_kinds;
  header buf "lf_cas_failures_total" "Failed C&S by protocol phase" "counter";
  List.iter
    (fun k ->
      let i = C.kind_index k in
      int_sample buf "lf_cas_failures_total"
        [ ("phase", Profile.phase_name (Profile.phase_index k)) ]
        (tally.C.cas_attempts.(i) - tally.C.cas_successes.(i)))
    C.cas_kinds;
  header buf "lf_cost_model_steps_total"
    "Cost-model events (backlink traversals, pointer updates, retries, helps)"
    "counter";
  List.iter
    (fun (kind, v) ->
      int_sample buf "lf_cost_model_steps_total" [ ("kind", kind) ] v)
    [
      ("backlink", tally.C.backlink_steps);
      ("next_update", tally.C.next_updates);
      ("curr_update", tally.C.curr_updates);
      ("aux", tally.C.aux_steps);
      ("retry", tally.C.retries);
      ("help", tally.C.helps);
    ];
  header buf "lf_ops_total" "Finished dictionary operations by type" "counter";
  List.iter
    (fun (op, n) ->
      int_sample buf "lf_ops_total" [ ("op", Obs_event.op_to_string op) ] n)
    (Recorder.ops_counts ());
  header buf "lf_op_latency" "Operation latency quantiles (recorder clock units)"
    "summary";
  List.iter
    (fun (op, h) ->
      let op_l = ("op", Obs_event.op_to_string op) in
      if Hist.count h > 0 then
        List.iter
          (fun q ->
            float_sample buf "lf_op_latency"
              [ op_l; ("quantile", Printf.sprintf "%g" q) ]
              (Hist.percentile h q))
          quantiles;
      int_sample buf "lf_op_latency_sum" [ op_l ] (Hist.sum h);
      int_sample buf "lf_op_latency_count" [ op_l ] (Hist.count h))
    (Recorder.latencies ());
  (* Request latency histogram with tail-based exemplars: cumulative
     buckets from the span layer's exemplar table, each bucket carrying
     the trace id of its worst recent request (OpenMetrics exemplar
     syntax, accepted by [validate]). *)
  header buf "lf_latency"
    "Request latency histogram with trace-id exemplars (clock ticks)"
    "histogram";
  let cum = ref 0 in
  List.iter
    (fun (x : Span.exemplar) ->
      cum := !cum + x.Span.ex_count;
      Buffer.add_string buf
        (Printf.sprintf
           "lf_latency_bucket{le=\"%d\"} %d # {trace_id=\"%d\"} %d\n"
           x.Span.ex_le !cum x.Span.ex_trace x.Span.ex_latency))
    (Span.exemplars ());
  let lat_sum, lat_count = Span.latency_totals () in
  int_sample buf "lf_latency_bucket" [ ("le", "+Inf") ] lat_count;
  int_sample buf "lf_latency_sum" [] lat_sum;
  int_sample buf "lf_latency_count" [] lat_count;
  header buf "lf_trace_events" "Trace events retained in the ring buffers"
    "gauge";
  int_sample buf "lf_trace_events" [] (Recorder.event_count ());
  header buf "lf_trace_dropped_total"
    "Trace events lost to ring-buffer overwrites" "counter";
  int_sample buf "lf_trace_dropped_total" [] (Recorder.dropped ());
  (* GC attribution: process-lifetime runtime counters, independent of the
     recorder level, so a scrape can always correlate a latency spike with
     collection activity (EXP-22). *)
  let gc = Gc_attr.totals () in
  header buf "lf_gc_minor_collections_total" "Minor GC collections" "counter";
  int_sample buf "lf_gc_minor_collections_total" [] gc.Gc_attr.minor_collections;
  header buf "lf_gc_major_collections_total" "Major GC collections" "counter";
  int_sample buf "lf_gc_major_collections_total" [] gc.Gc_attr.major_collections;
  header buf "lf_gc_minor_words_total" "Words allocated on the minor heap"
    "counter";
  float_sample buf "lf_gc_minor_words_total" [] gc.Gc_attr.minor_words;
  header buf "lf_gc_promoted_words_total"
    "Words promoted from the minor to the major heap" "counter";
  float_sample buf "lf_gc_promoted_words_total" [] gc.Gc_attr.promoted_words;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Custom metric blocks: other layers (the shard router's per-shard
   counters, say) describe metrics as data and render them through the
   same emitters as [snapshot], so one validator covers everything a
   scrape can see. *)

type metric = {
  m_name : string;
  m_help : string;
  m_type : string;
  m_samples : ((string * string) list * float) list;
}

let render_metrics metrics =
  let buf = Buffer.create 512 in
  List.iter
    (fun m ->
      header buf m.m_name m.m_help m.m_type;
      List.iter
        (fun (labels, v) ->
          if Float.is_integer v && Float.abs v < 1e15 then
            sample buf m.m_name labels (Printf.sprintf "%.0f" v)
          else float_sample buf m.m_name labels v)
        m.m_samples)
    metrics;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Grammar validator *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let is_label_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* Parse one [{name="value",...}] set in [s] at [!pos] (pointing at the
   '{'); advances [pos] past the closing '}'.  Shared by the sample's
   label set and the OpenMetrics exemplar's. *)
let parse_labelset s pos =
  let n = String.length s in
  if !pos >= n || s.[!pos] <> '{' then Error "expected '{'"
  else begin
    incr pos;
    let rec labels () =
      if !pos >= n then Error "unterminated label set"
      else if s.[!pos] = '}' then begin
        incr pos;
        Ok ()
      end
      else if not (is_label_start s.[!pos]) then Error "bad label name"
      else begin
        while !pos < n && is_name_char s.[!pos] do
          incr pos
        done;
        if !pos >= n || s.[!pos] <> '=' then Error "expected '='"
        else begin
          incr pos;
          if !pos >= n || s.[!pos] <> '"' then Error "expected '\"'"
          else begin
            incr pos;
            let closed = ref false in
            while (not !closed) && !pos < n do
              if s.[!pos] = '\\' then pos := !pos + 2
              else if s.[!pos] = '"' then begin
                closed := true;
                incr pos
              end
              else incr pos
            done;
            if not !closed then Error "unterminated label value"
            else if !pos < n && s.[!pos] = ',' then begin
              incr pos;
              labels ()
            end
            else labels ()
          end
        end
      end
    in
    labels ()
  end

let float_token = function
  | "NaN" | "+Inf" | "-Inf" -> true
  | v -> ( match float_of_string_opt v with Some _ -> true | None -> false)

let validate_line ln line =
  let err msg = Error (Printf.sprintf "line %d: %s (%S)" ln msg line) in
  let n = String.length line in
  if n = 0 then Ok ()
  else if line.[0] = '#' then
    (* Comment: require the structured HELP/TYPE form, which is all the
       exporter emits. *)
    if
      String.length line >= 7
      && (String.sub line 0 7 = "# HELP " || String.sub line 0 7 = "# TYPE ")
    then Ok ()
    else err "comment is neither # HELP nor # TYPE"
  else begin
    let pos = ref 0 in
    let token () =
      let start = !pos in
      while !pos < n && line.[!pos] <> ' ' do
        incr pos
      done;
      String.sub line start (!pos - start)
    in
    let name_ok =
      if n > 0 && is_name_start line.[0] then begin
        incr pos;
        while !pos < n && is_name_char line.[!pos] do
          incr pos
        done;
        true
      end
      else false
    in
    if not name_ok then err "bad metric name"
    else begin
      let labels_result =
        if !pos < n && line.[!pos] = '{' then parse_labelset line pos
        else Ok ()
      in
      match labels_result with
      | Error m -> err m
      | Ok () ->
          if !pos >= n || line.[!pos] <> ' ' then
            err "expected space before value"
          else begin
            incr pos;
            let value = token () in
            if not (float_token value) then err "value is not a float"
            else if !pos >= n then Ok ()
            else if
              (* OpenMetrics exemplar: [ # {labels} value [timestamp]]. *)
              not (!pos + 2 < n && line.[!pos + 1] = '#' && line.[!pos + 2] = ' ')
            then err "junk after value"
            else begin
              pos := !pos + 3;
              match parse_labelset line pos with
              | Error m -> err ("exemplar: " ^ m)
              | Ok () ->
                  if !pos >= n || line.[!pos] <> ' ' then
                    err "exemplar: expected value"
                  else begin
                    incr pos;
                    let ev = token () in
                    if not (float_token ev) then
                      err "exemplar value is not a float"
                    else if !pos >= n then Ok ()
                    else begin
                      incr pos;
                      let ts = token () in
                      if !pos = n && float_token ts then Ok ()
                      else err "bad exemplar timestamp"
                    end
                  end
            end
          end
    end
  end

let validate (s : string) : (unit, string) result =
  let lines = String.split_on_char '\n' s in
  let rec go ln = function
    | [] -> Ok ()
    | line :: rest -> (
        match validate_line ln line with
        | Ok () -> go (ln + 1) rest
        | Error _ as e -> e)
  in
  go 1 lines
