(** The flight recorder: dump the span trees retained in {!Span}'s
    per-domain rings as a deterministic JSON bundle plus a Chrome-trace
    file.

    The rings themselves are always on while tracing is at [Spans] —
    this module only serializes what they hold, so a dump is cheap
    enough to trigger from an anomaly path (breaker open, watchdog,
    SLO fast-burn, shard KILL).  The bundle is a pure function of the
    retained trees, the reason and the metadata: under a deterministic
    clock, two identical runs dump byte-identical bundles (the exp24
    replay check). *)

val dump_string : reason:string -> ?meta:(string * string) list -> unit -> string
(** The JSON bundle: [{"reason":..., "meta":{...}, "trees":[...]}] with
    trees sorted by trace id, spans by [(begin, id)], events oldest
    first, and each tree annotated with its {!Span.dominant_phase}. *)

val chrome_string : unit -> string
(** The retained trees as Chrome trace-event JSON (one thread track per
    trace, pid 0); passes {!Chrome_trace.check}. *)

val dump :
  dir:string -> reason:string -> ?meta:(string * string) list -> unit -> string * string
(** Write both renderings into [dir] (created if missing) as
    [flight-<seq>-<reason>.json] and [flight-<seq>-<reason>.trace.json];
    returns the two paths.  [seq] is a process-wide dump counter. *)
