(** Bounded single-writer ring buffer: when full, the oldest element is
    overwritten and {!dropped} incremented, so a collected trace is a
    window ending at collection time with an exact account of lost
    history.  No synchronization — one ring per domain-local recorder
    state, read at quiescence. *)

type 'a t

val create : capacity:int -> 'a -> 'a t
(** [create ~capacity dummy]: [dummy] fills never-written slots.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** O(1); overwrites the oldest element (counting it dropped) when full. *)

val length : 'a t -> int
(** Number of retained elements, [<= capacity]. *)

val dropped : 'a t -> int
(** Elements overwritten since creation (or the last {!clear}). *)

val clear : 'a t -> 'a -> unit
(** Forget everything (refilling slots with the given dummy). *)

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)
