(** GC attribution for the tail-latency experiments: [Gc.quick_stat]
    deltas (collection counts, allocated and promoted words) over a
    measured window, emitted next to the latency histograms so a p999
    spike can be blamed on — or cleared of — allocation pressure.

    The counters are per-runtime, not per-domain: windows are exact for
    single-domain measured sections (how EXP-22 runs) and upper bounds
    under parallelism. *)

type snap = {
  minor_collections : int;
  major_collections : int;
  minor_words : float;  (** words allocated on the minor heap *)
  promoted_words : float;  (** words that survived into the major heap *)
}

val zero : snap

val totals : unit -> snap
(** Process-lifetime totals; every field is monotone (these back the
    [lf_gc_*_total] Prometheus counters). *)

val diff : before:snap -> snap -> snap
(** [diff ~before after] — componentwise [after - before]. *)

val window : unit -> snap
(** Deltas since the previous [window] (or {!reset_window}) call —
    process start for the first call.  One global window; the benches
    measure one section at a time. *)

val reset_window : unit -> unit
(** Start a fresh window without reading the previous one. *)

val pp : Format.formatter -> snap -> unit
