(** Multi-window SLO burn-rate tracking.

    An SLO is a target good-request ratio (e.g. 0.999).  The error
    budget is [1 - target]; the {e burn rate} over a window is the
    observed bad ratio divided by the budget — 1.0 means the budget is
    being spent exactly as fast as it accrues, 10x means ten times
    faster (the classic fast-burn page threshold).  Observations land
    in a ring of fixed-width tick buckets, so queries over any
    configured window are O(buckets) with no per-request allocation
    beyond a bucket rollover.

    Ticks come from the caller's clock (the [Clock] seam in the serve
    layer), so under a manual or simulated clock the burn math is
    deterministic. *)

type t

val create :
  ?fast_threshold:float ->
  target:float ->
  bucket:int ->
  windows:int list ->
  unit ->
  t
(** [create ~target ~bucket ~windows ()]: [target] is the good-ratio
    objective in (0, 1); [bucket] the bucket width in ticks; [windows]
    the query windows in ticks (at least one; the smallest is the
    fast-burn window).  [fast_threshold] (default 10.0) is the burn
    rate at which {!fast_burn} trips.
    @raise Invalid_argument on an empty window list, a window smaller
    than the bucket, or a target outside (0, 1). *)

val observe : t -> now:int -> good:bool -> unit

val totals : t -> now:int -> window:int -> int * int
(** [(good, bad)] observed over the trailing [window] ticks. *)

val burn_rate : t -> now:int -> window:int -> float
(** [bad / (good + bad) / (1 - target)] over the window; 0.0 when
    nothing was observed. *)

val fast_burn : t -> now:int -> bool
(** Burn over the smallest configured window at or above the
    threshold — the flight recorder's SLO anomaly trigger. *)

val target : t -> float
val windows : t -> int list

val line : t -> now:int -> string
(** One-line rendering for the wire protocol's SLO verb:
    [SLO target=<t> fast_burn=<b> w<ticks>:burn=<r>:good=<g>:bad=<b> ...].
    Deterministic given the observation history and [now]. *)
