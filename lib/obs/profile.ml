(* Contention profiler: attributes C&S failures to protocol phase and to
   the key of the operation that suffered them.

   The phase comes straight from the Section 3.4 classification the
   structures already pass to [Mem.S.cas] — a failed [Flagging] C&S is a
   lost TRYFLAG race, [Marking] a lost TRYMARK, [Physical_delete] a lost
   unlink in HELPMARKED, [Insertion] a lost INSERT splice.  The key comes
   from the operation span the harness opened around the call (the memory
   seam itself never sees keys), so "which keys are contended" is answered
   at operation granularity: a failure with no open span (prefill, ad-hoc
   calls) counts toward the phase totals but no key.

   One [t] per domain-local recorder state — recording is an array bump
   plus, per *failed* C&S only, one hashtable update — merged into a
   run-wide ranking at collection time. *)

module Ev = Lf_kernel.Mem_event

let phase_count = 5

let phase_index (k : Ev.cas_kind) =
  match k with
  | Insertion -> 0
  | Flagging -> 1
  | Marking -> 2
  | Physical_delete -> 3
  | Other_cas -> 4

(* The paper's names for the protocol steps (TRYFLAG / TRYMARK /
   HELPMARKED), as the reports print them. *)
let phase_name = function
  | 0 -> "insert"
  | 1 -> "flag"
  | 2 -> "mark"
  | 3 -> "unlink"
  | _ -> "other"

type t = {
  totals : int array;  (* failures per phase, keyed or not *)
  by_key : (int, int array) Hashtbl.t;  (* key -> failures per phase *)
}

let create () = { totals = Array.make phase_count 0; by_key = Hashtbl.create 64 }

let clear t =
  Array.fill t.totals 0 phase_count 0;
  Hashtbl.reset t.by_key

let no_key = min_int

let record t ~key kind =
  let i = phase_index kind in
  t.totals.(i) <- t.totals.(i) + 1;
  if key <> no_key then begin
    let row =
      match Hashtbl.find_opt t.by_key key with
      | Some r -> r
      | None ->
          let r = Array.make phase_count 0 in
          Hashtbl.add t.by_key key r;
          r
    in
    row.(i) <- row.(i) + 1
  end

let total t = Array.fold_left ( + ) 0 t.totals

let merge_into ~into b =
  for i = 0 to phase_count - 1 do
    into.totals.(i) <- into.totals.(i) + b.totals.(i)
  done;
  Hashtbl.iter
    (fun key row ->
      match Hashtbl.find_opt into.by_key key with
      | Some r -> Array.iteri (fun i v -> r.(i) <- r.(i) + v) row
      | None -> Hashtbl.add into.by_key key (Array.copy row))
    b.by_key

type hot_key = {
  hk_key : int;
  hk_fails : int;
  hk_phase : string;  (* the phase contributing most of this key's failures *)
}

type report = {
  r_total : int;  (* all C&S failures observed *)
  r_by_phase : (string * int) list;  (* nonzero phases, most-contended first *)
  r_hot_keys : hot_key list;  (* most-contended keys first, truncated *)
}

(* Contention rows grouped by a key classifier (e.g. shard of key):
   keyed failures only, since unkeyed ones cannot be attributed. *)
let by_group ~group t =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter
    (fun key row ->
      let fails = Array.fold_left ( + ) 0 row in
      if fails > 0 then begin
        let g = group key in
        Hashtbl.replace tbl g
          (fails + Option.value (Hashtbl.find_opt tbl g) ~default:0)
      end)
    t.by_key;
  Hashtbl.fold (fun g n acc -> (g, n) :: acc) tbl []
  |> List.stable_sort (fun (ga, a) (gb, b) ->
         match Int.compare b a with 0 -> String.compare ga gb | c -> c)

let dominant_phase row =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > row.(!best) then best := i) row;
  phase_name !best

let report ?(top = 10) t =
  let by_phase =
    List.filteri (fun _ (_, v) -> v > 0)
      (List.init phase_count (fun i -> (phase_name i, t.totals.(i))))
    |> List.stable_sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  let keys =
    Hashtbl.fold
      (fun key row acc ->
        let fails = Array.fold_left ( + ) 0 row in
        if fails > 0 then
          { hk_key = key; hk_fails = fails; hk_phase = dominant_phase row }
          :: acc
        else acc)
      t.by_key []
    |> List.stable_sort (fun a b ->
           match Int.compare b.hk_fails a.hk_fails with
           | 0 -> Int.compare a.hk_key b.hk_key (* deterministic ties *)
           | c -> c)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  { r_total = total t; r_by_phase = by_phase; r_hot_keys = take top keys }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>C&S failures: %d@," r.r_total;
  List.iter
    (fun (phase, n) ->
      Format.fprintf fmt "  phase %-7s %6d  (%5.1f%%)@," phase n
        (100.0 *. float_of_int n /. float_of_int (max 1 r.r_total)))
    r.r_by_phase;
  (match r.r_hot_keys with
  | [] -> Format.fprintf fmt "  (no keyed failures)"
  | hot ->
      Format.fprintf fmt "  hot keys:@,";
      List.iter
        (fun hk ->
          Format.fprintf fmt "    key %-8d %6d fails  (mostly %s)@," hk.hk_key
            hk.hk_fails hk.hk_phase)
        hot);
  Format.fprintf fmt "@]"
