(* Log-bucketed (HDR-style) histogram of non-negative integer samples
   (latencies in ns, or simulator steps).

   Two-regime layout.  Values below 2^sub_bits land in exact unit buckets;
   above that, each power-of-two octave is split into 2^sub_bits
   sub-buckets, so the relative quantization error is bounded by
   2^-sub_bits (6.25% with sub_bits = 4) at every magnitude — the
   HdrHistogram layout.  From the 2^fine_msb octave upward (~1 ms in ns),
   octaves instead get 2^fine_bits sub-buckets (0.78% with fine_bits = 7):
   the extreme tail is exactly where GC pauses land, and at 6.25%
   granularity distinct multi-millisecond quantiles (p999 vs p9999, or
   p999 across op types) collapse into one representative value — EXP-19's
   byte-identical p999 columns.  Recording is a couple of shifts plus an
   increment on a preallocated int array: no allocation, no
   synchronization (one histogram per domain-local recorder state);
   [merge_into] adds bucket-wise, which is what makes per-domain
   histograms combinable into a run-wide one at collection time. *)

let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 sub-buckets per octave *)
let fine_bits = 7
let fine_sub = 1 lsl fine_bits (* 128 sub-buckets per high octave *)
let fine_msb = 20 (* values >= 2^20 (~1 ms in ns) use fine octaves *)

(* Coarse region: one batch of [sub] per octave with msb in
   [sub_bits, fine_msb).  Fine region: one batch of [fine_sub] per octave
   with msb in [fine_msb, 63), enough for any 62-bit value. *)
let fine_base = sub + ((fine_msb - sub_bits) * sub)
let bucket_count = fine_base + ((63 - fine_msb) * fine_sub)

let msb v =
  let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
  go v 0

let index_of v =
  let v = if v < 0 then 0 else v in
  if v < sub then v
  else
    let m = msb v in
    if m < fine_msb then
      let shift = m - sub_bits in
      (shift * sub) + ((v lsr shift) land (sub - 1)) + sub
    else
      let shift = m - fine_bits in
      fine_base
      + ((m - fine_msb) * fine_sub)
      + ((v lsr shift) land (fine_sub - 1))

(* Lowest value mapping to bucket [i] (inverse of [index_of]). *)
let bucket_low i =
  if i < sub then i
  else if i < fine_base then
    let shift = (i - sub) / sub in
    let off = (i - sub) mod sub in
    (sub + off) lsl shift
  else
    let m = fine_msb + ((i - fine_base) / fine_sub) in
    let off = (i - fine_base) mod fine_sub in
    (fine_sub + off) lsl (m - fine_bits)

(* One past the highest value mapping to bucket [i]. *)
let bucket_high i =
  if i < sub then i + 1
  else if i < fine_base then bucket_low i + (1 lsl ((i - sub) / sub))
  else
    let m = fine_msb + ((i - fine_base) / fine_sub) in
    bucket_low i + (1 lsl (m - fine_bits))

(* Midpoint used as the bucket's representative value in summaries. *)
let bucket_mid i = (bucket_low i + bucket_high i - 1 + 1) / 2

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make bucket_count 0; total = 0; sum = 0; min_v = max_int;
    max_v = 0 }

let clear t =
  Array.fill t.counts 0 bucket_count 0;
  t.total <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let add t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let sum t = t.sum
let max_value t = t.max_v
let min_value t = if t.total = 0 then 0 else t.min_v
let mean t = if t.total = 0 then nan else float_of_int t.sum /. float_of_int t.total

let merge_into ~into b =
  for i = 0 to bucket_count - 1 do
    into.counts.(i) <- into.counts.(i) + b.counts.(i)
  done;
  into.total <- into.total + b.total;
  into.sum <- into.sum + b.sum;
  if b.total > 0 then begin
    if b.min_v < into.min_v then into.min_v <- b.min_v;
    if b.max_v > into.max_v then into.max_v <- b.max_v
  end

let copy t =
  let c = create () in
  merge_into ~into:c t;
  c

(* Smallest representative value whose cumulative count reaches p*total. *)
let percentile t p =
  if t.total = 0 then invalid_arg "Hist.percentile: empty histogram";
  let target = p *. float_of_int t.total in
  let rec go i acc =
    if i >= bucket_count - 1 then float_of_int t.max_v
    else
      let acc = acc + t.counts.(i) in
      if t.counts.(i) > 0 && float_of_int acc >= target then
        float_of_int (min (bucket_mid i) t.max_v)
      else go (i + 1) acc
  in
  go 0 0

let iter_buckets t f =
  for i = 0 to bucket_count - 1 do
    if t.counts.(i) > 0 then
      f ~low:(bucket_low i) ~high:(bucket_high i) ~count:t.counts.(i)
  done

(* Non-empty (midpoint, count) pairs: the input Stats.of_weighted expects. *)
let weighted t =
  let out = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.counts.(i) > 0 then
      out := (float_of_int (bucket_mid i), t.counts.(i)) :: !out
  done;
  Array.of_list !out

let summary t = Lf_kernel.Stats.of_weighted (weighted t)
let p9999 t = percentile t 0.9999

let pp fmt t =
  if t.total = 0 then Format.pp_print_string fmt "empty"
  else
    Format.fprintf fmt
      "n=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f p999=%.0f p9999=%.0f max=%d"
      t.total (mean t) (percentile t 0.5) (percentile t 0.9)
      (percentile t 0.99) (percentile t 0.999) (p9999 t) t.max_v
