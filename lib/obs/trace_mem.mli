(** Tracing memory wrapper: a {!Lf_kernel.Mem.S} that forwards to the
    wrapped memory and reports every access to the module-level
    {!Recorder}.  Free (one word read per access) while the recorder is
    [Off]; stacks with the other wrappers ([Atomic_mem], [Sim_mem],
    [Fault_mem], [Check_mem]) like any memory. *)

module Make (M : Lf_kernel.Mem.S) : Lf_kernel.Mem.S with type 'a aref = 'a M.aref
