(* Request tracing (DESIGN.md §14).  Module-level like [Recorder], so
   one serve process traces every pipeline without threading recorder
   state through the layers; the request context itself is explicit.

   Hot-path discipline: every entry point reads the single level word
   first and returns a constant at [Off] — no DLS lookup, no
   allocation.  Above [Off], each domain records into its own [dstate]
   (ids, tallies, flight ring, per-lane current-span table) so tracing
   never synchronizes with other domains except at two cold points: the
   registry (locked once per domain at registration and at collection)
   and the exemplar table (locked once per {e completed request}, not
   per span).

   Determinism: span ids are [(domain id << 40) | per-domain counter],
   so a single-domain run under the simulator or a manual clock
   allocates the same ids in the same order every execution, and with
   ticks coming from the deterministic clock seam the whole dump is
   byte-identical across runs (the exp24 replay check).  Multi-domain
   runs keep ids collision-free but not stable — the id uniqueness
   qcheck covers that half. *)

type level = Off | Counters | Spans

let rank = function Off -> 0 | Counters -> 1 | Spans -> 2

let level_to_string = function
  | Off -> "off"
  | Counters -> "counters"
  | Spans -> "spans"

let level_of_string = function
  | "off" -> Some Off
  | "counters" -> Some Counters
  | "spans" -> Some Spans
  | _ -> None

(* The level as an int: the one word the hot path reads first. *)
let lvl = ref 0
let set_level l = lvl := rank l
let level () = match !lvl with 0 -> Off | 1 -> Counters | _ -> Spans
let enabled () = !lvl > 0
let spans_on () = !lvl >= 2

type event =
  | Deadline_check of bool
  | Shed_verdict of string
  | Breaker_verdict of string
  | Degrade_mode of string
  | Retry_wait of { attempt : int; delay : int }
  | Budget_denied
  | Hedge_outcome of string
  | Drain_wait of int
  | Key of int
  | Cas_fail of Lf_kernel.Mem_event.cas_kind
  | Note of string

let event_strings = function
  | Deadline_check expired ->
      ("deadline-check", if expired then "expired" else "live")
  | Shed_verdict v -> ("shed", v)
  | Breaker_verdict v -> ("breaker", v)
  | Degrade_mode m -> ("degrade", m)
  | Retry_wait { attempt; delay } ->
      ("retry", Printf.sprintf "attempt=%d delay=%d" attempt delay)
  | Budget_denied -> ("budget-denied", "")
  | Hedge_outcome v -> ("hedge", v)
  | Drain_wait k -> ("drain-wait", string_of_int k)
  | Key k -> ("key", string_of_int k)
  | Cas_fail k -> ("cas-fail", Lf_kernel.Mem_event.cas_kind_to_string k)
  | Note s -> ("note", s)

type span = {
  s_trace : int;
  s_id : int;
  s_parent : int;
  s_name : string;
  s_begin : int;
  mutable s_end : int;
  mutable s_ok : bool;
  mutable s_events : (int * event) list;
}

type tree = {
  t_trace : int;
  t_root : span;
  mutable t_closed : span list;  (* completed non-root spans, newest first *)
}

(* [Light] is the [Counters]-level sentinel: tally without
   materializing.  It is a constant, so propagating it allocates
   nothing. *)
type ctx = Nil | Light | C of { tree : tree; span : span }

let nil = Nil
let active = function Nil -> false | Light | C _ -> true
let trace_id = function C { tree; _ } -> tree.t_trace | Nil | Light -> 0

(* ------------------------------------------------------------------ *)
(* Per-domain state *)

type dstate = {
  dom : int;
  mutable next : int;  (* per-domain id counter *)
  mutable flight : tree Ring.t;  (* completed trees, oldest overwritten *)
  current : (int, ctx) Hashtbl.t;  (* lane -> executing span (attribution) *)
  saved : (int, ctx) Hashtbl.t;  (* lane -> ctx shadowed by an op span *)
  mutable c_roots : int;
  mutable c_spans : int;
  mutable c_events : int;
  mutable c_completed : int;
  mutable c_cas_attr : int;
}

let dummy_span =
  {
    s_trace = 0;
    s_id = 0;
    s_parent = 0;
    s_name = "";
    s_begin = 0;
    s_end = 0;
    s_ok = true;
    s_events = [];
  }

let dummy_tree = { t_trace = 0; t_root = dummy_span; t_closed = [] }

(* One mutex covers the cold shared state: the registry and the
   exemplar table.  Never taken per span — only per domain registration,
   per completed request, and at collection. *)
let mu = Mutex.create ()
let registry : dstate list ref = ref []

let default_flight_capacity = 256
let flight_capacity = ref default_flight_capacity

let set_flight_capacity n =
  if n <= 0 then invalid_arg "Span.set_flight_capacity: capacity must be > 0";
  flight_capacity := n

(* ------------------------------------------------------------------ *)
(* Tail-based exemplars: log-bucketed by latency, each bucket keeping
   the trace id of the worst recent request that landed in it.  Bucket
   [i] holds latencies in [(2^(i-1), 2^i - 1]]; bucket 0 holds <= 0. *)

type slot = {
  mutable sl_count : int;
  mutable sl_trace : int;
  mutable sl_lat : int;
  mutable sl_tick : int;
}

type exemplar = {
  ex_le : int;
  ex_count : int;
  ex_trace : int;
  ex_latency : int;
  ex_tick : int;
}

let n_slots = 63
let slots = Array.init n_slots (fun _ ->
    { sl_count = 0; sl_trace = 0; sl_lat = -1; sl_tick = 0 })
let lat_sum = ref 0
let lat_count = ref 0

let bucket_of latency =
  if latency <= 0 then 0
  else begin
    let v = ref latency and b = ref 0 in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    min !b (n_slots - 1)
  end

let bucket_le i = if i = 0 then 0 else (1 lsl i) - 1

(* Under [mu]; once per completed request. *)
let observe_completed_locked ~trace ~latency ~tick =
  let s = slots.(bucket_of latency) in
  s.sl_count <- s.sl_count + 1;
  if latency >= s.sl_lat then begin
    s.sl_trace <- trace;
    s.sl_lat <- latency;
    s.sl_tick <- tick
  end;
  lat_sum := !lat_sum + latency;
  incr lat_count

let exemplars () =
  Mutex.lock mu;
  let out = ref [] in
  for i = n_slots - 1 downto 0 do
    let s = slots.(i) in
    if s.sl_count > 0 then
      out :=
        {
          ex_le = bucket_le i;
          ex_count = s.sl_count;
          ex_trace = s.sl_trace;
          ex_latency = s.sl_lat;
          ex_tick = s.sl_tick;
        }
        :: !out
  done;
  Mutex.unlock mu;
  !out

let latency_totals () =
  Mutex.lock mu;
  let r = (!lat_sum, !lat_count) in
  Mutex.unlock mu;
  r

(* ------------------------------------------------------------------ *)
(* DLS plumbing (the [Recorder] pattern; raw-dls lint waiver) *)

let make_dstate () =
  {
    dom = (Domain.self () :> int);
    next = 0;
    flight = Ring.create ~capacity:!flight_capacity dummy_tree;
    current = Hashtbl.create 8;
    saved = Hashtbl.create 8;
    c_roots = 0;
    c_spans = 0;
    c_events = 0;
    c_completed = 0;
    c_cas_attr = 0;
  }

let register st =
  Mutex.lock mu;
  registry := st :: !registry;
  Mutex.unlock mu

let key =
  Domain.DLS.new_key (fun () ->
      let st = make_dstate () in
      register st;
      st)

let local () = Domain.DLS.get key

let lane () =
  match Lf_dsim.Sim.running_pid () with
  | Some p -> p
  | None -> Lf_kernel.Lane.get ()

let reset () =
  Mutex.lock mu;
  List.iter
    (fun st ->
      st.next <- 0;
      st.flight <- Ring.create ~capacity:!flight_capacity dummy_tree;
      Hashtbl.reset st.current;
      Hashtbl.reset st.saved;
      st.c_roots <- 0;
      st.c_spans <- 0;
      st.c_events <- 0;
      st.c_completed <- 0;
      st.c_cas_attr <- 0)
    !registry;
  Array.iter
    (fun s ->
      s.sl_count <- 0;
      s.sl_trace <- 0;
      s.sl_lat <- -1;
      s.sl_tick <- 0)
    slots;
  lat_sum := 0;
  lat_count := 0;
  Mutex.unlock mu

(* ------------------------------------------------------------------ *)
(* Hot path *)

let fresh st =
  st.next <- st.next + 1;
  (st.dom lsl 40) lor st.next

let root ~name ~now =
  if !lvl = 0 then Nil
  else begin
    let st = local () in
    st.c_roots <- st.c_roots + 1;
    if !lvl < 2 then Light
    else begin
      let id = fresh st in
      let sp =
        {
          s_trace = id;
          s_id = id;
          s_parent = 0;
          s_name = name;
          s_begin = now;
          s_end = -1;
          s_ok = true;
          s_events = [];
        }
      in
      C { tree = { t_trace = id; t_root = sp; t_closed = [] }; span = sp }
    end
  end

let begin_ ctx ~name ~now =
  match ctx with
  | Nil -> Nil
  | Light ->
      let st = local () in
      st.c_spans <- st.c_spans + 1;
      Light
  | C { tree; span = parent } ->
      let st = local () in
      st.c_spans <- st.c_spans + 1;
      let sp =
        {
          s_trace = tree.t_trace;
          s_id = fresh st;
          s_parent = parent.s_id;
          s_name = name;
          s_begin = now;
          s_end = -1;
          s_ok = true;
          s_events = [];
        }
      in
      C { tree; span = sp }

let complete st tree =
  st.c_completed <- st.c_completed + 1;
  Ring.push st.flight tree;
  let r = tree.t_root in
  Mutex.lock mu;
  observe_completed_locked ~trace:tree.t_trace ~latency:(r.s_end - r.s_begin)
    ~tick:r.s_end;
  Mutex.unlock mu

let end_ ctx ~now ~ok =
  match ctx with
  | Nil | Light -> ()
  | C { tree; span } ->
      span.s_end <- now;
      span.s_ok <- ok;
      if span.s_id == tree.t_root.s_id then complete (local ()) tree
      else tree.t_closed <- span :: tree.t_closed

let event ctx ~now e =
  match ctx with
  | Nil -> ()
  | Light ->
      let st = local () in
      st.c_events <- st.c_events + 1
  | C { span; _ } ->
      let st = local () in
      st.c_events <- st.c_events + 1;
      span.s_events <- (now, e) :: span.s_events

let with_current ctx f =
  if !lvl = 0 then f ()
  else
    match ctx with
    | Nil -> f ()
    | Light | C _ ->
        let st = local () in
        let ln = lane () in
        let prev = Hashtbl.find_opt st.current ln in
        Hashtbl.replace st.current ln ctx;
        Fun.protect
          ~finally:(fun () ->
            match prev with
            | Some p -> Hashtbl.replace st.current ln p
            | None -> Hashtbl.remove st.current ln)
          f

let note_cas_fail ~now kind =
  if !lvl = 0 then ()
  else
    let st = local () in
    match Hashtbl.find_opt st.current (lane ()) with
    | None | Some Nil -> ()
    | Some Light -> st.c_cas_attr <- st.c_cas_attr + 1
    | Some (C { span; _ }) ->
        st.c_cas_attr <- st.c_cas_attr + 1;
        st.c_events <- st.c_events + 1;
        span.s_events <- (now (), Cas_fail kind) :: span.s_events

(* Structure-op spans only materialize at [Spans]: below that the
   recorder's own per-op tallies already count operations, and hooking
   every op at [Counters] would price the trees without building them. *)
let op_begin ~name ~key:k ~now =
  if !lvl < 2 then ()
  else
    let st = local () in
    let ln = lane () in
    if not (Hashtbl.mem st.saved ln) then
      match Hashtbl.find_opt st.current ln with
      | Some (C _ as parent) ->
          let ts = now () in
          let sp = begin_ parent ~name ~now:ts in
          event sp ~now:ts (Key k);
          Hashtbl.replace st.saved ln parent;
          Hashtbl.replace st.current ln sp
      | _ -> ()

let op_end ~ok ~now =
  if !lvl < 2 then ()
  else
    let st = local () in
    let ln = lane () in
    match Hashtbl.find_opt st.saved ln with
    | None -> ()
    | Some parent ->
        (match Hashtbl.find_opt st.current ln with
        | Some (C _ as sp) -> end_ sp ~now:(now ()) ~ok
        | _ -> ());
        Hashtbl.remove st.saved ln;
        Hashtbl.replace st.current ln parent

(* ------------------------------------------------------------------ *)
(* Trees: accessors and analysis (collection at quiescence) *)

let tree_trace t = t.t_trace
let tree_root t = t.t_root

let tree_spans t =
  t.t_root
  :: List.sort
       (fun a b ->
         match Int.compare a.s_begin b.s_begin with
         | 0 -> Int.compare a.s_id b.s_id
         | c -> c)
       t.t_closed

let span_events s = List.rev s.s_events
let span_duration s = if s.s_end < s.s_begin then 0 else s.s_end - s.s_begin

let dominant_phase t =
  (* Self time: a span's duration minus its direct children's, so an
     attempt containing a structure-op span is not double-counted. *)
  let child_time = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let d = span_duration s in
      let cur =
        Option.value (Hashtbl.find_opt child_time s.s_parent) ~default:0
      in
      Hashtbl.replace child_time s.s_parent (cur + d))
    t.t_closed;
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let kids = Option.value (Hashtbl.find_opt child_time s.s_id) ~default:0 in
      let self = max 0 (span_duration s - kids) in
      let cur = Option.value (Hashtbl.find_opt by_name s.s_name) ~default:0 in
      Hashtbl.replace by_name s.s_name (cur + self))
    t.t_closed;
  (* Deterministic argmax: largest self time, ties lexicographically. *)
  let best =
    Hashtbl.fold
      (fun name d acc ->
        match acc with
        | Some (bn, bd) when bd > d || (bd = d && bn <= name) -> acc
        | _ -> Some (name, d))
      by_name None
  in
  match best with None -> t.t_root.s_name | Some (n, _) -> n

let well_formed t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let spans = tree_spans t in
  let byid = Hashtbl.create 16 in
  let rec index = function
    | [] -> Ok ()
    | s :: rest ->
        if Hashtbl.mem byid s.s_id then err "duplicate span id %d" s.s_id
        else begin
          Hashtbl.add byid s.s_id s;
          index rest
        end
  in
  let check s =
    if s.s_trace <> t.t_trace then
      err "span %d belongs to trace %d, not %d" s.s_id s.s_trace t.t_trace
    else if s.s_end < s.s_begin then
      err "span %d closes at %d before opening at %d" s.s_id s.s_end s.s_begin
    else if s.s_id = t.t_root.s_id then Ok ()
    else
      match Hashtbl.find_opt byid s.s_parent with
      | None -> err "span %d has unknown parent %d" s.s_id s.s_parent
      | Some p ->
          if s.s_begin < p.s_begin || s.s_end > p.s_end then
            err "span %d [%d,%d] escapes parent %d [%d,%d]" s.s_id s.s_begin
              s.s_end p.s_id p.s_begin p.s_end
          else Ok ()
  in
  match index spans with
  | Error _ as e -> e
  | Ok () ->
      List.fold_left
        (fun acc s -> match acc with Error _ -> acc | Ok () -> check s)
        (Ok ()) spans

(* ------------------------------------------------------------------ *)
(* Collection *)

let states () =
  Mutex.lock mu;
  let l = !registry in
  Mutex.unlock mu;
  l

let trees () =
  let all = List.concat_map (fun st -> Ring.to_list st.flight) (states ()) in
  List.sort (fun a b -> Int.compare a.t_trace b.t_trace) all

let find_trace tr = List.find_opt (fun t -> t.t_trace = tr) (trees ())

type counts = {
  roots : int;
  spans : int;
  events : int;
  completed : int;
  cas_attributed : int;
}

let counts () =
  List.fold_left
    (fun acc st ->
      {
        roots = acc.roots + st.c_roots;
        spans = acc.spans + st.c_spans;
        events = acc.events + st.c_events;
        completed = acc.completed + st.c_completed;
        cas_attributed = acc.cas_attributed + st.c_cas_attr;
      })
    { roots = 0; spans = 0; events = 0; completed = 0; cas_attributed = 0 }
    (states ())
