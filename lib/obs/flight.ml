(* Serialization of the span flight rings.  All state lives in [Span];
   the only thing here is the dump counter that names the files. *)

let esc s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON bundle *)

let span_to_buf buf (s : Span.span) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"begin\":%d,\"end\":%d,\"ok\":%b,\"events\":["
       s.Span.s_id s.Span.s_parent (esc s.Span.s_name) s.Span.s_begin
       s.Span.s_end s.Span.s_ok);
  List.iteri
    (fun i (ts, e) ->
      if i > 0 then Buffer.add_char buf ',';
      let kind, arg = Span.event_strings e in
      Buffer.add_string buf
        (Printf.sprintf "{\"ts\":%d,\"kind\":\"%s\",\"arg\":\"%s\"}" ts
           (esc kind) (esc arg)))
    (Span.span_events s);
  Buffer.add_string buf "]}"

let tree_to_buf buf t =
  Buffer.add_string buf
    (Printf.sprintf "{\"trace\":%d,\"dominant\":\"%s\",\"spans\":["
       (Span.tree_trace t)
       (esc (Span.dominant_phase t)));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      span_to_buf buf s)
    (Span.tree_spans t);
  Buffer.add_string buf "]}"

let dump_string ~reason ?(meta = []) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\"reason\":\"%s\"" (esc reason));
  Buffer.add_string buf ",\"meta\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)))
    meta;
  Buffer.add_string buf "},\"trees\":[";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      tree_to_buf buf t)
    (Span.trees ());
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace: one thread track per trace under pid 0, spans emitted
   by recursive descent so B/E edges are perfectly nested per track
   (children clamped into their parent's interval, which a correct
   trace never needs — it keeps the file well-formed even if a clock
   was misconfigured). *)

let chrome_string () =
  let trees = Span.trees () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let row s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n';
    Buffer.add_string buf s
  in
  row
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"lfdict-requests\"}}";
  List.iter
    (fun t ->
      let trace = Span.tree_trace t in
      row
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"trace-%d\"}}"
           trace trace);
      let spans = Span.tree_spans t in
      let children = Hashtbl.create 16 in
      List.iter
        (fun (s : Span.span) ->
          if s.Span.s_id <> (Span.tree_root t).Span.s_id then
            Hashtbl.replace children s.Span.s_parent
              (s
              :: Option.value
                   (Hashtbl.find_opt children s.Span.s_parent)
                   ~default:[]))
        (List.rev spans);
      let rec emit ~lo ~hi (s : Span.span) =
        let b = min (max s.Span.s_begin lo) hi in
        let e = min (max s.Span.s_end b) hi in
        row
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"args\":{\"id\":%d}}"
             (esc s.Span.s_name) b trace s.Span.s_id);
        List.iter
          (fun (ts, ev) ->
            let kind, arg = Span.event_strings ev in
            row
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"s\":\"t\",\"args\":{\"arg\":\"%s\"}}"
                 (esc kind)
                 (min (max ts b) e)
                 trace (esc arg)))
          (Span.span_events s);
        List.iter (emit ~lo:b ~hi:e)
          (Option.value (Hashtbl.find_opt children s.Span.s_id) ~default:[]);
        row
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"args\":{\"ok\":%b}}"
             (esc s.Span.s_name) e trace s.Span.s_ok)
      in
      emit ~lo:min_int ~hi:max_int (Span.tree_root t))
    trees;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Files *)

let seq = ref 0

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    (String.lowercase_ascii s)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let dump ~dir ~reason ?meta () =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  incr seq;
  let base = Printf.sprintf "flight-%03d-%s" !seq (slug reason) in
  let bundle = Filename.concat dir (base ^ ".json") in
  let chrome = Filename.concat dir (base ^ ".trace.json") in
  write_file bundle (dump_string ~reason ?meta ());
  write_file chrome (chrome_string ());
  (bundle, chrome)
