(* Vocabulary of the observability layer: what the per-domain ring buffers
   record.

   The recorded stream is deliberately the *protocol-level* view, not the
   raw access stream: C&S attempts with their outcomes (classified by the
   Section 3.4 kinds, so a trace shows exactly where the flag / mark /
   unlink steps contend), the cost-model annotations the structures already
   emit through [Mem.S.event] (backlink traversals, retries, helping), and
   the operation-span markers the harnesses add (begin / end around every
   dictionary operation).  Plain reads and writes are tallied by the
   recorder but not ringed — they dominate volume and carry no protocol
   information the spans do not already delimit. *)

type op = Insert | Delete | Find | Other

let op_to_string = function
  | Insert -> "insert"
  | Delete -> "delete"
  | Find -> "find"
  | Other -> "other"

let op_index = function Insert -> 0 | Delete -> 1 | Find -> 2 | Other -> 3
let op_count = 4
let ops = [ Insert; Delete; Find; Other ]

type kind =
  | Cas of { cas : Lf_kernel.Mem_event.cas_kind; ok : bool }
      (* one C&S attempt, with its outcome *)
  | Note of Lf_kernel.Mem_event.t
      (* a cost-model annotation (backlink step, retry, help, ...) *)
  | Span_begin of { op : op; key : int }
  | Span_end of { op : op; ok : bool }

type t = {
  ts : int;  (* clock units: ns on real memory, steps under the simulator *)
  dom : int;  (* recording domain (Chrome-trace pid) *)
  lane : int;  (* lane / simulated process (Chrome-trace tid) *)
  seq : int;  (* per-domain sequence number; breaks timestamp ties *)
  kind : kind;
}

(* Placeholder for ring-buffer slots that have never been written. *)
let dummy = { ts = 0; dom = 0; lane = 0; seq = 0; kind = Note Lf_kernel.Mem_event.Retry }

let kind_to_string = function
  | Cas { cas; ok } ->
      Lf_kernel.Mem_event.cas_kind_to_string cas
      ^ if ok then ":ok" else ":fail"
  | Note e -> Lf_kernel.Mem_event.to_string e
  | Span_begin { op; key } ->
      Printf.sprintf "%s(%d):begin" (op_to_string op) key
  | Span_end { op; ok } ->
      Printf.sprintf "%s:end:%s" (op_to_string op) (if ok then "ok" else "no")

let pp fmt e =
  Format.fprintf fmt "[%d] d%d/l%d #%d %s" e.ts e.dom e.lane e.seq
    (kind_to_string e.kind)
