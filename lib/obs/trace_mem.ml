(* Tracing memory: the functor seam once more.

   [Make (M)] is a [Mem.S] that forwards every access to [M] and reports
   it to the module-level {!Recorder} — which structure code cannot see
   and which costs one word read when recording is off.  Stacks like the
   other wrappers: [Trace_mem.Make (Atomic_mem)] for wall-clock runs,
   [Trace_mem.Make (Sim_mem)] for deterministic traces, and it composes
   under or over [Fault_mem] / [Check_mem] since all speak [Mem.S]. *)

module Make (M : Lf_kernel.Mem.S) = struct
  type 'a aref = 'a M.aref

  let make = M.make

  let get r =
    let v = M.get r in
    Recorder.on_read ();
    v

  let set r v =
    M.set r v;
    Recorder.on_write ()

  let cas r ~kind ~expect v =
    let ok = M.cas r ~kind ~expect v in
    Recorder.on_cas kind ok;
    ok

  let event e =
    M.event e;
    Recorder.on_event e

  let pause = M.pause
  let stamp = M.stamp
  let annotate = M.annotate
end
