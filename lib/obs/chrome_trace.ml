(* Chrome trace-event JSON exporter (the format chrome://tracing and
   Perfetto load).

   Mapping: pid = recording domain, tid = lane (simulated process under
   the simulator, so a sim trace shows every process as its own track);
   operation spans become "B"/"E" duration pairs, C&S attempts and
   cost-model notes become "i" instants, and "M" metadata rows name each
   pid/tid.  Timestamps are the recorder's clock divided by [time_div]:
   1 under the simulator (steps, already integral — the whole file is
   then a pure function of the seed, which CI checks byte-for-byte) and
   1000 on real memory (ns -> us, the format's native unit).

   The ring buffers overwrite oldest events, which can orphan a span
   edge: an "E" whose "B" was overwritten, or a "B" whose "E" was never
   recorded (operation in flight at collection, or the lane's span was
   replaced).  A pre-pass drops unmatched edges so the emitted file
   always has perfectly paired, non-crossing spans per (pid, tid). *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cas_name cas = "cas:" ^ Profile.phase_name (Profile.phase_index cas)

(* Keep only matched span edges: per (dom, lane), a Span_end with no open
   Span_begin is dropped, a Span_begin superseded before its end is
   dropped, and Span_begins still open at the end of the stream are
   dropped.  Instants always survive. *)
let matched_edges (events : Obs_event.t array) =
  let keep = Array.make (Array.length events) true in
  let open_idx : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (e : Obs_event.t) ->
      let lane_key = (e.dom, e.lane) in
      match e.kind with
      | Obs_event.Span_begin _ ->
          (match Hashtbl.find_opt open_idx lane_key with
          | Some j -> keep.(j) <- false
          | None -> ());
          Hashtbl.replace open_idx lane_key i
      | Obs_event.Span_end _ -> (
          match Hashtbl.find_opt open_idx lane_key with
          | Some _ -> Hashtbl.remove open_idx lane_key
          | None -> keep.(i) <- false)
      | _ -> ())
    events;
  Hashtbl.iter (fun _ j -> keep.(j) <- false) open_idx;
  keep

module ISet = Set.Make (Int)

module IPSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let to_buffer ?(time_div = 1) ?gc buf (events : Obs_event.t list) =
  let events = Array.of_list events in
  let keep = matched_edges events in
  let ts_of (e : Obs_event.t) = e.ts / max 1 time_div in
  let doms = ref ISet.empty in
  let lanes = ref IPSet.empty in
  Array.iter
    (fun (e : Obs_event.t) ->
      doms := ISet.add e.dom !doms;
      lanes := IPSet.add (e.dom, e.lane) !lanes)
    events;
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let row s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n";
    Buffer.add_string buf s
  in
  (* Metadata first: name every process (domain) and thread (lane). *)
  ISet.iter
    (fun d ->
      row
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"domain-%d\"}}"
           d d))
    !doms;
  IPSet.iter
    (fun (d, l) ->
      row
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"lane-%d\"}}"
           d l l))
    !lanes;
  (* GC attribution as a counter track (ph "C"): collections and words for
     the window the trace covers, rendered by Perfetto as a counter lane. *)
  (match gc with
  | None -> ()
  | Some (g : Gc_attr.snap) ->
      row
        (Printf.sprintf
           "{\"name\":\"gc\",\"cat\":\"gc\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"minor_collections\":%d,\"major_collections\":%d,\"minor_words\":%.0f,\"promoted_words\":%.0f}}"
           g.Gc_attr.minor_collections g.Gc_attr.major_collections
           g.Gc_attr.minor_words g.Gc_attr.promoted_words));
  Array.iteri
    (fun i (e : Obs_event.t) ->
      if keep.(i) then
        match e.kind with
        | Obs_event.Span_begin { op; key } ->
            row
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"op\",\"ph\":\"B\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"key\":%d}}"
                 (escape (Obs_event.op_to_string op))
                 (ts_of e) e.dom e.lane key)
        | Obs_event.Span_end { op; ok } ->
            row
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"op\",\"ph\":\"E\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"ok\":%b}}"
                 (escape (Obs_event.op_to_string op))
                 (ts_of e) e.dom e.lane ok)
        | Obs_event.Cas { cas; ok } ->
            row
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"cas\",\"ph\":\"i\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"s\":\"t\",\"args\":{\"ok\":%b}}"
                 (escape (cas_name cas)) (ts_of e) e.dom e.lane ok)
        | Obs_event.Note ev ->
            row
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"note\",\"ph\":\"i\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"s\":\"t\"}"
                 (escape (Lf_kernel.Mem_event.to_string ev))
                 (ts_of e) e.dom e.lane))
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let to_string ?time_div ?gc events =
  let buf = Buffer.create 4096 in
  to_buffer ?time_div ?gc buf events;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Well-formedness checker (lfdict trace --check, and the tests).

   Checks: the file parses as JSON; the top level carries a "traceEvents"
   array; every event has ph/pid/tid (and a ts for B/E/i); per (pid, tid)
   the B/E edges obey stack discipline with matching names and
   non-decreasing timestamps; every pid that appears is named by a
   process_name metadata row. *)

let check (s : string) : (unit, string) result =
  match Obs_json.parse s with
  | Error msg -> Error ("not JSON: " ^ msg)
  | Ok root -> (
      match Option.bind (Obs_json.member "traceEvents" root) Obs_json.to_list_opt with
      | None -> Error "no traceEvents array"
      | Some rows -> (
          let named_pids = Hashtbl.create 8 in
          let stacks : (int * int, (string * float) list ref) Hashtbl.t =
            Hashtbl.create 16
          in
          let stack k =
            match Hashtbl.find_opt stacks k with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add stacks k r;
                r
          in
          let err = ref None in
          let fail i msg =
            if !err = None then err := Some (Printf.sprintf "event %d: %s" i msg)
          in
          List.iteri
            (fun i row ->
              let str k = Option.bind (Obs_json.member k row) Obs_json.to_string_opt in
              let num k = Option.bind (Obs_json.member k row) Obs_json.to_num_opt in
              match (str "ph", num "pid", num "tid") with
              | None, _, _ -> fail i "missing ph"
              | _, None, _ -> fail i "missing pid"
              | _, _, None -> fail i "missing tid"
              | Some ph, Some pid, Some tid -> (
                  let name = str "name" in
                  match ph with
                  | "M" ->
                      if name = Some "process_name" then
                        Hashtbl.replace named_pids (int_of_float pid) ()
                  (* "C" (counter) rows carry name/ts like instants but no
                     stack discipline and no naming requirement. *)
                  | "C" -> (
                      match (name, num "ts") with
                      | None, _ -> fail i "missing name"
                      | _, None -> fail i "missing ts"
                      | Some _, Some _ -> ())
                  | "B" | "E" | "i" -> (
                      match (name, num "ts") with
                      | None, _ -> fail i "missing name"
                      | _, None -> fail i "missing ts"
                      | Some nm, Some ts -> (
                          let k = (int_of_float pid, int_of_float tid) in
                          match ph with
                          | "B" ->
                              let st = stack k in
                              (match !st with
                              | (_, prev) :: _ when ts < prev ->
                                  fail i "timestamp went backwards"
                              | _ -> ());
                              st := (nm, ts) :: !st
                          | "E" -> (
                              let st = stack k in
                              match !st with
                              | [] -> fail i "E without matching B"
                              | (bn, bts) :: rest ->
                                  if bn <> nm then
                                    fail i
                                      (Printf.sprintf
                                         "E name %S does not match open B %S" nm bn);
                                  if ts < bts then fail i "span ends before it begins";
                                  st := rest)
                          | _ -> ()))
                  | other -> fail i (Printf.sprintf "unknown ph %S" other)))
            rows;
          Hashtbl.iter
            (fun (pid, _) st ->
              if !st <> [] && !err = None then
                err := Some (Printf.sprintf "pid %d: unclosed span at end of trace" pid))
            stacks;
          if !err = None then begin
            (* Every pid that emitted a span/instant must be named. *)
            List.iteri
              (fun i row ->
                let ph =
                  Option.bind (Obs_json.member "ph" row) Obs_json.to_string_opt
                in
                let pid =
                  Option.bind (Obs_json.member "pid" row) Obs_json.to_num_opt
                in
                match (ph, pid) with
                | Some ("B" | "E" | "i"), Some p ->
                    if not (Hashtbl.mem named_pids (int_of_float p)) then
                      fail i (Printf.sprintf "pid %d has no process_name metadata"
                                (int_of_float p))
                | _ -> ())
              rows
          end;
          match !err with None -> Ok () | Some m -> Error m))
