(* Bounded ring buffer for the per-domain event recorders.

   Single-writer by construction (one ring per domain-local recorder
   state), so plain mutable fields suffice — no synchronization on the hot
   path.  When full, the oldest event is overwritten and the [dropped]
   counter incremented: a trace is a *window* ending at collection time,
   and the drop count says exactly how much history fell off the front.
   Readers run at quiescence ([to_list] after joining the writers). *)

type 'a t = {
  buf : 'a array;
  capacity : int;
  mutable next : int;  (* total pushes so far; next write goes to next mod capacity *)
  mutable dropped : int;
}

let create ~capacity dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity dummy; capacity; next = 0; dropped = 0 }

let capacity t = t.capacity

let push t x =
  if t.next >= t.capacity then t.dropped <- t.dropped + 1;
  t.buf.(t.next mod t.capacity) <- x;
  t.next <- t.next + 1

let length t = min t.next t.capacity
let dropped t = t.dropped

let clear t dummy =
  Array.fill t.buf 0 t.capacity dummy;
  t.next <- 0;
  t.dropped <- 0

(* Retained events, oldest first. *)
let to_list t =
  let n = length t in
  let first = t.next - n in
  List.init n (fun i -> t.buf.((first + i) mod t.capacity))
