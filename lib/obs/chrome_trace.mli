(** Chrome trace-event JSON exporter (loadable in chrome://tracing and
    Perfetto): pid = domain, tid = lane, operation spans as "B"/"E"
    pairs, C&S attempts and cost-model notes as instants, metadata rows
    naming every pid/tid.  A pre-pass drops span edges orphaned by ring
    overwrites, so emitted spans always pair.  With the simulator clock
    and [time_div = 1] the output is a pure function of the seed. *)

val to_buffer :
  ?time_div:int -> ?gc:Gc_attr.snap -> Buffer.t -> Obs_event.t list -> unit
(** [time_div] divides recorder timestamps into the file's time unit:
    1 (default) under the simulator, 1000 for ns -> us on real memory.
    [gc], when given, is emitted as a "C" (counter) row carrying the GC
    attribution for the window the trace covers. *)

val to_string : ?time_div:int -> ?gc:Gc_attr.snap -> Obs_event.t list -> string

val check : string -> (unit, string) result
(** Well-formedness: parses as JSON, has a [traceEvents] array, B/E
    edges nest per (pid, tid) with matching names and ordered
    timestamps, every pid emitting spans or instants is named by
    process_name metadata, and "C" counter rows carry a name and
    timestamp. *)

val cas_name : Lf_kernel.Mem_event.cas_kind -> string
(** ["cas:flag"], ["cas:mark"], ["cas:unlink"], ... — the instant names
    the exporter uses. *)
