(** Lock-free hash table with list-based buckets, after Michael (SPAA 2002,
    the paper's citation [8]): a fixed power-of-two array of lock-free
    sorted linked lists, here Fomitchev-Ruppert lists, so every bucket
    operation enjoys O(n_bucket + c) amortized recovery instead of
    restart-from-head.  The bucket count is fixed at creation; Michael's
    dynamic growth is orthogonal to the paper and out of scope
    (DESIGN.md). *)

module type HASHABLE = sig
  include Lf_kernel.Ordered.S

  val hash : t -> int
end

module Make (K : HASHABLE) (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Dict_intf.BATCHED with type key = K.t

  val create_with :
    ?buckets:int -> ?use_hints:bool -> ?reuse_descriptors:bool -> unit -> 'a t
  (** [buckets] must be a power of two (default 64).  [use_hints] (default
      [true]) and [reuse_descriptors] (default [true], descriptor interning
      — the EXP-22 ablation when [false]) are forwarded to every bucket
      list (see [Fr_list.create_with]).  Batched operations partition the
      batch per bucket and delegate to the bucket lists' batches, so the
      Träff–Pöter predecessor carrying applies within each bucket.
      @raise Invalid_argument if [buckets] is not a power of two. *)

  val iter : 'a t -> (key -> 'a -> unit) -> unit
  (** Iterate every binding, in bucket order (not key order); exact at
      quiescence. *)
end

(** Integer keys under Fibonacci hashing (spreads consecutive keys). *)
module Int_key : HASHABLE with type t = int

module String_key : HASHABLE with type t = string
module Atomic_int : module type of Make (Int_key) (Lf_kernel.Atomic_mem)
module Atomic_string : module type of Make (String_key) (Lf_kernel.Atomic_mem)
