(* Lock-free hash table with list-based buckets, after Michael (SPAA 2002,
   the paper's citation [8]): a fixed array of lock-free sorted linked
   lists.  Michael built his buckets from his own list; here each bucket is
   a Fomitchev-Ruppert list, so every bucket operation enjoys the
   O(n_bucket + c) amortized recovery bound instead of restart-from-head.

   The bucket count is fixed at creation (a power of two).  Michael's
   dynamic variant grows the bucket array; growth is orthogonal to the
   paper's contribution and is out of scope here (see DESIGN.md). *)

module type HASHABLE = sig
  include Lf_kernel.Ordered.S

  val hash : t -> int
end

module Make (K : HASHABLE) (M : Lf_kernel.Mem.S) = struct
  module Bucket = Lf_list.Fr_list.Make (K) (M)

  type key = K.t
  type 'a t = { buckets : 'a Bucket.t array; mask : int }

  let name = "lf-hashtable"

  let create_with ?(buckets = 64) ?(use_hints = true)
      ?(reuse_descriptors = true) () =
    if buckets <= 0 || buckets land (buckets - 1) <> 0 then
      invalid_arg "Lf_hashtable.create_with: buckets must be a power of two";
    {
      buckets =
        Array.init buckets (fun _ ->
            Bucket.create_with ~use_hints ~reuse_descriptors ~use_flags:true
              ());
      mask = buckets - 1;
    }

  let create () = create_with ()

  let bucket t k = t.buckets.(K.hash k land t.mask)

  let find t k = Bucket.find (bucket t k) k
  let mem t k = Bucket.mem (bucket t k) k
  let insert t k e = Bucket.insert (bucket t k) k e
  let delete t k = Bucket.delete (bucket t k) k

  (* Batched operations: elements are partitioned per bucket and delegated
     to the bucket lists' batched operations, so predecessor carrying still
     applies within each bucket; results come back in input order. *)
  let run_batch t ~key_of ~f elems =
    let arr = Array.of_list elems in
    let n = Array.length arr in
    let groups = Array.make (Array.length t.buckets) [] in
    for i = n - 1 downto 0 do
      let b = K.hash (key_of arr.(i)) land t.mask in
      groups.(b) <- i :: groups.(b)
    done;
    let results = Array.make n false in
    Array.iteri
      (fun b idxs ->
        match idxs with
        | [] -> ()
        | _ ->
            let rs = f t.buckets.(b) (List.map (fun i -> arr.(i)) idxs) in
            List.iter2 (fun i r -> results.(i) <- r) idxs rs)
      groups;
    Array.to_list results

  let insert_batch t kvs = run_batch t ~key_of:fst ~f:Bucket.insert_batch kvs
  let delete_batch t ks = run_batch t ~key_of:Fun.id ~f:Bucket.delete_batch ks
  let mem_batch t ks = run_batch t ~key_of:Fun.id ~f:Bucket.mem_batch ks

  let to_list t =
    Array.to_list t.buckets
    |> List.concat_map Bucket.to_list
    |> List.sort (fun (a, _) (b, _) -> K.compare a b)

  let length t =
    Array.fold_left (fun acc b -> acc + Bucket.length b) 0 t.buckets

  let check_invariants t = Array.iter Bucket.check_invariants t.buckets

  let iter t f = Array.iter (fun b -> Bucket.iter b f) t.buckets
end

module Int_key = struct
  include Lf_kernel.Ordered.Int

  (* Fibonacci hashing spreads consecutive integers across buckets. *)
  let hash k = (k * 0x2545F4914F6CDD1D) lsr 17 land max_int
end

module Atomic_int = Make (Int_key) (Lf_kernel.Atomic_mem)

module String_key = struct
  include Lf_kernel.Ordered.String

  let hash = Hashtbl.hash
end

module Atomic_string = Make (String_key) (Lf_kernel.Atomic_mem)
