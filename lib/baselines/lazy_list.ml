(* Lazy synchronization list (Heller et al. 2005): the strongest common
   lock-based linked-list baseline.  Wait-free contains; insert/delete lock
   the two adjacent nodes, validate, and apply.  Marked flags make the
   unlocked traversal safe.  Uses real mutexes, so it runs only on real
   domains (not in the simulator). *)

module Make (K : Lf_kernel.Ordered.S) = struct
  module BK = Lf_kernel.Ordered.Bounded (K)

  type key = K.t

  type 'a node = {
    key : K.t Lf_kernel.Ordered.bounded;
    elt : 'a option;
    lock : Mutex.t;
    marked : bool Atomic.t;
    next : 'a link Atomic.t;
  }

  and 'a link = Null | Node of 'a node

  type 'a t = { head : 'a node; tail : 'a node }

  let name = "lazy-list"

  let make_node key elt next =
    {
      key;
      elt;
      lock = Mutex.create ();
      marked = Atomic.make false;
      next = Atomic.make next;
    }

  let create () =
    let tail = make_node Pos_inf None Null in
    let head = make_node Neg_inf None (Node tail) in
    { head; tail }

  let as_node = function
    | Node n -> n
    | Null -> invalid_arg "Lazy_list: dereferenced tail successor"

  (* Unsynchronized traversal: pred.key < k <= curr.key. *)
  let locate t k =
    let rec go pred curr =
      if BK.lt curr.key k then go curr (as_node (Atomic.get curr.next))
      else (pred, curr)
    in
    go t.head (as_node (Atomic.get t.head.next))

  let validate pred curr =
    (not (Atomic.get pred.marked))
    && (not (Atomic.get curr.marked))
    &&
    match Atomic.get pred.next with Node n -> n == curr | Null -> false

  let find t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let _, curr = locate t kb in
    if BK.equal curr.key kb && not (Atomic.get curr.marked) then curr.elt
    else None

  let mem t k = Option.is_some (find t k)

  let with_locks pred curr f =
    Mutex.lock pred.lock;
    Mutex.lock curr.lock;
    Fun.protect
      ~finally:(fun () ->
        Mutex.unlock curr.lock;
        Mutex.unlock pred.lock)
      f

  let insert t k e =
    let kb = Lf_kernel.Ordered.Mid k in
    let rec loop () =
      let pred, curr = locate t kb in
      let outcome =
        with_locks pred curr (fun () ->
            if not (validate pred curr) then `Retry
            else if BK.equal curr.key kb then `Dup
            else begin
              let n = make_node kb (Some e) (Node curr) in
              Atomic.set pred.next (Node n);
              `Ok
            end)
      in
      match outcome with `Ok -> true | `Dup -> false | `Retry -> loop ()
    in
    loop ()

  let delete t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let rec loop () =
      let pred, curr = locate t kb in
      let outcome =
        with_locks pred curr (fun () ->
            if not (validate pred curr) then `Retry
            else if not (BK.equal curr.key kb) then `Absent
            else begin
              Atomic.set curr.marked true;
              Atomic.set pred.next (Atomic.get curr.next);
              `Ok
            end)
      in
      match outcome with `Ok -> true | `Absent -> false | `Retry -> loop ()
    in
    loop ()

  let fold t f acc =
    let rec go acc = function
      | Null -> acc
      | Node n -> (
          match (n.key, n.elt) with
          | Mid k, Some e when not (Atomic.get n.marked) ->
              go (f acc k e) (Atomic.get n.next)
          | _ -> go acc (Atomic.get n.next))
    in
    go acc (Atomic.get t.head.next)

  let to_list t = List.rev (fold t (fun acc k e -> (k, e) :: acc) [])

  (* Chaos hook: occupy the head sentinel's lock while [f] runs.  Finds
     stay wait-free (they take no locks), but any insert/delete whose
     predecessor is the head blocks — the partial non-lock-freedom EXP-18's
     starvation watchdog must observe. *)
  let with_head_locked t f =
    Mutex.lock t.head.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.head.lock) f
  let length t = fold t (fun acc _ _ -> acc + 1) 0

  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    let rec go prev_key = function
      | Null -> fail "lazy-list: tail not reached"
      | Node n ->
          if not (BK.lt prev_key n.key) then fail "lazy-list: keys unsorted";
          if n == t.tail then begin
            if Atomic.get n.next <> Null then fail "lazy-list: tail has successor"
          end
          else begin
            if Atomic.get n.marked then
              fail "lazy-list: marked node at quiescence";
            go n.key (Atomic.get n.next)
          end
    in
    go t.head.key (Atomic.get t.head.next)
end

module Int = Make (Lf_kernel.Ordered.Int)
