(** Coarse-grained lock-based baseline: one global mutex around the
    sequential sorted list. *)

module Make (K : Lf_kernel.Ordered.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t

  val with_lock_held : 'a t -> (unit -> unit) -> unit
  (** Chaos hook: hold the global lock while the callback runs, blocking
      every operation.  Models the stalled/crashed lock holder of EXP-18's
      graceful-degradation comparison; the lock is released when the
      callback returns (OCaml domains cannot be killed, so a "crash" is a
      stall longer than the watchdog budget). *)
end

module Int : sig
  include Lf_kernel.Dict_intf.S with type key = int

  val with_lock_held : 'a t -> (unit -> unit) -> unit
end
