(** Lazy-synchronization list (Heller et al. 2005): the strongest common
    lock-based linked-list baseline.  Wait-free [find]/[mem]; [insert] and
    [delete] lock the two adjacent nodes, validate, and apply; marked flags
    make the unlocked traversal safe.  Real mutexes, so domains only (not
    usable inside the simulator). *)

module Make (K : Lf_kernel.Ordered.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t

  val fold : 'a t -> ('b -> key -> 'a -> 'b) -> 'b -> 'b

  val with_head_locked : 'a t -> (unit -> unit) -> unit
  (** Chaos hook: hold the head sentinel's lock while the callback runs.
      [find]/[mem] stay wait-free, but any update whose predecessor is the
      head blocks — the partial starvation EXP-18's watchdog must observe. *)
end

module Int : sig
  include Lf_kernel.Dict_intf.S with type key = int

  val with_head_locked : 'a t -> (unit -> unit) -> unit
end
