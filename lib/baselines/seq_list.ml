(* Plain sequential sorted linked list: the correctness oracle for the
   concurrent implementations and the "necessary cost" baseline of the
   paper's amortized analysis (the steps even a sequential algorithm must
   take). *)

module Make (K : Lf_kernel.Ordered.S) = struct
  type key = K.t

  type 'a node = {
    nkey : K.t;
    nelt : 'a;
    mutable nnext : 'a node option;
  }

  type 'a t = { mutable first : 'a node option; mutable size : int }

  let name = "seq-list"
  let create () = { first = None; size = 0 }

  (* Returns (predecessor option, first node with key >= k option). *)
  let locate t k =
    let rec go prev curr =
      match curr with
      | Some n when K.compare n.nkey k < 0 -> go curr n.nnext
      | _ -> (prev, curr)
    in
    go None t.first

  let find t k =
    match locate t k with
    | _, Some n when K.compare n.nkey k = 0 -> Some n.nelt
    | _ -> None

  let mem t k = Option.is_some (find t k)

  let insert t k e =
    match locate t k with
    | _, Some n when K.compare n.nkey k = 0 -> false
    | prev, curr ->
        let node = { nkey = k; nelt = e; nnext = curr } in
        (match prev with
        | None -> t.first <- Some node
        | Some p -> p.nnext <- Some node);
        t.size <- t.size + 1;
        true

  let delete t k =
    match locate t k with
    | prev, Some n when K.compare n.nkey k = 0 ->
        (match prev with
        | None -> t.first <- n.nnext
        | Some p -> p.nnext <- n.nnext);
        t.size <- t.size - 1;
        true
    | _ -> false

  let to_list t =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go ((n.nkey, n.nelt) :: acc) n.nnext
    in
    go [] t.first

  let length t = t.size

  let check_invariants t =
    let rec go count = function
      | None ->
          if not (Int.equal count t.size) then
            failwith "seq-list: size counter mismatch"
      | Some n -> (
          match n.nnext with
          | Some m when K.compare n.nkey m.nkey >= 0 ->
              failwith "seq-list: keys unsorted"
          | _ -> go (count + 1) n.nnext)
    in
    go 0 t.first
end

module Int = Make (Lf_kernel.Ordered.Int)
