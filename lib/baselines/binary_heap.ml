(* Array-based binary min-heap, plus a mutex-protected concurrent wrapper:
   the classical lock-based priority-queue baseline that skip-list based
   queues (Lotan-Shavit [13], Sundell-Tsigas [14]) are measured against. *)

module Seq = struct
  type 'a t = {
    mutable data : (int * 'a) array; (* (priority, payload) *)
    mutable size : int;
  }

  let create () = { data = [||]; size = 0 }

  (* Grow on demand, using [fill] (the element about to be pushed) for the
     fresh slots so no dummy payload is ever needed. *)
  let grow t fill =
    if Int.equal t.size (Array.length t.data) then begin
      let cap = max 16 (2 * Array.length t.data) in
      let d = Array.make cap fill in
      Array.blit t.data 0 d 0 t.size;
      t.data <- d
    end

  let swap t i j =
    let x = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- x

  let rec sift_up t i =
    let parent = (i - 1) / 2 in
    if i > 0 && fst t.data.(i) < fst t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && fst t.data.(l) < fst t.data.(!smallest) then smallest := l;
    if r < t.size && fst t.data.(r) < fst t.data.(!smallest) then smallest := r;
    if not (Int.equal !smallest i) then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t prio v =
    grow t (prio, v);
    t.data.(t.size) <- (prio, v);
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let pop_min t =
    if t.size = 0 then None
    else begin
      let top = t.data.(0) in
      t.size <- t.size - 1;
      t.data.(0) <- t.data.(t.size);
      sift_down t 0;
      Some top
    end

  let length t = t.size
  let is_empty t = t.size = 0

  let check_invariants t =
    for i = 1 to t.size - 1 do
      if fst t.data.(i) < fst t.data.((i - 1) / 2) then
        failwith "binary-heap: heap property violated"
    done
end

module Locked = struct
  type 'a t = { lock : Mutex.t; heap : 'a Seq.t }

  let name = "locked-heap"
  let create () = { lock = Mutex.create (); heap = Seq.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let push t prio v = locked t (fun () -> Seq.push t.heap prio v)
  let pop_min t = locked t (fun () -> Seq.pop_min t.heap)
  let length t = locked t (fun () -> Seq.length t.heap)
  let is_empty t = locked t (fun () -> Seq.is_empty t.heap)
  let check_invariants t = locked t (fun () -> Seq.check_invariants t.heap)
end
