(* Coarse-grained lock-based baseline: a global mutex around the sequential
   sorted list.  The simplest "lock-based implementation" the lock-free
   designs are compared against in the experimental literature the paper
   cites. *)

module Make (K : Lf_kernel.Ordered.S) = struct
  module S = Seq_list.Make (K)

  type key = K.t
  type 'a t = { lock : Mutex.t; list : 'a S.t }

  let name = "coarse-list"
  let create () = { lock = Mutex.create (); list = S.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let find t k = locked t (fun () -> S.find t.list k)
  let mem t k = locked t (fun () -> S.mem t.list k)
  let insert t k e = locked t (fun () -> S.insert t.list k e)
  let delete t k = locked t (fun () -> S.delete t.list k)
  let to_list t = locked t (fun () -> S.to_list t.list)
  let length t = locked t (fun () -> S.length t.list)
  let check_invariants t = locked t (fun () -> S.check_invariants t.list)

  (* Chaos hook: occupy the global lock for the duration of [f].  Models a
     stalled or crashed lock holder — every other operation blocks until
     [f] returns, which is exactly the non-lock-freedom EXP-18's starvation
     watchdog must observe. *)
  let with_lock_held t f = locked t f
end

module Int = Make (Lf_kernel.Ordered.Int)
