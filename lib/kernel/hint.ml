(* Per-domain predecessor cache ("hint") for hint-guided searches.

   The paper's SEARCHFROM (Section 3.2) may start at any node that is
   unmarked and has key <= the target: an unmarked node that was once in
   the list is still logically in it (physical unlinking requires the mark
   bit, and marking is terminal), and a node found marked recovers through
   its backlink chain.  A cache of the last predecessor each domain
   touched is therefore a pure optimization: the structure validates every
   hint before use, and a hint that fails validation merely costs the
   fallback to the head.

   One cache instance belongs to one structure instance.  The slot is
   domain-local (no synchronization on the hot path); a lock-free registry
   collects per-domain statistics for the benches, mirroring
   [Counting_mem].  Cached values are ordinary heap pointers: under a
   simulated memory all processes share the one real domain's slot, which
   is still safe (validation) and still deterministic (the slot belongs to
   the structure, which Explore recreates per schedule). *)

type stats = {
  mutable hits : int;  (** hint validated and used as the search start *)
  mutable stale : int;  (** hint present but failed validation *)
  mutable misses : int;  (** no hint cached in this domain yet *)
  mutable stores : int;  (** publications of a fresh predecessor *)
}

let mk_stats () = { hits = 0; stale = 0; misses = 0; stores = 0 }

let add_stats ~into s =
  into.hits <- into.hits + s.hits;
  into.stale <- into.stale + s.stale;
  into.misses <- into.misses + s.misses;
  into.stores <- into.stores + s.stores

module Make (M : Mem.S) = struct
  type 'a slot = { mutable value : 'a option; stats : stats }

  type 'a t = {
    key : 'a slot Domain.DLS.key;
    registry : (int * stats) list Atomic.t;
  }

  let register registry st =
    let id = (Domain.self () :> int) in
    let rec add () =
      let old = Atomic.get registry in
      if not (Atomic.compare_and_set registry old ((id, st) :: old)) then
        add ()
    in
    add ()

  let create () =
    let registry = Atomic.make [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let st = mk_stats () in
          register registry st;
          { value = None; stats = st })
    in
    { key; registry }

  let slot t = Domain.DLS.get t.key
  let load t = (slot t).value

  (* Preallocated so the hot path never builds a string. *)
  let ev_store = Mem_event.User "hint:store"
  let ev_hit = Mem_event.User "hint:hit"
  let ev_stale = Mem_event.User "hint:stale"
  let ev_miss = Mem_event.User "hint:miss"

  let store t v =
    let s = slot t in
    (* Re-box only when the value actually changed: every operation
       publishes its end predecessor, and on quiet stretches (or tight
       same-region traffic) that is the same node over and over — boxing a
       fresh [Some] each time put a per-op allocation on the hot path. *)
    (match s.value with
    | Some old when old == v -> ()
    | _ -> s.value <- Some v);
    s.stats.stores <- s.stats.stores + 1;
    M.event ev_store

  let clear t = (slot t).value <- None

  let note_hit t =
    let s = slot t in
    s.stats.hits <- s.stats.hits + 1;
    M.event ev_hit

  let note_stale t =
    let s = slot t in
    s.stats.stale <- s.stats.stale + 1;
    M.event ev_stale

  let note_miss t =
    let s = slot t in
    s.stats.misses <- s.stats.misses + 1;
    M.event ev_miss

  (* Quiescent use only, like [Counting_mem.grand_total]. *)
  let totals t =
    let total = mk_stats () in
    List.iter (fun (_, s) -> add_stats ~into:total s) (Atomic.get t.registry);
    total
end
