(** Shared-memory abstraction.

    Every concurrent structure in this repository is a functor over
    {!module-type:S}, so the exact same algorithm code runs on real atomics
    ({!Atomic_mem}), with per-domain cost counters ({!Counting_mem}), or
    inside the deterministic simulator ([Lf_dsim.Sim_mem]) where each shared
    access is a scheduling point.  This is the repository's load-bearing
    design decision: the code that is measured is the code that ships. *)

module type S = sig
  type 'a aref
  (** A single shared word holding an immutable value of type ['a]. *)

  val make : 'a -> 'a aref
  (** Allocate a cell.  Never a scheduling point (fresh cells are private
      until published by a C&S). *)

  val get : 'a aref -> 'a
  (** Atomic read. *)

  val cas : 'a aref -> kind:Mem_event.cas_kind -> expect:'a -> 'a -> bool
  (** Single-word compare-and-swap with {e physical equality} on [expect].
      [kind] classifies the attempt for the Section 3.4 cost model.  The
      paper's C&S returns the old value; OCaml's returns a boolean, so call
      sites that branch on the failure reason re-read the cell and
      re-validate (every such branch in the algorithms is self-validating;
      see DESIGN.md). *)

  val set : 'a aref -> 'a -> unit
  (** Unconditional store.  Used only for backlink pointers, which every
      racing helper writes with the same value. *)

  val event : Mem_event.t -> unit
  (** Cost-model annotation.  Never a scheduling point. *)

  val pause : int -> unit
  (** Backoff hint after [n] consecutive failures: [cpu_relax] spinning on
      real memory, a yield in the simulator. *)

  val stamp : 'a aref -> int
  (** Checker-assigned identity of the cell.  Positive and unique per cell
      under a checked memory ([Lf_check.Check_mem]); [0] everywhere else.
      Never a scheduling point. *)

  val annotate : 'a aref -> 'a Protocol.annot -> unit
  (** Declare a freshly made cell as a protocol carrier (a succ field or a
      backlink) so a checked memory can validate every transition against
      the paper's state machine (see {!Protocol}).  A no-op on unchecked
      memories; never a scheduling point. *)
end
