(** Abstract views of the paper's succ-field protocol, for checked memories.

    The algorithms are functors over {!Mem.S} with private node types, so a
    wrapping memory cannot inspect descriptors directly.  Each
    protocol-carrying cell is {e annotated} right after {!Mem.S.make} with a
    decoder from the cell's abstract contents to one of these views; the
    decoder closes over the owning node, compares keys with the functor's
    own comparator, and names neighbouring cells by their {!Mem.S.stamp}.
    Unchecked memories ignore annotations entirely. *)

(** View of one succ descriptor [(right, mark, flag)]. *)
type succ_view = {
  right_id : int;
      (** stamp of the right neighbour's succ cell; {!null_id} for [Null] *)
  right_gt_owner : bool;
      (** strict key order: [right.key > owner.key] (INV 1, locally) *)
  mark : bool;
  flag : bool;
}

(** View of one backlink cell. *)
type link_view = {
  target_id : int;
      (** stamp of the target node's succ cell; {!null_id} when unset *)
  left_of_owner : bool;  (** strict key order: [target.key < owner.key] *)
}

val null_id : int
(** The stamp stand-in for [Null] ([-1]; real stamps are positive). *)

type 'a annot =
  | Succ of {
      owner : string;  (** rendered key of the node owning the cell *)
      head : bool;  (** chain start: snapshots are rendered from here *)
      sentinel : bool;
          (** head or tail: exempt from node-lifecycle rules *)
      view : 'a -> succ_view;
    }
  | Backlink of { owner : string; view : 'a -> link_view }
