(* Descriptive statistics for benchmark tables: summaries, percentiles, and
   the two model fits the experiments need (log-log slope for growth-shape
   checks, geometric fit for the skip-list tower-height distribution). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  p9999 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array"
  else
    let idx = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor idx) and hi = int_of_float (ceil idx) in
    let frac = idx -. floor idx in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize (xs : float array) =
  let n = Array.length xs in
  if n = 0 then
    { count = 0; mean = nan; stddev = nan; min = nan; max = nan; p50 = nan;
      p90 = nan; p99 = nan; p999 = nan; p9999 = nan }
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let mean = sum /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
      /. float_of_int (max 1 (n - 1))
    in
    {
      count = n;
      mean;
      stddev = sqrt var;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile sorted 0.5;
      p90 = percentile sorted 0.9;
      p99 = percentile sorted 0.99;
      p999 = percentile sorted 0.999;
      p9999 = percentile sorted 0.9999;
    }
  end

(* Histogram-friendly constructor: summarize (value, count) pairs without
   expanding them into one float per sample.  This is how the lf_obs
   log-bucketed latency histograms produce a [summary] (bucket midpoint,
   bucket count), and merging histograms then summarizing commutes with
   summarizing the merged data.  Percentiles step: the smallest value whose
   cumulative count reaches p * total. *)
let of_weighted (pairs : (float * int) array) =
  let pairs = Array.of_list (List.filter (fun (_, c) -> c > 0) (Array.to_list pairs)) in
  let n = Array.fold_left (fun a (_, c) -> a + c) 0 pairs in
  if n = 0 then
    { count = 0; mean = nan; stddev = nan; min = nan; max = nan; p50 = nan;
      p90 = nan; p99 = nan; p999 = nan; p9999 = nan }
  else begin
    let sorted = Array.copy pairs in
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) sorted;
    let sum =
      Array.fold_left (fun a (v, c) -> a +. (v *. float_of_int c)) 0.0 sorted
    in
    let mean = sum /. float_of_int n in
    let var =
      Array.fold_left
        (fun a (v, c) -> a +. (float_of_int c *. ((v -. mean) ** 2.0)))
        0.0 sorted
      /. float_of_int (max 1 (n - 1))
    in
    let pct p =
      let target = p *. float_of_int n in
      let rec go i acc =
        if i >= Array.length sorted - 1 then fst sorted.(Array.length sorted - 1)
        else
          let acc = acc + snd sorted.(i) in
          if float_of_int acc >= target then fst sorted.(i) else go (i + 1) acc
      in
      go 0 0
    in
    {
      count = n;
      mean;
      stddev = sqrt var;
      min = fst sorted.(0);
      max = fst sorted.(Array.length sorted - 1);
      p50 = pct 0.5;
      p90 = pct 0.9;
      p99 = pct 0.99;
      p999 = pct 0.999;
      p9999 = pct 0.9999;
    }
  end

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f p999=%.2f \
     p9999=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.p999 s.p9999 s.max

(* Least-squares fit of y = a + b*x; returns (a, b, r2). *)
let linear_fit (points : (float * float) array) =
  let n = float_of_int (Array.length points) in
  if Array.length points < 2 then invalid_arg "Stats.linear_fit";
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let syy = Array.fold_left (fun a (_, y) -> a +. (y *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  let b = ((n *. sxy) -. (sx *. sy)) /. denom in
  let a = (sy -. (b *. sx)) /. n in
  let ss_tot = syy -. (sy *. sy /. n) in
  let ss_res =
    Array.fold_left
      (fun acc (x, y) ->
        let e = y -. (a +. (b *. x)) in
        acc +. (e *. e))
      0.0 points
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  (a, b, r2)

(* Fit y = c * x^k by regressing log y on log x; returns (k, r2).  Used to
   check growth shapes: linear growth gives k ~ 1, constant gives k ~ 0. *)
let loglog_slope points =
  let logs =
    Array.map
      (fun (x, y) -> (log (max x 1e-9), log (max y 1e-9)))
      points
  in
  let _, k, r2 = linear_fit logs in
  (k, r2)

(* Given a histogram h.(i) = number of samples with value i (i >= 1), return
   the maximum-likelihood success probability of a geometric distribution
   P(X = i) = (1-p)^(i-1) * p, together with the total-variation distance
   between the empirical distribution and the fitted one.  Tower heights in a
   skip list with fair coin flips should fit p = 1/2. *)
let geometric_fit (h : int array) =
  let total = Array.fold_left ( + ) 0 h in
  if total = 0 then invalid_arg "Stats.geometric_fit";
  let weighted = ref 0 in
  Array.iteri (fun i c -> weighted := !weighted + (i * c)) h;
  let mean = float_of_int !weighted /. float_of_int total in
  let p = 1.0 /. mean in
  let tv = ref 0.0 in
  Array.iteri
    (fun i c ->
      if i >= 1 then begin
        let emp = float_of_int c /. float_of_int total in
        let model = ((1.0 -. p) ** float_of_int (i - 1)) *. p in
        tv := !tv +. (abs_float (emp -. model) /. 2.0)
      end)
    h;
  (p, !tv)
