(* Production memory: plain [Atomic.t] cells, events erased. *)

type 'a aref = 'a Atomic.t

let make = Atomic.make
let get = Atomic.get
let cas r ~kind:_ ~expect v = Atomic.compare_and_set r expect v
let set = Atomic.set
let event (_ : Mem_event.t) = ()

let pause_rng = Splitmix.domain_local 0x9a75e

let pause n =
  (* Bounded exponential backoff in units of [cpu_relax]: 2^min(n,8)
     base spins plus a uniform jitter of up to the same amount again
     (full spread [base, 2*base), capped at 512 spins total), drawn from
     the domain's own SplitMix stream.  Without the jitter, domains that
     fail a C&S together back off together and re-collide together —
     the convoy the backoff exists to break up.  [Sim_mem.pause] stays
     deterministic: jitter belongs to wall-clock runs only. *)
  let base = 1 lsl min n 8 in
  let spins = base + Splitmix.int (pause_rng ()) base in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let stamp _ = 0
let annotate _ (_ : _ Protocol.annot) = ()
