(* Production memory: plain [Atomic.t] cells, events erased. *)

type 'a aref = 'a Atomic.t

let make = Atomic.make
let get = Atomic.get
let cas r ~kind:_ ~expect v = Atomic.compare_and_set r expect v
let set = Atomic.set
let event (_ : Mem_event.t) = ()

let pause n =
  (* Bounded exponential backoff in units of [cpu_relax]. *)
  let spins = 1 lsl min n 8 in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let stamp _ = 0
let annotate _ (_ : _ Protocol.annot) = ()
