(* Shared-memory abstraction.

   All concurrent structures in this repository are functors over [Mem.S] so
   that the exact same algorithm code can be
   - instantiated with {!Atomic_mem} for production / wall-clock benchmarks,
   - instantiated with {!Counting_mem} for cheap step counting on real runs,
   - instantiated with the simulator's memory ([Lf_dsim.Sim_mem]) where every
     shared access is a deterministic scheduling point.

   [cas] is a single-word compare-and-swap with *physical equality* on the
   expected value.  The paper's C&S returns the old value; OCaml's exposes a
   boolean, so callers that need the failure reason re-read the cell — every
   such call site in the algorithms re-validates the state it reads, which
   keeps the decisions linearizable (see DESIGN.md, substitution table). *)

module type S = sig
  type 'a aref

  val make : 'a -> 'a aref
  val get : 'a aref -> 'a

  val cas : 'a aref -> kind:Mem_event.cas_kind -> expect:'a -> 'a -> bool
  (** Physical-equality compare-and-swap.  [kind] classifies the attempt for
      the Section 3.4 cost model. *)

  val set : 'a aref -> 'a -> unit
  (** Unconditional store (used only for backlink pointers, which are written
      at most to a single value by however many helpers race on them). *)

  val event : Mem_event.t -> unit
  (** Cost-model annotation; never a scheduling point. *)

  val pause : int -> unit
  (** Backoff hint after [n] consecutive failures; a no-op or [cpu_relax] on
      real memory, a yield in the simulator. *)

  val stamp : 'a aref -> int
  (** Checker-assigned identity of the cell.  Positive and unique per cell
      under a checked memory ([Lf_check.Check_mem]); [0] everywhere else.
      Never a scheduling point. *)

  val annotate : 'a aref -> 'a Protocol.annot -> unit
  (** Declare a freshly made cell as a protocol carrier (a succ field or a
      backlink) so a checked memory can validate every transition against
      the paper's state machine.  A no-op on unchecked memories; never a
      scheduling point. *)
end
