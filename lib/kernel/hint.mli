(** Per-domain predecessor cache for hint-guided searches.

    The paper's search machinery (Section 3.2) accepts any starting node
    that is unmarked with key [<=] the target, and recovers from marked
    nodes through backlinks — so the structures may begin a search at a
    cached predecessor instead of the head whenever the cache survives
    validation.  This module is only the cache: one domain-local slot per
    [Domain], per structure instance, plus hit/stale/miss accounting.
    Validation is the structure's job.

    Generic over {!Mem.S} purely for observability: cache traffic is
    emitted as [Mem_event.User] annotations ([hint:hit], [hint:stale],
    [hint:miss], [hint:store]), which are never scheduling points, so the
    cache behaves identically on real atomics and in the simulator. *)

(** Per-domain counters, summed over domains by {!Make.totals}. *)
type stats = {
  mutable hits : int;  (** hint validated and used as the search start *)
  mutable stale : int;  (** hint present but failed validation *)
  mutable misses : int;  (** no hint cached in this domain yet *)
  mutable stores : int;  (** publications of a fresh predecessor *)
}

module Make (M : Mem.S) : sig
  type 'a t
  (** A cache of ['a] values (typically a node pointer), one slot per
      domain.  Belongs to exactly one structure instance. *)

  val create : unit -> 'a t

  val load : 'a t -> 'a option
  (** The calling domain's cached value, if any.  Pure read; pair with
      {!note_hit} / {!note_stale} after validating. *)

  val store : 'a t -> 'a -> unit
  (** Publish a fresh predecessor in the calling domain's slot. *)

  val clear : 'a t -> unit
  (** Drop the calling domain's cached value. *)

  val note_hit : 'a t -> unit
  (** Record that a loaded hint passed validation. *)

  val note_stale : 'a t -> unit
  (** Record that a loaded hint failed validation.  Does not drop the
      value: callers whose cached value amortizes across operations (the
      skip list's tower path) keep it; callers for whom staleness means
      a dead node ({!clear}) drop it themselves. *)

  val note_miss : 'a t -> unit
  (** Record that no hint was cached. *)

  val totals : 'a t -> stats
  (** Sum of every domain's counters.  Quiescent use only. *)
end
