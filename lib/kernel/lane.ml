(* Per-domain lane identity for fault attribution.

   A fault plan targets "lanes" - stable small integers naming the workers
   of a harness run - rather than raw domain ids, which are allocation
   order dependent and restart across runs.  Workers register their lane at
   startup; unregistered domains fall back to the domain id, which keeps
   single-domain uses (tests, REPL) working without ceremony.

   Kept in the kernel so domain-local state stays behind the kernel seam
   (the same reasoning as [Hint] and [Splitmix.domain_local]; see the
   no-raw-dls lint rule). *)

let key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set i = Domain.DLS.set key (Some i)
let clear () = Domain.DLS.set key None

let get () =
  match Domain.DLS.get key with
  | Some i -> i
  | None -> (Domain.self () :> int)
