(** Vocabulary for the cost model of Section 3.4 of the paper.

    The analysis counts exactly three kinds of {e essential steps}: C&S
    attempts (classified into the four kinds the billing function
    {m \beta} distinguishes), backlink-pointer traversals, and the
    [next_node]/[curr_node] pointer updates performed by searches.
    Implementations emit these through {!Mem.S.event}; the three memory
    instances erase, count, or schedule them. *)

(** Classification of C&S attempts, matching the paper's four types plus a
    bucket for C&S's performed by baseline algorithms outside the
    taxonomy. *)
type cas_kind =
  | Insertion  (** line 11 of INSERT: linking a new node *)
  | Flagging  (** line 4 of TRYFLAG: pinning the predecessor *)
  | Marking  (** line 3 of TRYMARK: logical deletion *)
  | Physical_delete  (** line 2 of HELPMARKED: unlinking *)
  | Other_cas
      (** C&S outside the four-kind taxonomy (e.g. Harris chain excision,
          Valois cursor operations) *)

(** Cost-model events emitted by the algorithms. *)
type t =
  | Backlink_step  (** one traversal of a backlink pointer *)
  | Next_update  (** [next_node] pointer update in a search (line 6) *)
  | Curr_update  (** [curr_node] pointer update in a search (line 8) *)
  | Aux_step  (** auxiliary-node traversal (Valois baseline) *)
  | Retry  (** an operation restarted its search from scratch *)
  | Help  (** entered a helping routine for another operation *)
  | User of string  (** free-form annotation used by benches and tests *)

val cas_kind_to_string : cas_kind -> string

(** Inverse of {!cas_kind_to_string}; used by the fault-plan parser. *)
val cas_kind_of_string : string -> cas_kind option

val to_string : t -> string
val pp_cas_kind : Format.formatter -> cas_kind -> unit
val pp : Format.formatter -> t -> unit
