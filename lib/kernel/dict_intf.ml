(* The dictionary abstract data type every implementation in this repository
   exposes (the paper's SEARCH / INSERT / DELETE, in OCaml clothing).  The
   uniform signature is what lets the workload runner, the stress tests and
   the benchmarks be written once and applied to every algorithm. *)

module type S = sig
  type key
  type 'a t

  val name : string
  (** Short human-readable identifier used in benchmark tables. *)

  val create : unit -> 'a t

  val find : 'a t -> key -> 'a option
  (** SEARCH: the element bound to [key], if present. *)

  val mem : 'a t -> key -> bool

  val insert : 'a t -> key -> 'a -> bool
  (** INSERT: [true] on success, [false] if the key was already present
      (DUPLICATE_KEY). *)

  val delete : 'a t -> key -> bool
  (** DELETE: [true] on success, [false] if absent (NO_SUCH_KEY). *)

  val to_list : 'a t -> (key * 'a) list
  (** Snapshot of the regular nodes in key order.  Only meaningful at
      quiescence for the concurrent implementations. *)

  val length : 'a t -> int

  val check_invariants : 'a t -> unit
  (** Raises [Failure] if a structural invariant (sortedness, INV 1-5 where
      applicable) is violated.  Quiescent use only. *)
end

module type MAKER = functor (K : Ordered.S) (M : Mem.S) ->
  S with type key = K.t

(* Dictionaries that additionally support batched operations: the batch is
   processed in key order, each element carrying its predecessor to the
   next (the Traeff-Poeter "pragmatic" pattern).  Results are in the
   caller's original order; every element remains an independent
   linearizable operation. *)
module type BATCHED = sig
  include S

  val insert_batch : 'a t -> (key * 'a) list -> bool list
  val delete_batch : 'a t -> key list -> bool list
  val mem_batch : 'a t -> key list -> bool list
end
