(** Vocabulary for fault plans: which shared-memory accesses a fault rule
    targets.

    Reuses the cost-model classification of {!Mem_event.cas_kind}, so a
    plan can aim at exactly the protocol steps the paper names: [Cas
    Flagging] exercises every TRYFLAG retry loop, [After_cas_ok Flagging]
    fires on the accesses following a successful TRYFLAG — the window
    between TRYFLAG and TRYMARK in which a crashed process leaves its flag
    behind for helpers to recover.

    Pure description; plan execution (seeded decisions, trace recording)
    lives in [Lf_fault.Fault]. *)

(** One shared-memory access as a plan observes it: the step about to be
    executed, not its outcome. *)
type access = A_read | A_write | A_cas of Mem_event.cas_kind

type t =
  | Any  (** every shared-memory access *)
  | Read
  | Write
  | Any_cas
  | Cas of Mem_event.cas_kind
  | After_cas_ok of Mem_event.cas_kind
      (** accesses following a successful C&S of this kind by the same
          process, until that process attempts its next C&S *)

val matches : t -> last_ok:Mem_event.cas_kind option -> access -> bool
(** [last_ok] is the kind of the observed process's most recent C&S iff it
    succeeded and no later C&S has been attempted; the plan executor
    maintains it per lane. *)

val access_to_string : access -> string

val to_string : t -> string
(** The names accepted by {!of_string}: ["any"], ["read"], ["write"],
    ["cas"], the {!Mem_event.cas_kind_to_string} names, and
    ["after-<cas-kind>"]. *)

val of_string : string -> t option
