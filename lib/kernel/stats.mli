(** Descriptive statistics for the benchmark tables, plus the two model fits
    the experiments rely on: log-log slopes for growth-shape checks (is this
    curve constant, logarithmic, linear?) and a geometric fit for the
    skip-list tower-height distribution (EXP-7). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  p9999 : float;
}

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0, 1\]]; linear interpolation.
    The input must be sorted ascending.
    @raise Invalid_argument on an empty array. *)

val summarize : float array -> summary

val of_weighted : (float * int) array -> summary
(** Summarize (value, count) pairs without expanding them — the
    histogram-friendly constructor: feed it (bucket midpoint, bucket count)
    pairs from a log-bucketed histogram (possibly merged across domains
    with [Lf_obs.Hist.merge_into]) and get the same [summary] record the
    array path produces.  Percentiles are step percentiles (the smallest
    value whose cumulative count reaches [p * total]); zero-count pairs are
    ignored; an empty input yields [count = 0] and NaNs, like
    {!summarize}. *)

val pp_summary : Format.formatter -> summary -> unit

val linear_fit : (float * float) array -> float * float * float
(** Least squares [y = a + b*x]; returns [(a, b, r2)].
    @raise Invalid_argument on fewer than two points. *)

val loglog_slope : (float * float) array -> float * float
(** Fit [y = c * x^k] by regressing [log y] on [log x]; returns [(k, r2)].
    Linear growth gives [k ~ 1], constant gives [k ~ 0]. *)

val geometric_fit : int array -> float * float
(** [geometric_fit h], where [h.(i)] counts samples with value [i >= 1],
    returns the maximum-likelihood success probability [p] of a geometric
    distribution and the total-variation distance between the empirical and
    fitted distributions.  Fair-coin skip-list towers fit [p = 1/2].
    @raise Invalid_argument on an empty histogram. *)
