(* SplitMix64 (Steele, Lea & Flood 2014): a tiny, fast, splittable PRNG.

   Used everywhere randomness is needed so that every test, simulation and
   benchmark in the repository is reproducible from a single integer seed.
   Each domain / simulated process derives its own independent stream with
   [split], so concurrent runs stay deterministic in what they draw (even if
   the interleaving of real domains is not). *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

(* A non-negative 62-bit integer. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Uniform in [0, n).  Rejection sampling keeps it unbiased. *)
let int t n =
  if n <= 0 then invalid_arg "Splitmix.int";
  if n land (n - 1) = 0 then bits t land (n - 1)
  else
    let rec go () =
      let r = bits t in
      let v = r mod n in
      if r - v > (max_int lsr 1) - n then go () else v
    in
    go ()

let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* One independent generator per domain, lazily created from [salt] and the
   domain id.  Keeps raw [Domain.DLS] confined to the kernel (the lint's
   no-raw-dls rule) while letting each structure pick its own stream. *)
let domain_local salt =
  let key =
    Domain.DLS.new_key (fun () -> create (salt * ((Domain.self () :> int) + 1)))
  in
  fun () -> Domain.DLS.get key

