(** Per-domain lane identity for fault attribution.

    A fault plan targets {e lanes} — stable small integers naming the
    workers of a harness run — rather than raw domain ids, which depend on
    allocation order.  Harness workers call {!set} at startup; domains that
    never registered fall back to their domain id.

    Lives in the kernel so domain-local state stays behind the kernel seam
    (like {!Hint} and {!Splitmix.domain_local}). *)

val set : int -> unit
(** Register the calling domain's lane. *)

val clear : unit -> unit

val get : unit -> int
(** The calling domain's registered lane, or its domain id if none. *)
