(* Vocabulary for the cost model of Section 3.4 of the paper.

   The essential steps of an operation are: C&S attempts (classified by the
   four kinds the paper's mapping [beta] distinguishes), backlink pointer
   traversals, and the [next_node] / [curr_node] pointer updates performed by
   searches.  Implementations emit these through {!Mem.S.event} so that the
   same algorithm code can run uninstrumented on atomics, with cheap counters,
   or inside the deterministic simulator. *)

type cas_kind =
  | Insertion          (* line 11 of INSERT *)
  | Flagging           (* line 4 of TRYFLAG *)
  | Marking            (* line 3 of TRYMARK *)
  | Physical_delete    (* line 2 of HELPMARKED *)
  | Other_cas          (* C&S performed by baseline algorithms outside the
                          four-kind taxonomy (e.g. Harris chain excision) *)

type t =
  | Backlink_step      (* one traversal of a backlink pointer *)
  | Next_update        (* [next_node] pointer update in a search *)
  | Curr_update        (* [curr_node] pointer update in a search *)
  | Aux_step           (* auxiliary-node traversal (Valois baseline) *)
  | Retry              (* an operation restarted from scratch *)
  | Help               (* entered a helping routine for another operation *)
  | User of string     (* free-form annotation, used by benches and tests *)

let cas_kind_to_string = function
  | Insertion -> "insert-cas"
  | Flagging -> "flag-cas"
  | Marking -> "mark-cas"
  | Physical_delete -> "unlink-cas"
  | Other_cas -> "other-cas"

let cas_kind_of_string = function
  | "insert-cas" -> Some Insertion
  | "flag-cas" -> Some Flagging
  | "mark-cas" -> Some Marking
  | "unlink-cas" -> Some Physical_delete
  | "other-cas" -> Some Other_cas
  | _ -> None

let to_string = function
  | Backlink_step -> "backlink"
  | Next_update -> "next-update"
  | Curr_update -> "curr-update"
  | Aux_step -> "aux-step"
  | Retry -> "retry"
  | Help -> "help"
  | User s -> "user:" ^ s

let pp_cas_kind fmt k = Format.pp_print_string fmt (cas_kind_to_string k)
let pp fmt e = Format.pp_print_string fmt (to_string e)
