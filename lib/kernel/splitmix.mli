(** SplitMix64 (Steele, Lea & Flood 2014): a small, fast, splittable PRNG.

    Used for every random choice in the repository so that tests,
    simulations and benchmarks are reproducible from one integer seed.
    Derive independent per-process streams with {!split}. *)

type t

val create : int -> t
(** A generator seeded with the given integer. *)

val split : t -> t
(** A statistically independent child stream (advances the parent). *)

val next_int64 : t -> int64
(** The next raw 64-bit output. *)

val bits : t -> int
(** A uniformly random non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]; rejection-sampled, so unbiased.
    @raise Invalid_argument if [n <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val domain_local : int -> unit -> t
(** [domain_local salt] is a function returning the calling domain's own
    generator, created on first use from [salt] and the domain id.  The
    blessed way for code outside [lib/kernel] to get per-domain randomness
    without touching [Domain.DLS] directly. *)
