(* Real atomics with per-domain cost-model counters.

   Each domain that touches the structure gets its own [Counters.t] via
   domain-local storage, so counting adds no synchronization to the hot path.
   Call [snapshot ()] from each participating domain (or [grand_total] after
   joining) to collect results. *)

type 'a aref = 'a Atomic.t

let registry : (int * Counters.t) list Atomic.t = Atomic.make []

let register c =
  let id = (Domain.self () :> int) in
  let rec add () =
    let old = Atomic.get registry in
    if not (Atomic.compare_and_set registry old ((id, c) :: old)) then add ()
  in
  add ()

let key =
  Domain.DLS.new_key (fun () ->
      let c = Counters.create () in
      register c;
      c)

let local () = Domain.DLS.get key

(* Sum of the counters of every domain that ever touched the structure.
   Only meaningful at quiescence (after joining the worker domains). *)
let grand_total () =
  let total = Counters.create () in
  List.iter
    (fun (_, c) -> Counters.add_into ~into:total c)
    (Atomic.get registry);
  total

let reset_all () =
  List.iter (fun (_, c) -> Counters.reset c) (Atomic.get registry)

let make = Atomic.make

let get r =
  let c = local () in
  c.Counters.reads <- c.Counters.reads + 1;
  Atomic.get r

let cas r ~kind ~expect v =
  let c = local () in
  Counters.record_cas_attempt c kind;
  let ok = Atomic.compare_and_set r expect v in
  if ok then Counters.record_cas_success c kind;
  ok

let set r v =
  let c = local () in
  c.Counters.writes <- c.Counters.writes + 1;
  Atomic.set r v

let event e = Counters.record (local ()) e

let pause n =
  let spins = 1 lsl min n 8 in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let stamp _ = 0
let annotate _ (_ : _ Protocol.annot) = ()
