(* Abstract views of the paper's succ-field protocol, used by checked
   memories (Lf_check.Check_mem).

   The algorithms in lib/core and lib/skiplist are functors over [Mem.S]
   whose node types are private to each functor body, so a wrapping memory
   cannot inspect a descriptor directly.  Instead, the algorithm *annotates*
   each protocol-carrying cell right after [Mem.S.make] with a decoder that
   maps the cell's abstract contents to one of the views below.  The decoder
   closes over the node (so it can compare keys with the functor's own
   [K.compare]) and identifies neighbouring cells by their [Mem.S.stamp].

   Memories that do not check anything (Atomic_mem, Counting_mem, Sim_mem)
   ignore annotations and stamp every cell 0, so the annotations cost one
   closure allocation per node and nothing on the access paths. *)

(* View of one succ descriptor {right; mark; flag}. *)
type succ_view = {
  right_id : int;
      (* stamp of the right neighbour's succ cell; [null_id] for Null *)
  right_gt_owner : bool;
      (* strict K-order: right.key > owner.key (INV 1, locally) *)
  mark : bool;
  flag : bool;
}

(* View of one backlink cell. *)
type link_view = {
  target_id : int;
      (* stamp of the target node's succ cell; [null_id] when unset *)
  left_of_owner : bool; (* strict K-order: target.key < owner.key *)
}

let null_id = -1

type 'a annot =
  | Succ of {
      owner : string; (* rendered key of the node owning the cell *)
      head : bool; (* chain start: snapshots are rendered from here *)
      sentinel : bool; (* head or tail: exempt from node-lifecycle rules *)
      view : 'a -> succ_view;
    }
  | Backlink of { owner : string; view : 'a -> link_view }
