(** The dictionary abstract data type every implementation in this
    repository exposes (the paper's SEARCH / INSERT / DELETE in OCaml
    clothing).  One signature for all nine implementations is what lets the
    workload runner, stress tests, linearizability battery and benchmarks be
    written once. *)

module type S = sig
  type key

  type 'a t
  (** A dictionary from [key] to ['a]. *)

  val name : string
  (** Short identifier used in benchmark tables. *)

  val create : unit -> 'a t

  val find : 'a t -> key -> 'a option
  (** SEARCH: the element bound to [key], if present. *)

  val mem : 'a t -> key -> bool

  val insert : 'a t -> key -> 'a -> bool
  (** INSERT: [true] on success, [false] if the key was already present
      (the paper's DUPLICATE_KEY). *)

  val delete : 'a t -> key -> bool
  (** DELETE: [true] on success, [false] if absent (NO_SUCH_KEY). *)

  val to_list : 'a t -> (key * 'a) list
  (** Snapshot of the regular (non-deleted) bindings in key order.  Only an
      exact snapshot at quiescence for the concurrent implementations. *)

  val length : 'a t -> int

  val check_invariants : 'a t -> unit
  (** Raises [Failure] on any structural-invariant violation (sortedness,
      INV 1-5 where applicable).  Quiescent use only. *)
end

module type MAKER = functor (K : Ordered.S) (M : Mem.S) ->
  S with type key = K.t

(** Dictionaries that additionally support batched operations: the batch is
    processed in key order, each element carrying its predecessor to the
    next (the Träff–Pöter "pragmatic" pattern).  Results come back in the
    caller's original order; every element remains an independent
    linearizable operation that takes effect inside the batch call. *)
module type BATCHED = sig
  include S

  val insert_batch : 'a t -> (key * 'a) list -> bool list
  val delete_batch : 'a t -> key list -> bool list
  val mem_batch : 'a t -> key list -> bool list
end
