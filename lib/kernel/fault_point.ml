(* Vocabulary for fault plans (lib/fault): which shared-memory accesses a
   fault rule targets.

   The vocabulary deliberately reuses the cost-model classification of
   {!Mem_event.cas_kind}, so a plan can aim at exactly the protocol steps
   the paper names: a rule on [Cas Flagging] exercises every TRYFLAG retry
   loop, while [After_cas_ok Flagging] fires on the first access *after* a
   successful TRYFLAG - the window between TRYFLAG and TRYMARK in which a
   crashed process leaves a flag behind for helpers to recover.

   This module is pure description; executing a plan (deciding which
   matching access actually faults, with what seeded randomness) lives in
   [Lf_fault.Fault]. *)

(* One shared-memory access as a fault plan observes it: the step about to
   be executed, not its outcome. *)
type access = A_read | A_write | A_cas of Mem_event.cas_kind

type t =
  | Any                              (* every shared-memory access *)
  | Read
  | Write
  | Any_cas
  | Cas of Mem_event.cas_kind
  | After_cas_ok of Mem_event.cas_kind
      (* the accesses following a successful C&S of this kind by the same
         process, until that process attempts its next C&S *)

(* [last_ok] is the kind of the matching process's most recent C&S iff that
   C&S succeeded and no later C&S was attempted ([None] otherwise);
   maintained per lane by the plan executor. *)
let matches t ~(last_ok : Mem_event.cas_kind option) (a : access) =
  match (t, a) with
  | Any, _ -> true
  | Read, A_read -> true
  | Read, _ -> false
  | Write, A_write -> true
  | Write, _ -> false
  | Any_cas, A_cas _ -> true
  | Any_cas, _ -> false
  | Cas k, A_cas k' -> k = k'
  | Cas _, _ -> false
  | After_cas_ok k, _ -> ( match last_ok with Some k' -> k = k' | None -> false)

let access_to_string = function
  | A_read -> "read"
  | A_write -> "write"
  | A_cas k -> Mem_event.cas_kind_to_string k

let to_string = function
  | Any -> "any"
  | Read -> "read"
  | Write -> "write"
  | Any_cas -> "cas"
  | Cas k -> Mem_event.cas_kind_to_string k
  | After_cas_ok k -> "after-" ^ Mem_event.cas_kind_to_string k

let of_string s =
  match s with
  | "any" -> Some Any
  | "read" -> Some Read
  | "write" -> Some Write
  | "cas" -> Some Any_cas
  | _ -> (
      match Mem_event.cas_kind_of_string s with
      | Some k -> Some (Cas k)
      | None ->
          let pre = "after-" in
          let pl = String.length pre in
          if String.length s > pl && String.equal (String.sub s 0 pl) pre then
            match
              Mem_event.cas_kind_of_string
                (String.sub s pl (String.length s - pl))
            with
            | Some k -> Some (After_cas_ok k)
            | None -> None
          else None)
