(** Deterministic, seeded, replayable fault plans.

    A {!plan} is a list of {!rule}s, each naming a target
    ({!Lf_kernel.Fault_point}), an {!action} and a firing {!mode}.
    Executing a plan ({!start}) builds per-lane decision state — one
    SplitMix stream per lane, derived from the plan {!plan.seed} — so the
    faults a lane observes depend only on (seed, that lane's access
    sequence): the same workload replays the same faults regardless of how
    the domains interleave.

    This module decides and records; the injection itself (failing a C&S,
    raising {!Crashed}, burning a stall) is performed by {!Fault_mem},
    which consults {!on_access} before each shared access it forwards. *)

type action =
  | Fail_cas  (** report the C&S as failed without attempting it *)
  | Crash  (** raise {!Crashed} before the access: the operation dies
              mid-protocol, leaving its flags/marks for helpers *)
  | Stall of int
      (** delay before the access: [n] rounds of {!Lf_kernel.Mem.S.pause}
          (a [cpu_relax] storm on real atomics, [n] forced deschedulings in
          the simulator) *)

type mode =
  | Always
  | At of int  (** the k-th matching access of a lane, 1-based *)
  | Rate of float * int
      (** [(p, burst)]: each match fires with probability [p] (per-lane
          seeded stream); a hit extends to [burst] consecutive matches,
          modelling failure storms rather than isolated blips *)

type rule = {
  point : Lf_kernel.Fault_point.t;
  action : action;
  mode : mode;
  lane : int option;  (** [None] targets every lane *)
}

type plan = { seed : int; rules : rule list }

exception Crashed of string
(** Raised by [Fault_mem] at a [Crash] injection.  The payload names the
    access that was about to execute.  Harness code treats the operation
    as dead: its effects so far stay in the structure for helpers. *)

(** One injected fault, in the order decided. *)
type injected = {
  i_lane : int;
  i_rule : int;  (** index into [plan.rules] *)
  i_action : action;
  i_access : Lf_kernel.Fault_point.access;
  i_seq : int;  (** the lane's access sequence number, from 1 *)
}

val no_faults : plan
val make_plan : ?seed:int -> rule list -> plan

val spurious :
  ?lane:int -> ?p:float -> ?burst:int -> Lf_kernel.Fault_point.t -> rule
(** Spurious C&S failure at rate [p] (default 1.0) with bursts of [burst]
    (default 1). *)

val crash_at : ?lane:int -> int -> Lf_kernel.Fault_point.t -> rule
(** [crash_at k point]: crash at the lane's k-th access matching [point]. *)

val stall_at : ?lane:int -> ?spins:int -> int -> Lf_kernel.Fault_point.t -> rule
(** [stall_at k point]: stall ([spins] pause rounds, default 64) at the
    lane's k-th matching access. *)

(** {1 Execution} *)

type exec
(** A running plan: per-lane RNG streams, match counters and the injected
    trace.  Thread-safe (a mutex guards the decision state; the critical
    sections are effect-free, so this is also safe under the simulator). *)

val start : plan -> exec
val plan_of_exec : exec -> plan

val on_access : exec -> lane:int -> Lf_kernel.Fault_point.access -> action list
(** Decide which rules fire on this access, record them in the trace, and
    return their actions in rule order.  Called by [Fault_mem] before each
    forwarded access. *)

val note_cas_result : exec -> lane:int -> Lf_kernel.Mem_event.cas_kind -> bool -> unit
(** Report the outcome of a C&S attempt (spurious failures included) so
    [After_cas_ok] points track the lane's protocol position. *)

val trace : exec -> injected list
(** Injected faults so far, oldest first. *)

val injected_count : exec -> int

(** {1 Strings}

    Plan grammar (also printed by {!plan_to_string}):
    [spec := item (';' item)*], [item := 'seed=' INT | rule],
    [rule := action ':' point (':' key '=' value)*] — actions [cas-fail],
    [crash], [stall]; points from {!Lf_kernel.Fault_point.of_string};
    params [at=] (k-th match), [p=]/[burst=] (seeded rate), [n=] (stall
    pause rounds), [lane=] (restrict to one lane).  Example:
    ["seed=7;cas-fail:flag-cas:p=0.3:burst=4;crash:after-flag-cas:at=1:lane=0"]. *)

val action_name : action -> string
val injected_to_string : injected -> string
val rule_to_string : rule -> string
val plan_to_string : plan -> string
val plan_of_string : string -> (plan, string) result
