(* Deterministic, seeded, replayable fault plans.

   A plan is a list of rules, each naming a target ({!Lf_kernel.Fault_point}),
   an action (spurious C&S failure, mid-protocol crash, or stall) and a
   firing mode (always / k-th match / seeded rate with bursts).  Executing a
   plan ({!start}) builds per-lane decision state - one SplitMix stream per
   lane, derived from the plan seed - so the injected-fault sequence each
   lane observes depends only on (seed, that lane's access sequence): the
   same workload replays the same faults regardless of how the domains
   interleave, and a single-lane trace can be reproduced in the simulator.

   This module only decides and records; actually failing a C&S, raising
   {!Crashed} or burning a stall belongs to [Fault_mem], which consults
   {!on_access} before each shared access of the wrapped memory. *)

module Ev = Lf_kernel.Mem_event
module Fp = Lf_kernel.Fault_point
module Splitmix = Lf_kernel.Splitmix

type action = Fail_cas | Crash | Stall of int

type mode =
  | Always
  | At of int                  (* the k-th matching access, counted per lane *)
  | Rate of float * int        (* probability per match, burst length *)

type rule = {
  point : Fp.t;
  action : action;
  mode : mode;
  lane : int option;           (* [None] targets every lane *)
}

type plan = { seed : int; rules : rule list }

exception Crashed of string

type injected = {
  i_lane : int;
  i_rule : int;                (* index into [plan.rules] *)
  i_action : action;
  i_access : Fp.access;
  i_seq : int;                 (* per-lane access sequence number, from 1 *)
}

(* ------------------------------------------------------------------ *)
(* Plan construction helpers                                           *)

let no_faults = { seed = 0; rules = [] }
let make_plan ?(seed = 0) rules = { seed; rules }

let spurious ?lane ?(p = 1.0) ?(burst = 1) point =
  { point; action = Fail_cas; mode = Rate (p, burst); lane }

let crash_at ?lane k point = { point; action = Crash; mode = At k; lane }

let stall_at ?lane ?(spins = 64) k point =
  { point; action = Stall spins; mode = At k; lane }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type lane_state = {
  rng : Splitmix.t;
  counts : int array;            (* per-rule match counter *)
  burst : int array;             (* per-rule remaining burst length *)
  mutable last_ok : Ev.cas_kind option;
  mutable seq : int;
}

type exec = {
  plan : plan;
  lanes : (int, lane_state) Hashtbl.t;
  mutable trace_rev : injected list;
  mutable n_injected : int;
  lock : Mutex.t;
}

let start plan =
  {
    plan;
    lanes = Hashtbl.create 8;
    trace_rev = [];
    n_injected = 0;
    lock = Mutex.create ();
  }

let plan_of_exec e = e.plan

let lane_state e lane =
  match Hashtbl.find_opt e.lanes lane with
  | Some st -> st
  | None ->
      let n = List.length e.plan.rules in
      let st =
        {
          (* Decorrelate lanes without [split] so a lane's stream depends
             only on (seed, lane), not on lane-creation order. *)
          rng = Splitmix.create (e.plan.seed + ((lane + 1) * 1000003));
          counts = Array.make n 0;
          burst = Array.make n 0;
          last_ok = None;
          seq = 0;
        }
      in
      Hashtbl.add e.lanes lane st;
      st

(* The critical sections below are effect-free (hash table + SplitMix
   arithmetic only), so holding the mutex is safe even when the wrapped
   memory is the effects-based simulator: no scheduling point can fire
   while the lock is held. *)
let on_access e ~lane access =
  Mutex.lock e.lock;
  let st = lane_state e lane in
  st.seq <- st.seq + 1;
  let fired = ref [] in
  List.iteri
    (fun i r ->
      let lane_ok = match r.lane with None -> true | Some l -> l = lane in
      if lane_ok && Fp.matches r.point ~last_ok:st.last_ok access then begin
        st.counts.(i) <- st.counts.(i) + 1;
        let fire =
          match r.mode with
          | Always -> true
          | At k -> st.counts.(i) = k
          | Rate (p, burst) ->
              if st.burst.(i) > 0 then begin
                st.burst.(i) <- st.burst.(i) - 1;
                true
              end
              else if Splitmix.float st.rng < p then begin
                st.burst.(i) <- max 0 (burst - 1);
                true
              end
              else false
        in
        if fire then begin
          let inj =
            {
              i_lane = lane;
              i_rule = i;
              i_action = r.action;
              i_access = access;
              i_seq = st.seq;
            }
          in
          e.trace_rev <- inj :: e.trace_rev;
          e.n_injected <- e.n_injected + 1;
          fired := r.action :: !fired
        end
      end)
    e.plan.rules;
  Mutex.unlock e.lock;
  List.rev !fired

let note_cas_result e ~lane kind ok =
  Mutex.lock e.lock;
  let st = lane_state e lane in
  st.last_ok <- (if ok then Some kind else None);
  Mutex.unlock e.lock

let trace e =
  Mutex.lock e.lock;
  let t = List.rev e.trace_rev in
  Mutex.unlock e.lock;
  t

let injected_count e =
  Mutex.lock e.lock;
  let n = e.n_injected in
  Mutex.unlock e.lock;
  n

(* ------------------------------------------------------------------ *)
(* Strings                                                             *)

let action_name = function
  | Fail_cas -> "cas-fail"
  | Crash -> "crash"
  | Stall _ -> "stall"

let injected_to_string i =
  Printf.sprintf "lane=%d seq=%d rule=%d %s@%s" i.i_lane i.i_seq i.i_rule
    (action_name i.i_action)
    (Fp.access_to_string i.i_access)

let rule_to_string r =
  let params =
    (match r.action with
    | Stall n -> [ Printf.sprintf "n=%d" n ]
    | Fail_cas | Crash -> [])
    @ (match r.mode with
      | Always -> []
      | At k -> [ Printf.sprintf "at=%d" k ]
      | Rate (p, burst) ->
          [ Printf.sprintf "p=%g" p; Printf.sprintf "burst=%d" burst ])
    @ match r.lane with None -> [] | Some l -> [ Printf.sprintf "lane=%d" l ]
  in
  String.concat ":" ((action_name r.action :: [ Fp.to_string r.point ]) @ params)

let plan_to_string p =
  String.concat ";"
    (Printf.sprintf "seed=%d" p.seed :: List.map rule_to_string p.rules)

(* Grammar: [spec := item (';' item)*], [item := 'seed=' INT | rule],
   [rule := action ':' point (':' key '=' value)*] with actions
   cas-fail | crash | stall, points from {!Fp.of_string}, and params
   at= (k-th match), p= + burst= (seeded rate), n= (stall spins),
   lane= (restrict to one lane). *)
let plan_of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_param r (k, v) =
    match k with
    | "at" -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> Ok { r with mode = At n }
        | _ -> fail "bad at=%s (want a positive integer)" v)
    | "p" -> (
        match float_of_string_opt v with
        | Some p when p >= 0.0 && p <= 1.0 ->
            let burst = match r.mode with Rate (_, b) -> b | _ -> 1 in
            Ok { r with mode = Rate (p, burst) }
        | _ -> fail "bad p=%s (want a probability in [0,1])" v)
    | "burst" -> (
        match int_of_string_opt v with
        | Some b when b >= 1 ->
            let p = match r.mode with Rate (p, _) -> p | _ -> 1.0 in
            Ok { r with mode = Rate (p, b) }
        | _ -> fail "bad burst=%s (want a positive integer)" v)
    | "n" -> (
        match (int_of_string_opt v, r.action) with
        | Some n, Stall _ when n >= 1 -> Ok { r with action = Stall n }
        | Some _, _ -> fail "n= only applies to stall rules"
        | None, _ -> fail "bad n=%s (want a positive integer)" v)
    | "lane" -> (
        match int_of_string_opt v with
        | Some l when l >= 0 -> Ok { r with lane = Some l }
        | _ -> fail "bad lane=%s (want a non-negative integer)" v)
    | _ -> fail "unknown parameter %s=%s" k v
  in
  let parse_rule item =
    match String.split_on_char ':' item with
    | action :: point :: params -> (
        let act =
          match action with
          | "cas-fail" -> Some Fail_cas
          | "crash" -> Some Crash
          | "stall" -> Some (Stall 64)
          | _ -> None
        in
        match (act, Fp.of_string point) with
        | None, _ ->
            fail "unknown action %S (want cas-fail, crash or stall)" action
        | _, None -> fail "unknown fault point %S" point
        | Some action, Some point ->
            let init = { point; action; mode = Always; lane = None } in
            List.fold_left
              (fun acc p ->
                match acc with
                | Error _ as e -> e
                | Ok r -> (
                    match String.index_opt p '=' with
                    | None -> fail "bad parameter %S (want key=value)" p
                    | Some i ->
                        parse_param r
                          ( String.sub p 0 i,
                            String.sub p (i + 1) (String.length p - i - 1) )))
              (Ok init) params)
    | _ -> fail "bad rule %S (want action:point[:key=value...])" item
  in
  let items =
    List.filter
      (fun it -> not (String.equal it ""))
      (List.map String.trim (String.split_on_char ';' s))
  in
  List.fold_left
    (fun acc item ->
      match acc with
      | Error _ as e -> e
      | Ok p ->
          let seed_pre = "seed=" in
          let spl = String.length seed_pre in
          if
            String.length item > spl
            && String.equal (String.sub item 0 spl) seed_pre
          then
            match
              int_of_string_opt
                (String.sub item spl (String.length item - spl))
            with
            | Some seed -> Ok { p with seed }
            | None -> fail "bad %s" item
          else
            match parse_rule item with
            | Ok r -> Ok { p with rules = p.rules @ [ r ] }
            | Error _ as e -> e)
    (Ok no_faults) items
