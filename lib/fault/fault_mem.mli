(** Fault-injecting memory: wraps any {!Lf_kernel.Mem.S} and executes an
    installed {!Fault.plan} against every shared access.

    A spurious C&S failure returns [false] without calling the wrapped
    [cas] — stacked sanitizers (e.g. [Fault_mem] over [Lf_check.Check_mem]
    over [Atomic_mem]) never see the attempt, exactly like a weak C&S. A
    crash raises {!Fault.Crashed} {e before} the access, leaving the
    operation's published flags/marks in place for helpers.  A stall burns
    {!Lf_kernel.Mem.S.pause} rounds before the access.

    The installed plan is module-level state (one per functor
    instantiation, like [Check_mem]'s tables): {!Make.install} before
    spawning worker domains, {!Make.uninstall} after joining them.  Lanes
    are identified by [Lf_dsim.Sim.running_pid] inside the simulator and
    by {!Lf_kernel.Lane} on real domains. *)

module Make (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Mem.S with type 'a aref = 'a M.aref

  val install : Fault.plan -> unit
  (** Start executing a fresh {!Fault.exec} of this plan.  Replaces any
      installed one. *)

  val install_exec : Fault.exec -> unit
  (** Install an already-started execution (to share one trace across
      several wrapped memories, or to resume). *)

  val uninstall : unit -> unit

  val current : unit -> Fault.exec option

  val injected : unit -> Fault.injected list
  (** Trace of the installed execution ([[]] if none installed). *)
end
