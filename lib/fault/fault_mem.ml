(* Fault-injecting memory: the functor seam once more.

   [Make (M)] is a [Mem.S] that forwards to [M], consulting an installed
   {!Fault.exec} before each shared access.  A spurious C&S failure
   returns [false] *without* calling [M.cas] - the wrapped memory (and any
   sanitizer stacked below, e.g. [Fault_mem] over [Check_mem] over
   [Atomic_mem]) never sees the attempt, exactly like a weak C&S that
   fails for no reason.  A crash raises {!Fault.Crashed} before the
   access, so whatever flags/marks the operation published remain in the
   structure for helpers to recover.  A stall burns pause rounds before
   the access: [cpu_relax] storms on real atomics, forced deschedulings
   under the simulator.

   The installed plan is module-level state, like [Check_mem]'s tables:
   install before spawning worker domains, uninstall after joining them
   (publication via [Domain.spawn] orders the write).  Lanes are
   identified by [Sim.running_pid] inside the simulator and by
   [Lf_kernel.Lane] on real domains. *)

module Ev = Lf_kernel.Mem_event
module Fp = Lf_kernel.Fault_point

module Make (M : Lf_kernel.Mem.S) = struct
  type 'a aref = 'a M.aref

  let exec : Fault.exec option ref = ref None
  let install plan = exec := Some (Fault.start plan)
  let install_exec e = exec := Some e
  let uninstall () = exec := None
  let current () = !exec

  let injected () =
    match !exec with None -> [] | Some e -> Fault.trace e

  let lane () =
    match Lf_dsim.Sim.running_pid () with
    | Some p -> p
    | None -> Lf_kernel.Lane.get ()

  (* Decide and act on one access.  Stalls burn immediately; a crash
     raises; the return value reports whether a spurious C&S failure was
     requested (meaningful only for C&S accesses). *)
  let consult access =
    match !exec with
    | None -> false
    | Some e ->
        let acts = Fault.on_access e ~lane:(lane ()) access in
        let fail = ref false in
        let crash = ref false in
        List.iter
          (function
            | Fault.Stall n ->
                for _ = 1 to n do
                  M.pause 6
                done
            | Fault.Crash -> crash := true
            | Fault.Fail_cas -> fail := true)
          acts;
        if !crash then begin
          M.event (Ev.User "fault:crash");
          raise (Fault.Crashed (Fp.access_to_string access))
        end;
        !fail

  let note_result kind ok =
    match !exec with
    | None -> ()
    | Some e -> Fault.note_cas_result e ~lane:(lane ()) kind ok

  let make = M.make

  let get r =
    ignore (consult Fp.A_read : bool);
    M.get r

  let set r v =
    ignore (consult Fp.A_write : bool);
    M.set r v

  let cas r ~kind ~expect v =
    if consult (Fp.A_cas kind) then begin
      M.event (Ev.User "fault:cas-fail");
      note_result kind false;
      false
    end
    else begin
      let ok = M.cas r ~kind ~expect v in
      note_result kind ok;
      ok
    end

  let event = M.event
  let pause = M.pause
  let stamp = M.stamp
  let annotate = M.annotate
end
