(* Lock-free sorted singly-linked list of Fomitchev & Ruppert (PODC 2004),
   Figures 3-5.

   Every node carries a [succ] descriptor { right; mark; flag } stored in a
   single C&S-able cell and a [backlink] pointer.  Deleting node B whose
   predecessor is A takes three C&S steps:

     1. flag A           : A.succ  (B,0,0) -> (B,0,1)     (TRYFLAG)
     2. mark B           : B.backlink <- A, then
                           B.succ  (C,0,0) -> (C,1,0)     (TRYMARK)
     3. unlink B, unflag : A.succ  (B,0,1) -> (C,0,0)     (HELPMARKED)

   A process that fails a C&S because its predecessor got marked follows the
   chain of backlinks to the nearest unmarked node and resumes there instead
   of restarting from the head; the flag guarantees that a backlink is never
   set to point at a marked node, which is what keeps chains of backlinks
   from growing rightward and gives the O(n(S) + c(S)) amortized bound.

   The functor is parameterized by the memory [M] so the same code runs on
   real atomics and inside the deterministic simulator.  C&S here is
   physical-equality compare-and-swap on the descriptor; since OCaml's CAS
   returns a boolean rather than the old value, the decision points that the
   paper bases on a failed C&S's return value instead re-read the cell and
   re-validate (every such branch is self-validating, see DESIGN.md).

   [create ~use_flags:false] builds the EXP-8 ablation variant: two-step
   Harris-style deletion that still sets backlinks but never flags the
   predecessor, exhibiting the rightward-growing backlink chains the flag bit
   exists to prevent. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) = struct
  module BK = Lf_kernel.Ordered.Bounded (K)
  module Ev = Lf_kernel.Mem_event
  module H = Lf_kernel.Hint.Make (M)

  type key = K.t

  type 'a node = {
    key : K.t Lf_kernel.Ordered.bounded;
    elt : 'a option; (* [None] only for the head and tail sentinels *)
    succ : 'a succ M.aref;
    backlink : 'a link M.aref;
    (* Descriptor-interning caches (DESIGN.md §12): the last marked /
       flagged / unlinking descriptor built for this node, so retry loops
       reuse a physically-equal descriptor instead of allocating per
       attempt.  Plain mutable fields, racy on purpose: a stale read fails
       validation (wrong bits or wrong [right]) and allocates fresh, so a
       race costs one allocation, never correctness.  All three start as
       the node's initial clean descriptor — no extra allocation at
       creation, and the [un_cache] is immediately valid for the common
       delete-after-insert-no-movement case. *)
    mutable mk_cache : 'a succ;
    mutable fl_cache : 'a succ;
    mutable un_cache : 'a succ;
  }

  and 'a succ = { right : 'a link; mark : bool; flag : bool }
  and 'a link = Null | Node of 'a node

  (* Seeded protocol bugs for the sanitizer and watchdog tests: the first
     four corrupt one step of the deletion protocol in a way that runs
     silently on unchecked memories but trips a specific invariant
     (Lf_check.Check_mem); [No_help] disables the altruistic help at the
     three sites that encounter another operation's flag, so progress is
     no longer lock-free - an operation stuck behind a crashed flag holder
     spins forever, which the starvation watchdogs must detect. *)
  type mutation =
    | Skip_flag
    | Double_mark
    | Unlink_unflagged
    | Backlink_right
    | No_help

  type 'a t = {
    head : 'a node;
    tail : 'a node;
    use_flags : bool;
    use_backoff : bool;
    reuse_descriptors : bool;
        (* intern succ descriptors per node; [false] = allocating ablation *)
    mutation : mutation option;
    hints : 'a node H.t option;
        (* per-domain predecessor cache; [None] = ablation (hints off) *)
  }

  let name = "fr-list"

  (* Declare a node's cells to a checked memory.  The decoders close over
     the node so they can render its key and compare against neighbours
     with the functor's own order; neighbour cells are named by [M.stamp],
     a pure field read on checked memories.  Guarded by [M.stamp <> 0] so
     unchecked memories (where annotation is a no-op anyway) do not even
     pay for rendering the owner key on the insert path. *)
  let succ_view_of n (s : _ succ) : Lf_kernel.Protocol.succ_view =
    {
      right_id =
        (match s.right with
        | Null -> Lf_kernel.Protocol.null_id
        | Node r -> M.stamp r.succ);
      right_gt_owner =
        (match s.right with Null -> true | Node r -> BK.lt n.key r.key);
      mark = s.mark;
      flag = s.flag;
    }

  let link_view_of n (l : _ link) : Lf_kernel.Protocol.link_view =
    match l with
    | Null ->
        { target_id = Lf_kernel.Protocol.null_id; left_of_owner = true }
    | Node b -> { target_id = M.stamp b.succ; left_of_owner = BK.lt b.key n.key }

  let annotate_node ?(head = false) ?(sentinel = false) n =
    if M.stamp n.succ <> 0 then begin
      let owner = Format.asprintf "%a" BK.pp n.key in
      M.annotate n.succ
        (Lf_kernel.Protocol.Succ
           { owner; head; sentinel; view = succ_view_of n });
      M.annotate n.backlink
        (Lf_kernel.Protocol.Backlink { owner; view = link_view_of n })
    end

  let create_with ?mutation ?(use_hints = true) ?(use_backoff = false)
      ?(reuse_descriptors = true) ~use_flags () =
    let tail_succ = { right = Null; mark = false; flag = false } in
    let tail =
      {
        key = Pos_inf;
        elt = None;
        succ = M.make tail_succ;
        backlink = M.make Null;
        mk_cache = tail_succ;
        fl_cache = tail_succ;
        un_cache = tail_succ;
      }
    in
    let head_succ = { right = Node tail; mark = false; flag = false } in
    let head =
      {
        key = Neg_inf;
        elt = None;
        succ = M.make head_succ;
        backlink = M.make Null;
        mk_cache = head_succ;
        fl_cache = head_succ;
        un_cache = head_succ;
      }
    in
    (* The flagless ablation deliberately breaks the protocol; it stays
       unannotated so it can run under a checked memory too. *)
    if use_flags then begin
      annotate_node ~sentinel:true tail;
      annotate_node ~head:true ~sentinel:true head
    end;
    let hints = if use_hints then Some (H.create ()) else None in
    { head; tail; use_flags; use_backoff; reuse_descriptors; mutation; hints }

  let create () = create_with ~use_flags:true ()

  (* Only the tail sentinel has a [Null] successor, and no routine below ever
     dereferences the successor of the tail (searches stop strictly before
     +inf and +inf is never deleted), so this cannot raise. *)
  let as_node = function
    | Node n -> n
    | Null -> invalid_arg "Fr_list: dereferenced successor of tail"

  let same_node l n = match l with Node m -> m == n | Null -> false

  (* Same successor *target*: two [Node] links are interchangeable when
     they name the same node, whatever block they were boxed in. *)
  let same_link a b =
    match (a, b) with
    | Null, Null -> true
    | Node x, Node y -> x == y
    | _ -> false

  (* The [No_help] mutant refuses the altruistic help at sites that find
     another operation's flag; honest code always helps. *)
  let no_help t = match t.mutation with Some No_help -> true | _ -> false

  (* ------------------------------------------------------------------ *)
  (* Descriptor interning (DESIGN.md §12).  The protocol's C&S sites build
     one of three descriptor shapes — marked {r,1,0}, flagged {r,0,1},
     clean {r,0,0} — and failed-C&S retry loops rebuild them every
     iteration; at exp19's workload that allocation is what drives the GC
     p999 cliff.  Each helper below consults the owner node's cache and
     hands back the cached descriptor iff its bits and [right] target
     match the request, allocating (and caching) otherwise.

     Safety: a C&S [expect] always comes from [M.get], never from a cache,
     so reuse only changes the physical identity of the *new* value — and
     a physically shared descriptor is by construction value-equal to what
     the paper's value-C&S would write.  Descriptors for distinct [right]
     targets can never come back physically equal (the [same_link] check),
     which is the no-ABA contract the qcheck audit enforces.  Caches are
     unsynchronized: concurrent writers can at worst overwrite each
     other's fresh descriptor, making the next request allocate again. *)

  let marked_desc t del (s : _ succ) =
    if not t.reuse_descriptors then { s with mark = true }
    else
      let c = del.mk_cache in
      if c.mark && (not c.flag) && same_link c.right s.right then c
      else begin
        let d = { right = s.right; mark = true; flag = false } in
        del.mk_cache <- d;
        d
      end

  let flagged_desc t prev (ps : _ succ) =
    if not t.reuse_descriptors then { ps with flag = true }
    else
      let c = prev.fl_cache in
      if c.flag && (not c.mark) && same_link c.right ps.right then c
      else begin
        let d = { right = ps.right; mark = false; flag = true } in
        prev.fl_cache <- d;
        d
      end

  let clean_desc t del next =
    if not t.reuse_descriptors then { right = next; mark = false; flag = false }
    else
      let c = del.un_cache in
      if (not c.mark) && (not c.flag) && same_link c.right next then c
      else begin
        let d = { right = next; mark = false; flag = false } in
        del.un_cache <- d;
        d
      end

  (* HELPMARKED (Fig. 3): [del] is marked, so [del.succ] is frozen; attempt
     the physical deletion C&S on [prev].succ: (del,0,1) -> (del.right,0,0).
     In the flagless ablation the expected descriptor is (del,0,0) instead.
     If the current descriptor is not of that shape the paper's C&S would
     simply fail, so we skip the attempt. *)
  let help_marked t prev del =
    let next = (M.get del.succ).right in
    let expect = M.get prev.succ in
    if
      same_node expect.right del
      && (not expect.mark)
      && Bool.equal expect.flag t.use_flags
    then
      ignore
        (M.cas prev.succ ~kind:Ev.Physical_delete ~expect
           (clean_desc t del next))

  (* HELPFLAGGED / TRYMARK (Fig. 4).  [prev] is flagged with successor [del]:
     set the backlink, mark [del] (helping any deletion of [del]'s own
     successor that blocks the marking), then physically delete it. *)
  let rec help_flagged t prev del =
    M.set del.backlink (Node prev);
    if not (M.get del.succ).mark then try_mark t del;
    help_marked t prev del

  and try_mark t del = try_mark_n t del 0

  and try_mark_n t del fails =
    (* Repeat until [del] is marked.  A flagged successor field means the
       deletion of [del]'s successor is in progress: help it finish first
       (the flag blocks our marking C&S). *)
    let s = M.get del.succ in
    if s.mark then ()
    else if s.flag then
      if no_help t then try_mark_n t del fails
      else begin
        M.event Ev.Help;
        help_flagged t del (as_node s.right);
        try_mark_n t del fails
      end
    else if
      M.cas del.succ ~kind:Ev.Marking ~expect:s (marked_desc t del s)
    then ()
    else begin
      if t.use_backoff then M.pause fails;
      try_mark_n t del (fails + 1)
    end

  (* SEARCHFROM (Fig. 3).  Starting from [start] (whose key must be <= k),
     returns two nodes (n1, n2) such that at some instant during the search
     n1.right = n2 and n1.key <= k < n2.key.  With [inclusive:false] this is
     the paper's SearchFrom(k - eps, .): n1.key < k <= n2.key.  Marked nodes
     encountered along the way are physically deleted (helping). *)
  let search_from t ~inclusive k start =
    let goes_past key = if inclusive then BK.le key k else BK.lt key k in
    let curr = ref start in
    let next = ref (as_node (M.get start.succ).right) in
    while goes_past !next.key do
      (* Lines 3-6: loop while [next] is marked unless both [curr] and
         [next] are marked and adjacent (in which case [curr] was marked
         first and we may travel through both). *)
      let continue_inner () =
        (M.get !next.succ).mark
        &&
        let cs = M.get !curr.succ in
        (not cs.mark) || not (same_node cs.right !next)
      in
      while continue_inner () do
        let cs = M.get !curr.succ in
        if same_node cs.right !next then help_marked t !curr !next;
        next := as_node (M.get !curr.succ).right;
        M.event Ev.Next_update
      done;
      if goes_past !next.key then begin
        curr := !next;
        M.event Ev.Curr_update;
        next := as_node (M.get !curr.succ).right
      end
    done;
    (!curr, !next)

  (* Chain-of-backlinks traversal (TRYFLAG line 9-10, INSERT line 17-18):
     walk left until an unmarked node.  Backlink chains are key-decreasing
     and bottom out at the head sentinel, so this terminates. *)
  let rec backtrack p =
    if (M.get p.succ).mark then begin
      M.event Ev.Backlink_step;
      backtrack (as_node (M.get p.backlink))
    end
    else p

  (* ------------------------------------------------------------------ *)
  (* Hint-guided search starts (Section 3.2's guarantee, used as an
     optimization).  A search may begin at any node that (a) was once
     physically in the list and (b) is currently unmarked with key <= the
     target (strictly < for the exclusive searches deletions use): an
     unmarked node is still logically in the list, because physical
     unlinking requires the mark bit and marking is terminal.  A marked
     candidate recovers leftward through backlinks exactly as a failed
     operation would; a Null backlink (never set on honestly marked nodes,
     but cheap to be total against) falls back to the head. *)

  let rec unmark_left t n =
    if (M.get n.succ).mark then begin
      M.event Ev.Backlink_step;
      match M.get n.backlink with Null -> t.head | Node p -> unmark_left t p
    end
    else n

  (* A validated start node for a search with target [kb], or [None] if the
     candidate (after backlink recovery) is unusable and the search must
     begin at the head. *)
  let valid_start t ~inclusive kb cand =
    let s = unmark_left t cand in
    if s == t.head then None
    else if (if inclusive then BK.le s.key kb else BK.lt s.key kb) then Some s
    else None

  let start_for t ~inclusive kb =
    match t.hints with
    | None -> t.head
    | Some h -> (
        match H.load h with
        | None ->
            H.note_miss h;
            t.head
        | Some cand -> (
            match valid_start t ~inclusive kb cand with
            | Some s ->
                H.note_hit h;
                s
            | None ->
                H.note_stale h;
                (* A stale list hint is a dead or too-far node; drop it so
                   the next operation does not re-walk its backlinks. *)
                H.clear h;
                t.head))

  (* Publish the predecessor an operation ends on as the domain's next
     hint.  Mutant structures never publish: their seeded protocol bugs can
     corrupt backlinks, and the sanitizer tests that use them want the
     honest code paths undisturbed. *)
  let publish t n =
    match (t.hints, t.mutation) with
    | Some h, None when n != t.head -> H.store h n
    | _ -> ()

  let hint_stats t = Option.map H.totals t.hints

  (* TRYFLAG (Fig. 5): flag the predecessor of [target].  Returns
     [(Some prev, true)]  - we placed the flag,
     [(Some prev, false)] - a concurrent deletion already placed it,
     [(None, false)]      - [target] is no longer in the list. *)
  let try_flag t prev target =
    let rec loop fails prev =
      let ps = M.get prev.succ in
      if same_node ps.right target && (not ps.mark) && ps.flag then
        (Some prev, false)
      else if
        same_node ps.right target && (not ps.mark) && (not ps.flag)
        && M.cas prev.succ ~kind:Ev.Flagging ~expect:ps
             (flagged_desc t prev ps)
      then (Some prev, true)
      else begin
        (* The flagging C&S failed (or was doomed): re-examine the cell to
           find out why, exactly as the paper branches on the C&S result. *)
        let ps' = M.get prev.succ in
        if same_node ps'.right target && (not ps'.mark) && ps'.flag then
          (Some prev, false)
        else begin
          if t.use_backoff then M.pause fails;
          let prev = backtrack prev in
          let prev, del = search_from t ~inclusive:false target.key prev in
          if del != target then (None, false) else loop (fails + 1) prev
        end
      end
    in
    loop 0 prev

  (* SEARCH (Fig. 3).  Each [*_from] entry point takes a validated start
     node and returns the operation's result together with a "carry": the
     node the operation ended next to, which the caller publishes as the
     domain's next hint (or threads to the next element of a batch). *)
  let find_from t kb start =
    let curr, _ = search_from t ~inclusive:true kb start in
    ((if BK.equal curr.key kb then curr.elt else None), curr)

  let find t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let r, carry = find_from t kb (start_for t ~inclusive:true kb) in
    publish t carry;
    r

  let mem t k = Option.is_some (find t k)

  (* INSERT (Fig. 5). *)
  let insert_from t kb elt start =
    (* Candidate reuse: a freshly built node (and the descriptor that would
       splice it in) survives a failed C&S and is reused on the next attempt
       whenever the re-searched successor is unchanged — the common case
       under pure C&S contention.  Pointing the node's succ cell at a *new*
       successor would need an [M.set] (one extra simulator step), so a
       changed successor builds a fresh candidate instead: reuse stays
       step-neutral, which EXP-22's sim-steps ablation checks.  The
       candidate is private until its C&S succeeds, so reusing it cannot be
       observed. *)
    let candidate = ref None in
    let rec attempt fails prev next =
      let ps = M.get prev.succ in
      if ps.flag then
        if no_help t then attempt fails prev next
        else begin
          (* Predecessor is flagged: help the pending deletion complete. *)
          M.event Ev.Help;
          help_flagged t prev (as_node ps.right);
          relocate fails prev
        end
      else if ps.mark || not (same_node ps.right next) then
        (* Stale view: the C&S would fail; recover as after a failure. *)
        recover fails prev
      else begin
        let nn, desc =
          match !candidate with
          | Some (nn, inner, desc)
            when t.reuse_descriptors && same_node inner.right next ->
              (nn, desc)
          | _ ->
              let inner = { right = Node next; mark = false; flag = false } in
              let nn =
                {
                  key = kb;
                  elt = Some elt;
                  succ = M.make inner;
                  backlink = M.make Null;
                  mk_cache = inner;
                  fl_cache = inner;
                  un_cache = inner;
                }
              in
              if t.use_flags then annotate_node nn;
              let desc = { right = Node nn; mark = false; flag = false } in
              candidate := Some (nn, inner, desc);
              (nn, desc)
        in
        if M.cas prev.succ ~kind:Ev.Insertion ~expect:ps desc then (true, nn)
        else begin
          if t.use_backoff then M.pause fails;
          recover (fails + 1) prev
        end
      end
    and recover fails prev =
      (* Lines 14-18: if the failure was due to flagging, help; if due to
         marking, traverse backlinks to an unmarked node. *)
      let ps = M.get prev.succ in
      if ps.flag && not (no_help t) then begin
        M.event Ev.Help;
        help_flagged t prev (as_node ps.right)
      end;
      relocate fails (backtrack prev)
    and relocate fails prev =
      let prev, next = search_from t ~inclusive:true kb prev in
      if BK.equal prev.key kb then (false, prev) else attempt fails prev next
    in
    relocate 0 start

  let insert t k elt =
    let kb = Lf_kernel.Ordered.Mid k in
    let ok, carry = insert_from t kb elt (start_for t ~inclusive:true kb) in
    publish t carry;
    ok

  (* DELETE (Fig. 4), three-step protocol.  The carry is the predecessor
     (key strictly below [kb]), usable by both inclusive and exclusive
     follow-up searches. *)
  let delete_flagged_from t kb start =
    let prev, del = search_from t ~inclusive:false kb start in
    if not (BK.equal del.key kb) then (false, prev)
    else begin
      let prev_opt, result = try_flag t prev del in
      (match prev_opt with
      | Some prev ->
          (* [result = false] means the flag is a concurrent deleter's:
             finishing it is altruistic help, which the mutant refuses. *)
          if result || not (no_help t) then help_flagged t prev del
      | None -> ());
      (result, prev)
    end

  let delete_flagged t kb =
    let ok, carry =
      delete_flagged_from t kb (start_for t ~inclusive:false kb)
    in
    publish t carry;
    ok

  (* Flagless ablation (EXP-8): Harris-style two-step deletion that still
     sets backlinks.  Because the predecessor is not pinned, a backlink can
     end up pointing at a node that is itself already marked, which lets
     chains of backlinks grow rightward - the pathology flags prevent. *)
  let delete_flagless t kb =
    let rec mark_it prev del =
      M.set del.backlink (Node prev);
      let s = M.get del.succ in
      if s.mark then false
      else if
        M.cas del.succ ~kind:Ev.Marking ~expect:s (marked_desc t del s)
      then true
      else mark_it prev del
    in
    let prev, del = search_from t ~inclusive:false kb t.head in
    if not (BK.equal del.key kb) then false
    else begin
      let won = mark_it prev del in
      (* One direct unlink attempt; if [prev] is stale (e.g. itself marked)
         it does nothing, so fall back to a cleanup search exactly as
         Harris's delete does. *)
      let next = (M.get del.succ).right in
      let expect = M.get prev.succ in
      let unlinked =
        same_node expect.right del && (not expect.mark) && (not expect.flag)
        && M.cas prev.succ ~kind:Ev.Physical_delete ~expect
             (clean_desc t del next)
      in
      (* Inclusive so the search traverses (and thus physically deletes) the
         marked node with key [kb] itself. *)
      if not unlinked then ignore (search_from t ~inclusive:true kb t.head);
      won
    end

  (* Seeded-bug deletions (see [mutation] above).  Single-process use in
     sanitizer tests; each returns what an honest delete would. *)
  let delete_mutant t m kb =
    let prev, del = search_from t ~inclusive:false kb t.head in
    if not (BK.equal del.key kb) then false
    else
      match m with
      | Skip_flag ->
          (* Mark without flagging the predecessor: INV 3. *)
          M.set del.backlink (Node prev);
          try_mark t del;
          true
      | Double_mark ->
          (* Run the honest three-step deletion, then C&S the frozen marked
             descriptor once more: INV 2 (marked is terminal). *)
          let won = delete_flagged t kb in
          let s = M.get del.succ in
          if s.mark then
            ignore
              (M.cas del.succ ~kind:Ev.Marking ~expect:s { s with mark = true });
          won
      | Unlink_unflagged ->
          (* Physically delete [del] without flagging or marking anything:
             INV 3 (unlink from an unflagged predecessor). *)
          let ps = M.get prev.succ in
          if same_node ps.right del && (not ps.mark) && not ps.flag then
            ignore
              (M.cas prev.succ ~kind:Ev.Physical_delete ~expect:ps
                 {
                   right = (M.get del.succ).right;
                   mark = false;
                   flag = false;
                 });
          true
      | Backlink_right -> (
          (* Point the victim's backlink at its *successor*: INV 4. *)
          match (M.get del.succ).right with
          | Node nxt ->
              M.set del.backlink (Node nxt);
              true
          | Null -> true)
      | No_help ->
          (* Not a one-shot corruption: [No_help] gates the altruistic help
             sites instead, and [delete] never routes it here. *)
          assert false

  let delete t k =
    let kb = Lf_kernel.Ordered.Mid k in
    match t.mutation with
    | Some No_help | None ->
        if t.use_flags then delete_flagged t kb else delete_flagless t kb
    | Some m -> delete_mutant t m kb

  (* ------------------------------------------------------------------ *)
  (* Batched operations (the Traeff-Poeter "pragmatic" pattern): process
     the batch in key order, carrying each element's end-of-operation
     predecessor as the next element's search start.  The carry is
     re-validated exactly like a hint (a concurrent deletion may mark it
     between elements), so batches are safe under full concurrency;
     results come back in the caller's original order. *)
  let run_batch t ~inclusive ~key_of ~f elems =
    let arr = Array.of_list elems in
    let n = Array.length arr in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let c = K.compare (key_of arr.(i)) (key_of arr.(j)) in
        if c <> 0 then c else Int.compare i j)
      order;
    let results = Array.make n false in
    let carry = ref t.head in
    Array.iter
      (fun i ->
        let kb = Lf_kernel.Ordered.Mid (key_of arr.(i)) in
        let start =
          match valid_start t ~inclusive kb !carry with
          | Some s -> s
          | None -> t.head
        in
        let ok, c = f kb arr.(i) start in
        results.(i) <- ok;
        carry := c)
      order;
    publish t !carry;
    Array.to_list results

  let insert_batch t kvs =
    run_batch t ~inclusive:true ~key_of:fst
      ~f:(fun kb (_, e) start -> insert_from t kb e start)
      kvs

  let mem_batch t ks =
    run_batch t ~inclusive:true ~key_of:Fun.id
      ~f:(fun kb _ start ->
        let r, c = find_from t kb start in
        (Option.is_some r, c))
      ks

  let delete_batch t ks =
    match (t.mutation, t.use_flags) with
    | Some _, _ | None, false ->
        (* Ablation / mutant deletions have no [_from] variant; fall back
           to the per-element path. *)
        List.map (delete t) ks
    | None, true ->
        run_batch t ~inclusive:false ~key_of:Fun.id
          ~f:(fun kb _ start -> delete_flagged_from t kb start)
          ks

  (* Successor query: the smallest regular binding with key >= [k].  If the
     candidate is marked (logically deleted), help its physical deletion and
     retry, so the returned node was regular while adjacent to its
     predecessor. *)
  let find_ge t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let rec go prev =
      let n1, n2 = search_from t ~inclusive:false kb prev in
      if n2 == t.tail then None
      else if (M.get n2.succ).mark then begin
        help_marked t n1 n2;
        go n1
      end
      else
        match (n2.key, n2.elt) with
        | Mid key, Some e -> Some (key, e)
        | _ -> None
    in
    go t.head

  let min_binding t =
    (* Smallest key: successor of -inf.  Walk from the head, helping past
       marked nodes. *)
    let rec go () =
      match (M.get t.head.succ).right with
      | Null -> None
      | Node n ->
          if n == t.tail then None
          else if (M.get n.succ).mark then begin
            help_marked t t.head n;
            go ()
          end
          else (
            match (n.key, n.elt) with
            | Mid k, Some e -> Some (k, e)
            | _ -> None)
    in
    go ()

  (* Fold over the regular bindings with lo <= key <= hi, in key order.
     Weakly consistent under concurrency: reflects inserts/deletes that
     race with the traversal, like an iterator over any lock-free list. *)
  let fold_range t ~lo ~hi f acc =
    if K.compare lo hi > 0 then acc
    else begin
      let hib = Lf_kernel.Ordered.Mid hi in
      let _, start = search_from t ~inclusive:false (Mid lo) t.head in
      let rec go acc n =
        if n == t.tail || BK.lt hib n.key then acc
        else
          let s = M.get n.succ in
          let acc =
            match (n.key, n.elt) with
            | Mid k, Some e when not s.mark -> f acc k e
            | _ -> acc
          in
          match s.right with Null -> acc | Node m -> go acc m
      in
      go acc start
    end

  (* Quiescent snapshot: regular (unmarked) nodes in key order. *)
  let fold t f acc =
    let rec go acc l =
      match l with
      | Null -> acc
      | Node n -> (
          let s = M.get n.succ in
          match (n.key, n.elt) with
          | Mid k, Some e when not s.mark -> go (f acc k e) s.right
          | _ -> go acc s.right)
    in
    go acc (M.get t.head.succ).right

  let to_list t = List.rev (fold t (fun acc k e -> (k, e) :: acc) [])
  let iter t f = fold t (fun () k e -> f k e) ()
  let length t = fold t (fun acc _ _ -> acc + 1) 0

  (* Structural validation at quiescence: strictly sorted keys (INV 1), no
     marked or flagged node still physically linked, proper sentinels. *)
  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    let rec go prev_key l =
      match l with
      | Null -> fail "fr-list: tail sentinel not reached"
      | Node n ->
          if not (BK.lt prev_key n.key) then
            fail "fr-list: keys not strictly sorted (%a then %a)" BK.pp
              prev_key BK.pp n.key;
          let s = M.get n.succ in
          if n == t.tail then begin
            if s.right <> Null then fail "fr-list: tail has a successor"
          end
          else begin
            if s.mark then
              fail "fr-list: marked node with key %a linked at quiescence"
                BK.pp n.key;
            if s.flag then
              fail "fr-list: flagged node with key %a at quiescence" BK.pp
                n.key;
            go n.key s.right
          end
    in
    go t.head.key (M.get t.head.succ).right

  (* Introspection for tests and the simulator's invariant checker.  Walking
     the physical chain is only meaningful when no step can interleave, i.e.
     at quiescence or inside the deterministic simulator. *)
  module Debug = struct
    type cell = {
      key : K.t Lf_kernel.Ordered.bounded;
      marked : bool;
      flagged : bool;
      is_sentinel : bool;
      backlink_key : K.t Lf_kernel.Ordered.bounded option;
    }

    let physical_chain t =
      let cell_of n =
        let s = M.get n.succ in
        {
          key = n.key;
          marked = s.mark;
          flagged = s.flag;
          is_sentinel = n == t.head || n == t.tail;
          backlink_key =
            (match M.get n.backlink with
            | Null -> None
            | Node b -> Some b.key);
        }
      in
      let rec go acc n =
        let acc = cell_of n :: acc in
        match (M.get n.succ).right with
        | Null -> List.rev acc
        | Node m -> go acc m
      in
      go [] t.head

    (* INV 1-5 restricted to the physically linked chain.  Returns [Error]
       with a description of the first violation found. *)
    let check_now t =
      let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
      let rec walk m_node =
        let m_succ = M.get m_node.succ in
        match m_succ.right with
        | Null ->
            if m_node == t.tail then Ok ()
            else Error "chain ends before the tail sentinel"
        | Node n ->
            let n_succ = M.get n.succ in
            let* () =
              if BK.lt m_node.key n.key then Ok ()
              else Error "INV1: keys not strictly sorted"
            in
            let* () =
              if m_succ.mark && m_succ.flag then
                Error "INV5: node both marked and flagged"
              else Ok ()
            in
            let* () =
              (* INV3/INV4: a logically deleted node (marked, with an
                 unmarked node linked to it) has a flagged predecessor and a
                 backlink pointing at that predecessor.  Only enforced in
                 flag mode; the ablation deliberately violates it. *)
              if t.use_flags && n_succ.mark && not m_succ.mark then
                if not m_succ.flag then
                  Error "INV3: predecessor of logically deleted node unflagged"
                else
                  match M.get n.backlink with
                  | Node b when b == m_node -> Ok ()
                  | Node _ -> Error "INV4: backlink not pointing at predecessor"
                  | Null -> Error "INV4: backlink unset on logically deleted node"
              else Ok ()
            in
            let* () =
              (* INV3 second half: successor of a logically deleted node is
                 unmarked. *)
              if t.use_flags && n_succ.mark && not m_succ.mark then
                match n_succ.right with
                | Null -> Ok ()
                | Node r ->
                    if (M.get r.succ).mark then
                      Error "INV3: successor of logically deleted node marked"
                    else Ok ()
              else Ok ()
            in
            walk n
      in
      walk t.head

    (* Interning-contract audit (the no-ABA qcheck property): exercising
       the descriptor caches of every physically linked node must (a) hand
       back physically equal descriptors for repeated identical requests
       when reuse is on, (b) never make descriptors for distinct [right]
       targets physically equal, and (c) always match the requested bits.
       Quiescent use only — the probes overwrite the caches (harmlessly:
       a mismatching cache just re-allocates). *)
    let reuse_audit t =
      let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
      let probe n r other =
        let s = { right = r; mark = false; flag = false } in
        let m1 = marked_desc t n s and f1 = flagged_desc t n s in
        let u1 = clean_desc t n r in
        let m2 = marked_desc t n s and f2 = flagged_desc t n s in
        let u2 = clean_desc t n r in
        if t.reuse_descriptors && not (m1 == m2 && f1 == f2 && u1 == u2)
        then fail "repeated request not shared at %a" BK.pp n.key
        else if
          (not t.reuse_descriptors) && (m1 == m2 || f1 == f2 || u1 == u2)
        then fail "ablation shared a descriptor at %a" BK.pp n.key
        else if not (m1.mark && (not m1.flag) && same_link m1.right r) then
          fail "marked descriptor bits wrong at %a" BK.pp n.key
        else if not (f1.flag && (not f1.mark) && same_link f1.right r) then
          fail "flagged descriptor bits wrong at %a" BK.pp n.key
        else if
          not ((not u1.mark) && (not u1.flag) && same_link u1.right r)
        then fail "clean descriptor bits wrong at %a" BK.pp n.key
        else
          let s' = { right = other; mark = false; flag = false } in
          let m3 = marked_desc t n s' and f3 = flagged_desc t n s' in
          let u3 = clean_desc t n other in
          if m3 == m1 || f3 == f1 || u3 == u1 then
            fail "distinct rights share a descriptor at %a" BK.pp n.key
          else Ok ()
      in
      let rec walk n =
        match (M.get n.succ).right with
        | Null -> Ok ()
        | Node m -> (
            match probe n (Node m) Null with
            | Error _ as e -> e
            | Ok () -> walk m)
      in
      walk t.head
  end
end

(* Convenience instantiations over real atomics. *)
module Atomic_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
module Atomic_string = Make (Lf_kernel.Ordered.String) (Lf_kernel.Atomic_mem)
module Counting_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Counting_mem)
