(** Lock-free sorted singly-linked list of Fomitchev & Ruppert (PODC 2004),
    Figures 3-5 — the paper's primary contribution.

    Every node carries a successor descriptor [(right, mark, flag)] in one
    C&S-able word and a backlink pointer.  Deleting node B with predecessor
    A takes three C&S steps:

    + {e flag} A: [A.succ: (B,0,0) -> (B,0,1)] (TRYFLAG) — pins A;
    + {e mark} B: set [B.backlink <- A], then [B.succ: (C,0,0) -> (C,1,0)]
      (TRYMARK) — the linearization point of the deletion;
    + {e unlink} B and unflag A: [A.succ: (B,0,1) -> (C,0,0)] (HELPMARKED).

    An operation that fails a C&S because its predecessor got marked follows
    backlinks to the nearest unmarked node and resumes there instead of
    restarting from the head; because a node is only marked while its
    predecessor is flagged (hence unmarked), backlinks never point at marked
    nodes when set, chains of backlinks cannot grow rightward, and the
    amortized cost of an operation S is O(n(S) + c(S)) — list size plus
    point contention (the paper's Theorem, validated by EXP-1).

    All operations are linearizable (Section 3.3; checked mechanically by
    the test suite and EXP-10) and lock-free: a stalled process never blocks
    others, who help pending deletions to completion. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) : sig
  type key = K.t

  type 'a t
  (** A dictionary from [K.t] to ['a]. *)

  type mutation =
    | Skip_flag
    | Double_mark
    | Unlink_unflagged
    | Backlink_right
    | No_help
  (** Seeded protocol bugs for the sanitizer and watchdog tests.  The first
      four corrupt one step of the three-step protocol in the mutated
      list's [delete]: on unchecked memories the damage is silent (often
      even invisible to a quiescent [check_invariants]); under
      [Lf_check.Check_mem] each variant trips a specific invariant —
      respectively INV 3 (marking without a flagged predecessor), INV 2
      (marked is terminal), INV 3 (physical delete from an unflagged
      predecessor) and INV 4 (backlink points right).

      [No_help] instead disables the altruistic helping at every site that
      encounters {e another} operation's flag (operations still complete
      their own deletions).  The structure stays correct under benign
      schedules but is no longer lock-free: an operation stuck behind a
      crashed flag holder spins forever, which the starvation watchdogs
      ([Lf_workload.Sim_driver.run_chaos_sim], [Lf_workload.Runner.run_chaos])
      must detect by name. *)

  val name : string

  val create : unit -> 'a t

  val create_with :
    ?mutation:mutation ->
    ?use_hints:bool ->
    ?use_backoff:bool ->
    ?reuse_descriptors:bool ->
    use_flags:bool ->
    unit ->
    'a t
  (** [create_with ~use_flags:false] builds the EXP-8 ablation variant:
      two-step Harris-style deletion that still sets backlinks but never
      flags the predecessor.  It is correct but loses the guarantee that
      backlinks point at unmarked nodes — the pathology flags exist to
      prevent.  The ablation is not annotated for checked memories, unlike
      the [use_flags:true] variants (mutated or not).

      [use_hints] (default [true]) enables the per-domain predecessor
      cache: each operation starts its search from the last node the
      calling domain ended on, validated per Section 3.2 (unmarked, key
      below the target; marked hints recover through backlinks, unusable
      ones fall back to the head).  [~use_hints:false] is the EXP-17
      ablation.

      [use_backoff] (default [false]) inserts bounded exponential backoff
      ([Mem.S.pause], growing with the consecutive-failure count) before
      re-entering a C&S retry loop after a failed C&S — in TRYMARK,
      TRYFLAG and INSERT.  Helping is never delayed.  EXP-18 measures its
      effect under spurious-C&S-failure storms.

      [reuse_descriptors] (default [true]) interns succ descriptors: each
      node caches its marked/flagged/clean descriptor variants so retry
      loops and the three-step protocol reuse physically-equal descriptors
      instead of allocating per C&S attempt, and a failed insert reuses
      its private candidate node while the successor is unchanged.  C&S
      expectations always come from reads, never from caches, and
      descriptors for distinct [right] targets stay physically distinct
      (no ABA — DESIGN.md §12).  Reuse is step-neutral in the simulator;
      [~reuse_descriptors:false] is the EXP-22 allocating ablation.

      [create () = create_with ~use_flags:true ()]. *)

  (** {1 Dictionary operations (Figures 3-5)} *)

  val find : 'a t -> key -> 'a option
  (** SEARCH. *)

  val mem : 'a t -> key -> bool

  val insert : 'a t -> key -> 'a -> bool
  (** INSERT: [false] on DUPLICATE_KEY. *)

  val delete : 'a t -> key -> bool
  (** DELETE: [false] on NO_SUCH_KEY.  Exactly one of several racing
      deletions of the same node reports success. *)

  (** {1 Batched operations}

      The Träff–Pöter "pragmatic" pattern: the batch is processed in key
      order and each element's end-of-search predecessor is carried (after
      hint-style re-validation) as the next element's start, so a batch of
      b nearby keys pays one head-to-region walk instead of b.  Results are
      in the caller's original order.  Linearizable per element — each
      element is an independent operation that takes effect at its own
      linearization point somewhere inside the batch call. *)

  val insert_batch : 'a t -> (key * 'a) list -> bool list
  val delete_batch : 'a t -> key list -> bool list
  val mem_batch : 'a t -> key list -> bool list

  val hint_stats : 'a t -> Lf_kernel.Hint.stats option
  (** Summed hint-cache counters ([None] when hints are off).  Quiescent
      use only. *)

  (** {1 Order-aware operations} *)

  val find_ge : 'a t -> key -> (key * 'a) option
  (** Successor query: the smallest regular binding with key >= the
      argument. *)

  val min_binding : 'a t -> (key * 'a) option

  val fold_range : 'a t -> lo:key -> hi:key -> ('b -> key -> 'a -> 'b) -> 'b -> 'b
  (** Fold over regular bindings with [lo <= key <= hi] in key order.
      Weakly consistent under concurrency, like any lock-free iterator:
      it reflects some interleaving of the updates that race with it. *)

  (** {1 Snapshots (exact at quiescence)} *)

  val fold : 'a t -> ('b -> key -> 'a -> 'b) -> 'b -> 'b
  val iter : 'a t -> (key -> 'a -> unit) -> unit
  val to_list : 'a t -> (key * 'a) list
  val length : 'a t -> int

  val check_invariants : 'a t -> unit
  (** Quiescent structural validation: strict sorting (INV 1), no marked or
      flagged node still linked.  Raises [Failure] on violation. *)

  (** {1 Introspection}

      Walking the physical chain is only meaningful when no step can
      interleave: at quiescence, or inside the deterministic simulator
      (wrap calls in [Lf_dsim.Sim.quiet]). *)
  module Debug : sig
    type cell = {
      key : K.t Lf_kernel.Ordered.bounded;
      marked : bool;
      flagged : bool;
      is_sentinel : bool;
      backlink_key : K.t Lf_kernel.Ordered.bounded option;
    }

    val physical_chain : 'a t -> cell list
    (** Every node physically reachable from the head, sentinels included. *)

    val check_now : 'a t -> (unit, string) result
    (** INV 1-5 of Section 3.3 restricted to the physically linked chain:
        sortedness, mark/flag exclusion, flagged predecessor and correct
        backlink for every logically deleted node.  The flagless ablation is
        only checked for INV 1 and INV 5. *)

    val reuse_audit : 'a t -> (unit, string) result
    (** Interning-contract audit over every physically linked node: with
        reuse on, repeated identical descriptor requests share physically;
        descriptors for distinct [right] targets are never physically
        equal; descriptor bits always match the request.  Quiescent use
        only (the probes overwrite the per-node caches, harmlessly). *)
  end
end

(** Convenience instantiations over real atomics. *)

module Atomic_int : module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)

module Atomic_string :
  module type of Make (Lf_kernel.Ordered.String) (Lf_kernel.Atomic_mem)

module Counting_int :
  module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Counting_mem)
