(* Small-scope certification under DPOR: scenario builders mirroring the
   explorer tests (fresh structure + fresh sanitizer per replay), oracles,
   the mutant-kill gate, deterministic rendering.

   Determinism is load-bearing everywhere here: replay-based exploration
   forces recorded choices, so a scenario that draws from a global RNG
   would diverge between replays.  Hence the skip list inserts with
   scripted heights ((k mod 3) + 1) and the priority queue runs with
   [max_level = 1] (a height-1 tower needs no coin flips; the three-step
   pop protocol is exercised in full). *)

module Sim = Lf_dsim.Sim

type op = I of int | D of int | F of int

type scenario = {
  sc_name : string;
  sc_initial : int list;
  sc_scripts : op list list;
}

(* The canonical grid for the one-level structures.  Scope names are the
   stable report keys; scripts behind a name may differ per structure so
   every certification scope is exhaustible (see [skiplist_grid]). *)
let list_grid =
  [
    {
      sc_name = "2x2-conflict";
      sc_initial = [ 1; 3 ];
      sc_scripts = [ [ I 2; D 1 ]; [ D 2; I 1 ] ];
    };
    {
      sc_name = "2x2-hotspot";
      sc_initial = [ 1; 3 ];
      sc_scripts = [ [ I 2; D 2 ]; [ D 2; I 2 ] ];
    };
    {
      sc_name = "2x3-mixed";
      sc_initial = [ 1; 3 ];
      sc_scripts = [ [ I 2; D 1; F 3 ]; [ D 3; I 4; F 2 ] ];
    };
    {
      sc_name = "3x1-threeway";
      sc_initial = [ 1; 3 ];
      sc_scripts = [ [ I 2 ]; [ D 1 ]; [ D 2 ] ];
    };
  ]

(* The skip-list grid moderates direct conflicts on height-2 towers: a
   two-level deletion retried under a symmetric insert/delete of the same
   tower multiplies racing access pairs past exhaustibility (hundreds of
   thousands of traces at 2x2 already).  These scripts still cover every
   protocol path - tower deletion (keys 1, 3, 5 have height 2) racing
   concurrent traffic, duplicate-insert races, searches through towers
   being unlinked - with one direct conflict pair per scope. *)
let skiplist_grid =
  [
    {
      sc_name = "2x2-conflict";
      sc_initial = [ 1; 3 ];
      sc_scripts = [ [ I 2; D 1 ]; [ I 4; F 2 ] ];
    };
    {
      sc_name = "2x2-hotspot";
      sc_initial = [ 1; 3 ];
      sc_scripts = [ [ I 2; D 2 ]; [ D 2; I 2 ] ];
    };
    {
      sc_name = "2x3-mixed";
      sc_initial = [ 1; 3; 5 ];
      sc_scripts = [ [ I 2; F 1; D 2 ]; [ D 5; I 4; F 2 ] ];
    };
    {
      sc_name = "3x1-threeway";
      sc_initial = [ 1; 3 ];
      sc_scripts = [ [ I 2 ]; [ D 3 ]; [ F 2 ] ];
    };
  ]

(* For the priority queue every [D] is a pop of the shared minimum, so
   three processes that mostly pop explode the trace count (the list
   3x1 scripts exceed 290k traces).  Two pushes racing one pop keeps the
   three-way interleaving while staying well under a thousand traces. *)
let pqueue_grid =
  List.map
    (fun sc ->
      if sc.sc_name = "3x1-threeway" then
        { sc with sc_scripts = [ [ I 2 ]; [ I 4 ]; [ D 1 ] ] }
      else sc)
    list_grid

let scenarios ?(structure = "fr-list") ~quick () =
  let grid =
    match structure with
    | "fr-skiplist" | "fr-skiplist-noreuse" -> skiplist_grid
    | "pqueue" -> pqueue_grid
    | _ -> list_grid
  in
  if quick then List.filter (fun s -> s.sc_name <> "3x1-threeway") grid
  else grid

let structures =
  [
    "fr-list";
    "fr-list-noreuse";
    "fr-skiplist";
    "fr-skiplist-noreuse";
    "lf-hashtable";
    "pqueue";
    "harris-list";
    "valois-list";
  ]

let mutations =
  [ "skip-flag"; "double-mark"; "unlink-unflagged"; "backlink-right"; "no-help" ]

(* ------------------------------------------------------------------ *)
(* Dictionary scenario builders (cf. test_explore's dict_scenario). *)

type dict_ops = {
  do_insert : int -> bool;
  do_delete : int -> bool;
  do_find : int -> bool;
  do_check : unit -> unit;  (* raises Failure on invariant violation *)
}

let fr_list_dict ?mutation ?(reuse = true) () =
  let module CM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem) in
  let module L = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (CM) in
  let t =
    match mutation with
    | None -> L.create_with ~use_flags:true ~reuse_descriptors:reuse ()
    | Some m ->
        let mu =
          match m with
          | "skip-flag" -> L.Skip_flag
          | "double-mark" -> L.Double_mark
          | "unlink-unflagged" -> L.Unlink_unflagged
          | "backlink-right" -> L.Backlink_right
          | "no-help" -> L.No_help
          | other -> invalid_arg ("Certify: unknown mutation " ^ other)
        in
        L.create_with ~mutation:mu ~use_flags:true ~reuse_descriptors:reuse ()
  in
  {
    do_insert = (fun k -> L.insert t k k);
    do_delete = (fun k -> L.delete t k);
    do_find = (fun k -> L.mem t k);
    do_check =
      (fun () ->
        L.check_invariants t;
        match L.Debug.check_now t with Ok () -> () | Error m -> failwith m);
  }

let fr_skiplist_dict ?(reuse = true) () =
  let module CM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem) in
  let module L = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (CM) in
  (* Two levels: enough for the full tower protocol (root deletion plus
     upper-level unlink) while keeping the trace space exhaustible - each
     extra level multiplies the racing-access pairs. *)
  let t = L.create_with ~max_level:2 ~reuse_descriptors:reuse () in
  {
    do_insert = (fun k -> L.insert_with_height t ~height:((k mod 2) + 1) k k);
    do_delete = (fun k -> L.delete t k);
    do_find = (fun k -> L.mem t k);
    do_check = (fun () -> L.check_invariants t);
  }

let hashtable_dict () =
  let module CM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem) in
  let module H = Lf_hashtable.Make (Lf_hashtable.Int_key) (CM) in
  (* Two buckets: adjacent keys collide, so the scripts still conflict. *)
  let t = H.create_with ~buckets:2 () in
  {
    do_insert = (fun k -> H.insert t k k);
    do_delete = (fun k -> H.delete t k);
    do_find = (fun k -> H.mem t k);
    do_check = (fun () -> H.check_invariants t);
  }

let harris_dict () =
  let module L =
    Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
  in
  let t = L.create () in
  {
    do_insert = (fun k -> L.insert t k k);
    do_delete = (fun k -> L.delete t k);
    do_find = (fun k -> L.mem t k);
    do_check = (fun () -> L.check_invariants t);
  }

let valois_dict () =
  let module L =
    Lf_baselines.Valois_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
  in
  let t = L.create () in
  {
    do_insert = (fun k -> L.insert t k k);
    do_delete = (fun k -> L.delete t k);
    do_find = (fun k -> L.mem t k);
    do_check = (fun () -> L.check_invariants t);
  }

(* Dictionary oracle: structural invariants (and, for the checked
   structures, whatever the sanitizer raised mid-run), then Wing & Gold
   linearizability of the recorded history. *)
let dict_mk mk_dict sc () =
  let d = mk_dict () in
  Sim.quiet (fun () -> List.iter (fun k -> ignore (d.do_insert k)) sc.sc_initial);
  let clock = ref 0 in
  let entries = ref [] in
  let tick () =
    let v = !clock in
    incr clock;
    v
  in
  let body pid =
    List.iter
      (fun o ->
        let inv = tick () in
        let hop, ok =
          match o with
          | I k -> (Lf_lin.History.Insert k, d.do_insert k)
          | D k -> (Lf_lin.History.Delete k, d.do_delete k)
          | F k -> (Lf_lin.History.Find k, d.do_find k)
        in
        let ret = tick () in
        entries := { Lf_lin.History.pid; op = hop; ok; inv; ret } :: !entries)
      (List.nth sc.sc_scripts pid)
  in
  let check () =
    match Sim.quiet d.do_check with
    | exception Failure msg -> Error msg
    | () -> (
        let h =
          List.sort
            (fun a b -> compare a.Lf_lin.History.inv b.Lf_lin.History.inv)
            !entries
        in
        let init =
          List.fold_left
            (fun s k -> Lf_lin.Checker.IntSet.add k s)
            Lf_lin.Checker.IntSet.empty sc.sc_initial
        in
        match Lf_lin.Checker.check ~init h with
        | Lf_lin.Checker.Linearizable -> Ok ()
        | Lf_lin.Checker.Not_linearizable -> Error "not linearizable")
  in
  (Array.make (List.length sc.sc_scripts) body, check)

(* Priority-queue scenario: [I k] pushes, [D _] pops the minimum, [F _]
   peeks.  Oracle is conservation: every successfully pushed priority is
   popped at most once, and pops plus the quiescent remainder account for
   exactly the pushes. *)
let pqueue_mk sc () =
  let module CM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem) in
  let module Q = Lf_pqueue.Pqueue.Make (Lf_kernel.Ordered.Int) (CM) in
  let t = Q.create ~max_level:1 () in
  let pushed = ref [] in
  let popped = ref [] in
  Sim.quiet (fun () ->
      List.iter
        (fun k -> if Q.push t k k then pushed := k :: !pushed)
        sc.sc_initial);
  let body pid =
    List.iter
      (fun o ->
        match o with
        | I k -> if Q.push t k k then pushed := k :: !pushed
        | D _ -> (
            match Q.pop_min t with
            | Some (k, _) -> popped := k :: !popped
            | None -> ())
        | F _ -> ignore (Q.peek_min t : (int * int) option))
      (List.nth sc.sc_scripts pid)
  in
  let check () =
    let rec drain acc =
      match Q.pop_min t with Some (k, _) -> drain (k :: acc) | None -> acc
    in
    let remaining = Sim.quiet (fun () -> drain []) in
    (* Multiset conservation: a popped priority may legitimately reappear
       if re-pushed, but every successful push is claimed by exactly one
       pop or still queued at quiescence. *)
    let sorted l = List.sort compare l in
    let accounted = sorted (!popped @ remaining) in
    if accounted <> sorted !pushed then
      Error
        (Printf.sprintf "conservation: pushed {%s}, accounted {%s}"
           (String.concat "," (List.map string_of_int (sorted !pushed)))
           (String.concat "," (List.map string_of_int accounted)))
    else Ok ()
  in
  (Array.make (List.length sc.sc_scripts) body, check)

let mk ~structure ?mutation sc =
  (match mutation with
  | Some _ when structure <> "fr-list" ->
      invalid_arg "Certify: mutations are seeded in fr-list only"
  | _ -> ());
  match structure with
  | "fr-list" -> dict_mk (fr_list_dict ?mutation) sc
  (* The -noreuse variants certify the EXP-22 allocating ablation: the
     descriptor-interning flag must be invisible to the exhaustive
     small-scope check in either position. *)
  | "fr-list-noreuse" -> dict_mk (fr_list_dict ?mutation ~reuse:false) sc
  | "fr-skiplist" -> dict_mk fr_skiplist_dict sc
  | "fr-skiplist-noreuse" -> dict_mk (fr_skiplist_dict ~reuse:false) sc
  | "lf-hashtable" -> dict_mk hashtable_dict sc
  | "harris-list" -> dict_mk harris_dict sc
  | "valois-list" -> dict_mk valois_dict sc
  | "pqueue" -> pqueue_mk sc
  | other -> invalid_arg ("Certify: unknown structure " ^ other)

(* ------------------------------------------------------------------ *)
(* Certification. *)

type certificate = {
  ct_structure : string;
  ct_scenario : string;
  ct_procs : int;
  ct_ops : int;
  ct_outcome : Dpor.outcome;
}

let replays (o : Dpor.outcome) = o.schedules_run + o.sleep_set_prunes

let certify ?(max_schedules = 200_000) ?(max_steps = 200_000) ~structure sc =
  let outcome = Dpor.run ~max_schedules ~max_steps (mk ~structure sc) in
  {
    ct_structure = structure;
    ct_scenario = sc.sc_name;
    ct_procs = List.length sc.sc_scripts;
    ct_ops = List.fold_left (fun n s -> n + List.length s) 0 sc.sc_scripts;
    ct_outcome = outcome;
  }

let certify_all ?max_schedules ~quick ~structures:sts () =
  List.concat_map
    (fun structure ->
      List.map
        (fun sc -> certify ?max_schedules ~structure sc)
        (scenarios ~structure ~quick ()))
    sts

(* ------------------------------------------------------------------ *)
(* Mutant-kill gate.  The scope ladder is climbed smallest first; a
   mutant's kill is minimal when every smaller scope was exhausted without
   a failure.  The step budget is small so the No_help livelock (an
   operation spinning behind a parked flag holder) surfaces as a
   step-budget failure within the killing schedule. *)

let ladder =
  [
    ("1p-delete", { sc_name = "1p-delete"; sc_initial = [ 1; 2 ]; sc_scripts = [ [ D 1 ] ] });
    ( "2p-deletes",
      {
        sc_name = "2p-deletes";
        sc_initial = [ 1; 2; 3 ];
        sc_scripts = [ [ D 1 ]; [ D 2 ] ];
      } );
  ]

type kill = {
  k_mutation : string;
  k_survived : (string * int) list;
  k_killed_at : (string * int * string) option;
}

let first_line s = match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

let kill_matrix () =
  List.map
    (fun mutation ->
      let rec climb survived = function
        | [] -> { k_mutation = mutation; k_survived = List.rev survived; k_killed_at = None }
        | (scope, sc) :: rest -> (
            let outcome =
              Dpor.run ~max_steps:4_000 ~max_failures:1
                (mk ~structure:"fr-list" ~mutation sc)
            in
            match outcome.Dpor.failures with
            | (_, msg) :: _ ->
                {
                  k_mutation = mutation;
                  k_survived = List.rev survived;
                  k_killed_at = Some (scope, replays outcome, first_line msg);
                }
            | [] -> climb ((scope, replays outcome) :: survived) rest)
      in
      climb [] ladder)
    mutations

(* ------------------------------------------------------------------ *)
(* Rendering.  Everything printed is a pure function of the scenarios, so
   two runs of [lfdict model] are byte-identical (CI diffs them). *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let certificates_ok cts =
  List.for_all
    (fun c -> c.ct_outcome.Dpor.failures = [] && not c.ct_outcome.Dpor.truncated)
    cts

let kills_ok ks = List.for_all (fun k -> k.k_killed_at <> None) ks

let render_certificates ~json cts =
  let b = Buffer.create 1024 in
  if json then begin
    Buffer.add_string b "[\n";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string b ",\n";
        let o = c.ct_outcome in
        Buffer.add_string b
          (Printf.sprintf
             "  {\"structure\": \"%s\", \"scenario\": \"%s\", \"procs\": %d, \
              \"ops\": %d, \"schedules\": %d, \"sleep_prunes\": %d, \
              \"max_depth\": %d, \"exhausted\": %b, \"failures\": %d}"
             (json_escape c.ct_structure)
             (json_escape c.ct_scenario) c.ct_procs c.ct_ops o.Dpor.schedules_run
             o.Dpor.sleep_set_prunes o.Dpor.max_depth
             (not o.Dpor.truncated)
             (List.length o.Dpor.failures)))
      cts;
    Buffer.add_string b "\n]\n"
  end
  else begin
    Buffer.add_string b "model check (DPOR):\n";
    List.iter
      (fun c ->
        let o = c.ct_outcome in
        Buffer.add_string b
          (Printf.sprintf
             "  %-13s %-13s %dp/%dops: %s, %d schedules + %d sleep-set \
              prunes, depth <= %d, %d failures\n"
             c.ct_structure c.ct_scenario c.ct_procs c.ct_ops
             (if o.Dpor.truncated then "TRUNCATED" else "exhausted")
             o.Dpor.schedules_run o.Dpor.sleep_set_prunes o.Dpor.max_depth
             (List.length o.Dpor.failures));
        List.iter
          (fun (trace, msg) ->
            Buffer.add_string b
              (Printf.sprintf "    FAIL under schedule [%s]: %s\n"
                 (String.concat ";" (List.map string_of_int trace))
                 (first_line msg)))
          o.Dpor.failures)
      cts;
    Buffer.add_string b
      (if certificates_ok cts then "verdict: PASS (all scopes exhausted, no failures)\n"
       else "verdict: FAIL\n")
  end;
  Buffer.contents b

let render_kills ~json ks =
  let b = Buffer.create 1024 in
  if json then begin
    Buffer.add_string b "[\n";
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string b ",\n";
        let survived =
          String.concat ", "
            (List.map
               (fun (s, n) -> Printf.sprintf "{\"scope\": \"%s\", \"replays\": %d}" (json_escape s) n)
               k.k_survived)
        in
        let killed =
          match k.k_killed_at with
          | None -> "null"
          | Some (scope, n, msg) ->
              Printf.sprintf
                "{\"scope\": \"%s\", \"replays\": %d, \"message\": \"%s\"}"
                (json_escape scope) n (json_escape msg)
        in
        Buffer.add_string b
          (Printf.sprintf
             "  {\"mutation\": \"%s\", \"survived\": [%s], \"killed\": %s}"
             (json_escape k.k_mutation) survived killed))
      ks;
    Buffer.add_string b "\n]\n"
  end
  else begin
    Buffer.add_string b "mutant kill matrix (fr-list):\n";
    List.iter
      (fun k ->
        match k.k_killed_at with
        | Some (scope, n, msg) ->
            Buffer.add_string b
              (Printf.sprintf "  %-17s killed at %s (%d replays): %s\n"
                 k.k_mutation scope n msg);
            List.iter
              (fun (s, m) ->
                Buffer.add_string b
                  (Printf.sprintf "    survived %s (%d replays, exhausted)\n" s
                     m))
              k.k_survived
        | None ->
            Buffer.add_string b
              (Printf.sprintf "  %-17s NOT KILLED\n" k.k_mutation))
      ks;
    Buffer.add_string b
      (if kills_ok ks then "verdict: PASS (all mutants killed)\n"
       else "verdict: FAIL\n")
  end;
  Buffer.contents b
