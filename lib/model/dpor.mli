(** Stateless model checking with dynamic partial-order reduction
    (Flanagan & Godefroid, POPL 2005), with sleep sets (Godefroid), over
    the deterministic simulator.

    Where {!Lf_dsim.Explore} bounds the search with a preemption budget,
    [run] explores a {e provably sufficient} subset of {e all}
    interleavings: per-step dependency footprints ({!Footprint}) say which
    adjacent steps commute, happens-before vector clocks detect races
    between dependent steps of different processes, and every detected race
    adds a backtrack obligation at the earliest decision that could reorder
    it.  When the search drains with no obligation left, every Mazurkiewicz
    trace (equivalence class of interleavings under commutation) of the
    scenario has been executed at least once — exhaustiveness without
    enumerating the full factorial schedule space.

    Scheduling model: a process whose next shared-memory access is not yet
    known (it has not started) is launched first, lowest pid first; the
    launch slice executes only private code up to the first access, so it
    commutes with everything and is not a decision.  After that every
    decision point knows each runnable process's pending footprint.  A
    decision trace (the pid chosen at each decision) fully determines the
    run, which is what makes failures replayable. *)

type outcome = {
  schedules_run : int;  (** complete replays (oracle evaluated) *)
  sleep_set_prunes : int;
      (** replays abandoned because every runnable process was asleep —
          the continuation is a permutation of already-explored traces *)
  max_depth : int;  (** longest decision trace executed *)
  truncated : bool;
      (** stopped early: at [max_schedules] total replays, or after
          [max_failures] distinct failures.  When [false], the schedule
          space was exhausted up to trace equivalence. *)
  failures : (int list * string) list;
      (** decision trace reproducing each distinct failing schedule
          (replay with {!run_one}), plus its message *)
}

val run_one :
  max_steps:int ->
  (unit -> (Lf_dsim.Sim.pid -> unit) array * (unit -> (unit, string) result)) ->
  int array ->
  int list * (unit, string) result
(** One replay under a forced decision prefix (same auto-launch convention
    as {!run}; past the prefix, the default rule continues the last-run
    process, else the lowest runnable pid).  Returns the full decision
    trace and the oracle's verdict.  Replays the traces {!run} reports in
    [failures]. *)

val run :
  ?max_schedules:int ->
  ?max_steps:int ->
  ?max_failures:int ->
  (unit -> (Lf_dsim.Sim.pid -> unit) array * (unit -> (unit, string) result)) ->
  outcome
(** [run mk] explores the scenario to trace-exhaustion (or truncation).
    The contract for [mk] is {!Lf_dsim.Explore.run}'s: fresh bodies over a
    fresh structure each call, oracle evaluated after the run, and the
    scenario must be deterministic (same choices => same run).  A mid-run
    exception (checked-memory protocol violation, step budget) is recorded
    as that schedule's failure.  Defaults: 200_000 replays, 1_000_000
    steps per replay, 10 recorded failures. *)
