(** Small-scope certification of the repository's structures under the
    DPOR model checker: canonical conflict scenarios, oracles (protocol
    sanitizer + structural invariants + linearizability, or conservation
    for the priority queue), the seeded-mutant kill gate, and deterministic
    report rendering (the [lfdict model] subcommand and EXP-21 are thin
    wrappers over this module).

    Everything here is a pure function of the scenario: reports are
    byte-identical across runs and processes, which CI checks. *)

type op = I of int | D of int | F of int
(** One scripted operation.  For dictionaries: insert / delete / find of
    the key.  For the priority queue the same scripts are reinterpreted:
    [I k] pushes priority [k], [D _] pops the minimum, [F _] peeks. *)

type scenario = {
  sc_name : string;
  sc_initial : int list;  (** keys inserted (pushed) before the run *)
  sc_scripts : op list list;  (** one script per process *)
}

val scenarios : ?structure:string -> quick:bool -> unit -> scenario list
(** The canonical small-scope grid: 2 processes x 2 ops (conflict and
    hotspot), 2 x 3 (the acceptance scope), and with [quick:false] also
    3 x 1.  Scope names are stable across structures; the scripts behind
    them are moderated for ["fr-skiplist"] (height-2 tower deletions under
    a symmetric conflict exceed exhaustible trace counts) and for
    ["pqueue"] (three competing pops of the shared minimum do too). *)

val structures : string list
(** Certifiable structures: the FR list and skip list (under the
    {!Lf_check.Check_mem} sanitizer), the hash table, the priority queue,
    and the Harris and Valois baselines (plain memory; they do not speak
    the flag/backlink protocol). *)

val mk :
  structure:string ->
  ?mutation:string ->
  scenario ->
  unit ->
  (Lf_dsim.Sim.pid -> unit) array * (unit -> (unit, string) result)
(** Scenario builder with the {!Dpor.run} / {!Lf_dsim.Explore.run}
    contract: each call builds a fresh structure (and, for the checked
    structures, a fresh sanitizer instance), prefills it quietly, and
    returns process bodies plus the oracle.  [mutation] (fr-list only)
    seeds a protocol bug: ["skip-flag"], ["double-mark"],
    ["unlink-unflagged"], ["backlink-right"], ["no-help"].
    @raise Invalid_argument on unknown structure or mutation. *)

(** {1 Certification} *)

type certificate = {
  ct_structure : string;
  ct_scenario : string;
  ct_procs : int;
  ct_ops : int;  (** scripted operations, all processes *)
  ct_outcome : Dpor.outcome;
}

val replays : Dpor.outcome -> int
(** Total replays: complete schedules plus sleep-set prunes. *)

val certify :
  ?max_schedules:int ->
  ?max_steps:int ->
  structure:string ->
  scenario ->
  certificate

val certify_all :
  ?max_schedules:int -> quick:bool -> structures:string list -> unit ->
  certificate list

(** {1 Mutant-kill gate} *)

val mutations : string list

type kill = {
  k_mutation : string;
  k_survived : (string * int) list;
      (** scopes below the kill where the mutant survived exhaustive
          exploration (scope name, replays spent) — the evidence that the
          killing scope is minimal *)
  k_killed_at : (string * int * string) option;
      (** killing scope, replays to the first failure, first line of the
          failure message; [None] if no scope killed it (a gate failure) *)
}

val kill_matrix : unit -> kill list
(** Run every seeded fr-list mutant up the scope ladder (1 process, then
    2) under DPOR with a small step budget, so the [No_help] livelock
    surfaces as a step-budget failure.  Each scope is explored to
    exhaustion or first failure. *)

(** {1 Rendering (deterministic)} *)

val render_certificates : json:bool -> certificate list -> string
val render_kills : json:bool -> kill list -> string

val certificates_ok : certificate list -> bool
(** No failures and every scope exhausted. *)

val kills_ok : kill list -> bool
(** Every mutant killed. *)
