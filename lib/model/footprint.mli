(** Dependency footprints for simulator steps: which cell a shared-memory
    action touches and whether it behaves as a read or a write.  This is
    the commutation theory the DPOR engine ({!Dpor}) reduces with.

    Two steps are {e independent} (swapping two adjacent occurrences cannot
    change any process's observations or the final state) unless they touch
    the same cell and at least one of them writes.  Three refinements make
    the relation precise enough to collapse the schedule space of the
    paper's structures:

    - a {e failed} C&S wrote nothing, so it is a read (known only after
      execution, from the [Cas_ok]/[Cas_fail] notes the simulator records);
    - a {e pending} C&S may still succeed, so before execution it must be
      treated as a write;
    - two blind stores of the {e same} value commute (the final state is
      identical and neither observes the other) — this is the backlink
      pattern, where racing helpers [set] the victim's backlink to the same
      predecessor. *)

type rw =
  | R  (** read, or failed C&S *)
  | W  (** write whose stored value is unknown or unique: successful or
           pending C&S *)
  | W_val of Obj.t  (** blind store of this value (physical identity) *)

type t = { loc : int; rw : rw }

val of_access : Lf_dsim.Sim.access -> t option
(** Footprint of an {e executed} access; [None] for [Pause] (touches
    nothing).  Uses the recorded C&S outcome: failed C&S is a read. *)

val of_pending : Lf_dsim.Sim_effect.step -> t option
(** Footprint of a {e pending} step; [None] for [Pause].  A pending C&S is
    conservatively a write. *)

val dependent : t -> t -> bool
(** Symmetric: same cell and at least one write, except that two blind
    stores of the same value commute.  Value equality is physical one level
    deep: identical representations, or ordinary blocks of the same tag and
    size whose fields are physically equal (so two separately allocated
    [Node prev] constructors with the same [prev] count as the same
    store). *)

val to_string : t -> string
