(* Dependency footprints: the commutation theory DPOR reduces with.  See
   the .mli for the relation; the subtleties live in [same_value] (one
   level of structure, physical below - just enough to recognise racing
   helpers storing the same [Node prev] backlink) and in the asymmetry
   between executed C&S (outcome known: failed = read) and pending C&S
   (outcome unknown: conservatively a write). *)

module SE = Lf_dsim.Sim_effect

type rw = R | W | W_val of Obj.t

type t = { loc : int; rw : rw }

let of_access (a : Lf_dsim.Sim.access) : t option =
  let s = a.a_step in
  match s.SE.kind with
  | SE.Pause -> None
  | SE.Read -> Some { loc = s.SE.loc; rw = R }
  | SE.Write -> Some { loc = s.SE.loc; rw = W_val s.SE.value }
  | SE.Cas _ -> (
      match a.a_cas_ok with
      | Some true -> Some { loc = s.SE.loc; rw = W }
      | Some false | None -> Some { loc = s.SE.loc; rw = R })

let of_pending (s : SE.step) : t option =
  match s.SE.kind with
  | SE.Pause -> None
  | SE.Read -> Some { loc = s.SE.loc; rw = R }
  | SE.Write -> Some { loc = s.SE.loc; rw = W_val s.SE.value }
  | SE.Cas _ -> Some { loc = s.SE.loc; rw = W }

(* Same stored value, physically, looking one level deep: two separately
   allocated [Node prev] blocks with the same [prev] field are the same
   store.  Restricted to ordinary scannable blocks so [Obj.field] is never
   applied to flat float arrays / strings / customs. *)
let same_value va vb =
  va == vb
  || Obj.is_block va && Obj.is_block vb
     && Obj.tag va = Obj.tag vb
     && Obj.tag va < Obj.no_scan_tag
     && Obj.tag va <> Obj.double_array_tag
     && Obj.size va = Obj.size vb
     &&
     let n = Obj.size va in
     let rec fields_eq i =
       i >= n || (Obj.field va i == Obj.field vb i && fields_eq (i + 1))
     in
     fields_eq 0

let dependent a b =
  a.loc = b.loc
  &&
  match (a.rw, b.rw) with
  | R, R -> false
  | W_val va, W_val vb -> not (same_value va vb)
  | (R | W | W_val _), (R | W | W_val _) -> true

let to_string t =
  let rw =
    match t.rw with R -> "r" | W -> "w" | W_val _ -> "w="
  in
  Printf.sprintf "%s@%d" rw t.loc
