(* Dynamic partial-order reduction (Flanagan & Godefroid, POPL 2005) with
   sleep sets, replay-based, over the deterministic simulator.

   The exploration tree is a stack of frames, one per scheduling decision
   on the current path.  Each frame remembers which processes were enabled,
   which choice is currently taken, which choices are done, the backtrack
   set (choices some detected race obliges us to try) and the sleep set on
   entry.  A replay forces the frames' choices up to a deviation point,
   takes the new choice there, then follows the default rule; during the
   run every executed access is checked against the per-cell access history
   with vector clocks, and each race (dependent accesses of different
   processes, unordered by happens-before) adds the racing process to the
   backtrack set of the frame where its earlier rival ran.  The loop pops
   to the deepest frame with an unexplored obligation until none remain.

   Soundness of the pruning leans on three properties of the seam:
   - every shared-memory access is a [Step] effect carrying its footprint
     (Sim_mem is the only memory below the structures here, and the checked
     wrappers delegate without adding steps);
   - the simulator is deterministic, so identical choice prefixes replay
     identical runs and the recorded frames stay valid across replays;
   - launch slices execute no shared access, so launching in fixed pid
     order loses no interleavings. *)

module Sim = Lf_dsim.Sim
module V = Lf_check.Vclock
module IntSet = Set.Make (Int)

type outcome = {
  schedules_run : int;
  sleep_set_prunes : int;
  max_depth : int;
  truncated : bool;
  failures : (int list * string) list;
}

(* Minimal growable array (stdlib Dynarray is 5.2+). *)
module Da = struct
  type 'a t = { mutable a : 'a array; mutable n : int }

  let create () = { a = [||]; n = 0 }
  let length t = t.n
  let get t i = t.a.(i)

  let push t x =
    if t.n = Array.length t.a then begin
      let a' = Array.make (max 8 (2 * t.n)) x in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let truncate t n = if n < t.n then t.n <- n
end

type frame = {
  f_enabled : int list;  (* runnable pids at this decision *)
  mutable f_chosen : int;  (* choice on the current path *)
  mutable f_done : IntSet.t;  (* choices explored (or being explored) *)
  mutable f_backtrack : IntSet.t;  (* choices races oblige us to try *)
  f_sleep : IntSet.t;  (* sleep set on entry to this frame *)
}

(* One executed access in the per-cell history of the current replay. *)
type entry = {
  e_depth : int;
  e_pid : int;
  e_fp : Footprint.t;
  e_clock : V.t;  (* the executing process's clock just after the access *)
}

let clock_copy c =
  let d = V.create () in
  V.join d c;
  d

let not_deterministic () =
  failwith
    "Dpor: forced choice not runnable - the scenario is not deterministic \
     (is it drawing from a global RNG?)"

(* A single replay, shared by [run] (which passes the frame stack and a
   deviation point) and [run_one] (no frames: forced prefix only).  Returns
   the verdict, whether the run was pruned by the sleep set, and the full
   decision trace. *)
let replay ?frames ?(deviation = -1) ~max_steps mk (forced_one : int array) =
  let bodies, check = mk () in
  let nprocs = Array.length bodies in
  let proc_clocks = Array.init nprocs (fun _ -> V.create ()) in
  let history : (int, entry list ref) Hashtbl.t = Hashtbl.create 64 in
  let depth = ref 0 in
  let last = ref (-1) in
  let pruned = ref false in
  let choices_rev = ref [] in
  let sleep = ref IntSet.empty in
  let awaiting = ref (-1) in
  let forced_len =
    match frames with
    | Some _ -> deviation + 1 (* frames 0..deviation carry the choices *)
    | None -> Array.length forced_one
  in
  let policy st =
    match Sim.runnable st with
    | [] -> None
    | runnable -> (
        match
          List.find_opt
            (fun p -> Option.is_none (Sim.pending_access st p))
            runnable
        with
        | Some p -> Some p (* launch: private code only, not a decision *)
        | None -> (
            let d = !depth in
            let choice =
              if d < forced_len then begin
                let c =
                  match frames with
                  | Some fs ->
                      let f = Da.get fs d in
                      if d = deviation then
                        (* Entering the new branch: siblings explored from
                           this frame join the inherited sleep set. *)
                        sleep :=
                          IntSet.union f.f_sleep
                            (IntSet.remove f.f_chosen f.f_done);
                      f.f_chosen
                  | None -> forced_one.(d)
                in
                if not (List.mem c runnable) then not_deterministic ();
                Some c
              end
              else
                let awake =
                  List.filter (fun p -> not (IntSet.mem p !sleep)) runnable
                in
                match awake with
                | [] ->
                    (* Everything runnable is asleep: any continuation is a
                       permutation of an already-explored trace. *)
                    pruned := true;
                    None
                | aw ->
                    let c = if List.mem !last aw then !last else List.hd aw in
                    (match frames with
                    | Some fs when d >= forced_len ->
                        assert (Da.length fs = d);
                        Da.push fs
                          {
                            f_enabled = runnable;
                            f_chosen = c;
                            f_done = IntSet.singleton c;
                            f_backtrack = IntSet.empty;
                            f_sleep = !sleep;
                          }
                    | _ -> ());
                    Some c
            in
            match choice with
            | None -> None
            | Some chosen ->
                depth := d + 1;
                choices_rev := chosen :: !choices_rev;
                last := chosen;
                awaiting := d;
                Some chosen))
  in
  let on_step st _pid =
    let d = !awaiting in
    if d >= 0 then begin
      awaiting := -1;
      match Sim.last_access st with
      | None -> ()
      | Some a -> (
          match Footprint.of_access a with
          | None -> () (* pause: touches nothing *)
          | Some fp ->
              let p = a.Sim.a_pid in
              let hist =
                match Hashtbl.find_opt history fp.Footprint.loc with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add history fp.Footprint.loc r;
                    r
              in
              let deps =
                List.filter (fun e -> Footprint.dependent e.e_fp fp) !hist
              in
              let v_before = clock_copy proc_clocks.(p) in
              (* The access happens-after every dependent predecessor. *)
              List.iter (fun e -> V.join proc_clocks.(p) e.e_clock) deps;
              V.set proc_clocks.(p) p (d + 1);
              (* Race: a dependent predecessor of another process, not
                 already ordered before us - someone must try running [p]
                 at the decision where the rival ran. *)
              (match frames with
              | None -> ()
              | Some fs ->
                  List.iter
                    (fun e ->
                      if
                        e.e_pid <> p
                        && e.e_depth + 1 > V.get v_before e.e_pid
                      then begin
                        let f = Da.get fs e.e_depth in
                        if List.mem p f.f_enabled then
                          f.f_backtrack <- IntSet.add p f.f_backtrack
                        else
                          f.f_backtrack <-
                            List.fold_left
                              (fun s q -> IntSet.add q s)
                              f.f_backtrack f.f_enabled
                      end)
                    deps);
              hist :=
                {
                  e_depth = d;
                  e_pid = p;
                  e_fp = fp;
                  e_clock = clock_copy proc_clocks.(p);
                }
                :: !hist;
              (* Wake sleeping processes whose pending access no longer
                 commutes with what just executed. *)
              if not (IntSet.is_empty !sleep) then
                sleep :=
                  IntSet.filter
                    (fun q ->
                      match Sim.pending_access st q with
                      | None -> false
                      | Some s -> (
                          match Footprint.of_pending s with
                          | None -> true
                          | Some qfp -> not (Footprint.dependent qfp fp)))
                    !sleep)
    end
  in
  let verdict =
    match Sim.run ~policy:(Sim.Custom policy) ~on_step ~max_steps bodies with
    | (_ : Sim.result) -> if !pruned then Ok () else check ()
    | exception e -> Error (Printexc.to_string e)
  in
  (verdict, !pruned, List.rev !choices_rev)

let run_one ~max_steps mk forced =
  let verdict, _, trace = replay ~max_steps mk forced in
  (trace, verdict)

let run ?(max_schedules = 200_000) ?(max_steps = 1_000_000)
    ?(max_failures = 10)
    (mk : unit -> (Sim.pid -> unit) array * (unit -> (unit, string) result)) :
    outcome =
  let frames : frame Da.t = Da.create () in
  let schedules = ref 0 in
  let prunes = ref 0 in
  let max_depth = ref 0 in
  let truncated = ref false in
  let failures = ref [] in
  let n_failures = ref 0 in
  let seen_failure_traces : (int list, unit) Hashtbl.t = Hashtbl.create 16 in
  let exception Stop in
  let do_replay ~deviation () =
    if !schedules + !prunes >= max_schedules then begin
      truncated := true;
      raise Stop
    end;
    let verdict, pruned, trace =
      replay ~frames ~deviation ~max_steps mk [||]
    in
    max_depth := max !max_depth (List.length trace);
    if pruned then incr prunes
    else begin
      incr schedules;
      match verdict with
      | Ok () -> ()
      | Error msg ->
          if not (Hashtbl.mem seen_failure_traces trace) then begin
            Hashtbl.add seen_failure_traces trace ();
            failures := (trace, msg) :: !failures;
            incr n_failures;
            if !n_failures >= max_failures then begin
              truncated := true;
              raise Stop
            end
          end
    end
  in
  (try
     do_replay ~deviation:(-1) ();
     let continue = ref true in
     while !continue do
       (* Deepest frame with an unexplored obligation.  Obligations inside
          the frame's sleep set are redundant by the sleep-set theorem:
          every trace starting there has been explored from an earlier
          sibling. *)
       let rec find i =
         if i < 0 then None
         else
           let f = Da.get frames i in
           let cand =
             IntSet.diff f.f_backtrack (IntSet.union f.f_done f.f_sleep)
           in
           if IntSet.is_empty cand then find (i - 1)
           else Some (i, IntSet.min_elt cand)
       in
       match find (Da.length frames - 1) with
       | None -> continue := false
       | Some (i, c) ->
           let f = Da.get frames i in
           f.f_done <- IntSet.add c f.f_done;
           f.f_chosen <- c;
           Da.truncate frames (i + 1);
           do_replay ~deviation:i ()
     done
   with Stop -> ());
  {
    schedules_run = !schedules;
    sleep_set_prunes = !prunes;
    max_depth = !max_depth;
    truncated = !truncated;
    failures = List.rev !failures;
  }
