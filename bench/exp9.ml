(* EXP-9: superfluous-tower helping ablation (Section 4).

   The paper: "if searches traverse superfluous towers without physically
   deleting or marking their nodes, it is possible to construct an execution
   E where the average cost of operations would be Omega(m_E)".

   Construction (engine: Lf_scenarios.Scenarios.superfluous_mode): each
   round inserts a tall tower, deletes its root, then searches past it.
   Without helping, the upper nodes of every deleted tower stay linked
   forever, so round r's operations walk r dead nodes per upper level:
   average Omega(m).  With helping each dead tower is dismantled once and
   the average stays O(log m). *)

module S = Lf_scenarios.Scenarios

let run () =
  Tables.section
    "EXP-9  Skip-list ablation: searches that do not delete superfluous nodes";
  let widths = [ 6; 14; 12; 14; 12 ] in
  Tables.row widths [ "m"; "no-help avg"; "residue"; "help avg"; "residue" ];
  let pts_n = ref [] and pts_h = ref [] in
  List.iter
    (fun m ->
      let n_avg, n_res = S.superfluous_mode ~help_superfluous:false ~m in
      let h_avg, h_res = S.superfluous_mode ~help_superfluous:true ~m in
      pts_n := (float_of_int m, n_avg) :: !pts_n;
      pts_h := (float_of_int m, h_avg) :: !pts_h;
      Bench_json.emit_part ~exp:"exp9" ~part:"sweep"
        Bench_json.
          [
            ("m", I m);
            ("no_help_avg", F n_avg);
            ("no_help_residue", I n_res);
            ("help_avg", F h_avg);
            ("help_residue", I h_res);
          ];
      Tables.row widths
        [
          string_of_int m;
          Printf.sprintf "%.1f" n_avg;
          string_of_int n_res;
          Printf.sprintf "%.1f" h_avg;
          string_of_int h_res;
        ])
    [ 50; 100; 200; 400 ];
  let n_slope, _ = Lf_kernel.Stats.loglog_slope (Array.of_list !pts_n) in
  let h_slope, _ = Lf_kernel.Stats.loglog_slope (Array.of_list !pts_h) in
  Tables.note "residue = dead nodes still linked across all levels at the end";
  Tables.note "growth of avg cost with m (log-log slope):";
  Tables.note "  without helping: %.2f (paper: ~1, Omega(m))" n_slope;
  Tables.note "  with helping:    %.2f (paper: ~0 / logarithmic)" h_slope;
  Bench_json.emit_part ~exp:"exp9" ~part:"slopes"
    Bench_json.[ ("no_help_slope", F n_slope); ("help_slope", F h_slope) ];
  (n_slope, h_slope)
