(* Machine-readable benchmark output.

   Experiments call [emit ~exp row] (or [emit_part] when one experiment
   has several tables) for every measurement; when the harness was given
   [--json [dir]], [flush_all] writes one BENCH_<exp>.json per experiment
   (a JSON array of flat objects).  Without [--json] the calls are no-ops,
   so table output stays the only cost.  Every row carries a ["quick"]
   field, so downstream consumers can tell smoke-sized measurements from
   full ones without tracking how the harness was invoked. *)

let default_dir = "bench/results"
let dir : string option ref = ref None
let quick : bool ref = ref false

type v = S of string | F of float | I of int | B of bool

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_string = function
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | F f ->
      (* NaN/inf are not JSON; clamp to null. *)
      if Float.is_finite f then Printf.sprintf "%g" f else "null"
  | I i -> string_of_int i
  | B b -> if b then "true" else "false"

let rows : (string, (string * v) list list ref) Hashtbl.t = Hashtbl.create 8

let emit ~exp (row : (string * v) list) =
  match !dir with
  | None -> ()
  | Some _ ->
      let cell =
        match Hashtbl.find_opt rows exp with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add rows exp r;
            r
      in
      (* Self-tag: quick (smoke-sized) measurements must not be mistaken
         for full ones by whatever reads the file later. *)
      let row =
        if List.mem_assoc "quick" row then row else row @ [ ("quick", B !quick) ]
      in
      cell := row :: !cell

(* The shared emit path for experiments whose output has several tables:
   one BENCH_<exp>.json, rows discriminated by a leading "part" field. *)
let emit_part ~exp ~part (row : (string * v) list) =
  emit ~exp (("part", S part) :: row)

let flush_all () =
  match !dir with
  | None -> ()
  | Some d ->
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Hashtbl.iter
        (fun exp cell ->
          let path = Filename.concat d (Printf.sprintf "BENCH_%s.json" exp) in
          let oc = open_out path in
          output_string oc "[\n";
          List.rev !cell
          |> List.iteri (fun i row ->
                 if i > 0 then output_string oc ",\n";
                 let fields =
                   List.map
                     (fun (k, v) ->
                       Printf.sprintf "\"%s\": %s" (escape k)
                         (value_to_string v))
                     row
                 in
                 output_string oc ("  {" ^ String.concat ", " fields ^ "}"));
          output_string oc "\n]\n";
          close_out oc;
          Printf.printf "wrote %s (%d rows)\n" path (List.length !cell))
        rows
