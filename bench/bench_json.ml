(* Machine-readable benchmark output.

   Experiments call [emit ~exp row] for every measurement; when the harness
   was given [--json <dir>], [flush_all] writes one BENCH_<exp>.json per
   experiment (a JSON array of flat objects).  Without [--json] the calls
   are no-ops, so table output stays the only cost. *)

let dir : string option ref = ref None
let quick : bool ref = ref false

type v = S of string | F of float | I of int | B of bool

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_string = function
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | F f ->
      (* NaN/inf are not JSON; clamp to null. *)
      if Float.is_finite f then Printf.sprintf "%g" f else "null"
  | I i -> string_of_int i
  | B b -> if b then "true" else "false"

let rows : (string, (string * v) list list ref) Hashtbl.t = Hashtbl.create 8

let emit ~exp (row : (string * v) list) =
  match !dir with
  | None -> ()
  | Some _ ->
      let cell =
        match Hashtbl.find_opt rows exp with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add rows exp r;
            r
      in
      cell := row :: !cell

let flush_all () =
  match !dir with
  | None -> ()
  | Some d ->
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Hashtbl.iter
        (fun exp cell ->
          let path = Filename.concat d (Printf.sprintf "BENCH_%s.json" exp) in
          let oc = open_out path in
          output_string oc "[\n";
          List.rev !cell
          |> List.iteri (fun i row ->
                 if i > 0 then output_string oc ",\n";
                 let fields =
                   List.map
                     (fun (k, v) ->
                       Printf.sprintf "\"%s\": %s" (escape k)
                         (value_to_string v))
                     row
                 in
                 output_string oc ("  {" ^ String.concat ", " fields ^ "}"));
          output_string oc "\n]\n";
          close_out oc;
          Printf.printf "wrote %s (%d rows)\n" path (List.length !cell))
        rows
