(* Benchmark harness entry point.

   Runs every experiment of EXPERIMENTS.md (the measurable claims of the
   paper plus the design-choice ablations from DESIGN.md) and prints one
   table per experiment.  `main.exe <name>...` runs a subset, e.g.
   `dune exec bench/main.exe -- exp2 exp3`.

   Flags:
     --json [dir]   also write machine-readable BENCH_<exp>.json per
                    experiment into dir (default bench/results, created
                    if absent)
     --quick        smaller op counts (CI smoke); rows written by --json
                    carry "quick": true so they are not mistaken for full
                    measurements *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("figs", "Fig 1/2 deletion protocol traces", fun () -> Figs.run ());
    ("exp1", "amortized bound O(n(S)+c(S))", fun () -> ignore (Exp1.run ()));
    ("exp2", "Sec 3.1 adversary: Harris vs FR", fun () -> ignore (Exp2.run ()));
    ("exp3", "Valois Omega(m) execution", fun () -> ignore (Exp3.run ()));
    ("exp4", "linked-list throughput", fun () -> Exp4.run ());
    ("exp5", "skip-list throughput", fun () -> Exp5.run ());
    ("exp6", "search cost O(log n) vs O(n)", fun () -> ignore (Exp6.run ()));
    ("exp7", "tower heights + incomplete towers", fun () -> ignore (Exp7.run ()));
    ("exp8", "flag-bit ablation", fun () -> ignore (Exp8.run ()));
    ("exp9", "superfluous-helping ablation", fun () -> ignore (Exp9.run ()));
    ("exp10", "linearizability battery", fun () -> ignore (Exp10.run ()));
    ("exp11", "hash table on list buckets", fun () -> Exp11.run ());
    ("exp12", "priority queue vs locked heap", fun () -> Exp12.run ());
    ("exp13", "skip-list adversary: FR vs Fraser", fun () -> ignore (Exp13.run ()));
    ("exp14", "cost model: sim vs real domains", fun () -> ignore (Exp14.run ()));
    ("exp15", "skip-list recovery classes", fun () -> Exp15.run ());
    ("exp16", "protocol-sanitizer overhead", fun () -> ignore (Exp16.run ()));
    ("exp17", "hint-guided searches + batches", fun () -> ignore (Exp17.run ()));
    ("exp18", "graceful degradation under faults", fun () -> ignore (Exp18.run ()));
    ("exp19", "observability overhead + contention", fun () -> ignore (Exp19.run ()));
    ("exp20", "overload robustness: svc pipeline", fun () -> ignore (Exp20.run ()));
    ("exp21", "DPOR vs CHESS schedule counts", fun () -> ignore (Exp21.run ()));
    ("exp22", "allocation pragmatics: descriptor reuse + GC tail", fun () ->
      ignore (Exp22.run ()));
    ("exp23", "sharded service: containment + scaling", fun () ->
      ignore (Exp23.run ()));
    ("exp24", "request tracing: overhead + tail attribution + flight recorder",
      fun () -> ignore (Exp24.run ()));
    ("exp25", "self-healing shards: time-to-recovery + staleness",
      fun () -> ignore (Exp25.run ()));
    ("micro", "bechamel per-op latency", fun () -> Bechamel_suite.run ());
  ]

let () =
  (* Flags may appear anywhere among the experiment names. *)
  let is_experiment n = List.exists (fun (e, _, _) -> e = n) experiments in
  let rec parse_flags acc = function
    (* The directory is optional: a following token that is itself a flag
       or an experiment name means "use the default". *)
    | "--json" :: dir :: rest
      when (not (String.length dir >= 2 && String.sub dir 0 2 = "--"))
           && not (is_experiment dir) ->
        Bench_json.dir := Some dir;
        parse_flags acc rest
    | "--json" :: rest ->
        Bench_json.dir := Some Bench_json.default_dir;
        parse_flags acc rest
    | "--quick" :: rest ->
        Bench_json.quick := true;
        parse_flags acc rest
    | name :: rest -> parse_flags (name :: acc) rest
    | [] -> List.rev acc
  in
  let requested =
    match parse_flags [] (List.tl (Array.to_list Sys.argv)) with
    | _ :: _ as names -> names
    | [] -> List.map (fun (n, _, _) -> n) experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, _, f) -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available:\n" name;
          List.iter
            (fun (n, d, _) -> Printf.eprintf "  %-6s %s\n" n d)
            experiments;
          exit 2)
    requested;
  Bench_json.flush_all ();
  Printf.printf "\nAll requested experiments completed in %.1fs.\n"
    (Unix.gettimeofday () -. t0)
