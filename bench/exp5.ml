(* EXP-5: wall-clock throughput of the skip lists (lock-free vs lock-based,
   the comparison context of [2], [14], [15]).  Same single-core caveat as
   EXP-4. *)

let impls : (module Lf_workload.Runner.INT_DICT) list =
  [
    (module Lf_skiplist.Fr_skiplist.Atomic_int);
    (module Lf_skiplist.Fraser_skiplist.Atomic_int);
    (module Lf_skiplist.St_skiplist.Atomic_int);
    (module Lf_skiplist.Locked_skiplist.Int);
  ]

let run () =
  Tables.section "EXP-5  Skip-list throughput (ops/s), 1-core machine";
  let widths = [ 18; 10; 8; 4; 12 ] in
  Tables.row widths [ "impl"; "mix"; "range"; "dom"; "kops/s" ];
  List.iter
    (fun key_range ->
      List.iter
        (fun mix ->
          List.iter
            (fun (module D : Lf_workload.Runner.INT_DICT) ->
              List.iter
                (fun domains ->
                  let r =
                    Lf_workload.Runner.run_throughput
                      (module D)
                      ~domains ~ops_per_domain:30_000 ~key_range ~mix ~seed:43
                      ()
                  in
                  Tables.row widths
                    [
                      r.impl;
                      Format.asprintf "%a" Lf_workload.Opgen.pp_mix mix;
                      string_of_int key_range;
                      string_of_int domains;
                      Printf.sprintf "%.0f" (r.ops_per_s /. 1000.);
                    ];
                  Bench_json.emit ~exp:"exp5"
                    Bench_json.
                      [
                        ("impl", S r.impl);
                        ("mix", S (Format.asprintf "%a" Lf_workload.Opgen.pp_mix mix));
                        ("key_range", I key_range);
                        ("domains", I domains);
                        ("kops_per_s", F (r.ops_per_s /. 1000.));
                      ])
                [ 1; 2; 4 ])
            impls;
          print_newline ())
        [ Lf_workload.Opgen.write_heavy; Lf_workload.Opgen.read_mostly ])
    [ 1024; 65536 ]
