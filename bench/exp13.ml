(* EXP-13: skip-list recovery under the Section 3.1 adversary.

   The paper (Section 4): "Other recent lock-free skip list designs [2, 15]
   implement individual levels using linked list algorithms that can
   exhibit bad worst-case behaviour, as described in Section 3.1" - i.e.
   they restart a search when a C&S fails.  For a skip list a restart costs
   Theta(log n) rather than the list's Theta(n), which is exactly why the
   paper's worst-case skip-list analysis remains open; this experiment
   measures that gap.

   Engine: Lf_scenarios.Scenarios.sl_tail_adversary - the EXP-2 schedule
   lifted to skip lists, with a perfect (trailing-zeros) height profile so
   searches are genuinely Theta(log n) deep. *)

module S = Lf_scenarios.Scenarios

let run () =
  Tables.section
    "EXP-13  Skip-list tail adversary: local recovery vs restart-from-top";
  let widths = [ 6; 3; 14; 16; 10 ] in
  Tables.row widths [ "n"; "q"; "fr rec/round"; "fraser rec/round"; "ratio" ];
  let fr_pts = ref [] and fz_pts = ref [] in
  List.iter
    (fun n ->
      let q = 4 in
      let rounds = min (n / 2) 64 in
      let fr = S.sl_tail_adversary ~n ~q ~rounds S.fr_sl_target in
      let fz = S.sl_tail_adversary ~n ~q ~rounds S.fraser_sl_target in
      fr_pts := (log (float_of_int n) /. log 2.0, fr) :: !fr_pts;
      fz_pts := (log (float_of_int n) /. log 2.0, fz) :: !fz_pts;
      Bench_json.emit_part ~exp:"exp13" ~part:"adversary"
        Bench_json.
          [
            ("n", I n);
            ("q", I q);
            ("fr_rec_per_round", F fr);
            ("fraser_rec_per_round", F fz);
          ];
      Tables.row widths
        [
          string_of_int n;
          string_of_int q;
          Printf.sprintf "%.1f" fr;
          Printf.sprintf "%.1f" fz;
          Printf.sprintf "%.1fx" (fz /. fr);
        ])
    [ 64; 256; 1024; 4096 ];
  let _, fr_slope, _ = Lf_kernel.Stats.linear_fit (Array.of_list !fr_pts) in
  let _, fz_slope, _ = Lf_kernel.Stats.linear_fit (Array.of_list !fz_pts) in
  Tables.note "recovery cost vs log2 n (linear-fit slope):";
  Tables.note "  fomitchev-ruppert: %.2f steps/level (local backlink, ~0)"
    fr_slope;
  Tables.note "  fraser-style:      %.2f steps/level (restart-from-top, >0)"
    fz_slope;
  Tables.note
    "the gap is log n, not n as for lists - why the paper leaves skip-list";
  Tables.note "worst-case complexity open (Section 4).";
  Bench_json.emit_part ~exp:"exp13" ~part:"slopes"
    Bench_json.[ ("fr_slope", F fr_slope); ("fraser_slope", F fz_slope) ];
  (fr_slope, fz_slope)
