(* EXP-8: what the flag bit buys (Section 3.1).

   The flag pins a predecessor while its successor is being deleted, which
   guarantees a backlink is never set to point at a marked node - so chains
   of backlinks cannot grow rightward and cannot be re-traversed profitably
   by an adversary.

   (a) Deterministic demonstration: with flags disabled, two parked
       deletions of adjacent nodes produce a *stale backlink* - a reachable
       marked node whose backlink points at another marked node.  With flags
       enabled the same schedule cannot reach that state (the second
       deletion's flag forces the first to help), and INV 3/4 hold at every
       step.

   (b) Statistical ablation: under hotspot contention, flagless runs show
       more and longer backlink walks per operation. *)

module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module Sim = Lf_dsim.Sim
module Ev = Lf_kernel.Mem_event

(* Park both deleters of the adjacent keys 20 and 30 just before their
   marking C&S (backlinks already written), then release them in order. *)
let deterministic_part () =
  Tables.subsection "(a) stale-backlink construction, flagless vs flags";
  let run_mode ~use_flags =
    let t = FRS.create_with ~use_flags () in
    ignore
      (Sim.run
         [|
           (fun _ ->
             List.iter (fun k -> ignore (FRS.insert t k 0)) [ 10; 20; 30; 40 ]);
         |]);
    let d0 _ = ignore (FRS.delete t 20) in
    let d1 _ = ignore (FRS.delete t 30) in
    let stale_seen = ref false in
    let inv_violation = ref None in
    let inspect () =
      let chain = Sim.quiet (fun () -> FRS.Debug.physical_chain t) in
      (* A marked node whose backlink names a key that is itself marked or
         already unlinked. *)
      let marked_keys =
        List.filter_map
          (fun (c : FRS.Debug.cell) ->
            match c.key with
            | Lf_kernel.Ordered.Mid k when c.marked -> Some k
            | _ -> None)
          chain
      in
      let present =
        List.filter_map
          (fun (c : FRS.Debug.cell) ->
            match c.key with Lf_kernel.Ordered.Mid k -> Some k | _ -> None)
          chain
      in
      List.iter
        (fun (c : FRS.Debug.cell) ->
          if c.marked then
            match c.backlink_key with
            | Some (Lf_kernel.Ordered.Mid b) ->
                if List.mem b marked_keys || not (List.mem b present) then
                  stale_seen := true
            | _ -> ())
        chain;
      if use_flags then
        match Sim.quiet (fun () -> FRS.Debug.check_now t) with
        | Ok () -> ()
        | Error e -> inv_violation := Some e
    in
    let phase = ref 0 in
    let marking_parked st pid =
      Sim.pending_kind st pid = Some (Lf_dsim.Sim_effect.Cas Ev.Marking)
    in
    let policy st =
      inspect ();
      match !phase with
      | 0 ->
          (* park d0 at its marking CAS (flagless) or run it through its
             flagging first (flags mode parks at marking too). *)
          if marking_parked st 0 then begin
            phase := 1;
            Some 1
          end
          else if Sim.is_finished st 0 then begin
            phase := 2;
            Some 1
          end
          else Some 0
      | 1 ->
          (* park d1 at its marking CAS as well *)
          if marking_parked st 1 then begin
            phase := 2;
            Some 0
          end
          else if Sim.is_finished st 1 then begin
            phase := 2;
            Some 0
          end
          else Some 1
      | _ ->
          (* release d0 to completion, then d1 *)
          if not (Sim.is_finished st 0) then Some 0
          else if not (Sim.is_finished st 1) then Some 1
          else None
    in
    ignore (Sim.run ~policy:(Sim.Custom policy) [| d0; d1 |]);
    inspect ();
    Sim.quiet (fun () -> FRS.check_invariants t);
    (!stale_seen, !inv_violation)
  in
  let stale_nf, _ = run_mode ~use_flags:false in
  let stale_f, inv_f = run_mode ~use_flags:true in
  Tables.note "flagless: backlink to a marked/unlinked node constructed: %b"
    stale_nf;
  Tables.note "flags:    same schedule produces stale backlink: %b" stale_f;
  Tables.note "flags:    INV 3/4 violation observed at any step: %s"
    (match inv_f with None -> "none" | Some e -> e);
  Bench_json.emit_part ~exp:"exp8" ~part:"stale_backlink"
    Bench_json.
      [ ("flagless_stale", B stale_nf); ("flags_stale", B stale_f) ];
  (stale_nf, stale_f)

let statistical_part () =
  Tables.subsection "(b) backlink walks under hotspot contention";
  let widths = [ 6; 4; 14; 14; 12; 12 ] in
  Tables.row widths
    [ "mode"; "q"; "backlinks"; "essential"; "mean bl/op"; "max bl/op" ];
  let out = ref [] in
  List.iter
    (fun q ->
      List.iter
        (fun use_flags ->
          let t = FRS.create_with ~use_flags () in
          let total_bl = ref 0 and total_es = ref 0 in
          let max_bl = ref 0 and ops = ref 0 in
          List.iter
            (fun seed ->
              let ops_rec =
                let ops_c =
                  Lf_workload.Sim_driver.
                    {
                      insert = (fun k -> FRS.insert t k k);
                      delete = (fun k -> FRS.delete t k);
                      find = (fun k -> FRS.mem t k);
                    }
                in
                Lf_workload.Sim_driver.run_mixed ~policy:(Sim.Random seed)
                  ~procs:q ~ops_per_proc:80 ~key_range:8
                  ~mix:{ insert_pct = 45; delete_pct = 45 }
                  ~seed ops_c
              in
              List.iter
                (fun (op : Sim.op_record) ->
                  total_bl := !total_bl + op.op_backlinks;
                  total_es := !total_es + op.essential;
                  if op.op_backlinks > !max_bl then max_bl := op.op_backlinks;
                  incr ops)
                ops_rec.ops)
            [ 1; 2; 3; 4; 5 ];
          out := (use_flags, q, !total_bl, !max_bl) :: !out;
          Bench_json.emit_part ~exp:"exp8" ~part:"backlink_walks"
            Bench_json.
              [
                ("mode", S (if use_flags then "flags" else "noflag"));
                ("q", I q);
                ("backlinks", I !total_bl);
                ("essential", I !total_es);
                ("mean_bl_per_op",
                 F (float_of_int !total_bl /. float_of_int !ops));
                ("max_bl_per_op", I !max_bl);
              ];
          Tables.row widths
            [
              (if use_flags then "flags" else "noflag");
              string_of_int q;
              string_of_int !total_bl;
              string_of_int !total_es;
              Printf.sprintf "%.3f" (float_of_int !total_bl /. float_of_int !ops);
              string_of_int !max_bl;
            ])
        [ true; false ])
    [ 2; 4; 8; 16 ];
  Tables.note
    "flags trade searches for short backlink recoveries: at high contention";
  Tables.note
    "the flagged variant does MORE backlink hops but LESS total essential";
  Tables.note
    "work.  The unbounded flagless pathologies are adversarial (part a /";
  Tables.note "thesis constructions), not typical of random schedules.";
  !out

let run () =
  Tables.section "EXP-8  Flag-bit ablation";
  let det = deterministic_part () in
  let stats = statistical_part () in
  (det, stats)
