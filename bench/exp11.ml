(* EXP-11: hash table with list-based buckets (Michael [8], built here on
   Fomitchev-Ruppert buckets).

   Two shapes are reported:
   (a) wall-clock throughput vs the flat list and the skip list - the
       bucket array turns O(n) searches into O(n/buckets);
   (b) simulator step counts vs bucket count, showing the per-op cost
       scaling as n/buckets (the point of [8]'s design). *)

module HS = Lf_hashtable.Make (Lf_hashtable.Int_key) (Lf_dsim.Sim_mem)
module Sim = Lf_dsim.Sim

let throughput_part () =
  Tables.subsection "(a) wall-clock throughput (2 domains, 20i/20d/60s)";
  let widths = [ 16; 8; 12 ] in
  Tables.row widths [ "impl"; "range"; "kops/s" ];
  List.iter
    (fun key_range ->
      List.iter
        (fun (module D : Lf_workload.Runner.INT_DICT) ->
          let r =
            Lf_workload.Runner.run_throughput
              (module D)
              ~domains:2 ~ops_per_domain:20_000 ~key_range
              ~mix:Lf_workload.Opgen.mixed ~seed:7 ()
          in
          Bench_json.emit_part ~exp:"exp11" ~part:"throughput"
            Bench_json.
              [
                ("impl", S r.impl);
                ("key_range", I key_range);
                ("ops_per_s", F r.ops_per_s);
              ];
          Tables.row widths
            [
              r.impl;
              string_of_int key_range;
              Printf.sprintf "%.0f" (r.ops_per_s /. 1000.);
            ])
        [
          (module Lf_hashtable.Atomic_int : Lf_workload.Runner.INT_DICT);
          (module Lf_skiplist.Fr_skiplist.Atomic_int);
          (module Lf_list.Fr_list.Atomic_int);
        ];
      print_newline ())
    [ 1024; 16384 ]

let steps_part () =
  Tables.subsection "(b) essential steps per op vs bucket count (sim, n=512)";
  let widths = [ 9; 14 ] in
  Tables.row widths [ "buckets"; "steps/op" ];
  List.iter
    (fun buckets ->
      let t = HS.create_with ~buckets () in
      let ops =
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> HS.insert t k k);
            delete = (fun k -> HS.delete t k);
            find = (fun k -> HS.mem t k);
          }
      in
      let filled =
        Lf_workload.Sim_driver.prefill ~key_range:1024 ~count:512 ~seed:3 ops
      in
      let res =
        Lf_workload.Sim_driver.run_mixed ~policy:(Sim.Random 5)
          ~initial_size:filled ~procs:2 ~ops_per_proc:150 ~key_range:1024
          ~mix:{ insert_pct = 25; delete_pct = 25 }
          ~seed:5 ops
      in
      let steps_per_op = float_of_int (Sim.total_essential res) /. 300.0 in
      Bench_json.emit_part ~exp:"exp11" ~part:"bucket_scaling"
        Bench_json.[ ("buckets", I buckets); ("steps_per_op", F steps_per_op) ];
      Tables.row widths
        [ string_of_int buckets; Printf.sprintf "%.1f" steps_per_op ])
    [ 1; 4; 16; 64; 256 ];
  Tables.note "steps/op ~ n/buckets + O(1): doubling buckets halves the walk."

let run () =
  Tables.section "EXP-11  Hash table on lock-free list buckets (Michael [8])";
  throughput_part ();
  steps_part ()
