(* EXP-1: validation of the amortized bound (Sections 1, 3.4).

   The paper proves that the amortized cost of an operation S on the linked
   list is O(n(S) + c(S)), hence for any execution the total essential cost
   (C&S attempts + backlink traversals + next/curr pointer updates) is at
   most K * sum over ops of (n(S) + c(S)) for a fixed constant K.

   We sweep processes q, initial size n0 and schedules, measure both sides
   in the simulator (engine: Lf_scenarios.Scenarios.exp1_run), and report
   the ratio - it must stay below a constant across the whole sweep. *)

let run () =
  Tables.section
    "EXP-1  Amortized bound: total essential steps <= K * sum(n(S) + c(S))";
  let widths = [ 4; 6; 6; 12; 12; 8 ] in
  Tables.row widths [ "q"; "n0"; "ops"; "essential"; "sum(n+c)"; "ratio" ];
  let worst = ref 0.0 in
  List.iter
    (fun q ->
      List.iter
        (fun n0 ->
          let essential = ref 0 and bound = ref 0 and nops = ref 0 in
          List.iter
            (fun seed ->
              let e, b, o = Lf_scenarios.Scenarios.exp1_run ~q ~n0 ~seed in
              essential := !essential + e;
              bound := !bound + b;
              nops := !nops + o)
            [ 1; 2; 3 ];
          let ratio = float_of_int !essential /. float_of_int (max 1 !bound) in
          if ratio > !worst then worst := ratio;
          Bench_json.emit ~exp:"exp1"
            Bench_json.
              [
                ("q", I q);
                ("n0", I n0);
                ("ops", I !nops);
                ("essential", I !essential);
                ("bound", I !bound);
                ("ratio", F ratio);
              ];
          Tables.row widths
            [
              string_of_int q;
              string_of_int n0;
              string_of_int !nops;
              string_of_int !essential;
              string_of_int !bound;
              Printf.sprintf "%.3f" ratio;
            ])
        [ 0; 10; 50; 200; 1000 ])
    [ 2; 4; 8; 16 ];
  Tables.note "worst ratio observed: %.3f (paper: bounded by a constant K)"
    !worst;
  Tables.note
    "PASS criterion: ratio does not grow with q or n0 (compare columns).";
  !worst
