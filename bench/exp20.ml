(* EXP-20: overload robustness — the lib/svc service layer under
   open-loop overload (DESIGN.md §10).

   Closed-loop benchmarks cannot show overload: the harness slows down
   with the subject.  Here Runner.run_open_loop paces arrivals at a fixed
   rate regardless of completions, and every request runs through the Svc
   pipeline (deadline -> shed -> breaker -> budget-governed retries) in
   front of the FR skip list.  A "request" is a 16-operation transaction,
   so service time is large enough to pace precisely on one core.

   Part A (capacity): saturate the harness (arrival rate far above what
   the workers can drain) with the policy-free pipeline; the served rate
   is the capacity C that calibrates the overload factors.

   Part B (overload grid): offered load 1x/2x/4x/8x capacity, policies
   toggled: none (accept everything, serve in arrival order), deadline
   (reject dead-on-arrival work when a worker picks it up), shed+budget
   (deadline + queue-depth/feasibility shedding + budgeted retries).
   Goodput counts requests completed within the 20ms standard, measured
   from ARRIVAL — the same standard for every config, whether or not the
   config enforces it.  PASS (full runs): at >= 4x overload, shed+budget
   goodput >= 2x the goodput of "none".

   Part C (retry storm): 2x overload with an injected crash-rate fault
   plan (PR 3) making executions fail and retry, budgets off vs on.
   Unbudgeted retries amplify offered work precisely when there is no
   headroom (the metastable-failure shape); the budget caps the
   amplification.  PASS: retries stay within the budget cap and goodput
   with the budget is no worse.

   Part D (breaker replay): a stall-heavy fault plan (PR 3) slows every
   C&S; the breaker's latency threshold sees the stall storm, opens,
   degrades to read-only (writes rejected AS rejections, reads still
   served), probes after the cool-down once the plan is uninstalled, and
   recovers.  The transition trace (tick, state) lands in
   BENCH_exp20.json.  PASS: closed -> open while stalled, open ->
   half-open -> closed after the plan is removed, reads served while
   open, writes rejected-not-dropped. *)

open Lf_workload
module K = Lf_kernel.Ordered.Int
module Svc = Lf_svc.Svc
module Clock = Lf_svc.Clock
module Deadline = Lf_svc.Deadline
module Retry = Lf_svc.Retry
module Breaker = Lf_svc.Breaker
module Shed = Lf_svc.Shed
module Fault = Lf_fault.Fault
module FP = Lf_kernel.Fault_point

(* The subject: FR skip list over a fault-capable memory, so Parts C and
   D can inject crash-rate and stall plans into the very same stack. *)
module FMem = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem)
module FS = Lf_skiplist.Fr_skiplist.Make (K) (FMem)

let key_range = 4096
let txn = 16 (* dictionary operations per request *)
let workers = 2
let deadline_std_ms = 20 (* the goodput standard, all configs *)

let window_s () = if !Bench_json.quick then 0.12 else 0.3
let factors () = if !Bench_json.quick then [ 1.; 4. ] else [ 1.; 2.; 4.; 8. ]

(* A request touches [txn] keys derived from its base key: enough real
   skip-list work per request (~tens of microseconds) for open-loop
   pacing to resolve on a single core. *)
let mk_ops () : Svc.ops =
  let t = FS.create () in
  Runner.prefill ~key_range ~fill:50 ~seed:11 (fun k -> FS.insert t k k);
  let spread f k =
    let r = ref false in
    for i = 0 to txn - 1 do
      r := f ((k + (i * 7919)) land (key_range - 1))
    done;
    !r
  in
  {
    insert = (fun k _ -> spread (fun k -> FS.insert t k k) k);
    delete = (fun k -> spread (fun k -> FS.delete t k) k);
    find = (fun k -> spread (fun k -> FS.mem t k) k);
  }

let mix = { Opgen.insert_pct = 20; delete_pct = 20 }

let retryable = function Fault.Crashed _ -> true | _ -> false

(* One open-loop run: wrap [svc] as the runner's serve closure.  The
   deadline is anchored at ARRIVAL (not at pop), enforced only when
   [enforce] says so; [good] counts completions within the standard
   regardless of enforcement, so configs compete on one metric. *)
let run_once ~svc ~clock ~enforce ~rate ~seed =
  let std = Clock.ms clock deadline_std_ms in
  let good = Atomic.make 0 in
  let serve ~arrival_ns ~queue_depth op =
    let req =
      match op with
      | Opgen.Insert k -> Svc.Insert (k, k)
      | Opgen.Delete k -> Svc.Delete k
      | Opgen.Find k -> Svc.Find k
    in
    let dl = if enforce then Deadline.at (arrival_ns + std) else Deadline.none in
    match Svc.call svc ~deadline:dl ~queue_depth req with
    | Svc.Served ok | Svc.Served_stale (ok, _) ->
        if Clock.now clock - arrival_ns <= std then Atomic.incr good;
        `Served ok
    | Svc.Rejected _ -> `Rejected
    | Svc.Failed _ -> `Failed
  in
  let r =
    Runner.run_open_loop ~workers ~rate ~window_s:(window_s ()) ~key_range ~mix
      ~seed ~serve ()
  in
  (r, Atomic.get good)

type cfg_kind = C_none | C_deadline | C_shed_budget

let cfg_name = function
  | C_none -> "none"
  | C_deadline -> "deadline"
  | C_shed_budget -> "shed+budget"

let mk_svc kind ~clock ~backoff =
  let ms = Clock.ms clock in
  let cfg =
    match kind with
    | C_none -> Svc.config ~clock ~retryable ()
    | C_deadline -> Svc.config ~clock ~retryable ()
    | C_shed_budget ->
        Svc.config ~clock ~retryable
          ~retry:(Some (Retry.policy ~max_attempts:4 ~base_delay:(ms 1 / 20) ()))
          ~budget:(Retry.Budget.config ~capacity:256 ~refill_every:(ms 50) ())
          ~shed:
            (Some (Shed.config ~max_queue:512 ~est_init:(ms 1 / 20) ~workers ()))
          ~backoff ()
  in
  Svc.create cfg (mk_ops ())

let enforces = function C_none -> false | C_deadline | C_shed_budget -> true

(* ------------------------------------------------------------------ *)
(* Part A: capacity.                                                   *)

let part_a ~clock =
  Tables.subsection "Part A: capacity (policy-free pipeline, saturated)";
  let svc = mk_svc C_none ~clock ~backoff:(fun _ -> ()) in
  let r, _good = run_once ~svc ~clock ~enforce:false ~rate:400_000 ~seed:3 in
  let capacity = r.Runner.o_goodput in
  Tables.note "served %d of %d offered in %.3fs -> capacity %.0f req/s"
    r.o_served r.o_offered r.o_elapsed_s capacity;
  Bench_json.emit_part ~exp:"exp20" ~part:"capacity"
    Bench_json.[
      ("impl", S "fr-skiplist");
      ("txn_ops", I txn);
      ("workers", I workers);
      ("offered", I r.o_offered);
      ("served", I r.o_served);
      ("capacity_req_s", F capacity);
    ];
  capacity

(* ------------------------------------------------------------------ *)
(* Part B: the overload grid.                                          *)

let part_b ~clock ~capacity =
  Tables.subsection
    "Part B: open-loop overload, goodput = completions within 20ms of arrival";
  Tables.row [ 12; 6; 9; 9; 9; 9; 9; 10; 9 ]
    [
      "config"; "x"; "offered"; "served"; "good"; "rejected"; "leftover";
      "goodput/s"; "p99 ms";
    ];
  let results = ref [] in
  List.iter
    (fun kind ->
      List.iter
        (fun factor ->
          let rate = max 1_000 (int_of_float (capacity *. factor)) in
          let svc = mk_svc kind ~clock ~backoff:(fun _ -> ()) in
          let r, good =
            run_once ~svc ~clock ~enforce:(enforces kind) ~rate
              ~seed:(17 + int_of_float factor)
          in
          let goodput = float_of_int good /. r.o_elapsed_s in
          let p99_ms =
            if Lf_obs.Hist.count r.o_latency = 0 then 0.
            else Lf_obs.Hist.percentile r.o_latency 0.99 /. 1e6
          in
          results := ((kind, factor), goodput) :: !results;
          Tables.row [ 12; 6; 9; 9; 9; 9; 9; 10; 9 ]
            [
              cfg_name kind;
              Printf.sprintf "%gx" factor;
              string_of_int r.o_offered;
              string_of_int r.o_served;
              string_of_int good;
              string_of_int r.o_rejected;
              string_of_int r.o_leftover;
              Printf.sprintf "%.0f" goodput;
              Printf.sprintf "%.2f" p99_ms;
            ];
          Bench_json.emit_part ~exp:"exp20" ~part:"overload"
            Bench_json.[
              ("config", S (cfg_name kind));
              ("factor", F factor);
              ("rate_req_s", I rate);
              ("offered", I r.o_offered);
              ("handled", I r.o_handled);
              ("served", I r.o_served);
              ("good", I good);
              ("rejected", I r.o_rejected);
              ("failed", I r.o_failed);
              ("leftover", I r.o_leftover);
              ("goodput_req_s", F goodput);
              ("p99_ms", F p99_ms);
            ])
        (factors ()))
    [ C_none; C_deadline; C_shed_budget ];
  (* Acceptance: at every >= 4x point, shedding+budgets at least doubles
     the goodput of the policy-free config. *)
  let failures = ref [] in
  if not !Bench_json.quick then
    List.iter
      (fun factor ->
        if factor >= 4. then
          let g k = List.assoc (k, factor) !results in
          let g_none = g C_none and g_shed = g C_shed_budget in
          if g_shed < 2. *. g_none then
            failures :=
              Printf.sprintf
                "overload %gx: shed+budget goodput %.0f < 2x none %.0f" factor
                g_shed g_none
              :: !failures)
      (factors ());
  !failures

(* ------------------------------------------------------------------ *)
(* Part C: retry storm, budgets off vs on.                             *)

let storm_plan =
  Fault.make_plan ~seed:23
    [ { Fault.point = FP.Any_cas; action = Crash; mode = Rate (0.05, 2); lane = None } ]

let budget_cap = 300

let part_c ~clock ~capacity =
  Tables.subsection "Part C: retry storm at 2x overload (crash-rate faults)";
  let rate = max 1_000 (int_of_float (capacity *. 2.)) in
  let ms = Clock.ms clock in
  let run ~budget_on =
    let budget =
      if budget_on then Retry.Budget.config ~capacity:budget_cap ~refill_every:0 ()
      else Retry.Budget.unlimited
    in
    let cfg =
      Svc.config ~clock ~retryable
        ~retry:(Some (Retry.policy ~max_attempts:10 ~base_delay:(ms 1 / 20) ()))
        ~budget
        ~backoff:(fun d -> Unix.sleepf (float_of_int d /. 1e9))
        ()
    in
    let svc = Svc.create cfg (mk_ops ()) in
    FMem.install storm_plan;
    let r, good = run_once ~svc ~clock ~enforce:true ~rate ~seed:29 in
    FMem.uninstall ();
    let st = Svc.stats svc in
    (r, good, st)
  in
  let report label (r, good, (st : Svc.stats)) =
    let goodput = float_of_int good /. r.Runner.o_elapsed_s in
    let amplification =
      if r.o_handled = 0 then 1.
      else float_of_int (r.o_handled + st.retries) /. float_of_int r.o_handled
    in
    Tables.note
      "%-11s handled %d, retries %d (amplification %.2fx), denied %d, \
       goodput %.0f/s"
      label r.o_handled st.retries amplification st.budget_denied goodput;
    Bench_json.emit_part ~exp:"exp20" ~part:"storm"
      Bench_json.[
        ("budget", S label);
        ("rate_req_s", I rate);
        ("handled", I r.o_handled);
        ("served", I r.o_served);
        ("good", I good);
        ("failed", I r.o_failed);
        ("retries", I st.retries);
        ("budget_denied", I st.budget_denied);
        ("amplification", F amplification);
        ("goodput_req_s", F goodput);
      ];
    (goodput, st.retries)
  in
  let off = report "budget-off" (run ~budget_on:false) in
  let on = report "budget-on" (run ~budget_on:true) in
  let failures = ref [] in
  if not !Bench_json.quick then begin
    let goodput_off, retries_off = off and goodput_on, retries_on = on in
    if retries_on > budget_cap then
      failures :=
        Printf.sprintf "storm: %d retries exceed the %d budget" retries_on
          budget_cap
        :: !failures;
    if retries_off <= retries_on then
      failures :=
        Printf.sprintf
          "storm: unbudgeted run retried no more than budgeted (%d <= %d)"
          retries_off retries_on
        :: !failures;
    if goodput_on < goodput_off *. 0.8 then
      failures :=
        Printf.sprintf "storm: budget hurt goodput (%.0f vs %.0f)" goodput_on
          goodput_off
        :: !failures
  end;
  !failures

(* ------------------------------------------------------------------ *)
(* Part D: breaker replay under a stall-heavy plan.                    *)

let stall_plan =
  Fault.make_plan ~seed:31
    [ { Fault.point = FP.Any_cas; action = Stall 2048; mode = Always; lane = None } ]

let part_d ~clock =
  Tables.subsection "Part D: breaker opens on a stall storm, recovers after";
  let ms = Clock.ms clock in
  let cfg =
    Svc.config ~clock ~retryable
      ~breaker:
        (Some
           (Breaker.config ~window:(ms 2000) ~min_calls:5 ~failure_pct:50
              ~latency_threshold:(ms 1 / 2) ~open_for:(ms 50) ~probes:3 ()))
      ()
  in
  let svc = Svc.create cfg (mk_ops ()) in
  let breaker_now () = (Svc.stats svc).breaker in
  let call req = Svc.call svc req in
  let count_outcomes reqs =
    let served = ref 0 and rejected = ref 0 and failed = ref 0 in
    List.iter
      (fun req ->
        match call req with
        | Svc.Served _ | Svc.Served_stale _ -> incr served
        | Svc.Rejected _ -> incr rejected
        | Svc.Failed _ -> incr failed)
      reqs;
    (!served, !rejected, !failed)
  in
  let phase_row phase (served, rejected, failed) =
    Tables.note "%-22s served %3d rejected %3d failed %3d breaker %s" phase
      served rejected failed
      (Option.value (breaker_now ()) ~default:"none");
    Bench_json.emit_part ~exp:"exp20" ~part:"breaker"
      Bench_json.[
        ("phase", S phase);
        ("served", I served);
        ("rejected", I rejected);
        ("failed", I failed);
        ("breaker", S (Option.value (breaker_now ()) ~default:"none"));
      ]
  in
  let failures = ref [] in
  let need cond msg = if not cond then failures := ("breaker: " ^ msg) :: !failures in
  (* Phase 1: clean traffic, breaker stays closed. *)
  let reqs n = List.init n (fun i -> if i mod 2 = 0 then Svc.Insert (i, i) else Svc.Find i) in
  phase_row "clean" (count_outcomes (reqs 40));
  need (breaker_now () = Some "closed") "not closed after clean traffic";
  (* Phase 2: stall storm; the latency threshold trips the breaker. *)
  FMem.install stall_plan;
  let n_stalled = ref 0 in
  while breaker_now () <> Some "open" && !n_stalled < 200 do
    ignore (call (Svc.Insert (!n_stalled, 1)));
    incr n_stalled
  done;
  phase_row (Printf.sprintf "stalled (%d calls)" !n_stalled) (0, 0, 0);
  need (breaker_now () = Some "open") "did not open under the stall storm";
  (* While open: reads still served (read-only degraded mode), writes
     rejected as rejections. *)
  let read_outcome = call (Svc.Find 1) in
  let write_outcome = call (Svc.Insert (9999, 1)) in
  need
    (match read_outcome with Svc.Served _ -> true | _ -> false)
    "read not served while open";
  need
    (write_outcome = Svc.Rejected Svc.Write_degraded)
    "write not rejected as write-degraded while open";
  need ((Svc.stats svc).mode = "read-only") "mode not read-only while open";
  phase_row "open (degraded)"
    ( (match read_outcome with Svc.Served _ -> 1 | _ -> 0),
      (match write_outcome with Svc.Rejected _ -> 1 | _ -> 0),
      0 );
  (* Phase 3: remove the plan, cool down, probe, recover. *)
  FMem.uninstall ();
  Unix.sleepf 0.06;
  let probes = ref 0 in
  while breaker_now () <> Some "closed" && !probes < 50 do
    ignore (call (Svc.Find !probes));
    incr probes
  done;
  phase_row (Printf.sprintf "recovered (%d probes)" !probes) (0, 0, 0);
  need (breaker_now () = Some "closed") "did not re-close after the stall plan was removed";
  let st = Svc.stats svc in
  let states = List.map snd st.transitions in
  need
    (states = [ "open"; "half-open"; "closed" ]
    || (List.mem "open" states && List.mem "closed" states))
    (Printf.sprintf "unexpected transition sequence [%s]"
       (String.concat "; " states));
  List.iter
    (fun (tick, state) ->
      Bench_json.emit_part ~exp:"exp20" ~part:"breaker"
        Bench_json.[ ("phase", S "transition"); ("tick", I tick); ("state", S state) ])
    st.transitions;
  Tables.note "transitions: %s"
    (String.concat " -> "
       (List.map (fun (_, s) -> s) st.transitions));
  !failures

let run () =
  Tables.section
    "EXP-20  Overload robustness: deadlines, shedding, budgets, breaker";
  let clock = Clock.real () in
  let capacity = part_a ~clock in
  let fb = part_b ~clock ~capacity in
  let fc = part_c ~clock ~capacity in
  let fd = part_d ~clock in
  let failures = fb @ fc @ fd in
  (match failures with
  | [] ->
      Tables.note
        "PASS: shedding+budgets hold goodput under overload, the budget";
      Tables.note
        "caps retry amplification, and the breaker opens and recovers."
  | fs ->
      List.iter (fun f -> Tables.note "FAIL: %s" f) fs;
      Tables.note "acceptance criteria NOT met (see rows above)");
  failures = []
