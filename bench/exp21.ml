(* EXP-21: schedule counts at equal coverage — DPOR vs CHESS vs naive
   DFS (DESIGN.md §11).

   The claim behind lib/model: at small scope, partial-order reduction
   turns "we sampled schedules" into "we exhausted them", and does so in
   a number of replays the naive explorers cannot approach.  All three
   engines run the *same* scenario builders over the same seam, so the
   schedule counts are directly comparable:

   - DPOR (Dpor.run): explores one schedule per happens-before class,
     plus sleep-set prunes.  Exhausts the scope; its count is the number
     of replays needed for a certificate.

   - bounded CHESS (Explore.run, preemption budget 1 / 2): polynomial
     replay counts, but a budget is not a certificate — coverage stops at
     the budget boundary.

   - naive DFS (Explore.run with an unbounded preemption budget): the
     full decision tree, one schedule per interleaving.  Run with a cap
     of NAIVE_CAP_FACTOR x the DPOR replay count: if it is still
     truncated at the cap, the scope needs more than that factor times
     DPOR's replays, which is the acceptance floor on the ratio.

   Part B re-runs the fr-list mutant-kill ladder (the measured-coverage
   benchmark for the analysis itself) and records where each seeded
   protocol bug dies.

   PASS: DPOR exhausts the scope for fr-list and fr-skiplist; naive DFS
   does not exhaust it within NAIVE_CAP_FACTOR x DPOR's replays (so the
   replay ratio is at least that factor, which is >= 5); every seeded
   mutant is killed.  BENCH_exp21.json records both schedule counts per
   structure, plus the kill matrix. *)

module Certify = Lf_model.Certify
module Dpor = Lf_model.Dpor
module Explore = Lf_dsim.Explore

(* The acceptance scope is 2 processes x 3 ops each; --quick drops to the
   2x2 conflict scope (same engines, ~10x fewer replays). *)
let scope_name () = if !Bench_json.quick then "2x2-conflict" else "2x3-mixed"
let naive_cap_factor = 6
let max_steps = 200_000
let chess_cap = 200_000

let subjects = [ "fr-list"; "fr-skiplist" ]

type row = {
  engine : string;
  schedules : int;
  exhausted : bool;
  seconds : float;
}

let compare_structure structure =
  let scope = scope_name () in
  let sc =
    List.find
      (fun s -> s.Certify.sc_name = scope)
      (Certify.scenarios ~structure ~quick:true ())
  in
  let mk = Certify.mk ~structure sc in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let dpor, dpor_s =
    timed (fun () -> Dpor.run ~max_schedules:chess_cap ~max_steps mk)
  in
  let dpor_replays = Certify.replays dpor in
  let chess p =
    let o, s =
      timed (fun () ->
          Explore.run ~max_preemptions:p ~max_schedules:chess_cap ~max_steps mk)
    in
    {
      engine = Printf.sprintf "chess-p%d" p;
      schedules = o.Explore.schedules_run;
      exhausted = not o.Explore.truncated;
      seconds = s;
    }
  in
  let naive_cap = naive_cap_factor * dpor_replays in
  let naive, naive_s =
    timed (fun () ->
        Explore.run ~max_preemptions:max_int ~max_schedules:naive_cap
          ~max_steps mk)
  in
  let rows =
    [
      {
        engine = "dpor";
        schedules = dpor_replays;
        exhausted = not dpor.Dpor.truncated;
        seconds = dpor_s;
      };
      chess 1;
      chess 2;
      {
        engine = "naive-dfs";
        schedules = naive.Explore.schedules_run;
        exhausted = not naive.Explore.truncated;
        seconds = naive_s;
      };
    ]
  in
  Printf.printf "\n%s @ %s (%d procs):\n" structure scope
    (List.length sc.Certify.sc_scripts);
  List.iter
    (fun r ->
      Printf.printf "  %-10s %8d schedules  %-22s %6.1fs\n" r.engine
        r.schedules
        (if r.exhausted then "exhausted"
         else if r.engine = "naive-dfs" then
           Printf.sprintf "TRUNCATED at %dx dpor" naive_cap_factor
         else "truncated (budget cover)")
        r.seconds;
      Bench_json.emit_part ~exp:"exp21" ~part:"compare"
        [
          ("structure", Bench_json.S structure);
          ("scope", Bench_json.S scope);
          ("engine", Bench_json.S r.engine);
          ("schedules", Bench_json.I r.schedules);
          ("exhausted", Bench_json.B r.exhausted);
          ("seconds", Bench_json.F r.seconds);
        ])
    rows;
  (* The acceptance ratio: exact when naive DFS finished, a floor when it
     hit the cap (the true ratio can only be larger). *)
  let ratio =
    float_of_int naive.Explore.schedules_run /. float_of_int dpor_replays
  in
  Printf.printf "  replay ratio naive/dpor %s %.1fx\n"
    (if naive.Explore.truncated then ">=" else "=")
    ratio;
  Bench_json.emit_part ~exp:"exp21" ~part:"ratio"
    [
      ("structure", Bench_json.S structure);
      ("scope", Bench_json.S scope);
      ("dpor_replays", Bench_json.I dpor_replays);
      ("naive_schedules", Bench_json.I naive.Explore.schedules_run);
      ("naive_exhausted", Bench_json.B (not naive.Explore.truncated));
      ("ratio_floor", Bench_json.F ratio);
    ];
  (not dpor.Dpor.truncated)
  && dpor.Dpor.failures = []
  && ratio >= 5.0

let mutant_part () =
  let kills = Certify.kill_matrix () in
  Printf.printf "\nmutant-kill ladder (fr-list):\n";
  List.iter
    (fun k ->
      (match k.Certify.k_killed_at with
      | Some (scope, replays, msg) ->
          Printf.printf "  %-17s killed at %-10s (%d replays): %s\n"
            k.Certify.k_mutation scope replays msg
      | None -> Printf.printf "  %-17s NOT KILLED\n" k.Certify.k_mutation);
      Bench_json.emit_part ~exp:"exp21" ~part:"mutants"
        [
          ("mutation", Bench_json.S k.Certify.k_mutation);
          ( "killed_scope",
            match k.Certify.k_killed_at with
            | Some (scope, _, _) -> Bench_json.S scope
            | None -> Bench_json.S "" );
          ( "replays_to_kill",
            match k.Certify.k_killed_at with
            | Some (_, n, _) -> Bench_json.I n
            | None -> Bench_json.I (-1) );
          ("survived_scopes", Bench_json.I (List.length k.Certify.k_survived));
          ("killed", Bench_json.B (k.Certify.k_killed_at <> None));
        ])
    kills;
  Certify.kills_ok kills

let run () =
  Printf.printf
    "\n=== EXP-21: DPOR vs CHESS vs naive DFS at equal coverage ===\n";
  Printf.printf
    "one scenario, three engines; counts are full schedule replays\n";
  let compare_ok = List.for_all compare_structure subjects in
  let mutants_ok = mutant_part () in
  let pass = compare_ok && mutants_ok in
  Printf.printf "\nEXP-21 %s (dpor exhausts >= 5x cheaper, mutants %s)\n"
    (if pass then "PASS" else "FAIL")
    (if mutants_ok then "all killed" else "NOT all killed");
  pass
