(* EXP-4: wall-clock throughput of the linked lists ("lock-free lists can be
   a practical alternative to lock-based implementations", Section 2,
   following the experimental methodology of Harris [3] / Michael [8]).

   NOTE: this container has a single CPU core, so domains time-share; the
   numbers measure synchronization overhead and robustness to preemption,
   not parallel speedup.  The scaling-shape claims live in EXP-1/2/3. *)

let impls : (module Lf_workload.Runner.INT_DICT) list =
  [
    (module Lf_list.Fr_list.Atomic_int);
    (module Lf_baselines.Harris_list.Atomic_int);
    (module Lf_baselines.Michael_list.Atomic_int);
    (module Lf_baselines.Valois_list.Atomic_int);
    (module Lf_baselines.Lazy_list.Int);
    (module Lf_baselines.Coarse_list.Int);
  ]

let run () =
  Tables.section "EXP-4  Linked-list throughput (ops/s), 1-core machine";
  let widths = [ 16; 10; 8; 4; 12 ] in
  Tables.row widths [ "impl"; "mix"; "range"; "dom"; "kops/s" ];
  List.iter
    (fun (key_range, ops) ->
      List.iter
        (fun mix ->
          List.iter
            (fun (module D : Lf_workload.Runner.INT_DICT) ->
              List.iter
                (fun domains ->
                  let r =
                    Lf_workload.Runner.run_throughput
                      (module D)
                      ~domains ~ops_per_domain:ops ~key_range ~mix ~seed:42 ()
                  in
                  Tables.row widths
                    [
                      r.impl;
                      Format.asprintf "%a" Lf_workload.Opgen.pp_mix mix;
                      string_of_int key_range;
                      string_of_int domains;
                      Printf.sprintf "%.0f" (r.ops_per_s /. 1000.);
                    ];
                  Bench_json.emit ~exp:"exp4"
                    Bench_json.
                      [
                        ("impl", S r.impl);
                        ("mix", S (Format.asprintf "%a" Lf_workload.Opgen.pp_mix mix));
                        ("key_range", I key_range);
                        ("domains", I domains);
                        ("kops_per_s", F (r.ops_per_s /. 1000.));
                      ])
                [ 1; 2; 4 ])
            impls;
          print_newline ())
        [ Lf_workload.Opgen.write_heavy; Lf_workload.Opgen.mixed ])
    [ (64, 20_000); (1024, 4_000) ]
