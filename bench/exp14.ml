(* EXP-14: simulator-vs-real cost-model validation.

   Every step-count experiment in this harness runs in the deterministic
   simulator.  This experiment closes the methodological loop: the same
   workload is run (a) in the simulator and (b) on real domains over real
   atomics instrumented with Counting_mem, and the essential-steps-per-
   operation figures are compared.  They will not be identical - real runs
   interleave differently - but they must be the same magnitude and ranking,
   otherwise the simulator would not be a faithful cost model. *)

module Sim = Lf_dsim.Sim

module FRC = Lf_list.Fr_list.Counting_int
module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

module SLC = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_kernel.Counting_mem)
module SLS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let key_range = 256
let per_domain = 5_000
let mix = Lf_workload.Opgen.{ insert_pct = 25; delete_pct = 25 }

(* Real run: 2 domains over Counting_mem; essential steps from the merged
   per-domain counters. *)
let real_run ~insert ~delete ~find =
  Lf_kernel.Counting_mem.reset_all ();
  let work did () =
    let rng = Lf_kernel.Splitmix.create (100 + did) in
    let keygen = Lf_workload.Keygen.uniform key_range in
    for _ = 1 to per_domain do
      match Lf_workload.Opgen.draw mix keygen rng with
      | Lf_workload.Opgen.Insert k -> ignore (insert k)
      | Lf_workload.Opgen.Delete k -> ignore (delete k)
      | Lf_workload.Opgen.Find k -> ignore (find k)
    done
  in
  let d = Domain.spawn (work 1) in
  work 0 ();
  Domain.join d;
  let total = Lf_kernel.Counting_mem.grand_total () in
  float_of_int (Lf_kernel.Counters.essential_steps total)
  /. float_of_int (2 * per_domain)

let sim_run (ops : Lf_workload.Sim_driver.ops) =
  let res =
    Lf_workload.Sim_driver.run_mixed ~policy:(Sim.Random 100) ~procs:2
      ~ops_per_proc:(per_domain / 10) ~key_range ~mix ~seed:100 ops
  in
  float_of_int (Sim.total_essential res)
  /. float_of_int (List.length res.ops)

let run () =
  Tables.section
    "EXP-14  Cost-model validation: simulator vs instrumented real domains";
  Tables.note
    "mixed 25i/25d/50s over %d keys; essential steps per op, 2 workers"
    key_range;
  print_newline ();
  let widths = [ 14; 12; 12 ] in
  Tables.row widths [ "impl"; "sim"; "real" ];
  (* FR list *)
  let sim_list =
    let t = FRS.create () in
    let ops =
      Lf_workload.Sim_driver.
        {
          insert = (fun k -> FRS.insert t k k);
          delete = (fun k -> FRS.delete t k);
          find = (fun k -> FRS.mem t k);
        }
    in
    ignore (Lf_workload.Sim_driver.prefill ~key_range ~count:(key_range / 2) ~seed:1 ops);
    sim_run ops
  in
  let real_list =
    let t = FRC.create () in
    Lf_workload.Runner.prefill ~key_range ~fill:50 ~seed:1 (fun k -> FRC.insert t k k);
    Lf_kernel.Counting_mem.reset_all ();
    real_run
      ~insert:(fun k -> FRC.insert t k k)
      ~delete:(fun k -> FRC.delete t k)
      ~find:(fun k -> FRC.mem t k)
  in
  Tables.row widths
    [ "fr-list"; Printf.sprintf "%.1f" sim_list; Printf.sprintf "%.1f" real_list ];
  (* FR skip list *)
  let sim_sl =
    let t = SLS.create_with ~max_level:12 () in
    let ops =
      Lf_workload.Sim_driver.
        {
          insert = (fun k -> SLS.insert t k k);
          delete = (fun k -> SLS.delete t k);
          find = (fun k -> SLS.mem t k);
        }
    in
    ignore (Lf_workload.Sim_driver.prefill ~key_range ~count:(key_range / 2) ~seed:1 ops);
    sim_run ops
  in
  let real_sl =
    let t = SLC.create_with ~max_level:12 () in
    Lf_workload.Runner.prefill ~key_range ~fill:50 ~seed:1 (fun k -> SLC.insert t k k);
    Lf_kernel.Counting_mem.reset_all ();
    real_run
      ~insert:(fun k -> SLC.insert t k k)
      ~delete:(fun k -> SLC.delete t k)
      ~find:(fun k -> SLC.mem t k)
  in
  Tables.row widths
    [ "fr-skiplist"; Printf.sprintf "%.1f" sim_sl; Printf.sprintf "%.1f" real_sl ];
  Tables.note
    "agreement within a few percent is expected: on one core real domains";
  Tables.note
    "interleave coarsely (few C&S failures), like a low-contention schedule.";
  List.iter
    (fun (structure, sim, real) ->
      Bench_json.emit ~exp:"exp14"
        Bench_json.
          [
            ("structure", S structure);
            ("sim_steps_per_op", F sim);
            ("real_steps_per_op", F real);
          ])
    [ ("fr-list", sim_list, real_list); ("fr-skiplist", sim_sl, real_sl) ];
  (sim_list, real_list, sim_sl, real_sl)
