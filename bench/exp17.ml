(* EXP-17: hint-guided searches (per-domain predecessor caches, DESIGN.md).

   The FR search lemma (Sec 3.2 discussion) lets a search start at any
   validated unmarked node with key <= target instead of the head.  This
   experiment quantifies the payoff of the per-domain hint caches in three
   parts:

   Part A (simulator): mean essential steps per operation on the FR list
   and FR skip list, hints on vs off, under four key distributions -
   uniform, hotspot (hot window parked mid-keyspace so wins cannot come
   from hot keys sitting next to the head), zipf, and global ascending
   inserts.  PASS: hints on improves steps/op by >= 1.5x for hotspot and
   ascending; uniform regression <= 5%.

   Part B (wall-clock, Atomic_mem): throughput of the same structures with
   hints on/off.  Single-core machine: numbers measure overhead/locality,
   not parallel speedup.

   Part C (wall-clock): batched entry points (insert_batch/delete_batch/
   mem_batch, sorted batches carrying the predecessor element to element)
   vs one-at-a-time, on the list, skip list and hash table. *)

open Lf_workload

module K = Lf_kernel.Ordered.Int
module SimL = Lf_list.Fr_list.Make (K) (Lf_dsim.Sim_mem)
module SimS = Lf_skiplist.Fr_skiplist.Make (K) (Lf_dsim.Sim_mem)

let insert_only = { Opgen.insert_pct = 100; delete_pct = 0 }

(* ------------------------------------------------------------------ *)
(* Part A: essential steps per op in the simulator.                    *)

type sim_case = {
  workload : string;
  ops_per_proc : int;  (* quick mode divides by 4 *)
  key_range : int;
  prefill : int;
  mix : Opgen.mix;
  keygen : unit -> int -> Keygen.t;  (* fresh factory per run *)
}

let hot_of range = Keygen.hotspot ~base:(range / 2) ~range ~hot:32 ~hot_pct:90

let sim_cases ~key_range ~prefill ~ops =
  [
    {
      workload = "uniform";
      ops_per_proc = ops;
      key_range;
      prefill;
      mix = Opgen.mixed;
      keygen = (fun () _pid -> Keygen.uniform key_range);
    };
    {
      workload = "hotspot";
      ops_per_proc = ops;
      key_range;
      prefill;
      mix = Opgen.mixed;
      keygen = (fun () _pid -> hot_of key_range ());
    };
    {
      workload = "zipf";
      ops_per_proc = ops;
      key_range;
      prefill;
      mix = Opgen.mixed;
      keygen = (fun () _pid -> Keygen.zipf ~range:key_range ~theta:0.9);
    };
    {
      (* Global ascending inserts: one shared generator, empty start. *)
      workload = "ascending";
      ops_per_proc = max 1 (ops / 2);
      key_range = 1;
      prefill = 0;
      mix = insert_only;
      keygen =
        (fun () ->
          let g = Keygen.ascending () in
          fun _pid -> g);
    };
  ]

type sim_run = {
  steps_per_op : float;
  n_ops : int;
  stats : Lf_kernel.Hint.stats option;
}

let run_sim ~structure ~use_hints c : sim_run =
  let ops, hint_stats =
    match structure with
    | "fr-list" ->
        let t = SimL.create_with ~use_hints ~use_flags:true () in
        ( Sim_driver.
            {
              insert = (fun k -> SimL.insert t k k);
              delete = (fun k -> SimL.delete t k);
              find = (fun k -> SimL.mem t k);
            },
          fun () -> SimL.hint_stats t )
    | "fr-skiplist" ->
        let t = SimS.create_with ~use_hints () in
        ( Sim_driver.
            {
              insert = (fun k -> SimS.insert t k k);
              delete = (fun k -> SimS.delete t k);
              find = (fun k -> SimS.mem t k);
            },
          fun () -> SimS.hint_stats t )
    | s -> invalid_arg s
  in
  let filled =
    if c.prefill = 0 then 0
    else Sim_driver.prefill ~key_range:c.key_range ~count:c.prefill ~seed:11 ops
  in
  let quick = if !Bench_json.quick then 4 else 1 in
  let res =
    Sim_driver.run_mixed
      ~policy:(Lf_dsim.Sim.Random 5)
      ~initial_size:filled
      ~keygen:(c.keygen ())
      ~procs:4
      ~ops_per_proc:(max 1 (c.ops_per_proc / quick))
      ~key_range:c.key_range ~mix:c.mix ~seed:17 ops
  in
  let n_ops = List.length res.ops in
  {
    steps_per_op =
      float_of_int (Lf_dsim.Sim.total_essential res) /. float_of_int n_ops;
    n_ops;
    stats = hint_stats ();
  }

let part_a () =
  Tables.subsection
    "Part A: essential steps/op in the simulator (4 procs, hints off vs on)";
  let widths = [ 14; 10; 8; 10; 10; 8; 22 ] in
  Tables.row widths
    [ "structure"; "workload"; "ops"; "off"; "on"; "ratio"; "hits/stale/miss" ];
  let failures = ref [] in
  List.iter
    (fun (structure, cases) ->
      List.iter
        (fun c ->
          let off = run_sim ~structure ~use_hints:false c in
          let on = run_sim ~structure ~use_hints:true c in
          let ratio = off.steps_per_op /. on.steps_per_op in
          let hs =
            match on.stats with
            | None -> "-"
            | Some s ->
                Printf.sprintf "%d/%d/%d" s.Lf_kernel.Hint.hits s.stale s.misses
          in
          Tables.row widths
            [
              structure;
              c.workload;
              string_of_int on.n_ops;
              Printf.sprintf "%.1f" off.steps_per_op;
              Printf.sprintf "%.1f" on.steps_per_op;
              Printf.sprintf "%.2fx" ratio;
              hs;
            ];
          (match c.workload with
          | "hotspot" | "ascending" ->
              if ratio < 1.5 then
                failures :=
                  Printf.sprintf "%s/%s ratio %.2f < 1.5" structure c.workload
                    ratio
                  :: !failures
          | "uniform" ->
              if ratio < 0.95 then
                failures :=
                  Printf.sprintf "%s/uniform regression %.2f > 5%%" structure
                    ((1.0 -. ratio) *. 100.)
                  :: !failures
          | _ -> ());
          List.iter
            (fun (hints, (r : sim_run)) ->
              let stats_fields =
                match r.stats with
                | None -> []
                | Some s ->
                    Bench_json.
                      [
                        ("hits", I s.Lf_kernel.Hint.hits);
                        ("stale", I s.stale);
                        ("misses", I s.misses);
                        ("stores", I s.stores);
                      ]
              in
              Bench_json.emit_part ~exp:"exp17" ~part:"sim_steps"
                (Bench_json.
                   [
                     ("structure", S structure);
                     ("workload", S c.workload);
                     ("hints", B hints);
                     ("ops", I r.n_ops);
                     ("essential_per_op", F r.steps_per_op);
                   ]
                @ stats_fields))
            [ (false, off); (true, on) ];
          Bench_json.emit_part ~exp:"exp17" ~part:"sim_ratio"
            Bench_json.
              [
                ("structure", S structure);
                ("workload", S c.workload);
                ("off_over_on", F ratio);
              ])
        cases;
      print_newline ())
    [
      ("fr-list", sim_cases ~key_range:512 ~prefill:256 ~ops:600);
      ("fr-skiplist", sim_cases ~key_range:4096 ~prefill:1024 ~ops:800);
    ];
  !failures

(* ------------------------------------------------------------------ *)
(* Part B: wall-clock, Atomic_mem, hints on vs off.                    *)

module L_on = Lf_list.Fr_list.Atomic_int

module L_off = struct
  include Lf_list.Fr_list.Atomic_int

  let name = "fr-list(-h)"
  let create () = create_with ~use_hints:false ~use_flags:true ()
end

module S_on = Lf_skiplist.Fr_skiplist.Atomic_int

module S_off = struct
  include Lf_skiplist.Fr_skiplist.Atomic_int

  let name = "fr-skiplist(-h)"
  let create () = create_with ~use_hints:false ()
end

let part_b () =
  Tables.subsection "Part B: wall-clock throughput, hints on vs off (kops/s)";
  let widths = [ 16; 10; 6; 4; 10 ] in
  Tables.row widths [ "impl"; "workload"; "range"; "dom"; "kops/s" ];
  let ops = if !Bench_json.quick then 2_000 else 30_000 in
  List.iter
    (fun (workload, keygen) ->
      List.iter
        (fun (module D : Runner.INT_DICT) ->
          List.iter
            (fun domains ->
              let r =
                Runner.run_throughput ~keygen
                  (module D)
                  ~domains ~ops_per_domain:ops ~key_range:1024
                  ~mix:Opgen.mixed ~seed:44 ()
              in
              Tables.row widths
                [
                  r.impl;
                  workload;
                  "1024";
                  string_of_int domains;
                  Printf.sprintf "%.0f" (r.ops_per_s /. 1000.);
                ];
              Bench_json.emit_part ~exp:"exp17" ~part:"wallclock"
                Bench_json.
                  [
                    ("impl", S r.impl);
                    ("workload", S workload);
                    ("domains", I domains);
                    ("kops_per_s", F (r.ops_per_s /. 1000.));
                  ])
            [ 1; 2 ])
        [
          (module L_off : Runner.INT_DICT);
          (module L_on);
          (module S_off);
          (module S_on);
        ];
      print_newline ())
    [
      ("uniform", fun _did -> Keygen.uniform 1024);
      ("hotspot", fun _did -> hot_of 1024 ());
    ]

(* ------------------------------------------------------------------ *)
(* Part C: batched vs one-at-a-time entry points.                      *)

let part_c () =
  Tables.subsection "Part C: batched vs unbatched throughput (kops/s)";
  let widths = [ 16; 10; 6; 4; 10 ] in
  Tables.row widths [ "impl"; "batch"; "range"; "dom"; "kops/s" ];
  let ops = if !Bench_json.quick then 2_000 else 20_000 in
  List.iter
    (fun (module D : Runner.INT_DICT_BATCHED) ->
      List.iter
        (fun domains ->
          List.iter
            (fun batch ->
              let r =
                if batch = 1 then
                  Runner.run_throughput
                    (module D)
                    ~domains ~ops_per_domain:ops ~key_range:1024
                    ~mix:Opgen.write_heavy ~seed:45 ()
                else
                  Runner.run_throughput_batched
                    (module D)
                    ~domains ~ops_per_domain:ops ~batch ~key_range:1024
                    ~mix:Opgen.write_heavy ~seed:45 ()
              in
              Tables.row widths
                [
                  r.impl;
                  (if batch = 1 then "unbatched" else string_of_int batch);
                  "1024";
                  string_of_int domains;
                  Printf.sprintf "%.0f" (r.ops_per_s /. 1000.);
                ];
              Bench_json.emit_part ~exp:"exp17" ~part:"batch"
                Bench_json.
                  [
                    ("impl", S r.impl);
                    ("batch", I batch);
                    ("domains", I domains);
                    ("kops_per_s", F (r.ops_per_s /. 1000.));
                  ])
            [ 1; 16; 64 ])
        [ 1; 2 ];
      print_newline ())
    [
      (module Lf_list.Fr_list.Atomic_int : Runner.INT_DICT_BATCHED);
      (module Lf_skiplist.Fr_skiplist.Atomic_int);
      (module Lf_hashtable.Atomic_int);
    ]

let run () =
  Tables.section
    "EXP-17  Hint-guided searches: per-domain predecessor caches + batches";
  let failures = part_a () in
  part_b ();
  part_c ();
  (match failures with
  | [] ->
      Tables.note
        "PASS: hotspot/ascending >= 1.5x steps/op win, uniform within 5%%."
  | fs ->
      List.iter (fun f -> Tables.note "FAIL: %s" f) fs;
      Tables.note "acceptance criteria NOT met (see rows above)");
  Tables.note
    "Hint wins come from locality; uniform keys see little reuse (caveat in";
  Tables.note "EXPERIMENTS.md).";
  failures = []
