(* EXP-15: the three recovery classes of lock-free skip lists.

   Section 4 of the paper positions the designs on a spectrum:
   - Fomitchev-Ruppert: per-level backlinks + flags, always-local recovery;
   - Sundell-Tsigas [15]: one backlink per tower, set at deletion, "useful
     on a given level only if the tower it is pointing to is sufficiently
     high";
   - Fraser [2]: no backlinks, restart from the top on any interference.

   (a) The EXP-13 tail-insert adversary over all three: inserters restart
       internally in the Fraser and ST designs (the per-tower backlink does
       not help an insert that re-finds from the top), so ST tracks Fraser
       while F&R stays constant.

   (b) Worst-case single interference against a search: for EVERY possible
       preemption point s of a search, park the searcher after s steps,
       delete the tall tower on its path entirely, resume, and record the
       searcher's overhead vs an interference-free run.  Reported: the
       maximum over s.  With a short predecessor the ST backlink is too low
       and ST restarts like Fraser; with an equally tall predecessor the ST
       backlink fires and ST recovers locally like F&R - the paper's
       "sufficiently high" condition, both ways. *)

module Sim = Lf_dsim.Sim
module Ev = Lf_kernel.Mem_event

module FrS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module FzS = Lf_skiplist.Fraser_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module StS = Lf_skiplist.St_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

(* ---------------- part (a): reuse the EXP-13 adversary ---------------- *)

let part_a () =
  Tables.subsection "(a) tail-insert adversary (recovery steps per round)";
  let widths = [ 6; 10; 10; 10 ] in
  Tables.row widths [ "n"; "fr"; "st"; "fraser" ];
  let module Sc = Lf_scenarios.Scenarios in
  List.iter
    (fun n ->
      let rounds = min (n / 2) 64 in
      let fr = Sc.sl_tail_adversary ~n ~q:4 ~rounds Sc.fr_sl_target in
      let st = Sc.sl_tail_adversary ~n ~q:4 ~rounds Sc.st_sl_target in
      let fz = Sc.sl_tail_adversary ~n ~q:4 ~rounds Sc.fraser_sl_target in
      Bench_json.emit_part ~exp:"exp15" ~part:"adversary"
        Bench_json.
          [
            ("n", I n);
            ("fr_rec_per_round", F fr);
            ("st_rec_per_round", F st);
            ("fraser_rec_per_round", F fz);
          ];
      Tables.row widths
        [
          string_of_int n;
          Printf.sprintf "%.1f" fr;
          Printf.sprintf "%.1f" st;
          Printf.sprintf "%.1f" fz;
        ])
    [ 64; 256; 1024 ]

(* ------------- part (b): worst-case single interference -------------- *)

(* A structure of [n] keys with trailing-zero heights; the victim tower V
   (key v) has the maximal height; its predecessor P is [~tall_pred] high.
   A searcher looks up a key beyond V; the deleter removes V. *)
type scenario = {
  solo : int; (* searcher steps with no interference *)
  overhead : int -> int; (* park point -> searcher steps - solo *)
}

(* All memory actions a process performed. *)
let proc_steps (c : Lf_kernel.Counters.t) =
  c.reads + c.writes + Lf_kernel.Counters.total_cas_attempts c

let make_scenario ~n ~tall_pred ~build =
  (* build () must return (search : unit -> unit), (delete_victim : unit -> unit) *)
  let solo =
    (* Interference-free baseline: the dearer of searching before and after
       the victim's deletion (deleting a tall tower removes an express lane,
       which is a structural cost, not recovery overhead). *)
    let before =
      let search, _ = build ~n ~tall_pred in
      let res = Sim.run [| (fun _ -> search ()) |] in
      proc_steps res.per_proc.(0)
    in
    let after =
      let search, delete_victim = build ~n ~tall_pred in
      ignore (Sim.run [| (fun _ -> delete_victim ()) |]);
      let res = Sim.run [| (fun _ -> search ()) |] in
      proc_steps res.per_proc.(0)
    in
    max before after
  in
  let overhead s =
    let search, delete_victim = build ~n ~tall_pred in
    let searcher _ = search () in
    let deleter _ = delete_victim () in
    let parked = ref false in
    let policy st =
      if (not !parked) && Sim.total_steps st < s && not (Sim.is_finished st 0)
      then Some 0
      else begin
        parked := true;
        if not (Sim.is_finished st 1) then Some 1
        else if not (Sim.is_finished st 0) then Some 0
        else None
      end
    in
    let res = Sim.run ~policy:(Sim.Custom policy) [| searcher; deleter |] in
    max 0 (proc_steps res.per_proc.(0) - solo)
  in
  { solo; overhead }

let victim_of n = (n / 2 * 2) + 100 (* placed beyond the prefilled keys *)

let fr_build ~n ~tall_pred =
  let t = FrS.create_with ~max_level:12 () in
  let vh = 8 in
  Sim.quiet (fun () ->
      for i = 1 to n do
        ignore (FrS.insert_with_height t ~height:(min 6 (Lf_scenarios.Scenarios.tz_height i)) i i)
      done;
      let p = victim_of n - 1 and v = victim_of n in
      ignore (FrS.insert_with_height t ~height:(if tall_pred then vh else 1) p p);
      ignore (FrS.insert_with_height t ~height:vh v v));
  ( (fun () -> ignore (FrS.mem t (victim_of n + 7))),
    fun () -> ignore (FrS.delete t (victim_of n)) )

let fz_build ~n ~tall_pred =
  let t = FzS.create_with ~max_level:12 () in
  let vh = 8 in
  Sim.quiet (fun () ->
      for i = 1 to n do
        ignore (FzS.insert_with_height t ~height:(min 6 (Lf_scenarios.Scenarios.tz_height i)) i i)
      done;
      let p = victim_of n - 1 and v = victim_of n in
      ignore (FzS.insert_with_height t ~height:(if tall_pred then vh else 1) p p);
      ignore (FzS.insert_with_height t ~height:vh v v));
  ( (fun () -> ignore (FzS.mem t (victim_of n + 7))),
    fun () -> ignore (FzS.delete t (victim_of n)) )

let st_build ~n ~tall_pred =
  let t = StS.create_with ~max_level:12 () in
  let vh = 8 in
  Sim.quiet (fun () ->
      for i = 1 to n do
        ignore (StS.insert_with_height t ~height:(min 6 (Lf_scenarios.Scenarios.tz_height i)) i i)
      done;
      let p = victim_of n - 1 and v = victim_of n in
      ignore (StS.insert_with_height t ~height:(if tall_pred then vh else 1) p p);
      ignore (StS.insert_with_height t ~height:vh v v));
  ( (fun () -> ignore (StS.mem t (victim_of n + 7))),
    fun () -> ignore (StS.delete t (victim_of n)) )

let worst scenario =
  let m = ref 0 in
  for s = 0 to scenario.solo do
    let o = scenario.overhead s in
    if o > !m then m := o
  done;
  !m

let part_b () =
  Tables.subsection
    "(b) worst-case single interference against a search (max overhead)";
  let widths = [ 6; 10; 12; 12; 10 ] in
  Tables.row widths [ "n"; "fr"; "st(short)"; "st(tall)"; "fraser" ];
  List.iter
    (fun n ->
      let fr = worst (make_scenario ~n ~tall_pred:false ~build:fr_build) in
      let st_short = worst (make_scenario ~n ~tall_pred:false ~build:st_build) in
      let st_tall = worst (make_scenario ~n ~tall_pred:true ~build:st_build) in
      let fz = worst (make_scenario ~n ~tall_pred:false ~build:fz_build) in
      Bench_json.emit_part ~exp:"exp15" ~part:"interference"
        Bench_json.
          [
            ("n", I n);
            ("fr", I fr);
            ("st_short", I st_short);
            ("st_tall", I st_tall);
            ("fraser", I fz);
          ];
      Tables.row widths
        [
          string_of_int n;
          string_of_int fr;
          string_of_int st_short;
          string_of_int st_tall;
          string_of_int fz;
        ])
    [ 64; 256; 1024 ];
  Tables.note
    "overhead = searcher steps minus an interference-free search, maximized";
  Tables.note
    "over every possible preemption point.  st(short): the victim's";
  Tables.note
    "predecessor tower is height 1, so the backlink lies below the";
  Tables.note
    "interference level and ST restarts exactly like Fraser.  st(tall): an";
  Tables.note
    "equally tall predecessor makes the backlink usable and ST recovers";
  Tables.note
    "locally, like F&R - the paper's \"sufficiently high\" condition, both";
  Tables.note
    "ways.  (Overheads are flat in n here because the express-lane height";
  Tables.note
    "profile keeps the wasted prefix short; the growth rates live in (a).)"

let run () =
  Tables.section
    "EXP-15  Recovery classes: F&R (always) / ST (sometimes) / Fraser (never)";
  part_a ();
  part_b ()
