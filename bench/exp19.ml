(* EXP-19: observability overhead and contention attribution (lf_obs).

   Part A prices the recorder: the same throughput workload on each
   structure (FR list, FR skip list, hash table, priority queue), all
   instantiated over Trace_mem (Atomic_mem), at each recorder level.
   The bar: counters-level recording stays within a few percent of off —
   the seam's one-word level check plus DLS tally bumps — while full
   tracing pays for timestamping and ring writes.  Elapsed times take the
   best of [reps] runs (the usual anti-noise choice for overhead ratios).

   Part B reads the latency histograms the Part A histograms-level runs
   filled: per-op p50/p90/p99/p99.9 in nanoseconds.

   Part C reproduces the paper's contention story in the simulator, where
   the schedule (not the machine) decides who collides: a churn-heavy
   hotspot workload on the FR list concentrates failed C&S on the few hot
   keys, with the deletion protocol's three steps (flag / mark / unlink)
   jointly responsible for most of them, and the profiler's hot-key
   ranking names exactly the hot window; a uniform workload of the same
   size shows near-zero, scattered failures.  One reading note: raw
   Flagging-failure counts understate TRYFLAG contention, because
   [Fr_list.try_flag] re-reads the predecessor first and a deleter that
   finds the flag already set turns helper *without* attempting the C&S —
   the lost race shows up as helping, not as a failed C&S.  The phase mix
   reported here is the failure mix actually visible at the Mem.S seam. *)

module Recorder = Lf_obs.Recorder
module Obs_event = Lf_obs.Obs_event

module Traced_mem = Lf_obs.Trace_mem.Make (Lf_kernel.Atomic_mem)
module TL = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Traced_mem)
module TS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Traced_mem)
module TH = Lf_hashtable.Make (Lf_hashtable.Int_key) (Traced_mem)
module TP = Lf_pqueue.Pqueue.Stamped (Traced_mem)

module Traced_sim_mem = Lf_obs.Trace_mem.Make (Lf_dsim.Sim_mem)
module SL = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Traced_sim_mem)

let levels =
  [
    (Recorder.Off, "off");
    (Recorder.Counters, "counters");
    (Recorder.Histograms, "histograms");
    (Recorder.Tracing, "tracing");
  ]

(* ------------------------------------------------------------------ *)
(* Part A: wall-clock overhead per structure and level.                *)

let dict_elapsed (module D : Lf_workload.Runner.INT_DICT) ~domains ~ops ~seed =
  let r =
    Lf_workload.Runner.run_throughput
      (module D)
      ~domains ~ops_per_domain:ops ~key_range:1024
      ~mix:{ insert_pct = 20; delete_pct = 20 }
      ~seed ()
  in
  r.elapsed_s

(* The priority queue is not a DICT, so it gets its own driver: each
   domain alternates pushes (spanned as inserts) and pops (as deletes),
   the same span markers the Runner places around dictionary ops. *)
let pqueue_elapsed ~domains ~ops ~seed =
  let q = TP.create () in
  for i = 1 to 512 do
    TP.push q i i
  done;
  let barrier = Atomic.make 0 in
  let work did =
    Lf_kernel.Lane.set did;
    let rng = Lf_kernel.Splitmix.create (seed + (1000 * did)) in
    Atomic.incr barrier;
    while Atomic.get barrier < domains do
      Domain.cpu_relax ()
    done;
    for _ = 1 to ops do
      let p = Lf_kernel.Splitmix.int rng 100_000 in
      if p land 1 = 0 then begin
        Recorder.span_begin ~op:Obs_event.Insert ~key:p;
        TP.push q p p;
        Recorder.span_end ~op:Obs_event.Insert ~ok:true
      end
      else begin
        Recorder.span_begin ~op:Obs_event.Delete ~key:p;
        let r = TP.pop_min q in
        Recorder.span_end ~op:Obs_event.Delete ~ok:(Option.is_some r)
      end
    done;
    Lf_kernel.Lane.clear ()
  in
  let t0 = Unix.gettimeofday () in
  let ds =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1)))
  in
  work 0;
  List.iter Domain.join ds;
  Unix.gettimeofday () -. t0

type target = {
  t_name : string;
  t_elapsed : domains:int -> ops:int -> seed:int -> float;
}

let targets =
  [
    { t_name = "fr-list"; t_elapsed = dict_elapsed (module TL) };
    { t_name = "fr-skiplist"; t_elapsed = dict_elapsed (module TS) };
    { t_name = "lf-hashtable"; t_elapsed = dict_elapsed (module TH) };
    { t_name = "pqueue"; t_elapsed = pqueue_elapsed };
  ]

(* Latency snapshots captured right after each histograms-level run. *)
let latency_snapshots :
    (string * (Obs_event.op * Lf_obs.Hist.t) list) list ref =
  ref []

let run_overhead () =
  Tables.subsection "A. recorder overhead (wall clock, 2 domains)";
  let domains = 2 in
  let ops = if !Bench_json.quick then 5_000 else 60_000 in
  let reps = if !Bench_json.quick then 2 else 3 in
  let widths = [ 14; 12; 10; 10; 10 ] in
  Tables.row widths [ "structure"; "level"; "best_s"; "Mops/s"; "overhead" ];
  let list_counters_overhead = ref 0.0 in
  List.iter
    (fun tgt ->
      let base = ref 0.0 in
      List.iter
        (fun (level, level_name) ->
          Recorder.set_level Recorder.Off;
          Recorder.reset ();
          Recorder.set_clock Recorder.Real;
          let best = ref infinity in
          for rep = 1 to reps do
            Recorder.reset ();
            Recorder.set_level level;
            let e = tgt.t_elapsed ~domains ~ops ~seed:(41 + rep) in
            Recorder.set_level Recorder.Off;
            if e < !best then best := e
          done;
          if level = Recorder.Histograms then
            latency_snapshots :=
              (tgt.t_name, Recorder.latencies ()) :: !latency_snapshots;
          if level = Recorder.Off then base := !best;
          let overhead = (!best /. !base) -. 1.0 in
          if tgt.t_name = "fr-list" && level = Recorder.Counters then
            list_counters_overhead := overhead;
          Tables.row widths
            [
              tgt.t_name;
              level_name;
              Printf.sprintf "%.4f" !best;
              Printf.sprintf "%.2f"
                (float_of_int (domains * ops) /. !best /. 1e6);
              Printf.sprintf "%+.1f%%" (100. *. overhead);
            ];
          Bench_json.emit_part ~exp:"exp19" ~part:"overhead"
            Bench_json.
              [
                ("structure", S tgt.t_name);
                ("level", S level_name);
                ("domains", I domains);
                ("ops", I (domains * ops));
                ("best_s", F !best);
                ("overhead_pct", F (100. *. overhead));
              ])
        levels)
    targets;
  Tables.note
    "PASS criterion: counters-level overhead small (<= 10%% on the list); \
     tracing pays for timestamps + ring writes.";
  !list_counters_overhead

(* ------------------------------------------------------------------ *)
(* Part B: latency percentiles from the histograms-level runs.         *)

let run_latency () =
  Tables.subsection "B. operation latency (histograms level, ns)";
  let widths = [ 14; 8; 9; 9; 9; 9; 9 ] in
  Tables.row widths [ "structure"; "op"; "count"; "p50"; "p90"; "p99"; "p99.9" ];
  List.iter
    (fun (structure, lats) ->
      List.iter
        (fun (op, h) ->
          if Lf_obs.Hist.count h > 0 then begin
            let p q = Lf_obs.Hist.percentile h q in
            Tables.row widths
              [
                structure;
                Obs_event.op_to_string op;
                string_of_int (Lf_obs.Hist.count h);
                Printf.sprintf "%.0f" (p 0.5);
                Printf.sprintf "%.0f" (p 0.9);
                Printf.sprintf "%.0f" (p 0.99);
                Printf.sprintf "%.0f" (p 0.999);
              ];
            Bench_json.emit_part ~exp:"exp19" ~part:"latency"
              Bench_json.
                [
                  ("structure", S structure);
                  ("op", S (Obs_event.op_to_string op));
                  ("count", I (Lf_obs.Hist.count h));
                  ("p50_ns", F (p 0.5));
                  ("p90_ns", F (p 0.9));
                  ("p99_ns", F (p 0.99));
                  ("p999_ns", F (p 0.999));
                ]
          end)
        lats)
    (List.rev !latency_snapshots)

(* ------------------------------------------------------------------ *)
(* Part C: contention attribution in the simulator.                    *)

let hot_base = 480
let hot_width = 2

let sim_contention ~workload ~seed =
  Recorder.set_level Recorder.Off;
  Recorder.reset ();
  Recorder.set_clock Recorder.Sim_steps;
  let t = SL.create () in
  let ops =
    Lf_workload.Sim_driver.
      {
        insert = (fun k -> SL.insert t k k);
        delete = (fun k -> SL.delete t k);
        find = (fun k -> SL.mem t k);
      }
  in
  let key_range = 1024 in
  let filled =
    Lf_workload.Sim_driver.prefill ~key_range ~count:256 ~seed:(seed + 1) ops
  in
  let keygen =
    match workload with
    | "hotspot" ->
        Some
          (fun _pid ->
            Lf_workload.Keygen.hotspot ~base:hot_base ~range:key_range
              ~hot:hot_width ~hot_pct:90 ())
    | _ -> None
  in
  Recorder.set_level Recorder.Histograms;
  let procs = 16 in
  let per_proc = if !Bench_json.quick then 150 else 400 in
  ignore
    (Lf_workload.Sim_driver.run_mixed ?keygen ~policy:(Lf_dsim.Sim.Random seed)
       ~initial_size:filled ~procs ~ops_per_proc:per_proc ~key_range
       ~mix:{ insert_pct = 40; delete_pct = 40 }
       ~seed ops
      : Lf_dsim.Sim.result);
  Recorder.set_level Recorder.Off;
  Recorder.profile_report ~top:8 ()

let run_contention () =
  Tables.subsection
    "C. contention attribution (simulator, 16 procs, churn-heavy)";
  let deletion_share = ref 0.0 in
  List.iter
    (fun workload ->
      let r = sim_contention ~workload ~seed:7 in
      Printf.printf "\n%s workload:\n" workload;
      Format.printf "%a@." Lf_obs.Profile.pp_report r;
      List.iter
        (fun (phase, fails) ->
          if
            workload = "hotspot"
            && (phase = "flag" || phase = "mark" || phase = "unlink")
          then
            deletion_share :=
              !deletion_share
              +. (float_of_int fails /. float_of_int (max 1 r.r_total));
          Bench_json.emit_part ~exp:"exp19" ~part:"contention"
            Bench_json.
              [
                ("workload", S workload);
                ("phase", S phase);
                ("fails", I fails);
                ("total", I r.r_total);
              ])
        r.r_by_phase;
      List.iter
        (fun (hk : Lf_obs.Profile.hot_key) ->
          Bench_json.emit_part ~exp:"exp19" ~part:"hot_keys"
            Bench_json.
              [
                ("workload", S workload);
                ("key", I hk.hk_key);
                ("fails", I hk.hk_fails);
                ("phase", S hk.hk_phase);
                ( "in_hot_window",
                  B (hk.hk_key >= hot_base && hk.hk_key < hot_base + hot_width)
                );
              ])
        r.r_hot_keys)
    [ "uniform"; "hotspot" ];
  Tables.note
    "PASS criterion: under the hotspot, failed C&S concentrate on the \
     deletion protocol (flag/mark/unlink jointly > insert) and the hot-key \
     ranking names keys %d..%d; uniform stays near zero.  (Lost TRYFLAG \
     races that find the flag set help instead of C&S-failing, so the flag \
     row understates flag contention; see the header comment.)"
    hot_base
    (hot_base + hot_width - 1);
  !deletion_share

let run () =
  Tables.section
    "EXP-19  Observability: recorder overhead, latency, contention profile";
  let counters_overhead = run_overhead () in
  run_latency ();
  let deletion_share = run_contention () in
  latency_snapshots := [];
  Recorder.set_level Recorder.Off;
  Recorder.reset ();
  (counters_overhead, deletion_share)
