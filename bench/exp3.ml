(* EXP-3: the Omega(m_E) execution against Valois's list (Section 2).

   The paper (citing Valois's own analysis) notes that executions exist in
   which the average operation cost on Valois's list is Omega(m_E) - linear
   in the TOTAL number of operations - even while the list size and the
   contention stay O(1).  The mechanism: a deleted cell's back_link is set
   to the *cursor's* pre_cell, which can already be deleted by the time the
   deletion executes, so back_link chains of deleted cells grow without
   bound and every deletion's cleanup walks the whole chain.

   Construction (engine: Lf_scenarios.Scenarios.omega_schedule): round r
   deletes cell r; two deleters alternate, each parked at its excision C&S
   across the previous cell's deletion, so back_link(r) = cell r-1 for
   every r; a producer keeps the live list at 2-3 cells; contention is 3.

   The Fomitchev-Ruppert list under the same schedule (parking at the
   flagging C&S) stays O(1) per operation: the flag guarantees the backlink
   is set to the predecessor at deletion time, never to a dead cursor
   snapshot. *)

module S = Lf_scenarios.Scenarios

let run () =
  Tables.section
    "EXP-3  Valois back_link chains: average cost Omega(m) at n,c = O(1)";
  Tables.note "m = total deletions; live list stays at 2-3 cells throughout;";
  Tables.note "point contention is 3.  avg = essential steps per delete op.";
  print_newline ();
  let widths = [ 6; 14; 14; 14; 14 ] in
  Tables.row widths [ "m"; "valois avg"; "valois chain"; "fr avg"; "fr chain" ];
  let pts_v = ref [] and pts_f = ref [] in
  List.iter
    (fun m ->
      let v_avg, v_chain = S.omega_schedule ~m S.valois_omega_target in
      let f_avg, f_chain = S.omega_schedule ~m S.fr_omega_target in
      pts_v := (float_of_int m, v_avg) :: !pts_v;
      pts_f := (float_of_int m, f_avg) :: !pts_f;
      Bench_json.emit_part ~exp:"exp3" ~part:"sweep"
        Bench_json.
          [
            ("m", I m);
            ("valois_avg", F v_avg);
            ("valois_chain", I v_chain);
            ("fr_avg", F f_avg);
            ("fr_chain", I f_chain);
          ];
      Tables.row widths
        [
          string_of_int m;
          Printf.sprintf "%.1f" v_avg;
          string_of_int v_chain;
          Printf.sprintf "%.1f" f_avg;
          string_of_int f_chain;
        ])
    [ 100; 200; 400; 800 ];
  let v_slope, _ = Lf_kernel.Stats.loglog_slope (Array.of_list !pts_v) in
  let f_slope, _ = Lf_kernel.Stats.loglog_slope (Array.of_list !pts_f) in
  Tables.note "growth of avg cost with m (log-log slope):";
  Tables.note "  valois:            %.2f (paper: ~1, Omega(m))" v_slope;
  Tables.note "  fomitchev-ruppert: %.2f (paper: ~0, O(n+c) = O(1) here)"
    f_slope;
  Bench_json.emit_part ~exp:"exp3" ~part:"slopes"
    Bench_json.[ ("valois_slope", F v_slope); ("fr_slope", F f_slope) ];
  (v_slope, f_slope)
