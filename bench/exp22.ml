(* EXP-22: allocation pragmatics — descriptor interning vs the GC tail.

   EXP-19's latency table ended with a cliff: p999 sat two orders of
   magnitude above p99 on the real-memory workload runner.  The suspect
   was never the algorithm (the simulator's step histograms are smooth);
   it was the allocator: every C&S attempt built a fresh succ descriptor,
   every retry loop re-built it, and the three-step deletion built three
   per attempt, so the minor heap filled at a rate proportional to
   contention and the mutator paid for it in collection pauses exactly
   when operations were already slow.

   Part A is the ablation: EXP-19's workload (key range 1024, 20/20/60
   mix, histograms-level recorder) on the FR list and FR skip list, with
   descriptor interning off (~reuse_descriptors:false — the allocating
   baseline) and on (the default).  One domain, deliberately: the
   development machine has a single core, so with two domains the p999
   is a scheduler preemption quantum (milliseconds of a domain parked
   mid-op), which drowns exactly the GC signal under test; one domain
   makes the window's [Gc_attr] attribution exact as well.  Each
   run reports the merged-op latency percentiles through p9999 next to
   its GC attribution window ([Lf_obs.Gc_attr]): minor/major collections
   and minor-heap words, total and per op.  The claim under test:
   interning cuts minor-heap words per op and pulls p999 to within ~20x
   of p99.

   Part B is the step-neutrality check: interning must change WHERE
   descriptors come from, never WHAT the protocol does.  The same seeded
   simulator run (policy, prefill, mix) is executed with reuse off and on;
   since [M.make] has no sim effect and interning only substitutes
   physically-equal-by-construction values, the two runs must take
   *exactly* the same number of shared-memory steps.  Any drift here means
   the optimization changed the algorithm, not just the allocator. *)

module Recorder = Lf_obs.Recorder
module Gc_attr = Lf_obs.Gc_attr

module Traced_mem = Lf_obs.Trace_mem.Make (Lf_kernel.Atomic_mem)
module TL = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Traced_mem)
module TS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Traced_mem)

module SimL = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module SimS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

(* ------------------------------------------------------------------ *)
(* Part A: latency + GC attribution, reuse off vs on.                  *)

let list_dict ~reuse : (module Lf_workload.Runner.INT_DICT) =
  (module struct
    include TL

    let create () = TL.create_with ~use_flags:true ~reuse_descriptors:reuse ()
  end)

let skiplist_dict ~reuse : (module Lf_workload.Runner.INT_DICT) =
  (module struct
    include TS

    let create () = TS.create_with ~reuse_descriptors:reuse ()

    (* Deterministic per-key tower heights, so the off and on runs build
       identical towers ([TS.insert] draws heights from a persistent
       domain-local RNG, which would skew the allocation comparison). *)
    let insert t k v =
      TS.insert_with_height t ~height:(1 + (Hashtbl.hash k land 3)) k v
  end)

(* One measured run: recorder at histograms level on the real clock; the
   GC window brackets exactly the throughput run (prefill included — the
   prefill allocates nodes either way, and the interning claim is about
   steady-state churn dominating it). *)
let measure (module D : Lf_workload.Runner.INT_DICT) ~ops ~seed =
  Recorder.set_level Recorder.Off;
  Recorder.reset ();
  Recorder.set_clock Recorder.Real;
  Recorder.set_level Recorder.Histograms;
  let before = Gc_attr.totals () in
  let r =
    Lf_workload.Runner.run_throughput
      (module D)
      ~domains:1 ~ops_per_domain:ops ~key_range:1024
      ~mix:{ insert_pct = 20; delete_pct = 20 }
      ~seed ()
  in
  let gc = Gc_attr.diff ~before (Gc_attr.totals ()) in
  Recorder.set_level Recorder.Off;
  let all = Lf_obs.Hist.create () in
  List.iter
    (fun (_, h) -> Lf_obs.Hist.merge_into ~into:all h)
    (Recorder.latencies ());
  Recorder.reset ();
  (r, gc, all)

let run_ablation () =
  Tables.subsection
    "A. descriptor interning ablation (1 domain, 20/20/60, merged ops, ns)";
  let ops = if !Bench_json.quick then 10_000 else 120_000 in
  let reps = if !Bench_json.quick then 2 else 3 in
  let widths = [ 14; 6; 9; 9; 9; 10; 10; 7; 7; 9 ] in
  Tables.row widths
    [
      "structure"; "reuse"; "p50"; "p99"; "p999"; "p9999"; "tail"; "minor";
      "major"; "mw/op";
    ];
  let list_reuse_tail = ref infinity in
  List.iter
    (fun (structure, dict_of) ->
      List.iter
        (fun reuse ->
          (* Warmup run (discarded): the first run on a fresh process pays
             one-time allocations (DLS slots, recorder state) that would
             otherwise be billed to whichever config runs first.  Then take
             the reps run with the lowest minor-word count — allocation is
             deterministic per run, so the minimum is the clean signal. *)
          ignore (measure (dict_of ~reuse) ~ops:(max 500 (ops / 20)) ~seed:17);
          let best = ref None in
          for rep = 1 to reps do
            let (_, gc, _) as m = measure (dict_of ~reuse) ~ops ~seed:41 in
            ignore rep;
            match !best with
            | Some (_, g, _) when g.Gc_attr.minor_words <= gc.Gc_attr.minor_words
              ->
                ()
            | _ -> best := Some m
          done;
          let r, gc, h = Option.get !best in
          let p q = Lf_obs.Hist.percentile h q in
          let tail = p 0.999 /. Float.max 1. (p 0.99) in
          let mw_per_op =
            gc.Gc_attr.minor_words /. float_of_int r.total_ops
          in
          if structure = "fr-list" && reuse then list_reuse_tail := tail;
          Tables.row widths
            [
              structure;
              (if reuse then "on" else "off");
              Printf.sprintf "%.0f" (p 0.5);
              Printf.sprintf "%.0f" (p 0.99);
              Printf.sprintf "%.0f" (p 0.999);
              Printf.sprintf "%.0f" (Lf_obs.Hist.p9999 h);
              Printf.sprintf "%.1fx" tail;
              string_of_int gc.Gc_attr.minor_collections;
              string_of_int gc.Gc_attr.major_collections;
              Printf.sprintf "%.1f" mw_per_op;
            ];
          Bench_json.emit_part ~exp:"exp22" ~part:"ablation"
            Bench_json.
              [
                ("structure", S structure);
                ("reuse", B reuse);
                ("domains", I r.domains);
                ("ops", I r.total_ops);
                ("elapsed_s", F r.elapsed_s);
                ("count", I (Lf_obs.Hist.count h));
                ("p50_ns", F (p 0.5));
                ("p99_ns", F (p 0.99));
                ("p999_ns", F (p 0.999));
                ("p9999_ns", F (Lf_obs.Hist.p9999 h));
                ("tail_ratio", F tail);
                ("gc_minor_collections", I gc.Gc_attr.minor_collections);
                ("gc_major_collections", I gc.Gc_attr.major_collections);
                ("gc_minor_words", F gc.Gc_attr.minor_words);
                ("gc_promoted_words", F gc.Gc_attr.promoted_words);
                ("minor_words_per_op", F mw_per_op);
              ])
        [ false; true ])
    [ ("fr-list", list_dict); ("fr-skiplist", skiplist_dict) ];
  Tables.note
    "PASS criterion: with reuse on, minor words/op drop vs the allocating \
     baseline and the list's p999 stays within ~20x of p99 (tail column).  \
     GC columns are [Gc_attr] deltas over the measured window (collection \
     counts from [Gc.quick_stat], words from the live allocation pointer).";
  !list_reuse_tail

(* ------------------------------------------------------------------ *)
(* Part B: step-neutrality in the simulator.                           *)

let sim_steps ~structure ~reuse ~seed =
  let ops =
    match structure with
    | "fr-list" ->
        let t = SimL.create_with ~use_flags:true ~reuse_descriptors:reuse () in
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> SimL.insert t k k);
            delete = (fun k -> SimL.delete t k);
            find = (fun k -> SimL.mem t k);
          }
    | _ ->
        let t = SimS.create_with ~reuse_descriptors:reuse () in
        (* Deterministic per-key tower heights: [SimS.insert] draws from a
           persistent domain-local RNG, so the reuse-on run (executed
           second) would see a different stream than the reuse-off run and
           the step counts would differ for RNG reasons, not reuse ones. *)
        let height k = 1 + (Hashtbl.hash k land 3) in
        Lf_workload.Sim_driver.
          {
            insert =
              (fun k -> SimS.insert_with_height t ~height:(height k) k k);
            delete = (fun k -> SimS.delete t k);
            find = (fun k -> SimS.mem t k);
          }
  in
  let key_range = 256 in
  let filled =
    Lf_workload.Sim_driver.prefill ~key_range ~count:64 ~seed:(seed + 1) ops
  in
  let per_proc = if !Bench_json.quick then 60 else 200 in
  (* The simulator runs on one real domain, so a [Gc_attr] delta
     around the run counts the real allocations of the simulated
     execution.  The two runs execute the exact same schedule (checked via
     [steps] below), so the off-minus-on word difference is precisely the
     descriptor allocation that interning removed — including every retry
     and helping path the contention of 8 processes produces. *)
  let before = Gc_attr.totals () in
  let r =
    Lf_workload.Sim_driver.run_mixed ~policy:(Lf_dsim.Sim.Random seed)
      ~initial_size:filled ~procs:8 ~ops_per_proc:per_proc ~key_range
      ~mix:{ insert_pct = 40; delete_pct = 40 }
      ~seed ops
  in
  let gc = Gc_attr.diff ~before (Gc_attr.totals ()) in
  (r.Lf_dsim.Sim.steps, 8 * per_proc, gc.Gc_attr.minor_words)

let run_step_neutrality () =
  Tables.subsection
    "B. step-neutrality + exact descriptor savings (simulator, 8 procs)";
  let widths = [ 14; 12; 12; 7; 11; 11 ] in
  Tables.row widths
    [ "structure"; "steps(off)"; "steps(on)"; "equal"; "mw/op(off)";
      "mw/op(on)" ];
  let all_equal = ref true in
  List.iter
    (fun structure ->
      (* Warmup: first-simulation one-time allocations (DLS, recorder)
         must not be billed to the reuse-off run. *)
      ignore (sim_steps ~structure ~reuse:false ~seed:3);
      let off, total, mw_off = sim_steps ~structure ~reuse:false ~seed:7 in
      let on, _, mw_on = sim_steps ~structure ~reuse:true ~seed:7 in
      let equal = off = on in
      if not equal then all_equal := false;
      let per_op w = w /. float_of_int total in
      Tables.row widths
        [
          structure;
          string_of_int off;
          string_of_int on;
          (if equal then "yes" else "NO");
          Printf.sprintf "%.1f" (per_op mw_off);
          Printf.sprintf "%.1f" (per_op mw_on);
        ];
      Bench_json.emit_part ~exp:"exp22" ~part:"sim_steps"
        Bench_json.
          [
            ("structure", S structure);
            ("steps_reuse_off", I off);
            ("steps_reuse_on", I on);
            ("ops", I total);
            ("steps_per_op_off", F (float_of_int off /. float_of_int total));
            ("equal", B equal);
            ("minor_words_per_op_off", F (per_op mw_off));
            ("minor_words_per_op_on", F (per_op mw_on));
            ("words_saved_per_op", F (per_op (mw_off -. mw_on)));
          ])
    [ "fr-list"; "fr-skiplist" ];
  Tables.note
    "PASS criterion: identical step counts — interning substitutes \
     physically-cached but value-identical descriptors, so the seeded \
     schedule (and therefore every C&S outcome) is unchanged — with lower \
     minor-heap words/op.  Since the two executions are step-identical, \
     the word difference is exactly the allocation interning removed.";
  !all_equal

let run () =
  Tables.section "EXP-22  Allocation pragmatics: descriptor interning, GC tail";
  let tail = run_ablation () in
  let steps_equal = run_step_neutrality () in
  Recorder.set_level Recorder.Off;
  Recorder.reset ();
  (tail, steps_equal)
