(* EXP-25: self-healing shards — time-to-recovery, goodput during the
   heal, and the staleness contract (DESIGN.md §15).

   EXP-23 established containment: a shard-targeted fault degrades only
   its own keyspace.  This experiment closes the loop — the supervisor
   watches per-shard health and evacuates slots off a persistently-sick
   shard by itself, so the service RECOVERS the lost keyspace without
   operator intervention.  The grid crosses two faults with two
   configurations:

   Faults (injected a third of the way into an open-loop window, at the
   victim shard, and never repaired by hand):
   - kill:  the victim's backend throws on every access — a dead
            process.  Rebalance alone cannot evacuate it (the copy
            would need the corpse to answer reads); only the victim
            slot's lagged replica can, via promotion.  Until the
            promotion lands, reads of the victim keyspace are served
            from the replica — every one tagged [Served_stale].
   - stall: every shared-memory access of the victim burns pause
            rounds (EXP-23's plan).  The shard is alive but sick; the
            supervisor evacuates its slot with a plain copy rebalance.

   Configurations: "supervised" (breaker containment + the supervisor
   ticking on its own domain, replicas for the kill fault) vs
   "containment-only" (EXP-23's endpoint: the breaker fails fast, but
   nobody moves the keyspace, and there is no replica to answer for
   the dead shard).

   Measurement: total goodput (served within the EXP-20/23 standard of
   20ms from arrival) per fixed time bucket across the window.
   Time-to-recovery (TTR) is the gap between the fault and the end of
   the first post-fault bucket whose goodput is back at >= 80% of the
   pre-fault per-bucket average; the tail ratio is the mean of the last
   five full buckets against that same baseline.

   PASS (full runs):
   - kill/supervised: at least one promotion completes, a TTR exists,
     and tail goodput >= 80% of pre-fault — the keyspace came back by
     itself;
   - stall/supervised: at least one heal completes, a TTR exists, and
     tail goodput >= 80% of pre-fault;
   - kill/supervised actually exercised the failover: > 0 stale-tagged
     reads served from the replica during the gap;
   - containment-only contrast: the unsupervised kill run's tail stays
     below the supervised one (the lost keyspace never returns);
   - staleness oracle, every run: the count of [Served_stale] outcomes
     observed by callers equals the router's replica-read counter —
     zero replica answers laundered into fresh [Served]. *)

open Lf_workload
module K = Lf_kernel.Ordered.Int
module Svc = Lf_svc.Svc
module Clock = Lf_svc.Clock
module Deadline = Lf_svc.Deadline
module Breaker = Lf_svc.Breaker
module Degrade = Lf_svc.Degrade
module Fault = Lf_fault.Fault
module FP = Lf_kernel.Fault_point
module Hash_ring = Lf_shard.Hash_ring
module Router = Lf_shard.Router
module Health = Lf_shard.Health
module Replica = Lf_shard.Replica
module Supervisor = Lf_shard.Supervisor

let workers = 2
let shards = 3
let key_range = 4096

(* Below the 2-worker capacity of this single-core box (~9k/s): in an
   overloaded regime, killing a shard RAISES survivor goodput (fail-fast
   frees capacity) and time-to-recovery is meaningless.  The question
   here is recovery of lost keyspace, not saturation behaviour — that is
   EXP-20/23's ground. *)
let rate = 6_000
let deadline_std_ms = 20
let mix = { Opgen.insert_pct = 20; delete_pct = 20 }
let window () = if !Bench_json.quick then 0.6 else 3.0
let bucket_ms () = if !Bench_json.quick then 30 else 50

let req_of_op = function
  | Opgen.Insert k -> Svc.Insert (k, k)
  | Opgen.Delete k -> Svc.Delete k
  | Opgen.Find k -> Svc.Find k

(* Per-shard fault seam (EXP-23's shape) plus a kill switch: [killed]
   makes every backend call throw, like a dead process. *)
type faulty = {
  f_backend : Router.backend;
  f_install : Fault.plan -> unit;
  f_uninstall : unit -> unit;
  f_killed : bool ref;
}

let mk_faulty ~ring i =
  let module FM = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem) in
  let module L = Lf_list.Fr_list.Make (K) (FM) in
  let t = L.create () in
  for k = 0 to key_range - 1 do
    if k land 1 = 0 && Hash_ring.shard_of ring k = i then ignore (L.insert t k k)
  done;
  let killed = ref false in
  let guard () = if !killed then failwith "shard dead" in
  {
    f_backend =
      {
        Router.insert = (fun k v -> guard (); L.insert t k v);
        delete = (fun k -> guard (); L.delete t k);
        find = (fun k -> guard (); L.find t k);
        batched = None;
      };
    f_install = FM.install;
    f_uninstall = (fun () -> FM.uninstall ());
    f_killed = killed;
  }

let stall_plan =
  Fault.make_plan ~seed:41
    [ { Fault.point = FP.Any; action = Stall 2; mode = Always; lane = None } ]

type fault = Kill | Stall

let fault_name = function Kill -> "kill" | Stall -> "stall"

type out = {
  o_pre : float;  (* pre-fault per-bucket goodput average *)
  o_ttr_ms : int;  (* -1 when goodput never recovered in-window *)
  o_tail : float;  (* tail per-bucket goodput / pre-fault average *)
  o_stale_served : int;  (* Served_stale outcomes seen by callers *)
  o_stale_router : int;  (* Router.stale_reads — must match *)
  o_served : int;
  o_failed : int;
  o_heals : int;
  o_promotions : int;
  o_aborts : int;
  o_buckets : int array;
  o_fault_bucket : int;
}

let run_one ~clock ~fault ~supervised =
  let ring = Hash_ring.create ~seed:13 ~shards () in
  let f = Array.init shards (mk_faulty ~ring) in
  let victim_slot = 0 in
  let victim = Hash_ring.owner ring victim_slot in
  let ms = Clock.ms clock in
  let svc_config _ =
    Svc.config ~clock
      (* The latency threshold separates the fault from the noise floor:
         a stalled op costs milliseconds, a healthy op microseconds even
         after a heal doubles a shard's list.  EXP-23's much tighter
         16us threshold would flap healthy breakers open under the
         stall's global contention (single core) and collapse goodput
         everywhere — a detection cascade, not containment. *)
      ~breaker:
        (Some
           (Breaker.config ~window:(ms 100) ~min_calls:8 ~failure_pct:50
              ~latency_threshold:(ms 1) ~open_for:(ms 100) ~probes:3 ()))
      ~degrade:(Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
      ()
  in
  (* Hedging is the kill fault's failover seam (dead backend -> replica,
     stale-tagged).  For the stall fault it is off, for EXP-23's reason:
     the raw backend IS the fault, and a hedge would re-pay the stall
     the breaker just contained. *)
  let router =
    Router.create ~hedge_reads:(fault = Kill) ~ring ~svc_config (fun i ->
        f.(i).f_backend)
  in
  (* The kill fault is only survivable with a replica of the victim's
     slot; the supervised run replicates it on the next shard over.
     Containment-only runs get no replica — that is the contrast. *)
  let reps =
    if supervised && fault = Kill then begin
      let r = Replica.create () in
      let h = Hashtbl.create 1024 in
      Replica.add_slot r ~slot:victim_slot
        ~on:((victim + 1) mod shards)
        ~store:
          {
            Replica.r_insert = (fun k v -> Hashtbl.replace h k v; true);
            r_delete =
              (fun k ->
                if Hashtbl.mem h k then (Hashtbl.remove h k; true) else false);
            r_find = (fun k -> Hashtbl.find_opt h k);
          };
      Router.attach_replicas router r;
      Some r
    end
    else None
  in
  ignore reps;
  let sup =
    if supervised then
      Some
        (* [shed_sick_pct 100] disables shedding-based sickness (the
           trigger is strict-greater): on this single-core box a GC or
           scheduling pause expires arrival-anchored deadlines on EVERY
           shard at once, and any rejected-fraction threshold would read
           that uniform spike as "all shards sick" and evacuate healthy
           shards — possibly onto the future victim.  Both faults here
           are breaker-detected (h_ok), which is per-shard by
           construction. *)
        (Supervisor.create
           (Supervisor.config ~poll_every:(ms 15) ~sick_after:2
              ~healthy_after:1 ~move_budget:2 ~backoff_base:(ms 50)
              ~backoff_max:(ms 400) ~shed_sick_pct:100 ~apply_budget:8192
              ~clock ~key_range ())
           ~shards)
    else None
  in
  let w = window () in
  let bms = bucket_ms () in
  let bucket_ns = bms * 1_000_000 in
  let nb = int_of_float (w *. 1000.) / bms in
  let buckets = Array.init (nb + 4) (fun _ -> Atomic.make 0) in
  let stale_served = Atomic.make 0 in
  let start = Clock.now clock in
  let fault_ns = Atomic.make 0 in
  let stop = Atomic.make false in
  let faulter =
    Domain.spawn (fun () ->
        Unix.sleepf (w /. 3.);
        Atomic.set fault_ns (Clock.now clock);
        match fault with
        | Kill -> f.(victim).f_killed := true
        | Stall -> f.(victim).f_install stall_plan)
  in
  (* The healer domain is the serve loop's stand-in: it TICKS the
     supervisor; all pacing decisions are clock-tick comparisons inside
     the policy (the sleep here is the harness's, not the policy's).
     It arms only after a grace period: the open loop's cold start
     (domain spawn, allocator warmup) expires arrival deadlines on
     every shard at once, and a supervisor watching that would evacuate
     healthy shards — possibly onto the future victim. *)
  let healer =
    Option.map
      (fun sup ->
        Domain.spawn (fun () ->
            Unix.sleepf (w /. 6.);
            while not (Atomic.get stop) do
              ignore (Supervisor.run_tick sup router);
              Unix.sleepf 0.002
            done))
      sup
  in
  let std = ms deadline_std_ms in
  let serve ~arrival_ns ~queue_depth op =
    let dl = Deadline.at (arrival_ns + std) in
    let good () =
      if Clock.now clock - arrival_ns <= std then begin
        let b = (arrival_ns - start) / bucket_ns in
        if b >= 0 && b < Array.length buckets then Atomic.incr buckets.(b)
      end
    in
    match Router.call router ~deadline:dl ~queue_depth (req_of_op op) with
    | Svc.Served ok -> good (); `Served ok
    | Svc.Served_stale (ok, _) ->
        Atomic.incr stale_served;
        good ();
        `Served ok
    | Svc.Rejected _ -> `Rejected
    | Svc.Failed _ -> `Failed
  in
  let r =
    Runner.run_open_loop ~workers ~rate ~window_s:w ~key_range ~mix ~seed:29
      ~serve ()
  in
  Domain.join faulter;
  Atomic.set stop true;
  Option.iter Domain.join healer;
  (match fault with Stall -> f.(victim).f_uninstall () | Kill -> ());
  let good = Array.map Atomic.get buckets in
  let fb = (Atomic.get fault_ns - start) / bucket_ns in
  (* Pre-fault baseline: the second half of the pre-fault buckets.  The
     first ~100ms of an open-loop run is cold start (domain spawn,
     allocator warmup) during which arrival-anchored deadlines expire in
     bursts; folding that into the baseline would flatter recovery. *)
  let pre_lo = max 1 (fb / 2) and pre_hi = fb - 1 in
  let pre =
    if pre_hi < pre_lo then 0.
    else begin
      let s = ref 0 in
      for b = pre_lo to pre_hi do s := !s + good.(b) done;
      float_of_int !s /. float_of_int (pre_hi - pre_lo + 1)
    end
  in
  let last_full = min (nb - 1) (Array.length good - 1) in
  let recovered = ref (-1) in
  for b = last_full downto fb + 1 do
    if float_of_int good.(b) >= 0.8 *. pre then recovered := b
  done;
  let ttr_ms =
    if !recovered < 0 || pre <= 0. then -1
    else
      ((!recovered + 1) * bms)
      - ((Atomic.get fault_ns - start) / 1_000_000)
  in
  let tail =
    let lo = max (fb + 1) (last_full - 4) in
    let s = ref 0 and n = ref 0 in
    for b = lo to last_full do s := !s + good.(b); incr n done;
    if !n = 0 || pre <= 0. then 0.
    else float_of_int !s /. float_of_int !n /. pre
  in
  let sup_stats = Option.map Supervisor.stats sup in
  Option.iter
    (fun sup ->
      List.iter (fun l -> Tables.note "  supervisor: %s" l)
        (Supervisor.journal sup))
    sup;
  {
    o_pre = pre;
    o_ttr_ms = ttr_ms;
    o_tail = tail;
    o_stale_served = Atomic.get stale_served;
    o_stale_router = Router.stale_reads router;
    o_served = r.Runner.o_served;
    o_failed = r.Runner.o_failed;
    o_heals =
      (match sup_stats with
      | Some s -> s.Supervisor.heals_done
      | None -> 0);
    o_promotions = Router.promotions router;
    o_aborts = Router.aborts router;
    o_buckets = good;
    o_fault_bucket = fb;
  }

let run () =
  Tables.section
    "EXP-25  Self-healing shards: time-to-recovery + staleness contract";
  let clock = Clock.real () in
  Tables.row [ 7; 12; 10; 8; 8; 7; 7; 7; 7 ]
    [
      "fault"; "config"; "pre/bkt"; "ttr_ms"; "tail"; "heals"; "promo";
      "stale"; "aborts";
    ];
  let outs = Hashtbl.create 8 in
  List.iter
    (fun supervised ->
      List.iter
        (fun fault ->
          let o = run_one ~clock ~fault ~supervised in
          Hashtbl.replace outs (fault_name fault, supervised) o;
          let config = if supervised then "supervised" else "containment" in
          Tables.row [ 7; 12; 10; 8; 8; 7; 7; 7; 7 ]
            [
              fault_name fault;
              config;
              Printf.sprintf "%.1f" o.o_pre;
              (if o.o_ttr_ms < 0 then "never" else string_of_int o.o_ttr_ms);
              Printf.sprintf "%.2f" o.o_tail;
              string_of_int o.o_heals;
              string_of_int o.o_promotions;
              string_of_int o.o_stale_served;
              string_of_int o.o_aborts;
            ];
          Bench_json.emit_part ~exp:"exp25" ~part:"recovery"
            Bench_json.[
              ("fault", S (fault_name fault));
              ("config", S config);
              ("pre_goodput_per_bucket", F o.o_pre);
              ("ttr_ms", I o.o_ttr_ms);
              ("tail_goodput_ratio", F o.o_tail);
              ("heals_done", I o.o_heals);
              ("promotions", I o.o_promotions);
              ("migration_aborts", I o.o_aborts);
              ("stale_served", I o.o_stale_served);
              ("stale_router", I o.o_stale_router);
              ("stale_fraction",
               F
                 (if o.o_served = 0 then 0.
                  else float_of_int o.o_stale_served /. float_of_int o.o_served));
              ("served", I o.o_served);
              ("failed", I o.o_failed);
              ("bucket_ms", I (bucket_ms ()));
              ("fault_bucket", I o.o_fault_bucket);
            ];
          Array.iteri
            (fun b g ->
              Bench_json.emit_part ~exp:"exp25" ~part:"timeline"
                Bench_json.[
                  ("fault", S (fault_name fault));
                  ("config", S config);
                  ("bucket", I b);
                  ("t_ms", I (b * bucket_ms ()));
                  ("good", I g);
                ])
            o.o_buckets)
        [ Kill; Stall ])
    [ true; false ];
  let failures = ref [] in
  let need cond msg = if not cond then failures := msg :: !failures in
  (* The staleness oracle holds even in quick mode: it is an invariant,
     not a measurement. *)
  Hashtbl.iter
    (fun (fault, supervised) o ->
      need
        (o.o_stale_served = o.o_stale_router)
        (Printf.sprintf
           "%s/%s: %d stale outcomes at callers vs %d replica reads — a \
            replica answer was laundered into a fresh Served"
           fault
           (if supervised then "supervised" else "containment")
           o.o_stale_served o.o_stale_router))
    outs;
  if not !Bench_json.quick then begin
    let o fault supervised = Hashtbl.find outs (fault, supervised) in
    let ks = o "kill" true and ss = o "stall" true in
    let ku = o "kill" false in
    need (ks.o_promotions >= 1) "kill/supervised: no replica promotion completed";
    need (ks.o_ttr_ms >= 0) "kill/supervised: goodput never recovered";
    need
      (ks.o_tail >= 0.8)
      (Printf.sprintf "kill/supervised: tail goodput %.2f < 0.8x pre-fault"
         ks.o_tail);
    need (ks.o_stale_served > 0)
      "kill/supervised: replica failover never served (no stale reads)";
    need (ss.o_heals >= 1) "stall/supervised: no heal completed";
    need (ss.o_ttr_ms >= 0) "stall/supervised: goodput never recovered";
    need
      (ss.o_tail >= 0.8)
      (Printf.sprintf "stall/supervised: tail goodput %.2f < 0.8x pre-fault"
         ss.o_tail);
    need
      (ku.o_tail < ks.o_tail)
      (Printf.sprintf
         "contrast lost: containment-only kill tail %.2f >= supervised %.2f"
         ku.o_tail ks.o_tail);
    Tables.note
      "contrast: kill tail goodput ratio %.2f supervised vs %.2f \
       containment-only (TTR %s ms vs %s)"
      ks.o_tail ku.o_tail
      (if ks.o_ttr_ms < 0 then "never" else string_of_int ks.o_ttr_ms)
      (if ku.o_ttr_ms < 0 then "never" else string_of_int ku.o_ttr_ms)
  end;
  (match !failures with
  | [] ->
      Tables.note
        "PASS: the supervisor restores >= 80%% of pre-fault goodput on its";
      Tables.note
        "own, promotion revives the dead shard's keyspace, and every";
      Tables.note "replica-served read is stale-tagged."
  | fs ->
      List.iter (fun f -> Tables.note "FAIL: %s" f) fs;
      Tables.note "acceptance criteria NOT met (see rows above)");
  !failures = []
