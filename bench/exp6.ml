(* EXP-6: expected O(log n) search cost of the skip list (Section 4, [12]),
   against the O(n) cost of a plain list.

   Measured in essential steps in the simulator (single process), so the
   numbers are architecture-independent.  The Pugh sequential skip list is
   the reference; the lock-free skip list should match its shape, and the
   linked list grows linearly. *)

module SLS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module Pugh = Lf_skiplist.Seq_skiplist.Int
module Sim = Lf_dsim.Sim

let searches = 200

(* Average essential steps of a search over a structure of n keys. *)
let fr_skiplist_cost n =
  let t = SLS.create_with ~max_level:20 () in
  let rng = Lf_kernel.Splitmix.create 7 in
  ignore
    (Sim.run
       [|
         (fun _ ->
           for i = 1 to n do
             ignore
               (SLS.insert_with_height t
                  ~height:
                    (let rec h acc =
                       if acc < 20 && Lf_kernel.Splitmix.bool rng then
                         h (acc + 1)
                       else acc
                     in
                     h 1)
                  i i)
           done);
       |]);
  let res =
    Sim.run
      [|
        (fun _ ->
          let r = Lf_kernel.Splitmix.create 99 in
          for _ = 1 to searches do
            Sim.op_begin ~n;
            ignore (SLS.mem t (1 + Lf_kernel.Splitmix.int r n));
            Sim.op_end ()
          done);
      |]
  in
  float_of_int (Sim.total_essential res) /. float_of_int searches

let fr_list_cost n =
  let t = FRS.create () in
  ignore
    (Sim.run
       [|
         (fun _ ->
           for i = 1 to n do
             ignore (FRS.insert t i i)
           done);
       |]);
  let res =
    Sim.run
      [|
        (fun _ ->
          let r = Lf_kernel.Splitmix.create 99 in
          for _ = 1 to searches do
            Sim.op_begin ~n;
            ignore (FRS.mem t (1 + Lf_kernel.Splitmix.int r n));
            Sim.op_end ()
          done);
      |]
  in
  float_of_int (Sim.total_essential res) /. float_of_int searches

let pugh_cost n =
  let t = Pugh.create_with ~max_level:20 ~seed:7 () in
  for i = 1 to n do
    ignore (Pugh.insert t i i)
  done;
  Pugh.reset_steps t;
  let r = Lf_kernel.Splitmix.create 99 in
  for _ = 1 to searches do
    ignore (Pugh.mem t (1 + Lf_kernel.Splitmix.int r n))
  done;
  float_of_int (Pugh.steps t) /. float_of_int searches

let run () =
  Tables.section "EXP-6  Search cost vs n: skip list O(log n), list O(n)";
  let widths = [ 7; 16; 14; 12 ] in
  Tables.row widths [ "n"; "fr-skiplist"; "pugh (seq)"; "fr-list" ];
  let sl_pts = ref [] and li_pts = ref [] in
  List.iter
    (fun n ->
      let sl = fr_skiplist_cost n in
      let pu = pugh_cost n in
      let li = if n <= 4096 then fr_list_cost n else nan in
      sl_pts := (log (float_of_int n) /. log 2.0, sl) :: !sl_pts;
      if n <= 4096 then li_pts := (float_of_int n, li) :: !li_pts;
      Bench_json.emit_part ~exp:"exp6" ~part:"search_cost"
        (Bench_json.
           [
             ("n", I n);
             ("fr_skiplist_steps", F sl);
             ("pugh_steps", F pu);
           ]
        @ (if Float.is_nan li then []
           else Bench_json.[ ("fr_list_steps", F li) ]));
      Tables.row widths
        [
          string_of_int n;
          Printf.sprintf "%.1f" sl;
          Printf.sprintf "%.1f" pu;
          (if Float.is_nan li then "-" else Printf.sprintf "%.1f" li);
        ])
    [ 16; 64; 256; 1024; 4096; 16384 ];
  let _, slope, r2 = Lf_kernel.Stats.linear_fit (Array.of_list !sl_pts) in
  let li_slope, li_r2 = Lf_kernel.Stats.loglog_slope (Array.of_list !li_pts) in
  Tables.note
    "fr-skiplist cost vs log2(n): %.2f steps/level (linear fit, r2=%.3f)"
    slope r2;
  Tables.note "fr-list cost vs n: log-log slope %.2f (r2=%.3f) - linear"
    li_slope li_r2;
  Bench_json.emit_part ~exp:"exp6" ~part:"fits"
    Bench_json.
      [
        ("skiplist_steps_per_level", F slope);
        ("skiplist_r2", F r2);
        ("list_loglog_slope", F li_slope);
        ("list_r2", F li_r2);
      ];
  (slope, r2)
