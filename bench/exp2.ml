(* EXP-2: the Section 3.1 adversarial execution.

   Construction (verbatim from the paper): insert n keys; one process P_q
   repeatedly deletes the last node of the list while processes
   P_1 .. P_{q-1} attempt to insert new nodes at the end.  In each round the
   deleter marks the last node right after the inserters have located their
   insertion position but before any of them performs its C&S.

   Harris's list restarts every failed inserter from the head, so each round
   costs Omega(q * n) and the average cost per operation is
   Omega(n-bar * c-bar).  The Fomitchev-Ruppert list recovers through one
   backlink, so the same schedule costs O(n + q) per round and the average
   stays O(n-bar + c-bar).

   Engine: Lf_scenarios.Scenarios.tail_adversary (shared with the
   regression tests that lock this separation in). *)

module S = Lf_scenarios.Scenarios

let run () =
  Tables.section
    "EXP-2  Section 3.1 adversary: inserters at the tail vs a tail deleter";
  Tables.note
    "per-round inserter recovery cost: Harris/Michael restart from the head";
  Tables.note
    "(cost ~ n), Fomitchev-Ruppert follows one backlink (cost ~ const).";
  print_newline ();
  let widths = [ 5; 3; 7; 14; 14; 14; 10 ] in
  Tables.row widths
    [ "n"; "q"; "rounds"; "fr rec/round"; "ha rec/round"; "mi rec/round"; "ha/fr" ];
  let shape = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun q ->
          let rounds = n / 2 in
          let _, fr_rec, _ = S.tail_adversary ~n ~q ~rounds S.fr_list_target in
          let _, ha_rec, _ =
            S.tail_adversary ~n ~q ~rounds S.harris_list_target
          in
          let _, mi_rec, _ =
            S.tail_adversary ~n ~q ~rounds S.michael_list_target
          in
          shape := (n, q, fr_rec, ha_rec) :: !shape;
          Bench_json.emit_part ~exp:"exp2" ~part:"adversary"
            Bench_json.
              [
                ("n", I n);
                ("q", I q);
                ("rounds", I rounds);
                ("fr_rec_per_round", F fr_rec);
                ("harris_rec_per_round", F ha_rec);
                ("michael_rec_per_round", F mi_rec);
              ];
          Tables.row widths
            [
              string_of_int n;
              string_of_int q;
              string_of_int rounds;
              Printf.sprintf "%.1f" fr_rec;
              Printf.sprintf "%.1f" ha_rec;
              Printf.sprintf "%.1f" mi_rec;
              Printf.sprintf "%.1fx" (ha_rec /. fr_rec);
            ])
        [ 2; 4; 8 ])
    [ 32; 64; 128; 256 ];
  let pts which =
    !shape
    |> List.filter_map (fun (n, q, fr, ha) ->
           if q = 4 then Some (float_of_int n, which fr ha) else None)
    |> Array.of_list
  in
  let fr_slope, _ = Lf_kernel.Stats.loglog_slope (pts (fun fr _ -> fr)) in
  let ha_slope, _ = Lf_kernel.Stats.loglog_slope (pts (fun _ ha -> ha)) in
  Tables.note "growth of recovery cost with n (q=4, log-log slope):";
  Tables.note "  fomitchev-ruppert: %.2f (paper: ~0, constant)" fr_slope;
  Tables.note "  harris:            %.2f (paper: ~1, linear in n)" ha_slope;
  Bench_json.emit_part ~exp:"exp2" ~part:"slopes"
    Bench_json.[ ("fr_slope", F fr_slope); ("harris_slope", F ha_slope) ];
  (fr_slope, ha_slope)
