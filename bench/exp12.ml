(* EXP-12: priority queue built on the skip list (Lotan-Shavit [13] /
   Sundell-Tsigas [14] context) vs the lock-based binary heap.

   Workload: each domain alternates pushes and pop_mins over random
   priorities (the standard 50/50 hold pattern).  Single-core machine:
   numbers compare overhead, not scaling. *)

let run_queue name push pop ~domains ~ops =
  let t0 = Unix.gettimeofday () in
  let work did =
    let rng = Lf_kernel.Splitmix.create (did * 71) in
    for i = 1 to ops do
      if i land 1 = 0 then push (Lf_kernel.Splitmix.int rng 1_000_000) i
      else ignore (pop ())
    done
  in
  let ds = List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  let dt = Unix.gettimeofday () -. t0 in
  (name, float_of_int (domains * ops) /. dt /. 1000.)

let run () =
  Tables.section "EXP-12  Priority queue: lock-free skip list vs locked heap";
  let widths = [ 14; 4; 12 ] in
  Tables.row widths [ "impl"; "dom"; "kops/s" ];
  List.iter
    (fun domains ->
      let emit_row (name, rate) =
        Bench_json.emit ~exp:"exp12"
          Bench_json.
            [ ("impl", S name); ("domains", I domains); ("kops_per_s", F rate) ];
        Tables.row widths
          [ name; string_of_int domains; Printf.sprintf "%.0f" rate ]
      in
      let q = Lf_pqueue.Pqueue.Stamped_atomic.create () in
      emit_row
        (run_queue "fr-pqueue"
           (fun p v -> Lf_pqueue.Pqueue.Stamped_atomic.push q p v)
           (fun () -> Lf_pqueue.Pqueue.Stamped_atomic.pop_min q)
           ~domains ~ops:30_000);
      let h = Lf_baselines.Binary_heap.Locked.create () in
      emit_row
        (run_queue "locked-heap"
           (fun p v -> Lf_baselines.Binary_heap.Locked.push h p v)
           (fun () -> Lf_baselines.Binary_heap.Locked.pop_min h)
           ~domains ~ops:30_000))
    [ 1; 2; 4 ];
  Tables.note
    "the lock-free queue additionally guarantees that a stalled domain";
  Tables.note "never blocks the others (see examples/priority_scheduler.ml)."
