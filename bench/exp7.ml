(* EXP-7: tower heights (Section 4, last paragraph).

   (a) The heights of full towers follow the geometric(1/2) distribution of
       the coin flips.
   (b) "the number of incomplete towers at any time is bounded by the point
       contention": we sample a concurrent simulated execution at regular
       intervals and compare the number of non-deleted towers whose current
       height is below their drawn height against the number of operations
       in progress. *)

module SL = Lf_skiplist.Fr_skiplist.Atomic_int
module SLS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module Sim = Lf_dsim.Sim

let histogram_part () =
  Tables.subsection "(a) height distribution of 100k towers";
  let t = SL.create_with ~max_level:20 () in
  for i = 1 to 100_000 do
    ignore (SL.insert t i i)
  done;
  let h = SL.height_histogram t in
  let total = Array.fold_left ( + ) 0 h in
  let widths = [ 7; 10; 10; 9 ] in
  Tables.row widths [ "height"; "observed"; "expected"; "obs/exp" ];
  for lvl = 1 to 14 do
    let expected = float_of_int total *. (0.5 ** float_of_int lvl) in
    Tables.row widths
      [
        string_of_int lvl;
        string_of_int h.(lvl);
        Printf.sprintf "%.0f" expected;
        (if expected >= 1.0 then
           Printf.sprintf "%.2f" (float_of_int h.(lvl) /. expected)
         else "-");
      ]
  done;
  let p, tv = Lf_kernel.Stats.geometric_fit h in
  Tables.note "geometric fit: p = %.4f (coin = 0.5), total variation = %.4f" p
    tv;
  Bench_json.emit_part ~exp:"exp7" ~part:"heights"
    Bench_json.[ ("towers", I total); ("geometric_p", F p); ("tv", F tv) ];
  (p, tv)

let incomplete_part () =
  Tables.subsection
    "(b) incomplete towers vs point contention (sampled, simulator)";
  let widths = [ 4; 14; 14; 12 ] in
  Tables.row widths [ "q"; "max incompl"; "max active"; "violations" ];
  let results = ref [] in
  List.iter
    (fun q ->
      let t = SLS.create_with ~max_level:8 () in
      let intended : (int, int) Hashtbl.t = Hashtbl.create 512 in
      let body pid =
        let rng = Lf_kernel.Splitmix.create (pid + 7) in
        let my_keys = ref [] in
        for i = 0 to 59 do
          if Lf_kernel.Splitmix.int rng 4 < 3 || !my_keys = [] then begin
            let k = (pid * 1000) + i in
            let h = 1 + Lf_kernel.Splitmix.int rng 6 in
            Hashtbl.replace intended k h;
            Sim.op_begin ~n:0;
            if SLS.insert_with_height t ~height:h k k then
              my_keys := k :: !my_keys;
            Sim.op_end ()
          end
          else begin
            match !my_keys with
            | k :: rest ->
                my_keys := rest;
                Hashtbl.remove intended k;
                Sim.op_begin ~n:0;
                ignore (SLS.delete t k);
                Sim.op_end ()
            | [] -> ()
          end
        done
      in
      let max_incomplete = ref 0 in
      let max_active = ref 0 in
      let violations = ref 0 in
      let sample st =
        (* Current height of every live (root unmarked) tower. *)
        let actual : (int, int) Hashtbl.t = Hashtbl.create 512 in
        Sim.quiet (fun () ->
            let live = List.map fst (SLS.to_list t) in
            List.iter (fun k -> Hashtbl.replace actual k 0) live;
            for l = 1 to 8 do
              List.iter
                (fun k ->
                  match Hashtbl.find_opt actual k with
                  | Some h when l > h -> Hashtbl.replace actual k l
                  | _ -> ())
                (SLS.keys_at_level t l)
            done);
        let incomplete = ref 0 in
        Hashtbl.iter
          (fun k lvl ->
            match Hashtbl.find_opt intended k with
            | Some want when lvl < want && lvl > 0 -> incr incomplete
            | _ -> ())
          actual;
        let active = Sim.active_ops st in
        if !incomplete > active then incr violations;
        if !incomplete > !max_incomplete then max_incomplete := !incomplete;
        if active > !max_active then max_active := active
      in
      let tick = ref 0 in
      let on_step st _pid =
        incr tick;
        if !tick mod 97 = 0 then sample st
      in
      ignore
        (Sim.run ~policy:(Sim.Random (q * 13)) ~on_step
           (Array.init q (fun _ -> body)));
      results := (q, !max_incomplete, !violations) :: !results;
      Bench_json.emit_part ~exp:"exp7" ~part:"incomplete"
        Bench_json.
          [
            ("q", I q);
            ("max_incomplete", I !max_incomplete);
            ("max_active", I !max_active);
            ("violations", I !violations);
          ];
      Tables.row widths
        [
          string_of_int q;
          string_of_int !max_incomplete;
          string_of_int !max_active;
          string_of_int !violations;
        ])
    [ 2; 4; 8 ];
  Tables.note
    "violations = samples where #incomplete towers > #ops in progress";
  Tables.note "(paper: bounded by point contention, so this must be 0)";
  !results

let run () =
  Tables.section "EXP-7  Skip-list tower heights and incomplete towers";
  let fit = histogram_part () in
  let inc = incomplete_part () in
  (fit, inc)
