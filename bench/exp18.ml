(* EXP-18: graceful degradation under injected faults (DESIGN.md §8).

   Lock-freedom is a liveness property: a crashed or stalled process must
   not stop the others.  This experiment makes it measurable with the
   lf_fault layer (deterministic fault plans executed by Fault_mem) and the
   chaos drivers' starvation watchdogs.

   Part A (wall-clock, Runner.run_chaos): survivor throughput with one of
   q=4 lanes crashed mid-protocol or stalled at every C&S, for the FR list
   and skip list and the Harris list (fault-injected memories) vs the
   lock-based baselines with the same lane holding the structure's lock for
   the whole window.  PASS: FR/Harris survivors keep > 0 throughput and no
   non-faulted lane starves; coarse-list and locked-skiplist collapse to
   <= 5% of their own baseline with the lock held and trip the watchdog.

   Part B (simulator, Explore.run_crash): exhaustive single-crash sweep -
   crash either process at EVERY scheduling point of a small scenario on
   the FR list and skip list; after each crash a survivor sweep must drain
   the structure through the residue and leave it clean.  PASS: zero
   failures, sweep not truncated.

   Part C (simulator): steps-to-recover - a lone deleter crashes between
   TRYFLAG and TRYMARK (fault plan: crash at its first mark-cas); the
   essential steps of the survivor operation that completes the orphaned
   deletion, vs the same delete with no residue.

   Part D (wall-clock): bounded exponential backoff (create_with
   ~use_backoff:true) under a spurious-C&S-failure storm
   (cas-fail:cas:p=0.3:burst=4), reported on/off for the FR list and skip
   list. *)

open Lf_workload
module K = Lf_kernel.Ordered.Int
module FP = Lf_kernel.Fault_point
module Fault = Lf_fault.Fault

(* Fault-injecting wall-clock stack, over the counting memory so chaos
   reports carry the helping counters (survivors' recovery work). *)
module FMem = Lf_fault.Fault_mem.Make (Lf_kernel.Counting_mem)
module FL = Lf_list.Fr_list.Make (K) (FMem)
module FS = Lf_skiplist.Fr_skiplist.Make (K) (FMem)
module FH = Lf_baselines.Harris_list.Make (K) (FMem)

(* Simulator stacks for Parts B and C. *)
module SimL = Lf_list.Fr_list.Make (K) (Lf_dsim.Sim_mem)
module SimS = Lf_skiplist.Fr_skiplist.Make (K) (Lf_dsim.Sim_mem)
module SimFM = Lf_fault.Fault_mem.Make (Lf_dsim.Sim_mem)
module SimFL = Lf_list.Fr_list.Make (K) (SimFM)

let sample_faulted () =
  [
    ("injected", List.length (FMem.injected ()));
    ("helps", (Lf_kernel.Counting_mem.grand_total ()).Lf_kernel.Counters.helps);
  ]

(* ------------------------------------------------------------------ *)
(* Part A: wall-clock survivor throughput, one lane faulted.           *)

let domains = 4
let faulted_lane = 0

type scenario = {
  sc_label : string;
  sc_plan : Fault.plan option;  (* installed into FMem (lock-free subjects) *)
  sc_victim : (((unit -> unit) -> unit) -> unit -> unit) option;
      (* lock-based subjects: wraps the structure's hold-the-lock hook *)
}

let window_s () = if !Bench_json.quick then 0.12 else 0.25
let budget_s = 0.05

(* One lane crashed mid-protocol: it dies at its first access after a
   successful TRYFLAG — the flag it just published is orphaned and the
   survivors must complete the deletion (HELPFLAGGED/HELPMARKED).  The
   Harris list has no flags, so its victim dies right after a successful
   TRYMARK instead, leaving a marked node for the survivors to excise. *)
let crash_plan =
  Fault.make_plan ~seed:7
    [
      Fault.crash_at ~lane:faulted_lane 1
        (FP.After_cas_ok Lf_kernel.Mem_event.Flagging);
    ]

let crash_plan_harris =
  Fault.make_plan ~seed:7
    [
      Fault.crash_at ~lane:faulted_lane 1
        (FP.After_cas_ok Lf_kernel.Mem_event.Marking);
    ]

(* One lane stalled: a pause storm before every C&S it attempts. *)
let stall_plan =
  Fault.make_plan ~seed:7
    [
      {
        Fault.point = FP.Any_cas;
        action = Fault.Stall 64;
        mode = Fault.Always;
        lane = Some faulted_lane;
      };
    ]

let lockfree_scenarios ~harris =
  [
    { sc_label = "none"; sc_plan = None; sc_victim = None };
    {
      sc_label = (if harris then "crash@mark" else "crash@flag");
      sc_plan = Some (if harris then crash_plan_harris else crash_plan);
      sc_victim = None;
    };
    { sc_label = "stall@cas"; sc_plan = Some stall_plan; sc_victim = None };
  ]

let lockbased_scenarios =
  [
    { sc_label = "none"; sc_plan = None; sc_victim = None };
    {
      sc_label = "held-lock";
      sc_plan = None;
      sc_victim =
        Some
          (fun hold () ->
            (* The holder "crashes": it sits on the lock past the whole
               window (domains cannot be killed, so a crash is a stall
               longer than anyone's patience). *)
            hold (fun () -> Unix.sleepf (window_s () +. 0.08)));
    };
  ]

type subject = {
  su_name : string;
  su_lock_based : bool;
  (* fresh structure -> (insert, delete, find, hold-the-lock hook) *)
  su_make :
    unit ->
    (int -> bool) * (int -> bool) * (int -> bool) * ((unit -> unit) -> unit);
}

let no_hold _ = failwith "not a lock-based structure"

let subjects =
  [
    {
      su_name = "fr-list";
      su_lock_based = false;
      su_make =
        (fun () ->
          let t = FL.create () in
          ( (fun k -> FL.insert t k k),
            (fun k -> FL.delete t k),
            (fun k -> FL.mem t k),
            no_hold ));
    };
    {
      su_name = "fr-skiplist";
      su_lock_based = false;
      su_make =
        (fun () ->
          let t = FS.create () in
          ( (fun k -> FS.insert t k k),
            (fun k -> FS.delete t k),
            (fun k -> FS.mem t k),
            no_hold ));
    };
    {
      su_name = "harris-list";
      su_lock_based = false;
      su_make =
        (fun () ->
          let t = FH.create () in
          ( (fun k -> FH.insert t k k),
            (fun k -> FH.delete t k),
            (fun k -> FH.mem t k),
            no_hold ));
    };
    {
      su_name = "lazy-list";
      su_lock_based = true;
      su_make =
        (fun () ->
          let t = Lf_baselines.Lazy_list.Int.create () in
          ( (fun k -> Lf_baselines.Lazy_list.Int.insert t k k),
            (fun k -> Lf_baselines.Lazy_list.Int.delete t k),
            (fun k -> Lf_baselines.Lazy_list.Int.mem t k),
            Lf_baselines.Lazy_list.Int.with_head_locked t ));
    };
    {
      su_name = "coarse-list";
      su_lock_based = true;
      su_make =
        (fun () ->
          let t = Lf_baselines.Coarse_list.Int.create () in
          ( (fun k -> Lf_baselines.Coarse_list.Int.insert t k k),
            (fun k -> Lf_baselines.Coarse_list.Int.delete t k),
            (fun k -> Lf_baselines.Coarse_list.Int.mem t k),
            Lf_baselines.Coarse_list.Int.with_lock_held t ));
    };
    {
      su_name = "locked-skiplist";
      su_lock_based = true;
      su_make =
        (fun () ->
          let t = Lf_skiplist.Locked_skiplist.Int.create () in
          ( (fun k -> Lf_skiplist.Locked_skiplist.Int.insert t k k),
            (fun k -> Lf_skiplist.Locked_skiplist.Int.delete t k),
            (fun k -> Lf_skiplist.Locked_skiplist.Int.mem t k),
            Lf_skiplist.Locked_skiplist.Int.with_lock_held t ));
    };
  ]

let run_scenario su sc : Runner.chaos_report =
  let insert, delete, find, hold = su.su_make () in
  (match sc.sc_plan with Some p -> FMem.install p | None -> ());
  let victims =
    match sc.sc_victim with
    | Some wrap -> [ (faulted_lane, wrap hold) ]
    | None -> []
  in
  let sample = if su.su_lock_based then fun () -> [] else sample_faulted in
  let r =
    Runner.run_chaos ~victims ~budget_s ~window_s:(window_s ()) ~sample
      ~name:su.su_name ~insert ~delete ~find ~domains ~key_range:256
      ~mix:Opgen.mixed ~seed:42 ()
  in
  FMem.uninstall ();
  r

(* Starvation among lanes that were NOT deliberately faulted: the faulted
   lane exceeding its own budget is the fault, not a liveness failure. *)
let innocent_starved (r : Runner.chaos_report) =
  List.filter (fun (lane, _) -> lane <> faulted_lane) r.c_starved

let part_a () =
  Tables.subsection
    (Printf.sprintf
       "Part A: survivor throughput, lane %d faulted (%d domains, %.2fs \
        window, %.2fs budget)"
       faulted_lane domains (window_s ()) budget_s);
  let widths = [ 16; 11; 5; 11; 9; 9; 9; 8 ] in
  Tables.row widths
    [
      "impl"; "scenario"; "surv"; "surv-ops/s"; "starved"; "crashed";
      "injected"; "helps";
    ];
  let failures = ref [] in
  let baselines = Hashtbl.create 8 in
  List.iter
    (fun su ->
      let scenarios =
        if su.su_lock_based then lockbased_scenarios
        else lockfree_scenarios ~harris:(su.su_name = "harris-list")
      in
      List.iter
        (fun sc ->
          let r = run_scenario su sc in
          let starved = innocent_starved r in
          let lookup key =
            match List.assoc_opt key r.c_counters with Some v -> v | None -> 0
          in
          Tables.row widths
            [
              su.su_name;
              sc.sc_label;
              string_of_int r.c_survivors;
              Printf.sprintf "%.0f" r.c_survivor_ops_per_s;
              (if starved = [] then "-"
               else string_of_int (List.length starved));
              (if r.c_crashed = [] then "-"
               else String.concat "," (List.map string_of_int r.c_crashed));
              string_of_int (lookup "injected");
              string_of_int (lookup "helps");
            ];
          if sc.sc_label = "none" then
            Hashtbl.replace baselines su.su_name r.c_survivor_ops_per_s
          else begin
            let base =
              try Hashtbl.find baselines su.su_name with Not_found -> 0.
            in
            if su.su_lock_based then begin
              (* Lock-based collapse: the lazy list keeps its wait-free
                 finds, so only the global-lock structures must go to ~0
                 (the few ops landing before the victim grabs the lock are
                 allowed 10% of baseline). *)
              if
                su.su_name <> "lazy-list"
                && base > 0.
                && r.c_survivor_ops_per_s > 0.10 *. base
              then
                failures :=
                  Printf.sprintf
                    "%s/%s: survivors kept %.0f ops/s (> 10%% of %.0f \
                     baseline)"
                    su.su_name sc.sc_label r.c_survivor_ops_per_s base
                  :: !failures;
              if not r.c_watchdog_tripped then
                failures :=
                  Printf.sprintf "%s/%s: watchdog did not trip" su.su_name
                    sc.sc_label
                  :: !failures
            end
            else begin
              if r.c_survivor_ops = 0 then
                failures :=
                  Printf.sprintf "%s/%s: survivors made no progress"
                    su.su_name sc.sc_label
                  :: !failures;
              if starved <> [] then
                failures :=
                  Printf.sprintf "%s/%s: non-faulted lane starved" su.su_name
                    sc.sc_label
                  :: !failures
            end
          end;
          Bench_json.emit_part ~exp:"exp18" ~part:"chaos"
            Bench_json.
              [
                ("impl", S su.su_name);
                ("scenario", S sc.sc_label);
                ("domains", I r.c_domains);
                ("survivors", I r.c_survivors);
                ("survivor_ops", I r.c_survivor_ops);
                ("survivor_ops_per_s", F r.c_survivor_ops_per_s);
                ("starved_innocent", I (List.length starved));
                ("watchdog", B r.c_watchdog_tripped);
                ("crashed_lanes", I (List.length r.c_crashed));
                ("injected", I (lookup "injected"));
                ("helps", I (lookup "helps"));
              ])
        scenarios;
      print_newline ())
    subjects;
  !failures

(* ------------------------------------------------------------------ *)
(* Part B: exhaustive single-crash sweep in the simulator.             *)

let drain_list t keys =
  let sweep _ =
    (* Two rounds: the first drains through the residue (helping any
       orphaned deletion it meets), the second scrubs leftovers. *)
    for _ = 1 to 2 do
      List.iter (fun k -> ignore (SimL.delete t k)) keys
    done
  in
  ignore (Lf_dsim.Sim.run [| sweep |]);
  Lf_dsim.Sim.quiet (fun () ->
      if SimL.length t <> 0 then Error "survivor sweep left elements behind"
      else
        match SimL.Debug.check_now t with
        | Error e -> Error ("post-sweep: " ^ e)
        | Ok () -> (
            try
              SimL.check_invariants t;
              Ok ()
            with Failure m -> Error ("post-sweep: " ^ m)))

let mk_list_scenario () =
  let t = SimL.create () in
  Lf_dsim.Sim.quiet (fun () ->
      List.iter (fun k -> ignore (SimL.insert t k k)) [ 10; 20; 30 ]);
  let bodies =
    [|
      (fun _ -> ignore (SimL.delete t 20));
      (fun _ ->
        ignore (SimL.insert t 15 15);
        ignore (SimL.delete t 30));
    |]
  in
  let oracle ~crashed:_ =
    match Lf_dsim.Sim.quiet (fun () -> SimL.Debug.check_now t) with
    | Error e -> Error ("post-crash: " ^ e)
    | Ok () -> drain_list t [ 10; 15; 20; 30 ]
  in
  (bodies, oracle)

let drain_skiplist t keys =
  let sweep _ =
    for _ = 1 to 2 do
      List.iter (fun k -> ignore (SimS.delete t k)) keys;
      List.iter (fun k -> ignore (SimS.mem t k)) keys
    done
  in
  ignore (Lf_dsim.Sim.run [| sweep |]);
  Lf_dsim.Sim.quiet (fun () ->
      if SimS.length t <> 0 then Error "survivor sweep left elements behind"
      else
        try
          SimS.check_invariants t;
          Ok ()
        with Failure m -> Error ("post-sweep: " ^ m))

let mk_skiplist_scenario () =
  let t = SimS.create_with ~max_level:4 () in
  Lf_dsim.Sim.quiet (fun () ->
      ignore (SimS.insert_with_height t ~height:3 10 10);
      ignore (SimS.insert_with_height t ~height:2 20 20);
      ignore (SimS.insert_with_height t ~height:4 30 30));
  let bodies =
    [|
      (fun _ -> ignore (SimS.delete t 20));
      (fun _ ->
        ignore (SimS.insert_with_height t ~height:2 15 15);
        ignore (SimS.delete t 30));
    |]
  in
  let oracle ~crashed:_ = drain_skiplist t [ 10; 15; 20; 30 ] in
  (bodies, oracle)

let part_b () =
  Tables.subsection
    "Part B: exhaustive single-crash sweep (crash either proc at every step)";
  let widths = [ 14; 11; 10; 10 ] in
  Tables.row widths [ "structure"; "schedules"; "failures"; "truncated" ];
  let failures = ref [] in
  List.iter
    (fun (name, mk) ->
      let out =
        Lf_dsim.Explore.run_crash ~max_preemptions:0 ~max_crashes:1
          ~max_steps:200_000 mk
      in
      Tables.row widths
        [
          name;
          string_of_int out.c_schedules_run;
          string_of_int (List.length out.c_failures);
          string_of_bool out.c_truncated;
        ];
      List.iteri
        (fun i (prefix, msg) ->
          if i < 3 then
            Tables.note "%s failure: %s [%s]" name msg
              (String.concat " "
                 (List.map Lf_dsim.Explore.choice_to_string prefix)))
        out.c_failures;
      if out.c_failures <> [] then
        failures :=
          Printf.sprintf "%s: %d crash schedules failed" name
            (List.length out.c_failures)
          :: !failures;
      if out.c_truncated then
        failures := Printf.sprintf "%s: sweep truncated" name :: !failures;
      Bench_json.emit_part ~exp:"exp18" ~part:"crash_sweep"
        Bench_json.
          [
            ("structure", S name);
            ("schedules", I out.c_schedules_run);
            ("failures", I (List.length out.c_failures));
            ("truncated", B out.c_truncated);
          ])
    [ ("fr-list", mk_list_scenario); ("fr-skiplist", mk_skiplist_scenario) ];
  !failures

(* ------------------------------------------------------------------ *)
(* Part C: steps to recover from a deleter crashed between TRYFLAG and  *)
(* TRYMARK.                                                            *)

let delete_steps ~residue : int * bool =
  let t = SimFL.create () in
  Lf_dsim.Sim.quiet (fun () ->
      List.iter (fun k -> ignore (SimFL.insert t k k)) [ 1; 2; 3; 4; 5 ]);
  if residue then begin
    (* The victim deleter dies at its first TRYMARK attempt: the flag on
       node 2 is published, node 3 is not yet marked. *)
    SimFM.install
      (Fault.make_plan ~seed:1
         [ Fault.crash_at 1 (FP.Cas Lf_kernel.Mem_event.Marking) ]);
    ignore
      (Lf_dsim.Sim.run
         [|
           (fun _ ->
             try ignore (SimFL.delete t 3)
             with Fault.Crashed _ -> () (* the lane is dead *));
         |]);
    SimFM.uninstall ()
  end;
  (* The survivor deletes the same key: with residue it finds the
     predecessor already flagged, so its own TRYFLAG loses and it helps
     the orphaned deletion to completion instead. *)
  let survivor_result = ref false in
  let res =
    Lf_dsim.Sim.run
      [|
        (fun _ ->
          Lf_dsim.Sim.op_begin ~n:5;
          survivor_result := SimFL.delete t 3;
          Lf_dsim.Sim.op_end ());
      |]
  in
  let steps =
    match res.ops with
    | [ o ] -> o.essential
    | os -> List.fold_left (fun acc (o : Lf_dsim.Sim.op_record) -> acc + o.essential) 0 os
  in
  let gone =
    Lf_dsim.Sim.quiet (fun () ->
        SimFL.check_invariants t;
        not (SimFL.mem t 3) && SimFL.length t = 4)
  in
  (steps, gone)

let part_c () =
  Tables.subsection
    "Part C: steps to recover an orphaned deletion (crash between TRYFLAG \
     and TRYMARK)";
  let widths = [ 26; 12; 10 ] in
  Tables.row widths [ "case"; "steps"; "clean" ];
  let base_steps, base_ok = delete_steps ~residue:false in
  let rec_steps, rec_ok = delete_steps ~residue:true in
  Tables.row widths
    [ "delete, no residue"; string_of_int base_steps; string_of_bool base_ok ];
  Tables.row widths
    [
      "delete through residue";
      string_of_int rec_steps;
      string_of_bool rec_ok;
    ];
  Tables.note "steps-to-recover: %+d essential steps over the clean delete"
    (rec_steps - base_steps);
  Bench_json.emit_part ~exp:"exp18" ~part:"recover"
    Bench_json.
      [
        ("baseline_steps", I base_steps);
        ("recovery_steps", I rec_steps);
        ("clean", B (base_ok && rec_ok));
      ];
  if base_ok && rec_ok then []
  else [ "part C: recovery left the structure dirty" ]

(* ------------------------------------------------------------------ *)
(* Part D: backoff under a spurious-C&S-failure storm.                 *)

(* Run under run_chaos rather than run_throughput: a storm can leave a
   spuriously-failed unlink pending at the end of the window (a flagged
   node at quiescence that the next operation would have helped), which a
   strict quiescent check_invariants rightly rejects. *)
let storm_plan =
  Fault.make_plan ~seed:3 [ Fault.spurious ~p:0.3 ~burst:4 FP.Any_cas ]

let part_d () =
  Tables.subsection
    "Part D: exponential backoff under a C&S-failure storm (p=0.3, burst 4)";
  let widths = [ 22; 10; 10; 8 ] in
  Tables.row widths [ "impl"; "ops/s"; "injected"; "helps" ];
  List.iter
    (fun (name, backoff, make_ops) ->
      FMem.install storm_plan;
      let insert, delete, find = make_ops () in
      let r =
        Runner.run_chaos ~budget_s ~window_s:(window_s ()) ~sample:sample_faulted
          ~name ~insert ~delete ~find ~domains:2 ~key_range:512
          ~mix:Opgen.mixed ~seed:46 ()
      in
      FMem.uninstall ();
      let lookup key =
        match List.assoc_opt key r.c_counters with Some v -> v | None -> 0
      in
      Tables.row widths
        [
          name;
          Printf.sprintf "%.0f" r.c_survivor_ops_per_s;
          string_of_int (lookup "injected");
          string_of_int (lookup "helps");
        ];
      Bench_json.emit_part ~exp:"exp18" ~part:"backoff"
        Bench_json.
          [
            ("impl", S name);
            ("domains", I 2);
            ("backoff", B backoff);
            ("ops_per_s", F r.c_survivor_ops_per_s);
            ("injected", I (lookup "injected"));
            ("helps", I (lookup "helps"));
          ])
    [
      ( "fr-list(storm)",
        false,
        fun () ->
          let t = FL.create () in
          ( (fun k -> FL.insert t k k),
            (fun k -> FL.delete t k),
            fun k -> FL.mem t k ) );
      ( "fr-list(storm,bo)",
        true,
        fun () ->
          let t = FL.create_with ~use_backoff:true ~use_flags:true () in
          ( (fun k -> FL.insert t k k),
            (fun k -> FL.delete t k),
            fun k -> FL.mem t k ) );
      ( "fr-skiplist(storm)",
        false,
        fun () ->
          let t = FS.create () in
          ( (fun k -> FS.insert t k k),
            (fun k -> FS.delete t k),
            fun k -> FS.mem t k ) );
      ( "fr-skiplist(storm,bo)",
        true,
        fun () ->
          let t = FS.create_with ~use_backoff:true () in
          ( (fun k -> FS.insert t k k),
            (fun k -> FS.delete t k),
            fun k -> FS.mem t k ) );
    ];
  print_newline ()

let run () =
  Tables.section "EXP-18  Graceful degradation under crashes and stalls";
  let fa = part_a () in
  let fb = part_b () in
  let fc = part_c () in
  let failures = fa @ fb @ fc in
  part_d ();
  (match failures with
  | [] ->
      Tables.note
        "PASS: FR survivors keep making progress past any single crash or";
      Tables.note
        "stall; global-lock baselines collapse and trip the watchdog."
  | fs ->
      List.iter (fun f -> Tables.note "FAIL: %s" f) fs;
      Tables.note "acceptance criteria NOT met (see rows above)");
  failures = []
