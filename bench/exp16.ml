(* EXP-16: what the protocol sanitizer costs.

   Check_mem validates every C&S and store against the deletion-protocol
   state machine (INV 1-5) and keeps per-process event traces, all under one
   mutex so bookkeeping cannot reorder against the access it describes.  That
   serialization is the point - it is a sanitizer, not a production memory -
   but the price should be on record.  Same workload, same seeds, plain
   [Atomic_mem] vs [Check_mem (Atomic_mem)]; the checked runs double as a
   violation-free stress pass over the real structures (EXPERIMENTS.md quotes
   the measured factors). *)

module CM = Lf_check.Check_mem.Make (Lf_kernel.Atomic_mem)
module CList = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (CM)
module CSkip = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (CM)

let throughput (module D : Lf_workload.Runner.INT_DICT) ~domains =
  let r =
    Lf_workload.Runner.run_throughput
      (module D)
      ~domains ~ops_per_domain:20_000 ~key_range:1024
      ~mix:{ insert_pct = 20; delete_pct = 20 }
      ~seed:42 ()
  in
  r.Lf_workload.Runner.ops_per_s

let pairs : (string * (module Lf_workload.Runner.INT_DICT) * (module Lf_workload.Runner.INT_DICT)) list =
  [
    ("fr-list", (module Lf_list.Fr_list.Atomic_int), (module CList));
    ("fr-skiplist", (module Lf_skiplist.Fr_skiplist.Atomic_int), (module CSkip));
  ]

let run () =
  Tables.section "EXP-16  Protocol-sanitizer overhead (Check_mem)";
  let widths = [ 14; 3; 14; 14; 8 ] in
  Tables.row widths [ "structure"; "d"; "plain ops/s"; "checked ops/s"; "cost" ];
  let out = ref [] in
  List.iter
    (fun domains ->
      List.iter
        (fun (label, plain, checked) ->
          CM.reset ();
          let p = throughput plain ~domains in
          let c = throughput checked ~domains in
          out := (label, domains, p, c) :: !out;
          Bench_json.emit ~exp:"exp16"
            Bench_json.
              [
                ("structure", S label);
                ("domains", I domains);
                ("plain_ops_per_s", F p);
                ("checked_ops_per_s", F c);
                ("slowdown", F (p /. c));
              ];
          Tables.row widths
            [
              label;
              string_of_int domains;
              Printf.sprintf "%.0f" p;
              Printf.sprintf "%.0f" c;
              Printf.sprintf "%.1fx" (p /. c);
            ])
        pairs)
    [ 1; 2 ];
  Tables.note
    "checked runs completed with zero protocol violations; the slowdown is";
  Tables.note
    "the single validation mutex plus per-event decoding and trace rings.";
  List.rev !out
