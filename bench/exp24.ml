(* EXP-24: end-to-end request tracing — overhead pricing, tail-spike
   attribution, and the anomaly-triggered flight recorder (DESIGN.md
   §14).

   The claims under test:

   Part A (overhead): the span machinery has three levels.  Off must be
   free — the call sites stay in place, every operation pays a couple
   of flag loads, and the span path allocates nothing (measured twice:
   words/op over a real Svc workload, and a strict span-only microcheck
   whose budget is 64 minor words over 10k iterations).  Counters pays
   for per-domain counting but never builds trees; Spans pays the full
   price.  The table prices all three against the same workload so the
   cost of turning tracing on is a number, not a guess.

   Part B (tail-spike attribution): the point of exemplars is that a
   latency outlier in the histogram leads somewhere.  Under a manual
   clock, a scripted run injects one seeded spike — once as a slow
   backend call, once as a slow retry wait — and the harness walks the
   evidence chain the operator would: worst exemplar bucket -> trace id
   -> completed span tree -> dominant phase (self-time argmax).  PASS:
   the dominant phase names the injected cause ("attempt" for the slow
   backend, "retry-wait" for the slow backoff), and because every input
   is seeded, running the script twice yields byte-identical flight
   dumps — the replay property the sim seam promises.

   Part C (flight recorder on anomaly): a sharded router with tracing
   on; shard 1's writes are killed, its breaker opens, and the dump
   that fires must land on disk as a JSON bundle naming the victim plus
   a Chrome-trace file that loads (checked structurally).  PASS: both
   files exist, the bundle carries the reason and the victim shard id,
   and the trace validates. *)

module Span = Lf_obs.Span
module Flight = Lf_obs.Flight
module Svc = Lf_svc.Svc
module Clock = Lf_svc.Clock
module Retry = Lf_svc.Retry
module Breaker = Lf_svc.Breaker
module Degrade = Lf_svc.Degrade
module Hash_ring = Lf_shard.Hash_ring
module Router = Lf_shard.Router
module Health = Lf_shard.Health
module AI = Lf_list.Fr_list.Atomic_int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || at (i + 1))
  in
  at 0

(* ------------------------------------------------------------------ *)
(* Part A: what does each level cost?                                   *)

let a_key_range = 1024
let a_ops () = if !Bench_json.quick then 20_000 else 200_000

let level_name = function
  | Span.Off -> "off"
  | Span.Counters -> "counters"
  | Span.Spans -> "spans"

(* The same call sites at every level: the level gates the cost, not
   the code path — exactly how lib/svc and bin/lfdict hold them. *)
let run_level ~clock level =
  Span.reset ();
  Span.set_level level;
  let t = AI.create () in
  for k = 0 to a_key_range - 1 do
    if k land 1 = 0 then ignore (AI.insert t k k)
  done;
  let ops =
    {
      Svc.insert = (fun k v -> AI.insert t k v);
      delete = AI.delete t;
      find = (fun k -> Option.is_some (AI.find t k));
    }
  in
  let svc = Svc.create (Svc.config ~clock ()) ops in
  let n = a_ops () in
  let now () = if Span.spans_on () then Clock.now clock else 0 in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let k = i * 7919 land (a_key_range - 1) in
    let req =
      match i mod 4 with
      | 0 -> Svc.Insert (k, i)
      | 1 -> Svc.Delete k
      | _ -> Svc.Find k
    in
    let ctx = Span.root ~name:"request" ~now:(now ()) in
    let out = Svc.call svc ~ctx req in
    Span.end_ ctx ~now:(now ())
      ~ok:(match out with Svc.Served _ -> true | _ -> false)
  done;
  let secs = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  Span.set_level Span.Off;
  (float_of_int n /. secs, words /. float_of_int n)

(* The strict form of the Off claim: the span calls themselves, with
   the Svc pipeline (which allocates outcomes by design) out of the
   frame.  The lazy-tick closures live outside the loop, as they do at
   the production call sites. *)
let off_zero_alloc () =
  Span.set_level Span.Off;
  let iters = 10_000 in
  let tick = ref 0 in
  let now () = !tick in
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    tick := i;
    let r = Span.root ~name:"request" ~now:i in
    let c = Span.begin_ r ~name:"child" ~now:i in
    if Span.active c then Span.event c ~now:i (Span.Note "x");
    Span.end_ c ~now:i ~ok:true;
    Span.end_ r ~now:i ~ok:true;
    Span.note_cas_fail ~now Lf_kernel.Mem_event.Marking;
    Span.op_begin ~name:"insert" ~key:i ~now;
    Span.op_end ~ok:true ~now
  done;
  Gc.minor_words () -. w0

let part_a ~clock =
  Tables.subsection "Part A: per-request cost of each tracing level";
  Tables.row [ 10; 12; 12; 10 ] [ "level"; "ops/s"; "words/op"; "vs off" ];
  let measured =
    List.map
      (fun lvl ->
        let rate, wpo = run_level ~clock lvl in
        (lvl, rate, wpo))
      [ Span.Off; Span.Counters; Span.Spans ]
  in
  let off_rate =
    match measured with (_, r, _) :: _ -> r | [] -> assert false
  in
  List.iter
    (fun (lvl, rate, wpo) ->
      Tables.row [ 10; 12; 12; 10 ]
        [
          level_name lvl;
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.2f" wpo;
          Printf.sprintf "%.2fx" (off_rate /. rate);
        ];
      Bench_json.emit_part ~exp:"exp24" ~part:"overhead"
        Bench_json.[
          ("level", S (level_name lvl));
          ("ops", I (a_ops ()));
          ("ops_per_s", F rate);
          ("minor_words_per_op", F wpo);
          ("slowdown_vs_off", F (off_rate /. rate));
        ])
    measured;
  let zw = off_zero_alloc () in
  Tables.note "off-level span-path microcheck: %.0f minor words / 10k iters" zw;
  Bench_json.emit_part ~exp:"exp24" ~part:"overhead"
    Bench_json.[
      ("level", S "off-microcheck");
      ("minor_words_per_10k", F zw);
      ("zero_alloc", S (string_of_bool (zw <= 64.)));
    ];
  let failures = ref [] in
  if zw > 64. then
    failures :=
      Printf.sprintf "overhead: Off span path allocated %.0f words / 10k ops" zw
      :: !failures;
  !failures

(* ------------------------------------------------------------------ *)
(* Part B: one seeded spike; the exemplar chain must name its cause.    *)

type spike = Slow_backend | Slow_retry

let spike_name = function
  | Slow_backend -> "slow-backend"
  | Slow_retry -> "slow-retry"

let expected_phase = function
  | Slow_backend -> "attempt"
  | Slow_retry -> "retry-wait"

let b_requests = 64
let b_spike_at = 40

(* The whole run is a function of the script: manual clock, seeded
   jitter, fixed spike index.  Returns the evidence the operator would
   pull plus the serialized dumps for the replay check. *)
let run_spike mode =
  Span.reset ();
  Span.set_level Span.Spans;
  let clock, advance = Clock.manual () in
  let i_req = ref 0 in
  let find _ =
    let spiking = !i_req = b_spike_at in
    (match mode with
    | Slow_backend -> advance (if spiking then 800 else 2)
    | Slow_retry ->
        advance 2;
        if spiking then failwith "transient");
    true
  in
  let ops = { Svc.insert = (fun _ _ -> true); delete = (fun _ -> true); find } in
  let cfg =
    Svc.config ~clock ~seed:11
      ~retry:(Some (Retry.policy ~max_attempts:2 ~base_delay:4 ()))
      ~retryable:(fun _ -> true)
      ~backoff:(fun d -> advance (d + 600))
      ()
  in
  let svc = Svc.create cfg ops in
  for i = 0 to b_requests - 1 do
    i_req := i;
    let ctx = Span.root ~name:"request" ~now:(Clock.now clock) in
    let out = Svc.call svc ~ctx (Svc.Find i) in
    Span.end_ ctx ~now:(Clock.now clock)
      ~ok:(match out with Svc.Served _ -> true | _ -> false);
    (* clear the spike flag for the retry attempt of the next request *)
    i_req := -1;
    advance 1
  done;
  (* The operator's walk: worst bucket -> exemplar -> span tree. *)
  let worst =
    List.fold_left
      (fun acc e -> match acc with Some w when w.Span.ex_le >= e.Span.ex_le -> acc | _ -> Some e)
      None (Span.exemplars ())
  in
  let verdict =
    match worst with
    | None -> Error "no exemplars recorded"
    | Some e -> (
        match Span.find_trace e.Span.ex_trace with
        | None -> Error "exemplar trace id resolves to no retained tree"
        | Some tr -> (
            match Span.well_formed tr with
            | Error err -> Error ("tree ill-formed: " ^ err)
            | Ok () -> Ok (e, Span.dominant_phase tr)))
  in
  let dump =
    Flight.dump_string ~reason:"tail-spike"
      ~meta:[ ("mode", spike_name mode) ]
      ()
  in
  let chrome = Flight.chrome_string () in
  Span.set_level Span.Off;
  (verdict, dump, chrome)

let part_b () =
  Tables.subsection
    "Part B: tail-spike attribution via exemplar -> span tree";
  Tables.row [ 14; 10; 14; 14; 9 ]
    [ "spike"; "worst le"; "dominant"; "expected"; "replay" ];
  let failures = ref [] in
  List.iter
    (fun mode ->
      let v1, d1, c1 = run_spike mode in
      let _, d2, c2 = run_spike mode in
      let replay_ok = String.equal d1 d2 && String.equal c1 c2 in
      let chrome_ok =
        match Lf_obs.Chrome_trace.check c1 with Ok () -> true | Error _ -> false
      in
      let le, phase, attributed =
        match v1 with
        | Ok (e, phase) ->
            (string_of_int e.Span.ex_le, phase,
             String.equal phase (expected_phase mode))
        | Error err -> ("-", "ERROR: " ^ err, false)
      in
      Tables.row [ 14; 10; 14; 14; 9 ]
        [
          spike_name mode;
          le;
          phase;
          expected_phase mode;
          (if replay_ok then "byte-eq" else "DIFFERS");
        ];
      Bench_json.emit_part ~exp:"exp24" ~part:"tail-spike"
        Bench_json.[
          ("mode", S (spike_name mode));
          ("requests", I b_requests);
          ("worst_le", S le);
          ("dominant_phase", S phase);
          ("expected_phase", S (expected_phase mode));
          ("attributed", S (string_of_bool attributed));
          ("replay_identical", S (string_of_bool replay_ok));
          ("chrome_valid", S (string_of_bool chrome_ok));
        ];
      (* Deterministic, so these hold in quick mode too. *)
      let need cond msg =
        if not cond then
          failures := Printf.sprintf "tail-spike %s: %s" (spike_name mode) msg :: !failures
      in
      need attributed
        (Printf.sprintf "dominant phase %S, expected %S" phase
           (expected_phase mode));
      need replay_ok "two seeded executions did not dump byte-identically";
      need chrome_ok "chrome trace failed structural validation")
    [ Slow_backend; Slow_retry ];
  !failures

(* ------------------------------------------------------------------ *)
(* Part C: anomaly dump — a killed shard must leave evidence on disk.   *)

let c_shards = 3
let c_victim = 1
let c_dir = Filename.concat "bench/results" "exp24-flight"

let mkdir_p d =
  List.fold_left
    (fun parent seg ->
      let p = if parent = "" then seg else Filename.concat parent seg in
      (try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      p)
    ""
    (String.split_on_char '/' d)
  |> ignore

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let part_c () =
  Tables.subsection "Part C: flight dump when a shard's breaker opens";
  Span.reset ();
  Span.set_level Span.Spans;
  let clock, advance = Clock.manual () in
  let ring = Hash_ring.create ~seed:3 ~shards:c_shards () in
  let killed = Array.make c_shards false in
  let backend i =
    let h = Hashtbl.create 64 in
    {
      Router.insert =
        (fun k v ->
          if killed.(i) then failwith "shard down";
          if Hashtbl.mem h k then false
          else begin
            Hashtbl.replace h k v;
            true
          end);
      delete =
        (fun k ->
          if killed.(i) then failwith "shard down";
          if Hashtbl.mem h k then begin
            Hashtbl.remove h k;
            true
          end
          else false);
      find = (fun k -> Hashtbl.find_opt h k);
      batched = None;
    }
  in
  let svc_config _ =
    Svc.config ~clock
      ~retryable:(fun _ -> false)
      ~breaker:
        (Some
           (Breaker.config ~window:1_000_000 ~min_calls:2 ~failure_pct:50
              ~open_for:1_000_000 ~probes:1 ()))
      ~degrade:
        (Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
      ()
  in
  let router =
    Router.create ~hedge_reads:false ~ring ~svc_config backend
  in
  killed.(c_victim) <- true;
  (* Traced writes against the victim until its breaker opens — the
     anomaly poll (as in lfdict serve) is [Health.open_breakers]. *)
  let k = ref 0 and budget = ref 200 in
  while Health.open_breakers router = [] && !budget > 0 do
    if Hash_ring.shard_of ring !k = c_victim then begin
      let ctx = Span.root ~name:"request" ~now:(Clock.now clock) in
      let out = Router.call router ~ctx (Svc.Insert (!k, !k)) in
      Span.end_ ctx ~now:(Clock.now clock)
        ~ok:(match out with Svc.Served _ -> true | _ -> false);
      advance 1;
      decr budget
    end;
    incr k
  done;
  let open_shards = Health.open_breakers router in
  mkdir_p c_dir;
  let json_path, trace_path =
    Flight.dump ~dir:c_dir ~reason:"shard-kill"
      ~meta:[ ("shard", string_of_int c_victim) ]
      ()
  in
  Span.set_level Span.Off;
  let bundle = read_file json_path in
  let chrome_ok =
    match Lf_obs.Chrome_trace.check (read_file trace_path) with
    | Ok () -> true
    | Error _ -> false
  in
  let names_victim =
    contains bundle "\"reason\":\"shard-kill\""
    && contains bundle (Printf.sprintf "\"shard\":\"%d\"" c_victim)
  in
  Tables.note "victim breaker open on shards %s; dumped %s + %s"
    (String.concat "," (List.map string_of_int open_shards))
    json_path trace_path;
  Bench_json.emit_part ~exp:"exp24" ~part:"flight"
    Bench_json.[
      ("victim", I c_victim);
      ("breaker_open", S (string_of_bool (open_shards = [ c_victim ])));
      ("bundle", S json_path);
      ("trace", S trace_path);
      ("names_victim", S (string_of_bool names_victim));
      ("chrome_valid", S (string_of_bool chrome_ok));
    ];
  let failures = ref [] in
  let need cond msg =
    if not cond then failures := ("flight: " ^ msg) :: !failures
  in
  need (open_shards = [ c_victim ])
    (Printf.sprintf "expected breaker open on shard %d only, got [%s]" c_victim
       (String.concat ";" (List.map string_of_int open_shards)));
  need (names_victim) "dump bundle does not name the reason and victim shard";
  need chrome_ok "dumped chrome trace failed structural validation";
  !failures

let run () =
  Tables.section
    "EXP-24  Request tracing: overhead, tail attribution, flight recorder";
  let clock = Clock.real () in
  let fa = part_a ~clock in
  let fb = part_b () in
  let fc = part_c () in
  let failures = fa @ fb @ fc in
  (match failures with
  | [] ->
      Tables.note
        "PASS: Off costs nothing, the worst exemplar's span tree names the";
      Tables.note
        "injected cause, replays dump byte-identically, and a killed shard";
      Tables.note "leaves a flight bundle on disk."
  | fs ->
      List.iter (fun f -> Tables.note "FAIL: %s" f) fs;
      Tables.note "acceptance criteria NOT met (see rows above)");
  failures = []
