(* EXP-23: sharded dictionary service — capacity scaling and per-shard
   failure containment (DESIGN.md §13).

   lib/shard routes every key through a seeded consistent-hash ring to
   one of N dictionary shards, each behind its own lib/svc pipeline.
   The claims under test:

   Part A (capacity scaling): N shards of the FR linked list over a
   partitioned keyspace.  On this single-core machine extra shards buy
   nothing from parallelism; they win because each shard holds ~1/N of
   the resident keys and the list's search cost is O(n) — the sharded
   service does algorithmically less work per request.  Saturated
   open-loop capacity is measured at 1, 2 and 4 shards.  PASS (full
   runs): capacity(4 shards) >= 2x capacity(1 shard).

   Part B (blast radius): 4 shards, each over its OWN fault-injecting
   memory (one Fault_mem functor instantiation per shard), so a fault
   plan targets exactly one shard's keyspace.  Scenarios: baseline (no
   fault), stall (every shared access of shard 0's memory burns pause
   rounds), hotspot (90% of traffic walks fresh ascending keys owned by
   shard 0, so its list balloons while the others stay put).  Each
   scenario runs "contained" (per-shard breaker with full fast-fail
   while open, arrival-anchored deadlines) and "unprotected" (bare
   pipeline).  Goodput is per shard: completions within 20ms of
   arrival, classified by owning shard.  PASS (full runs): with
   containment on, the victim's breaker opens, and the healthy shards
   keep >= 90% of their baseline goodput (stall; for the hotspot, whose
   arrival mix is itself the attack, >= 90% of the baseline
   served-within-standard ratio).  The unprotected rows are the
   contrast: one stalled shard drags every keyspace down.

   Part C (rebalance under load): 3 shards; a third of the way into an
   open-loop window, slot 0's whole keyspace is handed to shard 1 while
   workers keep issuing routed operations.  Afterwards the conservation
   oracle sweeps the key range: every present key lives in exactly one
   shard's backend, and that shard is the router's current owner —
   nothing duplicated, nothing stranded, nothing silently dropped.
   PASS: keys moved > 0, zero Failed outcomes, oracle holds. *)

open Lf_workload
module K = Lf_kernel.Ordered.Int
module Svc = Lf_svc.Svc
module Clock = Lf_svc.Clock
module Deadline = Lf_svc.Deadline
module Breaker = Lf_svc.Breaker
module Degrade = Lf_svc.Degrade
module Fault = Lf_fault.Fault
module FP = Lf_kernel.Fault_point
module Hash_ring = Lf_shard.Hash_ring
module Router = Lf_shard.Router
module Health = Lf_shard.Health
module AI = Lf_list.Fr_list.Atomic_int

let workers = 2
let deadline_std_ms = 20 (* the goodput standard, as in EXP-20 *)

let req_of_op = function
  | Opgen.Insert k -> Svc.Insert (k, k)
  | Opgen.Delete k -> Svc.Delete k
  | Opgen.Find k -> Svc.Find k

let key_of = function
  | Opgen.Insert k | Opgen.Delete k | Opgen.Find k -> k

(* Partitioned prefill: shard [i] holds the even keys the ring assigns
   to it — 50% fill of exactly its own keyspace, deterministically. *)
let prefill_partition ~key_range ~ring ~shard insert =
  for k = 0 to key_range - 1 do
    if k land 1 = 0 && Hash_ring.shard_of ring k = shard then ignore (insert k)
  done

let verdict_of = function
  | Svc.Served ok | Svc.Served_stale (ok, _) -> `Served ok
  | Svc.Rejected _ -> `Rejected
  | Svc.Failed _ -> `Failed

(* ------------------------------------------------------------------ *)
(* Part A: capacity scaling with shard count.                          *)

let a_key_range = 16384
let a_mix = { Opgen.insert_pct = 20; delete_pct = 20 }
let a_window () = if !Bench_json.quick then 0.12 else 0.3
let a_shard_counts = [ 1; 2; 4 ]

let mk_plain_backend ~ring ~key_range i : Router.backend =
  let t = AI.create () in
  prefill_partition ~key_range ~ring ~shard:i (fun k -> AI.insert t k k);
  {
    Router.insert = (fun k v -> AI.insert t k v);
    delete = AI.delete t;
    find = AI.find t;
    batched = None;
  }

let part_a ~clock =
  Tables.subsection
    "Part A: saturated capacity vs shard count (partitioned keyspace)";
  Tables.row [ 7; 9; 9; 9; 12 ]
    [ "shards"; "offered"; "handled"; "served"; "capacity/s" ];
  let caps =
    List.map
      (fun shards ->
        let ring = Hash_ring.create ~seed:7 ~shards () in
        let router =
          Router.create ~ring
            ~svc_config:(fun _ -> Svc.config ~clock ())
            (mk_plain_backend ~ring ~key_range:a_key_range)
        in
        let serve ~arrival_ns:_ ~queue_depth op =
          verdict_of (Router.call router ~queue_depth (req_of_op op))
        in
        let r =
          Runner.run_open_loop ~workers ~rate:400_000 ~window_s:(a_window ())
            ~key_range:a_key_range ~mix:a_mix ~seed:(3 + shards) ~serve ()
        in
        let cap = r.Runner.o_goodput in
        Tables.row [ 7; 9; 9; 9; 12 ]
          [
            string_of_int shards;
            string_of_int r.o_offered;
            string_of_int r.o_handled;
            string_of_int r.o_served;
            Printf.sprintf "%.0f" cap;
          ];
        Bench_json.emit_part ~exp:"exp23" ~part:"scaling"
          Bench_json.[
            ("impl", S "fr-list");
            ("shards", I shards);
            ("workers", I workers);
            ("offered", I r.o_offered);
            ("handled", I r.o_handled);
            ("served", I r.o_served);
            ("capacity_req_s", F cap);
          ];
        (shards, cap))
      a_shard_counts
  in
  let failures = ref [] in
  if not !Bench_json.quick then begin
    let cap n = List.assoc n caps in
    if cap 4 < 2. *. cap 1 then
      failures :=
        Printf.sprintf "scaling: capacity at 4 shards %.0f < 2x 1 shard %.0f"
          (cap 4) (cap 1)
        :: !failures
  end;
  (caps, !failures)

(* ------------------------------------------------------------------ *)
(* Part B: blast-radius containment.                                   *)

let b_shards = 4
let b_key_range = 4096
let b_rate = 15_000
let b_mix = { Opgen.insert_pct = 60; delete_pct = 10 }
let b_window () = if !Bench_json.quick then 0.12 else 0.6
let victim = 0

(* Per-shard fault seam: one Fault_mem instantiation per shard, so the
   installed plan fires only on that shard's shared-memory accesses.
   Hints are off so the hotspot's ascending fresh keys cannot ride a
   predecessor cache — every operation pays the victim's full O(n). *)
type faulty = {
  f_backend : Router.backend;
  f_install : Fault.plan -> unit;
  f_uninstall : unit -> unit;
}

let mk_faulty ~ring ~key_range i =
  let module FM = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem) in
  let module L = Lf_list.Fr_list.Make (K) (FM) in
  let t = L.create_with ~use_hints:false ~use_flags:true () in
  prefill_partition ~key_range ~ring ~shard:i (fun k -> L.insert t k k);
  {
    f_backend =
      {
        Router.insert = (fun k v -> L.insert t k v);
        delete = L.delete t;
        find = L.find t;
        batched = None;
      };
    f_install = FM.install;
    f_uninstall = (fun () -> FM.uninstall ());
  }

(* Every shared access of the victim's memory burns pause rounds: a sick
   replica, not a sick protocol — C&S outcomes are untouched. *)
let stall_plan =
  Fault.make_plan ~seed:41
    [ { Fault.point = FP.Any; action = Stall 2; mode = Always; lane = None } ]

(* Fresh ascending keys owned by the victim, outside the resident
   range: each hot operation lands on the victim and traverses its
   whole (growing) list. *)
let hot_keys ring =
  let n = 50_000 in
  let out = Array.make n 0 in
  let i = ref 0 and k = ref b_key_range in
  while !i < n do
    if Hash_ring.shard_of ring !k = victim then begin
      out.(!i) <- !k;
      incr i
    end;
    incr k
  done;
  out

type scenario = Baseline | Stall | Hotspot

let scenario_name = function
  | Baseline -> "baseline"
  | Stall -> "stall"
  | Hotspot -> "hotspot"

type b_out = {
  bo_report : Runner.open_loop_report;
  bo_good : int array; (* per shard, within the 20ms standard *)
  bo_stats : Svc.stats array;
}

let healthy_good o =
  let t = ref 0 in
  Array.iteri (fun s g -> if s <> victim then t := !t + g) o.bo_good;
  !t

let healthy_handled o =
  let t = ref 0 in
  Array.iteri
    (fun s (c : Runner.class_counts) -> if s <> victim then t := !t + c.cc_handled)
    o.bo_report.Runner.o_by_class;
  !t

let run_b ~clock ~contained ~scenario =
  let ring = Hash_ring.create ~seed:5 ~shards:b_shards () in
  let f = Array.init b_shards (mk_faulty ~ring ~key_range:b_key_range) in
  let ms = Clock.ms clock in
  let svc_config _ =
    if contained then
      Svc.config ~clock
        ~breaker:
          (Some
             (Breaker.config ~window:(ms 200) ~min_calls:10 ~failure_pct:40
                ~latency_threshold:(ms 1 / 64) ~open_for:(ms 100) ~probes:3 ()))
        ~degrade:(Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
        ()
    else Svc.config ~clock ()
  in
  (* Hedging off: the failover path reads the raw backend, and in this
     experiment the raw backend IS the fault — hedges would re-pay the
     stall the breaker just contained. *)
  let router =
    Router.create ~hedge_reads:false ~ring ~svc_config (fun i ->
        f.(i).f_backend)
  in
  (match scenario with Stall -> f.(victim).f_install stall_plan | _ -> ());
  let keygen =
    match scenario with
    | Hotspot ->
        Keygen.mixture ~pct:90
          (Keygen.cycle (hot_keys ring))
          (Keygen.uniform b_key_range)
    | _ -> Keygen.uniform b_key_range
  in
  let std = Clock.ms clock deadline_std_ms in
  let good = Array.init b_shards (fun _ -> Atomic.make 0) in
  let serve ~arrival_ns ~queue_depth op =
    let s = Hash_ring.shard_of ring (key_of op) in
    let dl =
      if contained then Deadline.at (arrival_ns + std) else Deadline.none
    in
    match Router.call router ~deadline:dl ~queue_depth (req_of_op op) with
    | Svc.Served ok | Svc.Served_stale (ok, _) ->
        if Clock.now clock - arrival_ns <= std then Atomic.incr good.(s);
        `Served ok
    | Svc.Rejected _ -> `Rejected
    | Svc.Failed _ -> `Failed
  in
  let r =
    Runner.run_open_loop ~workers ~keygen ~classes:b_shards
      ~class_of:(fun op -> Hash_ring.shard_of ring (key_of op))
      ~rate:b_rate ~window_s:(b_window ()) ~key_range:b_key_range ~mix:b_mix
      ~seed:33 ~serve ()
  in
  f.(victim).f_uninstall ();
  {
    bo_report = r;
    bo_good = Array.map Atomic.get good;
    bo_stats = Router.stats router;
  }

let part_b ~clock =
  Tables.subsection
    "Part B: blast radius — per-shard goodput under shard-targeted faults";
  Tables.row [ 9; 12; 9; 9; 9; 9; 14 ]
    [
      "scenario"; "config"; "v.good"; "h.good"; "h.hand"; "leftover"; "victim brk";
    ];
  let outs = Hashtbl.create 8 in
  List.iter
    (fun contained ->
      List.iter
        (fun scenario ->
          let o = run_b ~clock ~contained ~scenario in
          Hashtbl.replace outs (scenario_name scenario, contained) o;
          let vb = o.bo_stats.(victim) in
          let config = if contained then "contained" else "unprotected" in
          Tables.row [ 9; 12; 9; 9; 9; 9; 14 ]
            [
              scenario_name scenario;
              config;
              string_of_int o.bo_good.(victim);
              string_of_int (healthy_good o);
              string_of_int (healthy_handled o);
              string_of_int o.bo_report.Runner.o_leftover;
              Option.value vb.breaker ~default:"none";
            ];
          Array.iteri
            (fun s (c : Runner.class_counts) ->
              let st = o.bo_stats.(s) in
              Bench_json.emit_part ~exp:"exp23" ~part:"containment"
                Bench_json.[
                  ("scenario", S (scenario_name scenario));
                  ("config", S config);
                  ("shard", I s);
                  ("victim", S (string_of_bool (s = victim)));
                  ("handled", I c.cc_handled);
                  ("served", I c.cc_served);
                  ("rejected", I c.cc_rejected);
                  ("failed", I c.cc_failed);
                  ("good", I o.bo_good.(s));
                  ("breaker", S (Option.value st.breaker ~default:"none"));
                  ("leftover", I o.bo_report.Runner.o_leftover);
                ])
            o.bo_report.Runner.o_by_class)
        [ Baseline; Stall; Hotspot ])
    [ true; false ];
  let failures = ref [] in
  let need cond msg = if not cond then failures := ("containment: " ^ msg) :: !failures in
  if not !Bench_json.quick then begin
    let o name contained = Hashtbl.find outs (name, contained) in
    let base = o "baseline" true in
    let stall = o "stall" true in
    let hot = o "hotspot" true in
    let opened o =
      List.exists (fun (_, s) -> s = "open") o.bo_stats.(victim).transitions
    in
    need (opened stall) "stall: victim breaker never opened";
    need (opened hot) "hotspot: victim breaker never opened";
    (* Stall: same arrival pattern as baseline, so healthy goodput is
       directly comparable. *)
    let hg_base = float_of_int (healthy_good base) in
    let hg_stall = float_of_int (healthy_good stall) in
    need
      (hg_stall >= 0.9 *. hg_base)
      (Printf.sprintf "stall: healthy goodput %.0f < 0.9x baseline %.0f"
         hg_stall hg_base);
    (* Hotspot: the attack IS the arrival mix (healthy shards see fewer
       arrivals), so compare the served-within-standard ratio. *)
    let ratio o =
      let h = healthy_handled o in
      if h = 0 then 0. else float_of_int (healthy_good o) /. float_of_int h
    in
    need (healthy_handled hot > 0) "hotspot: healthy shards saw no traffic";
    need
      (ratio hot >= 0.9 *. ratio base)
      (Printf.sprintf "hotspot: healthy good/handled %.3f < 0.9x baseline %.3f"
         (ratio hot) (ratio base));
    let v_rejected (st : Svc.stats) =
      List.fold_left (fun a (_, n) -> a + n) 0 st.rejected
    in
    need
      (v_rejected stall.bo_stats.(victim) > 0)
      "stall: victim rejected nothing (breaker never fast-failed)";
    (* The contrast rows: the unprotected stall must actually show the
       damage containment prevents, else the grid proves nothing. *)
    let u_stall = o "stall" false in
    Tables.note
      "contrast: unprotected stall healthy goodput %d vs contained %d \
       (baseline %d)"
      (healthy_good u_stall) (healthy_good stall) (healthy_good base)
  end;
  !failures

(* ------------------------------------------------------------------ *)
(* Part C: rebalance handoff under load + conservation oracle.         *)

let c_shards = 3
let c_key_range = 1024
let c_window () = if !Bench_json.quick then 0.12 else 0.4

let part_c ~clock =
  Tables.subsection "Part C: slot handoff under load, conservation oracle";
  let ring = Hash_ring.create ~seed:9 ~shards:c_shards () in
  let lists = Array.init c_shards (fun _ -> AI.create ()) in
  Array.iteri
    (fun i t ->
      prefill_partition ~key_range:c_key_range ~ring ~shard:i (fun k ->
          AI.insert t k k))
    lists;
  let backend i : Router.backend =
    let t = lists.(i) in
    {
      Router.insert = (fun k v -> AI.insert t k v);
      delete = AI.delete t;
      find = AI.find t;
      batched = None;
    }
  in
  let router =
    Router.create ~ring ~svc_config:(fun _ -> Svc.config ~clock ()) backend
  in
  let w = c_window () in
  let moved = ref (-1) in
  let mover =
    Domain.spawn (fun () ->
        Unix.sleepf (w /. 3.);
        moved := Router.rebalance router ~slot:0 ~to_:1 ~key_range:c_key_range)
  in
  let serve ~arrival_ns:_ ~queue_depth op =
    verdict_of (Router.call router ~queue_depth (req_of_op op))
  in
  let r =
    Runner.run_open_loop ~workers ~rate:20_000 ~window_s:w
      ~key_range:c_key_range ~mix:a_mix ~seed:51 ~serve ()
  in
  Domain.join mover;
  (* Conservation: every present key lives in exactly one backend, and
     that backend is the router's current owner for the key. *)
  let present = ref 0 and dup = ref 0 and misplaced = ref 0 in
  for k = 0 to c_key_range - 1 do
    let where =
      List.filter (fun i -> AI.mem lists.(i) k) (List.init c_shards Fun.id)
    in
    match where with
    | [] -> ()
    | [ i ] ->
        incr present;
        if i <> Router.route router k then incr misplaced
    | _ -> incr dup
  done;
  let conserved = !dup = 0 && !misplaced = 0 in
  Tables.note
    "moved %d keys (slot 0 -> shard 1) mid-window; offered %d served %d \
     failed %d; %d keys present, %d duplicated, %d misplaced"
    !moved r.o_offered r.o_served r.o_failed !present !dup !misplaced;
  List.iter (fun l -> Tables.note "journal: %s" l) (Router.journal ());
  Bench_json.emit_part ~exp:"exp23" ~part:"rebalance"
    Bench_json.[
      ("shards", I c_shards);
      ("moved", I !moved);
      ("offered", I r.o_offered);
      ("served", I r.o_served);
      ("rejected", I r.o_rejected);
      ("failed", I r.o_failed);
      ("present", I !present);
      ("duplicated", I !dup);
      ("misplaced", I !misplaced);
      ("conserved", S (string_of_bool conserved));
    ];
  let failures = ref [] in
  let need cond msg = if not cond then failures := ("rebalance: " ^ msg) :: !failures in
  need (!moved > 0) "no keys moved";
  need (r.o_failed = 0)
    (Printf.sprintf "%d Failed outcomes during the handoff" r.o_failed);
  need conserved
    (Printf.sprintf "conservation violated: %d duplicated, %d misplaced" !dup
       !misplaced);
  !failures

let run () =
  Tables.section
    "EXP-23  Sharded service: capacity scaling + per-shard containment";
  let clock = Clock.real () in
  let _caps, fa = part_a ~clock in
  let fb = part_b ~clock in
  let fc = part_c ~clock in
  let failures = fa @ fb @ fc in
  (match failures with
  | [] ->
      Tables.note
        "PASS: capacity scales with shard count, a shard-targeted fault";
      Tables.note
        "degrades only its own keyspace, and the handoff conserves keys."
  | fs ->
      List.iter (fun f -> Tables.note "FAIL: %s" f) fs;
      Tables.note "acceptance criteria NOT met (see rows above)");
  failures = []
