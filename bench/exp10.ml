(* EXP-10: linearizability battery (Section 3.3).

   The paper proves every operation linearizable; we verify mechanically:
   recorded histories from both simulator schedules and real domains are fed
   through the Wing-Gold checker for every implementation. *)

module Sim = Lf_dsim.Sim

type sim_target = {
  sname : string;
  mk : unit -> Lf_workload.Sim_driver.ops;
}

let sim_targets =
  [
    {
      sname = "fr-list";
      mk =
        (fun () ->
          let module L = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem) in
          let t = L.create () in
          {
            insert = (fun k -> L.insert t k k);
            delete = (fun k -> L.delete t k);
            find = (fun k -> L.mem t k);
          });
    };
    {
      sname = "fr-skiplist";
      mk =
        (fun () ->
          let module L =
            Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
          in
          let t = L.create_with ~max_level:6 () in
          {
            insert = (fun k -> L.insert t k k);
            delete = (fun k -> L.delete t k);
            find = (fun k -> L.mem t k);
          });
    };
    {
      sname = "fraser-skiplist";
      mk =
        (fun () ->
          let module L =
            Lf_skiplist.Fraser_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
          in
          let t = L.create_with ~max_level:5 () in
          {
            insert = (fun k -> L.insert t k k);
            delete = (fun k -> L.delete t k);
            find = (fun k -> L.mem t k);
          });
    };
    {
      sname = "st-skiplist";
      mk =
        (fun () ->
          let module L =
            Lf_skiplist.St_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
          in
          let t = L.create_with ~max_level:5 () in
          {
            insert = (fun k -> L.insert t k k);
            delete = (fun k -> L.delete t k);
            find = (fun k -> L.mem t k);
          });
    };
    {
      sname = "harris";
      mk =
        (fun () ->
          let module L =
            Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
          in
          let t = L.create () in
          {
            insert = (fun k -> L.insert t k k);
            delete = (fun k -> L.delete t k);
            find = (fun k -> L.mem t k);
          });
    };
    {
      sname = "michael";
      mk =
        (fun () ->
          let module L =
            Lf_baselines.Michael_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
          in
          let t = L.create () in
          {
            insert = (fun k -> L.insert t k k);
            delete = (fun k -> L.delete t k);
            find = (fun k -> L.mem t k);
          });
    };
    {
      sname = "valois";
      mk =
        (fun () ->
          let module L =
            Lf_baselines.Valois_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
          in
          let t = L.create () in
          {
            insert = (fun k -> L.insert t k k);
            delete = (fun k -> L.delete t k);
            find = (fun k -> L.mem t k);
          });
    };
  ]

let domain_targets : (module Lf_workload.Runner.INT_DICT) list =
  [
    (module Lf_list.Fr_list.Atomic_int);
    (module Lf_skiplist.Fr_skiplist.Atomic_int);
    (module Lf_skiplist.Fraser_skiplist.Atomic_int);
    (module Lf_skiplist.St_skiplist.Atomic_int);
    (module Lf_baselines.Harris_list.Atomic_int);
    (module Lf_baselines.Michael_list.Atomic_int);
    (module Lf_baselines.Valois_list.Atomic_int);
    (module Lf_baselines.Lazy_list.Int);
  ]

let seeds n base = List.init n (fun i -> base + i)

let run () =
  Tables.section "EXP-10  Linearizability battery (Wing-Gold checker)";
  let widths = [ 14; 16; 8; 8 ] in
  Tables.row widths [ "impl"; "source"; "checked"; "passed" ];
  let all_ok = ref true in
  List.iter
    (fun tgt ->
      let passed = ref 0 and total = ref 0 in
      List.iter
        (fun seed ->
          incr total;
          let h =
            Lf_workload.Sim_driver.run_recorded ~policy:(Sim.Random seed)
              ~procs:3 ~ops_per_proc:15 ~key_range:6
              ~mix:{ insert_pct = 40; delete_pct = 40 }
              ~seed (tgt.mk ())
          in
          match Lf_lin.Checker.check h with
          | Lf_lin.Checker.Linearizable -> incr passed
          | Lf_lin.Checker.Not_linearizable -> all_ok := false)
        (seeds 30 1000);
      Bench_json.emit_part ~exp:"exp10" ~part:"battery"
        Bench_json.
          [
            ("impl", S tgt.sname);
            ("source", S "sim");
            ("checked", I !total);
            ("passed", I !passed);
          ];
      Tables.row widths
        [ tgt.sname; "sim schedules"; string_of_int !total; string_of_int !passed ])
    sim_targets;
  List.iter
    (fun (module D : Lf_workload.Runner.INT_DICT) ->
      let passed = ref 0 and total = ref 0 in
      List.iter
        (fun seed ->
          incr total;
          let h =
            Lf_workload.Runner.run_recorded
              (module D)
              ~domains:3 ~ops_per_domain:10 ~key_range:5
              ~mix:{ insert_pct = 40; delete_pct = 40 }
              ~seed ()
          in
          match Lf_lin.Checker.check h with
          | Lf_lin.Checker.Linearizable -> incr passed
          | Lf_lin.Checker.Not_linearizable -> all_ok := false)
        (seeds 10 2000);
      Bench_json.emit_part ~exp:"exp10" ~part:"battery"
        Bench_json.
          [
            ("impl", S D.name);
            ("source", S "domains");
            ("checked", I !total);
            ("passed", I !passed);
          ];
      Tables.row widths
        [ D.name; "real domains"; string_of_int !total; string_of_int !passed ])
    domain_targets;
  Tables.note "all histories linearizable: %b" !all_ok;
  !all_ok
