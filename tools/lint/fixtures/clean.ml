(* Fixture: nothing to report — the negative control. *)

type node = { key : int; mutable next : node option }

let fresh key = { key; next = None }
let eq_key (a : node) (b : node) = Int.equal a.key b.key
let mentions_atomic_in_a_comment_only = "Atomic.get is fine in prose"
