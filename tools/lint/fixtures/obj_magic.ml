(* Fixture: Obj.magic is never acceptable in this tree. *)

let coerce (x : int) : string = Obj.magic x (* EXPECT: no-obj-magic *)

(* Other Obj functions are not this rule's business. *)
let addr (x : 'a) = Obj.repr x
