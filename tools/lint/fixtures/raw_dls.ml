(* Fixture for [no-raw-dls]: raw [Domain.DLS] must be reported outside
   [lib/kernel/] in every position — value uses, the bare module, and the
   [Domain.DLS.key] type constructor.  [Lf_kernel.Hint] itself lives in
   lib/kernel and is therefore path-exempt, not waived. *)

let key = Domain.DLS.new_key (fun () -> 0) (* EXPECT: no-raw-dls *)
let read () = Domain.DLS.get key (* EXPECT: no-raw-dls *)
let write v = Domain.DLS.set key v (* EXPECT: no-raw-dls *)

type holder = { slot : int Domain.DLS.key } (* EXPECT: no-raw-dls *)

module Dls = Domain.DLS (* EXPECT: no-raw-dls *)

(* The seam equivalents are fine: no marker on these lines. *)
let rng = Lf_kernel.Splitmix.domain_local 0x1234
let _ = (read, write, rng)
