(* Fixture for [no-unbounded-retry]: retry loops in the service layer must
   consult a budget.  A [while] loop counts as a retry loop by construction;
   a recursive binding counts when its body handles exceptions ([try] or a
   [match] with an [exception] case).  A budget identifier anywhere in the
   body — a [Budget] path component or a name containing "budget" —
   discharges the obligation. *)

let budget_take b =
  if !b > 0 then begin
    decr b;
    true
  end
  else false

(* Recursion that swallows the failure and goes again, with nothing to
   stop it: under a fault storm this is the amplifier. *)
let rec retry_forever op = (* EXPECT: no-unbounded-retry *)
  match op () with v -> v | exception Failure _ -> retry_forever op

(* Same shape via [try]. *)
let rec retry_try op = (* EXPECT: no-unbounded-retry *)
  try op () with Failure _ -> retry_try op

(* A spin loop is a retry loop even without an exception handler. *)
let spin ready =
  while not (ready ()) do (* EXPECT: no-unbounded-retry *)
    ignore (Sys.opaque_identity 0)
  done

(* Budgeted variants are fine: the loop can only go around while the
   budget grants it.  No markers here. *)
let rec retry_budgeted budget op =
  match op () with
  | v -> Some v
  | exception Failure _ ->
      if budget_take budget then retry_budgeted budget op else None

let drain_budgeted budget step =
  while budget_take budget do
    step ()
  done

(* Ordinary recursion over data handles no exceptions; not a retry loop. *)
let rec sum = function [] -> 0 | x :: tl -> x + sum tl

let _ = (retry_forever, retry_try, spin, retry_budgeted, drain_budgeted, sum)
