(* Fixture for [no-hot-alloc]: C&S retry loops in structure code must not
   build records or arrays per attempt.  A loop is a retry loop when it is
   a [while], or a recursive binding, whose body performs a C&S (an
   identifier ending in [cas] / [compare_and_set] / [compare_exchange]).
   Constructions outside such loops — including the interning caches'
   refill helpers — are fine. *)

type 'a succ = { right : 'a; mark : bool; flag : bool }
type 'a cell = { mutable v : 'a succ; mutable cache : 'a succ }

(* Stand-in for the Mem.S seam operation the rule keys on. *)
let cas (c : 'a cell) ~expect next =
  if c.v == expect then begin
    c.v <- next;
    true
  end
  else false

(* A fresh descriptor on every attempt: the minor-heap churn EXP-22
   blamed for the GC tail. *)
let rec mark_allocating c =
  let s = c.v in
  if s.mark then false
  else if
    cas c ~expect:s { right = s.right; mark = true; flag = false } (* EXPECT: no-hot-alloc *)
  then true
  else mark_allocating c

(* Functional update allocates too. *)
let rec flag_with_update c =
  let s = c.v in
  if s.flag then false
  else if cas c ~expect:s { s with flag = true } (* EXPECT: no-hot-alloc *)
  then true
  else flag_with_update c

(* [while] loops around a C&S are retry loops by the same token. *)
let mark_spinning c =
  let done_ = ref false in
  while not !done_ do (* EXPECT: no-unbounded-retry *)
    let s = c.v in
    let next = [| { s with mark = true } |] in (* EXPECT: no-hot-alloc *)
    if s.mark || cas c ~expect:s next.(0) then done_ := true
  done

(* Interned variant: the retry loop only validates and C&Ses; the record
   is built by the refill helper, an ordinary non-recursive function.  No
   markers from here on. *)
let refill_cache c s =
  let d = { right = s.right; mark = true; flag = false } in
  c.cache <- d;
  d

let rec mark_interned c =
  let s = c.v in
  if s.mark then false
  else
    let d = c.cache in
    let d = if d.right == s.right && d.mark then d else refill_cache c s in
    if cas c ~expect:s d then true else mark_interned c

(* Loops without a C&S are not retry loops: building per iteration is the
   normal shape of initialization code. *)
let build_levels n seed =
  let levels = ref [] in
  for _ = 1 to n do
    levels := { right = seed; mark = false; flag = false } :: !levels
  done;
  !levels

let rec build_chain n seed =
  if n = 0 then [] else { right = seed; mark = false; flag = false } :: build_chain (n - 1) seed

let _ =
  ( mark_allocating,
    flag_with_update,
    mark_spinning,
    mark_interned,
    build_levels,
    build_chain )
