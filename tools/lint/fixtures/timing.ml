(* Fixture for [no-timing-in-structures]: structure code must not read
   clocks or reach into the recorder — value uses, functor applications,
   type constructors.  Observability comes from outside, through
   [Lf_obs.Trace_mem] stacked at the memory seam; only the kernel,
   lib/obs itself and the harness trees (workload, bench, bin, test)
   measure time.  [Unix.sleep]/[sleepf] are delays, not measurements, and
   stay with [no-fault-hooks]. *)

let t0 () = Unix.gettimeofday () (* EXPECT: no-timing-in-structures *)
let wall () = Unix.time () (* EXPECT: no-timing-in-structures *)
let rusage () = Unix.times () (* EXPECT: no-timing-in-structures *)
let cpu () = Sys.time () (* EXPECT: no-timing-in-structures *)
let monotonic () = Mtime.Span.zero (* EXPECT: no-timing-in-structures *)
let calendar () = Ptime.epoch (* EXPECT: no-timing-in-structures *)

(* Reaching into the recorder from inside a structure couples it to one
   observer and perturbs the simulator's determinism. *)
let self_measure () = Lf_obs.Recorder.now () (* EXPECT: no-timing-in-structures *)

module TM = Lf_obs.Trace_mem.Make (Lf_kernel.Atomic_mem) (* EXPECT: no-timing-in-structures *)

type latencies = { hist : Lf_obs.Hist.t } (* EXPECT: no-timing-in-structures *)

(* The seam way is fine: [M.stamp] and [M.event] go through the memory,
   so a Trace_mem-wrapped run observes them and a plain run pays nothing.
   No marker here. *)
module Mk (M : Lf_kernel.Mem.S) = struct
  let visit r = M.event r Lf_kernel.Mem_event.Retry
end

let _ = (t0, wall, rusage, cpu, monotonic, calendar, self_measure)
