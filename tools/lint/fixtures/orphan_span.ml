(* Fixture for [no-orphan-span]: a binding that opens a span must also
   close one (or hand closing to [Fun.protect ~finally]); an unclosed
   span never completes and the flight recorder drops its request. *)

(* Opened, never closed: flagged. *)
let orphan_child ctx now = (* EXPECT: no-orphan-span *)
  let span = Span.begin_ ctx ~name:"work" ~now in
  work span

(* A leaked root is just as bad: flagged. *)
let orphan_root serve = (* EXPECT: no-orphan-span *)
  let ctx = Span.root ~name:"request" ~now:0 in
  serve ctx

(* Closed on the straight-line path: clean (exit-path coverage is the
   trace tests' job, the lint only demands a close exists). *)
let balanced ctx now work =
  let span = Span.begin_ ctx ~name:"work" ~now in
  let r = work span in
  Span.end_ span ~now ~ok:true;
  r

(* Closing from a Fun.protect finally counts as a close. *)
let protected ctx now finish work =
  let span = Span.begin_ ctx ~name:"work" ~now in
  Fun.protect ~finally:(fun () -> finish span) @@ fun () -> work span

(* Qualified opens are seen too. *)
let orphan_qualified ctx now = (* EXPECT: no-orphan-span *)
  let span = Obs.Span.begin_ ctx ~name:"work" ~now in
  ignore span

(* No span traffic at all: clean. *)
let unrelated x = x + 1
