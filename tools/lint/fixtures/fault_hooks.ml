(* Fixture for [no-fault-hooks]: references to the fault injector and
   hand-rolled sleeps must be reported when they appear in structure code —
   value uses, functor applications, type constructors.  Under lib/ only
   lib/fault/ and lib/workload/ are path-exempt; harness trees (bench, bin,
   test, tools) are outside the rule's scope entirely. *)

let plan = Lf_fault.Fault.no_faults (* EXPECT: no-fault-hooks *)

let crashed () =
  raise (Lf_fault.Fault.Crashed "inline injection") (* EXPECT: no-fault-hooks *)

module FM = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem) (* EXPECT: no-fault-hooks *)

type exec_holder = { e : Lf_fault.Fault.exec } (* EXPECT: no-fault-hooks *)

let stall () = Unix.sleepf 0.01 (* EXPECT: no-fault-hooks no-policy-sleep *)
let stall_s () = Unix.sleep 1 (* EXPECT: no-fault-hooks no-policy-sleep *)

(* The seam way is fine: pause goes through the memory, so Fault_mem and
   the simulator observe it.  No marker here. *)
module Mk (M : Lf_kernel.Mem.S) = struct
  let backoff () = M.pause 8
end

let _ = (plan, crashed, stall, stall_s)
