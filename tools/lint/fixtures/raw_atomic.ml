(* Fixture: shared cells must go through the Mem.S seam, not raw Atomic.
   Operation call sites also trip no-bare-atomic (all rules are active in
   fixture mode). *)

let counter = Atomic.make 0 (* EXPECT: no-raw-atomic no-bare-atomic no-cross-shard-state *)
let bump () = Atomic.incr counter (* EXPECT: no-raw-atomic no-bare-atomic *)

type cell = { slot : int Atomic.t } (* EXPECT: no-raw-atomic *)

module A = Atomic (* EXPECT: no-raw-atomic *)

let read c = A.get c.slot
