(* Fixture: shared cells must go through the Mem.S seam, not raw Atomic. *)

let counter = Atomic.make 0 (* EXPECT: no-raw-atomic *)
let bump () = Atomic.incr counter (* EXPECT: no-raw-atomic *)

type cell = { slot : int Atomic.t } (* EXPECT: no-raw-atomic *)

module A = Atomic (* EXPECT: no-raw-atomic *)

let read c = A.get c.slot
