(* Fixture: structural comparison on node types chases backlinks into
   cycles.  Comparing against literals or nullary constructors is fine. *)

type node = { key : int; mutable next : node option }

let same (a : node) (b : node) = a = b (* EXPECT: no-poly-compare *)
let differ (a : node) (b : node) = a <> b (* EXPECT: no-poly-compare *)
let order (a : node) (b : node) = compare a b (* EXPECT: no-poly-compare *)
let order' (a : node) (b : node) = Stdlib.compare a b (* EXPECT: no-poly-compare *)
let hash (n : node) = Hashtbl.hash n (* EXPECT: no-poly-compare *)
let as_function = ( = ) (* EXPECT: no-poly-compare *)

(* Allowed: one operand is a literal or a nullary constructor. *)
let is_zero k = k = 0
let detached n = n.next = None
let keyed n = n.key <> 0

(* Allowed: comparison through a key module. *)
let same_key (a : node) (b : node) = Int.equal a.key b.key
let order_keys (a : node) (b : node) = Int.compare a.key b.key
