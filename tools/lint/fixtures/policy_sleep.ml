(* Fixture for [no-policy-sleep]: literal sleeps inside policy state
   machines (breaker, shed, the shard supervisor) block the lane and
   break simulated-clock replay — pacing must be Clock-seam tick
   arithmetic.  [Unix.sleep]/[sleepf] also trip [no-fault-hooks] (a
   hand-rolled stall is an injection); [Thread.delay] is policy-sleep
   only. *)

let poll_pause () = Unix.sleepf 0.1 (* EXPECT: no-fault-hooks no-policy-sleep *)

let backoff_wait n =
  Unix.sleep n (* EXPECT: no-fault-hooks no-policy-sleep *)

let settle () = Thread.delay 0.05 (* EXPECT: no-policy-sleep *)

(* Passed bare, not applied: still a reference to the sleeping
   primitive from policy code. *)
let waiter : float -> unit = Thread.delay (* EXPECT: no-policy-sleep *)

(* The sanctioned shape: the policy computes a deadline in ticks and
   compares clock readings; the harness owns any actual waiting.  No
   marker here. *)
let due ~now ~next_try = now >= next_try

let _ = (poll_pause, backoff_wait, settle, waiter, due)
