(* Fixture for [no-cross-shard-state]: mutable state bound at module
   initialization is shared by every shard and every router in the
   process; state allocated under a function is per-instance and fine. *)

(* Module-level cells: all flagged. *)
let inflight_table : (int, int) Hashtbl.t = Hashtbl.create 64 (* EXPECT: no-cross-shard-state *)
let last_owner = ref (-1) (* EXPECT: no-cross-shard-state *)
let big_lock = Mutex.create () (* EXPECT: no-cross-shard-state *)
let heights = Array.make 8 0 (* EXPECT: no-cross-shard-state *)
let pending = Queue.create () (* EXPECT: no-cross-shard-state *)

(* Inside a nested module: still module scope, still flagged. *)
module Journal = struct
  let lines = ref [] (* EXPECT: no-cross-shard-state *)
  let scratch = Buffer.create 80 (* EXPECT: no-cross-shard-state *)
end

(* A tuple/record spine still evaluates at init time. *)
let pair = (ref 0, 1) (* EXPECT: no-cross-shard-state *)

(* Deferred under a lambda: allocated per call, not per module — clean. *)
let fresh_counter () = ref 0
let fresh_table () = Hashtbl.create 16

let make_shard n =
  let slots = Array.make n None in
  let mu = Mutex.create () in
  (slots, mu)

(* Immutable module-level values are clean. *)
let limit = 64
let name = "router"
