(* Fixture: atomic operations in model-checked structure code must be
   Mem.S accesses, or DPOR certification silently loses scheduling
   points.  The Stdlib-qualified spellings are the ones no-raw-atomic
   misses (their path root is Stdlib, not Atomic). *)

let cell = Stdlib.Atomic.make 0 (* EXPECT: no-bare-atomic *)
let peek () = Stdlib.Atomic.get cell (* EXPECT: no-bare-atomic *)

let swing expect v =
  Stdlib.Atomic.compare_and_set cell expect v (* EXPECT: no-bare-atomic *)

let stamp () = Stdlib.Atomic.fetch_and_add cell 1 (* EXPECT: no-bare-atomic *)

(* A same-named operation on another module is not an atomic op. *)
module Notatomic = struct
  let get x = x
  let compare_and_set _ _ _ = true
end

let fine () = Notatomic.get (Notatomic.compare_and_set 0 0 0)
