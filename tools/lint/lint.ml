(* Driver for the concurrency lint.

   Normal mode: [lint.exe DIR...] walks the given directories (skipping
   [_build], dot-directories and any directory named [fixtures]), lints every
   [.ml] file with the path-scoped rules and waivers of {!Lint_core}, prints
   findings as [file:line: [rule] message] and exits 1 if there are any.

   Fixture mode: [lint.exe --fixtures-test DIR] lints every file in DIR with
   every rule active (waivers ignored) and demands that the findings match,
   line for line, the [(* EXPECT: rule *)] markers in the fixtures — no
   missing findings, no extras.  This is the lint's own regression test,
   wired into [dune runtest]. *)

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if
             String.equal name "_build"
             || String.equal name "fixtures"
             || (String.length name > 0 && name.[0] = '.')
           then acc
           else walk (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_tree paths =
  let files = List.fold_left (fun acc p -> walk p acc) [] paths |> List.rev in
  let violations = List.concat_map (Lint_core.check_file ~all:false) files in
  match violations with
  | [] ->
      Printf.printf "lint: %d files, no findings\n" (List.length files);
      0
  | vs ->
      List.iter (Lint_core.pp_violation stderr) vs;
      Printf.eprintf "lint: %d finding(s) in %d files\n" (List.length vs)
        (List.length files);
      1

(* [(* EXPECT: rule... *)] markers, one per offending line; a line that
   trips several rules lists them space-separated in one marker. *)
let expected_of_file path =
  let ic = open_in path in
  let out = ref [] in
  let line_no = ref 0 in
  (try
     while true do
       incr line_no;
       let line = input_line ic in
       match String.index_opt line 'E' with
       | None -> ()
       | Some _ -> (
           let marker = "EXPECT: " in
           let mlen = String.length marker in
           let rec find i =
             if i + mlen > String.length line then None
             else if String.equal (String.sub line i mlen) marker then Some (i + mlen)
             else find (i + 1)
           in
           match find 0 with
           | None -> ()
           | Some start ->
               let pos = ref start in
               let continue = ref true in
               while !continue do
                 let stop = ref !pos in
                 while
                   !stop < String.length line
                   && (match line.[!stop] with
                      | 'a' .. 'z' | '-' -> true
                      | _ -> false)
                 do
                   incr stop
                 done;
                 if !stop > !pos then begin
                   out :=
                     (!line_no, String.sub line !pos (!stop - !pos)) :: !out;
                   if
                     !stop < String.length line
                     && line.[!stop] = ' '
                   then pos := !stop + 1
                   else continue := false
                 end
                 else continue := false
               done)
     done
   with End_of_file -> close_in ic);
  List.rev !out

let fixtures_test dir =
  let files = walk dir [] |> List.rev in
  if files = [] then begin
    Printf.eprintf "fixtures-test: no .ml files under %s\n" dir;
    exit 1
  end;
  let status = ref 0 in
  let total = ref 0 in
  List.iter
    (fun file ->
      let expected = expected_of_file file in
      let actual =
        Lint_core.check_file ~all:true file
        |> List.map (fun v -> (v.Lint_core.line, v.Lint_core.rule))
      in
      let sort = List.sort_uniq Lint_core.compare_lr in
      let expected = sort expected and actual = sort actual in
      total := !total + List.length expected;
      if not (List.equal (fun a b -> Lint_core.compare_lr a b = 0) expected actual)
      then begin
        status := 1;
        let show (l, r) = Printf.sprintf "line %d: %s" l r in
        Printf.eprintf "fixtures-test: %s\n  expected: %s\n  reported: %s\n"
          file
          (String.concat "; " (List.map show expected))
          (String.concat "; " (List.map show actual))
      end)
    files;
  if !status = 0 then
    Printf.printf "lint fixtures: OK (%d files, %d expected findings)\n"
      (List.length files) !total;
  !status

let () =
  match Array.to_list Sys.argv with
  | _ :: "--fixtures-test" :: dir :: [] -> exit (fixtures_test dir)
  | _ :: (_ :: _ as paths) -> exit (lint_tree paths)
  | _ ->
      prerr_endline "usage: lint.exe DIR...  |  lint.exe --fixtures-test DIR";
      exit 2
