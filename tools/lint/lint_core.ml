(* Source-level concurrency lint over the compiler-libs parsetree.

   Eleven rules, each motivated by a class of bug that type-checks fine
   but breaks the lock-free structures at runtime:

   - [no-raw-atomic]: every shared cell must go through the [Lf_kernel.Mem.S]
     seam.  A raw [Atomic.t] outside [lib/kernel/] is invisible to
     [Check_mem] / [Race_mem] / [Sim_mem], so the sanitizers, the race
     detector and the schedule explorer silently under-approximate.

   - [no-raw-dls]: domain-local state must also stay behind the kernel
     seam.  Raw [Domain.DLS] outside [lib/kernel/] bypasses [Lf_kernel.Hint]
     (validated per-domain predecessor caches) and
     [Lf_kernel.Splitmix.domain_local] (per-domain RNGs), so it is invisible
     to hint accounting and easy to get wrong under the simulator, where
     every process shares one domain.

   - [no-obj-magic]: never acceptable in this tree.

   - [no-poly-compare]: structural [=] / [compare] / [Hashtbl.hash] on node
     types follows [succ] and [backlink] pointers; backlinks make the graph
     cyclic, so polymorphic comparison can diverge (and is wrong anyway once
     descriptors carry marks).  Scoped to the libraries that define node
     types.  Comparing against a literal or a nullary constructor
     ([s.right <> Null], [x = 0]) is allowed: no pointer chasing there.

   - [no-fault-hooks]: fault injection must stay at the memory seam.  A
     structure that mentions [Lf_fault] (or hand-rolls delays with
     [Unix.sleep]/[sleepf]) has baked testing hooks into the algorithm;
     under [lib/] only [lib/fault/] (the injector itself) and
     [lib/workload/] (the chaos harnesses) may reference them.  Everything
     else receives faults transparently through a [Fault_mem]-wrapped
     memory.

   - [no-timing-in-structures]: same discipline for observability.  A
     structure that reads a clock ([Unix.gettimeofday]/[time]/[times],
     [Sys.time], [Mtime], [Ptime]) or reaches into the recorder ([Lf_obs])
     has baked measurement into the algorithm: it perturbs the simulator's
     determinism and ties the structure to one observer.  Structure code is
     observed from outside, through [Lf_obs.Trace_mem] stacked at the
     memory seam and the span hooks in the harnesses.  Scoped to the
     structure libraries; kernel, harnesses, bench and bin measure freely.

   - [no-bare-atomic]: a sharper, model-checker-motivated companion to
     [no-raw-atomic], scoped to the structure libraries that the DPOR
     checker (lib/model) certifies plus the kernel that implements their
     seam.  The checker only gains a scheduling point at [Mem.S] accesses:
     a bare [Atomic.get]/[Atomic.compare_and_set]/... call site executes
     atomically between two visible steps, so DPOR's "exhausted" verdict
     silently stops covering interleavings through it.  Unlike
     [no-raw-atomic] this rule also catches the [Stdlib.Atomic.get]
     spelling (whose path root is [Stdlib], not [Atomic]), and it fires
     inside [lib/kernel/] — the seam implementations themselves are the
     waivered exceptions, not the whole directory.

   - [no-hot-alloc]: C&S retry loops in the structure libraries must not
     build records or arrays per attempt.  Under contention every failed
     C&S retries, so an inline descriptor construction there is a
     minor-heap allocation site at the hottest point of the algorithm —
     the GC-tail mechanism EXP-22 measures.  Descriptors come from the
     per-node interning caches instead; the caches' refill helpers are
     plain functions outside any loop.

   - [no-unbounded-retry]: a retry loop in the service layer ([lib/svc/])
     that never consults a [Retry.Budget] can amplify a failure storm
     without bound — exactly the cascade the layer exists to prevent.
     Flags [while] loops and recursive bindings that handle exceptions
     unless a budget identifier appears in the body.  The "budgets off"
     ablation uses [Budget.unlimited]: same code path, so the obligation
     holds even there.

   - [no-cross-shard-state]: the sharding layer's containment claim —
     a fault blast radius of one shard — holds only if shards share no
     mutable state.  A module-level [ref]/[Hashtbl.t]/[Mutex.t]/... in
     [lib/shard/] is process-wide: every router and every shard funnels
     through it, so one stalled shard can wedge or corrupt the others
     through a side channel the per-shard breakers never see.  Flags
     mutable-state allocations evaluated at module initialization time
     (not ones deferred under a function, which are per-instance); the
     router's bounded decision journal is the one reviewed waiver.

   - [no-orphan-span]: in the traced layers ([lib/svc/], [lib/shard/])
     a binding that opens a request span ([Span.begin_] / [Span.root])
     must also close one ([Span.end_], or a [Fun.protect] whose finally
     does).  The flight recorder only retains COMPLETED roots, so a
     span leaked on an exception path drops exactly the anomalous
     request the recorder exists to capture.

   - [no-policy-sleep]: the policy layers ([lib/svc/], [lib/shard/]) —
     breaker, shed, retry pacing, the shard supervisor — must pace
     themselves by comparing Clock-seam ticks ([poll_every], backoff
     deadlines as tick arithmetic), never by sleeping.  A
     [Unix.sleep]/[sleepf]/[Thread.delay] inside a policy state machine
     blocks the caller's lane, skews every decision it shares a mutex
     with, and makes replay diverge from production (the simulated
     clock cannot advance through a real sleep).  Injected backoff
     closures (bench/bin hand one in) are the sanctioned escape hatch:
     the *policy* computes the delay, the *harness* decides how to wait.

   The rules are path-scoped and a small waiver table exempts known-benign
   files, each with a reason that is printed if the waiver is ever reported. *)

type violation = { file : string; line : int; rule : string; message : string }

let rule_raw_atomic = "no-raw-atomic"
let rule_raw_dls = "no-raw-dls"
let rule_obj_magic = "no-obj-magic"
let rule_poly_compare = "no-poly-compare"
let rule_fault_hooks = "no-fault-hooks"
let rule_timing = "no-timing-in-structures"
let rule_unbounded_retry = "no-unbounded-retry"
let rule_bare_atomic = "no-bare-atomic"
let rule_hot_alloc = "no-hot-alloc"
let rule_cross_shard = "no-cross-shard-state"
let rule_orphan_span = "no-orphan-span"
let rule_policy_sleep = "no-policy-sleep"
let rule_parse_error = "parse-error"

(* Directories where shared cells are allowed to be raw atomics: the kernel
   implements the seam itself; tests, examples and this tool are harness
   code, not structure code.  The same scoping applies to raw [Domain.DLS]
   ([Lf_kernel.Hint] and [Splitmix.domain_local] are the kernel's own
   implementations of the seam). *)
let atomic_exempt_prefixes = [ "lib/kernel/"; "test/"; "examples/"; "tools/" ]

(* The only places under lib/ allowed to speak fault injection: the
   injector itself and the chaos harnesses built on it.  Code outside lib/
   (bench, bin, test, tools) is harness code and unrestricted. *)
let fault_allowed_prefixes = [ "lib/fault/"; "lib/workload/" ]

(* Libraries that define node types with succ/backlink pointers. *)
let poly_scope_prefixes =
  [ "lib/core/"; "lib/skiplist/"; "lib/baselines/"; "lib/hashtable/"; "lib/pqueue/" ]

(* Structure code that must stay clock- and recorder-free: the same
   libraries.  Harness trees, the kernel and lib/obs itself measure. *)
let timing_scope_prefixes = poly_scope_prefixes

(* Code the DPOR model checker certifies (lib/model scenarios cover these
   structures), plus the kernel that implements their memory seam: every
   atomic operation must be a [Mem.S] access or the checker's scheduling
   points under-approximate.  The seam implementations themselves are
   individually waivered below. *)
let bare_atomic_scope_prefixes =
  [ "lib/core/"; "lib/skiplist/"; "lib/hashtable/"; "lib/pqueue/"; "lib/kernel/" ]

(* The service layer: every retry loop must consult a [Retry.Budget], so
   an unbudgeted retry path cannot sneak in (the "budgets off" ablation
   uses [Budget.unlimited] — same code path, different answer). *)
let retry_scope_prefixes = [ "lib/svc/" ]

(* Structure code whose C&S retry loops must stay allocation-free: a
   record or array built per attempt becomes minor-heap churn exactly at
   the contention hot spot, which EXP-22 measured as the GC tail.  Fresh
   descriptors belong in the per-node interning caches
   ([Fr_list.create_with ~reuse_descriptors]), whose refill helpers sit
   outside the loops. *)
let hot_alloc_scope_prefixes =
  [ "lib/core/"; "lib/skiplist/"; "lib/hashtable/"; "lib/pqueue/" ]

(* The sharding layer: per-shard failure containment is an isolation
   property, so mutable state evaluated at module initialization (shared
   by every shard and every router in the process) is a containment
   bug unless deliberately waivered. *)
let cross_shard_scope_prefixes = [ "lib/shard/" ]

(* The layers that open request spans: an unclosed span never reaches the
   flight recorder's ring (only completed roots are retained), so a leak
   silently drops exactly the anomalous requests the recorder exists to
   capture.  Syntactic, at binding granularity: a binding that opens must
   also close (or delegate closing to [Fun.protect ~finally]). *)
let orphan_span_scope_prefixes = [ "lib/svc/"; "lib/shard/" ]

(* The policy layers: every state machine in them (breaker, shed, retry
   pacing, the shard supervisor) paces itself with Clock-seam tick
   comparisons so decisions replay under the simulator.  A literal sleep
   in policy code blocks the lane and breaks replay; waiting is the
   harness's job, via the injected backoff closure. *)
let policy_sleep_scope_prefixes = [ "lib/svc/"; "lib/shard/" ]

(* file, rule, reason.  Waivers are deliberate, reviewed exceptions. *)
let waivers =
  [
    ( "lib/baselines/lazy_list.ml",
      rule_raw_atomic,
      "lock-based baseline for EXP comparisons; not a subject of the \
       checked-memory sanitizers" );
    ( "lib/lin/history.ml",
      rule_raw_atomic,
      "history recorder infrastructure: its event counter is harness state, \
       not structure state" );
    ( "lib/pqueue/pqueue.ml",
      rule_raw_atomic,
      "timestamp counter for priority ties; never CASed as part of the \
       node protocol" );
    ( "lib/kernel/atomic_mem.ml",
      rule_bare_atomic,
      "the production implementation of the Mem.S seam itself; its bare \
       atomics ARE the seam's accesses" );
    ( "lib/kernel/counting_mem.ml",
      rule_bare_atomic,
      "a Mem.S implementation (the counting seam) plus its observer-side \
       registry; both sit below the seam by construction" );
    ( "lib/kernel/hint.ml",
      rule_bare_atomic,
      "the hint registry is observer-side accounting shared across \
       domains; hint payloads structures read are plain per-domain refs, \
       never raced, so no scheduling point is lost" );
    ( "lib/pqueue/pqueue.ml",
      rule_bare_atomic,
      "timestamp counter for priority ties: a fetch-and-add whose value \
       only breaks ordering ties, never part of the node protocol; the \
       model-checked scenarios pin max_level=1 so the counter is the only \
       access DPOR does not schedule" );
    ( "lib/workload/runner.ml",
      rule_raw_atomic,
      "start barrier for benchmark domains; harness synchronization" );
    ( "lib/core/fr_list.ml",
      rule_hot_alloc,
      "the flagged constructions are the insert candidate's refill slow \
       path: they run only when the re-searched successor changed, and \
       the built node+descriptor are cached and reused across attempts \
       while the successor holds — the allocation-free fast path the rule \
       exists to protect" );
    ( "lib/skiplist/fr_skiplist.ml",
      rule_hot_alloc,
      "same candidate-refill pattern as fr_list.ml: fresh node and \
       descriptor only when the re-searched successor changed, reused \
       across C&S attempts otherwise" );
    ( "lib/skiplist/fraser_skiplist.ml",
      rule_hot_alloc,
      "comparison baseline for EXP-13; reproduces Fraser's allocating \
       retry loops faithfully and is not a subject of the EXP-22 \
       interning pass" );
    ( "lib/skiplist/st_skiplist.ml",
      rule_hot_alloc,
      "comparison baseline (Sundell-Tsigas); reproduces the published \
       allocating retry loops and is not a subject of the EXP-22 \
       interning pass" );
    ( "lib/hashtable/lf_hashtable.ml",
      rule_poly_compare,
      "Hashtbl.hash on string keys, which are acyclic and node-free" );
    ( "lib/obs/recorder.ml",
      rule_raw_atomic,
      "the recorder's domain registry: observer-side harness state on the \
       consumer side of the seam, never part of a structure's protocol" );
    ( "lib/obs/recorder.ml",
      rule_raw_dls,
      "per-domain recording state: the recorder is the observer, not a \
       structure; DLS is what keeps its hot path free of synchronization" );
    ( "lib/obs/span.ml",
      rule_raw_dls,
      "per-domain span state (id counters, flight ring, current-span \
       table): the tracer is the observer, not a structure; DLS keeps \
       span begin/end synchronization-free on the request hot path" );
    ( "bench/exp19.ml",
      rule_raw_atomic,
      "start barrier for benchmark domains; harness synchronization" );
    ( "bench/exp20.ml",
      rule_raw_atomic,
      "cross-worker goodput/retry counters on the measurement side of the \
       service layer; never part of a structure's protocol" );
    ( "bench/exp23.ml",
      rule_raw_atomic,
      "per-shard goodput counters on the measurement side of the shard \
       router; never part of a structure's protocol" );
    ( "bench/exp25.ml",
      rule_raw_atomic,
      "goodput time-buckets, stale-read counter and the fault timestamp \
       on the measurement side of the self-healing harness; never part \
       of a structure's protocol" );
    ( "lib/shard/router.ml",
      rule_cross_shard,
      "the rebalance decision journal: a bounded, process-wide log of \
       begin/end lines for post-mortems, deliberately one timeline across \
       routers; it carries no routing state — routing is a pure function \
       of ring + migration watermark — so no shard's behaviour can flow \
       through it into another shard" );
  ]

let waived path rule =
  List.exists (fun (f, r, _) -> String.equal f path && String.equal r rule) waivers

let has_prefix path prefixes =
  List.exists (fun p -> String.length path >= String.length p
                        && String.equal (String.sub path 0 (String.length p)) p)
    prefixes

(* [all:true] (fixture mode) activates every rule on every path and ignores
   waivers, so fixtures exercise the rules regardless of where they live. *)
let rule_active ~all path rule =
  all
  || (not (waived path rule))
     &&
     if String.equal rule rule_raw_atomic || String.equal rule rule_raw_dls
     then not (has_prefix path atomic_exempt_prefixes)
     else if String.equal rule rule_poly_compare then
       has_prefix path poly_scope_prefixes
     else if String.equal rule rule_fault_hooks then
       has_prefix path [ "lib/" ] && not (has_prefix path fault_allowed_prefixes)
     else if String.equal rule rule_timing then
       has_prefix path timing_scope_prefixes
     else if String.equal rule rule_unbounded_retry then
       has_prefix path retry_scope_prefixes
     else if String.equal rule rule_bare_atomic then
       has_prefix path bare_atomic_scope_prefixes
     else if String.equal rule rule_hot_alloc then
       has_prefix path hot_alloc_scope_prefixes
     else if String.equal rule rule_cross_shard then
       has_prefix path cross_shard_scope_prefixes
     else if String.equal rule rule_orphan_span then
       has_prefix path orphan_span_scope_prefixes
     else if String.equal rule rule_policy_sleep then
       has_prefix path policy_sleep_scope_prefixes
     else true

open Parsetree

let root_of_lid lid =
  let rec go = function
    | Longident.Lident s -> s
    | Longident.Ldot (l, _) -> go l
    | Longident.Lapply (l, _) -> go l
  in
  go lid

(* An operand that makes poly [=]/[<>] safe: a constant, or a constructor
   with no payload ([Null], [None], [true], ...). *)
let is_literalish (e : expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_variant (_, None) -> true
  | _ -> false

let atomic_msg =
  "raw Atomic outside lib/kernel; route shared cells through Lf_kernel.Mem.S \
   so checked memories observe the access"

(* The operation call sites [no-bare-atomic] watches for.  Qualified
   through [Atomic] or [Stdlib.Atomic] — the latter has root [Stdlib], so
   [no-raw-atomic]'s root test never sees it. *)
let atomic_op_names =
  [
    "make"; "make_contended"; "get"; "set"; "exchange"; "compare_and_set";
    "compare_exchange"; "fetch_and_add"; "incr"; "decr";
  ]

let lid_is_bare_atomic_op = function
  | Longident.Ldot (Longident.Lident "Atomic", op)
  | Longident.Ldot (Longident.Ldot (Longident.Lident "Stdlib", "Atomic"), op)
    ->
      List.mem op atomic_op_names
  | _ -> false

let bare_atomic_msg =
  "bare atomic operation in model-checked structure code; the DPOR checker \
   only schedules at Mem.S accesses, so interleavings through this step are \
   invisible to certification — take the memory as a functor argument and \
   go through it"

(* [Domain.DLS] anywhere on the path spine: [Domain.DLS.get], a bare
   [Domain.DLS], ['a Domain.DLS.key], ... *)
let rec lid_is_dls = function
  | Longident.Ldot (Longident.Lident "Domain", "DLS") -> true
  | Longident.Ldot (l, _) | Longident.Lapply (l, _) -> lid_is_dls l
  | Longident.Lident _ -> false

let dls_msg =
  "raw Domain.DLS outside lib/kernel; use Lf_kernel.Hint (validated \
   per-domain caches) or Lf_kernel.Splitmix.domain_local (per-domain RNGs) \
   so domain-local state stays behind the kernel seam"

let fault_msg =
  "fault-injection hook outside lib/fault and lib/workload; structures must \
   stay fault-agnostic — stack Lf_fault.Fault_mem at the memory seam and \
   drive it from the chaos harnesses, bench or test code"

let lid_is_unix_sleep = function
  | Longident.Ldot (Longident.Lident "Unix", ("sleep" | "sleepf")) -> true
  | _ -> false

let lid_is_thread_delay = function
  | Longident.Ldot (Longident.Lident "Thread", "delay") -> true
  | _ -> false

let policy_sleep_msg =
  "sleeping inside policy code; breaker/shed/supervisor state machines must \
   pace themselves by comparing Clock-seam ticks (poll_every gates, backoff \
   deadlines as tick arithmetic) so decisions replay under the simulated \
   clock — never Unix.sleep/sleepf or Thread.delay.  If a caller must wait, \
   compute the delay in the policy and hand the waiting to an injected \
   backoff closure in the harness"

(* Clock reads and recorder references.  [Unix.sleep]/[sleepf] stay with
   [no-fault-hooks]: they are delays, not measurements. *)
let lid_is_timing lid =
  match lid with
  | Longident.Ldot (Longident.Lident "Unix", ("gettimeofday" | "time" | "times"))
  | Longident.Ldot (Longident.Lident "Sys", "time") ->
      true
  | _ -> (
      match root_of_lid lid with
      | "Mtime" | "Ptime" | "Lf_obs" -> true
      | _ -> false)

let timing_msg =
  "clock read or recorder reference inside structure code; structures are \
   observed from outside — stack Lf_obs.Trace_mem at the memory seam and \
   measure from the harnesses, bench or test code"

let poly_msg what =
  what
  ^ " can chase succ/backlink pointers into cycles on node types; use the \
     key module's comparison instead"

(* no-unbounded-retry: a loop that retries (a [while], or a recursive
   binding that handles exceptions — [try] or a [match] with an
   [exception] case) must mention a budget somewhere in its body: an
   identifier with a [Budget] path component, or whose name contains
   "budget".  Syntactic by design — the lint keeps the author honest
   about consulting Retry.Budget; the conservation tests check the
   semantics. *)

exception Found_in_subtree

let expr_contains pred (e : Parsetree.expression) =
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it e ->
          if pred e then raise Found_in_subtree else default.expr it e);
    }
  in
  try
    it.expr it e;
    false
  with Found_in_subtree -> true

let lid_components lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply (l1, l2) -> go (go acc l2) l1
  in
  go [] lid

let contains_budget_word s =
  let s = String.lowercase_ascii s in
  let n = String.length s and m = String.length "budget" in
  let rec at i =
    i + m <= n && (String.equal (String.sub s i m) "budget" || at (i + 1))
  in
  at 0

let mentions_budget =
  expr_contains (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } ->
          List.exists
            (fun c -> String.equal c "Budget" || contains_budget_word c)
            (lid_components txt)
      | _ -> false)

let is_retryish =
  expr_contains (fun e ->
      match e.pexp_desc with
      | Pexp_try _ -> true
      | Pexp_match (_, cases) ->
          List.exists
            (fun (c : case) ->
              match c.pc_lhs.ppat_desc with
              | Ppat_exception _ -> true
              | _ -> false)
            cases
      | _ -> false)

let unbounded_retry_msg =
  "retry loop without a budget consultation; every retry decision in \
   lib/svc must go through Retry.Budget (Budget.take — Budget.unlimited \
   for the ablation) so failure storms cannot amplify without bound"

(* no-hot-alloc: a C&S retry loop — a [while], or a recursive binding,
   whose body performs a C&S — must not build records or arrays per
   attempt.  Under contention every failed C&S retries, so an inline
   [{ right; mark; flag }] or array literal there turns the hottest code
   path into a minor-heap allocation site: exactly the churn EXP-22
   attributed the p999/p9999 latency cliff to.  Descriptors belong in the
   per-node interning caches, whose refill helpers are ordinary
   (non-recursive) functions outside the loop.  Syntactic by design, like
   [no-unbounded-retry]: loops that delegate their C&S to a helper are
   not recognized, and allocation hidden behind a call is not chased —
   the EXP-22 ablation benches check the semantics. *)

let lid_is_cas lid =
  match List.rev (lid_components lid) with
  | op :: _ ->
      String.equal op "cas"
      || String.equal op "compare_and_set"
      || String.equal op "compare_exchange"
  | [] -> false

let mentions_cas =
  expr_contains (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> lid_is_cas txt
      | _ -> false)

(* Every record/array construction in [e], as (loc, what) pairs. *)
let iter_allocs f (e : Parsetree.expression) =
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_record (_, _) -> f e.pexp_loc "record"
          | Pexp_array _ -> f e.pexp_loc "array"
          | _ -> ());
          default.expr it e);
    }
  in
  it.expr it e

let hot_alloc_msg what =
  what
  ^ " allocation inside a C&S retry loop: every failed attempt pays a \
     minor-heap block at the contention hot spot (the GC tail EXP-22 \
     measures); hoist it out of the loop or serve it from the per-node \
     descriptor interning caches"

(* no-cross-shard-state: mutable-state allocators whose result, bound at
   module initialization time, becomes process-wide state shared by every
   shard (and every router) in the process.  Allocations under a lambda
   are per-call/per-instance and therefore fine — [create] builds each
   router's state fresh. *)
let lid_is_mutable_alloc = function
  | Longident.Lident "ref"
  | Longident.Ldot (Longident.Lident "Stdlib", "ref") ->
      true
  | Longident.Ldot
      ( Longident.Lident
          ("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Mutex" | "Condition"),
        "create" ) ->
      true
  | Longident.Ldot (Longident.Lident "Atomic", ("make" | "make_contended")) ->
      true
  | Longident.Ldot
      (Longident.Lident "Array", ("make" | "create" | "init" | "make_matrix"))
    ->
      true
  | Longident.Ldot (Longident.Lident "Bytes", ("make" | "create")) -> true
  | _ -> false

let cross_shard_msg =
  "module-level mutable state in the sharding layer: every shard and every \
   router in the process shares this cell, so one shard's failure can leak \
   into another's behaviour behind the per-shard breakers' backs; allocate \
   it inside [create] and carry it in the router/shard record instead"

(* Mutable allocations evaluated when the module initializes: walk a
   top-level binding's expression but do not descend into function bodies
   (deferred) — a [let f () = ref 0] allocates per call, not per module. *)
let iter_module_init_allocs f (e : Parsetree.expression) =
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
            when lid_is_mutable_alloc txt ->
              f loc;
              default.expr it e
          | _ -> default.expr it e);
    }
  in
  it.expr it e

(* no-orphan-span: a span open is a [Span.begin_] or [Span.root]
   application; a close is a [Span.end_] or a [Fun.protect] (whose
   [~finally] is where the close lives in the early-exit-heavy
   bindings).  Like [no-unbounded-retry], the check is syntactic and
   binding-granular by design: it keeps the author honest about pairing
   opens with closes on every exit path, while the trace tests check
   the semantics (well-formed trees, completed roots). *)
let lid_is_span_open lid =
  match List.rev (lid_components lid) with
  | op :: "Span" :: _ -> String.equal op "begin_" || String.equal op "root"
  | _ -> false

let lid_is_span_close lid =
  match List.rev (lid_components lid) with
  | "end_" :: "Span" :: _ -> true
  | "protect" :: "Fun" :: _ -> true
  | _ -> false

let opens_span =
  expr_contains (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> lid_is_span_open txt
      | _ -> false)

let closes_span =
  expr_contains (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> lid_is_span_close txt
      | _ -> false)

let orphan_span_msg =
  "span opened without a close in the same binding: pair every \
   Span.begin_/Span.root with a Span.end_ on all exit paths (or close \
   from Fun.protect ~finally) — an unclosed span never completes, so \
   the flight recorder silently drops exactly the request it was \
   tracing"

let compare_lr (l1, r1) (l2, r2) =
  match Int.compare l1 l2 with 0 -> String.compare r1 r2 | c -> c

let check_file ~all path =
  let src =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let out = ref [] in
  let report (loc : Location.t) rule message =
    if rule_active ~all path rule then
      out :=
        { file = path; line = loc.loc_start.Lexing.pos_lnum; rule; message }
        :: !out
  in
  (* [args]: the first arguments when the ident is the head of an
     application, [None] when it appears bare (e.g. passed as a function). *)
  let check_ident lid (loc : Location.t) args =
    if String.equal (root_of_lid lid) "Atomic" then
      report loc rule_raw_atomic atomic_msg;
    if lid_is_bare_atomic_op lid then
      report loc rule_bare_atomic bare_atomic_msg;
    if lid_is_dls lid then report loc rule_raw_dls dls_msg;
    if String.equal (root_of_lid lid) "Lf_fault" || lid_is_unix_sleep lid then
      report loc rule_fault_hooks fault_msg;
    if lid_is_unix_sleep lid || lid_is_thread_delay lid then
      report loc rule_policy_sleep policy_sleep_msg;
    if lid_is_timing lid then report loc rule_timing timing_msg;
    (match lid with
    | Longident.Ldot (Lident "Obj", "magic") ->
        report loc rule_obj_magic
          "Obj.magic defeats the type checker; there is no sound use of it \
           in this tree"
    | _ -> ());
    let is_poly name =
      match lid with
      | Longident.Lident s -> String.equal s name
      | Longident.Ldot (Lident "Stdlib", s) -> String.equal s name
      | _ -> false
    in
    if is_poly "compare" then
      report loc rule_poly_compare (poly_msg "polymorphic compare")
    else if is_poly "=" || is_poly "<>" then begin
      let allowed =
        match args with
        | Some ((_, a) :: (_, b) :: _) -> is_literalish a || is_literalish b
        | _ -> false
      in
      if not allowed then
        report loc rule_poly_compare (poly_msg "polymorphic equality")
    end
    else
      match lid with
      | Longident.Ldot (Lident "Hashtbl", "hash") ->
          report loc rule_poly_compare (poly_msg "Hashtbl.hash")
      | _ -> ()
  in
  (* A [while] loop is a retry loop by construction; a recursive binding
     only when its body handles exceptions (otherwise it is ordinary
     recursion over data).  Either way, a budget identifier somewhere in
     the body discharges the obligation. *)
  let check_retry_bindings vbs =
    List.iter
      (fun (vb : value_binding) ->
        if is_retryish vb.pvb_expr && not (mentions_budget vb.pvb_expr) then
          report vb.pvb_loc rule_unbounded_retry unbounded_retry_msg)
      vbs
  in
  let report_hot_allocs e =
    iter_allocs (fun loc what -> report loc rule_hot_alloc (hot_alloc_msg what)) e
  in
  (* A recursive binding that performs a C&S is a retry loop; every
     record/array built in its body is a per-attempt allocation. *)
  let check_hot_alloc_bindings vbs =
    List.iter
      (fun (vb : value_binding) ->
        if mentions_cas vb.pvb_expr then report_hot_allocs vb.pvb_expr)
      vbs
  in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (rf, vbs) ->
              if rf = Recursive then begin
                check_retry_bindings vbs;
                check_hot_alloc_bindings vbs
              end;
              List.iter
                (fun (vb : value_binding) ->
                  if opens_span vb.pvb_expr && not (closes_span vb.pvb_expr)
                  then report vb.pvb_loc rule_orphan_span orphan_span_msg)
                vbs
          | _ -> ());
          default.structure_item it si);
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
              check_ident txt loc (Some args);
              List.iter (fun (_, a) -> it.expr it a) args
          | Pexp_ident { txt; loc } ->
              check_ident txt loc None;
              default.expr it e
          | Pexp_construct ({ txt; loc }, _)
            when String.equal (root_of_lid txt) "Lf_fault" ->
              report loc rule_fault_hooks fault_msg;
              default.expr it e
          | Pexp_while (_, _) ->
              if not (mentions_budget e) then
                report e.pexp_loc rule_unbounded_retry unbounded_retry_msg;
              if mentions_cas e then report_hot_allocs e;
              default.expr it e
          | Pexp_let (Recursive, vbs, _) ->
              check_retry_bindings vbs;
              check_hot_alloc_bindings vbs;
              default.expr it e
          | _ -> default.expr it e);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; loc } when String.equal (root_of_lid txt) "Atomic"
            ->
              report loc rule_raw_atomic atomic_msg
          | Pmod_ident { txt; loc } when lid_is_dls txt ->
              report loc rule_raw_dls dls_msg
          | Pmod_ident { txt; loc }
            when String.equal (root_of_lid txt) "Lf_fault" ->
              report loc rule_fault_hooks fault_msg
          | Pmod_ident { txt; loc } when lid_is_timing txt ->
              report loc rule_timing timing_msg
          | _ -> ());
          default.module_expr it me);
      typ =
        (fun it ty ->
          (match ty.ptyp_desc with
          | Ptyp_constr ({ txt; loc }, _)
            when String.equal (root_of_lid txt) "Atomic" ->
              report loc rule_raw_atomic atomic_msg
          | Ptyp_constr ({ txt; loc }, _) when lid_is_dls txt ->
              report loc rule_raw_dls dls_msg
          | Ptyp_constr ({ txt; loc }, _)
            when String.equal (root_of_lid txt) "Lf_fault" ->
              report loc rule_fault_hooks fault_msg
          | Ptyp_constr ({ txt; loc }, _) when lid_is_timing txt ->
              report loc rule_timing timing_msg
          | _ -> ());
          default.typ it ty);
    }
  in
  (* no-cross-shard-state: only bindings at module scope — the top level
     and nested module structures — initialize with the module; a
     [let module] inside a function body is per-call and never reached
     by this walk. *)
  let rec check_module_state (str : structure) =
    List.iter
      (fun (si : structure_item) ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                iter_module_init_allocs
                  (fun loc -> report loc rule_cross_shard cross_shard_msg)
                  vb.pvb_expr)
              vbs
        | Pstr_module mb -> check_module_expr mb.pmb_expr
        | Pstr_recmodule mbs ->
            List.iter (fun (mb : module_binding) -> check_module_expr mb.pmb_expr) mbs
        | Pstr_include incl -> check_module_expr incl.pincl_mod
        | _ -> ())
      str
  and check_module_expr (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure str -> check_module_state str
    | Pmod_functor (_, body) -> check_module_expr body
    | Pmod_constraint (me, _) -> check_module_expr me
    | _ -> ()
  in
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  (match Parse.implementation lexbuf with
  | str ->
      it.structure it str;
      check_module_state str
  | exception e ->
      out :=
        {
          file = path;
          line = 1;
          rule = rule_parse_error;
          message = Printexc.to_string e;
        }
        :: !out);
  (* One finding per (line, rule): helping code often hits the same ident
     twice on a line, and the fixture EXPECT markers are per-line. *)
  List.sort_uniq
    (fun a b -> compare_lr (a.line, a.rule) (b.line, b.rule))
    !out

let pp_violation oc v =
  Printf.fprintf oc "%s:%d: [%s] %s\n" v.file v.line v.rule v.message
