(* Tests for the Fomitchev-Ruppert linked list: sequential semantics against
   an oracle, the INV 1-5 invariants under randomized simulator schedules,
   the three-step deletion protocol of Figure 2, backlink recovery, helping,
   linearizability, and multi-domain stress. *)

module FR = Lf_list.Fr_list.Atomic_int
module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module Sim = Lf_dsim.Sim
module Ev = Lf_kernel.Mem_event

(* Static interface conformance. *)
module _ : Support.INT_DICT = Lf_list.Fr_list.Atomic_int

(* --- Sequential semantics --- *)

let oracle = Support.oracle_test (module FR)

let oracle_flagless =
  Support.qcheck "flagless ablation agrees with oracle"
    (Support.ops_gen ~key_range:16 ~len:120)
    (fun script ->
      let t = FR.create_with ~use_flags:false () in
      let expected =
        Support.run_against_oracle script
          ~insert:(fun k v -> FR.insert t k v)
          ~delete:(fun k -> FR.delete t k)
          ~find:(fun k -> FR.find t k)
      in
      FR.to_list t = expected)

(* --- Descriptor interning (EXP-22 ablation) --- *)

(* Small key range so keys are deleted and re-inserted many times: that is
   what cycles the per-node descriptor caches through stale and fresh
   states, which is where an interning bug would corrupt a C&S. *)
let reuse_matches_oracle =
  Support.qcheck "interning ablation agrees with oracle"
    (Support.ops_gen ~key_range:6 ~len:200)
    (fun script ->
      let t = FR.create_with ~use_flags:true ~reuse_descriptors:true () in
      let expected =
        Support.run_against_oracle script
          ~insert:(fun k v -> FR.insert t k v)
          ~delete:(fun k -> FR.delete t k)
          ~find:(fun k -> FR.find t k)
      in
      FR.check_invariants t;
      FR.to_list t = expected)

let reuse_audit_holds =
  Support.qcheck "interning contract audits clean after random scripts"
    (Support.ops_gen ~key_range:6 ~len:200)
    (fun script ->
      let t = FR.create_with ~use_flags:true ~reuse_descriptors:true () in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 -> ignore (FR.insert t k k)
          | 1 -> ignore (FR.delete t k)
          | _ -> ignore (FR.find t k))
        script;
      match FR.Debug.reuse_audit t with
      | Ok () -> true
      | Error msg -> Alcotest.failf "reuse audit: %s" msg)

let reuse_onoff_equivalent =
  Support.qcheck "interning on/off are observationally identical"
    (Support.ops_gen ~key_range:6 ~len:200)
    (fun script ->
      let run reuse =
        let t = FR.create_with ~use_flags:true ~reuse_descriptors:reuse () in
        let results =
          List.map
            (fun (op, k) ->
              match op with
              | 0 -> Some (FR.insert t k k)
              | 1 -> Some (FR.delete t k)
              | _ -> Option.map (fun v -> v = k) (FR.find t k))
            script
        in
        (results, FR.to_list t)
      in
      run true = run false)

let test_edges () =
  let t = FR.create () in
  Alcotest.(check bool) "delete on empty" false (FR.delete t 1);
  Alcotest.(check bool) "find on empty" true (FR.find t 1 = None);
  Alcotest.(check int) "empty length" 0 (FR.length t);
  Alcotest.(check bool) "insert" true (FR.insert t 0 10);
  Alcotest.(check bool) "dup" false (FR.insert t 0 99);
  Alcotest.(check bool) "value kept" true (FR.find t 0 = Some 10);
  Alcotest.(check bool) "min int key" true (FR.insert t min_int 1);
  Alcotest.(check bool) "max int key" true (FR.insert t max_int 2);
  Alcotest.(check (list (pair int int)))
    "sorted with extremes"
    [ (min_int, 1); (0, 10); (max_int, 2) ]
    (FR.to_list t);
  FR.check_invariants t

let test_mem_and_length () =
  let t = FR.create () in
  for i = 0 to 99 do
    ignore (FR.insert t i i)
  done;
  Alcotest.(check int) "length" 100 (FR.length t);
  Alcotest.(check bool) "mem" true (FR.mem t 50);
  ignore (FR.delete t 50);
  Alcotest.(check bool) "not mem" false (FR.mem t 50);
  Alcotest.(check int) "length" 99 (FR.length t)

(* --- Range and successor operations --- *)

let test_find_ge_and_min () =
  let t = FR.create () in
  Alcotest.(check (option (pair int int))) "empty" None (FR.find_ge t 0);
  Alcotest.(check (option (pair int int))) "empty min" None (FR.min_binding t);
  List.iter (fun k -> ignore (FR.insert t k (k * 10))) [ 10; 20; 30 ];
  Alcotest.(check (option (pair int int))) "exact" (Some (20, 200))
    (FR.find_ge t 20);
  Alcotest.(check (option (pair int int))) "between" (Some (20, 200))
    (FR.find_ge t 11);
  Alcotest.(check (option (pair int int))) "below all" (Some (10, 100))
    (FR.find_ge t (-5));
  Alcotest.(check (option (pair int int))) "above all" None (FR.find_ge t 31);
  Alcotest.(check (option (pair int int))) "min" (Some (10, 100))
    (FR.min_binding t)

let test_fold_range () =
  let t = FR.create () in
  for i = 1 to 20 do
    ignore (FR.insert t i i)
  done;
  let range lo hi =
    List.rev (FR.fold_range t ~lo ~hi (fun acc k _ -> k :: acc) [])
  in
  Alcotest.(check (list int)) "mid" [ 5; 6; 7 ] (range 5 7);
  Alcotest.(check (list int)) "clipped" [ 18; 19; 20 ] (range 18 99);
  Alcotest.(check (list int)) "empty" [] (range 30 40);
  Alcotest.(check (list int)) "inverted" [] (range 7 5);
  Alcotest.(check int) "all" 20 (List.length (range 1 20))

let range_prop =
  Support.qcheck "find_ge/fold_range agree with a sorted-list oracle"
    QCheck2.Gen.(
      triple
        (list_size (int_bound 60) (int_bound 50))
        (int_bound 50) (int_bound 50))
    (fun (keys, lo, hi) ->
      let t = FR.create () in
      List.iter (fun k -> ignore (FR.insert t k k)) keys;
      let sorted = List.sort_uniq compare keys in
      let expect_ge = List.find_opt (fun k -> k >= lo) sorted in
      let got_ge = Option.map fst (FR.find_ge t lo) in
      let expect_range = List.filter (fun k -> k >= lo && k <= hi) sorted in
      let got_range =
        List.rev (FR.fold_range t ~lo ~hi (fun acc k _ -> k :: acc) [])
      in
      got_ge = expect_ge && got_range = expect_range
      && Option.map fst (FR.min_binding t)
         = (match sorted with [] -> None | k :: _ -> Some k))

(* Range operations racing with updates: every observed range must be
   sorted, in-bounds, duplicate-free, and every key that was present for
   the whole run must appear. *)
let test_fold_range_concurrent () =
  List.iter
    (fun seed ->
      let t = FRS.create () in
      ignore
        (Sim.run
           [|
             (fun _ ->
               for i = 0 to 31 do
                 ignore (FRS.insert t i i)
               done);
           |]);
      (* Keys 0..9 are stable; 10..31 churn. *)
      let mutator pid =
        let rng = Lf_kernel.Splitmix.create (seed + pid) in
        for _ = 1 to 80 do
          let k = 10 + Lf_kernel.Splitmix.int rng 22 in
          if Lf_kernel.Splitmix.bool rng then ignore (FRS.delete t k)
          else ignore (FRS.insert t k k)
        done
      in
      let observer _ =
        for _ = 1 to 15 do
          let ks =
            List.rev (FRS.fold_range t ~lo:2 ~hi:25 (fun acc k _ -> k :: acc) [])
          in
          let rec sorted = function
            | a :: (b :: _ as tl) -> a < b && sorted tl
            | _ -> true
          in
          if not (sorted ks) then
            Alcotest.failf "unsorted/duplicated range (seed %d)" seed;
          List.iter
            (fun k ->
              if k < 2 || k > 25 then
                Alcotest.failf "key %d out of range (seed %d)" k seed)
            ks;
          (* Stable keys 2..9 must always be observed. *)
          for k = 2 to 9 do
            if not (List.mem k ks) then
              Alcotest.failf "stable key %d missing (seed %d)" k seed
          done
        done
      in
      ignore (Sim.run ~policy:(Sim.Random seed) [| mutator; mutator; observer |]))
    [ 1; 2; 3; 4 ]

(* --- Invariants INV 1-5 under randomized schedules --- *)

let sim_invariant_run ~seed ~procs ~ops =
  let t = FRS.create () in
  let body pid =
    let rng = Lf_kernel.Splitmix.create (seed + (131 * pid)) in
    for _ = 1 to ops do
      let k = Lf_kernel.Splitmix.int rng 24 in
      match Lf_kernel.Splitmix.int rng 3 with
      | 0 -> ignore (FRS.insert t k pid)
      | 1 -> ignore (FRS.delete t k)
      | _ -> ignore (FRS.find t k)
    done
  in
  let check st _pid =
    ignore st;
    match Sim.quiet (fun () -> FRS.Debug.check_now t) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "INV violated (seed %d): %s" seed msg
  in
  ignore
    (Sim.run ~policy:(Sim.Random seed) ~on_step:check
       (Array.make procs body));
  Sim.quiet (fun () -> FRS.check_invariants t)

let test_invariants_random_schedules () =
  List.iter
    (fun seed -> sim_invariant_run ~seed ~procs:3 ~ops:120)
    [ 1; 2; 3; 4; 5 ]

let invariants_prop =
  Support.qcheck ~count:25 "INV 1-5 hold at every step (random schedule)"
    QCheck2.Gen.(pair (int_bound 10_000) (2 -- 4))
    (fun (seed, procs) ->
      sim_invariant_run ~seed ~procs ~ops:60;
      true)

(* --- Figure 2: the three-step deletion protocol, observed step by step --- *)

let test_three_step_deletion_trace () =
  let t = FRS.create () in
  (* Build [10; 20; 30] sequentially. *)
  ignore
    (Sim.run
       [|
         (fun _ ->
           ignore (FRS.insert t 10 0);
           ignore (FRS.insert t 20 0);
           ignore (FRS.insert t 30 0));
       |]);
  (* Delete 20 one scheduler step at a time, recording the (flagged, marked)
     state of nodes 10 and 20 after every step. *)
  let states = ref [] in
  let snapshot () =
    let chain = Sim.quiet (fun () -> FRS.Debug.physical_chain t) in
    let state_of k =
      List.find_map
        (fun (c : FRS.Debug.cell) ->
          match c.key with
          | Lf_kernel.Ordered.Mid k' when k' = k ->
              Some (c.flagged, c.marked, c.backlink_key)
          | _ -> None)
        chain
    in
    states := (state_of 10, state_of 20) :: !states
  in
  ignore
    (Sim.run ~on_step:(fun _ _ -> snapshot ()) [| (fun _ -> ignore (FRS.delete t 20)) |]);
  let states = List.rev !states in
  (* Phase 1 must appear: 10 flagged while 20 present and unmarked. *)
  let phase1 =
    List.exists
      (function
        | Some (true, false, _), Some (false, false, _) -> true | _ -> false)
      states
  in
  (* Phase 2: 10 flagged, 20 marked with backlink pointing at 10. *)
  let phase2 =
    List.exists
      (function
        | Some (true, false, _), Some (false, true, Some (Lf_kernel.Ordered.Mid 10))
          ->
            true
        | _ -> false)
      states
  in
  (* Phase 3: 20 physically gone, 10 unflagged. *)
  let phase3 =
    match List.rev states with
    | (Some (false, false, _), None) :: _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "phase 1 (flag predecessor)" true phase1;
  Alcotest.(check bool) "phase 2 (backlink + mark)" true phase2;
  Alcotest.(check bool) "phase 3 (unlink + unflag)" true phase3;
  (* Order: phase1 index < phase2 index. *)
  let idx p =
    let rec go i = function
      | [] -> -1
      | s :: tl -> if p s then i else go (i + 1) tl
    in
    go 0 states
  in
  let i1 =
    idx (function
      | Some (true, false, _), Some (false, false, _) -> true
      | _ -> false)
  and i2 =
    idx (function
      | Some (true, false, _), Some (false, true, _) -> true
      | _ -> false)
  in
  Alcotest.(check bool) "flag before mark" true (i1 < i2)

(* --- Backlink recovery: the Section 3.1 mini-scenario --- *)

(* Proc 0 walks to its insertion point and is held right before its
   insertion C&S; proc 1 then deletes the insertion predecessor entirely.
   When proc 0 resumes it must fail the C&S, traverse a backlink, and
   succeed without restarting from the head. *)
let test_insert_recovers_via_backlink () =
  let t = FRS.create () in
  ignore
    (Sim.run
       [|
         (fun _ ->
           List.iter (fun k -> ignore (FRS.insert t k 0)) [ 10; 20; 30 ]);
       |]);
  let inserter _ = ignore (FRS.insert t 25 1) in
  let deleter _ = ignore (FRS.delete t 20) in
  let phase = ref `Park_inserter in
  let policy st =
    match !phase with
    | `Park_inserter -> (
        (* Run the inserter until it is about to perform its insertion CAS. *)
        match Sim.pending_kind st 0 with
        | Some (Lf_dsim.Sim_effect.Cas Ev.Insertion) ->
            phase := `Run_deleter;
            Some 1
        | _ -> if Sim.is_finished st 0 then None else Some 0)
    | `Run_deleter ->
        if not (Sim.is_finished st 1) then Some 1
        else begin
          phase := `Resume;
          Some 0
        end
    | `Resume -> if Sim.is_finished st 0 then None else Some 0
  in
  let res = Sim.run ~policy:(Sim.Custom policy) [| inserter; deleter |] in
  Sim.quiet (fun () ->
      FRS.check_invariants t;
      Alcotest.(check (list (pair int int)))
        "final contents"
        [ (10, 0); (25, 1); (30, 0) ]
        (FRS.to_list t));
  let c0 = res.per_proc.(0) in
  Alcotest.(check bool)
    "inserter used a backlink" true
    (c0.Lf_kernel.Counters.backlink_steps >= 1);
  (* Recovery must be local: the inserter's total traversal work should stay
     well below a restart-from-head (which Harris would pay). *)
  Alcotest.(check bool)
    "no restart from head" true
    (c0.Lf_kernel.Counters.curr_updates <= 6)

(* --- Helping: a stalled deleter is completed by an inserter --- *)

let test_helping_completes_deletion () =
  let t = FRS.create () in
  ignore
    (Sim.run
       [| (fun _ -> List.iter (fun k -> ignore (FRS.insert t k 0)) [ 10; 20 ]) |]);
  (* The inserter's key 15 has the flagged node 10 as insertion predecessor,
     so the inserter must help the parked deletion of 20 before it can
     proceed. *)
  let deleter _ = ignore (FRS.delete t 20) in
  let inserter _ = ignore (FRS.insert t 15 1) in
  let parked = ref false in
  let policy st =
    if not !parked then begin
      (* Run the deleter until its flagging CAS has succeeded, then park it
         forever. *)
      let c = Sim.counters st 0 in
      if c.Lf_kernel.Counters.cas_successes.(Lf_kernel.Counters.kind_index
                                               Ev.Flagging) >= 1
      then begin
        parked := true;
        Some 1
      end
      else if Sim.is_finished st 0 then None
      else Some 0
    end
    else if not (Sim.is_finished st 1) then Some 1
    else None (* leave the deleter parked: it must never be needed again *)
  in
  let res = Sim.run ~policy:(Sim.Custom policy) [| deleter; inserter |] in
  Sim.quiet (fun () ->
      (* The inserter helped the deletion of 20 to completion. *)
      Alcotest.(check (list (pair int int)))
        "final contents"
        [ (10, 0); (15, 1) ]
        (FRS.to_list t);
      FRS.check_invariants t);
  let c1 = res.per_proc.(1) in
  Alcotest.(check bool)
    "inserter performed helping work" true
    (c1.Lf_kernel.Counters.helps >= 1
    || Lf_kernel.Counters.total_cas_successes c1 >= 2)

(* --- Linearizability --- *)

let test_linearizable_sim_histories () =
  List.iter
    (fun seed ->
      let t = FRS.create () in
      let ops =
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> FRS.insert t k k);
            delete = (fun k -> FRS.delete t k);
            find = (fun k -> FRS.mem t k);
          }
      in
      let h =
        Lf_workload.Sim_driver.run_recorded ~policy:(Sim.Random seed) ~procs:3
          ~ops_per_proc:15 ~key_range:6
          ~mix:{ insert_pct = 40; delete_pct = 40 }
          ~seed ops
      in
      Support.assert_linearizable h)
    [ 11; 12; 13; 14; 15; 16 ]

let test_linearizable_domain_histories () =
  List.iter
    (fun seed ->
      let h =
        Lf_workload.Runner.run_recorded
          (module FR)
          ~domains:3 ~ops_per_domain:8 ~key_range:4
          ~mix:{ insert_pct = 40; delete_pct = 40 }
          ~seed ()
      in
      Support.assert_linearizable h)
    [ 21; 22; 23 ]

(* --- Multi-domain stress with conservation check --- *)

let stress_conservation (module D : Support.INT_DICT) ~domains ~ops () =
  let t = D.create () in
  let net = Atomic.make 0 in
  let work did =
    let rng = Lf_kernel.Splitmix.create (did + 999) in
    let local = ref 0 in
    for _ = 1 to ops do
      let k = Lf_kernel.Splitmix.int rng 32 in
      match Lf_kernel.Splitmix.int rng 3 with
      | 0 -> if D.insert t k k then incr local
      | 1 -> if D.delete t k then decr local
      | _ -> ignore (D.find t k)
    done;
    ignore (Atomic.fetch_and_add net !local)
  in
  let ds = List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  D.check_invariants t;
  Alcotest.(check int)
    (D.name ^ " conservation")
    (Atomic.get net) (D.length t)

let test_domain_stress () =
  stress_conservation (module FR) ~domains:4 ~ops:20_000 ()

let () =
  Alcotest.run "fr_list"
    [
      ( "sequential",
        [
          oracle;
          oracle_flagless;
          Alcotest.test_case "edges" `Quick test_edges;
          Alcotest.test_case "mem and length" `Quick test_mem_and_length;
          Alcotest.test_case "find_ge and min" `Quick test_find_ge_and_min;
          Alcotest.test_case "fold_range" `Quick test_fold_range;
          Alcotest.test_case "fold_range concurrent" `Quick
            test_fold_range_concurrent;
          range_prop;
        ] );
      ( "interning",
        [ reuse_matches_oracle; reuse_audit_holds; reuse_onoff_equivalent ] );
      ( "invariants",
        [
          Alcotest.test_case "random schedules" `Quick
            test_invariants_random_schedules;
          invariants_prop;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "three-step deletion (Fig. 2)" `Quick
            test_three_step_deletion_trace;
          Alcotest.test_case "insert recovers via backlink" `Quick
            test_insert_recovers_via_backlink;
          Alcotest.test_case "helping completes deletion" `Quick
            test_helping_completes_deletion;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "sim histories" `Quick
            test_linearizable_sim_histories;
          Alcotest.test_case "domain histories" `Quick
            test_linearizable_domain_histories;
        ] );
      ("stress", [ Alcotest.test_case "domains" `Slow test_domain_stress ]);
    ]
