(* The shard layer (lib/shard, DESIGN.md §13): ring determinism and
   reassignment, routing to exactly the owning shard, scatter-gather
   partial-failure reporting (per-key outcomes, never a collapsed error
   or a silent drop), hedged/failover reads off a tripped or killed
   shard, rebalance conservation (every key owned by exactly one shard,
   before and after a handoff), chaos through the router with a
   shard-targeted fault plan, and per-key linearizability across a
   handoff performed under concurrent load. *)

module Svc = Lf_svc.Svc
module Clock = Lf_svc.Clock
module Breaker = Lf_svc.Breaker
module Degrade = Lf_svc.Degrade
module Hash_ring = Lf_shard.Hash_ring
module Router = Lf_shard.Router
module Health = Lf_shard.Health
module Replica = Lf_shard.Replica
module Supervisor = Lf_shard.Supervisor
module Fault = Lf_fault.Fault
module FP = Lf_kernel.Fault_point
module History = Lf_lin.History

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let outcome =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Svc.outcome_to_string o))
    ( = )

(* --- The ring: pure, deterministic, reassignable --------------------- *)

let test_ring_deterministic =
  Support.qcheck ~count:300 "ring: slot_of pure in (key, shards, seed)"
    QCheck2.Gen.(triple (1 -- 8) (0 -- 1000) (0 -- 1_000_000))
    (fun (shards, seed, key) ->
      let r1 = Hash_ring.create ~seed ~shards () in
      let r2 = Hash_ring.create ~seed ~shards () in
      let s = Hash_ring.slot_of r1 key in
      s = Hash_ring.slot_of r2 key
      && s >= 0 && s < shards
      && Hash_ring.shard_of r1 key = Hash_ring.owner r1 s)

let test_ring_reassign =
  Support.qcheck ~count:200 "ring: reassign moves one slot, nothing else"
    QCheck2.Gen.(
      quad (2 -- 6) (0 -- 1000) (0 -- 5) (pair (0 -- 5) (0 -- 100)))
    (fun (shards, seed, slot0, (to0, key)) ->
      let slot = slot0 mod shards and to_ = to0 mod shards in
      let r = Hash_ring.create ~seed ~shards () in
      let r' = Hash_ring.reassign r ~slot ~to_ in
      (* The argument ring is unchanged; slot ownership moved; slot_of
         (hashing) is untouched by assignment. *)
      Hash_ring.owner r slot = slot
      && Hash_ring.owner r' slot = to_
      && Hash_ring.slot_of r' key = Hash_ring.slot_of r key
      && Array.to_list (Hash_ring.assignment r')
         |> List.mapi (fun i o -> i = slot || o = i)
         |> List.for_all Fun.id)

(* --- Table-backed shards for router tests ---------------------------- *)

type tb = {
  h : (int, int) Hashtbl.t;
  hits : int ref;
  killed : bool ref;  (* reads and writes fail *)
  w_killed : bool ref;  (* writes fail, reads still served *)
}

let table_backend () =
  let tb =
    { h = Hashtbl.create 32; hits = ref 0; killed = ref false;
      w_killed = ref false }
  in
  let guard ~write () =
    incr tb.hits;
    if !(tb.killed) || (write && !(tb.w_killed)) then failwith "backend down"
  in
  let b =
    {
      Router.insert =
        (fun k v ->
          guard ~write:true ();
          if Hashtbl.mem tb.h k then false else (Hashtbl.replace tb.h k v; true));
      delete =
        (fun k ->
          guard ~write:true ();
          if Hashtbl.mem tb.h k then (Hashtbl.remove tb.h k; true) else false);
      find = (fun k -> guard ~write:false (); Hashtbl.find_opt tb.h k);
      batched = None;
    }
  in
  (tb, b)

let plain_router ?hedge_reads ~shards ~seed () =
  let clock, _ = Clock.manual () in
  let ring = Hash_ring.create ~seed ~shards () in
  let tbs = Array.init shards (fun _ -> table_backend ()) in
  let router =
    Router.create ?hedge_reads ~ring
      ~svc_config:(fun _ -> Svc.config ~clock ~retryable:(fun _ -> false) ())
      (fun i -> snd tbs.(i))
  in
  (router, ring, Array.map fst tbs)

let test_routing_hits_owner =
  Support.qcheck ~count:100 "router: every call lands on the owning shard only"
    QCheck2.Gen.(pair (0 -- 1000) (list_size (1 -- 40) (0 -- 200)))
    (fun (seed, keys) ->
      let router, ring, tbs = plain_router ~shards:3 ~seed () in
      List.for_all
        (fun k ->
          let before = Array.map (fun tb -> !(tb.hits)) tbs in
          ignore (Router.call router (Svc.Insert (k, k)));
          let owner = Hash_ring.shard_of ring k in
          Array.to_list tbs
          |> List.mapi (fun i tb ->
                 !(tb.hits) - before.(i) = if i = owner then 1 else 0)
          |> List.for_all Fun.id)
        keys)

(* --- Scatter-gather: per-key outcomes, order and count preserved ----- *)

let test_call_many_partial_failure () =
  let router, ring, tbs = plain_router ~hedge_reads:false ~shards:3 ~seed:42 () in
  (* Prefill through the router: keys 0..19. *)
  List.iter
    (fun k ->
      Alcotest.check outcome
        (Printf.sprintf "prefill %d" k)
        (Svc.Served true)
        (Router.call router (Svc.Insert (k, k))))
    (List.init 20 Fun.id);
  (* Kill shard 1 outright; a batch spanning all shards must come back
     with one honest outcome per key, in input order. *)
  tbs.(1).killed := true;
  let reqs = List.init 20 (fun k -> Svc.Find k) @ [ Svc.Find 999 ] in
  let out = Router.call_many router reqs in
  Alcotest.(check int) "one outcome per request" (List.length reqs)
    (List.length out);
  List.iteri
    (fun i o ->
      let k = match List.nth reqs i with Svc.Find k -> k | _ -> assert false in
      let expected =
        if Hash_ring.shard_of ring k = 1 then `Failed
        else `Served (Hashtbl.mem tbs.(Hash_ring.shard_of ring k).h k)
      in
      match (expected, o) with
      | `Failed, Svc.Failed _ -> ()
      | `Served b, Svc.Served b' when b = b' -> ()
      | _ ->
          Alcotest.failf "key %d: got %s (shard %d, killed=%b)" k
            (Svc.outcome_to_string o)
            (Hash_ring.shard_of ring k)
            (Hash_ring.shard_of ring k = 1))
    out;
  (* Nothing silently dropped: every request reached some pipeline. *)
  let calls =
    Array.fold_left (fun a (st : Svc.stats) -> a + st.calls) 0
      (Router.stats router)
  in
  Alcotest.(check bool) "all requests admitted somewhere" true
    (calls >= List.length reqs)

(* --- Hedged/failover reads ------------------------------------------- *)

(* A shard whose writes die trips its breaker; with full fast-fail
   degrade the pipeline then rejects reads too — and the router serves
   them anyway, straight off the backend, because the paper's searches
   are safe to run outside the pipeline. *)
let hedging_router ~hedge_reads =
  let clock, _ = Clock.manual () in
  let ring = Hash_ring.create ~seed:3 ~shards:2 () in
  let tbs = Array.init 2 (fun _ -> table_backend ()) in
  let cfg _ =
    Svc.config ~clock
      ~retryable:(fun _ -> false)
      ~breaker:
        (Some
           (Breaker.config ~window:1_000_000 ~min_calls:2 ~failure_pct:50
              ~open_for:1_000_000 ~probes:1 ()))
      ~degrade:(Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
      ()
  in
  let router =
    Router.create ~hedge_reads ~ring ~svc_config:cfg (fun i -> snd tbs.(i))
  in
  (router, ring, Array.map fst tbs)

let shard_key ?(from = 0) ring s =
  let rec go k = if Hash_ring.shard_of ring k = s then k else go (k + 1) in
  go from

let test_hedged_read_tripped_shard () =
  let router, ring, tbs = hedging_router ~hedge_reads:true in
  let k = shard_key ring 0 in
  Alcotest.check outcome "prefill" (Svc.Served true)
    (Router.call router (Svc.Insert (k, 7)));
  tbs.(0).w_killed := true;
  (* Failed writes trip shard 0's breaker (full fast-fail mode).  The
     prefill success already counts toward min_calls, so the breaker may
     open after the very first failure — loop until it rejects. *)
  let failed_writes = ref 0 in
  let rec trip budget =
    if budget = 0 then Alcotest.fail "breaker never opened"
    else
      match Router.call router (Svc.Insert (k, 8)) with
      | Svc.Failed _ ->
          incr failed_writes;
          trip (budget - 1)
      | Svc.Rejected Svc.Breaker_open -> ()
      | o -> Alcotest.failf "unexpected write outcome %s" (Svc.outcome_to_string o)
  in
  trip 10;
  Alcotest.(check bool) "at least one write failed" true (!failed_writes >= 1);
  Alcotest.(check (option string)) "breaker open" (Some "open")
    (Router.stats router).(0).breaker;
  (* A write stays rejected — only reads fail over. *)
  (match Router.call router (Svc.Insert (k, 9)) with
  | Svc.Rejected Svc.Breaker_open -> ()
  | o -> Alcotest.failf "write not rejected: %s" (Svc.outcome_to_string o));
  (* The read is rejected by the pipeline, then served by the hedge. *)
  Alcotest.check outcome "read hedged around the open breaker"
    (Svc.Served true)
    (Router.call router (Svc.Find k));
  Alcotest.check outcome "missing key hedges to an honest false"
    (Svc.Served false)
    (Router.call router (Svc.Find (shard_key ~from:1000 ring 0)));
  Alcotest.(check bool) "hedge counter bumped" true
    ((Router.hedged router).(0) >= 2);
  (* Healthy shard untouched throughout. *)
  Alcotest.(check (option string)) "other shard closed" (Some "closed")
    (Router.stats router).(1).breaker

let test_hedge_off_and_dead_backend () =
  (* hedge_reads:false — the rejection is reported as-is. *)
  let router, ring, tbs = hedging_router ~hedge_reads:false in
  let k = shard_key ring 0 in
  tbs.(0).w_killed := true;
  for _ = 1 to 2 do
    ignore (Router.call router (Svc.Insert (k, 8)))
  done;
  Alcotest.check outcome "no hedge: read rejected"
    (Svc.Rejected Svc.Breaker_open)
    (Router.call router (Svc.Find k));
  (* hedge on, but the backend is dead for reads too: the hedge is best
     effort and the original Failed outcome stands. *)
  let router, ring, tbs = hedging_router ~hedge_reads:true in
  let k = shard_key ring 0 in
  tbs.(0).killed := true;
  (match Router.call router (Svc.Find k) with
  | Svc.Failed _ -> ()
  | o -> Alcotest.failf "dead backend: expected Failed, got %s"
           (Svc.outcome_to_string o))

(* --- Rebalance: conservation oracle ---------------------------------- *)

let key_range_c = 64

let test_rebalance_conservation =
  Support.qcheck ~count:150 "rebalance: every key owned by exactly one shard"
    QCheck2.Gen.(
      quad (0 -- 1000) (0 -- 2) (0 -- 2)
        (list_size (0 -- 80) (pair (int_bound 2) (int_bound (key_range_c - 1)))))
    (fun (seed, slot, to_, script) ->
      let router, ring, tbs = plain_router ~shards:3 ~seed () in
      (* Random mutations through the router. *)
      List.iter
        (fun (tag, k) ->
          ignore
            (Router.call router
               (match tag with
               | 0 -> Svc.Insert (k, k)
               | 1 -> Svc.Delete k
               | _ -> Svc.Find k)))
        script;
      let present_in_slot =
        List.length
          (List.filter
             (fun k ->
               Hash_ring.slot_of ring k = slot
               && Hashtbl.mem tbs.(Hash_ring.owner ring slot).h k)
             (List.init key_range_c Fun.id))
      in
      let moved = Router.rebalance router ~slot ~to_ ~key_range:key_range_c in
      let expected_moved = if Hash_ring.owner ring slot = to_ then 0 else present_in_slot in
      (* Conservation: each key present in at most one backend, and that
         backend is the router's current owner. *)
      let conserved =
        List.for_all
          (fun k ->
            let where =
              List.filter (fun i -> Hashtbl.mem tbs.(i).h k) [ 0; 1; 2 ]
            in
            match where with
            | [] -> true
            | [ i ] -> i = Router.route router k
            | _ -> false)
          (List.init key_range_c Fun.id)
      in
      moved = expected_moved && conserved
      && Router.migrated_keys router = moved)

(* --- Chaos: a shard-targeted stall plan through the router ----------- *)

module K = Lf_kernel.Ordered.Int

type faulty = {
  f_backend : Router.backend;
  f_install : Fault.plan -> unit;
  f_uninstall : unit -> unit;
}

let mk_faulty_list ~prefill () =
  let module FM = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem) in
  let module L = Lf_list.Fr_list.Make (K) (FM) in
  let t = L.create () in
  List.iter (fun k -> ignore (L.insert t k k)) prefill;
  {
    f_backend =
      {
        Router.insert = (fun k v -> L.insert t k v);
        delete = L.delete t;
        find = L.find t;
        batched = None;
      };
    f_install = FM.install;
    f_uninstall = (fun () -> FM.uninstall ());
  }

let test_chaos_shard_targeted_stall () =
  let clock = Clock.real () in
  let ms = Clock.ms clock in
  let shards = 2 and key_range = 128 in
  let ring = Hash_ring.create ~seed:11 ~shards () in
  (* Lists start empty: [run_chaos] prefills to 50% through the router
     itself and counts only successful inserts, so pre-populating here
     would make that loop spin forever on duplicates. *)
  let f = Array.init shards (fun _ -> mk_faulty_list ~prefill:[] ()) in
  let cfg _ =
    Svc.config ~clock
      ~breaker:
        (Some
           (Breaker.config ~window:(ms 100) ~min_calls:3 ~failure_pct:40
              ~latency_threshold:(ms 1 / 64) ~open_for:(ms 100) ~probes:3 ()))
      ~degrade:(Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
      ()
  in
  let router =
    Router.create ~hedge_reads:false ~ring ~svc_config:cfg (fun i ->
        f.(i).f_backend)
  in
  (* Stall every worker-lane access of shard 0's memory: the containment
     claim is that lanes keep making progress on shard 1's keyspace and
     nobody starves past the watchdog budget.  The plan is installed
     before [run_chaos] spawns its workers (module-level fault state is
     published by [Domain.spawn]); targeting lanes 0 and 1 leaves the
     monitor's lane(-1) prefill clean, so the victim breaker only sees
     stalled traffic once the measured window starts. *)
  f.(0).f_install
    (Fault.make_plan ~seed:13
       [
         { Fault.point = FP.Any; action = Stall 8; mode = Always; lane = Some 0 };
         { Fault.point = FP.Any; action = Stall 8; mode = Always; lane = Some 1 };
       ]);
  let as_bool = function
    | Svc.Served ok -> ok
    | Svc.Served_stale (ok, _) -> ok
    | Svc.Rejected _ | Svc.Failed _ -> false
  in
  let r =
    Lf_workload.Runner.run_chaos ~name:"router+stall-shard-0" ~window_s:0.15
      ~insert:(fun k -> as_bool (Router.call router (Svc.Insert (k, k))))
      ~delete:(fun k -> as_bool (Router.call router (Svc.Delete k)))
      ~find:(fun k -> as_bool (Router.call router (Svc.Find k)))
      ~domains:2 ~key_range
      ~mix:{ Lf_workload.Opgen.insert_pct = 30; delete_pct = 30 }
      ~seed:17 ()
  in
  f.(0).f_uninstall ();
  Alcotest.(check bool) "watchdog clean: no lane starved" false
    r.Lf_workload.Runner.c_watchdog_tripped;
  Alcotest.(check (list int)) "no lane crashed" [] r.c_crashed;
  Alcotest.(check bool) "lanes made progress" true (r.c_survivor_ops > 0);
  let st = (Router.stats router).(0) in
  Alcotest.(check bool) "victim breaker opened under the stall" true
    (List.exists (fun (_, s) -> s = "open") st.transitions);
  Alcotest.(check (option string)) "healthy shard stayed closed"
    (Some "closed")
    (Router.stats router).(1).breaker

(* --- Per-key linearizability across a live handoff ------------------- *)

(* Two domains hammer a tiny key space through the router while the main
   thread hands slot 0 to the other shard.  Every Served outcome is a
   completed history entry; rejections never executed; without faults
   nothing is pending.  Linearizability decomposes per key for a
   dictionary, so each key's projected history must linearize against
   its prefill state — across the copy and the ownership flip. *)
let test_linearizable_across_rebalance () =
  let key_range = 6 and shards = 2 in
  let clock = Clock.real () in
  let ring = Hash_ring.create ~seed:21 ~shards () in
  let lists = Array.init shards (fun _ -> Lf_list.Fr_list.Atomic_int.create ()) in
  let module AI = Lf_list.Fr_list.Atomic_int in
  (* Even keys start present, on their owning shard. *)
  for k = 0 to key_range - 1 do
    if k land 1 = 0 then
      ignore (AI.insert lists.(Hash_ring.shard_of ring k) k k)
  done;
  let backend i =
    let t = lists.(i) in
    {
      Router.insert = (fun k v -> AI.insert t k v);
      delete = AI.delete t;
      find = AI.find t;
      batched = None;
    }
  in
  let router =
    Router.create ~ring ~svc_config:(fun _ -> Svc.config ~clock ()) backend
  in
  let rec_ = History.Recorder.create () in
  let worker pid =
    Domain.spawn (fun () ->
        let rng = Lf_kernel.Splitmix.create (100 + pid) in
        let entries = ref [] in
        for _ = 1 to 40 do
          let k = Lf_kernel.Splitmix.int rng key_range in
          let op, req =
            match Lf_kernel.Splitmix.int rng 3 with
            | 0 -> (History.Insert k, Svc.Insert (k, k))
            | 1 -> (History.Delete k, Svc.Delete k)
            | _ -> (History.Find k, Svc.Find k)
          in
          let inv = History.Recorder.tick rec_ in
          (match Router.call router req with
          | Svc.Served ok ->
              let ret = History.Recorder.tick rec_ in
              entries := { History.pid; op; ok; inv; ret } :: !entries
          | Svc.Served_stale (_, lag) ->
              Alcotest.failf "unexpected stale read (lag=%d): no replicas" lag
          | Svc.Rejected _ -> () (* never executed: no history entry *)
          | Svc.Failed m -> Alcotest.failf "unexpected Failed: %s" m);
          Domain.cpu_relax ()
        done;
        History.Recorder.add rec_ !entries)
  in
  let d0 = worker 0 and d1 = worker 1 in
  (* Hand slot 0 over while the workers run. *)
  Unix.sleepf 0.002;
  let moved = Router.rebalance router ~slot:0 ~to_:1 ~key_range in
  Domain.join d0;
  Domain.join d1;
  Alcotest.(check bool) "rebalance ran" true (moved >= 0);
  let hist = History.Recorder.history rec_ in
  Alcotest.(check bool) "history not empty" true (hist <> []);
  let key_of_op = function
    | History.Find k | History.Insert k | History.Delete k -> k
  in
  for k = 0 to key_range - 1 do
    let proj = List.filter (fun (e : History.entry) -> key_of_op e.op = k) hist in
    let init =
      if k land 1 = 0 then Lf_lin.Checker.IntSet.singleton k
      else Lf_lin.Checker.IntSet.empty
    in
    if not (Lf_workload.Runner.linearizable_with_pending ~init proj []) then
      Alcotest.failf "key %d: projected history not linearizable:@\n%a" k
        History.pp proj
  done;
  (* And the handoff conserved the keyspace. *)
  for k = 0 to key_range - 1 do
    let where =
      List.filter (fun i -> AI.mem lists.(i) k) (List.init shards Fun.id)
    in
    match where with
    | [] -> ()
    | [ i ] ->
        Alcotest.(check int)
          (Printf.sprintf "key %d at its owner" k)
          (Router.route router k) i
    | _ -> Alcotest.failf "key %d present on several shards" k
  done

(* --- Abort journal + resume: stuck is distinguishable from done ------- *)

let test_abort_and_resume () =
  let key_range = 64 in
  let router, ring, tbs = plain_router ~shards:3 ~seed:5 () in
  let slot = 0 in
  let from = Hash_ring.owner ring slot in
  let to_ = (from + 1) mod 3 and other = (from + 2) mod 3 in
  let keys =
    List.filter
      (fun k -> Hash_ring.slot_of ring k = slot)
      (List.init key_range Fun.id)
  in
  Alcotest.(check bool) "slot has keys to move" true (List.length keys >= 2);
  List.iter
    (fun k ->
      Alcotest.check outcome
        (Printf.sprintf "prefill %d" k)
        (Svc.Served true)
        (Router.call router (Svc.Insert (k, k))))
    keys;
  (* Destination writes dead: the first key's copy exhausts its bounded
     retries and the migration aborts. *)
  tbs.(to_).w_killed := true;
  (match Router.rebalance router ~slot ~to_ ~key_range with
  | moved -> Alcotest.failf "abort expected, migration completed (%d)" moved
  | exception Failure _ -> ());
  Alcotest.(check int) "abort counted" 1 (Router.aborts router);
  (* The terminal journal record distinguishes stuck from done. *)
  let abort_line =
    Printf.sprintf "rebalance slot=%d shard %d -> %d abort" slot from to_
  in
  Alcotest.(check bool) "abort journaled" true
    (List.exists (fun l -> contains l abort_line) (Router.journal ()));
  (match Router.migration_status router with
  | Some ms ->
      Alcotest.(check bool) "status says aborted" true ms.Router.ms_aborted;
      Alcotest.(check int) "status slot" slot ms.Router.ms_slot;
      Alcotest.(check int) "status target" to_ ms.Router.ms_to
  | None -> Alcotest.fail "aborted migration record must be kept");
  (* The kept watermark keeps routing correct: nothing moved, every key
     still routed to (and held by) the source. *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "key %d still routed to source" k)
        from (Router.route router k);
      Alcotest.(check bool)
        (Printf.sprintf "key %d still held by source" k)
        true
        (Hashtbl.mem tbs.(from).h k))
    keys;
  (* Only the same slot+target resumes; anything else is refused while
     the aborted record stands. *)
  (match Router.rebalance router ~slot ~to_:other ~key_range with
  | _ -> Alcotest.fail "different target must not resume"
  | exception Invalid_argument _ -> ());
  (match Router.rebalance router ~slot:1 ~to_ ~key_range with
  | _ -> Alcotest.fail "different slot must not resume"
  | exception Invalid_argument _ -> ());
  (* Heal the destination; the retry resumes from the watermark and
     completes. *)
  tbs.(to_).w_killed := false;
  let moved = Router.rebalance router ~slot ~to_ ~key_range in
  Alcotest.(check int) "resume moved every key" (List.length keys) moved;
  Alcotest.(check bool) "migration record cleared" true
    (Router.migration_status router = None);
  Alcotest.(check bool) "resume journaled" true
    (List.exists
       (fun l ->
         contains l
           (Printf.sprintf "rebalance slot=%d shard %d -> %d resume" slot from
              to_))
       (Router.journal ()));
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "key %d routed to target" k)
        to_ (Router.route router k);
      Alcotest.(check bool)
        (Printf.sprintf "key %d on exactly the target" k)
        true
        (Hashtbl.mem tbs.(to_).h k && not (Hashtbl.mem tbs.(from).h k)))
    keys

(* --- Monitor: the breaker-open anomaly fires once --------------------- *)

let test_monitor_no_double_fire () =
  let router, ring, tbs = hedging_router ~hedge_reads:false in
  let mon = Health.monitor () in
  Alcotest.(check (list int)) "nothing open yet" []
    (Health.newly_open mon router);
  let k = shard_key ring 0 in
  ignore (Router.call router (Svc.Insert (k, 1)));
  tbs.(0).w_killed := true;
  for _ = 1 to 4 do
    ignore (Router.call router (Svc.Insert (k, 2)))
  done;
  Alcotest.(check (option string)) "breaker open" (Some "open")
    (Router.stats router).(0).breaker;
  (* The KILL + immediate FLIGHTDUMP shape: two observations of the same
     opening must fire exactly one anomaly. *)
  Alcotest.(check (list int)) "first poll fires" [ 0 ]
    (Health.newly_open mon router);
  Alcotest.(check (list int)) "second poll does not" []
    (Health.newly_open mon router);
  (* A chaos KILL pre-marks its victim: the breaker trip that follows is
     attributed to the kill bundle, never re-fired. *)
  let mon2 = Health.monitor () in
  Health.mark_open mon2 0;
  Alcotest.(check (list int)) "pre-marked victim not re-fired" []
    (Health.newly_open mon2 router)

(* --- Replica: journal, budgeted apply, lag --------------------------- *)

let tbl_store () =
  let h = Hashtbl.create 16 in
  ( h,
    {
      Replica.r_insert = (fun k v -> Hashtbl.replace h k v; true);
      r_delete =
        (fun k ->
          if Hashtbl.mem h k then (Hashtbl.remove h k; true) else false);
      r_find = (fun k -> Hashtbl.find_opt h k);
    } )

let test_replica_journal_and_lag () =
  let reps = Replica.create () in
  let _h, store = tbl_store () in
  Replica.add_slot reps ~slot:2 ~on:1 ~store;
  (match Replica.add_slot reps ~slot:2 ~on:0 ~store with
  | () -> Alcotest.fail "duplicate slot accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (option int)) "host" (Some 1) (Replica.host reps ~slot:2);
  (* Unreplicated slots: record is a no-op, read answers None. *)
  Replica.record reps ~slot:7 ~now:0 (Replica.Put (1, 1));
  Alcotest.(check bool) "unreplicated read" true
    (Replica.read reps ~slot:7 ~key:1 ~now:0 = None);
  (* Recorded but unapplied entries are invisible; lag counts from the
     oldest pending entry's record tick. *)
  Replica.record reps ~slot:2 ~now:10 (Replica.Put (5, 50));
  Replica.record reps ~slot:2 ~now:12 (Replica.Del 6);
  (match Replica.read reps ~slot:2 ~key:5 ~now:14 with
  | Some (None, 4) -> ()
  | Some (v, lag) ->
      Alcotest.failf "pre-apply read: value=%s lag=%d"
        (match v with None -> "none" | Some v -> string_of_int v)
        lag
  | None -> Alcotest.fail "replicated slot read None");
  (match Replica.stats reps ~now:14 with
  | [ st ] ->
      Alcotest.(check int) "pending" 2 st.Replica.s_pending;
      Alcotest.(check int) "lag" 4 st.Replica.s_lag
  | l -> Alcotest.failf "one replicated slot expected, got %d" (List.length l));
  (* Budgeted apply drains oldest-first: the Put lands, the Del stays
     pending and the lag re-bases on it. *)
  Alcotest.(check int) "apply one" 1 (Replica.apply ~budget:1 reps);
  (match Replica.read reps ~slot:2 ~key:5 ~now:14 with
  | Some (Some 50, 2) -> ()
  | _ -> Alcotest.fail "budgeted apply wrong");
  Alcotest.(check int) "drain applies the rest" 1 (Replica.drain reps ~slot:2);
  (match Replica.read reps ~slot:2 ~key:5 ~now:20 with
  | Some (Some 50, 0) -> ()
  | _ -> Alcotest.fail "drained copy must be lag 0");
  (* Failover reads are counted (the staleness oracle); control-plane
     peeks are not. *)
  Alcotest.(check int) "reads counted" 3 (Replica.reads reps);
  Alcotest.(check (option int)) "peek sees the copy" (Some 50)
    (Replica.peek reps ~slot:2 ~key:5);
  Alcotest.(check int) "peek uncounted" 3 (Replica.reads reps);
  (match Replica.stats reps ~now:20 with
  | [ st ] ->
      Alcotest.(check int) "applied" 2 st.Replica.s_applied;
      Alcotest.(check int) "nothing pending" 0 st.Replica.s_pending
  | _ -> Alcotest.fail "stats after drain");
  Replica.remove_slot reps ~slot:2;
  Alcotest.(check bool) "retired" false (Replica.replicated reps ~slot:2)

(* --- The staleness contract at the router ----------------------------- *)

let slot_key ?(from = 0) ring slot =
  let rec go k = if Hash_ring.slot_of ring k = slot then k else go (k + 1) in
  go from

let test_replica_failover_stale_tagged () =
  let router, ring, tbs = plain_router ~shards:2 ~seed:9 () in
  let k = shard_key ring 0 in
  let slot = Hash_ring.slot_of ring k in
  let reps = Replica.create () in
  let _h, store = tbl_store () in
  Replica.add_slot reps ~slot ~on:1 ~store;
  Router.attach_replicas router reps;
  Alcotest.check outcome "write served" (Svc.Served true)
    (Router.call router (Svc.Insert (k, 41)));
  (* Replication is async: the journaled write only reaches the copy on
     apply. *)
  Alcotest.(check int) "journal applied" 1 (Replica.apply reps);
  (* The shard dies outright — reads throw, so the hedge cannot answer
     from the backend and falls back to the replica.  Every replica
     answer is stale-tagged; a fresh [Served] would be a contract
     violation. *)
  tbs.(0).killed := true;
  Alcotest.check outcome "dead shard: replica answers, stale-tagged"
    (Svc.Served_stale (true, 0))
    (Router.call router (Svc.Find k));
  Alcotest.check outcome "missing key: an honest stale false"
    (Svc.Served_stale (false, 0))
    (Router.call router (Svc.Find (slot_key ~from:(k + 1) ring slot)));
  Alcotest.(check int) "every replica answer counted" 2
    (Router.stale_reads router);
  Alcotest.(check int) "and counted at the replica too" 2 (Replica.reads reps);
  (* Writes never fail over to a replica. *)
  (match Router.call router (Svc.Insert (k, 99)) with
  | Svc.Failed _ | Svc.Rejected _ -> ()
  | o -> Alcotest.failf "write must not fail over: %s" (Svc.outcome_to_string o))

(* --- Supervisor: hysteresis, pacing, backoff -------------------------- *)

let mk_health ?(calls = fun _ -> 0) ?(rejected = fun _ -> 0) ~sick ids =
  List.map
    (fun i ->
      let bad = List.mem i sick in
      {
        Health.h_id = i;
        h_ok = not bad;
        h_breaker = (if bad then "open" else "closed");
        h_mode = "normal";
        h_slots = 1;
        h_calls = calls i;
        h_served = calls i - rejected i;
        h_failed = 0;
        h_rejected = rejected i;
        h_hedged = 0;
        h_hedge_wins = 0;
      })
    ids

let test_supervisor_hysteresis_and_backoff () =
  let clock, _ = Clock.manual () in
  let cfg =
    Supervisor.config ~poll_every:1 ~sick_after:3 ~healthy_after:2
      ~backoff_base:4 ~backoff_max:8 ~clock ~key_range:16 ()
  in
  let sup = Supervisor.create cfg ~shards:2 in
  let tick ~now ~sick =
    Supervisor.tick sup ~now
      ~health:(mk_health ~sick [ 0; 1 ])
      ~assignment:[| 0; 1 |]
      ~replica_host:(fun _ -> None)
      ~pending_abort:None ~fast_burn:false
  in
  (* Hysteresis: two sick polls are not enough; the third plans exactly
     one copy evacuation onto the healthy shard. *)
  Alcotest.(check int) "poll 1 holds" 0 (List.length (tick ~now:1 ~sick:[ 0 ]));
  Alcotest.(check int) "same tick not re-polled (poll_every)" 0
    (List.length (tick ~now:1 ~sick:[ 0 ]));
  Alcotest.(check int) "poll 2 holds" 0 (List.length (tick ~now:2 ~sick:[ 0 ]));
  let a =
    match tick ~now:3 ~sick:[ 0 ] with
    | [ ({ Supervisor.a_slot = 0; a_from = 0; a_to = 1; a_via = Copy } as a) ]
      ->
        a
    | l -> Alcotest.failf "poll 3: one copy evacuation expected, got %d"
             (List.length l)
  in
  Alcotest.(check (list int)) "sick list" [ 0 ] (Supervisor.stats sup).sick;
  (* A failed heal backs the source off exponentially: base 4, then
     capped at 8. *)
  Supervisor.report sup ~now:3 a ~ok:false ~moved:0;
  Alcotest.(check int) "backing off (t=4)" 0
    (List.length (tick ~now:4 ~sick:[ 0 ]));
  Alcotest.(check int) "backing off (t=6)" 0
    (List.length (tick ~now:6 ~sick:[ 0 ]));
  (match tick ~now:7 ~sick:[ 0 ] with
  | [ a ] -> Supervisor.report sup ~now:7 a ~ok:false ~moved:0
  | l -> Alcotest.failf "backoff expiry must retry, got %d" (List.length l));
  Alcotest.(check int) "doubled backoff capped (t=14)" 0
    (List.length (tick ~now:14 ~sick:[ 0 ]));
  (match tick ~now:15 ~sick:[ 0 ] with
  | [ a ] -> Supervisor.report sup ~now:15 a ~ok:true ~moved:5
  | l -> Alcotest.failf "capped backoff expiry must retry, got %d"
           (List.length l));
  (* Success re-arms immediately and the journal carries the story. *)
  let s = Supervisor.stats sup in
  Alcotest.(check int) "heals done" 1 s.Supervisor.heals_done;
  Alcotest.(check int) "heals failed" 2 s.Supervisor.heals_failed;
  Alcotest.(check int) "keys moved" 5 s.Supervisor.keys_moved;
  let j = Supervisor.journal sup in
  Alcotest.(check bool) "sick transition journaled" true
    (List.exists (fun l -> contains l "shard 0 sick") j);
  Alcotest.(check bool) "failures journaled with backoff" true
    (List.exists (fun l -> contains l "backoff=8") j);
  (* Recovery clears the sick streak. *)
  ignore (tick ~now:16 ~sick:[]);
  Alcotest.(check (list int)) "recovered" [] (Supervisor.stats sup).sick;
  Alcotest.(check bool) "recovery journaled" true
    (List.exists (fun l -> contains l "shard 0 recovered")
       (Supervisor.journal sup))

let test_supervisor_shed_sick_and_fast_burn () =
  let clock, _ = Clock.manual () in
  let cfg =
    Supervisor.config ~poll_every:1 ~sick_after:4 ~healthy_after:1 ~clock
      ~key_range:8 ()
  in
  let sup = Supervisor.create cfg ~shards:2 in
  let tick ~now ~fast_burn h =
    Supervisor.tick sup ~now ~health:h ~assignment:[| 0; 1 |]
      ~replica_host:(fun _ -> None)
      ~pending_abort:None ~fast_burn
  in
  (* 60% of the poll's calls shed counts as sick even with the breaker
     closed. *)
  let shedding ~calls ~rejected =
    mk_health ~sick:[]
      ~calls:(fun i -> if i = 0 then calls else 0)
      ~rejected:(fun i -> if i = 0 then rejected else 0)
      [ 0; 1 ]
  in
  Alcotest.(check int) "shed poll 1 holds" 0
    (List.length (tick ~now:1 ~fast_burn:false (shedding ~calls:100 ~rejected:60)));
  (* An SLO fast burn halves sick_after (4 -> 2): the second bad poll
     acts. *)
  (match tick ~now:2 ~fast_burn:true (shedding ~calls:200 ~rejected:120) with
  | [ { Supervisor.a_from = 0; a_via = Copy; _ } ] -> ()
  | l ->
      Alcotest.failf "fast burn must act on poll 2, got %d actions"
        (List.length l))

let test_supervisor_resume_priority_and_promote_target () =
  let clock, _ = Clock.manual () in
  let cfg =
    Supervisor.config ~poll_every:1 ~sick_after:1 ~healthy_after:1 ~clock
      ~key_range:8 ()
  in
  let sup = Supervisor.create cfg ~shards:3 in
  let health = mk_health ~sick:[ 0 ] [ 0; 1; 2 ] in
  (* The router's aborted migration is resumed before anything else is
     planned; via=Promote exactly when the slot's replica lives on the
     stranded target. *)
  (match
     Supervisor.tick sup ~now:1 ~health ~assignment:[| 0; 1; 2 |]
       ~replica_host:(fun s -> if s = 0 then Some 2 else None)
       ~pending_abort:(Some (0, 0, 2)) ~fast_burn:false
   with
  | [ { Supervisor.a_slot = 0; a_from = 0; a_to = 2; a_via = Promote } ] -> ()
  | _ -> Alcotest.fail "resume onto the replica host must promote");
  (match
     Supervisor.tick sup ~now:2 ~health ~assignment:[| 0; 1; 2 |]
       ~replica_host:(fun _ -> None)
       ~pending_abort:(Some (0, 0, 1)) ~fast_burn:false
   with
  | [ { Supervisor.a_slot = 0; a_from = 0; a_to = 1; a_via = Copy } ] -> ()
  | _ -> Alcotest.fail "resume without a replica copies");
  (* Fresh planning prefers promotion when the replica host is healthy. *)
  (match
     Supervisor.tick sup ~now:3 ~health ~assignment:[| 0; 1; 2 |]
       ~replica_host:(fun s -> if s = 0 then Some 1 else None)
       ~pending_abort:None ~fast_burn:false
   with
  | [ { Supervisor.a_slot = 0; a_from = 0; a_to = 1; a_via = Promote } ] -> ()
  | _ -> Alcotest.fail "planning must prefer the replica host")

(* --- End to end: the supervisor promotes a replica off a dead shard --- *)

let test_supervisor_promotes_off_dead_shard () =
  let clock, advance = Clock.manual () in
  let shards = 2 and key_range = 32 in
  let ring = Hash_ring.create ~seed:3 ~shards () in
  let pairs = Array.init shards (fun _ -> table_backend ()) in
  let tbs = Array.map fst pairs in
  let cfg _ =
    Svc.config ~clock
      ~retryable:(fun _ -> false)
      ~breaker:
        (Some
           (Breaker.config ~window:1_000_000 ~min_calls:2 ~failure_pct:50
              ~open_for:1_000_000 ~probes:1 ()))
      ~degrade:(Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
      ()
  in
  let router = Router.create ~ring ~svc_config:cfg (fun i -> snd pairs.(i)) in
  let reps = Replica.create () in
  let copy, store = tbl_store () in
  Replica.add_slot reps ~slot:0 ~on:1 ~store;
  Router.attach_replicas router reps;
  let keys =
    List.filter
      (fun k -> Hash_ring.slot_of ring k = 0)
      (List.init key_range Fun.id)
  in
  List.iter
    (fun k ->
      Alcotest.check outcome
        (Printf.sprintf "prefill %d" k)
        (Svc.Served true)
        (Router.call router (Svc.Insert (k, k + 100))))
    keys;
  let sup =
    Supervisor.create
      (Supervisor.config ~poll_every:1 ~sick_after:2 ~healthy_after:1 ~clock
         ~key_range ())
      ~shards
  in
  (* A healthy poll: the replica journal applies on the supervisor's
     pace, and nothing is planned. *)
  advance 1;
  Alcotest.(check int) "healthy tick heals nothing" 0
    (Supervisor.run_tick sup router);
  Alcotest.(check (option int)) "replica copy caught up" (Some (List.hd keys + 100))
    (Hashtbl.find_opt copy (List.hd keys));
  (* Shard 0 dies outright (reads AND writes throw) — rebalance alone
     could never evacuate it; only the replica can. *)
  tbs.(0).killed := true;
  let rec trip budget =
    if budget = 0 then Alcotest.fail "breaker never opened"
    else
      match Router.call router (Svc.Insert (List.hd keys, 1)) with
      | Svc.Rejected Svc.Breaker_open -> ()
      | _ -> trip (budget - 1)
  in
  trip 60;
  let healed = ref 0 in
  for _ = 1 to 6 do
    advance 1;
    healed := !healed + Supervisor.run_tick sup router
  done;
  Alcotest.(check int) "exactly one heal" 1 !healed;
  Alcotest.(check int) "a promotion, not a copy" 1 (Router.promotions router);
  Alcotest.(check bool) "replica retired" false (Replica.replicated reps ~slot:0);
  (match Router.slots_of_shard router with
  | [| 0; 2 |] -> ()
  | a ->
      Alcotest.failf "shard 0 not evacuated: slots=[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int a))));
  (* Recovery is complete without operator intervention: the evacuated
     corpse no longer degrades overall health, and every key serves
     fresh from the new owner with its replicated value. *)
  let line = Health.line router in
  Alcotest.(check bool)
    (Printf.sprintf "health back to ok (%s)" line)
    true
    (String.length line >= 3 && String.sub line 0 3 = "ok ");
  List.iter
    (fun k ->
      Alcotest.check outcome
        (Printf.sprintf "key %d fresh from the new owner" k)
        (Svc.Served true)
        (Router.call router (Svc.Find k));
      Alcotest.(check (option int))
        (Printf.sprintf "key %d value survived" k)
        (Some (k + 100))
        (Hashtbl.find_opt tbs.(1).h k))
    keys;
  (* The serve loop's flight-dump feed saw the heal begin and end. *)
  let evs = Supervisor.events sup in
  Alcotest.(check bool) "heal begun event (promote)" true
    (List.exists
       (function
         | Supervisor.Heal_begun { e_shard = 0; e_via = Supervisor.Promote; _ }
           ->
             true
         | _ -> false)
       evs);
  Alcotest.(check bool) "heal ended ok" true
    (List.exists
       (function
         | Supervisor.Heal_ended { e_ok = true; e_moved; _ } ->
             e_moved = List.length keys
         | _ -> false)
       evs)

(* --- Hedged reads racing a live handoff ------------------------------- *)

(* A reader forced down the hedge path (shed rejects reads at the door,
   the router retries them straight at the backend) races a writer
   bumping one key's value while the main thread hands the key's slot
   over.  The inflight mark taken at [begin_op] pins the key's owner for
   the whole call, and a key is copied only once its inflight count
   drains — so no read may observe state older than the copy watermark:
   per reader, observed values never go backwards, and the key never
   vanishes once seen.  Values are observed at the backend seam (the
   hedge reads it directly), keyed by domain so the migrator's own copy
   reads are excluded. *)
let test_hedged_read_vs_handoff =
  Support.qcheck ~count:15 "hedge vs handoff: never behind the drain watermark"
    QCheck2.Gen.(pair (0 -- 1000) (0 -- 7))
    (fun (seed, key) ->
      let clock = Clock.real () in
      let shards = 2 in
      let ring = Hash_ring.create ~seed ~shards () in
      let mu = Mutex.create () in
      let log = ref [] in
      let hs = Array.init shards (fun _ -> Hashtbl.create 32) in
      (* Replace-semantics stores: insert overwrites, so the writer's
         monotone values are directly the linearization order. *)
      let backend i =
        let h = hs.(i) in
        {
          Router.insert =
            (fun k v ->
              Mutex.lock mu;
              Hashtbl.replace h k v;
              Mutex.unlock mu;
              true);
          delete =
            (fun k ->
              Mutex.lock mu;
              let r = Hashtbl.mem h k in
              Hashtbl.remove h k;
              Mutex.unlock mu;
              r);
          find =
            (fun k ->
              Mutex.lock mu;
              let r = Hashtbl.find_opt h k in
              log :=
                ((Domain.self () :> int), Option.value r ~default:0) :: !log;
              Mutex.unlock mu;
              r);
          batched = None;
        }
      in
      let cfg _ =
        Svc.config ~clock
          ~shed:(Some (Lf_svc.Shed.config ~max_queue:8 ()))
          ()
      in
      let router = Router.create ~ring ~svc_config:cfg backend in
      let slot = Hash_ring.slot_of ring key in
      let to_ = 1 - Hash_ring.owner ring slot in
      let stop = Atomic.make false in
      let writer =
        Domain.spawn (fun () ->
            let v = ref 1 in
            while not (Atomic.get stop) do
              (match Router.call router (Svc.Insert (key, !v)) with
              | Svc.Served _ -> incr v
              | _ -> ());
              Domain.cpu_relax ()
            done)
      in
      let reader =
        Domain.spawn (fun () ->
            let id = (Domain.self () :> int) in
            let ok = ref true in
            for _ = 1 to 300 do
              (match Router.call router ~queue_depth:1_000 (Svc.Find key) with
              | Svc.Served _ -> ()
              | _ -> ok := false);
              Domain.cpu_relax ()
            done;
            (id, !ok))
      in
      Unix.sleepf 0.001;
      let moved = Router.rebalance router ~slot ~to_ ~key_range:8 in
      let reader_id, reads_served = Domain.join reader in
      Atomic.set stop true;
      Domain.join writer;
      let observed =
        List.rev_map snd
          (List.filter (fun (d, _) -> d = reader_id) !log)
      in
      (* Monotone: once a value (or presence) is observed, no later read
         may fall behind it — the handoff never exposes pre-copy
         state. *)
      let monotone =
        fst
          (List.fold_left
             (fun (ok, prev) v -> (ok && v >= prev, max prev v))
             (true, 0) observed)
      in
      let hedged =
        Array.fold_left (fun a (att, _) -> a + att) 0
          (Router.hedge_stats router)
      in
      moved >= 0 && reads_served && monotone && hedged > 0
      && observed <> [])

let test_health_and_metrics () =
  let router, ring, tbs = plain_router ~shards:2 ~seed:8 () in
  ignore ring;
  List.iter
    (fun k -> ignore (Router.call router (Svc.Insert (k, k))))
    (List.init 10 Fun.id);
  let line = Health.line router in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "health names every shard" true
    (contains line "s0=" && contains line "s1=");
  tbs.(0).killed := true;
  (match Router.call router (Svc.Find 0) with
   | _ -> ());
  let text = Lf_obs.Prom.render_metrics (Health.metrics router) in
  match Lf_obs.Prom.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "per-shard metrics not valid exposition: %s" e

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        [ test_ring_deterministic; test_ring_reassign ] );
      ( "routing",
        [
          test_routing_hits_owner;
          Alcotest.test_case "scatter-gather partial failure" `Quick
            test_call_many_partial_failure;
        ] );
      ( "hedging",
        [
          Alcotest.test_case "read hedges around a tripped shard" `Quick
            test_hedged_read_tripped_shard;
          Alcotest.test_case "hedge off / dead backend" `Quick
            test_hedge_off_and_dead_backend;
        ] );
      ( "rebalance",
        [
          test_rebalance_conservation;
          Alcotest.test_case "per-key linearizability across a handoff"
            `Quick test_linearizable_across_rebalance;
          Alcotest.test_case "abort journaled, watermark kept, resume" `Quick
            test_abort_and_resume;
          test_hedged_read_vs_handoff;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "shard-targeted stall, watchdog clean" `Quick
            test_chaos_shard_targeted_stall;
        ] );
      ( "health",
        [
          Alcotest.test_case "line + metrics exposition" `Quick
            test_health_and_metrics;
          Alcotest.test_case "breaker-open anomaly fires once" `Quick
            test_monitor_no_double_fire;
        ] );
      ( "replica",
        [
          Alcotest.test_case "journal, budgeted apply, lag" `Quick
            test_replica_journal_and_lag;
          Alcotest.test_case "failover reads are stale-tagged" `Quick
            test_replica_failover_stale_tagged;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "hysteresis and exponential backoff" `Quick
            test_supervisor_hysteresis_and_backoff;
          Alcotest.test_case "shed-rate sickness, SLO fast burn" `Quick
            test_supervisor_shed_sick_and_fast_burn;
          Alcotest.test_case "resume priority and promote targeting" `Quick
            test_supervisor_resume_priority_and_promote_target;
          Alcotest.test_case "promotes a replica off a dead shard" `Quick
            test_supervisor_promotes_off_dead_shard;
        ] );
    ]
