(* The shard layer (lib/shard, DESIGN.md §13): ring determinism and
   reassignment, routing to exactly the owning shard, scatter-gather
   partial-failure reporting (per-key outcomes, never a collapsed error
   or a silent drop), hedged/failover reads off a tripped or killed
   shard, rebalance conservation (every key owned by exactly one shard,
   before and after a handoff), chaos through the router with a
   shard-targeted fault plan, and per-key linearizability across a
   handoff performed under concurrent load. *)

module Svc = Lf_svc.Svc
module Clock = Lf_svc.Clock
module Breaker = Lf_svc.Breaker
module Degrade = Lf_svc.Degrade
module Hash_ring = Lf_shard.Hash_ring
module Router = Lf_shard.Router
module Health = Lf_shard.Health
module Fault = Lf_fault.Fault
module FP = Lf_kernel.Fault_point
module History = Lf_lin.History

let outcome =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Svc.outcome_to_string o))
    ( = )

(* --- The ring: pure, deterministic, reassignable --------------------- *)

let test_ring_deterministic =
  Support.qcheck ~count:300 "ring: slot_of pure in (key, shards, seed)"
    QCheck2.Gen.(triple (1 -- 8) (0 -- 1000) (0 -- 1_000_000))
    (fun (shards, seed, key) ->
      let r1 = Hash_ring.create ~seed ~shards () in
      let r2 = Hash_ring.create ~seed ~shards () in
      let s = Hash_ring.slot_of r1 key in
      s = Hash_ring.slot_of r2 key
      && s >= 0 && s < shards
      && Hash_ring.shard_of r1 key = Hash_ring.owner r1 s)

let test_ring_reassign =
  Support.qcheck ~count:200 "ring: reassign moves one slot, nothing else"
    QCheck2.Gen.(
      quad (2 -- 6) (0 -- 1000) (0 -- 5) (pair (0 -- 5) (0 -- 100)))
    (fun (shards, seed, slot0, (to0, key)) ->
      let slot = slot0 mod shards and to_ = to0 mod shards in
      let r = Hash_ring.create ~seed ~shards () in
      let r' = Hash_ring.reassign r ~slot ~to_ in
      (* The argument ring is unchanged; slot ownership moved; slot_of
         (hashing) is untouched by assignment. *)
      Hash_ring.owner r slot = slot
      && Hash_ring.owner r' slot = to_
      && Hash_ring.slot_of r' key = Hash_ring.slot_of r key
      && Array.to_list (Hash_ring.assignment r')
         |> List.mapi (fun i o -> i = slot || o = i)
         |> List.for_all Fun.id)

(* --- Table-backed shards for router tests ---------------------------- *)

type tb = {
  h : (int, int) Hashtbl.t;
  hits : int ref;
  killed : bool ref;  (* reads and writes fail *)
  w_killed : bool ref;  (* writes fail, reads still served *)
}

let table_backend () =
  let tb =
    { h = Hashtbl.create 32; hits = ref 0; killed = ref false;
      w_killed = ref false }
  in
  let guard ~write () =
    incr tb.hits;
    if !(tb.killed) || (write && !(tb.w_killed)) then failwith "backend down"
  in
  let b =
    {
      Router.insert =
        (fun k v ->
          guard ~write:true ();
          if Hashtbl.mem tb.h k then false else (Hashtbl.replace tb.h k v; true));
      delete =
        (fun k ->
          guard ~write:true ();
          if Hashtbl.mem tb.h k then (Hashtbl.remove tb.h k; true) else false);
      find = (fun k -> guard ~write:false (); Hashtbl.find_opt tb.h k);
      batched = None;
    }
  in
  (tb, b)

let plain_router ?hedge_reads ~shards ~seed () =
  let clock, _ = Clock.manual () in
  let ring = Hash_ring.create ~seed ~shards () in
  let tbs = Array.init shards (fun _ -> table_backend ()) in
  let router =
    Router.create ?hedge_reads ~ring
      ~svc_config:(fun _ -> Svc.config ~clock ~retryable:(fun _ -> false) ())
      (fun i -> snd tbs.(i))
  in
  (router, ring, Array.map fst tbs)

let test_routing_hits_owner =
  Support.qcheck ~count:100 "router: every call lands on the owning shard only"
    QCheck2.Gen.(pair (0 -- 1000) (list_size (1 -- 40) (0 -- 200)))
    (fun (seed, keys) ->
      let router, ring, tbs = plain_router ~shards:3 ~seed () in
      List.for_all
        (fun k ->
          let before = Array.map (fun tb -> !(tb.hits)) tbs in
          ignore (Router.call router (Svc.Insert (k, k)));
          let owner = Hash_ring.shard_of ring k in
          Array.to_list tbs
          |> List.mapi (fun i tb ->
                 !(tb.hits) - before.(i) = if i = owner then 1 else 0)
          |> List.for_all Fun.id)
        keys)

(* --- Scatter-gather: per-key outcomes, order and count preserved ----- *)

let test_call_many_partial_failure () =
  let router, ring, tbs = plain_router ~hedge_reads:false ~shards:3 ~seed:42 () in
  (* Prefill through the router: keys 0..19. *)
  List.iter
    (fun k ->
      Alcotest.check outcome
        (Printf.sprintf "prefill %d" k)
        (Svc.Served true)
        (Router.call router (Svc.Insert (k, k))))
    (List.init 20 Fun.id);
  (* Kill shard 1 outright; a batch spanning all shards must come back
     with one honest outcome per key, in input order. *)
  tbs.(1).killed := true;
  let reqs = List.init 20 (fun k -> Svc.Find k) @ [ Svc.Find 999 ] in
  let out = Router.call_many router reqs in
  Alcotest.(check int) "one outcome per request" (List.length reqs)
    (List.length out);
  List.iteri
    (fun i o ->
      let k = match List.nth reqs i with Svc.Find k -> k | _ -> assert false in
      let expected =
        if Hash_ring.shard_of ring k = 1 then `Failed
        else `Served (Hashtbl.mem tbs.(Hash_ring.shard_of ring k).h k)
      in
      match (expected, o) with
      | `Failed, Svc.Failed _ -> ()
      | `Served b, Svc.Served b' when b = b' -> ()
      | _ ->
          Alcotest.failf "key %d: got %s (shard %d, killed=%b)" k
            (Svc.outcome_to_string o)
            (Hash_ring.shard_of ring k)
            (Hash_ring.shard_of ring k = 1))
    out;
  (* Nothing silently dropped: every request reached some pipeline. *)
  let calls =
    Array.fold_left (fun a (st : Svc.stats) -> a + st.calls) 0
      (Router.stats router)
  in
  Alcotest.(check bool) "all requests admitted somewhere" true
    (calls >= List.length reqs)

(* --- Hedged/failover reads ------------------------------------------- *)

(* A shard whose writes die trips its breaker; with full fast-fail
   degrade the pipeline then rejects reads too — and the router serves
   them anyway, straight off the backend, because the paper's searches
   are safe to run outside the pipeline. *)
let hedging_router ~hedge_reads =
  let clock, _ = Clock.manual () in
  let ring = Hash_ring.create ~seed:3 ~shards:2 () in
  let tbs = Array.init 2 (fun _ -> table_backend ()) in
  let cfg _ =
    Svc.config ~clock
      ~retryable:(fun _ -> false)
      ~breaker:
        (Some
           (Breaker.config ~window:1_000_000 ~min_calls:2 ~failure_pct:50
              ~open_for:1_000_000 ~probes:1 ()))
      ~degrade:(Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
      ()
  in
  let router =
    Router.create ~hedge_reads ~ring ~svc_config:cfg (fun i -> snd tbs.(i))
  in
  (router, ring, Array.map fst tbs)

let shard_key ?(from = 0) ring s =
  let rec go k = if Hash_ring.shard_of ring k = s then k else go (k + 1) in
  go from

let test_hedged_read_tripped_shard () =
  let router, ring, tbs = hedging_router ~hedge_reads:true in
  let k = shard_key ring 0 in
  Alcotest.check outcome "prefill" (Svc.Served true)
    (Router.call router (Svc.Insert (k, 7)));
  tbs.(0).w_killed := true;
  (* Failed writes trip shard 0's breaker (full fast-fail mode).  The
     prefill success already counts toward min_calls, so the breaker may
     open after the very first failure — loop until it rejects. *)
  let failed_writes = ref 0 in
  let rec trip budget =
    if budget = 0 then Alcotest.fail "breaker never opened"
    else
      match Router.call router (Svc.Insert (k, 8)) with
      | Svc.Failed _ ->
          incr failed_writes;
          trip (budget - 1)
      | Svc.Rejected Svc.Breaker_open -> ()
      | o -> Alcotest.failf "unexpected write outcome %s" (Svc.outcome_to_string o)
  in
  trip 10;
  Alcotest.(check bool) "at least one write failed" true (!failed_writes >= 1);
  Alcotest.(check (option string)) "breaker open" (Some "open")
    (Router.stats router).(0).breaker;
  (* A write stays rejected — only reads fail over. *)
  (match Router.call router (Svc.Insert (k, 9)) with
  | Svc.Rejected Svc.Breaker_open -> ()
  | o -> Alcotest.failf "write not rejected: %s" (Svc.outcome_to_string o));
  (* The read is rejected by the pipeline, then served by the hedge. *)
  Alcotest.check outcome "read hedged around the open breaker"
    (Svc.Served true)
    (Router.call router (Svc.Find k));
  Alcotest.check outcome "missing key hedges to an honest false"
    (Svc.Served false)
    (Router.call router (Svc.Find (shard_key ~from:1000 ring 0)));
  Alcotest.(check bool) "hedge counter bumped" true
    ((Router.hedged router).(0) >= 2);
  (* Healthy shard untouched throughout. *)
  Alcotest.(check (option string)) "other shard closed" (Some "closed")
    (Router.stats router).(1).breaker

let test_hedge_off_and_dead_backend () =
  (* hedge_reads:false — the rejection is reported as-is. *)
  let router, ring, tbs = hedging_router ~hedge_reads:false in
  let k = shard_key ring 0 in
  tbs.(0).w_killed := true;
  for _ = 1 to 2 do
    ignore (Router.call router (Svc.Insert (k, 8)))
  done;
  Alcotest.check outcome "no hedge: read rejected"
    (Svc.Rejected Svc.Breaker_open)
    (Router.call router (Svc.Find k));
  (* hedge on, but the backend is dead for reads too: the hedge is best
     effort and the original Failed outcome stands. *)
  let router, ring, tbs = hedging_router ~hedge_reads:true in
  let k = shard_key ring 0 in
  tbs.(0).killed := true;
  (match Router.call router (Svc.Find k) with
  | Svc.Failed _ -> ()
  | o -> Alcotest.failf "dead backend: expected Failed, got %s"
           (Svc.outcome_to_string o))

(* --- Rebalance: conservation oracle ---------------------------------- *)

let key_range_c = 64

let test_rebalance_conservation =
  Support.qcheck ~count:150 "rebalance: every key owned by exactly one shard"
    QCheck2.Gen.(
      quad (0 -- 1000) (0 -- 2) (0 -- 2)
        (list_size (0 -- 80) (pair (int_bound 2) (int_bound (key_range_c - 1)))))
    (fun (seed, slot, to_, script) ->
      let router, ring, tbs = plain_router ~shards:3 ~seed () in
      (* Random mutations through the router. *)
      List.iter
        (fun (tag, k) ->
          ignore
            (Router.call router
               (match tag with
               | 0 -> Svc.Insert (k, k)
               | 1 -> Svc.Delete k
               | _ -> Svc.Find k)))
        script;
      let present_in_slot =
        List.length
          (List.filter
             (fun k ->
               Hash_ring.slot_of ring k = slot
               && Hashtbl.mem tbs.(Hash_ring.owner ring slot).h k)
             (List.init key_range_c Fun.id))
      in
      let moved = Router.rebalance router ~slot ~to_ ~key_range:key_range_c in
      let expected_moved = if Hash_ring.owner ring slot = to_ then 0 else present_in_slot in
      (* Conservation: each key present in at most one backend, and that
         backend is the router's current owner. *)
      let conserved =
        List.for_all
          (fun k ->
            let where =
              List.filter (fun i -> Hashtbl.mem tbs.(i).h k) [ 0; 1; 2 ]
            in
            match where with
            | [] -> true
            | [ i ] -> i = Router.route router k
            | _ -> false)
          (List.init key_range_c Fun.id)
      in
      moved = expected_moved && conserved
      && Router.migrated_keys router = moved)

(* --- Chaos: a shard-targeted stall plan through the router ----------- *)

module K = Lf_kernel.Ordered.Int

type faulty = {
  f_backend : Router.backend;
  f_install : Fault.plan -> unit;
  f_uninstall : unit -> unit;
}

let mk_faulty_list ~prefill () =
  let module FM = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem) in
  let module L = Lf_list.Fr_list.Make (K) (FM) in
  let t = L.create () in
  List.iter (fun k -> ignore (L.insert t k k)) prefill;
  {
    f_backend =
      {
        Router.insert = (fun k v -> L.insert t k v);
        delete = L.delete t;
        find = L.find t;
        batched = None;
      };
    f_install = FM.install;
    f_uninstall = (fun () -> FM.uninstall ());
  }

let test_chaos_shard_targeted_stall () =
  let clock = Clock.real () in
  let ms = Clock.ms clock in
  let shards = 2 and key_range = 128 in
  let ring = Hash_ring.create ~seed:11 ~shards () in
  (* Lists start empty: [run_chaos] prefills to 50% through the router
     itself and counts only successful inserts, so pre-populating here
     would make that loop spin forever on duplicates. *)
  let f = Array.init shards (fun _ -> mk_faulty_list ~prefill:[] ()) in
  let cfg _ =
    Svc.config ~clock
      ~breaker:
        (Some
           (Breaker.config ~window:(ms 100) ~min_calls:3 ~failure_pct:40
              ~latency_threshold:(ms 1 / 64) ~open_for:(ms 100) ~probes:3 ()))
      ~degrade:(Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
      ()
  in
  let router =
    Router.create ~hedge_reads:false ~ring ~svc_config:cfg (fun i ->
        f.(i).f_backend)
  in
  (* Stall every worker-lane access of shard 0's memory: the containment
     claim is that lanes keep making progress on shard 1's keyspace and
     nobody starves past the watchdog budget.  The plan is installed
     before [run_chaos] spawns its workers (module-level fault state is
     published by [Domain.spawn]); targeting lanes 0 and 1 leaves the
     monitor's lane(-1) prefill clean, so the victim breaker only sees
     stalled traffic once the measured window starts. *)
  f.(0).f_install
    (Fault.make_plan ~seed:13
       [
         { Fault.point = FP.Any; action = Stall 8; mode = Always; lane = Some 0 };
         { Fault.point = FP.Any; action = Stall 8; mode = Always; lane = Some 1 };
       ]);
  let as_bool = function
    | Svc.Served ok -> ok
    | Svc.Rejected _ | Svc.Failed _ -> false
  in
  let r =
    Lf_workload.Runner.run_chaos ~name:"router+stall-shard-0" ~window_s:0.15
      ~insert:(fun k -> as_bool (Router.call router (Svc.Insert (k, k))))
      ~delete:(fun k -> as_bool (Router.call router (Svc.Delete k)))
      ~find:(fun k -> as_bool (Router.call router (Svc.Find k)))
      ~domains:2 ~key_range
      ~mix:{ Lf_workload.Opgen.insert_pct = 30; delete_pct = 30 }
      ~seed:17 ()
  in
  f.(0).f_uninstall ();
  Alcotest.(check bool) "watchdog clean: no lane starved" false
    r.Lf_workload.Runner.c_watchdog_tripped;
  Alcotest.(check (list int)) "no lane crashed" [] r.c_crashed;
  Alcotest.(check bool) "lanes made progress" true (r.c_survivor_ops > 0);
  let st = (Router.stats router).(0) in
  Alcotest.(check bool) "victim breaker opened under the stall" true
    (List.exists (fun (_, s) -> s = "open") st.transitions);
  Alcotest.(check (option string)) "healthy shard stayed closed"
    (Some "closed")
    (Router.stats router).(1).breaker

(* --- Per-key linearizability across a live handoff ------------------- *)

(* Two domains hammer a tiny key space through the router while the main
   thread hands slot 0 to the other shard.  Every Served outcome is a
   completed history entry; rejections never executed; without faults
   nothing is pending.  Linearizability decomposes per key for a
   dictionary, so each key's projected history must linearize against
   its prefill state — across the copy and the ownership flip. *)
let test_linearizable_across_rebalance () =
  let key_range = 6 and shards = 2 in
  let clock = Clock.real () in
  let ring = Hash_ring.create ~seed:21 ~shards () in
  let lists = Array.init shards (fun _ -> Lf_list.Fr_list.Atomic_int.create ()) in
  let module AI = Lf_list.Fr_list.Atomic_int in
  (* Even keys start present, on their owning shard. *)
  for k = 0 to key_range - 1 do
    if k land 1 = 0 then
      ignore (AI.insert lists.(Hash_ring.shard_of ring k) k k)
  done;
  let backend i =
    let t = lists.(i) in
    {
      Router.insert = (fun k v -> AI.insert t k v);
      delete = AI.delete t;
      find = AI.find t;
      batched = None;
    }
  in
  let router =
    Router.create ~ring ~svc_config:(fun _ -> Svc.config ~clock ()) backend
  in
  let rec_ = History.Recorder.create () in
  let worker pid =
    Domain.spawn (fun () ->
        let rng = Lf_kernel.Splitmix.create (100 + pid) in
        let entries = ref [] in
        for _ = 1 to 40 do
          let k = Lf_kernel.Splitmix.int rng key_range in
          let op, req =
            match Lf_kernel.Splitmix.int rng 3 with
            | 0 -> (History.Insert k, Svc.Insert (k, k))
            | 1 -> (History.Delete k, Svc.Delete k)
            | _ -> (History.Find k, Svc.Find k)
          in
          let inv = History.Recorder.tick rec_ in
          (match Router.call router req with
          | Svc.Served ok ->
              let ret = History.Recorder.tick rec_ in
              entries := { History.pid; op; ok; inv; ret } :: !entries
          | Svc.Rejected _ -> () (* never executed: no history entry *)
          | Svc.Failed m -> Alcotest.failf "unexpected Failed: %s" m);
          Domain.cpu_relax ()
        done;
        History.Recorder.add rec_ !entries)
  in
  let d0 = worker 0 and d1 = worker 1 in
  (* Hand slot 0 over while the workers run. *)
  Unix.sleepf 0.002;
  let moved = Router.rebalance router ~slot:0 ~to_:1 ~key_range in
  Domain.join d0;
  Domain.join d1;
  Alcotest.(check bool) "rebalance ran" true (moved >= 0);
  let hist = History.Recorder.history rec_ in
  Alcotest.(check bool) "history not empty" true (hist <> []);
  let key_of_op = function
    | History.Find k | History.Insert k | History.Delete k -> k
  in
  for k = 0 to key_range - 1 do
    let proj = List.filter (fun (e : History.entry) -> key_of_op e.op = k) hist in
    let init =
      if k land 1 = 0 then Lf_lin.Checker.IntSet.singleton k
      else Lf_lin.Checker.IntSet.empty
    in
    if not (Lf_workload.Runner.linearizable_with_pending ~init proj []) then
      Alcotest.failf "key %d: projected history not linearizable:@\n%a" k
        History.pp proj
  done;
  (* And the handoff conserved the keyspace. *)
  for k = 0 to key_range - 1 do
    let where =
      List.filter (fun i -> AI.mem lists.(i) k) (List.init shards Fun.id)
    in
    match where with
    | [] -> ()
    | [ i ] ->
        Alcotest.(check int)
          (Printf.sprintf "key %d at its owner" k)
          (Router.route router k) i
    | _ -> Alcotest.failf "key %d present on several shards" k
  done

(* --- Health surface --------------------------------------------------- *)

let test_health_and_metrics () =
  let router, ring, tbs = plain_router ~shards:2 ~seed:8 () in
  ignore ring;
  List.iter
    (fun k -> ignore (Router.call router (Svc.Insert (k, k))))
    (List.init 10 Fun.id);
  let line = Health.line router in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "health names every shard" true
    (contains line "s0=" && contains line "s1=");
  tbs.(0).killed := true;
  (match Router.call router (Svc.Find 0) with
   | _ -> ());
  let text = Lf_obs.Prom.render_metrics (Health.metrics router) in
  match Lf_obs.Prom.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "per-shard metrics not valid exposition: %s" e

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        [ test_ring_deterministic; test_ring_reassign ] );
      ( "routing",
        [
          test_routing_hits_owner;
          Alcotest.test_case "scatter-gather partial failure" `Quick
            test_call_many_partial_failure;
        ] );
      ( "hedging",
        [
          Alcotest.test_case "read hedges around a tripped shard" `Quick
            test_hedged_read_tripped_shard;
          Alcotest.test_case "hedge off / dead backend" `Quick
            test_hedge_off_and_dead_backend;
        ] );
      ( "rebalance",
        [
          test_rebalance_conservation;
          Alcotest.test_case "per-key linearizability across a handoff"
            `Quick test_linearizable_across_rebalance;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "shard-targeted stall, watchdog clean" `Quick
            test_chaos_shard_targeted_stall;
        ] );
      ( "health",
        [ Alcotest.test_case "line + metrics exposition" `Quick
            test_health_and_metrics ] );
    ]
